package gpuperf

import (
	"gpuperf/internal/obs"
	"gpuperf/internal/reproduce"
	"gpuperf/internal/session"
	"gpuperf/internal/workloads"
)

// Session is the campaign engine's front door: one value owning the full
// measurement-stack configuration (seed, worker pool, boards, fault
// policy, checkpoint journal, launch cache, observability) and exposing
// the context-aware campaign methods Sweep, SweepBoard, Collect, Model,
// Reproduce and the Device factory. Build one with OpenSession and
// release it with Close; see internal/session for the construction graph
// and the cancellation contract.
type Session = session.Session

// SessionConfig is the resolved configuration behind a Session
// (Session.Config returns a copy).
type SessionConfig = session.Config

// SessionOption is a functional option for OpenSession.
type SessionOption = session.Option

// ReportOptions selects the report sections and campaign parameters of
// Session.Reproduce; tweak them via the variadic tweaks argument, e.g.
// QuickReport.
type ReportOptions = reproduce.Options

// ReportResult summarizes a finished reproduction run.
type ReportResult = reproduce.Result

// Recorder is the deterministic observability recorder a session
// distributes to every layer (see SessionWithObs).
type Recorder = obs.Recorder

// Functional options for OpenSession; each sets one SessionConfig field
// (the internal/session definitions are the single implementation).
var (
	// WithSeed sets the campaign seed (default 42); every campaign is a
	// pure function of it.
	WithSeed = session.WithSeed
	// WithWorkers bounds the sweep/collect pools; 1 is the bit-exact
	// sequential reference and output is identical at any width.
	WithWorkers = session.WithWorkers
	// WithBoards restricts the session to the named Table I boards.
	WithBoards = session.WithBoards
	// WithMaxVars caps the models' explanatory variables (default 10).
	WithMaxVars = session.WithMaxVars
	// SessionWithFaults runs campaigns under a fault-injection profile.
	SessionWithFaults = session.WithFaults
	// WithRetryPolicy sets the transient-fault retry budget and the
	// per-run watchdog deadline.
	WithRetryPolicy = session.WithRetryPolicy
	// WithCheckpoint journals completed sweep cells to a path and resumes
	// from it.
	WithCheckpoint = session.WithCheckpoint
	// SessionWithObs attaches an observability recorder.
	SessionWithObs = session.WithObs
	// WithCache toggles launch memoization (default on; output is
	// identical either way).
	WithCache = session.WithCache
	// WithArtifactsDir routes Reproduce's per-table/figure files to a
	// directory.
	WithArtifactsDir = session.WithArtifactsDir
)

// QuickReport trims a reproduction to the characterization sections only
// — Session.Reproduce's equivalent of the paper command's -quick flag.
var QuickReport = reproduce.Quick

// NewRecorder builds an observability recorder for SessionWithObs.
func NewRecorder() *Recorder { return obs.New() }

// OpenSession builds a campaign Session from the default configuration
// plus options. The caller must Close it.
//
//	s, err := gpuperf.OpenSession(gpuperf.WithBoards("GTX 680"), gpuperf.WithSeed(7))
//	if err != nil { ... }
//	defer s.Close()
//	results, err := s.Sweep(ctx, gpuperf.Table4Benchmarks())
func OpenSession(options ...SessionOption) (*Session, error) {
	return session.New(options...)
}

// Table4Benchmarks returns the paper's Table IV characterization set, for
// Session.Sweep.
func Table4Benchmarks() []*Benchmark { return workloads.Table4() }

// ModelingBenchmarks returns the Section IV modeling corpus (the
// 33-benchmark, 114-sample set), for Session.Collect.
func ModelingBenchmarks() []*Benchmark { return workloads.ModelingSet() }
