module gpuperf

go 1.22
