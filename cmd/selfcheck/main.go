// Command selfcheck verifies the simulated apparatus end to end: VBIOS
// round trips, energy conservation through the meter, DVFS monotonicity,
// profiler determinism, the Fig. 4 generation ladder and model sanity.
// Exit status 0 means every invariant holds.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf/internal/selfcheck"
)

func main() {
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	flag.Parse()

	results := selfcheck.Run(*seed)
	failed := 0
	for _, r := range results {
		status := "ok  "
		if !r.OK {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s  %-36s %s\n", status, r.Name, r.Detail)
	}
	fmt.Printf("\n%d checks, %d failed\n", len(results), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
