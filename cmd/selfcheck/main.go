// Command selfcheck verifies the simulated apparatus end to end: VBIOS
// round trips, energy conservation through the meter, DVFS monotonicity,
// profiler determinism, the Fig. 4 generation ladder and model sanity —
// plus the static invariants (gpulint: unit safety, counter
// classification, error and concurrency hygiene) when run inside the
// module. Exit status 0 means every invariant holds.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf/internal/lint"
	"gpuperf/internal/selfcheck"
)

func main() {
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	static := flag.Bool("static", true, "run the gpulint static invariants (needs the module source on disk)")
	dynamic := flag.Bool("dynamic", true, "run the dynamic apparatus invariants")
	flag.Parse()

	var results []selfcheck.Result
	if *static {
		if root, err := lint.FindModuleRoot("."); err == nil {
			results = append(results, selfcheck.RunStatic(root)...)
		} else {
			fmt.Fprintf(os.Stderr, "selfcheck: skipping static invariants: %v\n", err)
		}
	}
	if *dynamic {
		results = append(results, selfcheck.Run(*seed)...)
	}

	failed := 0
	for _, r := range results {
		status := "ok  "
		if !r.OK {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s  %-36s %s\n", status, r.Name, r.Detail)
	}
	fmt.Printf("\n%d checks, %d failed\n", len(results), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
