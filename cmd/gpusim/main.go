// Command gpusim runs one Table II benchmark on one simulated board at one
// frequency pair and prints the measurements — the smallest end-to-end
// slice of the paper's apparatus.
//
// Usage:
//
//	gpusim -board "GTX 680" -bench backprop -pair H-L [-scale 2] [-profile]
//
// The device comes from the shared campaign session, so the campaign flag
// block (-seed, -faults, -max-retries, …) behaves exactly as in the sweep
// commands; an interrupt (Ctrl-C) aborts the metered run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"gpuperf"
	"gpuperf/internal/characterize"
	"gpuperf/internal/cliflags"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernelspec"
	"gpuperf/internal/session"
	"gpuperf/internal/trace"
	"gpuperf/internal/workloads"
)

func main() {
	board := flag.String("board", "GTX 680", "board name (Table I)")
	bench := flag.String("bench", "backprop", "benchmark name (Table II)")
	kernelsPath := flag.String("kernels", "", "run kernels from a kernelspec file instead of -bench")
	pairArg := flag.String("pair", "H-H", "frequency pair, e.g. H-L")
	scale := flag.Float64("scale", 1, "input-size scale")
	profile := flag.Bool("profile", false, "collect and print performance counters")
	analyze := flag.Bool("analyze", false, "print the per-resource bottleneck breakdown")
	micro := flag.Bool("microsim", false, "validate against the warp-level microsimulator (single-phase kernels)")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace JSON of the run to this path")
	list := flag.Bool("list", false, "list boards and benchmarks, then exit")
	jsonOut := flag.Bool("json", false, "emit the run summary as JSON instead of text")
	camp := cliflags.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := camp.StartProfiling()
	if err != nil {
		cliflags.Fatal("gpusim", err)
	}
	defer stopProf()

	if *list {
		fmt.Println("boards:")
		for _, b := range gpuperf.Boards() {
			fmt.Printf("  %s\n", b)
		}
		fmt.Println("benchmarks:")
		for _, b := range gpuperf.Benchmarks() {
			fmt.Printf("  %s\n", b)
		}
		return
	}

	camp.NoFleet("gpusim")
	cfg, err := camp.Config(*board)
	if err != nil {
		cliflags.Usage("gpusim", err)
	}
	s, err := session.Open(cfg)
	if err != nil {
		cliflags.Fatal("gpusim", err)
	}
	defer s.Close()
	ctx, stop := cliflags.SignalContext()
	defer stop()

	dev, err := s.Device(*board)
	if err != nil {
		cliflags.Fatal("gpusim", err)
	}
	pair, err := gpuperf.ParsePair(*pairArg)
	if err != nil {
		cliflags.Fatal("gpusim", err)
	}
	if err := dev.SetClocks(pair); err != nil {
		cliflags.Fatal("gpusim", err)
	}

	var kernels []*gpu.KernelDesc
	var hostGap float64
	name := *bench
	if *kernelsPath != "" {
		f, err := os.Open(*kernelsPath)
		if err != nil {
			cliflags.Fatal("gpusim", err)
		}
		kernels, err = kernelspec.Parse(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			cliflags.Fatal("gpusim", err)
		}
		name = *kernelsPath
	} else {
		b := workloads.ByName(*bench)
		if b == nil {
			cliflags.Fatal("gpusim", fmt.Errorf("unknown benchmark %q (use -list)", *bench))
		}
		kernels = b.Kernels(*scale)
		hostGap = b.HostGap(*scale)
	}
	if *profile {
		dev.EnableProfiler()
	}
	rr, err := dev.RunMeteredCtx(ctx, name, kernels, hostGap, characterize.MinRunSeconds) //gpulint:ignore faultsafety -- one-shot interactive run; an injected fault should surface to the user, not retry
	if err != nil {
		cliflags.Fatal("gpusim", err)
	}

	spec := dev.Spec()
	if *jsonOut {
		out := map[string]interface{}{
			"board":             spec.Name,
			"architecture":      spec.Generation.String(),
			"pair":              pair.String(),
			"core_mhz":          spec.CoreFreqMHz(pair.Core),
			"mem_mhz":           spec.MemFreqMHz(pair.Mem),
			"workload":          name,
			"scale":             *scale,
			"iterations":        rr.Iterations,
			"time_per_iter_s":   rr.TimePerIteration(),
			"avg_watts":         rr.Measurement.AvgWatts,
			"energy_per_iter_j": rr.EnergyPerIteration(),
			"meter_samples":     len(rr.Measurement.Samples),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			cliflags.Fatal("gpusim", err)
		}
		return
	}
	fmt.Printf("board        %s (%s)\n", spec.Name, spec.Generation)
	fmt.Printf("clocks       %s  core %.0f MHz  mem %.0f MHz\n",
		pair, spec.CoreFreqMHz(pair.Core), spec.MemFreqMHz(pair.Mem))
	fmt.Printf("workload     %s (scale %g)\n", name, *scale)
	fmt.Printf("iterations   %d (run stretched to ≥ %.0f ms)\n", rr.Iterations, characterize.MinRunSeconds*1e3)
	fmt.Printf("time/iter    %.3f ms\n", rr.TimePerIteration()*1e3)
	fmt.Printf("wall power   %.1f W (avg over %d meter samples)\n",
		rr.Measurement.AvgWatts, len(rr.Measurement.Samples))
	fmt.Printf("energy/iter  %.2f J\n", rr.EnergyPerIteration())

	if *analyze {
		fmt.Println("\nbottleneck analysis:")
		for _, k := range kernels {
			an, err := dev.Analyze(k)
			if err != nil {
				cliflags.Fatal("gpusim", err)
			}
			fmt.Print(an.String())
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			cliflags.Fatal("gpusim", err)
		}
		if err := trace.FromRun(name, rr.Trace.Flatten()).WriteJSON(f); err != nil {
			_ = f.Close() // already failing; surface the write error
			cliflags.Fatal("gpusim", err)
		}
		if err := f.Close(); err != nil {
			cliflags.Fatal("gpusim", err)
		}
		fmt.Printf("trace        wrote %s (open in ui.perfetto.dev)\n", *traceOut)
	}

	if *micro {
		fmt.Println("\nmicrosim validation (interval vs warp-level):")
		for _, k := range kernels {
			lr, err := dev.Launch(k)
			if err != nil {
				cliflags.Fatal("gpusim", err)
			}
			mr, err := dev.MicroSim(k)
			if err != nil {
				fmt.Printf("  %-24s %v\n", k.Name, err)
				continue
			}
			fmt.Printf("  %-24s interval %8.3f ms, micro %8.3f ms (x%.2f), IPC %.2f\n",
				k.Name, lr.Time*1e3, mr.Time*1e3, mr.Time/lr.Time, mr.IPC)
		}
	}

	if *profile {
		fmt.Printf("\ncounters (%d, whole run):\n", len(rr.Counters))
		type kv struct {
			name string
			v    float64
		}
		var rows []kv
		for i, d := range dev.CounterSet().Defs {
			rows = append(rows, kv{d.Name, rr.Counters[i]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
		for _, r := range rows {
			fmt.Printf("  %-44s %.4g\n", r.name, r.v)
		}
	}
	if err := camp.WriteArtifacts(cfg.Obs); err != nil {
		cliflags.Fatal("gpusim", err)
	}
}
