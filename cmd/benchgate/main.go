// Command benchgate is the CI performance gate: it runs the acceptance
// benchmark several times, compares the best ns/op against the checked-in
// baseline (BENCH_baseline.json's "after" figure), writes the verdict as a
// JSON artifact, and exits non-zero on a regression past the threshold.
//
// Usage (the CI job's exact invocation):
//
//	benchgate -baseline BENCH_baseline.json -out bench-gate.json
//
// The benchmark runs under GOMAXPROCS=1 like the recorded baseline, so the
// comparison measures the code, not the runner's core count.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"gpuperf/internal/benchgate"
)

func main() {
	bench := flag.String("bench", "BenchmarkReproduce", "benchmark to gate (anchored exact match)")
	pkg := flag.String("pkg", ".", "package containing the benchmark")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSON")
	count := flag.Int("count", 3, "benchmark repetitions; the gate takes the fastest")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value per repetition")
	threshold := flag.Float64("threshold", 0.10, "allowed relative slowdown before the gate fails")
	out := flag.String("out", "", "write the verdict JSON artifact to this path")
	flag.Parse()

	baseline, err := benchgate.LoadBaseline(*baselinePath, *bench)
	if err != nil {
		fatal(err)
	}

	cmd := exec.Command("go", "test", "-run=^$",
		"-bench=^"+*bench+"$", "-benchtime="+*benchtime, "-count="+strconv.Itoa(*count), *pkg)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		_, _ = os.Stdout.Write(buf.Bytes())
		fatal(fmt.Errorf("benchmark run failed: %w", err))
	}
	_, _ = os.Stdout.Write(buf.Bytes())

	samples, err := benchgate.ParseBenchOutput(&buf)
	if err != nil {
		fatal(err)
	}
	result, err := benchgate.Gate(*bench, samples[*bench], baseline, *threshold)
	if err != nil {
		fatal(err)
	}
	fmt.Println(result)
	if *out != "" {
		raw, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if !result.Pass {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}
