// Command gpuperfd is the long-running campaign server: it owns a fleet
// of simulated devices and a shared launch cache, serves live Prometheus
// metrics (including per-device, per-scope power gauges fed by every
// running campaign), and runs sweep/model campaigns submitted over HTTP.
//
// Usage:
//
//	gpuperfd -addr :9780 -data-dir /var/lib/gpuperf
//	gpuperfd -boards "GTX 480,GTX 680"    serve a restricted fleet
//
// Endpoints: GET /metrics, /healthz, /readyz; POST/GET/DELETE
// /api/v1/campaigns[/{id}[/report|/triage]]; GET /api/v1/power.
//
// SIGTERM or SIGINT drains gracefully: /readyz flips to 503, in-flight
// campaigns stop at their next cell boundary with resumable checkpoint
// journals, then the listener shuts down. A second signal kills the
// process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"gpuperf/internal/cliflags"
	"gpuperf/internal/daemon"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9780", "listen address")
	boards := flag.String("boards", "", `served fleet, comma-separated board names (empty: the paper's four boards)`)
	dataDir := flag.String("data-dir", "", "directory for campaign checkpoint journals and triage reports (required)")
	retention := flag.Int("retention", 0, "per-device per-scope power-sample history depth (0: 1200 ≈ one minute)")
	sampleInterval := flag.Duration("sample-interval", time.Second, "idle power heartbeat period")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for in-flight campaigns")
	progress := flag.Bool("progress", false, "print a periodic one-line fleet status to stderr")
	flag.Parse()

	if *dataDir == "" {
		cliflags.Usage("gpuperfd", errors.New("-data-dir is required"))
	}
	var fleet []string
	if *boards != "" {
		for _, b := range strings.Split(*boards, ",") {
			fleet = append(fleet, strings.TrimSpace(b))
		}
	}
	srv, err := daemon.New(daemon.Config{
		Boards:         fleet,
		DataDir:        *dataDir,
		Retention:      *retention,
		SampleInterval: *sampleInterval,
	})
	if err != nil {
		cliflags.Fatal("gpuperfd", err)
	}

	ctx, stop := cliflags.ServerSignalContext()
	defer stop()
	if *progress {
		defer srv.Recorder().StartProgressCtx(ctx, os.Stderr, 10*time.Second,
			"gpuperf_power_samples_total", "characterize_cells_total",
			"characterize_cells_quarantined_total")()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func(errs chan<- error) {
		errs <- hs.ListenAndServe()
	}(serveErr)
	fmt.Fprintf(os.Stderr, "gpuperfd: serving on %s (fleet: %s)\n",
		*addr, strings.Join(srv.Collector().Devices(), ", "))

	select {
	case err := <-serveErr:
		cliflags.Fatal("gpuperfd", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: drain campaigns to a checkpoint boundary, then
	// close the listener. stop() has restored default signal handling, so
	// a second SIGTERM kills the process.
	fmt.Fprintln(os.Stderr, "gpuperfd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "gpuperfd: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		cliflags.Fatal("gpuperfd", err)
	}
	fmt.Fprintln(os.Stderr, "gpuperfd: shutdown complete")
}
