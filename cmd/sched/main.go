// Command sched plans a batch of benchmarks under an energy budget or a
// deadline: it sweeps each job's frequency pairs on the chosen board, then
// solves the discrete time/energy tradeoff exactly.
//
// Usage:
//
//	sched -board "GTX 680" -jobs backprop,sgemm,lbm -budget 80
//	sched -jobs backprop,sgemm -deadline 0.5
//
// The device comes from the shared campaign session, so the campaign flag
// block (-seed, -faults, -max-retries, …) behaves exactly as in the sweep
// commands.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuperf"
	"gpuperf/internal/cliflags"
	"gpuperf/internal/session"
)

func main() {
	board := flag.String("board", "GTX 680", "board name (Table I)")
	jobsArg := flag.String("jobs", "backprop,streamcluster,sgemm", "comma-separated benchmark names")
	budget := flag.Float64("budget", 0, "total energy budget in joules (0 = unlimited)")
	deadline := flag.Float64("deadline", 0, "total time deadline in seconds (alternative to -budget)")
	camp := cliflags.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := camp.StartProfiling()
	if err != nil {
		cliflags.Fatal("sched", err)
	}
	defer stopProf()

	jobs := strings.Split(*jobsArg, ",")
	for i := range jobs {
		jobs[i] = strings.TrimSpace(jobs[i])
	}

	camp.NoFleet("sched")
	cfg, err := camp.Config(*board)
	if err != nil {
		cliflags.Usage("sched", err)
	}
	s, err := session.Open(cfg)
	if err != nil {
		cliflags.Fatal("sched", err)
	}
	defer s.Close()

	dev, err := s.Device(*board)
	if err != nil {
		cliflags.Fatal("sched", err)
	}

	var plan *gpuperf.BatchPlan
	switch {
	case *deadline > 0:
		plan, err = gpuperf.PlanBatchUnderDeadline(dev, jobs, *deadline)
	default:
		plan, err = gpuperf.PlanBatchUnderEnergy(dev, jobs, *budget)
	}
	if err != nil {
		cliflags.Fatal("sched", err)
	}

	if !plan.Feasible {
		fmt.Printf("constraint infeasible; showing the floor configuration:\n")
	}
	fmt.Printf("%-16s %-7s %12s %12s\n", "job", "pair", "time", "energy")
	for _, a := range plan.Assignments {
		fmt.Printf("%-16s %-7s %9.1f ms %9.2f J\n",
			a.Job, a.Option.Pair, a.Option.TimeS*1e3, a.Option.EnergyJ)
	}
	fmt.Printf("%-16s %-7s %9.1f ms %9.2f J\n", "TOTAL", "", plan.TotalTimeS*1e3, plan.TotalEnergyJ)
	if err := camp.WriteArtifacts(cfg.Obs); err != nil {
		cliflags.Fatal("sched", err)
	}
	if !plan.Feasible {
		os.Exit(1)
	}
}
