// Command triagecheck validates a machine-readable validity-triage
// report (the -triage-out artifact, conventionally reports/baseline.json)
// and asserts verdict counts against a CI expectation. It exits nonzero
// with a diagnostic on the first violated assertion, so a chaos-matrix
// job can pin "this profile must produce exactly these verdicts".
//
// Usage:
//
//	triagecheck -in reports/baseline.json
//	triagecheck -in reports/baseline.json -valid 132 -flake 0 -model-failure 0
//	triagecheck -in reports/baseline.json -min-flake 1 -publishable=false
//	triagecheck -in reports/baseline.json -expect-unstable "GTX 460/backprop"
//	triagecheck -in reports/baseline.json -cohort 0123456789abcdef
//
// Structural validation (schema, cohort-hash consistency, count/cell
// agreement) always runs; every other assertion is opt-in.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuperf/internal/validity"
)

func main() {
	in := flag.String("in", "", "triage report to validate (required)")
	valid := flag.Int("valid", -1, "exact number of VALID cells (-1: don't check)")
	modelFailure := flag.Int("model-failure", -1, "exact number of MODEL_FAILURE cells (-1: don't check)")
	flake := flag.Int("flake", -1, "exact number of INFRA_FLAKE cells (-1: don't check)")
	minFlake := flag.Int("min-flake", -1, "minimum number of INFRA_FLAKE cells (-1: don't check)")
	cells := flag.Int("cells", -1, "exact total cell count (-1: don't check)")
	reps := flag.Int("repetitions", -1, "exact repetition-cohort size (-1: don't check)")
	cohort := flag.String("cohort", "", "required cohort hash (empty: don't check)")
	expectUnstable := flag.String("expect-unstable", "",
		`comma-separated "board/bench" substrings that must appear among the non-VALID cells`)
	publishable := flag.String("publishable", "", `require publishability: "true" or "false" (empty: don't check)`)
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "triagecheck: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	r, err := validity.ReadReport(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *in, err))
	}

	check := func(name string, want, got int) {
		if want >= 0 && got != want {
			fatal(fmt.Errorf("%s: %s = %d, want %d", *in, name, got, want))
		}
	}
	check("VALID cells", *valid, r.Counts[validity.Valid])
	check("MODEL_FAILURE cells", *modelFailure, r.Counts[validity.ModelFailure])
	check("INFRA_FLAKE cells", *flake, r.Counts[validity.InfraFlake])
	check("total cells", *cells, len(r.Cells))
	check("repetitions", *reps, r.Repetitions)
	if *minFlake >= 0 && r.Counts[validity.InfraFlake] < *minFlake {
		fatal(fmt.Errorf("%s: INFRA_FLAKE cells = %d, want ≥ %d", *in, r.Counts[validity.InfraFlake], *minFlake))
	}
	if *cohort != "" && r.CohortHash != *cohort {
		fatal(fmt.Errorf("%s: cohort hash %s, want %s", *in, r.CohortHash, *cohort))
	}
	switch *publishable {
	case "":
	case "true":
		if !r.Publishable() {
			fatal(fmt.Errorf("%s: report is not publishable: %s", *in, nonValidSummary(r)))
		}
	case "false":
		if r.Publishable() {
			fatal(fmt.Errorf("%s: report is publishable, expected a gated campaign", *in))
		}
	default:
		fatal(fmt.Errorf("-publishable must be true or false, got %q", *publishable))
	}
	for _, want := range strings.Split(*expectUnstable, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, c := range r.Cells {
			if c.Class != validity.Valid && strings.Contains(c.Board+"/"+c.Bench+"@"+c.Pair, want) {
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("%s: no non-VALID cell matches %q (non-VALID: %s)", *in, want, nonValidSummary(r)))
		}
	}

	fmt.Printf("ok: %s — %s\n", *in, oneLine(r))
}

// oneLine compresses the report's headline into one status line.
func oneLine(r *validity.Report) string {
	return fmt.Sprintf("cohort %s, %d cells: %d VALID, %d MODEL_FAILURE, %d INFRA_FLAKE (repetitions %d, min valid %d)",
		r.CohortHash, len(r.Cells),
		r.Counts[validity.Valid], r.Counts[validity.ModelFailure], r.Counts[validity.InfraFlake],
		r.Repetitions, r.MinValid)
}

// nonValidSummary lists the non-VALID cells for diagnostics.
func nonValidSummary(r *validity.Report) string {
	var out []string
	for _, c := range r.Cells {
		if c.Class != validity.Valid {
			out = append(out, fmt.Sprintf("%s/%s@%s (%s)", c.Board, c.Bench, c.Pair, c.Class))
		}
	}
	if len(out) == 0 {
		return "none"
	}
	return strings.Join(out, ", ")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "triagecheck: %v\n", err)
	os.Exit(1)
}
