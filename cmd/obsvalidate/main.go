// Command obsvalidate checks observability artifacts for well-formedness:
// Prometheus-style metrics expositions and Chrome/Perfetto trace JSON. CI
// runs it against the -metrics-out / -trace-out artifacts of a smoke
// campaign; exits nonzero with a diagnostic on the first malformed file.
//
// Usage:
//
//	obsvalidate -metrics m.txt -trace t.json
//	obsvalidate -metrics m.txt -require driver_launch_cache_hits_total,fault_retries_total
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuperf/internal/obs"
)

func main() {
	metrics := flag.String("metrics", "", "metrics exposition file to validate")
	traceFile := flag.String("trace", "", "Chrome trace JSON file to validate")
	require := flag.String("require", "",
		"comma-separated metric families that must appear in -metrics")
	flag.Parse()

	if *metrics == "" && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "obsvalidate: nothing to do (need -metrics and/or -trace)")
		flag.Usage()
		os.Exit(2)
	}

	if *metrics != "" {
		data, err := os.ReadFile(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := obs.ValidateExposition(strings.NewReader(string(data))); err != nil {
			fatal(fmt.Errorf("%s: %w", *metrics, err))
		}
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if !strings.Contains(string(data), "# TYPE "+fam+" ") {
				fatal(fmt.Errorf("%s: required metric family %q not present", *metrics, fam))
			}
		}
		fmt.Printf("ok: %s is a well-formed exposition\n", *metrics)
	}

	if *traceFile != "" {
		data, err := os.ReadFile(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := obs.ValidateTraceJSON(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *traceFile, err))
		}
		phases, err := obs.TracePhases(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s is a well-formed trace (", *traceFile)
		first := true
		for _, ph := range []string{"M", "X", "i", "C"} {
			if n := phases[ph]; n > 0 {
				if !first {
					fmt.Print(", ")
				}
				fmt.Printf("%d %s", n, ph)
				first = false
			}
		}
		fmt.Println(" events)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsvalidate:", err)
	os.Exit(1)
}
