// Command model regenerates the Section IV artifacts: Tables V–VIII and
// Figs. 5–11 — the unified statistical power and performance models.
//
// Usage:
//
//	model                      print Tables V–VIII (default)
//	model -fig 5|6|7|8|9|10|11 print one figure
//	model -board "GTX 680"     restrict figures to one board
//	model -vars 15             override the 10-variable cap
//
// An interrupt (Ctrl-C) cancels the collection at the next measurement
// boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gpuperf/internal/cliflags"
	"gpuperf/internal/core"
	"gpuperf/internal/regress"
	"gpuperf/internal/report"
	"gpuperf/internal/session"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

func main() {
	fig := flag.Int("fig", 0, "print Fig. 5–11 instead of the tables")
	board := flag.String("board", "", "restrict figures to one board (default: all)")
	vars := flag.Int("vars", core.MaxVariables, "explanatory-variable cap")
	saveDir := flag.String("save", "", "directory to write trained models and datasets as JSON")
	diagnose := flag.Bool("diagnose", false, "print per-variable VIF and standardized coefficients")
	camp := cliflags.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := camp.StartProfiling()
	if err != nil {
		cliflags.Fatal("model", err)
	}
	defer stopProf()

	var restrict []string
	if *board != "" {
		restrict = []string{*board}
	}
	camp.NoFleet("model")
	cfg, err := camp.Config(restrict...)
	if err != nil {
		cliflags.Usage("model", err)
	}
	cfg.MaxVars = *vars
	s, err := session.Open(cfg)
	if err != nil {
		cliflags.Fatal("model", err)
	}
	defer s.Close()
	if cfg.Obs != nil {
		defer regress.Observe(cfg.Obs.Metrics())()
	}
	ctx, stop := cliflags.SignalContext()
	defer stop()

	defer camp.StartProgress(ctx, cfg.Obs, os.Stderr,
		"core_rows_total", "fault_retries_total", "core_benches_dropped_total",
		"driver_launch_cache_hits_total")()

	boards := s.Boards()
	var tr *validity.Triage
	if cfg.Repetitions > 1 || cfg.TriageOut != "" || cfg.MinValid > 0 {
		tr = s.NewTriage()
	}
	benchNames := make([]string, 0, len(workloads.ModelingSet()))
	for _, b := range workloads.ModelingSet() {
		benchNames = append(benchNames, b.Name)
	}
	datasets := map[string]*core.Dataset{}
	for _, spec := range boards {
		ds, err := s.Collect(ctx, spec.Name, workloads.ModelingSet())
		if err != nil {
			cliflags.Fatal("model", err)
		}
		dropped := map[string]string{}
		for _, d := range ds.Dropped {
			fmt.Fprintf(os.Stderr, "dropped: %s / %s (%s)\n", spec.Name, d.Benchmark, d.Point)
			dropped[d.Benchmark] = fmt.Sprintf("retry budget exhausted at %s; dropped from the modeling set", d.Point)
		}
		if tr != nil {
			if err := validity.ObserveModeling(tr, spec.Name, benchNames, dropped); err != nil {
				cliflags.Fatal("model", err)
			}
		}
		if len(ds.Rows) == 0 {
			cliflags.Fatal("model", fmt.Errorf("%s: no modeling data survived the fault campaign", spec.Name))
		}
		datasets[spec.Name] = ds
	}
	if tr != nil {
		trep := tr.Finalize()
		fmt.Fprintln(os.Stderr, trep.Summary())
		if cfg.TriageOut != "" {
			if err := trep.WriteFile(cfg.TriageOut); err != nil {
				cliflags.Fatal("model", err)
			}
		}
	}
	train := func(ds *core.Dataset, kind core.Kind) *core.Model {
		m, err := s.Model(ctx, ds, kind)
		if err != nil {
			cliflags.Fatal("model", err)
		}
		return m
	}

	switch *fig {
	case 0:
		r2 := map[string][2]float64{}
		evals := map[string][2]*core.Eval{}
		for _, spec := range boards {
			ds := datasets[spec.Name]
			pm := train(ds, core.Power)
			tm := train(ds, core.Time)
			pe, te := pm.Evaluate(ds.Rows), tm.Evaluate(ds.Rows)
			r2[spec.Name] = [2]float64{pe.AdjR2, te.AdjR2}
			evals[spec.Name] = [2]*core.Eval{pe, te}
			if *saveDir != "" {
				persist(*saveDir, spec.Name, ds, pm, tm)
			}
		}
		fmt.Println(report.Table56(r2, boards).String())
		fmt.Println(report.Table78(evals, boards).String())
		if *diagnose {
			for _, spec := range boards {
				ds := datasets[spec.Name]
				for _, kind := range []core.Kind{core.Power, core.Time} {
					m := train(ds, kind)
					diags, err := m.Diagnose(ds.Rows)
					if err != nil {
						cliflags.Fatal("model", err)
					}
					cond, err := m.SelectionConditionNumber(ds.Rows)
					if err != nil {
						cliflags.Fatal("model", err)
					}
					t := report.NewTable(
						fmt.Sprintf("Diagnostics — %s model (%s), condition number %.1f", kind, spec.Name, cond),
						"Variable", "VIF", "Std. coef")
					for _, d := range diags {
						t.AddRowf(d.Variable, fmt.Sprintf("%.1f", d.VIF), fmt.Sprintf("%+.3f", d.StdCoef))
					}
					fmt.Println(t.String())
				}
			}
		}

	case 5, 6:
		kind := core.Power
		if *fig == 6 {
			kind = core.Time
		}
		for _, spec := range boards {
			ds := datasets[spec.Name]
			m := train(ds, kind)
			title := fmt.Sprintf("Fig. %d — %s-model error distribution on %s", *fig, kind, spec.Name)
			fmt.Println(report.Fig56(title, m.PerBenchmarkErrors(ds.Rows)).String())
		}

	case 7, 8:
		kind := core.Power
		if *fig == 8 {
			kind = core.Time
		}
		for _, spec := range boards {
			points, err := variableSweep(ctx, datasets[spec.Name], kind)
			if err != nil {
				cliflags.Fatal("model", err)
			}
			title := fmt.Sprintf("Fig. %d — impact of explanatory variables on the %s model (%s)", *fig, kind, spec.Name)
			fmt.Println(report.Fig78(title, points).String())
		}

	case 9, 10:
		kind := core.Power
		if *fig == 10 {
			kind = core.Time
		}
		for _, spec := range boards {
			cols, err := core.PerPairComparison(datasets[spec.Name], kind, *vars)
			if err != nil {
				cliflags.Fatal("model", err)
			}
			title := fmt.Sprintf("Fig. %d — per-pair vs unified %s models (%s)", *fig, kind, spec.Name)
			fmt.Println(report.Fig910(title, cols))
		}

	case 11:
		for _, spec := range boards {
			ds := datasets[spec.Name]
			for _, kind := range []core.Kind{core.Power, core.Time} {
				m := train(ds, kind)
				title := fmt.Sprintf("Fig. 11 — selected variables and influence, %s model (%s)", kind, spec.Name)
				fmt.Println(report.Fig11(title, m.Influences(ds.Rows)).String())
			}
		}

	default:
		cliflags.Fatal("model", fmt.Errorf("no Fig. %d in the paper's Section IV (want 5–11)", *fig))
	}

	if err := camp.WriteArtifacts(cfg.Obs); err != nil {
		cliflags.Fatal("model", err)
	}
}

// variableSweep is core.VariableSweep with a cancellation check between
// cap sizes.
func variableSweep(ctx context.Context, ds *core.Dataset, kind core.Kind) ([]core.SweepPoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("model: variable sweep cancelled: %w", context.Cause(ctx))
	}
	return core.VariableSweep(ds, kind, 5, 20)
}

// persist writes the dataset and both trained models under dir, named by
// board (e.g. "gtx-680.power.json").
func persist(dir, board string, ds *core.Dataset, pm, tm *core.Model) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		cliflags.Fatal("model", err)
	}
	slug := strings.ToLower(strings.ReplaceAll(board, " ", "-"))
	write := func(name string, save func(io.Writer) error) {
		path := filepath.Join(dir, slug+"."+name+".json")
		f, err := os.Create(path)
		if err != nil {
			cliflags.Fatal("model", err)
		}
		defer f.Close()
		if err := save(f); err != nil {
			cliflags.Fatal("model", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	write("dataset", ds.Save)
	write("power", pm.Save)
	write("time", tm.Save)
}
