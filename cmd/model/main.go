// Command model regenerates the Section IV artifacts: Tables V–VIII and
// Figs. 5–11 — the unified statistical power and performance models.
//
// Usage:
//
//	model                      print Tables V–VIII (default)
//	model -fig 5|6|7|8|9|10|11 print one figure
//	model -board "GTX 680"     restrict figures to one board
//	model -vars 15             override the 10-variable cap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/core"
	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
	"gpuperf/internal/regress"
	"gpuperf/internal/report"
	"gpuperf/internal/trace"
	"gpuperf/internal/workloads"
)

func main() {
	fig := flag.Int("fig", 0, "print Fig. 5–11 instead of the tables")
	board := flag.String("board", "", "restrict figures to one board (default: all)")
	vars := flag.Int("vars", core.MaxVariables, "explanatory-variable cap")
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"collect pool width; 1 is the bit-exact sequential reference (output is identical at any width)")
	saveDir := flag.String("save", "", "directory to write trained models and datasets as JSON")
	diagnose := flag.Bool("diagnose", false, "print per-variable VIF and standardized coefficients")
	faults := flag.String("faults", "",
		`fault-injection profile, e.g. "launch.hang:0.02,meter.drop:0.001" (empty: fault-free)`)
	maxRetries := flag.Int("max-retries", fault.DefaultMaxRetries,
		"transient-fault retry budget per boot/clock-set/metered run")
	launchTimeout := flag.Duration("launch-timeout", fault.DefaultLaunchTimeout,
		"per-run watchdog deadline for hung launches")
	traceOut := flag.String("trace-out", "",
		"write a Chrome/Perfetto trace of the collection to this path")
	metricsOut := flag.String("metrics-out", "",
		"write Prometheus-style metrics exposition to this path")
	progress := flag.Bool("progress", false,
		"print a periodic one-line collection status to stderr (implies instrumentation)")
	flag.Parse()

	if err := fault.ValidateHarness(*workers, *maxRetries, *launchTimeout); err != nil {
		usage(err)
	}
	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" || *progress {
		rec = obs.New()
		defer regress.Observe(rec.Metrics())()
	}
	if *progress {
		stop := rec.StartProgress(os.Stderr, 2*time.Second,
			"core_rows_total", "fault_retries_total", "core_benches_dropped_total",
			"driver_launch_cache_hits_total")
		defer stop()
	}
	var res *fault.Resilience
	if *faults != "" {
		p, err := fault.ParseProfile(*faults)
		if err != nil {
			usage(err)
		}
		res = &fault.Resilience{
			Campaign:      &fault.Campaign{Profile: p, Seed: *seed},
			MaxRetries:    *maxRetries,
			LaunchTimeout: *launchTimeout,
		}
	}
	if rec != nil {
		// Instrumented runs route through the resilient collector even
		// fault-free — its dataset is byte-identical to CollectParallel.
		if res == nil {
			res = &fault.Resilience{MaxRetries: *maxRetries, LaunchTimeout: *launchTimeout}
		}
		res.Obs = rec
	}

	boards := arch.AllBoards()
	if *board != "" {
		spec := arch.BoardByName(*board)
		if spec == nil {
			fatal(fmt.Errorf("unknown board %q", *board))
		}
		boards = []*arch.Spec{spec}
	}

	datasets := map[string]*core.Dataset{}
	for _, spec := range boards {
		var ds *core.Dataset
		var err error
		if res != nil {
			ds, err = core.CollectResilient(spec.Name, workloads.ModelingSet(), *seed, *workers, res)
		} else {
			ds, err = core.CollectParallel(spec.Name, workloads.ModelingSet(), *seed, *workers)
		}
		if err != nil {
			fatal(err)
		}
		for _, d := range ds.Dropped {
			fmt.Fprintf(os.Stderr, "dropped: %s / %s (%s)\n", spec.Name, d.Benchmark, d.Point)
		}
		if len(ds.Rows) == 0 {
			fatal(fmt.Errorf("%s: no modeling data survived the fault campaign", spec.Name))
		}
		datasets[spec.Name] = ds
	}

	switch *fig {
	case 0:
		r2 := map[string][2]float64{}
		evals := map[string][2]*core.Eval{}
		for _, spec := range boards {
			ds := datasets[spec.Name]
			pm := train(ds, core.Power, *vars)
			tm := train(ds, core.Time, *vars)
			pe, te := pm.Evaluate(ds.Rows), tm.Evaluate(ds.Rows)
			r2[spec.Name] = [2]float64{pe.AdjR2, te.AdjR2}
			evals[spec.Name] = [2]*core.Eval{pe, te}
			if *saveDir != "" {
				persist(*saveDir, spec.Name, ds, pm, tm)
			}
		}
		fmt.Println(report.Table56(r2, boards).String())
		fmt.Println(report.Table78(evals, boards).String())
		if *diagnose {
			for _, spec := range boards {
				ds := datasets[spec.Name]
				for _, kind := range []core.Kind{core.Power, core.Time} {
					m := train(ds, kind, *vars)
					diags, err := m.Diagnose(ds.Rows)
					if err != nil {
						fatal(err)
					}
					cond, err := m.SelectionConditionNumber(ds.Rows)
					if err != nil {
						fatal(err)
					}
					t := report.NewTable(
						fmt.Sprintf("Diagnostics — %s model (%s), condition number %.1f", kind, spec.Name, cond),
						"Variable", "VIF", "Std. coef")
					for _, d := range diags {
						t.AddRowf(d.Variable, fmt.Sprintf("%.1f", d.VIF), fmt.Sprintf("%+.3f", d.StdCoef))
					}
					fmt.Println(t.String())
				}
			}
		}

	case 5, 6:
		kind := core.Power
		if *fig == 6 {
			kind = core.Time
		}
		for _, spec := range boards {
			ds := datasets[spec.Name]
			m := train(ds, kind, *vars)
			title := fmt.Sprintf("Fig. %d — %s-model error distribution on %s", *fig, kind, spec.Name)
			fmt.Println(report.Fig56(title, m.PerBenchmarkErrors(ds.Rows)).String())
		}

	case 7, 8:
		kind := core.Power
		if *fig == 8 {
			kind = core.Time
		}
		for _, spec := range boards {
			points, err := core.VariableSweep(datasets[spec.Name], kind, 5, 20)
			if err != nil {
				fatal(err)
			}
			title := fmt.Sprintf("Fig. %d — impact of explanatory variables on the %s model (%s)", *fig, kind, spec.Name)
			fmt.Println(report.Fig78(title, points).String())
		}

	case 9, 10:
		kind := core.Power
		if *fig == 10 {
			kind = core.Time
		}
		for _, spec := range boards {
			cols, err := core.PerPairComparison(datasets[spec.Name], kind, *vars)
			if err != nil {
				fatal(err)
			}
			title := fmt.Sprintf("Fig. %d — per-pair vs unified %s models (%s)", *fig, kind, spec.Name)
			fmt.Println(report.Fig910(title, cols))
		}

	case 11:
		for _, spec := range boards {
			ds := datasets[spec.Name]
			for _, kind := range []core.Kind{core.Power, core.Time} {
				m := train(ds, kind, *vars)
				title := fmt.Sprintf("Fig. 11 — selected variables and influence, %s model (%s)", kind, spec.Name)
				fmt.Println(report.Fig11(title, m.Influences(ds.Rows)).String())
			}
		}

	default:
		fatal(fmt.Errorf("no Fig. %d in the paper's Section IV (want 5–11)", *fig))
	}

	if err := trace.WriteArtifacts(rec, *traceOut, *metricsOut, ""); err != nil {
		fatal(err)
	}
}

func train(ds *core.Dataset, kind core.Kind, vars int) *core.Model {
	m, err := core.Train(ds, kind, vars)
	if err != nil {
		fatal(err)
	}
	return m
}

// persist writes the dataset and both trained models under dir, named by
// board (e.g. "gtx-680.power.json").
func persist(dir, board string, ds *core.Dataset, pm, tm *core.Model) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	slug := strings.ToLower(strings.ReplaceAll(board, " ", "-"))
	write := func(name string, save func(io.Writer) error) {
		path := filepath.Join(dir, slug+"."+name+".json")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := save(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	write("dataset", ds.Save)
	write("power", pm.Save)
	write("time", tm.Save)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "model:", err)
	os.Exit(1)
}

// usage reports a flag-validation error and exits 2, like flag's own
// parse failures.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "model:", err)
	flag.Usage()
	os.Exit(2)
}
