// Command vbios builds, inspects and patches synthetic VBIOS images — the
// clock-control path of Section II-B. A board's available frequency pairs
// live in the image's performance table; forcing boot clocks means patching
// the image and fixing its checksum, exactly as the paper does on real
// driver binaries.
//
// Usage:
//
//	vbios -build "GTX 680" -o gtx680.rom     synthesize a pristine image
//	vbios -inspect gtx680.rom                decode and print an image
//	vbios -patch M-L gtx680.rom              set the boot performance level
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf/internal/arch"
	"gpuperf/internal/bios"
	"gpuperf/internal/clock"
)

func main() {
	build := flag.String("build", "", "board name to synthesize an image for")
	out := flag.String("o", "vbios.rom", "output path for -build")
	inspect := flag.String("inspect", "", "image path to decode and print")
	patch := flag.String("patch", "", "boot pair (e.g. M-L) to patch into the image argument")
	flag.Parse()

	switch {
	case *build != "":
		spec := arch.BoardByName(*build)
		if spec == nil {
			fatal(fmt.Errorf("unknown board %q", *build))
		}
		img := bios.Build(spec)
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes) for %s\n", *out, len(img), spec.Name)

	case *inspect != "":
		img, err := os.ReadFile(*inspect)
		if err != nil {
			fatal(err)
		}
		decoded, err := bios.Parse(img)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("board       %s (%s)\n", decoded.BoardName, decoded.Generation)
		fmt.Printf("boot clocks %s\n", decoded.Boot)
		fmt.Printf("checksum    ok\n")
		fmt.Printf("perf table:\n")
		for _, l := range arch.Levels() {
			e := decoded.Table[l]
			fmt.Printf("  %s: core %4.0f MHz @ %d mV, mem %4.0f MHz @ %d mV, pair mask %03b\n",
				l, e.CoreMHz, e.CoreMV, e.MemMHz, e.MemMV, e.PairMask)
		}
		fmt.Printf("valid pairs:")
		for _, p := range decoded.ValidPairs() {
			fmt.Printf(" %s", p)
		}
		fmt.Println()

	case *patch != "":
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-patch needs the image path as argument"))
		}
		path := flag.Arg(0)
		pair, err := clock.ParsePair(*patch)
		if err != nil {
			fatal(err)
		}
		img, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := bios.PatchBootPair(img, pair); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("patched %s: boot clocks now %s\n", path, pair)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbios:", err)
	os.Exit(1)
}
