// Command gpulint runs the project-specific static-analysis suite over
// the module: unit safety of the MHz/Hz clock conventions, completeness
// of the core-event/memory-event counter classification, error hygiene,
// and concurrency hygiene. See internal/lint for the analyzer
// rationale and docs/ARCHITECTURE.md for how to add a rule.
//
// Usage:
//
//	gpulint [-json] [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpuperf/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line (file, line, col, analyzer, message)")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "gpulint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fail(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are typed relative to the working directory; the loader
	// resolves them against the module root.
	for i, p := range patterns {
		if p != "./..." && p != "..." && !filepath.IsAbs(p) {
			patterns[i] = filepath.Join(cwd, p)
		}
	}

	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fail(err)
	}
	diags := lint.Run(pkgs, analyzers)

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(cwd, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		if *jsonOut {
			if err := enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}); err != nil {
				fail(err)
			}
		} else {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "gpulint: %d findings in %d packages\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gpulint: %v\n", err)
	os.Exit(2)
}
