// Command gpulint runs the project-specific static-analysis suite over
// the module: unit safety of the MHz/Hz clock conventions, completeness
// of the core-event/memory-event counter classification, error hygiene,
// concurrency hygiene, and the cross-function determinism-taint pass
// guarding the byte-identity contract. See internal/lint for the
// analyzer rationale and docs/ARCHITECTURE.md for how to add a rule.
//
// Usage:
//
//	gpulint [-json] [-why] [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// -why prints, under each interprocedural finding, the source→sink call
// path that produced it (in -json mode it adds a "trace" field).
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpuperf/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line (file, line, col, analyzer, message)")
	why := flag.Bool("why", false, "print the source→sink call path under each interprocedural finding")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "gpulint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fail(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are typed relative to the working directory; the loader
	// resolves them against the module root.
	for i, p := range patterns {
		if p != "./..." && p != "..." && !filepath.IsAbs(p) {
			patterns[i] = filepath.Join(cwd, p)
		}
	}

	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fail(err)
	}
	diags := lint.Run(pkgs, analyzers)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags, cwd, *why); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			if *why {
				for _, s := range d.Trace {
					fmt.Printf("\t%s:%d:%d: %s\n", rel(cwd, s.Pos.Filename), s.Pos.Line, s.Pos.Column, s.Desc)
				}
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "gpulint: %d findings in %d packages\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}

// rel shortens path relative to base when it stays inside base.
func rel(base, path string) string {
	if r, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gpulint: %v\n", err)
	os.Exit(2)
}
