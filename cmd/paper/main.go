// Command paper runs the complete reproduction — every table and figure of
// the paper, the ablations and the Radeon future-work extension — and
// writes one consolidated text report.
//
// Usage:
//
//	paper                      full report to stdout (~10 s)
//	paper -o report.txt        write to a file
//	paper -quick               characterization only (seconds)
//	paper -board "GTX 680"     restrict to one board
//	paper -faults "launch.hang:0.02" -max-retries 5
//	                           chaos campaign: inject faults, retry, quarantine
//	paper -checkpoint j.jsonl  journal sweep cells; resume after a crash
//	paper -repetitions 5 -min-valid 3 -triage-out reports/baseline.json
//	                           repetition cohort: triage every cell and write
//	                           the machine-readable validity report
//	paper -trace-out t.json -metrics-out m.txt
//	                           record the campaign: Perfetto trace + metrics
//
// An interrupt (Ctrl-C) cancels the campaign at the next cell boundary;
// with -checkpoint the journal stays resumable.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf/internal/cliflags"
	"gpuperf/internal/report"
	"gpuperf/internal/reproduce"
	"gpuperf/internal/session"
	"gpuperf/internal/workloads"
)

func main() {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	quick := flag.Bool("quick", false, "characterization only (skip modeling, ablations, future work)")
	board := flag.String("board", "", "restrict to one board")
	artifacts := flag.String("artifacts", "", "also write per-table/figure CSVs into this directory")
	camp := cliflags.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := camp.StartProfiling()
	if err != nil {
		cliflags.Fatal("paper", err)
	}
	defer stopProf()

	var boards []string
	if *board != "" {
		boards = []string{*board}
	}
	cfg, err := camp.Config(boards...)
	if err != nil {
		cliflags.Usage("paper", err)
	}
	cfg.ArtifactsDir = *artifacts
	s, err := session.Open(cfg)
	if err != nil {
		cliflags.Fatal("paper", err)
	}
	defer s.Close()
	ctx, stop := cliflags.SignalContext()
	defer stop()

	defer camp.StartProgress(ctx, cfg.Obs, os.Stderr,
		"characterize_cells_total", "core_rows_total", "fault_retries_total",
		"characterize_cells_quarantined_total", "driver_launch_cache_hits_total",
		"meter_windows_interpolated_total")()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cliflags.Fatal("paper", err)
		}
		defer f.Close()
		w = f
	}
	if cfg.FleetSize >= 1 {
		// A fleet campaign replaces the paper reproduction with the
		// population report over the Table IV set.
		rep, err := s.Fleet(ctx, workloads.Table4())
		if err != nil {
			cliflags.Fatal("paper", err)
		}
		fmt.Fprint(w, report.FleetSummary(rep))
		if err := camp.WriteArtifacts(cfg.Obs); err != nil {
			cliflags.Fatal("paper", err)
		}
		return
	}
	var tweaks []func(*reproduce.Options)
	if *quick {
		tweaks = append(tweaks, reproduce.Quick)
	}
	res, err := s.Reproduce(ctx, w, tweaks...)
	if err != nil {
		cliflags.Fatal("paper", err)
	}
	if err := camp.WriteArtifacts(cfg.Obs); err != nil {
		cliflags.Fatal("paper", err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", res.Elapsed)
}
