// Command paper runs the complete reproduction — every table and figure of
// the paper, the ablations and the Radeon future-work extension — and
// writes one consolidated text report.
//
// Usage:
//
//	paper                      full report to stdout (~10 s)
//	paper -o report.txt        write to a file
//	paper -quick               characterization only (seconds)
//	paper -board "GTX 680"     restrict to one board
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gpuperf/internal/driver"
	"gpuperf/internal/reproduce"
)

func main() {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	quick := flag.Bool("quick", false, "characterization only (skip modeling, ablations, future work)")
	board := flag.String("board", "", "restrict to one board")
	artifacts := flag.String("artifacts", "", "also write per-table/figure CSVs into this directory")
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep/collect pool width; 1 is the bit-exact sequential reference (output is identical at any width)")
	nocache := flag.Bool("nocache", false,
		"disable launch memoization (uncached reference mode; output is identical either way)")
	flag.Parse()

	if *nocache {
		driver.SetLaunchCachingEnabled(false)
	}
	opts := reproduce.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	if *quick {
		opts.Modeling = false
		opts.Ablations = false
		opts.FutureWork = false
		opts.SelfCheck = false
	}
	if *board != "" {
		opts.Boards = []string{*board}
	}
	opts.ArtifactsDir = *artifacts

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	res, err := reproduce.Run(opts, w)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", res.Elapsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
