// Command paper runs the complete reproduction — every table and figure of
// the paper, the ablations and the Radeon future-work extension — and
// writes one consolidated text report.
//
// Usage:
//
//	paper                      full report to stdout (~10 s)
//	paper -o report.txt        write to a file
//	paper -quick               characterization only (seconds)
//	paper -board "GTX 680"     restrict to one board
//	paper -faults "launch.hang:0.02" -max-retries 5
//	                           chaos campaign: inject faults, retry, quarantine
//	paper -checkpoint j.jsonl  journal sweep cells; resume after a crash
//	paper -trace-out t.json -metrics-out m.txt
//	                           record the campaign: Perfetto trace + metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
	"gpuperf/internal/reproduce"
	"gpuperf/internal/trace"
)

func main() {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	quick := flag.Bool("quick", false, "characterization only (skip modeling, ablations, future work)")
	board := flag.String("board", "", "restrict to one board")
	artifacts := flag.String("artifacts", "", "also write per-table/figure CSVs into this directory")
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep/collect pool width; 1 is the bit-exact sequential reference (output is identical at any width)")
	nocache := flag.Bool("nocache", false,
		"disable launch memoization (uncached reference mode; output is identical either way)")
	faults := flag.String("faults", "",
		`fault-injection profile, e.g. "launch.hang:0.02,meter.drop:0.001" (empty: fault-free)`)
	maxRetries := flag.Int("max-retries", fault.DefaultMaxRetries,
		"transient-fault retry budget per boot/clock-set/metered run")
	launchTimeout := flag.Duration("launch-timeout", fault.DefaultLaunchTimeout,
		"per-run watchdog deadline for hung launches")
	checkpoint := flag.String("checkpoint", "",
		"journal completed sweep cells to this path and resume from it")
	traceOut := flag.String("trace-out", "",
		"write a Chrome/Perfetto trace of the campaign to this path")
	metricsOut := flag.String("metrics-out", "",
		"write Prometheus-style metrics exposition to this path")
	eventsOut := flag.String("events-out", "",
		"write the raw instrumentation events as JSONL to this path")
	progress := flag.Bool("progress", false,
		"print a periodic one-line campaign status to stderr (implies instrumentation)")
	flag.Parse()

	if err := fault.ValidateHarness(*workers, *maxRetries, *launchTimeout); err != nil {
		usage(err)
	}
	if *nocache {
		driver.SetLaunchCachingEnabled(false)
	}
	opts := reproduce.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	if *quick {
		opts.Modeling = false
		opts.Ablations = false
		opts.FutureWork = false
		opts.SelfCheck = false
	}
	if *board != "" {
		opts.Boards = []string{*board}
	}
	opts.ArtifactsDir = *artifacts
	if *faults != "" {
		p, err := fault.ParseProfile(*faults)
		if err != nil {
			usage(err)
		}
		opts.Faults = p
	}
	opts.MaxRetries = *maxRetries
	opts.LaunchTimeout = *launchTimeout
	opts.Checkpoint = *checkpoint
	if *traceOut != "" || *metricsOut != "" || *eventsOut != "" || *progress {
		opts.Obs = obs.New()
	}
	if *progress {
		stop := opts.Obs.StartProgress(os.Stderr, 2*time.Second,
			"characterize_cells_total", "core_rows_total", "fault_retries_total",
			"characterize_cells_quarantined_total", "driver_launch_cache_hits_total",
			"meter_windows_interpolated_total")
		defer stop()
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	res, err := reproduce.Run(opts, w)
	if err != nil {
		fatal(err)
	}
	if err := trace.WriteArtifacts(opts.Obs, *traceOut, *metricsOut, *eventsOut); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", res.Elapsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}

// usage reports a flag-validation error and exits 2, like flag's own
// parse failures.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	flag.Usage()
	os.Exit(2)
}
