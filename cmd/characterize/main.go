// Command characterize regenerates the Section III artifacts: Tables I,
// III and IV and Figs. 1–4.
//
// Usage:
//
//	characterize -table 1|3|4        print one table
//	characterize -fig 1|2|3|4        print one figure
//	characterize -all                print everything (default)
//	characterize -csv                emit CSV instead of aligned text
//	characterize -board "GTX 680"    restrict to one board
//
// An interrupt (Ctrl-C) cancels the sweeps at the next cell boundary;
// with -checkpoint the journal stays resumable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/cliflags"
	"gpuperf/internal/driver"
	"gpuperf/internal/report"
	"gpuperf/internal/session"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

func main() {
	table := flag.Int("table", 0, "print Table 1, 3 or 4")
	suite := flag.Bool("suite", false, "print the Table II workload characterization summary")
	fig := flag.Int("fig", 0, "print Fig. 1, 2, 3 or 4")
	all := flag.Bool("all", false, "print every Section III artifact")
	csv := flag.Bool("csv", false, "emit CSV where available")
	md := flag.Bool("md", false, "emit Markdown tables instead of aligned text")
	board := flag.String("board", "", "restrict to one board")
	bench := flag.String("bench", "",
		"comma-separated benchmark restriction for fleet campaigns (default: the Table IV set)")
	camp := cliflags.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := camp.StartProfiling()
	if err != nil {
		cliflags.Fatal("characterize", err)
	}
	defer stopProf()

	var restrict []string
	if *board != "" {
		restrict = []string{*board}
	}
	cfg, err := camp.Config(restrict...)
	if err != nil {
		cliflags.Usage("characterize", err)
	}
	s, err := session.Open(cfg)
	if err != nil {
		cliflags.Fatal("characterize", err)
	}
	defer s.Close()
	ctx, stop := cliflags.SignalContext()
	defer stop()

	defer camp.StartProgress(ctx, cfg.Obs, os.Stderr,
		"characterize_cells_total", "fault_retries_total",
		"characterize_cells_quarantined_total", "driver_launch_cache_hits_total")()

	if cfg.FleetSize >= 1 {
		// Fleet campaigns replace the per-board artifacts with the
		// population report; the other selection flags don't apply.
		benches := workloads.Table4()
		if *bench != "" {
			benches = nil
			for _, name := range strings.Split(*bench, ",") {
				b := workloads.ByName(strings.TrimSpace(name))
				if b == nil {
					cliflags.Usage("characterize", fmt.Errorf("unknown benchmark %q", name))
				}
				benches = append(benches, b)
			}
		}
		rep, err := s.Fleet(ctx, benches)
		if err != nil {
			cliflags.Fatal("characterize", err)
		}
		fmt.Print(report.FleetSummary(rep))
		if err := camp.WriteArtifacts(cfg.Obs); err != nil {
			cliflags.Fatal("characterize", err)
		}
		return
	}
	if *bench != "" {
		cliflags.Usage("characterize", fmt.Errorf("-bench requires -fleet-size ≥ 1"))
	}

	if *table == 0 && *fig == 0 && !*suite {
		*all = true
	}
	boards := s.Boards()
	emit := func(t *report.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}

	if *suite {
		emit(suiteSummary())
	}
	if *all || *table == 1 {
		emit(report.Table1(boards))
	}
	if *all || *table == 3 {
		emit(report.Table3(boards))
	}

	figBench := map[int]string{1: "backprop", 2: "streamcluster", 3: "gaussian"}
	for n := 1; n <= 3; n++ {
		if !*all && *fig != n {
			continue
		}
		name := figBench[n]
		for _, spec := range boards {
			results, err := s.SweepBoard(ctx, spec.Name, []*workloads.Benchmark{workloads.ByName(name)})
			if err != nil {
				cliflags.Fatal("characterize", err)
			}
			curves := characterize.Curves(results[0], spec)
			title := fmt.Sprintf("Fig. %d — Performance and power efficiency of %s on %s", n, name, spec.Name)
			emit(report.FigCurves(title, spec, curves))
			if !*csv && !*md {
				// Paper-style panels: one chart per metric.
				perf := report.NewChart(title+" — performance", "core MHz", "perf vs (H-H)")
				eff := report.NewChart(title+" — power efficiency", "core MHz", "1/energy vs (H-H)")
				for _, c := range curves {
					var xs, perfY, effY []float64
					for _, p := range c.Points {
						xs = append(xs, p.CoreMHz)
						perfY = append(perfY, p.Perf)
						effY = append(effY, p.Efficiency)
					}
					label := "Mem-" + c.MemLevel.String()
					if err := perf.AddSeries(label, xs, perfY); err != nil {
						cliflags.Fatal("characterize", err)
					}
					if err := eff.AddSeries(label, xs, effY); err != nil {
						cliflags.Fatal("characterize", err)
					}
				}
				fmt.Println(perf.String())
				fmt.Println(eff.String())
			}
		}
	}

	if *all || *table == 4 || *fig == 4 {
		// Repeat is Sweep run Repetitions times; repetition 0 (rendered
		// below) is bit-identical to a single sweep, and the triage engine
		// judges every cell across the cohort when triage is engaged.
		repsRes, err := s.Repeat(ctx, workloads.Table4())
		if err != nil {
			cliflags.Fatal("characterize", err)
		}
		results := repsRes[0]
		var tr *validity.Triage
		if cfg.Repetitions > 1 || cfg.TriageOut != "" || cfg.MinValid > 0 {
			tr = s.NewTriage()
			if err := characterize.ObserveTriageReps(tr, "table4", repsRes); err != nil {
				cliflags.Fatal("characterize", err)
			}
		}
		if *all || *table == 4 {
			emit(report.Table4(boards, results, tr))
		}
		if *all || *fig == 4 {
			fmt.Println(report.Fig4(boards, results))
		}
		for _, d := range characterize.Degradations(results) {
			fmt.Fprintln(os.Stderr, "degraded:", d.Line)
		}
		if tr != nil {
			trep := tr.Finalize()
			fmt.Fprintln(os.Stderr, trep.Summary())
			if cfg.TriageOut != "" {
				if err := trep.WriteFile(cfg.TriageOut); err != nil {
					cliflags.Fatal("characterize", err)
				}
			}
		}
	}
	if err := camp.WriteArtifacts(cfg.Obs); err != nil {
		cliflags.Fatal("characterize", err)
	}
}

// suiteSummary characterizes every Table II benchmark on the GTX 480 at
// the default clocks: binding resource, GPU runtime, host fraction and
// whether it appears in the Table IV / modeling sets.
func suiteSummary() *report.Table {
	t := report.NewTable("TABLE II — workload characterization (GTX 480, (H-H))",
		"Benchmark", "Suite", "Bound by", "GPU ms/iter", "Host %", "Table IV", "Modeled")
	spec := arch.GTX480()
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		cliflags.Fatal("characterize", err)
	}
	for _, b := range workloads.All() {
		var gpuTime float64
		bound := ""
		var boundDur float64
		for _, k := range b.Kernels(1) {
			an, err := dev.Analyze(k)
			if err != nil {
				cliflags.Fatal("characterize", err)
			}
			gpuTime += an.Time
			for _, p := range an.Phases {
				if p.Duration > boundDur {
					boundDur = p.Duration
					bound = p.Bottleneck
				}
			}
		}
		host := b.HostGap(1)
		hostPct := host / (host + gpuTime) * 100
		t.AddRowf(b.Name, b.Suite.String(), bound,
			fmt.Sprintf("%.1f", gpuTime*1e3),
			fmt.Sprintf("%.0f", hostPct),
			yesNo(b.InTable4), yesNo(b.Modeled))
	}
	return t
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "-"
}
