// Command characterize regenerates the Section III artifacts: Tables I,
// III and IV and Figs. 1–4.
//
// Usage:
//
//	characterize -table 1|3|4        print one table
//	characterize -fig 1|2|3|4        print one figure
//	characterize -all                print everything (default)
//	characterize -csv                emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
	"gpuperf/internal/report"
	"gpuperf/internal/trace"
	"gpuperf/internal/workloads"
)

func main() {
	table := flag.Int("table", 0, "print Table 1, 3 or 4")
	suite := flag.Bool("suite", false, "print the Table II workload characterization summary")
	fig := flag.Int("fig", 0, "print Fig. 1, 2, 3 or 4")
	all := flag.Bool("all", false, "print every Section III artifact")
	csv := flag.Bool("csv", false, "emit CSV where available")
	md := flag.Bool("md", false, "emit Markdown tables instead of aligned text")
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep pool width; 1 is the bit-exact sequential reference (output is identical at any width)")
	faults := flag.String("faults", "",
		`fault-injection profile, e.g. "launch.hang:0.02,meter.drop:0.001" (empty: fault-free)`)
	maxRetries := flag.Int("max-retries", fault.DefaultMaxRetries,
		"transient-fault retry budget per boot/clock-set/metered run")
	launchTimeout := flag.Duration("launch-timeout", fault.DefaultLaunchTimeout,
		"per-run watchdog deadline for hung launches")
	checkpoint := flag.String("checkpoint", "",
		"journal completed sweep cells to this path and resume from it")
	traceOut := flag.String("trace-out", "",
		"write a Chrome/Perfetto trace of the sweeps to this path")
	metricsOut := flag.String("metrics-out", "",
		"write Prometheus-style metrics exposition to this path")
	progress := flag.Bool("progress", false,
		"print a periodic one-line sweep status to stderr (implies instrumentation)")
	flag.Parse()

	if err := fault.ValidateHarness(*workers, *maxRetries, *launchTimeout); err != nil {
		usage(err)
	}
	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" || *progress {
		rec = obs.New()
	}
	if *progress {
		stop := rec.StartProgress(os.Stderr, 2*time.Second,
			"characterize_cells_total", "fault_retries_total",
			"characterize_cells_quarantined_total", "driver_launch_cache_hits_total")
		defer stop()
	}
	var res *fault.Resilience
	var journal *characterize.Journal
	if *faults != "" || *checkpoint != "" {
		var profile *fault.Profile
		if *faults != "" {
			p, err := fault.ParseProfile(*faults)
			if err != nil {
				usage(err)
			}
			profile = p
		}
		res = &fault.Resilience{
			Campaign:      &fault.Campaign{Profile: profile, Seed: *seed},
			MaxRetries:    *maxRetries,
			LaunchTimeout: *launchTimeout,
		}
		if *checkpoint != "" {
			spec := ""
			if profile != nil {
				spec = profile.String()
			}
			j, err := characterize.OpenJournal(*checkpoint, *seed, spec)
			if err != nil {
				fatal(err)
			}
			defer j.Close()
			journal = j
		}
	}
	// Instrumented runs route through the resilient path even fault-free —
	// its output is byte-identical to the plain sweep.
	sweepBoard := func(boardName string, benches []*workloads.Benchmark) ([]*characterize.BenchResult, error) {
		if res == nil && rec == nil {
			return characterize.SweepBoardParallel(boardName, benches, *seed, *workers)
		}
		return characterize.SweepBoardR(boardName, benches,
			characterize.SweepOptions{Seed: *seed, Workers: *workers, Res: res, Journal: journal, Obs: rec})
	}

	if *table == 0 && *fig == 0 && !*suite {
		*all = true
	}
	boards := arch.AllBoards()
	emit := func(t *report.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}

	if *suite {
		emit(suiteSummary())
	}
	if *all || *table == 1 {
		emit(report.Table1(boards))
	}
	if *all || *table == 3 {
		emit(report.Table3(boards))
	}

	figBench := map[int]string{1: "backprop", 2: "streamcluster", 3: "gaussian"}
	for n := 1; n <= 3; n++ {
		if !*all && *fig != n {
			continue
		}
		name := figBench[n]
		for _, spec := range boards {
			results, err := sweepBoard(spec.Name, []*workloads.Benchmark{workloads.ByName(name)})
			if err != nil {
				fatal(err)
			}
			curves := characterize.Curves(results[0], spec)
			title := fmt.Sprintf("Fig. %d — Performance and power efficiency of %s on %s", n, name, spec.Name)
			emit(report.FigCurves(title, spec, curves))
			if !*csv && !*md {
				// Paper-style panels: one chart per metric.
				perf := report.NewChart(title+" — performance", "core MHz", "perf vs (H-H)")
				eff := report.NewChart(title+" — power efficiency", "core MHz", "1/energy vs (H-H)")
				for _, c := range curves {
					var xs, perfY, effY []float64
					for _, p := range c.Points {
						xs = append(xs, p.CoreMHz)
						perfY = append(perfY, p.Perf)
						effY = append(effY, p.Efficiency)
					}
					label := "Mem-" + c.MemLevel.String()
					if err := perf.AddSeries(label, xs, perfY); err != nil {
						fatal(err)
					}
					if err := eff.AddSeries(label, xs, effY); err != nil {
						fatal(err)
					}
				}
				fmt.Println(perf.String())
				fmt.Println(eff.String())
			}
		}
	}

	if *all || *table == 4 || *fig == 4 {
		var results map[string][]*characterize.BenchResult
		var err error
		if res == nil && rec == nil {
			results, err = characterize.Table4Workers(*seed, *workers)
		} else {
			names := make([]string, len(boards))
			for i, s := range boards {
				names[i] = s.Name
			}
			results, err = characterize.SweepBoardsR(names, workloads.Table4(),
				characterize.SweepOptions{Seed: *seed, Workers: *workers, Res: res, Journal: journal, Obs: rec})
		}
		if err != nil {
			fatal(err)
		}
		if *all || *table == 4 {
			emit(report.Table4(boards, results))
		}
		if *all || *fig == 4 {
			fmt.Println(report.Fig4(boards, results))
		}
		for _, d := range characterize.Degradations(results) {
			fmt.Fprintln(os.Stderr, "degraded:", d.Line)
		}
	}
	if err := trace.WriteArtifacts(rec, *traceOut, *metricsOut, ""); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}

// usage reports a flag-validation error and exits 2, like flag's own
// parse failures.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	flag.Usage()
	os.Exit(2)
}

// suiteSummary characterizes every Table II benchmark on the GTX 480 at
// the default clocks: binding resource, GPU runtime, host fraction and
// whether it appears in the Table IV / modeling sets.
func suiteSummary() *report.Table {
	t := report.NewTable("TABLE II — workload characterization (GTX 480, (H-H))",
		"Benchmark", "Suite", "Bound by", "GPU ms/iter", "Host %", "Table IV", "Modeled")
	spec := arch.GTX480()
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		fatal(err)
	}
	for _, b := range workloads.All() {
		var gpuTime float64
		bound := ""
		var boundDur float64
		for _, k := range b.Kernels(1) {
			an, err := dev.Analyze(k)
			if err != nil {
				fatal(err)
			}
			gpuTime += an.Time
			for _, p := range an.Phases {
				if p.Duration > boundDur {
					boundDur = p.Duration
					bound = p.Bottleneck
				}
			}
		}
		host := b.HostGap(1)
		hostPct := host / (host + gpuTime) * 100
		t.AddRowf(b.Name, b.Suite.String(), bound,
			fmt.Sprintf("%.1f", gpuTime*1e3),
			fmt.Sprintf("%.0f", hostPct),
			yesNo(b.InTable4), yesNo(b.Modeled))
	}
	return t
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "-"
}
