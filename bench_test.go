// The reproduction's benchmark harness: one testing.B per table and figure
// of the paper. Each bench regenerates its artifact end to end (sweep or
// model training on the simulated apparatus) and reports the reproduced
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. EXPERIMENTS.md records these values against
// the paper's. Ablation benches (DESIGN.md §6) quantify the design choices:
// the frequency terms of Eq. 1/2, the Kepler voltage curve, the Fermi
// caches, and forward selection itself.
package gpuperf

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/regress"
	"gpuperf/internal/report"
	"gpuperf/internal/reproduce"
	"gpuperf/internal/thermal"
	"gpuperf/internal/workloads"
)

const benchSeed = 42

// Datasets and sweeps are deterministic; cache them so the ~20 benches
// share one collection pass per board.
var (
	dsOnce sync.Once
	dsAll  map[string]*core.Dataset

	sweepOnce sync.Once
	sweepAll  map[string][]*characterize.BenchResult
)

func datasets(b *testing.B) map[string]*core.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		dsAll = map[string]*core.Dataset{}
		for _, spec := range arch.AllBoards() {
			ds, err := core.CollectAll(spec.Name, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			dsAll[spec.Name] = ds
		}
	})
	return dsAll
}

func sweeps(b *testing.B) map[string][]*characterize.BenchResult {
	b.Helper()
	sweepOnce.Do(func() {
		var err error
		sweepAll, err = characterize.Table4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	})
	return sweepAll
}

// --- Section II artifacts ---------------------------------------------

// BenchmarkTable1Specs regenerates Table I (board specifications).
func BenchmarkTable1Specs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := report.Table1(arch.AllBoards()).String(); len(s) == 0 {
			b.Fatal("empty Table I")
		}
	}
}

// BenchmarkTable3FreqPairs regenerates Table III (valid frequency pairs),
// decoding it from freshly built VBIOS images as the driver does.
func BenchmarkTable3FreqPairs(b *testing.B) {
	var pairs int
	for i := 0; i < b.N; i++ {
		pairs = 0
		for _, spec := range arch.AllBoards() {
			dev, err := driver.OpenBoard(spec.Name)
			if err != nil {
				b.Fatal(err)
			}
			pairs += len(clock.ValidPairs(dev.Spec()))
		}
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// --- Section III artifacts (characterization) -------------------------

func benchFigCurve(b *testing.B, bench string) {
	var bestImp float64
	for i := 0; i < b.N; i++ {
		for _, spec := range arch.AllBoards() {
			res, err := characterize.SweepBoard(spec.Name, []*workloads.Benchmark{workloads.ByName(bench)}, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			if curves := characterize.Curves(res[0], spec); len(curves) == 0 {
				b.Fatal("no curves")
			}
			if spec.Name == "GTX 680" {
				bestImp = res[0].ImprovementPct()
			}
		}
	}
	b.ReportMetric(bestImp, "GTX680-impr-%")
}

// BenchmarkFig1Backprop regenerates Fig. 1 (compute-intensive showcase).
func BenchmarkFig1Backprop(b *testing.B) { benchFigCurve(b, "backprop") }

// BenchmarkFig2Streamcluster regenerates Fig. 2 (memory-intensive showcase).
func BenchmarkFig2Streamcluster(b *testing.B) { benchFigCurve(b, "streamcluster") }

// BenchmarkFig3Gaussian regenerates Fig. 3 (regime-flipping showcase).
func BenchmarkFig3Gaussian(b *testing.B) { benchFigCurve(b, "gaussian") }

// BenchmarkTable4BestPairs regenerates Table IV: the best frequency pair of
// every benchmark on every board. Reports how many GTX 680 benchmarks
// prefer a non-default pair (paper: all of them).
func BenchmarkTable4BestPairs(b *testing.B) {
	var nonDefault int
	for i := 0; i < b.N; i++ {
		all := sweeps(b)
		nonDefault = 0
		for _, r := range all["GTX 680"] {
			if r.Best().Pair != clock.DefaultPair() {
				nonDefault++
			}
		}
	}
	b.ReportMetric(float64(nonDefault), "GTX680-nondefault")
}

// BenchmarkFig4Improvement regenerates Fig. 4: the mean power-efficiency
// improvement per board (paper: 0.8 / 12.3 / 12.1 / 24.4 %).
func BenchmarkFig4Improvement(b *testing.B) {
	var m285, m460, m480, m680 float64
	for i := 0; i < b.N; i++ {
		all := sweeps(b)
		m285 = characterize.MeanImprovementPct(all["GTX 285"])
		m460 = characterize.MeanImprovementPct(all["GTX 460"])
		m480 = characterize.MeanImprovementPct(all["GTX 480"])
		m680 = characterize.MeanImprovementPct(all["GTX 680"])
	}
	b.ReportMetric(m285, "GTX285-%")
	b.ReportMetric(m460, "GTX460-%")
	b.ReportMetric(m480, "GTX480-%")
	b.ReportMetric(m680, "GTX680-%")
}

// --- Section IV artifacts (modeling) -----------------------------------

func benchModelR2(b *testing.B, kind core.Kind) {
	var r285, r680 float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)
		for _, board := range []string{"GTX 285", "GTX 460", "GTX 480", "GTX 680"} {
			m, err := core.Train(ds[board], kind, core.MaxVariables)
			if err != nil {
				b.Fatal(err)
			}
			switch board {
			case "GTX 285":
				r285 = m.AdjR2()
			case "GTX 680":
				r680 = m.AdjR2()
			}
		}
	}
	b.ReportMetric(r285, "GTX285-R2")
	b.ReportMetric(r680, "GTX680-R2")
}

// BenchmarkTable5PowerR2 regenerates Table V: adjusted R² of the power
// model per board (paper: 0.30 / 0.59 / 0.70 / 0.18).
func BenchmarkTable5PowerR2(b *testing.B) { benchModelR2(b, core.Power) }

// BenchmarkTable6PerfR2 regenerates Table VI: adjusted R² of the
// performance model per board (paper: 0.91 / 0.90 / 0.94 / 0.91).
func BenchmarkTable6PerfR2(b *testing.B) { benchModelR2(b, core.Time) }

func benchModelError(b *testing.B, kind core.Kind) {
	var pct285, pct680, watts680 float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)
		for _, board := range []string{"GTX 285", "GTX 680"} {
			m, err := core.Train(ds[board], kind, core.MaxVariables)
			if err != nil {
				b.Fatal(err)
			}
			ev := m.Evaluate(ds[board].Rows)
			if board == "GTX 285" {
				pct285 = ev.MeanAbsPct
			} else {
				pct680 = ev.MeanAbsPct
				watts680 = ev.MeanAbsRaw
			}
		}
	}
	b.ReportMetric(pct285, "GTX285-err-%")
	b.ReportMetric(pct680, "GTX680-err-%")
	if kind == core.Power {
		b.ReportMetric(watts680, "GTX680-err-W")
	}
}

// BenchmarkTable7PowerError regenerates Table VII: average power-model
// error (paper: 15.0–23.5 %, 15.2–24.4 W).
func BenchmarkTable7PowerError(b *testing.B) { benchModelError(b, core.Power) }

// BenchmarkTable8PerfError regenerates Table VIII: average performance-
// model error (paper: 67.9 / 47.6 / 39.3 / 33.5 %).
func BenchmarkTable8PerfError(b *testing.B) { benchModelError(b, core.Time) }

func benchErrDistribution(b *testing.B, kind core.Kind) {
	var worst float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)["GTX 680"]
		m, err := core.Train(ds, kind, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		errs := m.PerBenchmarkErrors(ds.Rows)
		if len(errs) != 33 {
			b.Fatalf("%d benchmarks in distribution, want 33", len(errs))
		}
		worst = errs[len(errs)-1].MeanPct
	}
	b.ReportMetric(worst, "worst-bench-err-%")
}

// BenchmarkFig5PowerErrDist regenerates Fig. 5: per-benchmark power-model
// error distribution.
func BenchmarkFig5PowerErrDist(b *testing.B) { benchErrDistribution(b, core.Power) }

// BenchmarkFig6PerfErrDist regenerates Fig. 6: per-benchmark performance-
// model error distribution.
func BenchmarkFig6PerfErrDist(b *testing.B) { benchErrDistribution(b, core.Time) }

func benchVariableSweep(b *testing.B, kind core.Kind) {
	var at5, at10, at20 float64
	for i := 0; i < b.N; i++ {
		points, err := core.VariableSweep(datasets(b)["GTX 680"], kind, 5, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			switch p.Vars {
			case 5:
				at5 = p.MeanAbsPct
			case 10:
				at10 = p.MeanAbsPct
			case 20:
				at20 = p.MeanAbsPct
			}
		}
	}
	b.ReportMetric(at5, "err-%-5vars")
	b.ReportMetric(at10, "err-%-10vars")
	b.ReportMetric(at20, "err-%-20vars")
}

// BenchmarkFig7PowerVars regenerates Fig. 7: power-model accuracy vs the
// number of explanatory variables (paper: saturates near 10).
func BenchmarkFig7PowerVars(b *testing.B) { benchVariableSweep(b, core.Power) }

// BenchmarkFig8PerfVars regenerates Fig. 8: performance-model accuracy vs
// the number of explanatory variables.
func BenchmarkFig8PerfVars(b *testing.B) { benchVariableSweep(b, core.Time) }

func benchPerPair(b *testing.B, kind core.Kind) {
	var unifiedMedian, bestPairMedian float64
	for i := 0; i < b.N; i++ {
		cols, err := core.PerPairComparison(datasets(b)["GTX 680"], kind, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		bestPairMedian = cols[0].Box.Median
		for _, c := range cols {
			if c.Label == "unified" {
				unifiedMedian = c.Box.Median
			} else if c.Box.Median < bestPairMedian {
				bestPairMedian = c.Box.Median
			}
		}
	}
	b.ReportMetric(unifiedMedian, "unified-median-%")
	b.ReportMetric(bestPairMedian, "best-perpair-median-%")
}

// BenchmarkFig9PowerPerPair regenerates Fig. 9: per-pair power models vs
// the unified model (paper: the unified model remains competitive).
func BenchmarkFig9PowerPerPair(b *testing.B) { benchPerPair(b, core.Power) }

// BenchmarkFig10PerfPerPair regenerates Fig. 10: per-pair performance
// models vs the unified model.
func BenchmarkFig10PerfPerPair(b *testing.B) { benchPerPair(b, core.Time) }

// BenchmarkFig11Influence regenerates Fig. 11: the per-variable influence
// breakdown (paper: 10–15 variables carry essentially all influence).
func BenchmarkFig11Influence(b *testing.B) {
	var topShare float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)["GTX 680"]
		m, err := core.Train(ds, core.Power, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		infl := m.Influences(ds.Rows)
		topShare = 0
		for _, f := range infl {
			if f.Variable != "(intercept)" && f.Share > topShare {
				topShare = f.Share
			}
		}
	}
	b.ReportMetric(topShare*100, "top-var-share-%")
}

// --- Ablations (DESIGN.md §6) ------------------------------------------

// BenchmarkAblationNoFreqScaling compares the unified power model against a
// naive model whose features ignore the clocks: without Eq. 1's frequency
// terms, one model cannot span frequency pairs.
func BenchmarkAblationNoFreqScaling(b *testing.B) {
	var unified, naive float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)["GTX 680"]
		um, err := core.Train(ds, core.Power, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		nm, err := core.TrainNaive(ds, core.Power, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		unified = um.Evaluate(ds.Rows).MeanAbsPct
		naive = nm.Evaluate(ds.Rows).MeanAbsPct
	}
	b.ReportMetric(unified, "unified-err-%")
	b.ReportMetric(naive, "naive-err-%")
}

// BenchmarkAblationVoltageFlat reruns the Kepler backprop sweep on a GTX
// 680 clone with a Tesla-flat voltage curve: the headline saving collapses,
// isolating voltage headroom as the mechanism.
func BenchmarkAblationVoltageFlat(b *testing.B) {
	var normal, flat float64
	for i := 0; i < b.N; i++ {
		normal = sweepImprovement(b, arch.GTX680(), "backprop")
		spec := arch.GTX680()
		spec.Name = "GTX 680" // same board, flattened curve
		spec.CoreVoltLow = spec.CoreVoltHigh
		spec.MemVoltLow = spec.MemVoltHigh
		spec.VoltExponent = 1
		flat = sweepImprovement(b, spec, "backprop")
	}
	b.ReportMetric(normal, "normal-impr-%")
	b.ReportMetric(flat, "flat-volt-impr-%")
}

// BenchmarkAblationNoCaches reruns gaussian on a GTX 480 with its caches
// shrunk to nothing: DRAM traffic balloons and the board degenerates toward
// Tesla-like memory-bound behaviour. Reports the (H-H) slowdown and the
// shift of the best memory level toward Mem-H.
func BenchmarkAblationNoCaches(b *testing.B) {
	var slowdown float64
	var bestMemCached, bestMemUncached float64
	run := func(spec *arch.Spec) (time float64, bestMem float64) {
		dev, err := driver.OpenSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		dev.Seed(benchSeed)
		r, err := characterize.SweepBenchmark(dev, workloads.ByName("gaussian"))
		if err != nil {
			b.Fatal(err)
		}
		return r.Default().TimePerIter, float64(r.Best().Pair.Mem)
	}
	for i := 0; i < b.N; i++ {
		tCached, bm := run(arch.GTX480())
		bestMemCached = bm
		spec := arch.GTX480()
		spec.L1PerSM = 1 // effectively no cache, still a valid Fermi spec
		spec.L2Size = 1
		tUncached, bmu := run(spec)
		bestMemUncached = bmu
		slowdown = tUncached / tCached
	}
	b.ReportMetric(slowdown, "nocache-slowdown-x")
	b.ReportMetric(bestMemCached, "cached-best-memlevel")
	b.ReportMetric(bestMemUncached, "nocache-best-memlevel")
}

// BenchmarkAblationSelection compares forward selection against using the
// first k counters verbatim, at equal variable budgets.
func BenchmarkAblationSelection(b *testing.B) {
	var forward, firstK float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)["GTX 480"]
		m, err := core.Train(ds, core.Power, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		forward = m.Evaluate(ds.Rows).MeanAbsPct

		// First-k baseline: regress on counters 0..9 as-is.
		x := make([][]float64, len(ds.Rows))
		y := make([]float64, len(ds.Rows))
		for j := range ds.Rows {
			o := &ds.Rows[j]
			row := make([]float64, core.MaxVariables)
			for k := 0; k < core.MaxVariables; k++ {
				row[k] = o.Counters[k] / o.TimeS
			}
			x[j] = row
			y[j] = o.PowerW
		}
		fit, err := regress.OLS(x, y)
		if err != nil {
			b.Fatal(err)
		}
		pred := make([]float64, len(y))
		for j, row := range x {
			pred[j] = fit.Predict(row)
		}
		firstK = regress.MeanAbsPctError(pred, y)
	}
	b.ReportMetric(forward, "forward-err-%")
	b.ReportMetric(firstK, "firstk-err-%")
}

func sweepImprovement(b *testing.B, spec *arch.Spec, bench string) float64 {
	b.Helper()
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		b.Fatal(err)
	}
	dev.Seed(benchSeed)
	r, err := characterize.SweepBenchmark(dev, workloads.ByName(bench))
	if err != nil {
		b.Fatal(err)
	}
	return r.ImprovementPct()
}

// BenchmarkFutureWorkRadeon exercises the paper's proposed future work:
// the whole characterization pipeline on an AMD GCN board (Radeon HD
// 7970), reporting its backprop best-pair gain next to Kepler's.
func BenchmarkFutureWorkRadeon(b *testing.B) {
	var radeon, kepler float64
	for i := 0; i < b.N; i++ {
		radeon = sweepImprovement(b, arch.RadeonHD7970(), "backprop")
		kepler = sweepImprovement(b, arch.GTX680(), "backprop")
	}
	b.ReportMetric(radeon, "radeon-impr-%")
	b.ReportMetric(kepler, "kepler-impr-%")
}

// BenchmarkExtensionCrossValidation measures the unified models' error on
// benchmarks they never saw (leave-one-benchmark-out) — the number a
// deployed predictor actually faces, next to the paper's in-sample errors.
func BenchmarkExtensionCrossValidation(b *testing.B) {
	var powerCV, timeCV float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)["GTX 680"]
		pcv, err := core.CrossValidate(ds, core.Power, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		tcv, err := core.CrossValidate(ds, core.Time, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		powerCV = pcv.MeanAbsPct
		timeCV = tcv.MeanAbsPct
	}
	b.ReportMetric(powerCV, "power-cv-err-%")
	b.ReportMetric(timeCV, "time-cv-err-%")
}

// BenchmarkExtensionThermal runs the thermal extension over a sustained
// metered trace: the leaky GF100 (GTX 480) heats far past the efficient
// Kepler under the same workload pressure, adding measurable leakage
// energy.
func BenchmarkExtensionThermal(b *testing.B) {
	var hot480, hot680, extra480 float64
	run := func(board string) (maxC, extraJ float64) {
		dev, err := driver.OpenBoard(board)
		if err != nil {
			b.Fatal(err)
		}
		dev.Seed(benchSeed)
		w := workloads.ByName("lavaMD")
		rr, err := dev.RunMetered(w.Name, w.Kernels(4), w.HostGap(4), 60)
		if err != nil {
			b.Fatal(err)
		}
		params := thermal.DefaultParams(dev.Spec().CoreLeakWatts)
		res, err := thermal.Simulate(rr.Trace.Flatten(), params, params.AmbientC)
		if err != nil {
			b.Fatal(err)
		}
		return res.MaxC, res.ExtraLeakJoules
	}
	for i := 0; i < b.N; i++ {
		hot480, extra480 = run("GTX 480")
		hot680, _ = run("GTX 680")
	}
	b.ReportMetric(hot480, "GTX480-maxC")
	b.ReportMetric(hot680, "GTX680-maxC")
	b.ReportMetric(extra480, "GTX480-extra-leak-J")
}

// BenchmarkExtensionMicrosimValidation cross-checks the interval model
// against the warp-level microsimulator on single-phase Table II kernels,
// reporting the worst time ratio across the validation corpus.
func BenchmarkExtensionMicrosimValidation(b *testing.B) {
	var worst float64
	corpus := []string{"sgemm", "lbm", "stencil", "mri-q", "nn"}
	for i := 0; i < b.N; i++ {
		dev, err := driver.OpenBoard("GTX 680")
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, name := range corpus {
			k := workloads.ByName(name).Kernels(0.05)[0] // small grids: micro is per-instruction
			lr, err := dev.Launch(k)
			if err != nil {
				b.Fatal(err)
			}
			mr, err := dev.MicroSim(k)
			if err != nil {
				b.Fatal(err)
			}
			ratio := mr.Time / lr.Time
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > worst {
				worst = ratio
			}
		}
	}
	b.ReportMetric(worst, "worst-ratio-x")
}

// BenchmarkAblationRidge compares forward selection (10 variables) against
// all-variables ridge regression — shrinkage instead of selection — on the
// GTX 680 power model. Ridge uses every counter; selection uses ten.
func BenchmarkAblationRidge(b *testing.B) {
	var forward, ridge float64
	for i := 0; i < b.N; i++ {
		ds := datasets(b)["GTX 680"]
		m, err := core.Train(ds, core.Power, core.MaxVariables)
		if err != nil {
			b.Fatal(err)
		}
		forward = m.Evaluate(ds.Rows).MeanAbsPct
		_, r, err := core.RidgeError(ds, core.Power, 1e3)
		if err != nil {
			b.Fatal(err)
		}
		ridge = r
	}
	b.ReportMetric(forward, "forward10-err-%")
	b.ReportMetric(ridge, "ridge-all-err-%")
}

// BenchmarkReproduce runs the complete paper reproduction — every table,
// figure, ablation and the future-work extension — end to end, exactly as
// cmd/paper does. This is the PR-acceptance wall-clock benchmark; the
// before/after numbers live in BENCH_baseline.json.
func BenchmarkReproduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := reproduce.DefaultOptions()
		if _, err := reproduce.Run(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBoard is the multi-core scaling curve of the batched sweep:
// one board's full Table IV frequency sweep from a cold shared launch cache
// at 1, 2, 4 and 8 workers. Each iteration pushes a fresh shared LRU so
// every worker count pays the same batched PrecomputePairs fill instead of
// inheriting a warm cache from the previous run; the recorded curves live
// in BENCH_fleet.json. On a single-CPU host the curve is flat — the bench
// then measures the pooling overhead of widening the worker pool.
func BenchmarkSweepBoard(b *testing.B) {
	benches := workloads.Table4()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				restore := driver.PushSharedLaunchCache(driver.NewLaunchCache(driver.DefaultSharedLaunchCacheEntries))
				_, err := characterize.SweepBoardParallel("GTX 480", benches, benchSeed, workers)
				restore()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
