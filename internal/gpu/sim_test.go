package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
)

// computeKernel is a heavily compute-bound kernel: almost pure ALU with a
// trickle of perfectly coalesced memory traffic.
func computeKernel(blocks int) *KernelDesc {
	return &KernelDesc{
		Name:            "compute",
		Blocks:          blocks,
		ThreadsPerBlock: 256,
		RegsPerThread:   24,
		Phases: []PhaseDesc{{
			Name:             "main",
			WarpInstsPerWarp: 20000,
			FracALU:          0.85,
			FracMem:          0.005,
			FracBranch:       0.05,
			TxnPerMemInst:    1,
			L1Hit:            0.8, L2Hit: 0.8,
			WorkingSetBytes: 4 << 10,
			MLP:             4,
			IssueEff:        0.9,
		}},
	}
}

// memoryKernel is a streaming, bandwidth-bound kernel.
func memoryKernel(blocks int) *KernelDesc {
	return &KernelDesc{
		Name:            "memory",
		Blocks:          blocks,
		ThreadsPerBlock: 256,
		RegsPerThread:   16,
		Phases: []PhaseDesc{{
			Name:             "stream",
			WarpInstsPerWarp: 4000,
			FracALU:          0.25,
			FracMem:          0.45,
			FracBranch:       0.03,
			TxnPerMemInst:    1.2,
			StoreFrac:        0.3,
			L1Hit:            0.05, L2Hit: 0.1,
			WorkingSetBytes: 16 << 20, // streams through, no reuse
			MLP:             8,
			IssueEff:        0.8,
		}},
	}
}

func simAt(t *testing.T, spec *arch.Spec, p clock.Pair) *Sim {
	t.Helper()
	clk := clock.NewState(spec)
	if err := clk.SetPair(p); err != nil {
		t.Fatalf("%s: SetPair(%s): %v", spec.Name, p, err)
	}
	return New(spec, clk)
}

func runAt(t *testing.T, spec *arch.Spec, k *KernelDesc, p clock.Pair) *KernelResult {
	t.Helper()
	res, err := simAt(t, spec, p).RunKernel(k)
	if err != nil {
		t.Fatalf("%s %s: RunKernel: %v", spec.Name, p, err)
	}
	return res
}

func TestComputeBoundScalesWithCoreClock(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		k := computeKernel(8 * spec.SMCount)
		tH := runAt(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqHigh}).Time
		tM := runAt(t, spec, k, clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh}).Time
		wantRatio := spec.CoreFreqMHz(arch.FreqHigh) / spec.CoreFreqMHz(arch.FreqMid)
		gotRatio := tM / tH
		if math.Abs(gotRatio-wantRatio)/wantRatio > 0.05 {
			t.Errorf("%s: compute-bound time ratio M/H = %.3f, want ≈ %.3f", spec.Name, gotRatio, wantRatio)
		}
	}
}

func TestComputeBoundInsensitiveToMemClock(t *testing.T) {
	// Fig. 1: Backprop performance is flat across memory frequencies.
	for _, spec := range arch.AllBoards() {
		k := computeKernel(8 * spec.SMCount)
		tH := runAt(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqHigh}).Time
		tL := runAt(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqLow}).Time
		if ratio := tL / tH; ratio > 1.20 {
			t.Errorf("%s: compute-bound slowed %.2f× by Mem-L; want < 1.20×", spec.Name, ratio)
		}
	}
}

func TestMemoryBoundScalesWithMemClock(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		k := memoryKernel(8 * spec.SMCount)
		tH := runAt(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqHigh}).Time
		tM := runAt(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqMid}).Time
		if tM <= tH*1.5 {
			t.Errorf("%s: memory-bound time grew only %.2f× at Mem-M; want > 1.5×", spec.Name, tM/tH)
		}
	}
}

func TestMemoryBoundInsensitiveToCoreClockAtLowMem(t *testing.T) {
	// Fig. 2: at Mem-M/L, streamcluster performance is flat in core clock.
	for _, spec := range arch.AllBoards() {
		k := memoryKernel(8 * spec.SMCount)
		tHM := runAt(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqMid}).Time
		tMM := runAt(t, spec, k, clock.Pair{Core: arch.FreqMid, Mem: arch.FreqMid}).Time
		if ratio := tMM / tHM; ratio > 1.25 {
			t.Errorf("%s: memory-bound at Mem-M slowed %.2f× by Core-M; want ≈ flat", spec.Name, ratio)
		}
	}
}

func TestKeplerOutperformsTeslaOnCompute(t *testing.T) {
	k680 := computeKernel(8 * arch.GTX680().SMCount)
	k285 := computeKernel(8 * arch.GTX285().SMCount)
	t680 := runAt(t, arch.GTX680(), k680, clock.DefaultPair()).Time
	t285 := runAt(t, arch.GTX285(), k285, clock.DefaultPair()).Time
	// Same per-SM work, but GTX 680 has vastly more throughput per SM.
	perWork680 := t680 / float64(8*arch.GTX680().SMCount)
	perWork285 := t285 / float64(8*arch.GTX285().SMCount)
	if perWork680 >= perWork285 {
		t.Errorf("GTX 680 per-block compute time %.3g ≥ GTX 285's %.3g", perWork680, perWork285)
	}
}

func TestOccupancyLimits(t *testing.T) {
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))

	k := computeKernel(100)
	blocks, warps := sim.Occupancy(k)
	if blocks <= 0 || warps <= 0 || warps > spec.MaxWarpsPerSM {
		t.Fatalf("Occupancy = (%d, %d) out of range", blocks, warps)
	}

	// Shared memory cap: one block hogging all shared memory.
	k.SharedPerBlock = spec.SharedMemPerSM
	if b, _ := sim.Occupancy(k); b != 1 {
		t.Errorf("shared-mem-hog occupancy = %d blocks/SM, want 1", b)
	}
	k.SharedPerBlock = 0

	// Register cap.
	k.RegsPerThread = 256
	b, _ := sim.Occupancy(k)
	if want := spec.RegistersPerSM / (256 * k.ThreadsPerBlock); b > max(want, 1) {
		t.Errorf("register-hog occupancy = %d blocks/SM, want ≤ %d", b, max(want, 1))
	}
}

func TestWaveTailEffect(t *testing.T) {
	// N+1 waves of blocks must not run faster than proportionally to N+1.
	spec := arch.GTX480()
	sim := New(spec, clock.NewState(spec))
	k := computeKernel(1)
	blocksPerSM, _ := sim.Occupancy(k)
	wave := spec.SMCount * blocksPerSM

	k.Blocks = wave
	full, err := sim.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	k.Blocks = wave + 1
	straggler, err := sim.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if straggler.Time < full.Time*1.8 {
		t.Errorf("one straggler block: %.3g s vs full wave %.3g s; want ≈ 2 waves", straggler.Time, full.Time)
	}
}

func TestTeslaHasNoCacheActivity(t *testing.T) {
	res := runAt(t, arch.GTX285(), memoryKernel(240), clock.DefaultPair())
	a := res.Activities
	if a[counters.ActL1Hit] != 0 || a[counters.ActL2Hit] != 0 || a[counters.ActL1Miss] != 0 || a[counters.ActL2Miss] != 0 {
		t.Error("Tesla run produced cache activity")
	}
	if a[counters.ActDRAMRead] <= 0 {
		t.Error("Tesla memory kernel produced no DRAM reads")
	}
}

func TestCacheFiltersDRAMTraffic(t *testing.T) {
	// The same kernel with a cache-friendly working set must produce less
	// DRAM traffic on Fermi than a streaming one.
	spec := arch.GTX480()
	friendly := memoryKernel(8 * spec.SMCount)
	friendly.Phases[0].L1Hit = 0.8
	friendly.Phases[0].L2Hit = 0.8
	friendly.Phases[0].WorkingSetBytes = 4 << 10
	streaming := memoryKernel(8 * spec.SMCount)

	rf := runAt(t, spec, friendly, clock.DefaultPair())
	rs := runAt(t, spec, streaming, clock.DefaultPair())
	df := rf.Activities[counters.ActDRAMRead] + rf.Activities[counters.ActDRAMWrite]
	ds := rs.Activities[counters.ActDRAMRead] + rs.Activities[counters.ActDRAMWrite]
	if df >= ds*0.5 {
		t.Errorf("cache-friendly DRAM traffic %.3g not well below streaming %.3g", df, ds)
	}
	if rf.Time >= rs.Time {
		t.Errorf("cache-friendly kernel (%.3g s) not faster than streaming (%.3g s)", rf.Time, rs.Time)
	}
}

func TestActivityAccounting(t *testing.T) {
	spec := arch.GTX680()
	res := runAt(t, spec, memoryKernel(8*spec.SMCount), clock.DefaultPair())
	a := res.Activities
	// L1 hits + misses = all transactions; L2 hits + misses = L1 misses.
	txns := a[counters.ActGlobalLoadTxn] + a[counters.ActGlobalStoreTxn]
	if got := a[counters.ActL1Hit] + a[counters.ActL1Miss]; math.Abs(got-txns) > txns*1e-6 {
		t.Errorf("L1 hits+misses = %.6g, want %.6g", got, txns)
	}
	if got := a[counters.ActL2Hit] + a[counters.ActL2Miss]; math.Abs(got-a[counters.ActL1Miss]) > a[counters.ActL1Miss]*1e-6 {
		t.Errorf("L2 hits+misses = %.6g, want %.6g", got, a[counters.ActL1Miss])
	}
	if a[counters.ActInstIssued] < a[counters.ActInstExecuted] {
		t.Error("issued < executed")
	}
	if a[counters.ActElapsedCycles] <= 0 || a[counters.ActActiveCycles] <= 0 {
		t.Error("cycle activities not positive")
	}
	if occ := a[counters.ActOccupancy]; occ <= 0 || occ > 1 {
		t.Errorf("occupancy %g out of (0,1]", occ)
	}
}

func TestValidateRejectsBadKernels(t *testing.T) {
	bads := []*KernelDesc{
		{Name: "no-grid", ThreadsPerBlock: 256, Phases: []PhaseDesc{{WarpInstsPerWarp: 1, IssueEff: 1, MLP: 1}}},
		{Name: "huge-block", Blocks: 1, ThreadsPerBlock: 2048, Phases: []PhaseDesc{{WarpInstsPerWarp: 1, IssueEff: 1, MLP: 1}}},
		{Name: "no-phase", Blocks: 1, ThreadsPerBlock: 256},
		{Name: "bad-mix", Blocks: 1, ThreadsPerBlock: 256, Phases: []PhaseDesc{{WarpInstsPerWarp: 1, FracALU: 0.8, FracMem: 0.5, IssueEff: 1, MLP: 1}}},
		{Name: "zero-mlp", Blocks: 1, ThreadsPerBlock: 256, Phases: []PhaseDesc{{WarpInstsPerWarp: 1, FracMem: 0.5, IssueEff: 1}}},
		{Name: "bad-issue", Blocks: 1, ThreadsPerBlock: 256, Phases: []PhaseDesc{{WarpInstsPerWarp: 1, IssueEff: 0}}},
		{Name: "bad-txn", Blocks: 1, ThreadsPerBlock: 256, Phases: []PhaseDesc{{WarpInstsPerWarp: 1, FracMem: 0.1, TxnPerMemInst: 64, IssueEff: 1, MLP: 1}}},
	}
	spec := arch.GTX480()
	sim := New(spec, clock.NewState(spec))
	for _, k := range bads {
		if _, err := sim.RunKernel(k); err == nil {
			t.Errorf("RunKernel accepted invalid kernel %q", k.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	spec := arch.GTX460()
	k := memoryKernel(100)
	a := runAt(t, spec, k, clock.DefaultPair())
	b := runAt(t, spec, k, clock.DefaultPair())
	if a.Time != b.Time {
		t.Errorf("nondeterministic time: %g vs %g", a.Time, b.Time)
	}
	if a.Activities != b.Activities {
		t.Error("nondeterministic activities")
	}
}

func TestTimeMonotoneInWorkProperty(t *testing.T) {
	// Property: more blocks never run faster, up to the architecture's
	// timing-irregularity band (the per-grid deviation is ±irr, so two
	// grids can differ by at most (1+irr)/(1−irr) beyond the true ratio).
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))
	tol := (1 + spec.TimingIrregularity) / (1 - spec.TimingIrregularity)
	f := func(b1, b2 uint16) bool {
		n1, n2 := int(b1%2000)+1, int(b2%2000)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		k1, k2 := computeKernel(n1), computeKernel(n2)
		r1, err1 := sim.RunKernel(k1)
		r2, err2 := sim.RunKernel(k2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Time <= r2.Time*tol*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlowerClocksNeverSpeedUpProperty(t *testing.T) {
	// Property: lowering either clock never reduces execution time.
	for _, spec := range arch.AllBoards() {
		for _, k := range []*KernelDesc{computeKernel(4 * spec.SMCount), memoryKernel(4 * spec.SMCount)} {
			base := runAt(t, spec, k, clock.DefaultPair()).Time
			for _, p := range clock.ValidPairs(spec) {
				if got := runAt(t, spec, k, p).Time; got < base*(1-1e-9) {
					t.Errorf("%s %s %s: time %.4g below (H-H) time %.4g", spec.Name, k.Name, p, got, base)
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
