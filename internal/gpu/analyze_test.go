package gpu

import (
	"strings"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

func TestAnalyzeMatchesRunKernel(t *testing.T) {
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))
	for _, k := range []*KernelDesc{computeKernel(4 * spec.SMCount), memoryKernel(4 * spec.SMCount)} {
		an, err := sim.Analyze(k)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sim.RunKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		if an.Time != run.Time {
			t.Errorf("%s: Analyze time %g != RunKernel time %g", k.Name, an.Time, run.Time)
		}
		if len(an.Phases) != len(k.Phases) {
			t.Fatalf("%s: %d phase analyses, want %d", k.Name, len(an.Phases), len(k.Phases))
		}
	}
}

func TestAnalyzeIdentifiesBottlenecks(t *testing.T) {
	spec := arch.GTX480()
	sim := New(spec, clock.NewState(spec))

	an, err := sim.Analyze(computeKernel(8 * spec.SMCount))
	if err != nil {
		t.Fatal(err)
	}
	top := an.Phases[0].Usages[0].Resource
	if top != "alu" && top != "issue" {
		t.Errorf("compute kernel's top resource = %q, want alu or issue", top)
	}

	an, err = sim.Analyze(memoryKernel(8 * spec.SMCount))
	if err != nil {
		t.Fatal(err)
	}
	top = an.Phases[0].Usages[0].Resource
	if top != "dram-bw" && top != "mem-latency" {
		t.Errorf("memory kernel's top resource = %q, want dram-bw or mem-latency", top)
	}
}

func TestAnalyzeUsageFractions(t *testing.T) {
	spec := arch.GTX460()
	sim := New(spec, clock.NewState(spec))
	an, err := sim.Analyze(memoryKernel(8 * spec.SMCount))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range an.Phases {
		if len(p.Usages) == 0 {
			t.Fatal("no usages")
		}
		prev := p.Usages[0].Time
		for _, u := range p.Usages {
			if u.Fraction <= 0 || u.Fraction > 1+1e-9 {
				t.Errorf("resource %s fraction %g out of (0,1]", u.Resource, u.Fraction)
			}
			if u.Time > prev+1e-15 {
				t.Error("usages not sorted descending")
			}
			prev = u.Time
		}
		// The binding resource's bound must be close to (but never above)
		// the duration; the p-norm blend and wave stretch push the actual
		// duration above the max bound.
		if top := p.Usages[0]; top.Fraction > 1+1e-9 || top.Fraction < 0.5 {
			t.Errorf("top resource fraction %g implausible", top.Fraction)
		}
	}
}

func TestAnalyzeBottleneckShiftsWithClocks(t *testing.T) {
	// gaussian-like mixed kernel: at Mem-L the memory side must bind.
	spec := arch.GTX680()
	clk := clock.NewState(spec)
	sim := New(spec, clk)
	mixed := &KernelDesc{
		Name: "mixed", Blocks: 8 * spec.SMCount, ThreadsPerBlock: 256, RegsPerThread: 20,
		Phases: []PhaseDesc{{
			Name: "p", WarpInstsPerWarp: 20000,
			FracALU: 0.5, FracMem: 0.2, FracBranch: 0.04,
			TxnPerMemInst: 1.2, L1Hit: 0.4, L2Hit: 0.5,
			WorkingSetBytes: 1 << 20, MLP: 6, IssueEff: 0.8,
		}},
	}
	if err := clk.SetPair(clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqLow}); err != nil {
		t.Fatal(err)
	}
	an, err := sim.Analyze(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if top := an.Phases[0].Usages[0].Resource; top != "dram-bw" && top != "mem-latency" {
		t.Errorf("at Mem-L the top resource = %q, want a memory-side bound", top)
	}
}

func TestAnalyzeString(t *testing.T) {
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))
	an, err := sim.Analyze(computeKernel(100))
	if err != nil {
		t.Fatal(err)
	}
	s := an.String()
	for _, want := range []string{"compute", "blocks/SM", "phase", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("analysis string missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeRejectsBadKernel(t *testing.T) {
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))
	if _, err := sim.Analyze(&KernelDesc{Name: "bad"}); err == nil {
		t.Error("Analyze accepted invalid kernel")
	}
}
