// Package gpu implements the timing simulator for the CUDA-like GPUs the
// paper measures. It is an interval (bottleneck-analysis) simulator in the
// style of Sniper rather than a cycle-by-cycle model: simulating 500 ms of
// wall-clock at 1.4 GHz per cycle is infeasible, and the paper's
// characterization depends only on which resource binds — core-clocked
// issue/ALU/LSU bandwidth, memory-clocked DRAM bandwidth, or exposed memory
// latency (a mix of both domains). The simulator computes, per kernel
// phase, the sustained rate of every resource at the programmed frequency
// pair and advances virtual time accordingly, producing an execution time,
// a power trace for the simulated power meter, and the base activity
// vector the performance counters derive from.
package gpu

import "fmt"

// PhaseDesc describes one homogeneous execution phase of a kernel: a stretch
// of execution with a stable instruction mix and memory behaviour. Fractions
// are of the phase's warp instructions and need not sum to one; the
// remainder is treated as generic integer ALU work.
type PhaseDesc struct {
	Name string

	// WarpInstsPerWarp is the dynamic warp-instruction count each warp
	// executes in this phase.
	WarpInstsPerWarp float64

	// Instruction mix, as fractions of warp instructions.
	FracALU    float64 // single-precision / integer pipeline
	FracSFU    float64 // transcendentals
	FracDP     float64 // double precision
	FracMem    float64 // global/local memory accesses
	FracShared float64 // shared-memory accesses
	FracBranch float64 // branches

	// DivergentFrac is the fraction of branches that diverge; divergent
	// warps serialize and replay instructions.
	DivergentFrac float64

	// TxnPerMemInst is the average number of line-sized memory
	// transactions one memory warp instruction generates after
	// coalescing: 1 for perfectly coalesced access, up to WarpSize for
	// fully scattered access.
	TxnPerMemInst float64

	// StoreFrac is the store fraction of memory transactions.
	StoreFrac float64

	// L1Hit and L2Hit are nominal hit fractions assuming the working set
	// fits; they are derated by the ratio of WorkingSetBytes to the
	// actual cache capacity of the simulated board. On cacheless boards
	// (Tesla) every transaction goes to DRAM.
	L1Hit, L2Hit float64

	// WorkingSetBytes is the per-SM working set used to derate hit rates.
	WorkingSetBytes float64

	// MLP is the average number of outstanding memory requests per warp
	// (memory-level parallelism).
	MLP float64

	// IssueEff is the fraction of peak issue bandwidth the instruction
	// stream can use (instruction-level parallelism / dependence limits).
	IssueEff float64

	// ActivityFactor scales the *energy* cost of this phase's events
	// without changing their counts: it models data-dependent switching
	// activity (operand toggling), which real performance counters cannot
	// observe — a major reason the paper's power model R̄² is low. Zero
	// means 1 (nominal toggling).
	ActivityFactor float64
}

// Validate checks a phase for obvious inconsistencies.
func (p *PhaseDesc) Validate() error {
	if p.WarpInstsPerWarp <= 0 {
		return fmt.Errorf("gpu: phase %q: non-positive instruction count", p.Name)
	}
	sum := p.FracALU + p.FracSFU + p.FracDP + p.FracMem + p.FracShared + p.FracBranch
	if sum > 1+1e-9 {
		return fmt.Errorf("gpu: phase %q: instruction mix sums to %.3f > 1", p.Name, sum)
	}
	for name, f := range map[string]float64{
		"FracALU": p.FracALU, "FracSFU": p.FracSFU, "FracDP": p.FracDP,
		"FracMem": p.FracMem, "FracShared": p.FracShared, "FracBranch": p.FracBranch,
		"DivergentFrac": p.DivergentFrac, "StoreFrac": p.StoreFrac,
		"L1Hit": p.L1Hit, "L2Hit": p.L2Hit,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("gpu: phase %q: %s = %g out of [0,1]", p.Name, name, f)
		}
	}
	if p.TxnPerMemInst < 0 || p.TxnPerMemInst > 32 {
		return fmt.Errorf("gpu: phase %q: TxnPerMemInst = %g out of [0,32]", p.Name, p.TxnPerMemInst)
	}
	if p.MLP <= 0 && p.FracMem > 0 {
		return fmt.Errorf("gpu: phase %q: memory phase needs MLP > 0", p.Name)
	}
	if p.IssueEff <= 0 || p.IssueEff > 1 {
		return fmt.Errorf("gpu: phase %q: IssueEff = %g out of (0,1]", p.Name, p.IssueEff)
	}
	if p.ActivityFactor != 0 && (p.ActivityFactor < 0.3 || p.ActivityFactor > 3) {
		return fmt.Errorf("gpu: phase %q: ActivityFactor = %g out of [0.3,3]", p.Name, p.ActivityFactor)
	}
	return nil
}

// KernelDesc describes one kernel launch: its grid and per-thread resource
// usage (which bound occupancy) and its execution phases.
type KernelDesc struct {
	Name            string
	Blocks          int
	ThreadsPerBlock int
	RegsPerThread   int
	SharedPerBlock  int // bytes
	Phases          []PhaseDesc
}

// Validate checks the kernel description.
func (k *KernelDesc) Validate() error {
	if k.Blocks <= 0 || k.ThreadsPerBlock <= 0 {
		return fmt.Errorf("gpu: kernel %q: empty grid", k.Name)
	}
	if k.ThreadsPerBlock > 1024 {
		return fmt.Errorf("gpu: kernel %q: %d threads per block exceeds 1024", k.Name, k.ThreadsPerBlock)
	}
	if len(k.Phases) == 0 {
		return fmt.Errorf("gpu: kernel %q: no phases", k.Name)
	}
	for i := range k.Phases {
		if err := k.Phases[i].Validate(); err != nil {
			return fmt.Errorf("gpu: kernel %q: %w", k.Name, err)
		}
	}
	return nil
}
