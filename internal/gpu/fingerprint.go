package gpu

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a stable 64-bit FNV-1a digest of the complete kernel
// description — name, grid, per-thread resources, and the exact bit
// patterns of every phase parameter. Two descriptions hash equal iff the
// simulator would treat them identically, which makes the fingerprint a
// safe launch-cache key: the interval simulator is deterministic, so
// (board spec, clock pair, kernel fingerprint) fully determines a launch.
//
//gpulint:deterministic
func (k *KernelDesc) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:]) // fnv: hash.Hash.Write never errors
	}
	str := func(s string) {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0}) // terminator: no concatenation aliasing
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	str(k.Name)
	u64(uint64(k.Blocks))
	u64(uint64(k.ThreadsPerBlock))
	u64(uint64(k.RegsPerThread))
	u64(uint64(k.SharedPerBlock))
	u64(uint64(len(k.Phases)))
	for i := range k.Phases {
		p := &k.Phases[i]
		str(p.Name)
		f64(p.WarpInstsPerWarp)
		f64(p.FracALU)
		f64(p.FracSFU)
		f64(p.FracDP)
		f64(p.FracMem)
		f64(p.FracShared)
		f64(p.FracBranch)
		f64(p.DivergentFrac)
		f64(p.TxnPerMemInst)
		f64(p.StoreFrac)
		f64(p.L1Hit)
		f64(p.L2Hit)
		f64(p.WorkingSetBytes)
		f64(p.MLP)
		f64(p.IssueEff)
		f64(p.ActivityFactor)
	}
	return h.Sum64()
}
