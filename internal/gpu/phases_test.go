package gpu

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
)

// Focused behavioural tests for the phase model: divergence, special
// functional units, shared memory, multi-phase composition and memory
// latency shaping.

func basePhase() PhaseDesc {
	return PhaseDesc{
		Name: "p", WarpInstsPerWarp: 20000,
		FracALU: 0.7, FracMem: 0.02, FracBranch: 0.06,
		TxnPerMemInst: 1, L1Hit: 0.6, L2Hit: 0.6,
		WorkingSetBytes: 32 << 10, MLP: 4, IssueEff: 0.85,
	}
}

func kernelWith(ph PhaseDesc, blocks int) *KernelDesc {
	return &KernelDesc{Name: "k", Blocks: blocks, ThreadsPerBlock: 256, RegsPerThread: 20,
		Phases: []PhaseDesc{ph}}
}

func runPhaseKernel(t *testing.T, spec *arch.Spec, ph PhaseDesc) *KernelResult {
	t.Helper()
	sim := New(spec, clock.NewState(spec))
	res, err := sim.RunKernel(kernelWith(ph, 8*spec.SMCount))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDivergenceSlowsExecution(t *testing.T) {
	spec := arch.GTX480()
	smooth := basePhase()
	divergent := basePhase()
	divergent.DivergentFrac = 0.6

	ts := runPhaseKernel(t, spec, smooth).Time
	td := runPhaseKernel(t, spec, divergent).Time
	if td <= ts*1.05 {
		t.Errorf("divergent kernel only %.3fx slower; expect replay + serialization penalty", td/ts)
	}
}

func TestDivergenceRaisesIssuedOverExecuted(t *testing.T) {
	spec := arch.GTX680()
	divergent := basePhase()
	divergent.DivergentFrac = 0.5
	res := runPhaseKernel(t, spec, divergent)
	issued := res.Activities[counters.ActInstIssued]
	executed := res.Activities[counters.ActInstExecuted]
	if issued <= executed*1.02 {
		t.Errorf("issued (%.3g) should exceed executed (%.3g) under divergence", issued, executed)
	}
}

func TestSFUHeavyKernelBoundBySFU(t *testing.T) {
	spec := arch.GTX480() // narrow SFU: 4 per SM
	ph := basePhase()
	ph.FracALU = 0.2
	ph.FracSFU = 0.5
	res := runPhaseKernel(t, spec, ph)
	if res.Phases[0].Bottleneck != "sfu" {
		t.Errorf("bottleneck %q, want sfu", res.Phases[0].Bottleneck)
	}
}

func TestDPHeavyKernelBoundByDP(t *testing.T) {
	spec := arch.GTX680() // GeForce Kepler: weak DP (1/24 rate)
	ph := basePhase()
	ph.FracALU = 0.3
	ph.FracDP = 0.3
	res := runPhaseKernel(t, spec, ph)
	if res.Phases[0].Bottleneck != "dp" {
		t.Errorf("bottleneck %q, want dp", res.Phases[0].Bottleneck)
	}
}

func TestSharedHeavyKernelUsesLSUPath(t *testing.T) {
	spec := arch.GTX480()
	ph := basePhase()
	ph.FracALU = 0.1
	ph.FracShared = 0.7
	ph.IssueEff = 1.0
	res := runPhaseKernel(t, spec, ph)
	if b := res.Phases[0].Bottleneck; b != "shared" {
		t.Errorf("bottleneck %q, want shared", b)
	}
}

func TestMultiPhaseTimeIsSumOfPhases(t *testing.T) {
	spec := arch.GTX460()
	sim := New(spec, clock.NewState(spec))
	a, b := basePhase(), basePhase()
	b.FracMem, b.FracALU, b.MLP = 0.4, 0.3, 8
	k := &KernelDesc{Name: "two", Blocks: 8 * spec.SMCount, ThreadsPerBlock: 256, RegsPerThread: 20,
		Phases: []PhaseDesc{a, b}}
	res, err := sim.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, pr := range res.Phases {
		sum += pr.Duration
	}
	if d := res.Time - sum; d > 1e-12 || d < -1e-12 {
		t.Errorf("kernel time %g != phase sum %g", res.Time, sum)
	}
	if res.Phases[0].Bottleneck == res.Phases[1].Bottleneck {
		t.Log("phases share a bottleneck; acceptable but the setup intended otherwise")
	}
}

func TestAvgMemLatencyGrowsWithMissRate(t *testing.T) {
	spec := arch.GTX480()
	sim := New(spec, clock.NewState(spec))
	hits := basePhase()
	hits.L1Hit, hits.L2Hit = 0.9, 0.9
	hits.WorkingSetBytes = 1 << 10
	misses := basePhase()
	misses.L1Hit, misses.L2Hit = 0.05, 0.05
	misses.WorkingSetBytes = 64 << 20
	if lh, lm := sim.avgMemLatency(&hits), sim.avgMemLatency(&misses); lh >= lm {
		t.Errorf("hit-heavy latency %g not below miss-heavy %g", lh, lm)
	}
}

func TestAvgMemLatencyStretchesAtLowMemClock(t *testing.T) {
	spec := arch.GTX680()
	clk := clock.NewState(spec)
	sim := New(spec, clk)
	ph := basePhase()
	ph.L1Hit, ph.L2Hit = 0.1, 0.1
	ph.WorkingSetBytes = 64 << 20
	latH := sim.avgMemLatency(&ph)
	if err := clk.SetPair(clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqLow}); err != nil {
		t.Fatal(err)
	}
	if latL := sim.avgMemLatency(&ph); latL <= latH {
		t.Errorf("latency at Mem-L (%g) not above Mem-H (%g)", latL, latH)
	}
}

func TestActivityFactorDoesNotChangeTimeOrCounters(t *testing.T) {
	// Switching activity is energy-only: it must not alter timing or the
	// counter-visible activity.
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))
	quiet := kernelWith(basePhase(), 100)
	loud := kernelWith(basePhase(), 100)
	loud.Phases[0].ActivityFactor = 1.4

	rq, err := sim.RunKernel(quiet)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := sim.RunKernel(loud)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Time != rl.Time {
		t.Error("activity factor changed execution time")
	}
	if rq.Activities != rl.Activities {
		t.Error("activity factor changed counter-visible activity")
	}
	if rl.Phases[0].EnergyScale != 1.4 || rq.Phases[0].EnergyScale != 1 {
		t.Errorf("energy scales %g, %g; want 1.4, 1", rl.Phases[0].EnergyScale, rq.Phases[0].EnergyScale)
	}
}

func TestIrregularityBoundedProperty(t *testing.T) {
	// The per-(kernel, grid) deviation must stay within the spec's band.
	spec := arch.GTX285() // largest irregularity
	sim := New(spec, clock.NewState(spec))
	for blocks := 1; blocks < 4000; blocks += 137 {
		k := kernelWith(basePhase(), blocks)
		res, err := sim.RunKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		_ = res // the irregularity is folded into Time; bounds are implied
	}
	// Directly check the hash range.
	for blocks := 1; blocks < 5000; blocks += 61 {
		if u := irregularity("anything", blocks); u < -1 || u > 1 {
			t.Fatalf("irregularity %g out of [-1, 1]", u)
		}
	}
}
