package gpu

import (
	"fmt"
	"math"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
)

// The compiled-kernel fast path.
//
// Almost everything RunKernel derives is invariant under the DVFS pair:
// occupancy and wave geometry are pure grid/spec arithmetic, event
// tallies and derated cache-hit fractions depend only on the kernel
// description and cache capacities, replay factors only on the
// instruction mix, and the deterministic timing irregularity only on
// (kernel name, grid). The pair enters each per-phase resource bound
// through exactly one frequency denominator — core Hz for pipeline
// bounds, memory bandwidth for the DRAM-bandwidth bound, and the
// core-vs-memory latency split for the latency bound.
//
// Compile therefore evaluates the whole invariant prefix once per
// (spec, kernel) and stores, struct-of-arrays, the coefficients of each
// bound as a function of the clock state; evaluating one frequency pair
// is then a handful of multiply-divides per bound plus the p-norm fold.
// A full sweep (every pair of Table III) reuses one CompiledKernel,
// which is what Sim.RunPairs and the driver's batched precompute do.
//
// Bit-identity is the hard contract (the seed-42 golden artifacts encode
// these floats): every per-pair expression below replicates RunKernel's
// operation sequence exactly. Invariant subexpressions are hoisted only
// when they form a left-associated prefix of the original expression —
// e.g. issued/(sms*issueRate*fc) keeps the grouping
// numerator/(denominator·fc) with denominator = sms*issueRate hoisted —
// and terms that the original computes separately (the three latency
// addends, the two stall-slot factors) stay separate here. The property
// test in compile_test.go checks RunPairs against per-pair RunKernel for
// every modeling kernel × pair × board, comparing exact bits.

// boundKind selects the per-pair evaluation shape of one compiled bound.
type boundKind uint8

const (
	boundCore   boundKind = iota // t = num / (den · coreHz)
	boundMemBW                   // t = num / memBandwidth
	boundMemLat                  // t = num / (den / avgLat(pair))
)

// CompiledKernel is the frequency-invariant precompute of one kernel on
// one board: everything RunKernel derives except the final per-pair
// timing folds. Build with Sim.Compile; evaluate with Sim.RunCompiled or
// Sim.RunPairs. A CompiledKernel is immutable after Compile and safe for
// concurrent use by any number of goroutines.
type CompiledKernel struct {
	spec *arch.Spec

	name            string
	blocks          int
	threadsPerBlock int

	totalWarps  float64
	occupancy   float64
	waveStretch float64
	irregular   float64

	// Per-phase arrays (parallel, len = number of phases).
	phaseName []string
	events    []Events
	escale    []float64
	boundOff  []int // bounds of phase i: [boundOff[i], boundOff[i+1])

	// Flattened bound coefficients (parallel, struct-of-arrays).
	bKind []boundKind
	bName []string
	bNum  []float64 // core: numerator · replay/penalty; mem-bw: bytes; mem-lat: txns
	bDen  []float64 // core: fc-free denominator; mem-lat: resident·MLP·SMs
	bLat0 []float64 // mem-lat: core-clocked latency, cycles
	bLat1 []float64 // mem-lat: L1-miss-weighted L2 latency, cycles
	bLat2 []float64 // mem-lat: DRAM-latency weight

	// Frequency-invariant slice of the activity vector, computed once and
	// copied into every result; eval adds only the stall and cycle-count
	// entries, which depend on the pair.
	baseActs   counters.Vector
	slotFactor float64 // float64(SchedulersPerSM·IssuePerSched)
	smsF       float64 // float64(SMCount)
}

// Kernel returns the compiled kernel's name.
func (ck *CompiledKernel) Kernel() string { return ck.name }

// Spec returns the board the kernel was compiled for.
func (ck *CompiledKernel) Spec() *arch.Spec { return ck.spec }

// Compile runs the frequency-invariant half of RunKernel once for this
// simulator's board. The result may be evaluated at any clock state of
// the same board, from any goroutine.
func (s *Sim) Compile(k *KernelDesc) (*CompiledKernel, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	spec := s.spec
	blocksPerSM, residentWarps := s.Occupancy(k)
	warpsPerBlock := (k.ThreadsPerBlock + spec.WarpSize - 1) / spec.WarpSize
	totalWarps := float64(k.Blocks * warpsPerBlock)

	perWave := float64(spec.SMCount * blocksPerSM)
	waves := float64(k.Blocks) / perWave
	waveStretch := math.Ceil(waves) / waves
	if waves < 1 {
		activeSMs := math.Ceil(float64(k.Blocks) / float64(blocksPerSM))
		waveStretch = float64(spec.SMCount) / activeSMs
	}

	ck := &CompiledKernel{
		spec:            spec,
		name:            k.Name,
		blocks:          k.Blocks,
		threadsPerBlock: k.ThreadsPerBlock,
		totalWarps:      totalWarps,
		occupancy:       float64(residentWarps) / float64(spec.MaxWarpsPerSM),
		waveStretch:     waveStretch,
		irregular:       1 + spec.TimingIrregularity*irregularity(k.Name, k.Blocks),
		phaseName:       make([]string, 0, len(k.Phases)),
		events:          make([]Events, 0, len(k.Phases)),
		escale:          make([]float64, 0, len(k.Phases)),
		boundOff:        make([]int, 1, len(k.Phases)+1),
		slotFactor:      float64(spec.SchedulersPerSM * spec.IssuePerSched),
		smsF:            float64(spec.SMCount),
	}

	sms := float64(spec.SMCount)
	for i := range k.Phases {
		p := &k.Phases[i]
		wi := totalWarps * p.WarpInstsPerWarp
		replayFactor := 1 + p.FracBranch*p.DivergentFrac*2.0
		issued := wi * replayFactor

		ev := Events{
			Issue:  issued,
			ALU:    wi * (p.FracALU + otherFrac(p)) * replayFactor,
			SFU:    wi * p.FracSFU,
			DP:     wi * p.FracDP,
			LSU:    wi * p.FracMem,
			Shared: wi * p.FracShared,
		}
		txns := wi * p.FracMem * p.TxnPerMemInst
		var dramTxns float64
		if spec.L1PerSM > 0 {
			l1HitFrac := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
			l2Queries := txns - txns*l1HitFrac
			l2HitFrac := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
			dramTxns = l2Queries - l2Queries*l2HitFrac
			ev.L1 = txns
			ev.L2 = l2Queries
		} else {
			dramTxns = txns
		}
		dramTxns += txns * p.StoreFrac * 0.25
		ev.DRAM = dramTxns

		escale := p.ActivityFactor
		if escale == 0 {
			escale = 1
		}
		ck.phaseName = append(ck.phaseName, p.Name)
		ck.events = append(ck.events, ev)
		ck.escale = append(ck.escale, escale)

		// Bound coefficients, in phaseBounds order. The numerators here
		// match phaseBounds' variables bit for bit: they are the same
		// expressions over the same inputs (phaseBounds recomputes
		// l2Queries as txns*(1-hit) where runPhase uses txns - txns*hit;
		// both dramTxns variants agree only because the *bounds* only need
		// dramTxns, which phaseBounds derives its own way — so the dram-bw
		// numerator below uses phaseBounds' form).
		bAdd := func(kind boundKind, name string, num, den, lat0, lat1, lat2 float64) {
			ck.bKind = append(ck.bKind, kind)
			ck.bName = append(ck.bName, name)
			ck.bNum = append(ck.bNum, num)
			ck.bDen = append(ck.bDen, den)
			ck.bLat0 = append(ck.bLat0, lat0)
			ck.bLat1 = append(ck.bLat1, lat1)
			ck.bLat2 = append(ck.bLat2, lat2)
		}
		alu := wi * (p.FracALU + otherFrac(p)) * replayFactor
		sfu := wi * p.FracSFU
		dp := wi * p.FracDP
		shared := wi * p.FracShared
		var dramTxnsB float64
		if spec.L1PerSM > 0 {
			l1Hit := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
			l2Queries := txns * (1 - l1Hit)
			l2Hit := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
			dramTxnsB = l2Queries * (1 - l2Hit)
		} else {
			dramTxnsB = txns
		}
		dramTxnsB += txns * p.StoreFrac * 0.25

		divPenalty := 1 + p.DivergentFrac*1.5
		issueRate := float64(spec.SchedulersPerSM*spec.IssuePerSched) * p.IssueEff
		bAdd(boundCore, "issue", issued, sms*issueRate, 0, 0, 0)
		bAdd(boundCore, "alu", alu*divPenalty, sms*spec.ALUThroughput, 0, 0, 0)
		if sfu > 0 {
			bAdd(boundCore, "sfu", sfu, sms*spec.SFUThroughput, 0, 0, 0)
		}
		if dp > 0 {
			bAdd(boundCore, "dp", dp, sms*spec.DPThroughput, 0, 0, 0)
		}
		if txns > 0 {
			bAdd(boundCore, "lsu", txns, sms*spec.LSUThroughput, 0, 0, 0)
		}
		if shared > 0 {
			bAdd(boundCore, "shared", shared, sms*spec.LSUThroughput, 0, 0, 0)
		}
		if dramTxnsB > 0 {
			bAdd(boundMemBW, "dram-bw", dramTxnsB*float64(spec.LineSize), 0, 0, 0, 0)
		}
		if txns > 0 && p.MLP > 0 {
			// avgMemLatency's three addends, kept separate so the per-pair
			// additions replay the original sequence: lat0/fc + lat1/fc +
			// lat2·dram. On cacheless boards the original is 280/fc + dram,
			// which the (280, 0, 1) coefficients reproduce exactly
			// (adding 0.0 and multiplying by 1.0 are bit-exact no-ops).
			lat0, lat1, lat2 := 280.0, 0.0, 1.0
			if spec.L1PerSM > 0 {
				l1Hit := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
				l2Hit := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
				missL1 := 1 - l1Hit
				lat0 = spec.L1LatencyCyc
				lat1 = missL1 * spec.L2LatencyCyc
				lat2 = missL1 * (1 - l2Hit)
			}
			bAdd(boundMemLat, "mem-latency", txns, float64(residentWarps)*p.MLP*sms, lat0, lat1, lat2)
		}
		ck.boundOff = append(ck.boundOff, len(ck.bKind))
	}

	ck.compileActivities(k)
	return ck, nil
}

// compileActivities accumulates the frequency-invariant entries of the
// activity vector, replaying fillActivities' additions in the same phase
// order (floating-point addition is not associative; the order is part
// of the bit-identity contract).
func (ck *CompiledKernel) compileActivities(k *KernelDesc) {
	v := &ck.baseActs
	var issued, retired float64
	for i := range ck.events {
		p := &k.Phases[i]
		ev := ck.events[i]
		issued += ev.Issue
		wi := ck.totalWarps * p.WarpInstsPerWarp
		retired += wi

		v[counters.ActALU] += ev.ALU
		v[counters.ActSFU] += ev.SFU
		v[counters.ActDP] += ev.DP
		v[counters.ActLSU] += ev.LSU
		v[counters.ActShared] += ev.Shared
		v[counters.ActBranch] += wi * p.FracBranch
		v[counters.ActDivergent] += wi * p.FracBranch * p.DivergentFrac

		txns := ev.L1
		if ck.spec.L1PerSM == 0 {
			txns = ev.DRAM / (1 + p.StoreFrac*0.25)
		}
		v[counters.ActGlobalLoadTxn] += txns * (1 - p.StoreFrac)
		v[counters.ActGlobalStoreTxn] += txns * p.StoreFrac
		if ck.spec.L1PerSM > 0 {
			v[counters.ActL1Miss] += ev.L2
			v[counters.ActL1Hit] += ev.L1 - ev.L2
			dramReads := ev.DRAM / (1 + p.StoreFrac*0.25)
			v[counters.ActL2Miss] += dramReads
			v[counters.ActL2Hit] += ev.L2 - dramReads
		}
		v[counters.ActDRAMRead] += ev.DRAM * (1 - p.StoreFrac)
		v[counters.ActDRAMWrite] += ev.DRAM * p.StoreFrac
	}
	v[counters.ActInstIssued] = issued
	v[counters.ActInstExecuted] = retired
	v[counters.ActWarpsLaunched] = ck.totalWarps
	v[counters.ActBlocksLaunched] = float64(ck.blocks)
	v[counters.ActThreadsLaunched] = float64(ck.blocks * ck.threadsPerBlock)
	v[counters.ActOccupancy] = ck.occupancy
}

// eval runs the per-pair half of the model at the given clock state. It
// allocates at most the (pooled) result struct and its phase slice;
// everything else is arithmetic over the compiled coefficients.
func (ck *CompiledKernel) eval(clk *clock.State) *KernelResult {
	fc := clk.CoreHz()
	res := newResult(len(ck.phaseName))
	res.Kernel = ck.name
	res.Occupancy = ck.occupancy
	for pi := range ck.phaseName {
		const pnorm = 4.0
		var acc, tmax float64
		bname := "none"
		for bi := ck.boundOff[pi]; bi < ck.boundOff[pi+1]; bi++ {
			var t float64
			switch ck.bKind[bi] {
			case boundCore:
				t = ck.bNum[bi] / (ck.bDen[bi] * fc)
			case boundMemBW:
				t = ck.bNum[bi] / clk.MemBandwidthBytesPerSec()
			default: // boundMemLat
				lat := ck.bLat0[bi] / fc
				lat += ck.bLat1[bi] / fc
				lat += ck.bLat2[bi] * clk.DRAMLatencySec()
				rate := ck.bDen[bi] / lat
				t = ck.bNum[bi] / rate
			}
			if !(t > 0) { // matches phaseBounds' add: drops zeros and NaNs
				continue
			}
			acc += math.Pow(t, pnorm)
			if t > tmax {
				tmax, bname = t, ck.bName[bi]
			}
		}
		dur := math.Pow(acc, 1/pnorm) * ck.waveStretch
		dur *= ck.irregular
		res.Time += dur
		res.Phases = append(res.Phases, PhaseResult{
			Name:        ck.phaseName[pi],
			Duration:    dur,
			Events:      ck.events[pi],
			EnergyScale: ck.escale[pi],
			Bottleneck:  bname,
		})
	}

	v := ck.baseActs
	for pi := range res.Phases {
		slots := res.Phases[pi].Duration * fc * ck.slotFactor * ck.smsF
		idle := slots - ck.events[pi].Issue
		if idle > 0 {
			memShare := 0.2
			switch res.Phases[pi].Bottleneck {
			case "dram-bw", "mem-latency", "lsu":
				memShare = 0.85
			case "issue":
				memShare = 0.1
			}
			v[counters.ActStallMem] += idle * memShare
			v[counters.ActStallExec] += idle * (1 - memShare)
		}
	}
	v[counters.ActActiveCycles] = res.Time * fc * ck.smsF * res.Occupancy
	v[counters.ActElapsedCycles] = res.Time * fc
	res.Activities = v
	return res
}

// RunCompiled evaluates a compiled kernel at the simulator's current
// DVFS state. Bit-identical to RunKernel on the same description.
func (s *Sim) RunCompiled(ck *CompiledKernel) (*KernelResult, error) {
	if ck.spec != s.spec {
		return nil, fmt.Errorf("gpu: kernel %q compiled for %s, simulator runs %s",
			ck.name, ck.spec.Name, s.spec.Name)
	}
	return ck.eval(s.clk), nil
}

// RunPairs evaluates a compiled kernel at every given frequency pair in
// one pass, returning results aligned with pairs. The simulator's own
// clock state is untouched — the evaluation runs on a scratch state — so
// a sweep can be precomputed without reprogramming the device. Each
// result is bit-identical to RunKernel run at that pair.
func (s *Sim) RunPairs(ck *CompiledKernel, pairs []clock.Pair) ([]*KernelResult, error) {
	if ck.spec != s.spec {
		return nil, fmt.Errorf("gpu: kernel %q compiled for %s, simulator runs %s",
			ck.name, ck.spec.Name, s.spec.Name)
	}
	scratch := clock.NewState(s.spec)
	out := make([]*KernelResult, len(pairs))
	for i, p := range pairs {
		if err := scratch.SetPair(p); err != nil {
			return nil, err
		}
		out[i] = ck.eval(scratch)
	}
	return out, nil
}
