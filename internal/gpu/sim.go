package gpu

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
)

// Events is the per-domain event tally of one simulated interval; the
// hardware energy model (internal/power) converts it to joules. Counts are
// warp-granular for core pipeline events and transaction-granular for the
// memory system.
type Events struct {
	Issue  float64 // warp instructions issued (incl. replays)
	ALU    float64
	SFU    float64
	DP     float64
	LSU    float64 // memory warp instructions (address generation)
	Shared float64
	L1     float64 // L1 transactions (hits + misses)
	L2     float64 // L2 transactions (memory domain)
	DRAM   float64 // DRAM transactions (memory domain)
}

// Scale multiplies every tally by k (used to apply a phase's data-dependent
// switching-activity factor before energy accounting).
func (e *Events) Scale(k float64) {
	e.Issue *= k
	e.ALU *= k
	e.SFU *= k
	e.DP *= k
	e.LSU *= k
	e.Shared *= k
	e.L1 *= k
	e.L2 *= k
	e.DRAM *= k
}

// Add accumulates another tally.
func (e *Events) Add(o Events) {
	e.Issue += o.Issue
	e.ALU += o.ALU
	e.SFU += o.SFU
	e.DP += o.DP
	e.LSU += o.LSU
	e.Shared += o.Shared
	e.L1 += o.L1
	e.L2 += o.L2
	e.DRAM += o.DRAM
}

// PhaseResult is the outcome of one simulated phase: how long it took and
// what hardware events it generated. The sequence of PhaseResults is the
// power trace the simulated meter samples.
type PhaseResult struct {
	Name     string
	Duration float64 // seconds
	Events   Events
	// EnergyScale is the phase's data-dependent switching-activity factor
	// (PhaseDesc.ActivityFactor, defaulted to 1): the energy model should
	// scale this phase's per-event energies by it. Counters do not see it.
	EnergyScale float64
	// Bottleneck is the resource that bound this phase (diagnostic).
	Bottleneck string
}

// KernelResult is the outcome of one kernel launch.
type KernelResult struct {
	Kernel     string
	Time       float64 // seconds
	Phases     []PhaseResult
	Activities counters.Vector
	Occupancy  float64 // resident-warp fraction, 0..1
}

// resultPool recycles KernelResults and their phase slices. A frequency
// sweep evaluates each kernel at every pair and immediately folds each
// result into a cached launch payload, so the result struct is hot garbage;
// callers that fully consume a result may hand it back via ReleaseResult.
var resultPool = sync.Pool{New: func() any { return new(KernelResult) }}

// newResult returns a zeroed KernelResult whose Phases slice has capacity
// for nPhases entries, reusing pooled storage when available.
func newResult(nPhases int) *KernelResult {
	res := resultPool.Get().(*KernelResult)
	ph := res.Phases
	if cap(ph) < nPhases {
		ph = make([]PhaseResult, 0, nPhases)
	}
	*res = KernelResult{Phases: ph[:0]}
	return res
}

// ReleaseResult returns a KernelResult to the internal pool. Only the sole
// owner may call it — after every needed value has been copied out — and
// the result must not be touched afterwards. Releasing is optional;
// unreleased results are ordinary garbage.
func ReleaseResult(r *KernelResult) {
	if r == nil {
		return
	}
	resultPool.Put(r)
}

// Sim simulates kernels on one board at one DVFS state. It is not
// goroutine-safe; drive one Sim per goroutine.
type Sim struct {
	spec *arch.Spec
	clk  *clock.State
}

// New returns a simulator for the board described by spec at the DVFS state
// clk. The clock state may be mutated between runs to model frequency
// switching.
func New(spec *arch.Spec, clk *clock.State) *Sim {
	return &Sim{spec: spec, clk: clk}
}

// Spec returns the simulated board.
func (s *Sim) Spec() *arch.Spec { return s.spec }

// Clock returns the DVFS state the simulator reads.
func (s *Sim) Clock() *clock.State { return s.clk }

// Occupancy computes the number of resident blocks per SM for a kernel,
// applying the block, warp, register and shared-memory limits.
func (s *Sim) Occupancy(k *KernelDesc) (blocksPerSM, residentWarps int) {
	warpsPerBlock := (k.ThreadsPerBlock + s.spec.WarpSize - 1) / s.spec.WarpSize
	limit := s.spec.MaxBlocksPerSM
	if byWarps := s.spec.MaxWarpsPerSM / warpsPerBlock; byWarps < limit {
		limit = byWarps
	}
	if k.SharedPerBlock > 0 {
		if byShared := s.spec.SharedMemPerSM / k.SharedPerBlock; byShared < limit {
			limit = byShared
		}
	}
	if k.RegsPerThread > 0 {
		regsPerBlock := k.RegsPerThread * k.ThreadsPerBlock
		if byRegs := s.spec.RegistersPerSM / regsPerBlock; byRegs < limit {
			limit = byRegs
		}
	}
	if limit < 1 {
		limit = 1 // the hardware always fits at least one block
	}
	return limit, limit * warpsPerBlock
}

// RunKernel simulates one kernel launch at the current DVFS state.
func (s *Sim) RunKernel(k *KernelDesc) (*KernelResult, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	blocksPerSM, residentWarps := s.Occupancy(k)
	warpsPerBlock := (k.ThreadsPerBlock + s.spec.WarpSize - 1) / s.spec.WarpSize
	totalWarps := float64(k.Blocks * warpsPerBlock)

	// Wave (tail) effect: blocks execute in waves of SMCount×blocksPerSM;
	// a partial final wave leaves SMs idle.
	perWave := float64(s.spec.SMCount * blocksPerSM)
	waves := float64(k.Blocks) / perWave
	waveStretch := math.Ceil(waves) / waves
	if waves < 1 {
		// A single partial wave underuses the machine: stretch by the
		// fraction of SMs left idle instead.
		activeSMs := math.Ceil(float64(k.Blocks) / float64(blocksPerSM))
		waveStretch = float64(s.spec.SMCount) / activeSMs
	}

	// Pooled and sized up front: the append loop below must not reallocate
	// on the metering hot path (pinned by an AllocsPerRun regression test).
	res := newResult(len(k.Phases))
	res.Kernel = k.Name
	res.Occupancy = float64(residentWarps) / float64(s.spec.MaxWarpsPerSM)

	// Architecture-dependent timing irregularity: a deterministic
	// per-(kernel, grid) deviation that the performance counters do not
	// explain (see arch.Spec.TimingIrregularity). It is independent of the
	// frequency pair so that DVFS trends stay physical; what it degrades
	// is the counter→time transfer across samples, as on real hardware.
	irregular := 1 + s.spec.TimingIrregularity*irregularity(k.Name, k.Blocks)

	for i := range k.Phases {
		pr := s.runPhase(&k.Phases[i], totalWarps, residentWarps, waveStretch)
		pr.Duration *= irregular
		res.Time += pr.Duration
		res.Phases = append(res.Phases, pr)
	}

	s.fillActivities(k, res, totalWarps)
	return res, nil
}

// runPhase computes the duration and event tally of one phase via
// bottleneck analysis.
func (s *Sim) runPhase(p *PhaseDesc, totalWarps float64, residentWarps int, waveStretch float64) PhaseResult {
	spec := s.spec

	wi := totalWarps * p.WarpInstsPerWarp

	// Divergence replays inflate the issued instruction stream.
	replayFactor := 1 + p.FracBranch*p.DivergentFrac*2.0
	issued := wi * replayFactor

	ev := Events{
		Issue:  issued,
		ALU:    wi * (p.FracALU + otherFrac(p)) * replayFactor,
		SFU:    wi * p.FracSFU,
		DP:     wi * p.FracDP,
		LSU:    wi * p.FracMem,
		Shared: wi * p.FracShared,
	}

	// Memory system: transactions, cache filtering, DRAM traffic.
	txns := wi * p.FracMem * p.TxnPerMemInst
	var dramTxns float64
	if spec.L1PerSM > 0 {
		l1HitFrac := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
		l2Queries := txns - txns*l1HitFrac
		l2HitFrac := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
		dramTxns = l2Queries - l2Queries*l2HitFrac
		ev.L1 = txns
		ev.L2 = l2Queries
	} else {
		dramTxns = txns
	}
	// Stores write through eventually: add write traffic not captured by
	// the read path (write-allocate misses already counted above).
	dramTxns += txns * p.StoreFrac * 0.25
	ev.DRAM = dramTxns

	// --- Bottleneck analysis (shared with Analyze) ----------------------
	bounds := s.phaseBounds(p, totalWarps, residentWarps)

	// Smooth maximum over bottlenecks: resources overlap imperfectly, so
	// the real time sits slightly above the max of the individual bounds.
	// A p-norm with p=4 gives the max asymptotically with a gentle blend
	// near crossover points — which is exactly the mixed behaviour the
	// paper observes on Gaussian (Fig. 3).
	const pnorm = 4.0
	var acc, tmax float64
	bname := "none"
	for _, b := range bounds {
		acc += math.Pow(b.t, pnorm)
		if b.t > tmax {
			tmax, bname = b.t, b.name
		}
	}
	dur := math.Pow(acc, 1/pnorm) * waveStretch

	escale := p.ActivityFactor
	if escale == 0 {
		escale = 1
	}
	return PhaseResult{Name: p.Name, Duration: dur, Events: ev, EnergyScale: escale, Bottleneck: bname}
}

// avgMemLatency returns the average latency of one memory transaction in
// seconds at the current clocks, weighting the cache levels by their hit
// fractions. Core-clocked components stretch with 1/fc, DRAM with the
// memory clock (see clock.DRAMLatencySec).
func (s *Sim) avgMemLatency(p *PhaseDesc) float64 {
	spec := s.spec
	fc := s.clk.CoreHz()
	dram := s.clk.DRAMLatencySec()
	if spec.L1PerSM == 0 {
		// Tesla: the whole coalescing/arbitration path to the memory
		// controller is core-clocked and deep — lowering the core clock
		// visibly stretches memory latency, which is why the paper sees
		// little benefit from core scaling on the GTX 285.
		return 280/fc + dram
	}
	l1Hit := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
	l2Hit := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
	lat := spec.L1LatencyCyc / fc
	missL1 := 1 - l1Hit
	lat += missL1 * spec.L2LatencyCyc / fc
	lat += missL1 * (1 - l2Hit) * dram
	return lat
}

// irregularity maps (kernel, grid) to a deterministic value in [-1, 1] via
// FNV hashing; it seeds the per-run timing deviation.
func irregularity(name string, blocks int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name)) // fnv: hash.Hash.Write never errors
	var buf [2]byte
	buf[0] = byte(blocks)
	buf[1] = byte(blocks >> 8)
	_, _ = h.Write(buf[:]) // fnv: hash.Hash.Write never errors
	return 2*float64(h.Sum64()%100000)/99999 - 1
}

// derate reduces a nominal hit fraction as the working set outgrows the
// cache capacity. Real kernels block their reuse (tiling, temporal
// locality), so hits decay gently — a working set a few times the cache
// still keeps most of its nominal hit rate, and only order-of-magnitude
// overshoot destroys it.
func derate(nominal, workingSet, capacity float64) float64 {
	if capacity <= 0 {
		return 0
	}
	if workingSet <= 0 {
		return nominal
	}
	return nominal / (1 + workingSet/(6*capacity))
}

func otherFrac(p *PhaseDesc) float64 {
	f := 1 - p.FracALU - p.FracSFU - p.FracDP - p.FracMem - p.FracShared - p.FracBranch
	if f < 0 {
		return 0
	}
	return f
}

// fillActivities converts the event tallies of a finished kernel into the
// base activity vector the performance counters derive from.
func (s *Sim) fillActivities(k *KernelDesc, res *KernelResult, totalWarps float64) {
	var v counters.Vector
	fc := s.clk.CoreHz()
	var issued, retired float64
	for i := range res.Phases {
		pr := &res.Phases[i]
		p := &k.Phases[i]
		ev := pr.Events
		issued += ev.Issue
		wi := totalWarps * p.WarpInstsPerWarp
		retired += wi

		v[counters.ActALU] += ev.ALU
		v[counters.ActSFU] += ev.SFU
		v[counters.ActDP] += ev.DP
		v[counters.ActLSU] += ev.LSU
		v[counters.ActShared] += ev.Shared
		v[counters.ActBranch] += wi * p.FracBranch
		v[counters.ActDivergent] += wi * p.FracBranch * p.DivergentFrac

		txns := ev.L1
		if s.spec.L1PerSM == 0 {
			txns = ev.DRAM / (1 + p.StoreFrac*0.25)
		}
		v[counters.ActGlobalLoadTxn] += txns * (1 - p.StoreFrac)
		v[counters.ActGlobalStoreTxn] += txns * p.StoreFrac
		if s.spec.L1PerSM > 0 {
			v[counters.ActL1Miss] += ev.L2
			v[counters.ActL1Hit] += ev.L1 - ev.L2
			// L2 hits = queries that did not go to DRAM (excluding the
			// store write-through surcharge).
			dramReads := ev.DRAM / (1 + p.StoreFrac*0.25)
			v[counters.ActL2Miss] += dramReads
			v[counters.ActL2Hit] += ev.L2 - dramReads
		}
		v[counters.ActDRAMRead] += ev.DRAM * (1 - p.StoreFrac)
		v[counters.ActDRAMWrite] += ev.DRAM * p.StoreFrac

		// Stall accounting: scheduler slots lost to the dominant
		// bottleneck, apportioned by how memory- vs. execution-bound the
		// phase was.
		slots := pr.Duration * fc * float64(s.spec.SchedulersPerSM*s.spec.IssuePerSched) * float64(s.spec.SMCount)
		idle := slots - ev.Issue
		if idle > 0 {
			memShare := 0.2
			switch pr.Bottleneck {
			case "dram-bw", "mem-latency", "lsu":
				memShare = 0.85
			case "issue":
				memShare = 0.1
			}
			v[counters.ActStallMem] += idle * memShare
			v[counters.ActStallExec] += idle * (1 - memShare)
		}
	}
	v[counters.ActInstIssued] = issued
	v[counters.ActInstExecuted] = retired
	v[counters.ActActiveCycles] = res.Time * fc * float64(s.spec.SMCount) * res.Occupancy
	v[counters.ActElapsedCycles] = res.Time * fc
	v[counters.ActWarpsLaunched] = totalWarps
	v[counters.ActBlocksLaunched] = float64(k.Blocks)
	v[counters.ActThreadsLaunched] = float64(k.Blocks * k.ThreadsPerBlock)
	v[counters.ActOccupancy] = res.Occupancy
	res.Activities = v
}

// String summarizes a result for diagnostics.
func (r *KernelResult) String() string {
	return fmt.Sprintf("%s: %.3f ms, %d phases, occupancy %.2f",
		r.Kernel, r.Time*1e3, len(r.Phases), r.Occupancy)
}
