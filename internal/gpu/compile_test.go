package gpu_test

import (
	"math"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
	"gpuperf/internal/workloads"
)

// allKernels returns every distinct kernel description the campaign
// stack can launch: the full benchmark suite at its default scale plus
// the modeling set's extra scales.
func allKernels(t *testing.T) []*gpu.KernelDesc {
	t.Helper()
	seen := map[string]bool{}
	var out []*gpu.KernelDesc
	add := func(ks []*gpu.KernelDesc) {
		for _, k := range ks {
			key := k.Name + "|" + string(rune(k.Blocks))
			if !seen[key] {
				seen[key] = true
				out = append(out, k)
			}
		}
	}
	for _, b := range workloads.All() {
		add(b.Kernels(1))
	}
	for _, b := range workloads.ModelingSet() {
		sizes := b.Sizes
		if len(sizes) == 0 {
			sizes = []float64{1}
		}
		for _, s := range sizes {
			add(b.Kernels(s))
		}
	}
	if len(out) == 0 {
		t.Fatal("no kernels found")
	}
	return out
}

// TestRunPairsBitIdenticalToRunKernel is the batched-vs-sequential
// equivalence property: for every board, every kernel of the workload
// suite, and every BIOS-exposed frequency pair, the compiled fast path
// must reproduce RunKernel's result bit for bit — time, per-phase
// durations, bottlenecks, events, and the full activity vector. The
// seed-42 golden artifacts encode these floats, so "close" is not
// enough; comparisons use exact bit patterns.
func TestRunPairsBitIdenticalToRunKernel(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		kernels := allKernels(t)
		pairs := clock.ValidPairs(spec)
		clkSeq := clock.NewState(spec)
		simSeq := gpu.New(spec, clkSeq)
		for _, k := range kernels {
			ck, err := simSeq.Compile(k)
			if err != nil {
				t.Fatalf("%s/%s: Compile: %v", spec.Name, k.Name, err)
			}
			batched, err := simSeq.RunPairs(ck, pairs)
			if err != nil {
				t.Fatalf("%s/%s: RunPairs: %v", spec.Name, k.Name, err)
			}
			if clkSeq.Pair() != clock.DefaultPair() {
				t.Fatalf("%s/%s: RunPairs moved the simulator clock to %s", spec.Name, k.Name, clkSeq.Pair())
			}
			for pi, p := range pairs {
				if err := clkSeq.SetPair(p); err != nil {
					t.Fatal(err)
				}
				want, err := simSeq.RunKernel(k)
				if err != nil {
					t.Fatalf("%s/%s@%s: RunKernel: %v", spec.Name, k.Name, p, err)
				}
				compareResults(t, spec.Name, k.Name, p, batched[pi], want)

				// RunCompiled at the programmed pair must agree too.
				got, err := simSeq.RunCompiled(ck)
				if err != nil {
					t.Fatalf("%s/%s@%s: RunCompiled: %v", spec.Name, k.Name, p, err)
				}
				compareResults(t, spec.Name, k.Name, p, got, want)
			}
			if err := clkSeq.SetPair(clock.DefaultPair()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func compareResults(t *testing.T, board, kernel string, p clock.Pair, got, want *gpu.KernelResult) {
	t.Helper()
	fail := func(field string, g, w float64) {
		t.Fatalf("%s/%s@%s: %s = %v (%#x), want %v (%#x)",
			board, kernel, p, field, g, math.Float64bits(g), w, math.Float64bits(w))
	}
	if got.Kernel != want.Kernel {
		t.Fatalf("%s/%s@%s: kernel name %q != %q", board, kernel, p, got.Kernel, want.Kernel)
	}
	if math.Float64bits(got.Time) != math.Float64bits(want.Time) {
		fail("Time", got.Time, want.Time)
	}
	if math.Float64bits(got.Occupancy) != math.Float64bits(want.Occupancy) {
		fail("Occupancy", got.Occupancy, want.Occupancy)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("%s/%s@%s: %d phases, want %d", board, kernel, p, len(got.Phases), len(want.Phases))
	}
	for i := range got.Phases {
		g, w := &got.Phases[i], &want.Phases[i]
		if g.Name != w.Name || g.Bottleneck != w.Bottleneck {
			t.Fatalf("%s/%s@%s phase %d: (%q bound by %q), want (%q bound by %q)",
				board, kernel, p, i, g.Name, g.Bottleneck, w.Name, w.Bottleneck)
		}
		if math.Float64bits(g.Duration) != math.Float64bits(w.Duration) {
			fail("phase "+g.Name+" Duration", g.Duration, w.Duration)
		}
		if math.Float64bits(g.EnergyScale) != math.Float64bits(w.EnergyScale) {
			fail("phase "+g.Name+" EnergyScale", g.EnergyScale, w.EnergyScale)
		}
		if g.Events != w.Events {
			t.Fatalf("%s/%s@%s phase %s: events %+v, want %+v", board, kernel, p, g.Name, g.Events, w.Events)
		}
	}
	for i := range got.Activities {
		g, w := got.Activities[i], want.Activities[i]
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s/%s@%s: activity[%d] = %v (%#x), want %v (%#x)",
				board, kernel, p, i, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
}

// TestRunPairsSpecMismatch pins the cross-board safety check.
func TestRunPairsSpecMismatch(t *testing.T) {
	boards := arch.AllBoards()
	if len(boards) < 2 {
		t.Skip("needs two boards")
	}
	k := workloads.Table4()[0].Kernels(1)[0]
	simA := gpu.New(boards[0], clock.NewState(boards[0]))
	simB := gpu.New(boards[1], clock.NewState(boards[1]))
	ck, err := simA.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simB.RunCompiled(ck); err == nil {
		t.Fatal("RunCompiled accepted a kernel compiled for another board")
	}
	if _, err := simB.RunPairs(ck, clock.ValidPairs(boards[1])); err == nil {
		t.Fatal("RunPairs accepted a kernel compiled for another board")
	}
}

// TestRunKernelAllocs pins the Phases preallocation: one result struct,
// one phase slice, plus the bounded per-phase scratch of phaseBounds.
// Regressing the preallocation (or adding per-phase garbage) fails here.
func TestRunKernelAllocs(t *testing.T) {
	spec := arch.AllBoards()[0]
	sim := gpu.New(spec, clock.NewState(spec))
	k := workloads.Table4()[0].Kernels(1)[0]
	if _, err := sim.RunKernel(k); err != nil {
		t.Fatal(err)
	}
	// Budget: result + phase slice + irregularity's FNV state + per phase
	// the bounds slice (append growth up to 8 bounds ≤ 4 allocs) and the
	// add closure. Catches any accidental per-bound allocation while
	// leaving the fixed costs room.
	budget := float64(4 + 6*len(k.Phases))
	if n := testing.AllocsPerRun(200, func() {
		if _, err := sim.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}); n > budget {
		t.Fatalf("RunKernel allocates %v objects per run, budget %v", n, budget)
	}
}

// TestEvalAllocs pins the compiled path's allocation profile: exactly
// the result struct and its phase slice, nothing per pair or per bound.
func TestEvalAllocs(t *testing.T) {
	spec := arch.AllBoards()[0]
	sim := gpu.New(spec, clock.NewState(spec))
	k := workloads.Table4()[0].Kernels(1)[0]
	ck, err := sim.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := sim.RunCompiled(ck); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Fatalf("RunCompiled allocates %v objects per run, want at most 2", n)
	}
}
