package gpu

import (
	"fmt"
	"sort"
	"strings"
)

// ResourceUsage reports how close one hardware resource is to binding a
// phase: Time is the lower bound that resource alone imposes, and Fraction
// is that bound relative to the phase's actual duration (1.0 ≈ the binding
// resource; small values ≈ ample headroom).
type ResourceUsage struct {
	Resource string
	Time     float64
	Fraction float64
}

// PhaseAnalysis is the roofline-style breakdown of one phase.
type PhaseAnalysis struct {
	Phase      string
	Duration   float64
	Bottleneck string
	Usages     []ResourceUsage // sorted, most binding first
}

// KernelAnalysis aggregates a kernel's phases.
type KernelAnalysis struct {
	Kernel      string
	Time        float64
	BlocksPerSM int
	Warps       int // resident warps per SM
	Occupancy   float64
	Phases      []PhaseAnalysis
}

// Analyze runs the kernel's bottleneck model at the current DVFS state and
// returns the per-resource breakdown instead of just the binding resource —
// the tool a performance engineer uses to decide whether a kernel will
// respond to core scaling, memory scaling, or neither. It shares the
// RunKernel timing path, so Analyze(k).Time == RunKernel(k).Time.
func (s *Sim) Analyze(k *KernelDesc) (*KernelAnalysis, error) {
	res, err := s.RunKernel(k)
	if err != nil {
		return nil, err
	}
	blocksPerSM, residentWarps := s.Occupancy(k)
	out := &KernelAnalysis{
		Kernel:      k.Name,
		Time:        res.Time,
		BlocksPerSM: blocksPerSM,
		Warps:       residentWarps,
		Occupancy:   res.Occupancy,
	}
	warpsPerBlock := (k.ThreadsPerBlock + s.spec.WarpSize - 1) / s.spec.WarpSize
	totalWarps := float64(k.Blocks * warpsPerBlock)
	// Resource fractions are computed against the model-ideal duration
	// (irregularity factored out): the per-grid timing deviation is by
	// definition not attributable to any resource.
	irregular := 1 + s.spec.TimingIrregularity*irregularity(k.Name, k.Blocks)
	for i := range k.Phases {
		p := &k.Phases[i]
		bounds := s.phaseBounds(p, totalWarps, residentWarps)
		pa := PhaseAnalysis{
			Phase:      p.Name,
			Duration:   res.Phases[i].Duration,
			Bottleneck: res.Phases[i].Bottleneck,
		}
		ideal := pa.Duration / irregular
		for _, b := range bounds {
			pa.Usages = append(pa.Usages, ResourceUsage{
				Resource: b.name,
				Time:     b.t,
				Fraction: b.t / ideal,
			})
		}
		sort.Slice(pa.Usages, func(a, b int) bool { return pa.Usages[a].Time > pa.Usages[b].Time })
		out.Phases = append(out.Phases, pa)
	}
	return out, nil
}

// String renders the analysis as a compact utilization table.
func (a *KernelAnalysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.3f ms, %d blocks/SM, %d warps/SM (occupancy %.2f)\n",
		a.Kernel, a.Time*1e3, a.BlocksPerSM, a.Warps, a.Occupancy)
	for _, p := range a.Phases {
		fmt.Fprintf(&b, "  phase %s (%.3f ms, bound by %s)\n", p.Phase, p.Duration*1e3, p.Bottleneck)
		for _, u := range p.Usages {
			fmt.Fprintf(&b, "    %-12s %6.1f%%\n", u.Resource, u.Fraction*100)
		}
	}
	return b.String()
}

// phaseBounds recomputes the per-resource time bounds of one phase (the
// same arithmetic runPhase folds into its p-norm).
func (s *Sim) phaseBounds(p *PhaseDesc, totalWarps float64, residentWarps int) []bound {
	spec := s.spec
	fc := s.clk.CoreHz()
	wi := totalWarps * p.WarpInstsPerWarp
	replayFactor := 1 + p.FracBranch*p.DivergentFrac*2.0
	issued := wi * replayFactor
	alu := wi * (p.FracALU + otherFrac(p)) * replayFactor
	sfu := wi * p.FracSFU
	dp := wi * p.FracDP
	shared := wi * p.FracShared
	txns := wi * p.FracMem * p.TxnPerMemInst

	var dramTxns float64
	if spec.L1PerSM > 0 {
		l1Hit := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
		l2Queries := txns * (1 - l1Hit)
		l2Hit := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
		dramTxns = l2Queries * (1 - l2Hit)
	} else {
		dramTxns = txns
	}
	dramTxns += txns * p.StoreFrac * 0.25

	sms := float64(spec.SMCount)
	divPenalty := 1 + p.DivergentFrac*1.5
	var bounds []bound
	add := func(name string, t float64) {
		if t > 0 {
			bounds = append(bounds, bound{name, t})
		}
	}
	issueRate := float64(spec.SchedulersPerSM*spec.IssuePerSched) * p.IssueEff
	add("issue", issued/(sms*issueRate*fc))
	add("alu", alu*divPenalty/(sms*spec.ALUThroughput*fc))
	if sfu > 0 {
		add("sfu", sfu/(sms*spec.SFUThroughput*fc))
	}
	if dp > 0 {
		add("dp", dp/(sms*spec.DPThroughput*fc))
	}
	if txns > 0 {
		add("lsu", txns/(sms*spec.LSUThroughput*fc))
	}
	if shared > 0 {
		add("shared", shared/(sms*spec.LSUThroughput*fc))
	}
	if dramTxns > 0 {
		add("dram-bw", dramTxns*float64(spec.LineSize)/s.clk.MemBandwidthBytesPerSec())
	}
	if txns > 0 && p.MLP > 0 {
		avgLat := s.avgMemLatency(p)
		rate := float64(residentWarps) * p.MLP * sms / avgLat
		add("mem-latency", txns/rate)
	}
	return bounds
}

type bound struct {
	name string
	t    float64
}
