package gpu

import (
	"fmt"
	"hash/fnv"
	"math"
)

// MicroSim is a warp-level, cycle-stepped simulator of a single SM — the
// validation reference for the interval model. Where the interval model
// computes sustained rates analytically, MicroSim actually schedules warps
// cycle by cycle: each warp walks a deterministic instruction stream drawn
// from the phase's mix, execution units have per-cycle issue budgets,
// memory instructions wait out the (clock-dependent) latency with a
// bounded number in flight per warp, and the SM retires the kernel when
// every resident warp finishes.
//
// It is orders of magnitude slower than the interval model (it touches
// every instruction), so the library uses it only in validation tests and
// the -microsim diagnostic, never in the experiment harnesses.
type MicroSim struct {
	sim *Sim
}

// NewMicro wraps a Sim for microsimulation at the same DVFS state.
func NewMicro(s *Sim) *MicroSim { return &MicroSim{sim: s} }

// instruction classes in the micro trace.
type instClass uint8

const (
	instALU instClass = iota
	instSFU
	instDP
	instMem
	instShared
	instBranch
)

// microWarp is one resident warp's execution state.
type microWarp struct {
	pc        int     // instructions retired
	total     int     // instructions to retire
	readyAt   float64 // cycle at which the warp may issue again
	inFlight  int     // outstanding memory requests
	waitMem   bool    // blocked on memory at the MLP limit
	streamSel uint64  // per-warp deterministic stream seed
}

// MicroResult reports a microsimulation.
type MicroResult struct {
	Kernel string
	Time   float64 // seconds, whole kernel (all waves)
	Cycles float64 // core cycles for one wave on one SM
	IPC    float64 // retired warp-instructions per cycle per SM
}

// RunKernel microsimulates the kernel. Only single-phase kernels are
// supported (the validation corpus); multi-phase kernels return an error.
func (m *MicroSim) RunKernel(k *KernelDesc) (*MicroResult, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if len(k.Phases) != 1 {
		return nil, fmt.Errorf("gpu: microsim supports single-phase kernels, got %d phases", len(k.Phases))
	}
	p := &k.Phases[0]
	spec := m.sim.spec
	clk := m.sim.clk
	fc := clk.CoreHz()

	blocksPerSM, residentWarps := m.sim.Occupancy(k)
	instsPerWarp := int(p.WarpInstsPerWarp)
	if instsPerWarp < 1 {
		instsPerWarp = 1
	}

	// Memory latency in core cycles at the current clocks.
	memLatCyc := m.sim.avgMemLatency(p) * fc
	mlp := int(p.MLP)
	if mlp < 1 {
		mlp = 1
	}

	// DRAM bandwidth share of this SM, as core cycles of bus service per
	// memory instruction: only transactions that miss the caches reach
	// DRAM and serialize on the memory bus.
	missFrac := 1.0
	if spec.L1PerSM > 0 {
		l1 := derate(p.L1Hit, p.WorkingSetBytes, float64(spec.L1PerSM))
		l2 := derate(p.L2Hit, p.WorkingSetBytes*float64(spec.SMCount), float64(spec.L2Size))
		missFrac = (1 - l1) * (1 - l2)
	}
	dramBytesPerMemInst := p.TxnPerMemInst * missFrac * float64(spec.LineSize) * (1 + p.StoreFrac*0.25)
	bwPerSM := clk.MemBandwidthBytesPerSec() / float64(spec.SMCount) // bytes/sec
	busServiceCyc := dramBytesPerMemInst / bwPerSM * fc
	busFree := 0.0

	// Per-cycle issue budgets (warp-instructions per cycle for one SM).
	issueBudget := float64(spec.SchedulersPerSM*spec.IssuePerSched) * p.IssueEff
	var budgets [6]float64
	budgets[instALU] = spec.ALUThroughput / (1 + p.DivergentFrac*1.5)
	budgets[instSFU] = spec.SFUThroughput
	budgets[instDP] = spec.DPThroughput
	budgets[instMem] = spec.LSUThroughput
	budgets[instShared] = spec.LSUThroughput
	budgets[instBranch] = spec.ALUThroughput

	warps := make([]microWarp, residentWarps)
	for i := range warps {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d", k.Name, i)
		warps[i] = microWarp{total: instsPerWarp, streamSel: h.Sum64()}
	}

	type memRet struct {
		warp int
		at   float64
	}
	var retQueue []memRet

	cycle := 0.0
	done := 0
	var retired float64
	// Execution-dependency latency per instruction class, cycles.
	depLat := [6]float64{instALU: 10, instSFU: 18, instDP: 20, instShared: 24, instBranch: 8, instMem: 4}

	// Units with fractional throughput (e.g. Fermi's 0.5 ALU warp-insts
	// per listed cycle) accumulate issue credit across cycles; one credit
	// buys one warp instruction.
	var credit [6]float64

	maxCycles := 20e6 // hard stop against pathological configurations
	for done < len(warps) && cycle < maxCycles {
		for c := range credit {
			credit[c] += budgets[c]
			if limit := budgets[c] + 2; credit[c] > limit {
				credit[c] = limit
			}
		}
		// Retire memory returns due this cycle; a warp whose final
		// instruction was a load finishes here.
		kept := retQueue[:0]
		for _, r := range retQueue {
			if r.at <= cycle {
				w := &warps[r.warp]
				w.inFlight--
				w.waitMem = false
				if w.pc >= w.total && w.inFlight == 0 {
					done++
				}
			} else {
				kept = append(kept, r)
			}
		}
		retQueue = kept

		// Issue across schedulers, greedy over ready warps.
		issued := 0.0
		for wi := range warps {
			if issued >= issueBudget {
				break
			}
			w := &warps[wi]
			if w.pc >= w.total || w.readyAt > cycle || w.waitMem {
				continue
			}
			cls := classOf(p, w.streamSel, w.pc)
			if credit[cls] < 1 {
				// Unit saturated; the warp stalls this cycle.
				continue
			}
			if cls == instMem {
				if w.inFlight >= mlp {
					w.waitMem = true
					continue
				}
				// Each memory instruction issues TxnPerMemInst requests;
				// model their combined service as one return event, no
				// earlier than both the load-to-use latency and this SM's
				// DRAM-bandwidth share allow.
				w.inFlight++
				if busFree < cycle {
					busFree = cycle
				}
				busFree += busServiceCyc
				latReturn := cycle + memLatCyc*math.Max(1, p.TxnPerMemInst/4)
				retQueue = append(retQueue, memRet{warp: wi, at: math.Max(latReturn, busFree)})
			}
			credit[cls]--
			issued++
			w.pc++
			retired++
			w.readyAt = cycle + depLat[cls]/math.Max(1, float64(mlp)) // ILP hides part of the latency
			if w.pc >= w.total && w.inFlight == 0 {
				done++
			}
		}
		cycle++
	}
	if cycle >= maxCycles {
		return nil, fmt.Errorf("gpu: microsim exceeded %g cycles", maxCycles)
	}

	// Scale one wave on one SM to the whole grid, as the interval model
	// does (waves of SMCount×blocksPerSM blocks).
	waves := math.Ceil(float64(k.Blocks) / float64(spec.SMCount*blocksPerSM))
	if waves < 1 {
		waves = 1
	}
	time := cycle / fc * waves
	return &MicroResult{
		Kernel: k.Name,
		Time:   time,
		Cycles: cycle,
		IPC:    retired / cycle,
	}, nil
}

// classOf deterministically assigns instruction w.pc of a warp's stream to
// a class with the phase's mix as the distribution.
func classOf(p *PhaseDesc, seed uint64, pc int) instClass {
	// Cheap stateless hash → [0, 1).
	x := seed ^ uint64(pc)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	u := float64(x%1_000_000) / 1_000_000

	cum := p.FracSFU
	if u < cum {
		return instSFU
	}
	cum += p.FracDP
	if u < cum {
		return instDP
	}
	cum += p.FracMem
	if u < cum {
		return instMem
	}
	cum += p.FracShared
	if u < cum {
		return instShared
	}
	cum += p.FracBranch
	if u < cum {
		return instBranch
	}
	return instALU
}
