package gpu

import (
	"math"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

// The microsimulator is the interval model's validation reference: it does
// not have to agree to the percent, but it must land in the same regime
// (within a small factor) and preserve the orderings the characterization
// depends on.

func microPair(t *testing.T, spec *arch.Spec, k *KernelDesc, p clock.Pair) (interval, micro float64) {
	t.Helper()
	clk := clock.NewState(spec)
	if err := clk.SetPair(p); err != nil {
		t.Fatal(err)
	}
	sim := New(spec, clk)
	ir, err := sim.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMicro(sim).RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	return ir.Time, mr.Time
}

// microKernel keeps instruction counts small so the cycle loop stays fast.
func microKernel(mix PhaseDesc, blocks int) *KernelDesc {
	mix.WarpInstsPerWarp = 3000
	if mix.IssueEff == 0 {
		mix.IssueEff = 0.9
	}
	if mix.MLP == 0 {
		mix.MLP = 4
	}
	if mix.TxnPerMemInst == 0 {
		mix.TxnPerMemInst = 1
	}
	mix.Name = "p"
	return &KernelDesc{Name: "micro", Blocks: blocks, ThreadsPerBlock: 256, RegsPerThread: 20,
		Phases: []PhaseDesc{mix}}
}

func TestMicroAgreesOnComputeBound(t *testing.T) {
	spec := arch.GTX680()
	k := microKernel(PhaseDesc{FracALU: 0.85, FracMem: 0.004, FracBranch: 0.04,
		L1Hit: 0.8, L2Hit: 0.8, WorkingSetBytes: 4 << 10}, 8*spec.SMCount)
	interval, micro := microPair(t, spec, k, clock.DefaultPair())
	if ratio := micro / interval; ratio < 0.7 || ratio > 1.45 {
		t.Errorf("micro/interval = %.2f on compute-bound; want same regime", ratio)
	}
}

func TestMicroAgreesOnMemoryBound(t *testing.T) {
	spec := arch.GTX480()
	k := microKernel(PhaseDesc{FracALU: 0.25, FracMem: 0.45, FracBranch: 0.03,
		L1Hit: 0.05, L2Hit: 0.1, WorkingSetBytes: 16 << 20, MLP: 8}, 8*spec.SMCount)
	interval, micro := microPair(t, spec, k, clock.DefaultPair())
	if ratio := micro / interval; ratio < 0.6 || ratio > 1.7 {
		t.Errorf("micro/interval = %.2f on memory-bound; want same regime", ratio)
	}
}

func TestMicroPreservesCoreClockScaling(t *testing.T) {
	// The validation that matters for the paper: the microsim must agree
	// with the interval model on *how time responds to clocks*.
	spec := arch.GTX680()
	k := microKernel(PhaseDesc{FracALU: 0.85, FracMem: 0.004, FracBranch: 0.04,
		L1Hit: 0.8, L2Hit: 0.8, WorkingSetBytes: 4 << 10}, 8*spec.SMCount)
	_, microH := microPair(t, spec, k, clock.DefaultPair())
	_, microM := microPair(t, spec, k, clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh})
	wantRatio := spec.CoreFreqMHz(arch.FreqHigh) / spec.CoreFreqMHz(arch.FreqMid)
	if got := microM / microH; math.Abs(got-wantRatio)/wantRatio > 0.15 {
		t.Errorf("micro compute-bound M/H ratio %.3f, want ≈ %.3f", got, wantRatio)
	}
}

func TestMicroPreservesMemClockSensitivity(t *testing.T) {
	spec := arch.GTX680()
	k := microKernel(PhaseDesc{FracALU: 0.2, FracMem: 0.5, FracBranch: 0.02,
		L1Hit: 0.05, L2Hit: 0.1, WorkingSetBytes: 16 << 20, MLP: 2}, 8*spec.SMCount)
	_, microH := microPair(t, spec, k, clock.DefaultPair())
	_, microL := microPair(t, spec, k, clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqLow})
	if microL <= microH*1.5 {
		t.Errorf("memory-bound microsim slowed only %.2fx at Mem-L", microL/microH)
	}
}

func TestMicroIPCBounded(t *testing.T) {
	spec := arch.GTX680()
	clk := clock.NewState(spec)
	sim := New(spec, clk)
	k := microKernel(PhaseDesc{FracALU: 0.9, FracBranch: 0.02,
		L1Hit: 0.8, L2Hit: 0.8, WorkingSetBytes: 4 << 10}, 64)
	mr, err := NewMicro(sim).RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	maxIssue := float64(spec.SchedulersPerSM * spec.IssuePerSched)
	if mr.IPC <= 0 || mr.IPC > maxIssue {
		t.Errorf("IPC %.2f out of (0, %g]", mr.IPC, maxIssue)
	}
}

func TestMicroRejectsMultiPhase(t *testing.T) {
	spec := arch.GTX680()
	sim := New(spec, clock.NewState(spec))
	k := microKernel(PhaseDesc{FracALU: 0.9, L1Hit: 0.5, L2Hit: 0.5}, 64)
	k.Phases = append(k.Phases, k.Phases[0])
	if _, err := NewMicro(sim).RunKernel(k); err == nil {
		t.Error("microsim accepted multi-phase kernel")
	}
	if _, err := NewMicro(sim).RunKernel(&KernelDesc{Name: "bad"}); err == nil {
		t.Error("microsim accepted invalid kernel")
	}
}

func TestMicroDeterministic(t *testing.T) {
	spec := arch.GTX460()
	sim := New(spec, clock.NewState(spec))
	k := microKernel(PhaseDesc{FracALU: 0.6, FracMem: 0.15, FracBranch: 0.04,
		L1Hit: 0.4, L2Hit: 0.4, WorkingSetBytes: 256 << 10}, 100)
	a, err := NewMicro(sim).RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMicro(sim).RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Error("microsim not deterministic")
	}
}
