package driver

import (
	"context"
	"fmt"

	"gpuperf/internal/arch"
	"gpuperf/internal/bios"
	"gpuperf/internal/fault"
	"gpuperf/internal/gpu"
	"gpuperf/internal/obs"
)

// Fault-aware driver surface. A resilient harness attaches a per-attempt
// injector to the device, opens it through the *WithFaults constructors
// (which can refuse to boot), and drives launches through the Ctx variants
// so a watchdog context can kill a hung launch. Everything here is inert —
// bit-for-bit identical to the plain paths — when no injector is attached.

// AttachFaults wires an injector into the device's fault points: the
// clock-set/reflash path (clockset.fail, bios.bitflip), the launch path
// (launch.hang, launch.corrupt) and the power meter (meter.*). Passing nil
// detaches all fault injection.
func (d *Device) AttachFaults(in *fault.Injector) {
	d.faults = in
	d.inst.Faults = in
}

// OpenBoardWithFaults is OpenBoard behind a boot-failure fault point: the
// injector can refuse the boot entirely (boot.fail), modeling a device
// that needs another power-cycle before it enumerates.
func OpenBoardWithFaults(name string, in *fault.Injector) (*Device, error) {
	if err := in.Fail(fault.BootFail, name); err != nil {
		return nil, fmt.Errorf("driver: boot failed: %w", err)
	}
	d, err := OpenBoard(name)
	if err != nil {
		return nil, err
	}
	d.AttachFaults(in)
	return d, nil
}

// OpenSpecWithFaults is OpenSpec behind the same boot-failure fault point.
func OpenSpecWithFaults(spec *arch.Spec, in *fault.Injector) (*Device, error) {
	if err := in.Fail(fault.BootFail, spec.Name); err != nil {
		return nil, fmt.Errorf("driver: boot failed: %w", err)
	}
	d, err := OpenSpec(spec)
	if err != nil {
		return nil, err
	}
	d.AttachFaults(in)
	return d, nil
}

// Reflash reboots the device from its golden VBIOS image at the current
// clock pair — the recovery a resilient harness performs after killing a
// hung launch. It bypasses the fault points: recovery itself is assumed
// reliable (the next metered attempt draws fresh faults).
func (d *Device) Reflash() error {
	copy(d.img, d.pristine)
	pair := d.clk.Pair()
	if err := bios.PatchBootPair(d.img, pair); err != nil {
		return fmt.Errorf("driver: reflash: %w", err)
	}
	decoded, err := bios.Parse(d.img)
	if err != nil {
		return fmt.Errorf("driver: reflash: %w", err)
	}
	if err := d.clk.SetPair(decoded.Boot); err != nil {
		return err
	}
	if o := d.obs; o != nil {
		o.reboots.Inc()
		o.track.Instant("reflash", obs.Arg{Key: "pair", Value: pair.String()})
	}
	return nil
}

// hangCheck consults the launch.hang fault point. On a hit the "launch"
// blocks until the watchdog context expires, then reports the hang as a
// transient fault; with no watchdog armed (a context that can never be
// done) it reports the hang immediately rather than blocking forever.
func (d *Device) hangCheck(ctx context.Context, scope string) error {
	if !d.faults.Hit(fault.LaunchHang) {
		return nil
	}
	if ctx != nil && ctx.Done() != nil {
		<-ctx.Done()
	}
	return &fault.Error{Point: fault.LaunchHang, Scope: scope}
}

// LaunchCtx is Launch behind the launch fault points: the launch can hang
// until ctx expires (launch.hang), and a profiled launch can return a
// corrupted counter readout (launch.corrupt), reported as a transient
// fault rather than silently polluting the dataset.
func (d *Device) LaunchCtx(ctx context.Context, k *gpu.KernelDesc) (*LaunchResult, error) {
	if err := d.hangCheck(ctx, k.Name); err != nil {
		return nil, fmt.Errorf("driver: kernel %q: %w", k.Name, err)
	}
	out, err := d.Launch(k)
	if err != nil {
		return nil, err
	}
	if d.profiling && d.faults.Hit(fault.LaunchCorrupt) {
		return nil, fmt.Errorf("driver: kernel %q: %w", k.Name,
			&fault.Error{Point: fault.LaunchCorrupt, Scope: k.Name})
	}
	return out, nil
}

// RunMeteredCtx is RunMetered behind the launch fault points. The hang is
// checked once per metered run — the profile's launch.hang probability is
// per run, so workloads with long kernel sequences are not punished — and
// the corrupt-readout point guards the profiler's counter collection.
// Meter faults apply inside the measurement itself (the injector is
// attached to the instrument).
func (d *Device) RunMeteredCtx(ctx context.Context, name string, ks []*gpu.KernelDesc, hostGapSeconds, minDuration float64) (*RunResult, error) {
	if err := d.hangCheck(ctx, name); err != nil {
		return nil, fmt.Errorf("driver: workload %q: %w", name, err)
	}
	out, err := d.RunMetered(name, ks, hostGapSeconds, minDuration)
	if err != nil {
		return nil, err
	}
	if d.profiling && d.faults.Hit(fault.LaunchCorrupt) {
		return nil, fmt.Errorf("driver: workload %q: %w", name,
			&fault.Error{Point: fault.LaunchCorrupt, Scope: name})
	}
	return out, nil
}
