package driver

import (
	"context"
	"testing"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/fault"
	"gpuperf/internal/gpu"
)

func faultCampaign(t *testing.T, spec string, seed int64) *fault.Campaign {
	t.Helper()
	p, err := fault.ParseProfile(spec)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", spec, err)
	}
	return &fault.Campaign{Profile: p, Seed: seed}
}

func TestBootFailInjection(t *testing.T) {
	c := faultCampaign(t, "boot.fail:1", 1)
	_, err := OpenBoardWithFaults("GTX 680", c.Injector("GTX 680", 0))
	if err == nil {
		t.Fatal("certain boot failure still booted")
	}
	if !fault.IsTransient(err) {
		t.Errorf("boot failure not transient: %v", err)
	}
	// Zero probability boots normally and leaves the injector attached.
	c0 := faultCampaign(t, "boot.fail:0,launch.hang:0", 1)
	d, err := OpenBoardWithFaults("GTX 680", c0.Injector("GTX 680", 0))
	if err != nil {
		t.Fatalf("zero-probability boot failed: %v", err)
	}
	if d.faults == nil || d.inst.Faults == nil {
		t.Error("injector not attached to device and meter")
	}
	// A spec-opened device behaves the same.
	if _, err := OpenSpecWithFaults(arch.GTX680(), c.Injector("spec", 0)); err == nil {
		t.Error("certain boot failure booted via OpenSpecWithFaults")
	}
}

func TestClockSetFailInjection(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	before := d.Clocks()
	c := faultCampaign(t, "clockset.fail:1", 2)
	d.AttachFaults(c.Injector("s", 0))
	err = d.SetClocks(clock.Pair{Core: arch.FreqMid, Mem: arch.FreqLow})
	if err == nil {
		t.Fatal("certain clock-set failure succeeded")
	}
	if !fault.IsTransient(err) {
		t.Errorf("clock-set failure not transient: %v", err)
	}
	if d.Clocks() != before {
		t.Errorf("failed clock set moved the clocks: %s -> %s", before, d.Clocks())
	}
	// Detaching restores the plain path.
	d.AttachFaults(nil)
	if err := d.SetClocks(clock.Pair{Core: arch.FreqMid, Mem: arch.FreqLow}); err != nil {
		t.Fatalf("clock set after detach: %v", err)
	}
}

func TestBiosBitFlipDetectedAndRecovered(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	c := faultCampaign(t, "bios.bitflip:1", 3)
	d.AttachFaults(c.Injector("s", 0))
	target := clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh}
	err = d.SetClocks(target)
	if err == nil {
		t.Fatal("certain bit flip went undetected")
	}
	if pt, ok := fault.PointOf(err); !ok || pt != fault.BiosBitFlip {
		t.Fatalf("flip classified as %v, %v: %v", pt, ok, err)
	}
	// Recovery reflashed the golden image: with faults detached the same
	// request must now succeed and the device must still launch kernels.
	d.AttachFaults(nil)
	if err := d.SetClocks(target); err != nil {
		t.Fatalf("clock set after bit-flip recovery: %v", err)
	}
	if d.Clocks() != target {
		t.Errorf("clocks = %s, want %s", d.Clocks(), target)
	}
	if _, err := d.Launch(testKernel(200)); err != nil {
		t.Fatalf("launch after recovery: %v", err)
	}
}

func TestLaunchHangKilledByWatchdog(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	c := faultCampaign(t, "launch.hang:1", 4)
	d.AttachFaults(c.Injector("s", 0))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = d.RunMeteredCtx(ctx, "w", []*gpu.KernelDesc{testKernel(200)}, 0, 0.5)
	if err == nil {
		t.Fatal("hung launch completed")
	}
	if pt, ok := fault.PointOf(err); !ok || pt != fault.LaunchHang {
		t.Fatalf("hang classified as %v, %v: %v", pt, ok, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v to kill the hang", elapsed)
	}
	// Without a watchdog (Background's Done channel is nil) the hang must
	// fail fast instead of blocking the harness forever.
	d.AttachFaults(c.Injector("s", 1))
	if _, err := d.RunMeteredCtx(context.Background(), "w", []*gpu.KernelDesc{testKernel(200)}, 0, 0.5); err == nil {
		t.Fatal("unwatched hang did not fail")
	}
}

func TestLaunchCorruptOnlyUnderProfiling(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	c := faultCampaign(t, "launch.corrupt:1", 5)
	d.AttachFaults(c.Injector("s", 0))
	// Unprofiled runs have no counter readout to corrupt.
	if _, err := d.RunMeteredCtx(context.Background(), "w", []*gpu.KernelDesc{testKernel(200)}, 0, 0.5); err != nil {
		t.Fatalf("unprofiled run failed: %v", err)
	}
	d.EnableProfiler()
	_, err = d.RunMeteredCtx(context.Background(), "w", []*gpu.KernelDesc{testKernel(200)}, 0, 0.5)
	if err == nil {
		t.Fatal("corrupted profiled readout not reported")
	}
	if pt, ok := fault.PointOf(err); !ok || pt != fault.LaunchCorrupt {
		t.Fatalf("corruption classified as %v, %v: %v", pt, ok, err)
	}
	if _, err := d.LaunchCtx(context.Background(), testKernel(200)); err == nil {
		t.Fatal("corrupted profiled launch not reported")
	}
}

func TestRunMeteredCtxMatchesPlainPathWhenInert(t *testing.T) {
	run := func(attach bool) *RunResult {
		d, err := OpenBoard("GTX 680")
		if err != nil {
			t.Fatal(err)
		}
		d.Seed(99)
		if attach {
			c := faultCampaign(t, "launch.hang:0,meter.drop:0", 6)
			d.AttachFaults(c.Injector("s", 0))
		}
		rr, err := d.RunMeteredCtx(context.Background(), "w", []*gpu.KernelDesc{testKernel(200)}, 0.01, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	plain, wired := run(false), run(true)
	if plain.Measurement.EnergyJoules != wired.Measurement.EnergyJoules ||
		plain.Measurement.AvgWatts != wired.Measurement.AvgWatts {
		t.Errorf("zero-probability injector perturbed the measurement: %v vs %v",
			plain.Measurement.EnergyJoules, wired.Measurement.EnergyJoules)
	}
	if wired.Measurement.Valid != nil {
		t.Error("zero-probability injector allocated a validity mask")
	}
}

func TestSeedScopedStreams(t *testing.T) {
	measure := func(prep func(d *Device)) float64 {
		d, err := OpenBoard("GTX 680")
		if err != nil {
			t.Fatal(err)
		}
		d.Seed(42)
		prep(d)
		rr, err := d.RunMetered("w", []*gpu.KernelDesc{testKernel(200)}, 0, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return rr.Measurement.EnergyJoules
	}
	a := measure(func(d *Device) { d.SeedScoped("pair|(H-L)") })
	b := measure(func(d *Device) { d.SeedScoped("pair|(H-L)") })
	if a != b {
		t.Errorf("same scope tag produced different noise: %v vs %v", a, b)
	}
	// Draining draws elsewhere must not shift a scoped stream: re-scoping
	// restores it exactly (the property retries rely on).
	c := measure(func(d *Device) {
		d.SeedScoped("pair|(L-L)")
		d.rng.Float64()
		d.rng.Float64()
		d.SeedScoped("pair|(H-L)")
	})
	if a != c {
		t.Errorf("scoped stream shifted by prior draws: %v vs %v", a, c)
	}
	other := measure(func(d *Device) { d.SeedScoped("pair|(L-L)") })
	if a == other {
		t.Error("different scope tags produced identical noise (possible but unlikely)")
	}
	// SeedScoped derives from the base seed, so different base seeds give
	// different scoped streams.
	d2, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	d2.Seed(43)
	d2.SeedScoped("pair|(H-L)")
	rr, err := d2.RunMetered("w", []*gpu.KernelDesc{testKernel(200)}, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Measurement.EnergyJoules == a {
		t.Error("different base seeds produced identical scoped noise (possible but unlikely)")
	}
}

func TestPushHelpersSaveAndRestore(t *testing.T) {
	wasOn := LaunchCachingEnabled()
	restore := PushLaunchCachingEnabled(!wasOn)
	if LaunchCachingEnabled() == wasOn {
		t.Error("PushLaunchCachingEnabled did not flip the switch")
	}
	restore()
	if LaunchCachingEnabled() != wasOn {
		t.Error("restore did not put the caching switch back")
	}

	prev := SharedLaunchCache()
	mine := NewLaunchCache(4)
	restore2 := PushSharedLaunchCache(mine)
	if SharedLaunchCache() != mine {
		t.Error("PushSharedLaunchCache did not swap the cache")
	}
	restore2()
	if SharedLaunchCache() != prev {
		t.Error("restore did not put the shared cache back")
	}
}
