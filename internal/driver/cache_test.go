package driver

import (
	"fmt"
	"reflect"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
	"gpuperf/internal/meter"
)

// runAcrossPairs runs the kernel at every valid pair (profiling on, so the
// counter-jitter stream is exercised too) and returns the results.
func runAcrossPairs(t *testing.T, d *Device, seed int64) []*RunResult {
	t.Helper()
	d.Seed(seed)
	d.EnableProfiler()
	defer d.DisableProfiler()
	k := testKernel(4 * d.Spec().SMCount)
	var out []*RunResult
	for _, p := range clock.ValidPairs(d.Spec()) {
		if err := d.SetClocks(p); err != nil {
			t.Fatal(err)
		}
		rr, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0.02, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rr)
	}
	return out
}

// TestCachedLaunchesMatchUncached is the cache-correctness guarantee: a
// device using the per-device and shared caches produces byte-identical
// RunResults (trace, measurement samples, profiler counters — noise
// included) to a device with caching disabled, because nothing stochastic
// is ever cached.
func TestCachedLaunchesMatchUncached(t *testing.T) {
	const seed = 42
	cached, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	uncached.DisableLaunchCache()

	// Two rounds on the cached device: the first populates, the second is
	// all hits. Both must equal the uncached reference run.
	for round := 0; round < 2; round++ {
		got := runAcrossPairs(t, cached, seed)
		want := runAcrossPairs(t, uncached, seed)
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d, pair #%d: cached result differs from uncached", round, i)
			}
		}
	}
}

// TestSharedCacheCrossDevice verifies a second device hits the shared
// cache (no per-device warmup) and still reproduces the uncached results.
func TestSharedCacheCrossDevice(t *testing.T) {
	const seed = 7
	warm, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	runAcrossPairs(t, warm, seed) // populate the shared cache

	second, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	ref.DisableLaunchCache()
	got := runAcrossPairs(t, second, seed)
	want := runAcrossPairs(t, ref, seed)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("pair #%d: shared-cache result differs from uncached", i)
		}
	}
}

// TestSpecFingerprintSeparatesMutatedSpecs guards the ablation hazard: a
// modified spec that keeps its board name must not share cache entries
// with the stock board.
func TestSpecFingerprintSeparatesMutatedSpecs(t *testing.T) {
	stock := arch.GTX680()
	flat := arch.GTX680()
	flat.CoreVoltLow = flat.CoreVoltHigh
	flat.MemVoltLow = flat.MemVoltHigh
	flat.VoltExponent = 1
	if specFingerprint(stock) == specFingerprint(flat) {
		t.Fatal("mutated spec shares a fingerprint with the stock board")
	}

	dStock, err := OpenSpec(stock)
	if err != nil {
		t.Fatal(err)
	}
	dFlat, err := OpenSpec(flat)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OpenSpec(arch.GTX680())
	if err != nil {
		t.Fatal(err)
	}
	ref.DisableLaunchCache()
	k := testKernel(4 * stock.SMCount)
	flatDiffers := false
	for _, p := range clock.ValidPairs(stock) {
		for _, d := range []*Device{dStock, dFlat, ref} {
			if err := d.SetClocks(p); err != nil {
				t.Fatal(err)
			}
		}
		ls, err := dStock.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := dFlat.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := ref.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ls, lr) {
			t.Errorf("%s: stock-board launch corrupted (possibly by a mutated-spec cache entry)", p)
		}
		if !reflect.DeepEqual(lf.Trace, ls.Trace) {
			flatDiffers = true
		}
	}
	// The flattened voltage curve must change power at scaled-down pairs;
	// if it never does, the two specs were conflated somewhere.
	if !flatDiffers {
		t.Error("voltage-flat spec produced the stock power trace at every pair")
	}
}

// TestKernelFingerprintSensitivity: distinct descriptions must hash apart.
func TestKernelFingerprintSensitivity(t *testing.T) {
	base := testKernel(64)
	same := *base
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("identical kernels hash differently")
	}
	mutations := []func(*gpu.KernelDesc){
		func(k *gpu.KernelDesc) { k.Name = "other" },
		func(k *gpu.KernelDesc) { k.Blocks++ },
		func(k *gpu.KernelDesc) { k.ThreadsPerBlock++ },
		func(k *gpu.KernelDesc) { k.RegsPerThread++ },
		func(k *gpu.KernelDesc) { k.SharedPerBlock += 16 },
		func(k *gpu.KernelDesc) { k.Phases[0].FracALU += 1e-9 },
		func(k *gpu.KernelDesc) { k.Phases[0].ActivityFactor = 1.5 },
	}
	for i, mutate := range mutations {
		m := *base
		m.Phases = append([]gpu.PhaseDesc(nil), base.Phases...)
		mutate(&m)
		if m.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutation #%d did not change the fingerprint", i)
		}
	}
}

// TestLaunchCacheLRU checks the size bound and eviction order of one
// shard (a single-shard cache makes the recency order observable; the
// sharded capacity bound has its own test below).
func TestLaunchCacheLRU(t *testing.T) {
	c := newLaunchCache(2, 1)
	k := func(i uint64) launchKey { return launchKey{kernel: i} }
	v := &cachedLaunch{time: 1}
	c.put(k(1), v)
	c.put(k(2), v)
	if _, ok := c.get(k(1)); !ok { // touch 1: now 2 is least recent
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), v) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.get(k(2)); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Error("new entry missing")
	}
}

// TestLaunchCacheSharding pins the sharded cache's invariants: the
// capacity bound holds across shards, keys spread over more than one
// shard, and the batch operations agree with the scalar ones.
func TestLaunchCacheSharding(t *testing.T) {
	const capacity = 64
	c := NewLaunchCache(capacity)
	if len(c.shards) != defaultLaunchCacheShards {
		t.Fatalf("cache built %d shards, want %d", len(c.shards), defaultLaunchCacheShards)
	}
	k := func(i uint64) launchKey { return launchKey{spec: i * 0x9e3779b97f4a7c15, kernel: i} }
	v := &cachedLaunch{time: 1}

	// Overfill by 4x: the total size must never exceed the requested bound.
	for i := uint64(0); i < 4*capacity; i++ {
		c.put(k(i), v)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}

	// Fingerprint-like keys must not all collapse onto one shard.
	used := map[uint64]bool{}
	for i := uint64(0); i < 256; i++ {
		used[c.shardIndex(k(i))] = true
	}
	if len(used) < 2 {
		t.Fatalf("256 distinct keys landed on %d shard(s)", len(used))
	}

	// getBatch/putBatch round-trip against scalar get.
	fresh := NewLaunchCache(capacity)
	var entries []cacheEntry
	keys := make([]launchKey, 16)
	vals := make([]*cachedLaunch, 16)
	for i := range keys {
		keys[i] = k(uint64(i))
		entries = append(entries, cacheEntry{key: keys[i], val: &cachedLaunch{time: float64(i)}})
	}
	if hits := fresh.getBatch(keys, vals); hits != 0 {
		t.Fatalf("empty cache answered %d batch hits", hits)
	}
	fresh.putBatch(entries)
	if hits := fresh.getBatch(keys, vals); hits != len(keys) {
		t.Fatalf("batch get hit %d of %d inserted keys", hits, len(keys))
	}
	for i, val := range vals {
		got, ok := fresh.get(keys[i])
		if !ok || got != val || got.time != float64(i) {
			t.Fatalf("key %d: scalar get disagrees with batch get", i)
		}
	}
	// A second batch get must skip already-filled slots.
	vals[3] = nil
	if hits := fresh.getBatch(keys, vals); hits != 1 {
		t.Fatalf("batch get refilled %d slots, want exactly the cleared one", hits)
	}
}

// BenchmarkLaunchCacheParallel measures shared-cache hit throughput under
// concurrent access — the contention the shard split removes. Run with
// several -cpu values to see the single-mutex cache serialize while the
// sharded one scales.
func BenchmarkLaunchCacheParallel(b *testing.B) {
	for _, shards := range []int{1, defaultLaunchCacheShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := newLaunchCache(4096, shards)
			keys := make([]launchKey, 1024)
			v := &cachedLaunch{time: 1}
			for i := range keys {
				keys[i] = launchKey{spec: uint64(i) * 0x9e3779b97f4a7c15, kernel: uint64(i)}
				c.put(keys[i], v)
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := c.get(keys[i&1023]); !ok {
						b.Fatal("warm key missed")
					}
					i++
				}
			})
		})
	}
}

// TestLaunchResultTraceIsolated: mutating a returned trace must not
// corrupt the cache (Trace.Append mutates in place, so Launch must copy).
func TestLaunchResultTraceIsolated(t *testing.T) {
	d, err := OpenBoard("GTX 285")
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(4 * d.Spec().SMCount)
	first, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), traceWatts(first.Trace)...)
	first.Trace = first.Trace.Append(123, first.Trace[len(first.Trace)-1].Watts) // in-place growth
	first.Trace[0].Watts = -1
	second, err := d.Launch(k) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if got := traceWatts(second.Trace); !reflect.DeepEqual(got, want) {
		t.Fatal("cached trace was corrupted through a caller's mutation")
	}
}

// traceWatts flattens a trace's power levels for comparison.
func traceWatts(tr meter.Trace) []float64 {
	out := make([]float64, len(tr))
	for i, s := range tr {
		out[i] = s.Watts
	}
	return out
}
