package driver

import (
	"reflect"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
	"gpuperf/internal/meter"
)

// runAcrossPairs runs the kernel at every valid pair (profiling on, so the
// counter-jitter stream is exercised too) and returns the results.
func runAcrossPairs(t *testing.T, d *Device, seed int64) []*RunResult {
	t.Helper()
	d.Seed(seed)
	d.EnableProfiler()
	defer d.DisableProfiler()
	k := testKernel(4 * d.Spec().SMCount)
	var out []*RunResult
	for _, p := range clock.ValidPairs(d.Spec()) {
		if err := d.SetClocks(p); err != nil {
			t.Fatal(err)
		}
		rr, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0.02, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rr)
	}
	return out
}

// TestCachedLaunchesMatchUncached is the cache-correctness guarantee: a
// device using the per-device and shared caches produces byte-identical
// RunResults (trace, measurement samples, profiler counters — noise
// included) to a device with caching disabled, because nothing stochastic
// is ever cached.
func TestCachedLaunchesMatchUncached(t *testing.T) {
	const seed = 42
	cached, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	uncached.DisableLaunchCache()

	// Two rounds on the cached device: the first populates, the second is
	// all hits. Both must equal the uncached reference run.
	for round := 0; round < 2; round++ {
		got := runAcrossPairs(t, cached, seed)
		want := runAcrossPairs(t, uncached, seed)
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d, pair #%d: cached result differs from uncached", round, i)
			}
		}
	}
}

// TestSharedCacheCrossDevice verifies a second device hits the shared
// cache (no per-device warmup) and still reproduces the uncached results.
func TestSharedCacheCrossDevice(t *testing.T) {
	const seed = 7
	warm, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	runAcrossPairs(t, warm, seed) // populate the shared cache

	second, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	ref.DisableLaunchCache()
	got := runAcrossPairs(t, second, seed)
	want := runAcrossPairs(t, ref, seed)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("pair #%d: shared-cache result differs from uncached", i)
		}
	}
}

// TestSpecFingerprintSeparatesMutatedSpecs guards the ablation hazard: a
// modified spec that keeps its board name must not share cache entries
// with the stock board.
func TestSpecFingerprintSeparatesMutatedSpecs(t *testing.T) {
	stock := arch.GTX680()
	flat := arch.GTX680()
	flat.CoreVoltLow = flat.CoreVoltHigh
	flat.MemVoltLow = flat.MemVoltHigh
	flat.VoltExponent = 1
	if specFingerprint(stock) == specFingerprint(flat) {
		t.Fatal("mutated spec shares a fingerprint with the stock board")
	}

	dStock, err := OpenSpec(stock)
	if err != nil {
		t.Fatal(err)
	}
	dFlat, err := OpenSpec(flat)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OpenSpec(arch.GTX680())
	if err != nil {
		t.Fatal(err)
	}
	ref.DisableLaunchCache()
	k := testKernel(4 * stock.SMCount)
	flatDiffers := false
	for _, p := range clock.ValidPairs(stock) {
		for _, d := range []*Device{dStock, dFlat, ref} {
			if err := d.SetClocks(p); err != nil {
				t.Fatal(err)
			}
		}
		ls, err := dStock.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := dFlat.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := ref.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ls, lr) {
			t.Errorf("%s: stock-board launch corrupted (possibly by a mutated-spec cache entry)", p)
		}
		if !reflect.DeepEqual(lf.Trace, ls.Trace) {
			flatDiffers = true
		}
	}
	// The flattened voltage curve must change power at scaled-down pairs;
	// if it never does, the two specs were conflated somewhere.
	if !flatDiffers {
		t.Error("voltage-flat spec produced the stock power trace at every pair")
	}
}

// TestKernelFingerprintSensitivity: distinct descriptions must hash apart.
func TestKernelFingerprintSensitivity(t *testing.T) {
	base := testKernel(64)
	same := *base
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("identical kernels hash differently")
	}
	mutations := []func(*gpu.KernelDesc){
		func(k *gpu.KernelDesc) { k.Name = "other" },
		func(k *gpu.KernelDesc) { k.Blocks++ },
		func(k *gpu.KernelDesc) { k.ThreadsPerBlock++ },
		func(k *gpu.KernelDesc) { k.RegsPerThread++ },
		func(k *gpu.KernelDesc) { k.SharedPerBlock += 16 },
		func(k *gpu.KernelDesc) { k.Phases[0].FracALU += 1e-9 },
		func(k *gpu.KernelDesc) { k.Phases[0].ActivityFactor = 1.5 },
	}
	for i, mutate := range mutations {
		m := *base
		m.Phases = append([]gpu.PhaseDesc(nil), base.Phases...)
		mutate(&m)
		if m.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutation #%d did not change the fingerprint", i)
		}
	}
}

// TestLaunchCacheLRU checks the size bound and eviction order.
func TestLaunchCacheLRU(t *testing.T) {
	c := NewLaunchCache(2)
	k := func(i uint64) launchKey { return launchKey{kernel: i} }
	v := &cachedLaunch{time: 1}
	c.put(k(1), v)
	c.put(k(2), v)
	if _, ok := c.get(k(1)); !ok { // touch 1: now 2 is least recent
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), v) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.get(k(2)); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Error("new entry missing")
	}
}

// TestLaunchResultTraceIsolated: mutating a returned trace must not
// corrupt the cache (Trace.Append mutates in place, so Launch must copy).
func TestLaunchResultTraceIsolated(t *testing.T) {
	d, err := OpenBoard("GTX 285")
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(4 * d.Spec().SMCount)
	first, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), traceWatts(first.Trace)...)
	first.Trace = first.Trace.Append(123, first.Trace[len(first.Trace)-1].Watts) // in-place growth
	first.Trace[0].Watts = -1
	second, err := d.Launch(k) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if got := traceWatts(second.Trace); !reflect.DeepEqual(got, want) {
		t.Fatal("cached trace was corrupted through a caller's mutation")
	}
}

// traceWatts flattens a trace's power levels for comparison.
func traceWatts(tr meter.Trace) []float64 {
	out := make([]float64, len(tr))
	for i, s := range tr {
		out[i] = s.Watts
	}
	return out
}
