package driver

import (
	"strings"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/bios"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

func testKernel(blocks int) *gpu.KernelDesc {
	return &gpu.KernelDesc{
		Name:            "k",
		Blocks:          blocks,
		ThreadsPerBlock: 256,
		RegsPerThread:   20,
		Phases: []gpu.PhaseDesc{{
			Name:             "p",
			WarpInstsPerWarp: 30000,
			FracALU:          0.6,
			FracMem:          0.1,
			FracBranch:       0.05,
			TxnPerMemInst:    2,
			StoreFrac:        0.25,
			L1Hit:            0.4, L2Hit: 0.4,
			WorkingSetBytes: 256 << 10,
			MLP:             6,
			IssueEff:        0.85,
		}},
	}
}

func TestOpenBoardBootsAtDefault(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		d, err := OpenBoard(spec.Name)
		if err != nil {
			t.Fatalf("OpenBoard(%q): %v", spec.Name, err)
		}
		if d.Spec().Name != spec.Name {
			t.Errorf("booted %q, want %q", d.Spec().Name, spec.Name)
		}
		if d.Clocks() != clock.DefaultPair() {
			t.Errorf("%s: boot clocks %s, want (H-H)", spec.Name, d.Clocks())
		}
		if got, want := d.CounterSet().Len(), map[arch.Generation]int{arch.Tesla: 32, arch.Fermi: 74, arch.Kepler: 108}[spec.Generation]; got != want {
			t.Errorf("%s: %d counters, want %d", spec.Name, got, want)
		}
	}
}

func TestOpenRejectsUnknownBoard(t *testing.T) {
	if _, err := OpenBoard("GTX 9999"); err == nil {
		t.Error("OpenBoard accepted unknown board")
	}
	spec := arch.GTX680()
	img := bios.Build(spec)
	copy(img[8:8+32], make([]byte, 32))
	copy(img[8:], "Radeon HD 5870")
	bios.FixChecksum(img)
	if _, err := Open(img); err == nil {
		t.Error("Open accepted image for unknown board")
	}
}

func TestOpenRejectsCorruptImage(t *testing.T) {
	img := bios.Build(arch.GTX460())
	img[70]++
	if _, err := Open(img); err == nil {
		t.Error("Open accepted corrupt image")
	}
}

func TestOpenRejectsClockTableMismatch(t *testing.T) {
	// An image whose frequency table disagrees with the board spec must
	// not boot (it would silently run at the wrong clocks).
	img := bios.Build(arch.GTX680())
	img[64+2] = 0xFF // clobber core MHz of level L
	img[64+3] = 0x01
	bios.FixChecksum(img)
	if _, err := Open(img); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("Open err = %v, want clock-table mismatch", err)
	}
}

func TestSetClocksPatchesAndReboots(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	target := clock.Pair{Core: arch.FreqMid, Mem: arch.FreqLow}
	if err := d.SetClocks(target); err != nil {
		t.Fatal(err)
	}
	if d.Clocks() != target {
		t.Errorf("clocks %s after SetClocks, want %s", d.Clocks(), target)
	}
	// The change must be visible in the backing image too.
	decoded, err := bios.Parse(d.img)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Boot != target {
		t.Errorf("VBIOS boot pair %s, want %s", decoded.Boot, target)
	}
}

func TestSetClocksRejectsInvalidPair(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetClocks(clock.Pair{Core: arch.FreqLow, Mem: arch.FreqLow}); err == nil {
		t.Error("SetClocks accepted (L-L) on GTX 680")
	}
	if d.Clocks() != clock.DefaultPair() {
		t.Error("failed SetClocks changed device state")
	}
}

func TestLaunchProducesTraceAndTime(t *testing.T) {
	d, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	lr, err := d.Launch(testKernel(4 * d.Spec().SMCount))
	if err != nil {
		t.Fatal(err)
	}
	if lr.Time <= 0 {
		t.Error("non-positive launch time")
	}
	if got := lr.Trace.TotalDuration(); !approx(got, lr.Time, 1e-9) {
		t.Errorf("trace duration %g != launch time %g", got, lr.Time)
	}
	if w := lr.Trace.TrueAvgWatts(); w < 100 || w > 400 {
		t.Errorf("system power %g W implausible for a loaded GTX 480 machine", w)
	}
	if lr.Counters != nil {
		t.Error("counters collected without profiling enabled")
	}
}

func TestProfilerCollectsCounters(t *testing.T) {
	d, err := OpenBoard("GTX 285")
	if err != nil {
		t.Fatal(err)
	}
	d.EnableProfiler()
	lr, err := d.Launch(testKernel(120))
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Counters) != 32 {
		t.Fatalf("%d counters, want 32 on Tesla", len(lr.Counters))
	}
	var nonzero int
	for _, c := range lr.Counters {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < 10 {
		t.Errorf("only %d counters nonzero; kernel activity should light up most", nonzero)
	}
	d.DisableProfiler()
	lr2, _ := d.Launch(testKernel(120))
	if lr2.Counters != nil {
		t.Error("counters collected after DisableProfiler")
	}
}

func TestRunMeteredStretchesShortRuns(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(2 * d.Spec().SMCount) // short kernel
	single, err := d.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := d.RunMetered("short", []*gpu.KernelDesc{k}, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Time < 0.5 {
		t.Errorf("metered run covers %g s, want ≥ 0.5 s", rr.Time)
	}
	wantIters := int(0.5/single.Time) + 1
	if rr.Iterations != wantIters {
		t.Errorf("%d iterations, want %d", rr.Iterations, wantIters)
	}
	if got := rr.TimePerIteration(); !approx(got, single.Time, 1e-6) {
		t.Errorf("TimePerIteration %g, want %g", got, single.Time)
	}
	if len(rr.Measurement.Samples) < 10 {
		t.Errorf("only %d meter samples, want ≥ 10", len(rr.Measurement.Samples))
	}
	if rr.EnergyPerIteration() <= 0 {
		t.Error("non-positive energy per iteration")
	}
}

func TestRunMeteredEnergyConsistency(t *testing.T) {
	d, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	d.Seed(99)
	k := testKernel(8 * d.Spec().SMCount)
	rr, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Measured energy per iteration should be within a few percent of the
	// oracle (trace) energy per iteration: sampling + noise only.
	oracle := rr.Trace.TrueEnergy() / float64(rr.Iterations)
	got := rr.EnergyPerIteration()
	if !approx(got, oracle, 0.05) {
		t.Errorf("EnergyPerIteration %g vs oracle %g", got, oracle)
	}
}

func TestRunMeteredRejectsEmptyWorkload(t *testing.T) {
	d, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunMetered("empty", nil, 0, 0.5); err == nil {
		t.Error("RunMetered accepted empty workload")
	}
}

func TestDifferentPairsChangeMeasuredEnergy(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(8 * d.Spec().SMCount)
	rrH, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetClocks(clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh}); err != nil {
		t.Fatal(err)
	}
	rrM, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rrM.TimePerIteration() <= rrH.TimePerIteration() {
		t.Error("lowering the core clock did not slow the kernel")
	}
	if rrM.Measurement.AvgWatts >= rrH.Measurement.AvgWatts {
		t.Error("lowering the core clock did not cut wall power")
	}
}

func approx(a, b, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= rel*(1+b)
}
