package driver

import (
	"reflect"
	"testing"

	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

// TestPrecomputePairsMatchesUncached is the batched-launch guarantee at
// the driver layer: a device whose caches were filled by PrecomputePairs
// produces byte-identical metered results to an uncached reference, a
// second precompute simulates nothing, and a second device warms itself
// entirely from the shared cache.
func TestPrecomputePairsMatchesUncached(t *testing.T) {
	defer PushSharedLaunchCache(NewLaunchCache(DefaultSharedLaunchCacheEntries))()
	pre, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	ref.DisableLaunchCache()
	k := testKernel(4 * pre.Spec().SMCount)
	pairs := clock.ValidPairs(pre.Spec())

	// runAcrossPairs launches under the profiler, so precompute the
	// profiled key population.
	pre.EnableProfiler()
	n, err := pre.PrecomputePairs([]*gpu.KernelDesc{k}, pairs)
	pre.DisableProfiler()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pairs) {
		t.Fatalf("first precompute simulated %d entries, want %d", n, len(pairs))
	}
	got := runAcrossPairs(t, pre, 42)
	want := runAcrossPairs(t, ref, 42)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("pair #%d: precomputed result differs from uncached", i)
		}
	}

	// Idempotence: everything is cached now.
	pre.EnableProfiler()
	n, err = pre.PrecomputePairs([]*gpu.KernelDesc{k}, pairs)
	pre.DisableProfiler()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second precompute simulated %d entries, want 0", n)
	}

	// A second device must fill its per-device map from the shared cache
	// without simulating, and still reproduce the reference.
	second, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	second.EnableProfiler()
	n, err = second.PrecomputePairs([]*gpu.KernelDesc{k}, pairs)
	second.DisableProfiler()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("shared-warmed precompute simulated %d entries, want 0", n)
	}
	got = runAcrossPairs(t, second, 42)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("pair #%d: shared-warmed result differs from uncached", i)
		}
	}
}

// TestPrecomputePairsDisabled: with caching off the call is a no-op.
func TestPrecomputePairsDisabled(t *testing.T) {
	d, err := OpenBoard("GTX 285")
	if err != nil {
		t.Fatal(err)
	}
	d.DisableLaunchCache()
	k := testKernel(4 * d.Spec().SMCount)
	n, err := d.PrecomputePairs([]*gpu.KernelDesc{k}, clock.ValidPairs(d.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("cache-disabled precompute simulated %d entries, want 0", n)
	}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
}
