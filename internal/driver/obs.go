package driver

import (
	"gpuperf/internal/meter"
	"gpuperf/internal/obs"
)

// driverObs bundles one device's instrumentation: the virtual-time track
// its launches and clock transitions land on, plus the per-board driver
// counters. nil means the device is unobserved (the default) and every
// instrumented path pays a single pointer check.
type driverObs struct {
	track      *obs.Track
	boots      *obs.Counter
	reboots    *obs.Counter
	clockSets  *obs.Counter
	launches   *obs.Counter
	hitsDevice *obs.Counter
	hitsShared *obs.Counter
	misses     *obs.Counter
}

// Observe attaches a recorder to the device: driver events (launches,
// cache hits/misses, clock transitions, reboots) are counted per board and
// traced on the named track, and the meter's per-measurement counts are
// registered alongside. Passing a nil recorder detaches. Counts one boot.
func (d *Device) Observe(rec *obs.Recorder, track string) {
	if rec == nil {
		d.obs = nil
		d.inst.Obs = nil
		return
	}
	d.obs = newDriverObs(rec, d.spec.Name, track)
	d.obs.boots.Inc()
	d.inst.Obs = newMeterObs(rec.Metrics(), d.spec.Name)
}

// newDriverObs registers the per-board driver metrics.
func newDriverObs(rec *obs.Recorder, board, track string) *driverObs {
	reg := rec.Metrics()
	bl := obs.L("board", board)
	return &driverObs{
		track:      rec.Track(track),
		boots:      reg.Counter("driver_boots_total", "devices booted under observation", bl),
		reboots:    reg.Counter("driver_reboots_total", "golden-image reflashes after detected hangs", bl),
		clockSets:  reg.Counter("driver_clock_transitions_total", "successful VBIOS-patch clock transitions", bl),
		launches:   reg.Counter("driver_launches_total", "kernel launches, memoized included", bl),
		hitsDevice: reg.Counter("driver_launch_cache_hits_total", "launches served from a cache", bl, obs.L("cache", "device")),
		hitsShared: reg.Counter("driver_launch_cache_hits_total", "launches served from a cache", bl, obs.L("cache", "shared")),
		misses:     reg.Counter("driver_launch_cache_misses_total", "launches that ran the simulator", bl),
	}
}

// newMeterObs registers the per-board instrument metrics.
func newMeterObs(reg *obs.Registry, board string) *meter.Obs {
	bl := obs.L("board", board)
	return &meter.Obs{
		Measurements: reg.Counter("meter_measurements_total", "measurements finalized", bl),
		Samples:      reg.Counter("meter_samples_total", "50 ms sampling windows taken", bl),
		Dropped:      reg.Counter("meter_windows_dropped_total", "windows lost to sample dropout", bl),
		Spiked:       reg.Counter("meter_windows_spiked_total", "windows hit by transient spikes", bl),
		Stuck:        reg.Counter("meter_windows_stuck_total", "windows flagged as stuck-ADC repeats", bl),
		Interpolated: reg.Counter("meter_windows_interpolated_total", "windows reconstructed by interpolation", bl),
	}
}
