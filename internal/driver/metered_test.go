package driver

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

// Focused tests for RunMetered's host-gap accounting and the launch paths
// across every board and pair.

func TestHostGapAppearsInTrace(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(8 * d.Spec().SMCount)
	const gap = 0.030
	rr, err := d.RunMetered("w", []*gpu.KernelDesc{k}, gap, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The trace must alternate busy (high watts) and host (low watts)
	// segments; find at least one segment near the host power level.
	tr := rr.Trace.Flatten()
	hostLevel := tr[len(tr)-1].Watts // runs end with a host gap
	var busyMax float64
	for _, seg := range tr {
		if seg.Watts > busyMax {
			busyMax = seg.Watts
		}
	}
	if hostLevel >= busyMax {
		t.Fatalf("host power %.1f W not below busy power %.1f W", hostLevel, busyMax)
	}
	// Total host time = iterations × gap.
	var hostTime float64
	for _, seg := range tr {
		if seg.Watts == hostLevel {
			hostTime += seg.Duration
		}
	}
	want := float64(rr.Iterations) * gap
	if d := hostTime - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("host time %.4f s, want %.4f s", hostTime, want)
	}
}

func TestHostGapExtendsIterationTime(t *testing.T) {
	d, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(4 * d.Spec().SMCount)
	noGap, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	withGap, err := d.RunMetered("w", []*gpu.KernelDesc{k}, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 0.05
	if d := withGap.TimePerIteration() - noGap.TimePerIteration() - wantDelta; d > 1e-9 || d < -1e-9 {
		t.Errorf("host gap added %.4f s per iteration, want %.4f s",
			withGap.TimePerIteration()-noGap.TimePerIteration(), wantDelta)
	}
}

func TestRunMeteredRejectsNegativeGap(t *testing.T) {
	d, err := OpenBoard("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunMetered("w", []*gpu.KernelDesc{testKernel(10)}, -0.1, 0.5); err == nil {
		t.Error("negative host gap accepted")
	}
}

func TestLaunchOnEveryBoardAndPair(t *testing.T) {
	// Smoke property: every board runs a generic kernel at every valid
	// pair, and slower clocks never produce faster launches.
	for _, spec := range arch.AllBoards() {
		d, err := OpenBoard(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		k := testKernel(4 * spec.SMCount)
		base := 0.0
		for _, p := range clock.ValidPairs(spec) {
			if err := d.SetClocks(p); err != nil {
				t.Fatal(err)
			}
			lr, err := d.Launch(k)
			if err != nil {
				t.Fatalf("%s %s: %v", spec.Name, p, err)
			}
			if lr.Time <= 0 {
				t.Fatalf("%s %s: non-positive time", spec.Name, p)
			}
			if p == clock.DefaultPair() {
				base = lr.Time
			} else if lr.Time < base*(1-1e-9) {
				t.Errorf("%s %s: faster than (H-H)", spec.Name, p)
			}
		}
	}
}

func TestPowerModelAccessor(t *testing.T) {
	d, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	pm := d.PowerModel()
	if pm == nil || pm.Spec.Name != "GTX 480" {
		t.Error("PowerModel accessor broken")
	}
	if d.Meter() == nil {
		t.Error("Meter accessor broken")
	}
}

func TestOpenSpecCustomBoard(t *testing.T) {
	spec := arch.GTX680()
	spec.Name = "GTX 680 OC" // not in the board list
	d, err := OpenSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec().Name != "GTX 680 OC" {
		t.Error("OpenSpec lost the custom name")
	}
	if _, err := d.Launch(testKernel(64)); err != nil {
		t.Errorf("custom board cannot launch: %v", err)
	}
	// Invalid specs are rejected.
	bad := arch.GTX680()
	bad.SMCount = 0
	if _, err := OpenSpec(bad); err == nil {
		t.Error("OpenSpec accepted invalid spec")
	}
}
