// Package driver is the CUDA-driver/runtime substitute: it boots a simulated
// device from a VBIOS image, exposes a kernel-launch API, meters wall power
// during runs, and optionally collects the per-architecture performance
// counters (the CUDA-profiler role).
//
// The clock-control path is deliberately faithful to the paper's method
// (Section II-B): SetClocks does not poke the simulator directly — it
// patches the boot performance level inside the device's VBIOS image,
// fixes the checksum, and reboots the device from the patched image.
package driver

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"

	"gpuperf/internal/arch"
	"gpuperf/internal/bios"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/fastrng"
	"gpuperf/internal/fault"
	"gpuperf/internal/gpu"
	"gpuperf/internal/meter"
	"gpuperf/internal/obs"
	"gpuperf/internal/power"
)

// Device is one booted simulated GPU.
type Device struct {
	spec *arch.Spec
	img  []byte // backing VBIOS image (owned by the device)
	clk  *clock.State
	sim  *gpu.Sim
	pm   *power.Model
	set  *counters.Set
	inst *meter.Meter

	profiling bool
	// The noise source: src is reseeded in place (Seed/SeedScoped run once
	// per measurement cell — the fastrng package exists to make that
	// allocation-free), rng is the long-lived adapter the meter and
	// profiler draw through. The pair's stream is bit-identical to
	// rand.New(rand.NewSource(seed)) for every seed.
	src      *fastrng.Source
	rng      *rand.Rand
	baseSeed int64 // seed SeedScoped derives per-unit streams from

	// Fault injection (see faulty.go). pristine is an untouched copy of
	// the boot image, kept so a detected bit-flip can be recovered by
	// reflashing from the golden image — faults stays nil outside fault
	// campaigns and every check on it is nil-safe.
	faults   *fault.Injector
	pristine []byte

	// Launch memoization (see cache.go). The per-device map is private to
	// this device; the shared LRU is consulted when useShared is set.
	specFP    uint64
	cache     map[launchKey]*cachedLaunch
	useShared bool

	// Instrumentation (see obs.go); nil unless Observe attached a recorder.
	obs *driverObs
	// fanout, when non-nil, receives live scope-tagged power samples from
	// every metered run (see SetPowerFanout); nil outside a daemon.
	fanout PowerFanout
}

// PowerFanout receives live scope-tagged power telemetry from metered
// runs: one Breakdown (GPU / memory domains; module is their sum) per
// meter sampling window, tagged with the reporting device's board name.
// Implementations are called from whatever goroutine runs the campaign
// cell, so they must be safe for concurrent use across devices. The
// fan-out is live-only — it never influences measurements or artifacts.
type PowerFanout interface {
	SamplePower(device string, scopes power.Breakdown)
}

// SetPowerFanout attaches (or, with nil, detaches) the live power-sample
// fan-out for this device's metered runs.
func (d *Device) SetPowerFanout(f PowerFanout) { d.fanout = f }

// IdleScopePower returns the device's modeled static power split by scope
// at its current clocks — what a fleet collector reports for an idle
// device between campaigns.
func (d *Device) IdleScopePower() power.Breakdown {
	return d.pm.IdleScopeWatts(d.clk)
}

// initCaches attaches the launch caches according to the global switch.
func (d *Device) initCaches() {
	d.specFP = specFingerprint(d.spec)
	if LaunchCachingEnabled() {
		d.cache = make(map[launchKey]*cachedLaunch)
		d.useShared = true
	}
}

// Open boots a device from a VBIOS image. The image's board name must match
// one of the known boards (Table I), and the image's frequency table must
// agree with the board spec — a mismatch means a corrupt or mispatched
// image and fails the boot.
func Open(img []byte) (*Device, error) {
	decoded, err := bios.Parse(img)
	if err != nil {
		return nil, fmt.Errorf("driver: boot failed: %w", err)
	}
	spec := arch.BoardByName(decoded.BoardName)
	if spec == nil {
		return nil, fmt.Errorf("driver: unknown board %q", decoded.BoardName)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	for _, l := range arch.Levels() {
		e := decoded.Table[l]
		if e.CoreMHz != float64(int(spec.CoreFreqMHz(l)+0.5)) || e.MemMHz != float64(int(spec.MemFreqMHz(l)+0.5)) { //gpulint:ignore unitsafety -- VBIOS tables store integral MHz; both sides are exact integers
			return nil, fmt.Errorf("driver: VBIOS clock table disagrees with %s spec at level %s", spec.Name, l)
		}
	}

	clk := clock.NewState(spec)
	if err := clk.SetPair(decoded.Boot); err != nil {
		return nil, fmt.Errorf("driver: boot clocks: %w", err)
	}

	own := append([]byte(nil), img...)
	h := fnv.New64a()
	_, _ = h.Write([]byte(spec.Name)) // fnv: hash.Hash.Write never errors
	seed := int64(h.Sum64())
	src, rng := fastrng.NewRand(seed)
	d := &Device{
		spec:     spec,
		img:      own,
		pristine: append([]byte(nil), img...),
		clk:      clk,
		sim:      gpu.New(spec, clk),
		pm:       power.NewModel(spec),
		set:      counters.ForGeneration(spec.Generation),
		inst:     meter.New(),
		src:      src,
		rng:      rng,
		baseSeed: seed,
	}
	d.initCaches()
	return d, nil
}

// OpenBoard builds a pristine VBIOS image for a named board and boots it.
func OpenBoard(name string) (*Device, error) {
	spec := arch.BoardByName(name)
	if spec == nil {
		return nil, fmt.Errorf("driver: unknown board %q", name)
	}
	return Open(bios.Build(spec))
}

// OpenSpec boots a device for an arbitrary (possibly modified) board spec —
// the hook the ablation experiments use to boot, e.g., a Kepler board with
// a flattened voltage curve or a Fermi board with disabled caches. The spec
// must still validate.
func OpenSpec(spec *arch.Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	decoded, err := bios.Parse(bios.Build(spec))
	if err != nil {
		return nil, fmt.Errorf("driver: boot failed: %w", err)
	}
	clk := clock.NewState(spec)
	if err := clk.SetPair(decoded.Boot); err != nil {
		return nil, fmt.Errorf("driver: boot clocks: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(spec.Name)) // fnv: hash.Hash.Write never errors
	seed := int64(h.Sum64())
	src, rng := fastrng.NewRand(seed)
	img := bios.Build(spec)
	d := &Device{
		spec:     spec,
		img:      img,
		pristine: append([]byte(nil), img...),
		clk:      clk,
		sim:      gpu.New(spec, clk),
		pm:       power.NewModel(spec),
		set:      counters.ForGeneration(spec.Generation),
		inst:     meter.New(),
		src:      src,
		rng:      rng,
		baseSeed: seed,
	}
	d.initCaches()
	return d, nil
}

// Spec returns the booted board's description.
func (d *Device) Spec() *arch.Spec { return d.spec }

// Clocks returns the current frequency pair.
func (d *Device) Clocks() clock.Pair { return d.clk.Pair() }

// PowerModel returns the device's hardware power model (for harnesses that
// need the ground truth, e.g. calibration benches).
func (d *Device) PowerModel() *power.Model { return d.pm }

// CounterSet returns the architecture's performance-counter set.
func (d *Device) CounterSet() *counters.Set { return d.set }

// Meter returns the wall-power instrument attached to the machine.
func (d *Device) Meter() *meter.Meter { return d.inst }

// SetClocks reprograms the device to a new frequency pair by patching the
// VBIOS image and rebooting, as the paper does. Invalid pairs (Table III)
// are rejected and leave the device untouched.
//
// Under a fault campaign the reflash can fail transiently (the clock-set
// interface refuses the request) or corrupt the image with a single bit
// flip. A flip always breaks the image checksum, so the reboot's Parse
// detects it; the driver then restores the golden image and reports a
// transient fault for the harness to retry.
func (d *Device) SetClocks(p clock.Pair) error {
	if err := d.faults.Fail(fault.ClockSetFail, d.spec.Name); err != nil {
		return fmt.Errorf("driver: %w", err)
	}
	if err := bios.PatchBootPair(d.img, p); err != nil {
		return fmt.Errorf("driver: %w", err)
	}
	flipped := false
	if d.faults.Hit(fault.BiosBitFlip) {
		bit := d.faults.Intn(fault.BiosBitFlip, len(d.img)*8)
		d.img[bit/8] ^= 1 << (bit % 8)
		flipped = true
	}
	decoded, err := bios.Parse(d.img)
	if err != nil {
		if flipped {
			// Reflash from the golden image (re-applying the requested
			// pair so the retry starts from a consistent state).
			copy(d.img, d.pristine)
			if perr := bios.PatchBootPair(d.img, p); perr != nil {
				return fmt.Errorf("driver: recovery reflash: %w", perr)
			}
			return fmt.Errorf("driver: %w",
				&fault.Error{Point: fault.BiosBitFlip, Scope: d.spec.Name, Err: err})
		}
		return fmt.Errorf("driver: reboot failed: %w", err)
	}
	if err := d.clk.SetPair(decoded.Boot); err != nil {
		return err
	}
	if o := d.obs; o != nil {
		o.clockSets.Inc()
		o.track.Instant("set clocks " + p.String())
	}
	return nil
}

// Seed reseeds the device's noise sources (profiler jitter, meter noise)
// and sets the base seed SeedScoped derives from. The source is reseeded
// in place — the stream is bit-identical to a freshly built
// rand.New(rand.NewSource(seed)) at zero allocations.
func (d *Device) Seed(seed int64) {
	d.baseSeed = seed
	d.src.Seed(seed)
}

// SeedScoped reseeds the noise sources to a stream derived from the base
// seed and a scope tag (e.g. "pair|(H-L)"). Each tag yields an
// independent, reproducible stream regardless of how many draws earlier
// scopes consumed — so retries, skipped cells and reordered sweeps leave
// every other measurement's noise untouched. The base seed itself is
// unchanged; call Seed to move it.
//
// This runs once per measurement cell — the campaign stack's hottest
// non-numeric path — so it must stay allocation-free (see fastrng).
func (d *Device) SeedScoped(tag string) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(tag)) // fnv: hash.Hash.Write never errors
	d.src.Seed(d.baseSeed ^ int64(h.Sum64()))
}

// EnableProfiler turns on counter collection for subsequent launches,
// emulating runs under the CUDA Profiler.
func (d *Device) EnableProfiler() { d.profiling = true }

// DisableProfiler turns counter collection off.
func (d *Device) DisableProfiler() { d.profiling = false }

// LaunchResult reports one kernel launch.
type LaunchResult struct {
	Kernel     string
	Time       float64     // seconds
	Trace      meter.Trace // wall-power waveform during the launch
	Activities counters.Vector
	Counters   []float64 // profiler counters; nil unless profiling
}

// Analyze returns the per-resource bottleneck breakdown of a kernel at the
// current clocks (see gpu.Sim.Analyze).
func (d *Device) Analyze(k *gpu.KernelDesc) (*gpu.KernelAnalysis, error) {
	return d.sim.Analyze(k)
}

// MicroSim runs the warp-level validation simulator on a single-phase
// kernel at the current clocks (see gpu.MicroSim).
func (d *Device) MicroSim(k *gpu.KernelDesc) (*gpu.MicroResult, error) {
	return gpu.NewMicro(d.sim).RunKernel(k)
}

// launch returns the noiseless outcome of running k at the current
// clocks, consulting the per-device and shared launch caches before the
// simulator. The returned value is shared and immutable; it never touches
// d.rng, so the device's noise stream is identical on hits and misses.
func (d *Device) launch(k *gpu.KernelDesc) (*cachedLaunch, error) {
	key := launchKey{spec: d.specFP, pair: d.clk.Pair(), kernel: k.Fingerprint(), profiling: d.profiling}
	o := d.obs
	if o != nil {
		o.launches.Inc()
	}
	if cl, ok := d.cache[key]; ok {
		if o != nil {
			o.hitsDevice.Inc()
			o.track.Instant("launch cache hit",
				obs.Arg{Key: "kernel", Value: k.Name}, obs.Arg{Key: "cache", Value: "device"})
		}
		return cl, nil
	}
	var shared *LaunchCache
	if d.useShared {
		shared = SharedLaunchCache()
		if shared != nil {
			if cl, ok := shared.get(key); ok {
				if d.cache != nil {
					d.cache[key] = cl
				}
				if o != nil {
					o.hitsShared.Inc()
					o.track.Instant("launch cache hit",
						obs.Arg{Key: "kernel", Value: k.Name}, obs.Arg{Key: "cache", Value: "shared"})
				}
				return cl, nil
			}
		}
	}
	res, err := d.sim.RunKernel(k)
	if err != nil {
		return nil, err
	}
	if o != nil && (d.cache != nil || d.useShared) {
		o.misses.Inc()
	}
	cl := &cachedLaunch{time: res.Time, acts: res.Activities}
	for _, ph := range res.Phases {
		// Apply the phase's data-dependent switching activity to the
		// energy accounting; the profiler's counters never see it.
		ev := ph.Events
		ev.Scale(ph.EnergyScale)
		w := d.pm.SystemWatts(d.clk, ev, ph.Duration)
		cl.trace = cl.trace.Append(ph.Duration, w)
		cl.scopeJ = cl.scopeJ.Add(d.pm.ScopeWatts(d.clk, ev, ph.Duration).Scale(ph.Duration))
	}
	if d.cache != nil {
		d.cache[key] = cl
	}
	if shared != nil {
		shared.put(key, cl)
	}
	// The result was copied by value into the cached payload above.
	gpu.ReleaseResult(res)
	return cl, nil
}

// Launch runs one kernel at the current clocks.
func (d *Device) Launch(k *gpu.KernelDesc) (*LaunchResult, error) {
	cl, err := d.launch(k)
	if err != nil {
		return nil, err
	}
	out := &LaunchResult{
		Kernel: k.Name,
		Time:   cl.time,
		// Copy: Trace.Append mutates its receiver's last segment, so the
		// cached waveform must never escape by reference.
		Trace:      append(meter.Trace(nil), cl.trace...),
		Activities: cl.acts,
	}
	if d.profiling {
		out.Counters = d.set.Collect(&out.Activities, d.rng)
	}
	return out, nil
}

// RunResult reports a metered, possibly repeated, workload run.
type RunResult struct {
	Workload   string
	Iterations int     // kernel-sequence repetitions
	Time       float64 // total simulated run time, seconds
	// Trace is the run's wall-power waveform in its natural form: one
	// iteration's period tiled Iterations times. Flatten() materializes
	// the explicit segment list when a consumer needs it.
	Trace       meter.Periodic
	Activities  counters.Vector // accumulated over all iterations
	Counters    []float64       // profiler counters over the whole run; nil unless profiling
	Measurement *meter.Measurement
	// Power is the run's modeled GPU-domain power averaged over one
	// iteration, split by scope (core vs memory; host and PSU excluded).
	// Deterministic — it comes from the noiseless launch payloads, not
	// from the metered samples.
	Power power.Breakdown
}

// TimePerIteration returns the execution time of one kernel-sequence
// iteration — the paper's per-benchmark execution time.
func (r *RunResult) TimePerIteration() float64 {
	return r.Time / float64(r.Iterations)
}

// EnergyPerIteration returns measured wall energy divided by iterations.
// Its reciprocal is the paper's "power efficiency".
func (r *RunResult) EnergyPerIteration() float64 {
	// The meter only observes complete 50 ms windows; scale the sampled
	// energy to the full run so iteration counts divide out cleanly.
	obs := r.Measurement.Duration
	if obs <= 0 {
		return 0
	}
	return r.Measurement.EnergyJoules * (r.Time / obs) / float64(r.Iterations)
}

// RunMetered executes the kernel sequence repeatedly until the run covers
// at least minDuration of simulated time (the paper stretches sub-500 ms
// benchmarks the same way), then meters it.
//
// hostGapSeconds is the host-side time per iteration (argument marshalling,
// cudaMemcpy, driver overhead) during which the GPU sits at static power
// and the CPU works. Real benchmarks spend a benchmark-specific fraction of
// their runtime there, and GPU performance counters cannot see it — a key
// reason the paper's counter-only execution-time model carries 33–68%
// errors.
func (d *Device) RunMetered(name string, ks []*gpu.KernelDesc, hostGapSeconds, minDuration float64) (*RunResult, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("driver: workload %q has no kernels", name)
	}
	if hostGapSeconds < 0 {
		return nil, fmt.Errorf("driver: workload %q: negative host gap", name)
	}
	// One noiseless pass builds a single iteration's period waveform and
	// activity vector (the simulator is deterministic, so one pass
	// suffices). The run is then represented as that period tiled — the
	// stretch loop that used to materialize iters × segments is gone. The
	// result struct and the period storage come from the pool; error
	// returns may drop them (releasing is optional).
	out, period := newRunResult()
	iterTime := hostGapSeconds
	var iterActs counters.Vector
	var scopeJ power.Breakdown // GPU-domain energy of one iteration, by scope
	o := d.obs
	type kernelSlice struct {
		name string
		dur  float64
	}
	var kslices []kernelSlice
	for _, k := range ks {
		cl, err := d.launch(k)
		if err != nil {
			return nil, fmt.Errorf("driver: workload %q: %w", name, err)
		}
		iterTime += cl.time
		for _, seg := range cl.trace {
			period = period.Append(seg.Duration, seg.Watts)
		}
		iterActs.Add(&cl.acts)
		scopeJ = scopeJ.Add(cl.scopeJ)
		if o != nil {
			kslices = append(kslices, kernelSlice{name: k.Name, dur: cl.time})
		}
	}
	iters := 1
	if iterTime < minDuration {
		iters = int(minDuration/iterTime) + 1
	}
	if hostGapSeconds > 0 {
		hostWatts := d.pm.SystemWatts(d.clk, gpu.Events{}, 1) // idle GPU, busy host
		period = period.Append(hostGapSeconds, hostWatts)
		// During the gap the GPU sits at static power in both domains.
		scopeJ = scopeJ.Add(d.pm.IdleScopeWatts(d.clk).Scale(hostGapSeconds))
	}

	out.Workload = name
	out.Iterations = iters
	out.Time = iterTime * float64(iters)
	if iterTime > 0 {
		out.Power = scopeJ.Scale(1 / iterTime)
	}
	out.Trace = meter.Tile(period, iters)
	iterActs.Scale(float64(iters))
	out.Activities = iterActs
	if d.profiling {
		out.Counters = d.set.Collect(&out.Activities, d.rng)
	}
	// Lay the run out on the virtual timeline: the whole-run parent slice
	// first (so trace viewers nest the children under it), then the first
	// iteration's kernels, the host gap, and one slice standing in for the
	// remaining tiled iterations. The cursor ends exactly out.Time later.
	var runStart int64
	if o != nil {
		runStart = o.track.Now()
		o.track.SliceAt(name, runStart, out.Time,
			obs.Arg{Key: "pair", Value: d.clk.Pair().String()},
			obs.Arg{Key: "iterations", Value: strconv.Itoa(iters)})
		for _, ksl := range kslices {
			o.track.Slice(ksl.name, ksl.dur)
		}
		if hostGapSeconds > 0 {
			o.track.Slice("host gap", hostGapSeconds)
		}
		if iters > 1 {
			o.track.Slice(name+" (remaining iterations)", iterTime*float64(iters-1))
		}
	}
	if f := d.fanout; f != nil {
		// Stream one scope-tagged reading per sampling window: the run's
		// deterministic per-scope average, modulated by how far the noisy
		// wall sample deviates from the trace's true average. The closure
		// only observes the samples the meter already produced, so
		// measurements and artifacts stay byte-identical either way.
		wallAvg := period.TrueAvgWatts()
		dev, avg := d.spec.Name, out.Power
		d.inst.Fanout = func(_ int, watts float64, _ bool) {
			bd := avg
			if wallAvg > 0 {
				bd = avg.Scale(watts / wallAvg)
			}
			f.SamplePower(dev, bd)
		}
		defer func() { d.inst.Fanout = nil }()
	}
	m, err := d.inst.MeasurePeriodic(out.Trace, d.rng)
	if err != nil {
		return nil, fmt.Errorf("driver: workload %q: %w", name, err)
	}
	out.Measurement = m
	if o != nil {
		periodUS := int64(math.Round(d.inst.SamplePeriod * 1e6))
		for i, w := range m.Samples {
			if m.Valid != nil && !m.Valid[i] {
				o.track.SampleAt("wall power (W)", runStart+int64(i)*periodUS, w,
					obs.NumArg{Key: "interpolated", Value: 1})
			} else {
				o.track.SampleAt("wall power (W)", runStart+int64(i)*periodUS, w)
			}
		}
		o.track.Instant("measured",
			obs.Arg{Key: "avg_watts", Value: strconv.FormatFloat(m.AvgWatts, 'f', 2, 64)},
			obs.Arg{Key: "confidence", Value: strconv.FormatFloat(m.Confidence(), 'f', 3, 64)})
	}
	return out, nil
}
