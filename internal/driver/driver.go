// Package driver is the CUDA-driver/runtime substitute: it boots a simulated
// device from a VBIOS image, exposes a kernel-launch API, meters wall power
// during runs, and optionally collects the per-architecture performance
// counters (the CUDA-profiler role).
//
// The clock-control path is deliberately faithful to the paper's method
// (Section II-B): SetClocks does not poke the simulator directly — it
// patches the boot performance level inside the device's VBIOS image,
// fixes the checksum, and reboots the device from the patched image.
package driver

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"gpuperf/internal/arch"
	"gpuperf/internal/bios"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/gpu"
	"gpuperf/internal/meter"
	"gpuperf/internal/power"
)

// Device is one booted simulated GPU.
type Device struct {
	spec *arch.Spec
	img  []byte // backing VBIOS image (owned by the device)
	clk  *clock.State
	sim  *gpu.Sim
	pm   *power.Model
	set  *counters.Set
	inst *meter.Meter

	profiling bool
	rng       *rand.Rand
}

// Open boots a device from a VBIOS image. The image's board name must match
// one of the known boards (Table I), and the image's frequency table must
// agree with the board spec — a mismatch means a corrupt or mispatched
// image and fails the boot.
func Open(img []byte) (*Device, error) {
	decoded, err := bios.Parse(img)
	if err != nil {
		return nil, fmt.Errorf("driver: boot failed: %w", err)
	}
	spec := arch.BoardByName(decoded.BoardName)
	if spec == nil {
		return nil, fmt.Errorf("driver: unknown board %q", decoded.BoardName)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	for _, l := range arch.Levels() {
		e := decoded.Table[l]
		if e.CoreMHz != float64(int(spec.CoreFreqMHz(l)+0.5)) || e.MemMHz != float64(int(spec.MemFreqMHz(l)+0.5)) { //gpulint:ignore unitsafety -- VBIOS tables store integral MHz; both sides are exact integers
			return nil, fmt.Errorf("driver: VBIOS clock table disagrees with %s spec at level %s", spec.Name, l)
		}
	}

	clk := clock.NewState(spec)
	if err := clk.SetPair(decoded.Boot); err != nil {
		return nil, fmt.Errorf("driver: boot clocks: %w", err)
	}

	own := append([]byte(nil), img...)
	h := fnv.New64a()
	_, _ = h.Write([]byte(spec.Name)) // fnv: hash.Hash.Write never errors
	return &Device{
		spec: spec,
		img:  own,
		clk:  clk,
		sim:  gpu.New(spec, clk),
		pm:   power.NewModel(spec),
		set:  counters.ForGeneration(spec.Generation),
		inst: meter.New(),
		rng:  rand.New(rand.NewSource(int64(h.Sum64()))),
	}, nil
}

// OpenBoard builds a pristine VBIOS image for a named board and boots it.
func OpenBoard(name string) (*Device, error) {
	spec := arch.BoardByName(name)
	if spec == nil {
		return nil, fmt.Errorf("driver: unknown board %q", name)
	}
	return Open(bios.Build(spec))
}

// OpenSpec boots a device for an arbitrary (possibly modified) board spec —
// the hook the ablation experiments use to boot, e.g., a Kepler board with
// a flattened voltage curve or a Fermi board with disabled caches. The spec
// must still validate.
func OpenSpec(spec *arch.Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	decoded, err := bios.Parse(bios.Build(spec))
	if err != nil {
		return nil, fmt.Errorf("driver: boot failed: %w", err)
	}
	clk := clock.NewState(spec)
	if err := clk.SetPair(decoded.Boot); err != nil {
		return nil, fmt.Errorf("driver: boot clocks: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(spec.Name)) // fnv: hash.Hash.Write never errors
	return &Device{
		spec: spec,
		img:  bios.Build(spec),
		clk:  clk,
		sim:  gpu.New(spec, clk),
		pm:   power.NewModel(spec),
		set:  counters.ForGeneration(spec.Generation),
		inst: meter.New(),
		rng:  rand.New(rand.NewSource(int64(h.Sum64()))),
	}, nil
}

// Spec returns the booted board's description.
func (d *Device) Spec() *arch.Spec { return d.spec }

// Clocks returns the current frequency pair.
func (d *Device) Clocks() clock.Pair { return d.clk.Pair() }

// PowerModel returns the device's hardware power model (for harnesses that
// need the ground truth, e.g. calibration benches).
func (d *Device) PowerModel() *power.Model { return d.pm }

// CounterSet returns the architecture's performance-counter set.
func (d *Device) CounterSet() *counters.Set { return d.set }

// Meter returns the wall-power instrument attached to the machine.
func (d *Device) Meter() *meter.Meter { return d.inst }

// SetClocks reprograms the device to a new frequency pair by patching the
// VBIOS image and rebooting, as the paper does. Invalid pairs (Table III)
// are rejected and leave the device untouched.
func (d *Device) SetClocks(p clock.Pair) error {
	if err := bios.PatchBootPair(d.img, p); err != nil {
		return fmt.Errorf("driver: %w", err)
	}
	decoded, err := bios.Parse(d.img)
	if err != nil {
		return fmt.Errorf("driver: reboot failed: %w", err)
	}
	return d.clk.SetPair(decoded.Boot)
}

// Seed reseeds the device's noise sources (profiler jitter, meter noise).
func (d *Device) Seed(seed int64) { d.rng = rand.New(rand.NewSource(seed)) }

// EnableProfiler turns on counter collection for subsequent launches,
// emulating runs under the CUDA Profiler.
func (d *Device) EnableProfiler() { d.profiling = true }

// DisableProfiler turns counter collection off.
func (d *Device) DisableProfiler() { d.profiling = false }

// LaunchResult reports one kernel launch.
type LaunchResult struct {
	Kernel     string
	Time       float64     // seconds
	Trace      meter.Trace // wall-power waveform during the launch
	Activities counters.Vector
	Counters   []float64 // profiler counters; nil unless profiling
}

// Analyze returns the per-resource bottleneck breakdown of a kernel at the
// current clocks (see gpu.Sim.Analyze).
func (d *Device) Analyze(k *gpu.KernelDesc) (*gpu.KernelAnalysis, error) {
	return d.sim.Analyze(k)
}

// MicroSim runs the warp-level validation simulator on a single-phase
// kernel at the current clocks (see gpu.MicroSim).
func (d *Device) MicroSim(k *gpu.KernelDesc) (*gpu.MicroResult, error) {
	return gpu.NewMicro(d.sim).RunKernel(k)
}

// Launch runs one kernel at the current clocks.
func (d *Device) Launch(k *gpu.KernelDesc) (*LaunchResult, error) {
	res, err := d.sim.RunKernel(k)
	if err != nil {
		return nil, err
	}
	out := &LaunchResult{Kernel: k.Name, Time: res.Time, Activities: res.Activities}
	for _, ph := range res.Phases {
		// Apply the phase's data-dependent switching activity to the
		// energy accounting; the profiler's counters never see it.
		ev := ph.Events
		ev.Scale(ph.EnergyScale)
		w := d.pm.SystemWatts(d.clk, ev, ph.Duration)
		out.Trace = out.Trace.Append(ph.Duration, w)
	}
	if d.profiling {
		out.Counters = d.set.Collect(&res.Activities, d.rng)
	}
	return out, nil
}

// RunResult reports a metered, possibly repeated, workload run.
type RunResult struct {
	Workload    string
	Iterations  int     // kernel-sequence repetitions
	Time        float64 // total simulated run time, seconds
	Trace       meter.Trace
	Activities  counters.Vector // accumulated over all iterations
	Counters    []float64       // profiler counters over the whole run; nil unless profiling
	Measurement *meter.Measurement
}

// TimePerIteration returns the execution time of one kernel-sequence
// iteration — the paper's per-benchmark execution time.
func (r *RunResult) TimePerIteration() float64 {
	return r.Time / float64(r.Iterations)
}

// EnergyPerIteration returns measured wall energy divided by iterations.
// Its reciprocal is the paper's "power efficiency".
func (r *RunResult) EnergyPerIteration() float64 {
	// The meter only observes complete 50 ms windows; scale the sampled
	// energy to the full run so iteration counts divide out cleanly.
	obs := r.Measurement.Duration
	if obs <= 0 {
		return 0
	}
	return r.Measurement.EnergyJoules * (r.Time / obs) / float64(r.Iterations)
}

// RunMetered executes the kernel sequence repeatedly until the run covers
// at least minDuration of simulated time (the paper stretches sub-500 ms
// benchmarks the same way), then meters it.
//
// hostGapSeconds is the host-side time per iteration (argument marshalling,
// cudaMemcpy, driver overhead) during which the GPU sits at static power
// and the CPU works. Real benchmarks spend a benchmark-specific fraction of
// their runtime there, and GPU performance counters cannot see it — a key
// reason the paper's counter-only execution-time model carries 33–68%
// errors.
func (d *Device) RunMetered(name string, ks []*gpu.KernelDesc, hostGapSeconds, minDuration float64) (*RunResult, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("driver: workload %q has no kernels", name)
	}
	if hostGapSeconds < 0 {
		return nil, fmt.Errorf("driver: workload %q: negative host gap", name)
	}
	// One pass to learn the iteration time and collect per-iteration
	// results (the simulator is deterministic, so one pass suffices).
	launches := make([]*LaunchResult, 0, len(ks))
	iterTime := hostGapSeconds
	for _, k := range ks {
		lr, err := d.Launch(k)
		if err != nil {
			return nil, fmt.Errorf("driver: workload %q: %w", name, err)
		}
		launches = append(launches, lr)
		iterTime += lr.Time
	}
	iters := 1
	if iterTime < minDuration {
		iters = int(minDuration/iterTime) + 1
	}

	hostWatts := d.pm.SystemWatts(d.clk, gpu.Events{}, 1) // idle GPU, busy host

	out := &RunResult{Workload: name, Iterations: iters}
	var acts counters.Vector
	for it := 0; it < iters; it++ {
		for _, lr := range launches {
			out.Time += lr.Time
			for _, seg := range lr.Trace {
				out.Trace = out.Trace.Append(seg.Duration, seg.Watts)
			}
			acts.Add(&lr.Activities)
		}
		if hostGapSeconds > 0 {
			out.Time += hostGapSeconds
			out.Trace = out.Trace.Append(hostGapSeconds, hostWatts)
		}
	}
	out.Activities = acts
	if d.profiling {
		out.Counters = d.set.Collect(&acts, d.rng)
	}
	m, err := d.inst.Measure(out.Trace, d.rng)
	if err != nil {
		return nil, fmt.Errorf("driver: workload %q: %w", name, err)
	}
	out.Measurement = m
	return out, nil
}
