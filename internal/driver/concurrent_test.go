package driver

import (
	"math"
	"testing"

	"gpuperf/internal/gpu"
)

func smallKernel(name string, blocks int) *gpu.KernelDesc {
	k := testKernel(blocks)
	k.Name = name
	return k
}

// alukernel is compute-bound with negligible memory traffic, so its time
// scales cleanly with the SM count (no shared-L2 artifacts).
func aluKernel(name string, blocks int) *gpu.KernelDesc {
	return &gpu.KernelDesc{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: 256,
		RegsPerThread:   20,
		Phases: []gpu.PhaseDesc{{
			Name: "p", WarpInstsPerWarp: 30000,
			FracALU: 0.85, FracMem: 0.004, FracBranch: 0.04,
			TxnPerMemInst: 1, L1Hit: 0.8, L2Hit: 0.8,
			WorkingSetBytes: 4 << 10, MLP: 4, IssueEff: 0.9,
		}},
	}
}

func TestConcurrentOverlapBeatsSerial(t *testing.T) {
	// Concurrent kernels pay off when each kernel underutilizes the
	// machine (the concurrentKernels SDK sample's point): two kernels
	// that each occupy a couple of SMs overlap almost perfectly.
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	a := aluKernel("a", 16) // ~2 SMs' worth of blocks
	b := aluKernel("b", 16)

	la, err := d.Launch(a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := d.Launch(b)
	if err != nil {
		t.Fatal(err)
	}
	serial := la.Time + lb.Time

	conc, err := d.LaunchConcurrent([]*gpu.KernelDesc{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if conc.Time >= serial {
		t.Errorf("concurrent batch %.4g s not faster than serial %.4g s", conc.Time, serial)
	}
	// Each kernel on half the machine cannot beat its full-machine time.
	for i, l := range conc.Launches {
		full := la.Time
		if i == 1 {
			full = lb.Time
		}
		if l.Time < full-1e-12 {
			t.Errorf("kernel %s on %d SMs faster than on the full machine", l.Kernel, l.SMs)
		}
	}
}

func TestConcurrentPartitionsAllSMs(t *testing.T) {
	d, err := OpenBoard("GTX 480") // 15 SMs, uneven split
	if err != nil {
		t.Fatal(err)
	}
	ks := []*gpu.KernelDesc{smallKernel("a", 30), smallKernel("b", 30), smallKernel("c", 30), smallKernel("d", 30)}
	conc, err := d.LaunchConcurrent(ks)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range conc.Launches {
		if l.SMs < 1 {
			t.Errorf("kernel %s got %d SMs", l.Kernel, l.SMs)
		}
		total += l.SMs
	}
	if total != d.Spec().SMCount {
		t.Errorf("partitions cover %d SMs, want %d", total, d.Spec().SMCount)
	}
}

func TestConcurrentTraceConsistency(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	ks := []*gpu.KernelDesc{smallKernel("a", 64), smallKernel("b", 256)}
	conc, err := d.LaunchConcurrent(ks)
	if err != nil {
		t.Fatal(err)
	}
	if got := conc.Trace.TotalDuration(); math.Abs(got-conc.Time) > 1e-9*conc.Time {
		t.Errorf("trace duration %.6g != batch time %.6g", got, conc.Time)
	}
	// Power while both kernels run must exceed power when only the long
	// one remains.
	first, last := conc.Trace[0].Watts, conc.Trace[len(conc.Trace)-1].Watts
	if first <= last {
		t.Errorf("overlapped power %.1f W not above tail power %.1f W", first, last)
	}
}

func TestConcurrentRejectsTesla(t *testing.T) {
	d, err := OpenBoard("GTX 285")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LaunchConcurrent([]*gpu.KernelDesc{smallKernel("a", 8), smallKernel("b", 8)}); err == nil {
		t.Error("Tesla accepted concurrent kernels")
	}
}

func TestConcurrentEdgeCases(t *testing.T) {
	d, err := OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LaunchConcurrent(nil); err == nil {
		t.Error("empty batch accepted")
	}
	many := make([]*gpu.KernelDesc, d.Spec().SMCount+1)
	for i := range many {
		many[i] = smallKernel("k", 8)
	}
	if _, err := d.LaunchConcurrent(many); err == nil {
		t.Error("more kernels than SMs accepted")
	}
	// Single-kernel batch degenerates to Launch.
	single, err := d.LaunchConcurrent([]*gpu.KernelDesc{smallKernel("solo", 64)})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := d.Launch(smallKernel("solo", 64))
	if err != nil {
		t.Fatal(err)
	}
	if single.Time != direct.Time {
		t.Errorf("single-kernel batch time %.6g != direct launch %.6g", single.Time, direct.Time)
	}
	if single.Launches[0].SMs != d.Spec().SMCount {
		t.Error("single kernel should own the whole machine")
	}
}
