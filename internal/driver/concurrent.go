package driver

import (
	"fmt"
	"sort"

	"gpuperf/internal/counters"
	"gpuperf/internal/gpu"
	"gpuperf/internal/meter"
	"gpuperf/internal/power"
)

// Concurrent kernel execution (CUDA streams). Fermi introduced concurrent
// kernels — the CUDA SDK's concurrentKernels sample in Table II showcases
// it — and the simulator models the common spatial-sharing case: the SMs
// are partitioned among the resident kernels, each kernel runs on its
// share, and the wall-power trace is the overlay of their activity over a
// single static/host baseline.

// ConcurrentLaunch reports one kernel of a concurrent batch.
type ConcurrentLaunch struct {
	Kernel string
	SMs    int     // SMs assigned to this kernel
	Time   float64 // completion time of this kernel, seconds
}

// ConcurrentResult reports a LaunchConcurrent batch.
type ConcurrentResult struct {
	Launches   []ConcurrentLaunch
	Time       float64 // batch completion (max over kernels)
	Trace      meter.Trace
	Activities counters.Vector
}

// LaunchConcurrent runs the kernels simultaneously, partitioning the SMs
// evenly (Tesla-generation devices reject it: concurrent kernels arrived
// with Fermi). The power trace overlays the kernels' activity; counters
// accumulate across all of them, as the real profiler reports.
func (d *Device) LaunchConcurrent(ks []*gpu.KernelDesc) (*ConcurrentResult, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("driver: empty concurrent batch")
	}
	if d.spec.L1PerSM == 0 {
		return nil, fmt.Errorf("driver: %s (%s) does not support concurrent kernels",
			d.spec.Name, d.spec.Generation)
	}
	if len(ks) > d.spec.SMCount {
		return nil, fmt.Errorf("driver: %d kernels exceed %d SMs", len(ks), d.spec.SMCount)
	}
	if len(ks) == 1 {
		lr, err := d.Launch(ks[0])
		if err != nil {
			return nil, err
		}
		return &ConcurrentResult{
			Launches:   []ConcurrentLaunch{{Kernel: lr.Kernel, SMs: d.spec.SMCount, Time: lr.Time}},
			Time:       lr.Time,
			Trace:      lr.Trace,
			Activities: lr.Activities,
		}, nil
	}

	// Partition the SMs evenly; remainders go to the first kernels.
	share := d.spec.SMCount / len(ks)
	extra := d.spec.SMCount % len(ks)

	type piece struct {
		start, end float64
		watts      float64 // GPU dynamic contribution of this phase
	}
	var pieces []piece
	var cuts []float64
	out := &ConcurrentResult{}
	var acts counters.Vector

	for i, k := range ks {
		sms := share
		if i < extra {
			sms++
		}
		sub := *d.spec
		sub.SMCount = sms
		sim := gpu.New(&sub, d.clk)
		res, err := sim.RunKernel(k)
		if err != nil {
			return nil, fmt.Errorf("driver: concurrent kernel %q: %w", k.Name, err)
		}
		out.Launches = append(out.Launches, ConcurrentLaunch{Kernel: k.Name, SMs: sms, Time: res.Time})
		if res.Time > out.Time {
			out.Time = res.Time
		}
		acts.Add(&res.Activities)

		at := 0.0
		for _, ph := range res.Phases {
			ev := ph.Events
			ev.Scale(ph.EnergyScale)
			pieces = append(pieces, piece{
				start: at,
				end:   at + ph.Duration,
				watts: d.pm.GPUDynamicWatts(d.clk, ev, ph.Duration),
			})
			cuts = append(cuts, at, at+ph.Duration)
			at += ph.Duration
		}
		gpu.ReleaseResult(res)
	}
	out.Activities = acts

	// Overlay: between consecutive cuts the active set is constant.
	sort.Float64s(cuts)
	baseline := d.pm.SystemIdleWatts + d.pm.CPUActiveWatts + d.pm.GPUStaticWatts(d.clk)
	prev := 0.0
	for _, c := range cuts {
		if c <= prev {
			continue
		}
		mid := (prev + c) / 2
		dc := baseline
		for _, p := range pieces {
			if p.start <= mid && mid < p.end {
				dc += p.watts
			}
		}
		out.Trace = out.Trace.Append(c-prev, power.WallFromDC(dc))
		prev = c
	}
	return out, nil
}
