package driver

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/meter"
)

// The launch cache memoizes the *noiseless* outcome of a kernel launch:
// the simulated execution time, the per-launch power waveform, and the
// base activity vector. All of these are pure functions of (board spec,
// programmed clock pair, kernel description) — the interval simulator and
// the hardware power model draw no randomness. Everything stochastic
// (profiler counter jitter, meter sampling noise) is applied *after* a
// cache lookup, from the device's own rng, so a run consumes exactly the
// same noise stream whether its launches hit or miss the cache and the
// results are byte-identical either way.

// launchKey identifies one cacheable launch. The profiler flag is part of
// the key even though the cached payload is noise-free: keeping profiled
// and unprofiled populations separate makes the cache's behaviour easy to
// audit per ISSUE of record, at the cost of at most doubling entries.
type launchKey struct {
	spec      uint64 // board-spec fingerprint (full contents, not the name)
	pair      clock.Pair
	kernel    uint64 // gpu.KernelDesc fingerprint
	profiling bool
}

// cachedLaunch is the immutable noiseless payload. The trace must never be
// handed to callers directly — meter.Trace.Append mutates its last segment
// in place, so exposure requires a copy (see Device.Launch).
type cachedLaunch struct {
	time  float64
	trace meter.Trace
	acts  counters.Vector
}

// DefaultSharedLaunchCacheEntries bounds the process-wide cache. A full
// reproduction touches a few thousand distinct (spec, pair, kernel)
// combinations; entries are a few hundred bytes each.
const DefaultSharedLaunchCacheEntries = 16384

// LaunchCache is a concurrency-safe, size-bounded LRU of noiseless launch
// results, shareable between devices and goroutines.
type LaunchCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[launchKey]*list.Element
}

type cacheEntry struct {
	key launchKey
	val *cachedLaunch
}

// NewLaunchCache returns an empty cache holding at most capacity entries.
func NewLaunchCache(capacity int) *LaunchCache {
	if capacity < 1 {
		capacity = 1
	}
	return &LaunchCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[launchKey]*list.Element),
	}
}

// Len reports the current number of cached launches.
func (c *LaunchCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *LaunchCache) get(k launchKey) (*cachedLaunch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *LaunchCache) put(k launchKey, v *cachedLaunch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	c.items[k] = c.order.PushFront(&cacheEntry{key: k, val: v})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Process-wide cache shared by every device, plus a global enable switch.
// Both are read on the launch path and written only by setup code
// (cmd flags, tests), hence the atomics.
var (
	launchCachingOff atomic.Bool // zero value: caching enabled
	sharedCache      atomic.Pointer[LaunchCache]
)

func init() {
	sharedCache.Store(NewLaunchCache(DefaultSharedLaunchCacheEntries))
}

// SetLaunchCachingEnabled globally enables or disables launch memoization
// for devices opened afterwards (the uncached reference mode of cmd/paper
// -nocache). Cached and uncached runs are byte-identical by construction;
// the switch exists so that claim stays checkable.
func SetLaunchCachingEnabled(on bool) { launchCachingOff.Store(!on) }

// LaunchCachingEnabled reports the global switch.
func LaunchCachingEnabled() bool { return !launchCachingOff.Load() }

// PushLaunchCachingEnabled flips the global caching switch and returns a
// restore function that puts the previous state back — the save/restore
// idiom tests must use so a failing test cannot leak a flipped switch
// into the rest of the suite:
//
//	defer driver.PushLaunchCachingEnabled(false)()
func PushLaunchCachingEnabled(on bool) (restore func()) {
	prev := !launchCachingOff.Swap(!on)
	return func() { launchCachingOff.Store(!prev) }
}

// SetSharedLaunchCache replaces the process-wide cache (nil keeps devices
// on their per-device caches only).
func SetSharedLaunchCache(c *LaunchCache) { sharedCache.Store(c) }

// PushSharedLaunchCache swaps in a replacement process-wide cache (nil to
// detach) and returns a restore function for the previous one — the
// save/restore idiom for tests that need an isolated or absent shared
// cache.
func PushSharedLaunchCache(c *LaunchCache) (restore func()) {
	prev := sharedCache.Swap(c)
	return func() { sharedCache.Store(prev) }
}

// SharedLaunchCache returns the process-wide cache, or nil when unset.
func SharedLaunchCache() *LaunchCache { return sharedCache.Load() }

// DisableLaunchCache detaches this device from both its per-device cache
// and the shared cache; every subsequent launch re-runs the simulator.
// Determinism tests use this as the uncached reference.
func (d *Device) DisableLaunchCache() {
	d.cache = nil
	d.useShared = false
}

// specFingerprint digests the complete spec contents. Hashing the full
// value rather than the board name matters: the ablation experiments boot
// modified specs (flattened voltage curves, disabled caches) that keep the
// original name, and those must never share cache entries with the
// unmodified board.
//gpulint:deterministic
func specFingerprint(spec *arch.Spec) uint64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%+v", *spec) // fnv: hash.Hash.Write never errors
	return h.Sum64()
}
