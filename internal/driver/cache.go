package driver

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync"
	"sync/atomic"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/meter"
	"gpuperf/internal/power"
)

// The launch cache memoizes the *noiseless* outcome of a kernel launch:
// the simulated execution time, the per-launch power waveform, and the
// base activity vector. All of these are pure functions of (board spec,
// programmed clock pair, kernel description) — the interval simulator and
// the hardware power model draw no randomness. Everything stochastic
// (profiler counter jitter, meter sampling noise) is applied *after* a
// cache lookup, from the device's own rng, so a run consumes exactly the
// same noise stream whether its launches hit or miss the cache and the
// results are byte-identical either way.

// launchKey identifies one cacheable launch. The profiler flag is part of
// the key even though the cached payload is noise-free: keeping profiled
// and unprofiled populations separate makes the cache's behaviour easy to
// audit per ISSUE of record, at the cost of at most doubling entries.
type launchKey struct {
	spec      uint64 // board-spec fingerprint (full contents, not the name)
	pair      clock.Pair
	kernel    uint64 // gpu.KernelDesc fingerprint
	profiling bool
}

// cachedLaunch is the immutable noiseless payload. The trace must never be
// handed to callers directly — meter.Trace.Append mutates its last segment
// in place, so exposure requires a copy (see Device.Launch).
type cachedLaunch struct {
	time  float64
	trace meter.Trace
	acts  counters.Vector
	// scopeJ is the launch's GPU-domain energy split by power scope
	// (core vs memory, joules) — the noiseless per-scope integral the
	// live telemetry fan-out scales into watts. Pure function of the
	// same inputs as the trace, so cache hits and misses agree.
	scopeJ power.Breakdown
}

// DefaultSharedLaunchCacheEntries bounds the process-wide cache. A full
// reproduction touches a few thousand distinct (spec, pair, kernel)
// combinations; entries are a few hundred bytes each.
const DefaultSharedLaunchCacheEntries = 16384

// defaultLaunchCacheShards is the shard count of the process-wide cache.
// Every worker of a parallel sweep hits the shared cache on every launch,
// so a single mutex serializes the whole fleet; sixteen shards keep the
// probability of two workers colliding on one lock low while the per-shard
// LRU stays a plain list+map. Must be a power of two.
const defaultLaunchCacheShards = 16

// LaunchCache is a concurrency-safe, size-bounded LRU of noiseless launch
// results, shareable between devices and goroutines. The key space is
// partitioned into independently locked shards; recency is tracked per
// shard, so eviction approximates LRU over the whole cache (exact LRU
// within a shard). The capacity bound is exact: shard capacities sum to at
// most the requested total.
type LaunchCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one independently locked LRU partition.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[launchKey]*list.Element
}

type cacheEntry struct {
	key launchKey
	val *cachedLaunch
}

// NewLaunchCache returns an empty cache holding at most capacity entries.
func NewLaunchCache(capacity int) *LaunchCache {
	return newLaunchCache(capacity, defaultLaunchCacheShards)
}

// newLaunchCache builds a cache with an explicit shard count (the
// contention microbenchmark compares shard counts through this). The count
// is rounded down to a power of two and capped so no shard's capacity
// rounds to zero.
func newLaunchCache(capacity, shards int) *LaunchCache {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	// Largest power of two ≤ shards, so the index mask works.
	shards = 1 << (bits.Len(uint(shards)) - 1)
	c := &LaunchCache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:   capacity / shards,
			order: list.New(),
			items: make(map[launchKey]*list.Element),
		}
	}
	return c
}

// shardIndex spreads a key across shards. The spec and kernel fields are
// already FNV-1a digests, but a sweep holds spec constant and steps pairs
// in a tiny enum, so the low bits need remixing (a splitmix64-style
// finalizer) before masking.
func (c *LaunchCache) shardIndex(k launchKey) uint64 {
	h := k.spec ^ bits.RotateLeft64(k.kernel, 29)
	h ^= uint64(k.pair.Core)<<8 | uint64(k.pair.Mem)<<4
	if k.profiling {
		h = ^h
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & c.mask
}

// Len reports the current number of cached launches.
func (c *LaunchCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

func (c *LaunchCache) get(k launchKey) (*cachedLaunch, bool) {
	s := &c.shards[c.shardIndex(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(k)
}

func (c *LaunchCache) put(k launchKey, v *cachedLaunch) {
	s := &c.shards[c.shardIndex(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(k, v)
}

// getBatch looks up keys[i] for every i with out[i] == nil, filling out[i]
// on a hit, and reports the number of hits. Each shard's lock is taken at
// most once regardless of how many keys land on it — the point of the
// batched sweep path.
func (c *LaunchCache) getBatch(keys []launchKey, out []*cachedLaunch) int {
	hits := 0
	for si := range c.shards {
		s := &c.shards[si]
		locked := false
		for i, k := range keys {
			if out[i] != nil || c.shardIndex(k) != uint64(si) {
				continue
			}
			if !locked {
				s.mu.Lock()
				locked = true
			}
			if v, ok := s.getLocked(k); ok {
				out[i] = v
				hits++
			}
		}
		if locked {
			s.mu.Unlock()
		}
	}
	return hits
}

// putBatch inserts all entries, taking each shard's lock at most once.
func (c *LaunchCache) putBatch(entries []cacheEntry) {
	for si := range c.shards {
		s := &c.shards[si]
		locked := false
		for _, e := range entries {
			if c.shardIndex(e.key) != uint64(si) {
				continue
			}
			if !locked {
				s.mu.Lock()
				locked = true
			}
			s.putLocked(e.key, e.val)
		}
		if locked {
			s.mu.Unlock()
		}
	}
}

func (s *cacheShard) getLocked(k launchKey) (*cachedLaunch, bool) {
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (s *cacheShard) putLocked(k launchKey, v *cachedLaunch) {
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	s.items[k] = s.order.PushFront(&cacheEntry{key: k, val: v})
	for len(s.items) > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
}

// Process-wide cache shared by every device, plus a global enable switch.
// Both are read on the launch path and written only by setup code
// (cmd flags, tests), hence the atomics.
var (
	launchCachingOff atomic.Bool // zero value: caching enabled
	sharedCache      atomic.Pointer[LaunchCache]
)

func init() {
	sharedCache.Store(NewLaunchCache(DefaultSharedLaunchCacheEntries))
}

// SetLaunchCachingEnabled globally enables or disables launch memoization
// for devices opened afterwards (the uncached reference mode of cmd/paper
// -nocache). Cached and uncached runs are byte-identical by construction;
// the switch exists so that claim stays checkable.
func SetLaunchCachingEnabled(on bool) { launchCachingOff.Store(!on) }

// LaunchCachingEnabled reports the global switch.
func LaunchCachingEnabled() bool { return !launchCachingOff.Load() }

// PushLaunchCachingEnabled flips the global caching switch and returns a
// restore function that puts the previous state back — the save/restore
// idiom tests must use so a failing test cannot leak a flipped switch
// into the rest of the suite:
//
//	defer driver.PushLaunchCachingEnabled(false)()
func PushLaunchCachingEnabled(on bool) (restore func()) {
	prev := !launchCachingOff.Swap(!on)
	return func() { launchCachingOff.Store(!prev) }
}

// SetSharedLaunchCache replaces the process-wide cache (nil keeps devices
// on their per-device caches only).
func SetSharedLaunchCache(c *LaunchCache) { sharedCache.Store(c) }

// PushSharedLaunchCache swaps in a replacement process-wide cache (nil to
// detach) and returns a restore function for the previous one — the
// save/restore idiom for tests that need an isolated or absent shared
// cache.
func PushSharedLaunchCache(c *LaunchCache) (restore func()) {
	prev := sharedCache.Swap(c)
	return func() { sharedCache.Store(prev) }
}

// SharedLaunchCache returns the process-wide cache, or nil when unset.
func SharedLaunchCache() *LaunchCache { return sharedCache.Load() }

// DisableLaunchCache detaches this device from both its per-device cache
// and the shared cache; every subsequent launch re-runs the simulator.
// Determinism tests use this as the uncached reference.
func (d *Device) DisableLaunchCache() {
	d.cache = nil
	d.useShared = false
}

// specFingerprint digests the complete spec contents. Hashing the full
// value rather than the board name matters: the ablation experiments boot
// modified specs (flattened voltage curves, disabled caches) that keep the
// original name, and those must never share cache entries with the
// unmodified board.
//
//gpulint:deterministic
func specFingerprint(spec *arch.Spec) uint64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%+v", *spec) // fnv: hash.Hash.Write never errors
	return h.Sum64()
}
