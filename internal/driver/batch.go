package driver

import (
	"fmt"

	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

// PrecomputePairs fills the launch caches for every (kernel, pair)
// combination in one batched pass, kernel-major: each kernel is compiled
// once (gpu.Sim.Compile hoists everything frequency-invariant — event
// tallies, derated hit fractions, replay factors, wave geometry) and the
// compiled form is evaluated at all missing pairs, instead of re-deriving
// the invariants per pair as per-launch simulation does. A sweep calls
// this once per (board, benchmark) before its pair loop, so the loop's
// launches all hit the per-device map.
//
// The cached payloads are bit-identical to what per-launch simulation
// would have stored: RunPairs reproduces Sim.RunKernel exactly (a property
// test in internal/gpu pins this), and the power waveform is computed by
// the same code on a scratch clock programmed to each pair. The device's
// own clock, noise stream and fault state are never touched — precompute
// is invisible to everything but the cache and the miss/hit counters.
//
// Entries are inserted into the per-device map directly and into the
// shared LRU with one batched insertion (one lock acquisition per shard)
// instead of one per launch. Returns the number of entries newly
// simulated; zero when launch caching is disabled on this device, in which
// case nothing happens at all.
func (d *Device) PrecomputePairs(ks []*gpu.KernelDesc, pairs []clock.Pair) (int, error) {
	if d.cache == nil && !d.useShared {
		return 0, nil
	}
	if len(ks) == 0 || len(pairs) == 0 {
		return 0, nil
	}
	var shared *LaunchCache
	if d.useShared {
		shared = SharedLaunchCache()
	}
	o := d.obs
	scratch := clock.NewState(d.spec)
	simulated := 0
	var batch []cacheEntry // new entries destined for the shared LRU
	keys := make([]launchKey, len(pairs))
	found := make([]*cachedLaunch, len(pairs))
	var missing []clock.Pair
	var missingIdx []int
	for _, k := range ks {
		kfp := k.Fingerprint()
		for i, p := range pairs {
			keys[i] = launchKey{spec: d.specFP, pair: p, kernel: kfp, profiling: d.profiling}
			found[i] = d.cache[keys[i]] // nil map lookups are fine
		}
		if shared != nil {
			sharedHits := shared.getBatch(keys, found)
			if o != nil {
				for n := 0; n < sharedHits; n++ {
					o.hitsShared.Inc()
				}
			}
		}
		missing, missingIdx = missing[:0], missingIdx[:0]
		for i, p := range pairs {
			if found[i] == nil {
				missing = append(missing, p)
				missingIdx = append(missingIdx, i)
			}
		}
		if len(missing) > 0 {
			ck, err := d.sim.Compile(k)
			if err != nil {
				return simulated, fmt.Errorf("driver: precompute %q: %w", k.Name, err)
			}
			results, err := d.sim.RunPairs(ck, missing)
			if err != nil {
				return simulated, fmt.Errorf("driver: precompute %q: %w", k.Name, err)
			}
			for mi, res := range results {
				if err := scratch.SetPair(missing[mi]); err != nil {
					return simulated, fmt.Errorf("driver: precompute %q: %w", k.Name, err)
				}
				cl := &cachedLaunch{time: res.Time, acts: res.Activities}
				for _, ph := range res.Phases {
					// Same waveform construction as Device.launch: the
					// phase's switching activity scales the energy events,
					// never the profiler counters.
					ev := ph.Events
					ev.Scale(ph.EnergyScale)
					w := d.pm.SystemWatts(scratch, ev, ph.Duration)
					cl.trace = cl.trace.Append(ph.Duration, w)
					cl.scopeJ = cl.scopeJ.Add(d.pm.ScopeWatts(scratch, ev, ph.Duration).Scale(ph.Duration))
				}
				found[missingIdx[mi]] = cl
				gpu.ReleaseResult(res) // fully copied into the payload above
				if shared != nil {
					batch = append(batch, cacheEntry{key: keys[missingIdx[mi]], val: cl})
				}
				simulated++
				if o != nil {
					o.misses.Inc()
				}
			}
		}
		if d.cache != nil {
			for i := range keys {
				d.cache[keys[i]] = found[i]
			}
		}
	}
	if shared != nil && len(batch) > 0 {
		shared.putBatch(batch)
	}
	return simulated, nil
}
