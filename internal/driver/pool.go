package driver

import (
	"sync"

	"gpuperf/internal/meter"
)

// runResultPool recycles RunResults together with their period-trace
// storage. A sweep produces one metered RunResult per (benchmark, pair)
// cell and copies a handful of scalars out of each, so the struct, the
// period slice and the attached Measurement dominate the campaign loop's
// garbage; harnesses that fully consume a result hand it back via
// ReleaseRunResult.
var runResultPool = sync.Pool{New: func() any { return new(RunResult) }}

// newRunResult returns a zeroed RunResult plus the recycled period-trace
// storage (length 0) its previous owner built, ready to be grown by
// Append and re-attached via meter.Tile.
func newRunResult() (*RunResult, meter.Trace) {
	out := runResultPool.Get().(*RunResult)
	period := out.Trace.Period[:0]
	*out = RunResult{}
	return out, period
}

// ReleaseRunResult returns a metered run's result — and its pooled
// Measurement — to the internal pools. Only the sole owner may call it,
// after every needed value has been copied out; the result, its trace and
// its measurement must not be touched afterwards. Releasing is optional;
// unreleased results are ordinary garbage.
func ReleaseRunResult(r *RunResult) {
	if r == nil {
		return
	}
	meter.ReleaseMeasurement(r.Measurement)
	r.Measurement = nil
	runResultPool.Put(r)
}
