package driver

import (
	"math"
	"testing"

	"gpuperf/internal/gpu"
	"gpuperf/internal/power"
)

// captureFanout records every scope-tagged sample it receives.
type captureFanout struct {
	devices []string
	samples []power.Breakdown
}

func (c *captureFanout) SamplePower(device string, scopes power.Breakdown) {
	c.devices = append(c.devices, device)
	c.samples = append(c.samples, scopes)
}

// TestPowerFanoutStreamsScopedSamples: a metered run with a fan-out
// attached streams one per-scope breakdown per meter sampling window,
// tagged with the board name, with both domains positive and the module
// scope equal to their sum.
func TestPowerFanoutStreamsScopedSamples(t *testing.T) {
	d, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureFanout{}
	d.SetPowerFanout(cap)
	rr, err := d.RunMetered("w", []*gpu.KernelDesc{testKernel(64)}, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.samples) != len(rr.Measurement.Samples) {
		t.Fatalf("fanout saw %d samples, meter took %d", len(cap.samples), len(rr.Measurement.Samples))
	}
	for i, dev := range cap.devices {
		if dev != "GTX 480" {
			t.Fatalf("sample %d tagged %q, want GTX 480", i, dev)
		}
	}
	for i, bd := range cap.samples {
		if bd.GPU <= 0 || bd.Memory <= 0 {
			t.Fatalf("sample %d has non-positive domain: %+v", i, bd)
		}
		if math.Abs(bd.Module()-(bd.GPU+bd.Memory)) > 1e-12 {
			t.Fatalf("sample %d module != sum: %+v", i, bd)
		}
	}
	// The run's deterministic per-iteration average must be populated and
	// the streamed samples must average near it (noise-modulated).
	if rr.Power.GPU <= 0 || rr.Power.Memory <= 0 {
		t.Fatalf("RunResult.Power not populated: %+v", rr.Power)
	}
	var sum power.Breakdown
	for _, bd := range cap.samples {
		sum = sum.Add(bd)
	}
	avg := sum.Scale(1 / float64(len(cap.samples)))
	if rel := math.Abs(avg.Module()-rr.Power.Module()) / rr.Power.Module(); rel > 0.1 {
		t.Fatalf("streamed average %.2f W vs run average %.2f W (rel %.3f)",
			avg.Module(), rr.Power.Module(), rel)
	}
}

// TestPowerFanoutDoesNotChangeArtifacts: the measurement and all
// deterministic run outputs are bit-identical with and without a fan-out
// attached — the live tap never perturbs the artifact path.
func TestPowerFanoutDoesNotChangeArtifacts(t *testing.T) {
	run := func(f PowerFanout) *RunResult {
		d, err := OpenBoard("GTX 680")
		if err != nil {
			t.Fatal(err)
		}
		d.Seed(42)
		d.SetPowerFanout(f)
		rr, err := d.RunMetered("w", []*gpu.KernelDesc{testKernel(64)}, 0.01, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	plain := run(nil)
	tapped := run(&captureFanout{})
	if plain.Time != tapped.Time || plain.Iterations != tapped.Iterations {
		t.Fatal("fanout changed the run shape")
	}
	if plain.Measurement.AvgWatts != tapped.Measurement.AvgWatts ||
		plain.Measurement.EnergyJoules != tapped.Measurement.EnergyJoules {
		t.Fatal("fanout changed the measurement")
	}
	for i := range plain.Measurement.Samples {
		if plain.Measurement.Samples[i] != tapped.Measurement.Samples[i] {
			t.Fatalf("sample %d differs with fanout attached", i)
		}
	}
	if plain.Power != tapped.Power {
		t.Fatalf("fanout changed RunResult.Power: %+v vs %+v", plain.Power, tapped.Power)
	}
	// Fanout detaches cleanly: a second run on the tapped device after
	// SetPowerFanout(nil) streams nothing.
	d, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureFanout{}
	d.SetPowerFanout(cap)
	d.SetPowerFanout(nil)
	if _, err := d.RunMetered("w", []*gpu.KernelDesc{testKernel(64)}, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if len(cap.samples) != 0 {
		t.Fatalf("detached fanout still saw %d samples", len(cap.samples))
	}
}

// TestRunResultPowerMatchesScopeModel: the run-average breakdown equals
// the integral of per-phase ScopeWatts over one iteration divided by the
// iteration time — i.e. RunResult.Power is the scope model, not a second
// estimate.
func TestRunResultPowerMatchesScopeModel(t *testing.T) {
	d, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	const hostGap = 0.02
	rr, err := d.RunMetered("w", []*gpu.KernelDesc{testKernel(64)}, hostGap, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	iterTime := rr.TimePerIteration()
	// Idle floor: even during the host gap both domains draw static power,
	// so the run average must exceed the idle breakdown.
	idle := d.IdleScopePower()
	if rr.Power.GPU <= idle.GPU || rr.Power.Memory <= idle.Memory {
		t.Fatalf("run power %+v not above idle %+v", rr.Power, idle)
	}
	// Energy accounting: Power × iterTime must equal kernel scope energy
	// plus host-gap idle energy (reconstruct from a fresh identical run).
	d2, err := OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d2.launch(testKernel(64))
	if err != nil {
		t.Fatal(err)
	}
	want := cl.scopeJ.Add(d2.IdleScopePower().Scale(hostGap)).Scale(1 / iterTime)
	if math.Abs(want.GPU-rr.Power.GPU) > 1e-9 || math.Abs(want.Memory-rr.Power.Memory) > 1e-9 {
		t.Fatalf("run power %+v, want %+v", rr.Power, want)
	}
}
