package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair. Labels are rendered in the order given
// at registration, so every call site for a family must use the same
// order (the handles are cached, so in practice each series is rendered
// once).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry is a process-local metric registry. All values are integers —
// counters and gauges directly, histogram sums in fixed-point micro-units
// — so concurrent updates commute exactly and the exposition text is a
// pure function of the multiset of updates. All methods are nil-safe.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

type family struct {
	name    string
	help    string
	kind    string // "counter" | "gauge" | "histogram"
	micro   bool   // value is fixed-point micro-units (FloatGauge)
	buckets []float64
	series  map[string]*series
}

type series struct {
	labels string // rendered `a="b",c="d"` form, "" for none
	val    int64  // counter/gauge value; histogram observation count
	sumMic int64  // histogram sum in micro-units
	bucket []int64
}

// renderLabels renders labels in the canonical `k="v"` comma form,
// escaping per the Prometheus text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		b.WriteString(v)
		b.WriteByte('"')
	}
	return b.String()
}

// seriesFor returns (creating if needed) the family and its series for
// the given labels. The family's kind and help are set on first
// registration and left untouched after.
func (r *Registry) seriesFor(name, help, kind string, buckets []float64, labels []Label) *series {
	return r.seriesForMicro(name, help, kind, false, buckets, labels)
}

func (r *Registry) seriesForMicro(name, help, kind string, micro bool, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, micro: micro, buckets: buckets, series: map[string]*series{}}
		r.fams[name] = f
	}
	key := renderLabels(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		if f.kind == "histogram" {
			s.bucket = make([]int64, len(f.buckets)+1) // +1 for +Inf
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing integer. Nil-safe.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || c.s == nil || n <= 0 {
		return
	}
	atomic.AddInt64(&c.s.val, n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil || c.s == nil {
		return 0
	}
	return atomic.LoadInt64(&c.s.val)
}

// Gauge is a settable integer. Nil-safe.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || g.s == nil {
		return
	}
	atomic.StoreInt64(&g.s.val, v)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil || g.s == nil {
		return 0
	}
	return atomic.LoadInt64(&g.s.val)
}

// FloatGauge is a settable fractional gauge stored in fixed-point
// micro-units — the exposition renders a deterministic decimal (the same
// formatting histogram sums use), and updates stay single integer atomics
// so concurrent Sets commute with scrapes. Nil-safe.
type FloatGauge struct{ s *series }

// Set stores v (quantized to micro-units).
func (g *FloatGauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	atomic.StoreInt64(&g.s.val, usec(v))
}

// Value returns the current value in micro-units.
func (g *FloatGauge) Value() int64 {
	if g == nil || g.s == nil {
		return 0
	}
	return atomic.LoadInt64(&g.s.val)
}

// Histogram is a fixed-bucket distribution. Observations are recorded as
// integer bucket counts plus a fixed-point micro-unit sum, keeping the
// exposition independent of observation order. Nil-safe.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with le >= v
	atomic.AddInt64(&h.s.bucket[i], 1)
	atomic.AddInt64(&h.s.sumMic, usec(v))
	atomic.AddInt64(&h.s.val, 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil || h.s == nil {
		return 0
	}
	return atomic.LoadInt64(&h.s.val)
}

// Counter returns (registering if needed) a counter handle. Handles are
// cheap to hold and must be fetched on init/constructor paths only — the
// obscheck analyzer enforces this so registration cost stays off hot
// loops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.seriesFor(name, help, "counter", nil, labels)}
}

// Gauge returns (registering if needed) a gauge handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.seriesFor(name, help, "gauge", nil, labels)}
}

// FloatGauge returns (registering if needed) a fractional gauge handle
// (exposed as a gauge, stored in fixed-point micro-units).
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	if r == nil {
		return nil
	}
	return &FloatGauge{s: r.seriesForMicro(name, help, "gauge", true, nil, labels)}
}

// Histogram returns (registering if needed) a histogram handle with the
// given upper bucket bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{s: r.seriesFor(name, help, "histogram", bs, labels), buckets: bs}
}

// CounterVec is a counter family whose one free label is bound at use
// time (e.g. fault_injections_total{point=…}). The vec itself is
// registered on a constructor path; With only materializes series.
type CounterVec struct {
	reg        *Registry
	name, help string
	key        string
	fixed      []Label

	mu     sync.Mutex
	cached map[string]*Counter
}

// CounterVec returns a counter family keyed by one dynamic label (after
// any fixed labels).
func (r *Registry) CounterVec(name, help, labelKey string, fixed ...Label) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, name: name, help: help, key: labelKey, fixed: fixed, cached: map[string]*Counter{}}
}

// With returns the counter for one value of the dynamic label.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.cached[value]
	if c == nil {
		labels := append(append([]Label(nil), v.fixed...), Label{Key: v.key, Value: value})
		c = &Counter{s: v.reg.seriesFor(v.name, v.help, "counter", nil, labels)}
		v.cached[value] = c
	}
	return c
}

// Total sums every series of a family: counter/gauge values, or the
// observation count for a histogram. ok is false if the family does not
// exist.
func (r *Registry) Total(name string) (total int64, ok bool) {
	if r == nil {
		return 0, false
	}
	// The whole walk holds the registry lock: concurrent registrations
	// mutate f.series, and iterating it unlocked races them. Series values
	// are still read atomically, so in-flight Inc/Add/Set commute.
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		return 0, false
	}
	for _, s := range f.series {
		total += atomic.LoadInt64(&s.val)
	}
	return total, true
}

// formatMicro renders a fixed-point micro-unit sum as a decimal with
// trailing zeros trimmed (deterministic: pure integer formatting).
func formatMicro(mic int64) string {
	neg := mic < 0
	if neg {
		mic = -mic
	}
	whole, frac := mic/1e6, mic%1e6
	s := strconv.FormatInt(whole, 10)
	if frac != 0 {
		fs := fmt.Sprintf("%06d", frac)
		fs = strings.TrimRight(fs, "0")
		s += "." + fs
	}
	if neg {
		s = "-" + s
	}
	return s
}

// formatLe renders a bucket bound the way Prometheus does.
func formatLe(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot is an immutable point-in-time copy of a registry: families
// sorted by name, series sorted by rendered label string, every value
// read atomically. It is the scrape-safe read path — a live /metrics
// handler renders a Snapshot while campaigns keep registering series and
// bumping counters — and the only path the artifact writer uses too, so
// live and artifact expositions are byte-identical by construction.
type Snapshot struct {
	fams []famSnap
}

type famSnap struct {
	name    string
	help    string
	kind    string
	micro   bool
	buckets []float64
	series  []seriesSnap
}

type seriesSnap struct {
	labels string
	val    int64
	sumMic int64
	bucket []int64
}

// Snapshot copies the registry under its lock. The disabled-sink fast
// path is untouched: a nil registry snapshots to nil, and the handles'
// atomic updates never take this lock.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	snap := &Snapshot{fams: make([]famSnap, 0, len(names))}
	for _, n := range names {
		f := r.fams[n]
		fs := famSnap{name: f.name, help: f.help, kind: f.kind, micro: f.micro, buckets: f.buckets}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs.series = make([]seriesSnap, 0, len(keys))
		for _, k := range keys {
			s := f.series[k]
			ss := seriesSnap{
				labels: s.labels,
				val:    atomic.LoadInt64(&s.val),
				sumMic: atomic.LoadInt64(&s.sumMic),
			}
			if s.bucket != nil {
				ss.bucket = make([]int64, len(s.bucket))
				for i := range s.bucket {
					ss.bucket[i] = atomic.LoadInt64(&s.bucket[i])
				}
			}
			fs.series = append(fs.series, ss)
		}
		snap.fams = append(snap.fams, fs)
	}
	return snap
}

// Total sums every series of a family in the snapshot, mirroring
// Registry.Total.
func (s *Snapshot) Total(name string) (total int64, ok bool) {
	if s == nil {
		return 0, false
	}
	for i := range s.fams {
		if s.fams[i].name != name {
			continue
		}
		for j := range s.fams[i].series {
			total += s.fams[i].series[j].val
		}
		return total, true
	}
	return 0, false
}

// WriteText renders the snapshot's Prometheus text exposition: families
// sorted by name, series sorted by rendered label string, histogram
// buckets cumulative.
//
//gpulint:deterministic
func (s *Snapshot) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	for i := range s.fams {
		f := &s.fams[i]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for j := range f.series {
			sr := &f.series[j]
			switch {
			case f.kind == "histogram":
				writeHistogram(&b, f, sr)
			case f.micro:
				if sr.labels == "" {
					fmt.Fprintf(&b, "%s %s\n", f.name, formatMicro(sr.val))
				} else {
					fmt.Fprintf(&b, "%s{%s} %s\n", f.name, sr.labels, formatMicro(sr.val))
				}
			default:
				if sr.labels == "" {
					fmt.Fprintf(&b, "%s %d\n", f.name, sr.val)
				} else {
					fmt.Fprintf(&b, "%s{%s} %d\n", f.name, sr.labels, sr.val)
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteText writes the Prometheus text exposition through a point-in-time
// Snapshot, so writing is safe concurrently with registrations and
// updates — a mid-campaign scrape and the end-of-campaign artifact use
// the identical render path.
//
//gpulint:deterministic
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(b *strings.Builder, f *famSnap, s *seriesSnap) {
	var cum int64
	join := func(extra string) string {
		if s.labels == "" {
			return extra
		}
		if extra == "" {
			return s.labels
		}
		return s.labels + "," + extra
	}
	for i, le := range f.buckets {
		cum += s.bucket[i]
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", f.name, join(`le="`+formatLe(le)+`"`), cum)
	}
	cum += s.bucket[len(f.buckets)]
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", f.name, join(`le="+Inf"`), cum)
	if lbl := join(""); lbl == "" {
		fmt.Fprintf(b, "%s_sum %s\n", f.name, formatMicro(s.sumMic))
		fmt.Fprintf(b, "%s_count %d\n", f.name, s.val)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", f.name, lbl, formatMicro(s.sumMic))
		fmt.Fprintf(b, "%s_count{%s} %d\n", f.name, lbl, s.val)
	}
}
