package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zz_cells_total", "cells measured", L("board", "GTX 480"))
	c.Add(3)
	c.Inc()
	reg.Counter("zz_cells_total", "cells measured", L("board", "GTX 680")).Inc()
	reg.Gauge("aa_workers", "pool width").Set(4)
	h := reg.Histogram("mid_r2", "adjusted R2", []float64{0.5, 0.9})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(0.95)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_workers pool width
# TYPE aa_workers gauge
aa_workers 4
# HELP mid_r2 adjusted R2
# TYPE mid_r2 histogram
mid_r2_bucket{le="0.5"} 1
mid_r2_bucket{le="0.9"} 2
mid_r2_bucket{le="+Inf"} 3
mid_r2_sum 1.95
mid_r2_count 3
# HELP zz_cells_total cells measured
# TYPE zz_cells_total counter
zz_cells_total{board="GTX 480"} 4
zz_cells_total{board="GTX 680"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden exposition fails its own validator: %v", err)
	}
}

func TestExpositionIsOrderIndependent(t *testing.T) {
	render := func(order []string) string {
		reg := NewRegistry()
		vec := reg.CounterVec("retries_total", "retries", "point")
		for _, p := range order {
			vec.With(p).Inc()
		}
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := render([]string{"boot.fail", "launch.hang", "meter.drop"})
	b := render([]string{"meter.drop", "boot.fail", "launch.hang"})
	if a != b {
		t.Errorf("exposition depends on registration order:\n%s\nvs\n%s", a, b)
	}
}

func TestCounterConcurrentCommutes(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent increments lost: got %d, want 8000", c.Value())
	}
	if total, ok := reg.Total("n_total"); !ok || total != 8000 {
		t.Errorf("Total = %d, %v; want 8000, true", total, ok)
	}
}

func TestLayoutSortsAndOffsets(t *testing.T) {
	rec := New()
	// Created out of name order; layout must sort and lay end to end.
	b := rec.Track("b/second")
	a := rec.Track("a/first")
	a.Slice("k1", 0.002)
	a.Slice("k2", 0.001)
	b.Slice("k3", 0.005)

	layout := rec.Layout()
	if len(layout) != 2 {
		t.Fatalf("got %d tracks, want 2", len(layout))
	}
	if layout[0].Name != "a/first" || layout[1].Name != "b/second" {
		t.Errorf("layout order: %q, %q", layout[0].Name, layout[1].Name)
	}
	if layout[0].OffsetUS != 0 {
		t.Errorf("first track offset %d, want 0", layout[0].OffsetUS)
	}
	// a/first spans 3000 µs, so b/second starts there.
	if layout[1].OffsetUS != 3000 {
		t.Errorf("second track offset %d, want 3000", layout[1].OffsetUS)
	}
}

func TestSpanCoversChildSlices(t *testing.T) {
	rec := New()
	tr := rec.Track("t")
	tr.Advance(0.001)
	span := tr.Begin("parent", Arg{Key: "k", Value: "v"})
	tr.Slice("child1", 0.004)
	tr.Slice("child2", 0.006)
	span.End()

	ev := rec.Layout()[0].Events
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	parent := ev[2] // End records after the children
	if parent.Name != "parent" || parent.Start != 1000 || parent.Dur != 10000 {
		t.Errorf("parent = %q start=%d dur=%d; want parent/1000/10000", parent.Name, parent.Start, parent.Dur)
	}
	if len(parent.Args) != 1 || parent.Args[0].Value != "v" {
		t.Errorf("parent args not preserved: %+v", parent.Args)
	}
	if ev[0].Start != 1000 || ev[1].Start != 5000 {
		t.Errorf("children at %d, %d; want 1000, 5000", ev[0].Start, ev[1].Start)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Error("nil recorder claims enabled")
	}
	tr := rec.Track("x")
	if tr != nil {
		t.Error("nil recorder returned a non-nil track")
	}
	// None of these may panic.
	tr.Slice("a", 1)
	tr.SliceAt("a", 0, 1)
	tr.Instant("b")
	tr.Sample("c", 1)
	tr.Advance(1)
	span := tr.Begin("d")
	span.End()
	if tr.Now() != 0 || tr.Name() != "" {
		t.Error("nil track has state")
	}

	reg := rec.Metrics()
	reg.Counter("c", "h").Inc()
	reg.Gauge("g", "h").Set(1)
	reg.Histogram("h", "h", []float64{1}).Observe(0.5)
	reg.CounterVec("v", "h", "k").With("x").Inc()
	if _, ok := reg.Total("c"); ok {
		t.Error("nil registry has a family")
	}
	if err := rec.WriteMetrics(nil); err != nil {
		t.Error(err)
	}
	if err := rec.WriteEvents(nil); err != nil {
		t.Error(err)
	}
	if rec.Layout() != nil {
		t.Error("nil recorder has a layout")
	}
	stop := rec.StartProgress(nil, time.Second)
	stop()
}

func TestWriteEventsJSONL(t *testing.T) {
	rec := New()
	tr := rec.Track("sweep/x")
	tr.Slice("run", 0.001, Arg{Key: "pair", Value: "(H-H)"})
	tr.Instant("retry")
	tr.Sample("watts", 112.5, NumArg{Key: "interpolated", Value: 1})

	var b strings.Builder
	if err := rec.WriteEvents(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"track":"sweep/x","kind":"slice","name":"run","ts_us":0,"dur_us":1000,"pair":"(H-H)"}
{"track":"sweep/x","kind":"instant","name":"retry","ts_us":1000}
{"track":"sweep/x","kind":"counter","name":"watts","ts_us":1000,"value":112.5,"interpolated":1}
`
	if b.String() != want {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"garbage line":   "not a metric line at all!\n",
		"untyped sample": "orphan_total 3\n",
		"bad type":       "# TYPE x summary\nx 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: validator accepted %q", name, text)
		}
	}
	ok := "# HELP a_total h\n# TYPE a_total counter\na_total{x=\"y\"} 3\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("validator rejected a well-formed exposition: %v", err)
	}
}

func TestValidateTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":  "nope",
		"empty":     "[]",
		"no ph":     `[{"name":"x","ts":1}]`,
		"no name":   `[{"ph":"X","ts":1}]`,
		"no ts":     `[{"ph":"X","name":"x"}]`,
		"not array": `{"ph":"X"}`,
	}
	for name, text := range cases {
		if err := ValidateTraceJSON([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted %q", name, text)
		}
	}
	ok := `[{"ph":"M","name":"process_name"},{"ph":"X","name":"k","ts":0,"dur":5}]`
	if err := ValidateTraceJSON([]byte(ok)); err != nil {
		t.Errorf("validator rejected a well-formed trace: %v", err)
	}
	phases, err := TracePhases([]byte(ok))
	if err != nil {
		t.Fatal(err)
	}
	if phases["M"] != 1 || phases["X"] != 1 {
		t.Errorf("TracePhases = %v", phases)
	}
}

func TestFormatMicro(t *testing.T) {
	cases := []struct {
		mic  int64
		want string
	}{
		{0, "0"},
		{1_950_000, "1.95"},
		{1_000_000, "1"},
		{500, "0.0005"},
		{-2_500_000, "-2.5"},
	}
	for _, c := range cases {
		if got := formatMicro(c.mic); got != c.want {
			t.Errorf("formatMicro(%d) = %q, want %q", c.mic, got, c.want)
		}
	}
}

func TestProgressLines(t *testing.T) {
	rec := New()
	rec.Metrics().Counter("characterize_cells_total", "cells").Add(7)
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	stop := rec.StartProgress(w, 10*time.Millisecond, "characterize_cells_total", "no_such_family")
	time.Sleep(35 * time.Millisecond)
	stop()
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "progress: cells=7") {
		t.Errorf("no periodic line in %q", out)
	}
	if !strings.Contains(out, "progress(final):") {
		t.Errorf("no final line in %q", out)
	}
	if strings.Contains(out, "no_such_family") {
		t.Errorf("unknown family leaked into %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
