package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// StartProgress spawns a goroutine that writes a one-line status summary
// of the named counter families to w every interval, returning a stop
// function that must be called (it prints a final line and waits for the
// goroutine to exit). Progress lines use the wall clock for pacing and
// elapsed time — they go to stderr, not to a determinism artifact.
func (r *Recorder) StartProgress(w io.Writer, interval time.Duration, families ...string) (stop func()) {
	if r == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	line := func(prefix string) {
		var b strings.Builder
		b.WriteString(prefix)
		for _, fam := range families {
			v, ok := r.reg.Total(fam)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, " %s=%d", shortFamily(fam), v)
		}
		fmt.Fprintf(&b, " elapsed=%s\n", time.Since(start).Round(time.Second))
		_, _ = io.WriteString(w, b.String()) // best-effort status line
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				line("progress(final):")
				return
			case <-tick.C:
				line("progress:")
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// shortFamily trims the common metric-name affixes so progress lines stay
// on one line: "characterize_cells_total" -> "cells".
func shortFamily(name string) string {
	name = strings.TrimSuffix(name, "_total")
	for _, prefix := range []string{"characterize_", "driver_", "meter_", "fault_", "regress_", "core_"} {
		if s, ok := strings.CutPrefix(name, prefix); ok {
			return s
		}
	}
	return name
}
