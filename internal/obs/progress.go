package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// StartProgress is StartProgressCtx with a background context — the
// ticker then stops only through the returned stop function.
func (r *Recorder) StartProgress(w io.Writer, interval time.Duration, families ...string) (stop func()) {
	return r.StartProgressCtx(context.Background(), w, interval, families...)
}

// StartProgressCtx spawns a goroutine that writes a one-line status
// summary of the named counter families to w every interval, returning a
// stop function that is safe to call more than once (it prints a final
// line and waits for the goroutine to exit). Cancelling ctx also stops
// the ticker — commands pass their SIGINT/SIGTERM context so an early
// exit cannot leak the goroutine, and the daemon's signal handler reuses
// the same mechanism. Progress lines use the wall clock for pacing and
// elapsed time — they go to stderr, not to a determinism artifact.
func (r *Recorder) StartProgressCtx(ctx context.Context, w io.Writer, interval time.Duration, families ...string) (stop func()) {
	if r == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	line := func(prefix string) {
		var b strings.Builder
		b.WriteString(prefix)
		for _, fam := range families {
			v, ok := r.reg.Total(fam)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, " %s=%d", shortFamily(fam), v)
		}
		fmt.Fprintf(&b, " elapsed=%s\n", time.Since(start).Round(time.Second))
		_, _ = io.WriteString(w, b.String()) // best-effort status line
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				line("progress(final):")
				return
			case <-ctx.Done():
				line("progress(final):")
				return
			case <-tick.C:
				line("progress:")
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// shortFamily trims the common metric-name affixes so progress lines stay
// on one line: "characterize_cells_total" -> "cells".
func shortFamily(name string) string {
	name = strings.TrimSuffix(name, "_total")
	for _, prefix := range []string{"characterize_", "driver_", "meter_", "fault_", "regress_", "core_"} {
		if s, ok := strings.CutPrefix(name, prefix); ok {
			return s
		}
	}
	return name
}
