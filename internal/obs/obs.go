// Package obs is the campaign-wide observability layer: a span/event
// recorder on a deterministic virtual clock plus a metrics registry with
// Prometheus-style text exposition and JSONL event export.
//
// Determinism is the design constraint everything else bends around. The
// paper's sweeps are multi-hour campaigns whose reproduction must stay
// byte-identical at any worker count, so nothing in this package ever
// reads the wall clock into an exported artifact:
//
//   - Timestamps are virtual. Every Track owns a cursor of simulated
//     microseconds advanced explicitly by the instrumented code (kernel
//     durations from the simulator, meter windows, deterministic backoff
//     pauses) — never by time.Now. A track belongs to one unit of work
//     (one sweep job), whose simulated timeline is a pure function of the
//     seed, so its events are identical however the worker pool schedules
//     it.
//   - At export, tracks are sorted by name and laid end to end on one
//     timeline (each track's offset is the summed duration of the tracks
//     before it): the trace reads as the serialized campaign, and the
//     layout is independent of completion order.
//   - Metrics accumulate in integers (counts, fixed-point micro-units),
//     so concurrent increments commute exactly — no float-addition
//     order sensitivity — and the exposition text is sorted by family
//     and label set.
//
// Everything is strictly opt-in and nil-safe: a nil *Recorder (and every
// handle derived from one) turns the entire layer into pointer checks, so
// uninstrumented runs pay no allocations and no locks.
package obs

import (
	"math"
	"sort"
	"sync"
)

// Arg is one string-valued event annotation. Args are stored as an ordered
// slice, not a map, so event serialization is deterministic.
type Arg struct {
	Key   string
	Value string
}

// NumArg is one numeric event annotation — counter samples carry these so
// a per-window power reading can be tagged with, e.g., interpolated=1.
type NumArg struct {
	Key   string
	Value float64
}

// Kind discriminates event shapes.
type Kind byte

const (
	// KindSlice is a duration event (a kernel launch, a sweep cell).
	KindSlice Kind = 'X'
	// KindInstant is a point event (a retry, a fault injection, a cache hit).
	KindInstant Kind = 'i'
	// KindCounter is a counter sample (a 50 ms power window).
	KindCounter Kind = 'C'
)

// Event is one recorded trace event in track-local virtual time.
type Event struct {
	Name  string
	Kind  Kind
	Start int64 // virtual microseconds from track origin
	Dur   int64 // microseconds; slices only
	Value float64
	Args  []Arg
	Num   []NumArg
}

// End returns the event's end time (start for non-slices).
func (e *Event) End() int64 { return e.Start + e.Dur }

// Recorder is one campaign's instrumentation sink: a set of virtual-time
// tracks plus a metrics registry. The zero value is not usable; call New.
// All methods are safe on a nil receiver and safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	reg    *Registry
	tracks map[string]*Track
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{reg: NewRegistry(), tracks: map[string]*Track{}}
}

// Enabled reports whether a sink is attached.
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the recorder's registry (nil for a nil recorder — every
// registry method is nil-safe in turn).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Track returns (creating if needed) the named virtual timeline. Track
// names sort the export layout, so callers prefix them by campaign phase
// ("fig/GTX 480/backprop", "table4/…") to keep phases contiguous.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tracks[name]
	if t == nil {
		t = &Track{name: name}
		r.tracks[name] = t
	}
	return t
}

// TrackExport is one track's export snapshot: its events plus the offset
// assigned by the deterministic end-to-end layout.
type TrackExport struct {
	Name     string
	OffsetUS int64
	Events   []Event
}

// Layout snapshots every track sorted by name and assigns each its offset
// on the single export timeline. The result depends only on the recorded
// events, never on creation or completion order.
func (r *Recorder) Layout() []TrackExport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.tracks))
	for n := range r.tracks {
		names = append(names, n)
	}
	tracks := make([]*Track, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		tracks = append(tracks, r.tracks[n])
	}
	r.mu.Unlock()

	out := make([]TrackExport, 0, len(tracks))
	var offset int64
	for _, t := range tracks {
		t.mu.Lock()
		ev := make([]Event, len(t.events))
		copy(ev, t.events)
		dur := t.cursor
		t.mu.Unlock()
		for i := range ev {
			if end := ev[i].End(); end > dur {
				dur = end
			}
		}
		out = append(out, TrackExport{Name: t.name, OffsetUS: offset, Events: ev})
		offset += dur
	}
	return out
}

// usec converts simulated seconds to virtual microseconds, rounding half
// away from zero so the conversion is reproducible.
func usec(seconds float64) int64 { return int64(math.Round(seconds * 1e6)) }

// Track is one virtual timeline: a monotonically advancing cursor of
// simulated microseconds plus the events recorded against it. A track is
// normally written by the single goroutine that owns its unit of work,
// but all methods lock so unforeseen sharing stays race-free. All methods
// are safe on a nil receiver.
type Track struct {
	mu     sync.Mutex
	name   string
	cursor int64
	events []Event
}

// Name returns the track's name ("" for nil).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Now returns the cursor in virtual microseconds.
func (t *Track) Now() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cursor
}

// Advance moves the cursor forward by a simulated duration without
// recording an event (e.g. a retry's deterministic backoff pause).
func (t *Track) Advance(seconds float64) {
	if t == nil || seconds <= 0 {
		return
	}
	t.mu.Lock()
	t.cursor += usec(seconds)
	t.mu.Unlock()
}

// Slice records a duration event at the cursor and advances the cursor
// past it.
func (t *Track) Slice(name string, seconds float64, args ...Arg) {
	if t == nil {
		return
	}
	d := usec(seconds)
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Name: name, Kind: KindSlice, Start: t.cursor, Dur: d, Args: args})
	t.cursor += d
	t.mu.Unlock()
}

// SliceAt records a duration event at an explicit virtual start time
// without moving the cursor — the shape of a parent span whose children
// advanced the cursor already.
func (t *Track) SliceAt(name string, startUS int64, seconds float64, args ...Arg) {
	if t == nil {
		return
	}
	d := usec(seconds)
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Name: name, Kind: KindSlice, Start: startUS, Dur: d, Args: args})
	t.mu.Unlock()
}

// Instant records a point event at the cursor.
func (t *Track) Instant(name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Name: name, Kind: KindInstant, Start: t.cursor, Args: args})
	t.mu.Unlock()
}

// Sample records a counter sample at the cursor.
func (t *Track) Sample(counter string, v float64, extra ...NumArg) {
	t.SampleAt(counter, t.Now(), v, extra...)
}

// SampleAt records a counter sample at an explicit virtual time — the
// meter's 50 ms windows land inside the metered run this way.
func (t *Track) SampleAt(counter string, tsUS int64, v float64, extra ...NumArg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Name: counter, Kind: KindCounter, Start: tsUS, Value: v, Num: extra})
	t.mu.Unlock()
}

// Span is an in-progress slice opened by Track.Begin. Every Begin must be
// paired with exactly one End — the obscheck analyzer enforces this
// statically.
type Span struct {
	t     *Track
	name  string
	start int64
	args  []Arg
}

// Begin opens a span at the cursor. The span closes at the cursor's
// position when End is called, so the enclosed instrumentation advances
// the clock for it.
func (t *Track) Begin(name string, args ...Arg) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.Now(), args: args}
}

// End closes the span, recording it as a slice from Begin's cursor to the
// current cursor. Extra args are appended to Begin's.
func (s *Span) End(args ...Arg) {
	if s == nil {
		return
	}
	all := s.args
	if len(args) > 0 {
		all = append(append([]Arg(nil), s.args...), args...)
	}
	dur := s.t.Now() - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.SliceAt(s.name, s.start, float64(dur)/1e6, all...)
}
