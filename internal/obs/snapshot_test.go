package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestScrapeDuringRegistrationIsSafe is the scrape-safety contract: the
// exposition must be writable concurrently with handle registration and
// counter updates — a /metrics scrape mid-campaign. Run under -race this
// catches any unguarded families/series access.
func TestScrapeDuringRegistrationIsSafe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrape_cells_total", "cells", L("board", "seed")).Inc()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: keep registering fresh series across several families and
	// bumping them, like sweep workers observing new boards.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lbl := L("board", fmt.Sprintf("w%d-%d", w, i%37))
				reg.Counter("scrape_cells_total", "cells", lbl).Inc()
				reg.Gauge("scrape_pool_workers", "pool", lbl).Set(int64(i))
				reg.FloatGauge("scrape_power_watts", "power", lbl).Set(float64(i) * 0.25)
				reg.Histogram("scrape_watts_hist", "dist", []float64{1, 10, 100}, lbl).Observe(float64(i % 200))
				reg.CounterVec("scrape_retries_total", "retries", "point", lbl).With("launch.hang").Inc()
				if _, ok := reg.Total("scrape_cells_total"); !ok {
					t.Error("registered family vanished")
					return
				}
			}
		}(w)
	}

	// Scrapers: render the exposition and take snapshots while the writers
	// run. Every render must be well-formed (validated below).
	var lastText string
	for i := 0; i < 200; i++ {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		lastText = b.String()
		if _, ok := reg.Snapshot().Total("scrape_cells_total"); !ok {
			t.Fatal("snapshot lost a registered family")
		}
	}
	close(stop)
	wg.Wait()

	if err := ValidateExposition(strings.NewReader(lastText)); err != nil {
		t.Fatalf("mid-campaign exposition invalid: %v", err)
	}
}

// TestSnapshotIsImmutable pins that a snapshot taken before later updates
// keeps rendering the old values.
func TestSnapshotIsImmutable(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("snap_total", "help")
	c.Add(3)
	h := reg.Histogram("snap_hist", "help", []float64{1, 2})
	h.Observe(0.5)
	snap := reg.Snapshot()
	c.Add(39)
	h.Observe(1.5)

	if v, _ := snap.Total("snap_total"); v != 3 {
		t.Fatalf("snapshot total moved: got %d, want 3", v)
	}
	var b strings.Builder
	if err := snap.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "snap_total 3\n") {
		t.Fatalf("snapshot rendered live values:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `snap_hist_bucket{le="+Inf"} 1`) {
		t.Fatalf("snapshot histogram moved:\n%s", b.String())
	}
}

// TestExpositionLabelEscaping covers the Prometheus text-format escapes:
// backslash, double quote and newline in label values.
func TestExpositionLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "help", L("path", `C:\temp`)).Inc()
	reg.Counter("esc_total", "help", L("path", `say "hi"`)).Inc()
	reg.Counter("esc_total", "help", L("path", "line1\nline2")).Inc()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`esc_total{path="C:\\temp"} 1`,
		`esc_total{path="say \"hi\""} 1`,
		`esc_total{path="line1\nline2"} 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	if strings.Count(got, "\n") != 5 { // HELP + TYPE + 3 series
		t.Errorf("escaped newline leaked a raw line break:\n%q", got)
	}
}

// TestExpositionEmptyRegistry: an empty registry renders an empty (not
// malformed) exposition, and a nil registry/snapshot writes nothing.
func TestExpositionEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q", b.String())
	}
	var nilReg *Registry
	if err := nilReg.WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, b.String())
	}
	if snap := nilReg.Snapshot(); snap != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if _, ok := (*Snapshot)(nil).Total("x"); ok {
		t.Fatal("nil snapshot claimed a family")
	}
}

// TestExpositionHelpTypeOrdering: every family renders HELP then TYPE
// then its series, families in name order regardless of registration
// order.
func TestExpositionHelpTypeOrdering(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("zz_gauge", "last family").Set(1)
	reg.Histogram("mm_hist", "middle family", []float64{5}).Observe(1)
	reg.Counter("aa_total", "first family").Inc()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	want := []string{
		"# HELP aa_total first family",
		"# TYPE aa_total counter",
		"aa_total 1",
		"# HELP mm_hist middle family",
		"# TYPE mm_hist histogram",
		`mm_hist_bucket{le="5"} 1`,
		`mm_hist_bucket{le="+Inf"} 1`,
		"mm_hist_sum 1",
		"mm_hist_count 1",
		"# HELP zz_gauge last family",
		"# TYPE zz_gauge gauge",
		"zz_gauge 1",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), b.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestArtifactAndLiveExpositionIdentical: the artifact writer
// (Registry.WriteText / Recorder.WriteMetrics) and the live handler path
// (Snapshot.WriteText) must produce byte-identical text for the same
// registry state at a fixed seed of updates.
func TestArtifactAndLiveExpositionIdentical(t *testing.T) {
	rec := New()
	reg := rec.Metrics()
	for i := 0; i < 100; i++ {
		reg.Counter("ident_cells_total", "cells", L("board", fmt.Sprintf("b%d", i%4))).Add(int64(i))
		reg.Histogram("ident_watts", "watts", []float64{50, 150, 400},
			L("device", "GTX 480"), L("scope", "gpu")).Observe(float64(37*i%500) / 2)
		reg.FloatGauge("ident_power_watts", "power", L("scope", "memory")).Set(float64(i) + 0.125)
	}

	var artifact strings.Builder
	if err := rec.WriteMetrics(&artifact); err != nil {
		t.Fatal(err)
	}
	var live strings.Builder
	if err := reg.Snapshot().WriteText(&live); err != nil {
		t.Fatal(err)
	}
	if artifact.String() != live.String() {
		t.Fatalf("artifact and live expositions diverge:\n--- artifact ---\n%s--- live ---\n%s",
			artifact.String(), live.String())
	}
	if err := ValidateExposition(strings.NewReader(live.String())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestFloatGaugeRendersMicroDecimal pins the FloatGauge exposition format.
func TestFloatGaugeRendersMicroDecimal(t *testing.T) {
	reg := NewRegistry()
	g := reg.FloatGauge("power_watts", "w", L("scope", "gpu"))
	g.Set(123.456789)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `power_watts{scope="gpu"} 123.456789`) {
		t.Fatalf("unexpected render:\n%s", b.String())
	}
	g.Set(-0.5)
	b.Reset()
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `power_watts{scope="gpu"} -0.5`) {
		t.Fatalf("unexpected negative render:\n%s", b.String())
	}
}

// TestProgressStopsOnContextCancel: cancelling the context must end the
// ticker goroutine (final line printed) even when stop is called late —
// and the late stop must still be safe.
func TestProgressStopsOnContextCancel(t *testing.T) {
	rec := New()
	rec.Metrics().Counter("characterize_cells_total", "cells").Add(7)

	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})

	ctx, cancel := context.WithCancel(context.Background())
	stop := rec.StartProgressCtx(ctx, w, time.Hour, "characterize_cells_total")
	cancel()

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		done := strings.Contains(buf.String(), "progress(final):")
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("ticker goroutine did not stop on context cancel")
		case <-time.After(time.Millisecond):
		}
	}
	stop() // must not hang or double-print
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if c := strings.Count(buf.String(), "progress(final):"); c != 1 {
		t.Fatalf("want exactly one final line, got %d:\n%s", c, buf.String())
	}
	if !strings.Contains(buf.String(), "cells=7") {
		t.Fatalf("final line missing counter: %q", buf.String())
	}
}
