package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// expositionLine matches a Prometheus text-format sample line:
// name{labels} value — labels optional, value a decimal number.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// ValidateExposition checks that every line of a metrics exposition is a
// # HELP line, a # TYPE line, or a well-formed sample line, and that each
// sample's family was announced by a preceding # TYPE. Used by CI to gate
// on artifact well-formedness.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	typed := map[string]bool{}
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed # TYPE: %q", n, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", n, fields[3])
			}
			typed[fields[2]] = true
		case expositionLine.MatchString(line):
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if t := strings.TrimSuffix(name, suffix); t != name && typed[t] {
					base = t
					break
				}
			}
			if !typed[base] {
				return fmt.Errorf("line %d: sample %q has no preceding # TYPE", n, name)
			}
		default:
			return fmt.Errorf("line %d: not a HELP/TYPE/sample line: %q", n, line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	if n == 0 {
		return fmt.Errorf("empty exposition")
	}
	return nil
}

// ValidateTraceJSON checks that a Chrome trace round-trips: it must parse
// as a JSON array of event objects, each with a string "ph" phase and a
// "ts" for non-metadata phases. Used by CI against -trace-out artifacts.
func ValidateTraceJSON(data []byte) error {
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace does not parse as a JSON event array: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace has no events")
	}
	phases := map[string]int{}
	for i, ev := range events {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		phases[ph]++
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("event %d (ph=%s): missing name", i, ph)
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("event %d (ph=%s): missing ts", i, ph)
			}
		}
	}
	// Round-trip: re-encode must succeed (guards against NaN/Inf values,
	// which encoding/json rejects).
	if _, err := json.Marshal(events); err != nil {
		return fmt.Errorf("trace does not re-encode: %w", err)
	}
	return nil
}

// TracePhases returns the count of events per Chrome phase letter, for
// tests asserting a trace contains slices/counters/instants/metadata.
func TracePhases(data []byte) (map[string]int, error) {
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, err
	}
	phases := map[string]int{}
	for _, ev := range events {
		if ph, ok := ev["ph"].(string); ok {
			phases[ph]++
		}
	}
	return phases, nil
}
