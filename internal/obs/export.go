package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetrics writes the registry's Prometheus text exposition.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.reg.WriteText(w)
}

// WriteEvents writes every recorded event as one JSON object per line
// (JSONL), tracks in layout order, events in record order, timestamps on
// the single laid-out virtual timeline. The encoding is hand-rolled so
// field order — and therefore the bytes — is fixed.
//
//gpulint:deterministic
func (r *Recorder) WriteEvents(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, tl := range r.Layout() {
		for i := range tl.Events {
			writeEventLine(&b, tl.Name, tl.OffsetUS, &tl.Events[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeEventLine renders one event as a JSONL line.
func writeEventLine(b *strings.Builder, track string, offsetUS int64, e *Event) {
	b.WriteString(`{"track":`)
	b.WriteString(strconv.Quote(track))
	b.WriteString(`,"kind":"`)
	switch e.Kind {
	case KindSlice:
		b.WriteString("slice")
	case KindInstant:
		b.WriteString("instant")
	case KindCounter:
		b.WriteString("counter")
	}
	b.WriteString(`","name":`)
	b.WriteString(strconv.Quote(e.Name))
	fmt.Fprintf(b, `,"ts_us":%d`, offsetUS+e.Start)
	if e.Kind == KindSlice {
		fmt.Fprintf(b, `,"dur_us":%d`, e.Dur)
	}
	if e.Kind == KindCounter {
		b.WriteString(`,"value":`)
		b.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
	}
	for _, a := range e.Args {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		b.WriteString(strconv.Quote(a.Value))
	}
	for _, a := range e.Num {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(a.Value, 'g', -1, 64))
	}
	b.WriteString("}\n")
}
