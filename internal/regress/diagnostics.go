package regress

import (
	"fmt"
	"math"
	"sort"

	"gpuperf/internal/linalg"
)

// Diagnostics the paper's statistical methodology quietly depends on: the
// performance counters are highly collinear by construction (subpartition
// splits, issue-slot breakdowns), which is why naive all-variables fits
// are unstable and forward selection matters. VIF quantifies that
// collinearity; standardized coefficients make selected variables
// comparable across scales (the Fig. 11 interpretation).

// VIF returns the variance inflation factor of each column of x: the
// factor by which collinearity with the other columns inflates that
// coefficient's variance. VIF ≈ 1 means independent; > 10 is the usual
// "severely collinear" rule of thumb. Columns whose auxiliary regression
// fails (constant or exactly dependent) report +Inf.
func VIF(x [][]float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("regress: VIF: no observations")
	}
	p := len(x[0])
	if p < 2 {
		return nil, fmt.Errorf("regress: VIF needs at least two columns")
	}
	out := make([]float64, p)
	for j := 0; j < p; j++ {
		// Regress column j on the remaining columns.
		yj := make([]float64, len(x))
		xj := make([][]float64, len(x))
		for i, row := range x {
			yj[i] = row[j]
			rest := make([]float64, 0, p-1)
			for k, v := range row {
				if k != j {
					rest = append(rest, v)
				}
			}
			xj[i] = rest
		}
		fit, err := OLS(xj, yj)
		if err != nil {
			out[j] = math.Inf(1)
			continue
		}
		if fit.R2 >= 1 {
			out[j] = math.Inf(1)
			continue
		}
		out[j] = 1 / (1 - fit.R2)
	}
	return out, nil
}

// StandardizedCoef returns beta-weights: coefficients rescaled by the
// predictor/target standard deviations so their magnitudes are comparable
// regardless of counter units.
func (f *Fit) StandardizedCoef(x [][]float64, y []float64) ([]float64, error) {
	if len(x) != f.N || len(y) != f.N {
		return nil, fmt.Errorf("regress: standardized coefficients need the training data")
	}
	sy := stddev(y)
	if sy == 0 {
		return nil, fmt.Errorf("regress: constant target")
	}
	out := make([]float64, len(f.Coef))
	col := make([]float64, len(x))
	for j := range f.Coef {
		for i, row := range x {
			col[i] = row[j]
		}
		out[j] = f.Coef[j] * stddev(col) / sy
	}
	return out, nil
}

// ConditionNumber estimates the design matrix's 2-norm condition number via
// the ratio of extreme singular values, computed by power iteration on
// XᵀX (adequate for diagnostics). Columns are standardized first so the
// answer reflects collinearity, not units.
func ConditionNumber(x [][]float64) (float64, error) {
	n := len(x)
	if n == 0 {
		return 0, fmt.Errorf("regress: no observations")
	}
	p := len(x[0])
	if p < 2 {
		return 0, fmt.Errorf("regress: need at least two columns")
	}
	// Standardize columns.
	std := make([][]float64, n)
	for i := range std {
		std[i] = make([]float64, p)
	}
	col := make([]float64, n)
	for j := 0; j < p; j++ {
		var mean float64
		for i := range x {
			col[i] = x[i][j]
			mean += col[i]
		}
		mean /= float64(n)
		sd := stddev(col)
		if sd == 0 {
			return math.Inf(1), nil
		}
		for i := range x {
			std[i][j] = (x[i][j] - mean) / sd
		}
	}
	// Gram matrix G = XᵀX (p×p).
	g := linalg.NewMatrix(p, p)
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += std[i][a] * std[i][b]
			}
			g.Set(a, b, s)
			g.Set(b, a, s)
		}
	}
	lamMax := powerIterate(g, nil)
	if lamMax <= 0 {
		return math.Inf(1), nil
	}
	// Smallest eigenvalue via shifted iteration on (λmax·I − G).
	shifted := linalg.NewMatrix(p, p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			v := -g.At(a, b)
			if a == b {
				v += lamMax
			}
			shifted.Set(a, b, v)
		}
	}
	lamMin := lamMax - powerIterate(shifted, nil)
	if lamMin <= 1e-12 {
		return math.Inf(1), nil
	}
	return math.Sqrt(lamMax / lamMin), nil
}

// powerIterate returns the dominant eigenvalue of a symmetric PSD matrix.
func powerIterate(m *linalg.Matrix, start []float64) float64 {
	p := m.Cols
	v := start
	if v == nil {
		// Deterministic but asymmetric start: a symmetric start can be
		// exactly orthogonal to the dominant eigenvector (e.g. of the
		// shifted matrix in ConditionNumber) and stall the iteration.
		v = make([]float64, p)
		var norm float64
		for i := range v {
			v[i] = 1 / float64(i+1)
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	var lam float64
	for it := 0; it < 200; it++ {
		w, err := m.MulVec(v)
		if err != nil {
			return 0
		}
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range w {
			w[i] /= norm
		}
		newLam := norm
		if math.Abs(newLam-lam) < 1e-12*math.Max(1, lam) {
			return newLam
		}
		lam = newLam
		v = w
	}
	return lam
}

// TopCollinear reports the k most collinear column indices by VIF,
// descending (for diagnostics output).
func TopCollinear(x [][]float64, k int) ([]int, error) {
	vifs, err := VIF(x)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(vifs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vifs[idx[a]] > vifs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k], nil
}

func stddev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var ss float64
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(v)-1))
}
