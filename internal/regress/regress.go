// Package regress implements the statistical machinery of Section IV:
// ordinary least squares with R² / adjusted-R² reporting, greedy forward
// selection of explanatory variables (the paper caps selection at 10
// variables and sweeps 5–20 for Figs. 7 and 8), prediction-error metrics,
// and the box-and-whisker summaries of Figs. 9 and 10.
package regress

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"gpuperf/internal/linalg"
)

// Fit is one fitted linear model y ≈ intercept + Σ coef·x.
type Fit struct {
	Coef      []float64 // one per feature column
	Intercept float64
	R2        float64
	AdjR2     float64
	Residuals []float64
	N         int // observations
	P         int // features (excluding intercept)
}

// OLS fits y against the n×p feature matrix x (row per observation) with an
// intercept. It needs n > p+1 and full column rank.
func OLS(x [][]float64, y []float64) (*Fit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: OLS: %d rows vs %d targets", n, len(y))
	}
	p := len(x[0])
	if n <= p+1 {
		return nil, fmt.Errorf("regress: OLS: %d observations cannot support %d variables", n, p)
	}
	// Pooled: every cell is written below, and olsFinish returns the
	// matrix to the pool once the fit statistics are derived.
	a := linalg.GetMatrix(n, p+1)
	for i, row := range x {
		if len(row) != p {
			linalg.PutMatrix(a)
			return nil, fmt.Errorf("regress: OLS: ragged row %d", i)
		}
		a.Set(i, 0, 1)
		for j, v := range row {
			a.Set(i, j+1, v)
		}
	}
	return olsFinish(a, y, n, p)
}

// OLSColumns fits y against the chosen columns of x with an intercept:
// identical to OLS(Project(x, cols), y) — same design matrix, same QR
// solve, bit-identical fit — without materializing the projected row set.
// The hot consumers (forward selection's refit, the variable sweep) call
// it once per candidate model size.
func OLSColumns(x [][]float64, cols []int, y []float64) (*Fit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: OLS: %d rows vs %d targets", n, len(y))
	}
	p := len(cols)
	if n <= p+1 {
		return nil, fmt.Errorf("regress: OLS: %d observations cannot support %d variables", n, p)
	}
	a := linalg.GetMatrix(n, p+1) // every cell written; olsFinish pools it
	for i, row := range x {
		a.Set(i, 0, 1)
		for j, c := range cols {
			a.Set(i, j+1, row[c])
		}
	}
	return olsFinish(a, y, n, p)
}

// olsFinish solves the assembled design matrix and derives the fit
// statistics; shared by OLS and OLSColumns.
func olsFinish(a *linalg.Matrix, y []float64, n, p int) (*Fit, error) {
	defer linalg.PutMatrix(a) // olsFinish owns the assembled design matrix
	beta, err := linalg.SolveLS(a, y)
	if err != nil {
		return nil, err
	}
	fit := &Fit{Intercept: beta[0], Coef: beta[1:], N: n, P: p}

	pred, err := a.MulVec(beta)
	if err != nil {
		return nil, err
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	fit.Residuals = make([]float64, n)
	for i := range y {
		r := y[i] - pred[i]
		fit.Residuals[i] = r
		ssRes += r * r
		d := y[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		fit.R2, fit.AdjR2 = 1, 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
		fit.AdjR2 = 1 - (1-fit.R2)*float64(n-1)/float64(n-p-1)
	}
	return fit, nil
}

// Ridge fits y against x with an L2 penalty λ on the coefficients (the
// intercept is unpenalized): the textbook answer to the counter matrices'
// collinearity, provided as a robustness alternative to forward selection.
// It augments the design matrix with √λ·I rows and reuses the QR solver.
func Ridge(x [][]float64, y []float64, lambda float64) (*Fit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: Ridge: %d rows vs %d targets", n, len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("regress: Ridge: negative lambda %g", lambda)
	}
	if lambda == 0 {
		return OLS(x, y)
	}
	p := len(x[0])
	a := linalg.NewMatrix(n+p, p+1)
	b := make([]float64, n+p)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: Ridge: ragged row %d", i)
		}
		a.Set(i, 0, 1)
		for j, v := range row {
			a.Set(i, j+1, v)
		}
		b[i] = y[i]
	}
	root := math.Sqrt(lambda)
	for j := 0; j < p; j++ {
		a.Set(n+j, j+1, root) // penalty rows: √λ on each coefficient
	}
	beta, err := linalg.SolveLS(a, b)
	if err != nil {
		return nil, err
	}
	fit := &Fit{Intercept: beta[0], Coef: beta[1:], N: n, P: p}

	// Report goodness of fit over the data rows only.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	fit.Residuals = make([]float64, n)
	for i, row := range x {
		pred := fit.Predict(row)
		r := y[i] - pred
		fit.Residuals[i] = r
		ssRes += r * r
		d := y[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		fit.R2, fit.AdjR2 = 1, 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
		fit.AdjR2 = 1 - (1-fit.R2)*float64(n-1)/float64(n-p-1)
	}
	return fit, nil
}

// Predict evaluates the model on one feature row.
func (f *Fit) Predict(features []float64) float64 {
	y := f.Intercept
	for j, c := range f.Coef {
		if j < len(features) {
			y += c * features[j]
		}
	}
	return y
}

// PredictColumns evaluates a fit trained on the chosen columns against one
// full-width feature row: identical to Predict(Project(...)) on that row's
// projection, without materializing it.
func (f *Fit) PredictColumns(row []float64, cols []int) float64 {
	y := f.Intercept
	for j, c := range f.Coef {
		if j < len(cols) {
			y += c * row[cols[j]]
		}
	}
	return y
}

// Step records the state of forward selection after adding one variable.
type Step struct {
	Added int // column index added at this step
	AdjR2 float64
	R2    float64
}

// Selection is the outcome of forward selection.
type Selection struct {
	Indices []int // selected column indices, in selection order
	Fit     *Fit  // fit over exactly len(Indices) variables
	Steps   []Step
}

// ErrNoUsableVariables is returned when not a single column produces a
// valid single-variable fit.
var ErrNoUsableVariables = errors.New("regress: no usable variables")

// ForwardSelect greedily grows a variable subset, at each step adding the
// column that maximizes adjusted R², up to maxVars variables. Selection
// continues to maxVars even if adjusted R² dips (the Fig. 7/8 sweeps need
// fits at every size); Best() recovers the paper's "optimal" model — the
// step with maximum adjusted R².
//
// Candidate evaluation is incremental rather than one OLS refit per
// candidate per step: the residual target and every unselected column are
// kept orthogonal to the selected set (modified Gram–Schmidt, with the
// intercept projected out up front by centering), so a candidate's R²
// gain is (w·t)²/‖w‖² — one pass over the column. A step costs O(p·n)
// and the whole selection O(maxVars·p·n), where the per-fit approach
// pays an extra factor of the subset size cubed. Within a step every
// candidate's adjusted R² shares the same degrees-of-freedom factor, so
// maximizing the gain maximizes adjusted R²; ties resolve to the lowest
// column index. The reported Fit is refit by QR on the selected subset
// for full numerical accuracy.
func ForwardSelect(x [][]float64, y []float64, maxVars int) (*Selection, error) {
	return ForwardSelectCtx(context.Background(), x, y, maxVars)
}

// ForwardSelectCtx is ForwardSelect with cooperative cancellation: the
// context is checked before each selection step (one step is a full
// O(p·n) candidate scan), so a cancelled training run stops at a step
// boundary and returns the cause wrapped in the error.
func ForwardSelectCtx(ctx context.Context, x [][]float64, y []float64, maxVars int) (*Selection, error) {
	if maxVars <= 0 {
		return nil, fmt.Errorf("regress: ForwardSelect: maxVars = %d", maxVars)
	}
	n := len(x)
	if n == 0 {
		return nil, errors.New("regress: ForwardSelect: no observations")
	}
	p := len(x[0])

	// Column-major working copy, centered: mean-free columns and target
	// are already orthogonal to the intercept.
	flat := make([]float64, p*n)
	cols := make([][]float64, p)
	for j := range cols {
		cols[j] = flat[j*n : (j+1)*n]
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: ForwardSelect: ragged row %d", i)
		}
		for j, v := range row {
			cols[j][i] = v
		}
	}
	norm0 := make([]float64, p) // squared norm of each centered column
	for j, w := range cols {
		var mean float64
		for _, v := range w {
			mean += v
		}
		mean /= float64(n)
		var ss float64
		for i := range w {
			w[i] -= mean
			ss += w[i] * w[i]
		}
		norm0[j] = ss
	}
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(n)
	t := make([]float64, n) // residual target, orthogonal to the selection
	var ssTot float64
	for i, v := range y {
		t[i] = v - ymean
		ssTot += t[i] * t[i]
	}

	// A candidate whose orthogonalized component has lost (almost) all of
	// its original mass is numerically in the span of the selected set.
	const tol = 1e-10

	sel := &Selection{}
	used := make([]bool, p)
	for len(sel.Indices) < maxVars && len(sel.Indices) < p {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("regress: forward selection cancelled: %w", context.Cause(ctx))
		}
		k := len(sel.Indices)
		if n <= k+2 {
			break // one more variable would exhaust the observations
		}
		bestJ := -1
		var bestGain float64
		for j := 0; j < p; j++ {
			if used[j] || norm0[j] == 0 {
				continue
			}
			w := cols[j]
			var dot, ww float64
			for i, wi := range w {
				dot += wi * t[i]
				ww += wi * wi
			}
			if ww <= tol*norm0[j] {
				continue // collinear with the selected set: skip
			}
			gain := dot * dot / ww
			if bestJ < 0 || gain > bestGain {
				bestJ, bestGain = j, gain
			}
		}
		if bestJ < 0 {
			break
		}

		// Project the winner out of the target and every remaining
		// candidate, then report fit quality from the residual.
		u := cols[bestJ]
		var uu float64
		for _, v := range u {
			uu += v * v
		}
		invUU := 1 / uu
		var ut float64
		for i, v := range u {
			ut += v * t[i]
		}
		c := ut * invUU
		for i, v := range u {
			t[i] -= c * v
		}
		for j := 0; j < p; j++ {
			if used[j] || j == bestJ || norm0[j] == 0 {
				continue
			}
			w := cols[j]
			var uw float64
			for i, v := range u {
				uw += v * w[i]
			}
			cj := uw * invUU
			for i, v := range u {
				w[i] -= cj * v
			}
		}
		used[bestJ] = true
		sel.Indices = append(sel.Indices, bestJ)

		var rss float64
		for _, v := range t {
			rss += v * v
		}
		r2, adj := 1.0, 1.0
		if ssTot > 0 {
			r2 = 1 - rss/ssTot
			adj = 1 - (1-r2)*float64(n-1)/float64(n-k-2)
		}
		sel.Steps = append(sel.Steps, Step{Added: bestJ, AdjR2: adj, R2: r2})
	}
	if len(sel.Indices) == 0 {
		return nil, ErrNoUsableVariables
	}
	// Refit the reported model by QR. If accumulated orthogonalization
	// error let a dependent column through, drop trailing picks until the
	// refit is full-rank — mirroring the per-candidate skip of a per-fit
	// implementation.
	for len(sel.Indices) > 0 {
		fit, err := OLSColumns(x, sel.Indices, y)
		if err == nil {
			sel.Fit = fit
			observeSelection(sel)
			return sel, nil
		}
		sel.Indices = sel.Indices[:len(sel.Indices)-1]
		sel.Steps = sel.Steps[:len(sel.Steps)-1]
	}
	return nil, ErrNoUsableVariables
}

// Best returns the number of variables (1-based) at which adjusted R²
// peaked during selection.
func (s *Selection) Best() int {
	best, bestAdj := 1, math.Inf(-1)
	for i, st := range s.Steps {
		if st.AdjR2 > bestAdj {
			best, bestAdj = i+1, st.AdjR2
		}
	}
	return best
}

// subset projects rows of x onto the chosen columns.
func subset(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(cols))
		for k, c := range cols {
			r[k] = row[c]
		}
		out[i] = r
	}
	return out
}

// Project is the exported form of subset for callers that need to evaluate
// a Selection's fit on new data.
func Project(x [][]float64, cols []int) [][]float64 { return subset(x, cols) }

// MeanAbsError returns mean |pred − actual|.
func MeanAbsError(pred, actual []float64) float64 {
	if len(pred) == 0 || len(pred) != len(actual) {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - actual[i])
	}
	return s / float64(len(pred))
}

// MeanAbsPctError returns the mean of |pred − actual| / actual × 100,
// the error metric of Tables VII and VIII.
func MeanAbsPctError(pred, actual []float64) float64 {
	if len(pred) == 0 || len(pred) != len(actual) {
		return math.NaN()
	}
	var s float64
	var n int
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n) * 100
}

// BoxStats is a five-number summary for the box-and-whisker plots of
// Figs. 9 and 10.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box computes the five-number summary of values.
func Box(values []float64) BoxStats {
	if len(values) == 0 {
		return BoxStats{}
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	return BoxStats{
		Min:    v[0],
		Q1:     quantile(v, 0.25),
		Median: quantile(v, 0.5),
		Q3:     quantile(v, 0.75),
		Max:    v[len(v)-1],
	}
}

// quantile interpolates the q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
