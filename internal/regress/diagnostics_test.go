package regress

import (
	"math"
	"math/rand"
	"testing"
)

func independentColumns(n int, rng *rand.Rand) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{a, b}
		y[i] = 2*a - b + 0.1*rng.NormFloat64()
	}
	return x, y
}

func TestVIFIndependentColumnsNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := independentColumns(500, rng)
	vifs, err := VIF(x)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range vifs {
		if v < 1 || v > 1.1 {
			t.Errorf("VIF[%d] = %g, want ≈ 1 for independent columns", j, v)
		}
	}
}

func TestVIFDetectsCollinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([][]float64, 300)
	for i := range x {
		a := rng.NormFloat64()
		// Column 1 is column 0 plus small noise: severe collinearity.
		x[i] = []float64{a, a + 0.01*rng.NormFloat64(), rng.NormFloat64()}
	}
	vifs, err := VIF(x)
	if err != nil {
		t.Fatal(err)
	}
	if vifs[0] < 10 || vifs[1] < 10 {
		t.Errorf("collinear columns have VIF %g, %g; want ≫ 10", vifs[0], vifs[1])
	}
	if vifs[2] > 2 {
		t.Errorf("independent column VIF %g, want small", vifs[2])
	}
	top, err := TopCollinear(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if (top[0] != 0 && top[0] != 1) || (top[1] != 0 && top[1] != 1) {
		t.Errorf("TopCollinear = %v, want the collinear pair first", top)
	}
}

func TestVIFExactDependenceIsInf(t *testing.T) {
	x := make([][]float64, 50)
	for i := range x {
		a := float64(i)
		x[i] = []float64{a, 2 * a}
	}
	vifs, err := VIF(x)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(vifs[0], 1) || !math.IsInf(vifs[1], 1) {
		t.Errorf("exactly dependent columns should report +Inf, got %v", vifs)
	}
}

func TestVIFErrors(t *testing.T) {
	if _, err := VIF(nil); err == nil {
		t.Error("VIF(nil) accepted")
	}
	if _, err := VIF([][]float64{{1}}); err == nil {
		t.Error("single-column VIF accepted")
	}
}

func TestStandardizedCoefOrdering(t *testing.T) {
	// y depends strongly on col 0 and weakly on col 1 after
	// standardization, even though the raw coefficient of col 1 is huge
	// (tiny-scale column).
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, 400)
	y := make([]float64, 400)
	for i := range x {
		a := rng.NormFloat64()
		b := rng.NormFloat64() * 1e-4 // tiny scale
		x[i] = []float64{a, b}
		y[i] = 3*a + 100*b + 0.1*rng.NormFloat64()
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	std, err := fit.StandardizedCoef(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(std[0]) <= math.Abs(std[1]) {
		t.Errorf("standardized |beta0| %g should dominate |beta1| %g", std[0], std[1])
	}
	if math.Abs(fit.Coef[1]) <= math.Abs(fit.Coef[0]) {
		t.Errorf("raw coefficient of the tiny column should be large (%g vs %g)", fit.Coef[1], fit.Coef[0])
	}
	if _, err := fit.StandardizedCoef(x[:10], y[:10]); err == nil {
		t.Error("mismatched data accepted")
	}
}

func TestConditionNumber(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	indep, _ := independentColumns(500, rng)
	cIndep, err := ConditionNumber(indep)
	if err != nil {
		t.Fatal(err)
	}
	if cIndep < 1 || cIndep > 2 {
		t.Errorf("independent columns condition number %g, want ≈ 1", cIndep)
	}

	collinear := make([][]float64, 300)
	for i := range collinear {
		a := rng.NormFloat64()
		collinear[i] = []float64{a, a + 0.001*rng.NormFloat64()}
	}
	cColl, err := ConditionNumber(collinear)
	if err != nil {
		t.Fatal(err)
	}
	if cColl < 100 {
		t.Errorf("collinear condition number %g, want large", cColl)
	}
	if _, err := ConditionNumber(nil); err == nil {
		t.Error("ConditionNumber(nil) accepted")
	}
}

func TestRidgeShrinksCollinearCoefficients(t *testing.T) {
	// Two nearly identical columns: OLS splits the true coefficient
	// arbitrarily (huge opposite-signed pair is typical); ridge shares it.
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := rng.NormFloat64()
		x = append(x, []float64{a, a + 1e-6*rng.NormFloat64()})
		y = append(y, 4*a+0.01*rng.NormFloat64())
	}
	ols, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Ridge(x, y, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	olsNorm := math.Abs(ols.Coef[0]) + math.Abs(ols.Coef[1])
	ridgeNorm := math.Abs(ridge.Coef[0]) + math.Abs(ridge.Coef[1])
	if ridgeNorm >= olsNorm {
		t.Errorf("ridge coefficient norm %g not below OLS %g", ridgeNorm, olsNorm)
	}
	// Ridge still fits well and the shared coefficients sum to ≈ 4.
	if ridge.R2 < 0.99 {
		t.Errorf("ridge R² %g too low", ridge.R2)
	}
	if s := ridge.Coef[0] + ridge.Coef[1]; math.Abs(s-4) > 0.2 {
		t.Errorf("ridge coefficient sum %g, want ≈ 4", s)
	}
}

func TestRidgeLambdaZeroIsOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := independentColumns(100, rng)
	a, err := Ridge(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Coef {
		if math.Abs(a.Coef[j]-b.Coef[j]) > 1e-12 {
			t.Errorf("Ridge(0) coef %d = %g differs from OLS %g", j, a.Coef[j], b.Coef[j])
		}
	}
	if _, err := Ridge(x, y, -1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestRidgeHandlesExactDependence(t *testing.T) {
	// Exactly dependent columns break OLS but not ridge.
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		a := float64(i%7) - 3
		x = append(x, []float64{a, 2 * a})
		y = append(y, a)
	}
	if _, err := OLS(x, y); err == nil {
		t.Fatal("OLS should reject exactly dependent columns")
	}
	fit, err := Ridge(x, y, 0.5)
	if err != nil {
		t.Fatalf("ridge failed on dependent columns: %v", err)
	}
	if fit.R2 < 0.95 {
		t.Errorf("ridge R² %g too low on a noiseless target", fit.R2)
	}
}
