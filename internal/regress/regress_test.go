package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSRecoversKnownModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b})
		y = append(y, 5+2*a-3*b)
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !near(fit.Intercept, 5, 1e-9) || !near(fit.Coef[0], 2, 1e-9) || !near(fit.Coef[1], -3, 1e-9) {
		t.Errorf("fit = %+v, want intercept 5, coefs [2 -3]", fit)
	}
	if !near(fit.R2, 1, 1e-12) || !near(fit.AdjR2, 1, 1e-12) {
		t.Errorf("R2 = %g, AdjR2 = %g, want 1", fit.R2, fit.AdjR2)
	}
	if got := fit.Predict([]float64{1, 1}); !near(got, 4, 1e-9) {
		t.Errorf("Predict = %g, want 4", got)
	}
}

func TestOLSNoisyR2Reasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.NormFloat64()
		x = append(x, []float64{a})
		y = append(y, 3*a+rng.NormFloat64()) // SNR = 9:1 → R² ≈ 0.9
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.85 || fit.R2 > 0.95 {
		t.Errorf("R2 = %g, want ≈ 0.9", fit.R2)
	}
	if fit.AdjR2 >= fit.R2 {
		t.Errorf("AdjR2 %g should be below R2 %g", fit.AdjR2, fit.R2)
	}
}

func TestOLSRejectsBadInput(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("OLS(nil) should fail")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("OLS with length mismatch should fail")
	}
	// Too few observations for the variable count.
	if _, err := OLS([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err == nil {
		t.Error("OLS with n <= p+1 should fail")
	}
	// Constant column duplicates the intercept.
	x := [][]float64{{1}, {1}, {1}, {1}}
	if _, err := OLS(x, []float64{1, 2, 3, 4}); err == nil {
		t.Error("OLS with constant column should fail (collinear with intercept)")
	}
}

func TestForwardSelectFindsTrueVariables(t *testing.T) {
	// y depends on columns 2 and 5 out of 10; forward selection must
	// pick them first.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		row := make([]float64, 10)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x = append(x, row)
		y = append(y, 4*row[2]-2*row[5]+0.01*rng.NormFloat64())
	}
	sel, err := ForwardSelect(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != 4 {
		t.Fatalf("selected %d variables, want 4", len(sel.Indices))
	}
	first2 := map[int]bool{sel.Indices[0]: true, sel.Indices[1]: true}
	if !first2[2] || !first2[5] {
		t.Errorf("first two selections %v, want {2, 5}", sel.Indices[:2])
	}
	if sel.Fit.AdjR2 < 0.999 {
		t.Errorf("AdjR2 = %g, want ≈ 1", sel.Fit.AdjR2)
	}
	if best := sel.Best(); best < 2 {
		t.Errorf("Best() = %d, want ≥ 2", best)
	}
}

func TestForwardSelectStepsMonotoneCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		x = append(x, row)
		y = append(y, row[0]+rng.NormFloat64())
	}
	sel, err := ForwardSelect(x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Steps) != len(sel.Indices) {
		t.Errorf("%d steps vs %d indices", len(sel.Steps), len(sel.Indices))
	}
	// R² (unadjusted) never decreases as variables are added.
	for i := 1; i < len(sel.Steps); i++ {
		if sel.Steps[i].R2 < sel.Steps[i-1].R2-1e-12 {
			t.Errorf("R2 decreased at step %d: %g -> %g", i, sel.Steps[i-1].R2, sel.Steps[i].R2)
		}
	}
}

func TestForwardSelectSkipsDegenerateColumns(t *testing.T) {
	// Column 0 is all zeros, column 1 duplicates column 2; selection must
	// still succeed using the informative columns.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		v := rng.NormFloat64()
		w := rng.NormFloat64()
		x = append(x, []float64{0, v, v, w})
		y = append(y, 2*v-w+0.01*rng.NormFloat64())
	}
	sel, err := ForwardSelect(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range sel.Indices {
		if idx == 0 {
			t.Error("selection picked the all-zero column")
		}
	}
	if len(sel.Indices) < 2 {
		t.Errorf("selected %d variables, want ≥ 2", len(sel.Indices))
	}
}

func TestForwardSelectErrors(t *testing.T) {
	if _, err := ForwardSelect(nil, nil, 3); err == nil {
		t.Error("ForwardSelect with no observations should fail")
	}
	if _, err := ForwardSelect([][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Error("ForwardSelect with maxVars 0 should fail")
	}
	// All-zero feature matrix: nothing usable.
	x := [][]float64{{0}, {0}, {0}, {0}}
	if _, err := ForwardSelect(x, []float64{1, 2, 3, 4}, 1); err == nil {
		t.Error("ForwardSelect over all-zero features should fail")
	}
}

func TestErrorMetrics(t *testing.T) {
	pred := []float64{110, 90, 100}
	act := []float64{100, 100, 100}
	if got := MeanAbsError(pred, act); !near(got, 20.0/3, 1e-12) {
		t.Errorf("MeanAbsError = %g, want %g", got, 20.0/3)
	}
	if got := MeanAbsPctError(pred, act); !near(got, 20.0/3, 1e-12) {
		t.Errorf("MeanAbsPctError = %g, want %g", got, 20.0/3)
	}
	if !math.IsNaN(MeanAbsError(nil, nil)) {
		t.Error("MeanAbsError(nil) should be NaN")
	}
	if !math.IsNaN(MeanAbsPctError([]float64{1}, []float64{0})) {
		t.Error("MeanAbsPctError with zero actuals should be NaN")
	}
}

func TestBoxStats(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 {
		t.Errorf("Box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %g, %g, want 2, 4", b.Q1, b.Q3)
	}
	if got := Box([]float64{7}); got.Min != 7 || got.Max != 7 || got.Median != 7 {
		t.Errorf("Box single = %+v", got)
	}
	if got := Box(nil); got != (BoxStats{}) {
		t.Errorf("Box(nil) = %+v, want zero", got)
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		b := Box(vals)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictIgnoresExtraFeatures(t *testing.T) {
	fit := &Fit{Intercept: 1, Coef: []float64{2}}
	if got := fit.Predict([]float64{3, 99}); got != 7 {
		t.Errorf("Predict = %g, want 7", got)
	}
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }
