package regress

import (
	"sync/atomic"

	"gpuperf/internal/obs"
)

// Forward-selection instrumentation. ForwardSelect is a package-level
// function with no harness handle to hang a recorder on, so the observer
// is process-wide: Observe installs it (push/restore idiom), and the
// selection exit path reads it with one atomic load — unobserved runs pay
// nothing else.
type regObs struct {
	selections *obs.Counter
	steps      *obs.Counter
	adjR2      *obs.Histogram
}

var regObsPtr atomic.Pointer[regObs]

// Observe installs forward-selection instrumentation backed by reg and
// returns a restore function (defer Observe(reg)()). Passing nil detaches.
// Campaigns observing different registries must not run concurrently.
func Observe(reg *obs.Registry) (restore func()) {
	prev := regObsPtr.Load()
	if reg == nil {
		regObsPtr.Store(nil)
	} else {
		regObsPtr.Store(&regObs{
			selections: reg.Counter("regress_forward_selections_total", "forward-selection runs completed"),
			steps:      reg.Counter("regress_forward_steps_total", "variables accepted across all selections"),
			adjR2: reg.Histogram("regress_adj_r2_step", "adjusted R-squared after each accepted variable",
				[]float64{0, 0.5, 0.75, 0.9, 0.95, 0.99, 1}),
		})
	}
	return func() { regObsPtr.Store(prev) }
}

// observeSelection records one completed forward selection: the run, its
// accepted-variable count, and the adjusted-R² trajectory.
func observeSelection(sel *Selection) {
	o := regObsPtr.Load()
	if o == nil {
		return
	}
	o.selections.Inc()
	o.steps.Add(int64(len(sel.Steps)))
	for _, st := range sel.Steps {
		o.adjR2.Observe(st.AdjR2)
	}
}
