package sched

import (
	"math"
	"math/rand"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

func opt(core, mem arch.FreqLevel, t, e float64) Option {
	return Option{Pair: clock.Pair{Core: core, Mem: mem}, TimeS: t, EnergyJ: e}
}

func twoPointJob(name string, fastT, fastE, slowT, slowE float64) Job {
	return Job{Name: name, Options: []Option{
		opt(arch.FreqHigh, arch.FreqHigh, fastT, fastE),
		opt(arch.FreqMid, arch.FreqHigh, slowT, slowE),
	}}
}

func TestUnlimitedBudgetPicksFastest(t *testing.T) {
	jobs := []Job{
		twoPointJob("a", 1, 100, 2, 60),
		twoPointJob("b", 3, 300, 5, 180),
	}
	p, err := MinimizeTime(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible || p.TotalTimeS != 4 || p.TotalEnergyJ != 400 {
		t.Errorf("plan %+v, want fastest points (4 s, 400 J)", p)
	}
}

func TestBudgetForcesSlowPoints(t *testing.T) {
	jobs := []Job{
		twoPointJob("a", 1, 100, 2, 60),
		twoPointJob("b", 3, 300, 5, 180),
	}
	// 300 J: both slow = 240 J / 7 s; a fast + b slow = 280 J / 6 s also
	// fits and is faster — the optimum.
	p, err := MinimizeTime(jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatal("280 J configuration exists within 300 J budget")
	}
	if p.TotalEnergyJ != 280 || p.TotalTimeS != 6 {
		t.Errorf("plan (%g s, %g J), want a-fast/b-slow (6 s, 280 J)", p.TotalTimeS, p.TotalEnergyJ)
	}
	// 250 J: only both-slow fits.
	p, err = MinimizeTime(jobs, 250)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalTimeS != 7 || p.TotalEnergyJ != 240 {
		t.Errorf("plan (%g s, %g J), want both slow (7 s, 240 J)", p.TotalTimeS, p.TotalEnergyJ)
	}
	// 460 J: upgrade the job with the best time saving per joule —
	// b fast (+120 J, −2 s) vs a fast (+40 J, −1 s); both fit? 240+120=360
	// then +40=400 ≤ 460 → both fast = 400 J, 4 s.
	p, err = MinimizeTime(jobs, 460)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalTimeS != 4 || p.TotalEnergyJ != 400 {
		t.Errorf("plan %+v, want both fast", p)
	}
	// 390 J: only one upgrade fits; the optimum takes b fast (360 J, 5 s)
	// over a fast (280 J, 6 s).
	p, err = MinimizeTime(jobs, 390)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalTimeS != 5 || p.TotalEnergyJ != 360 {
		t.Errorf("plan %+v, want b fast / a slow (5 s, 360 J)", p)
	}
}

func TestInfeasibleBudgetReportsMinEnergyPlan(t *testing.T) {
	jobs := []Job{twoPointJob("a", 1, 100, 2, 60)}
	p, err := MinimizeTime(jobs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible {
		t.Error("10 J budget reported feasible")
	}
	if p.TotalEnergyJ != 60 {
		t.Errorf("fallback plan energy %g, want the 60 J minimum", p.TotalEnergyJ)
	}
}

func TestDominatedOptionsNeverChosen(t *testing.T) {
	jobs := []Job{{Name: "a", Options: []Option{
		opt(arch.FreqHigh, arch.FreqHigh, 1, 100),
		opt(arch.FreqMid, arch.FreqMid, 2, 120), // slower AND hungrier
		opt(arch.FreqMid, arch.FreqHigh, 2, 70),
	}}}
	p, err := MinimizeTime(jobs, 80)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Assignments[0].Option; got.EnergyJ == 120 {
		t.Error("planner chose a dominated option")
	}
}

func TestErrors(t *testing.T) {
	if _, err := MinimizeTime(nil, 100); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := MinimizeTime([]Job{{Name: "x"}}, 100); err == nil {
		t.Error("job without options accepted")
	}
}

func TestMinimizeEnergyUnderDeadline(t *testing.T) {
	jobs := []Job{
		twoPointJob("a", 1, 100, 2, 60),
		twoPointJob("b", 3, 300, 5, 180),
	}
	// Deadline 6 s: a slow + b fast (5 s? a slow 2 + b fast 3 = 5 s,
	// 360 J) vs a fast + b slow (6 s, 280 J) — minimum energy within 6 s
	// is 280 J.
	p, err := MinimizeEnergy(jobs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible || p.TotalTimeS > 6 {
		t.Fatalf("plan misses the deadline: %+v", p)
	}
	if p.TotalEnergyJ != 280 {
		t.Errorf("energy %g, want 280", p.TotalEnergyJ)
	}
}

func TestMatchesBruteForceProperty(t *testing.T) {
	// Property: on random small instances the planner matches exhaustive
	// search exactly.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		nJobs := 2 + rng.Intn(3)
		jobs := make([]Job, nJobs)
		for i := range jobs {
			nOpts := 2 + rng.Intn(3)
			opts := make([]Option, nOpts)
			for k := range opts {
				opts[k] = opt(arch.FreqLevel(k%3), arch.FreqHigh,
					1+rng.Float64()*9, 50+rng.Float64()*250)
			}
			jobs[i] = Job{Name: "j", Options: opts}
		}
		budget := 100 + rng.Float64()*600

		got, err := MinimizeTime(jobs, budget)
		if err != nil {
			t.Fatal(err)
		}
		bestT, feasible := bruteForce(jobs, budget)
		if feasible != got.Feasible {
			t.Fatalf("trial %d: feasibility %v vs brute force %v", trial, got.Feasible, feasible)
		}
		if feasible && math.Abs(got.TotalTimeS-bestT) > 1e-9 {
			t.Fatalf("trial %d: time %g vs brute-force optimum %g", trial, got.TotalTimeS, bestT)
		}
	}
}

func bruteForce(jobs []Job, budget float64) (bestT float64, feasible bool) {
	bestT = math.Inf(1)
	var walk func(i int, tSum, eSum float64)
	walk = func(i int, tSum, eSum float64) {
		if eSum > budget+1e-9 {
			return
		}
		if i == len(jobs) {
			feasible = true
			if tSum < bestT {
				bestT = tSum
			}
			return
		}
		for _, o := range jobs[i].Options {
			walk(i+1, tSum+o.TimeS, eSum+o.EnergyJ)
		}
	}
	walk(0, 0, 0)
	return bestT, feasible
}

func TestPlanFromRealSweeps(t *testing.T) {
	// End to end: build job options from measured sweeps on a GTX 680 and
	// plan a three-job batch under a realistic energy budget.
	dev, err := driver.OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	dev.Seed(42)
	var jobs []Job
	for _, name := range []string{"backprop", "streamcluster", "sgemm"} {
		sw, err := characterize.SweepBenchmark(dev, workloads.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		j := Job{Name: name}
		for _, pr := range sw.Pairs {
			j.Options = append(j.Options, Option{Pair: pr.Pair, TimeS: pr.TimePerIter, EnergyJ: pr.EnergyPerIter})
		}
		jobs = append(jobs, j)
	}

	fast, err := MinimizeTime(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := MinimizeTime(jobs, fast.TotalEnergyJ*0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Feasible {
		t.Fatal("80% of the all-fast energy should be reachable on Kepler")
	}
	if tight.TotalEnergyJ > fast.TotalEnergyJ*0.8+1e-9 {
		t.Error("plan exceeds the energy budget")
	}
	if tight.TotalTimeS < fast.TotalTimeS {
		t.Error("tighter budget cannot be faster")
	}
}
