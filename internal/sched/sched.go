// Package sched plans DVFS settings for a batch of GPU jobs under an
// energy budget — the optimization the paper's related work gestures at
// (Lee et al.: throughput under power constraints; Ma et al.: coordinated
// energy management) rebuilt on top of this library's per-pair
// measurements or model predictions.
//
// The problem: jobs run back to back on one GPU; each job may run at any
// of its board's frequency pairs, with known (measured or predicted) time
// and energy per pair. Minimize total completion time subject to a total
// energy budget. This is the discrete time-cost tradeoff problem; Plan
// solves it exactly for practical batch sizes with branch and bound over
// per-job efficient frontiers, falling back gracefully when the budget is
// infeasible.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gpuperf/internal/clock"
)

// Option is one admissible operating point of a job.
type Option struct {
	Pair    clock.Pair
	TimeS   float64 // seconds
	EnergyJ float64 // joules
}

// Job is one batch entry with its operating points.
type Job struct {
	Name    string
	Options []Option
}

// Assignment is the planner's choice for one job.
type Assignment struct {
	Job    string
	Option Option
}

// Plan is a scheduled batch.
type Plan struct {
	Assignments  []Assignment
	TotalTimeS   float64
	TotalEnergyJ float64
	// Feasible is false when even the all-minimum-energy configuration
	// exceeds the budget; the plan then holds that configuration.
	Feasible bool
}

// ErrNoOptions is returned when a job has no operating points.
var ErrNoOptions = errors.New("sched: job with no options")

// MinimizeTime picks per-job operating points minimizing total time under
// the energy budget (joules). A budget of 0 or below disables the
// constraint (every job runs at its fastest point).
func MinimizeTime(jobs []Job, budgetJ float64) (*Plan, error) {
	if len(jobs) == 0 {
		return nil, errors.New("sched: empty batch")
	}
	// Reduce each job to its efficient frontier: sort by time; an option
	// is dominated if a faster-or-equal option uses no more energy.
	fronts := make([][]Option, len(jobs))
	for i, j := range jobs {
		if len(j.Options) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNoOptions, j.Name)
		}
		fronts[i] = frontier(j.Options)
	}

	if budgetJ <= 0 {
		plan := &Plan{Feasible: true}
		for i, j := range jobs {
			best := fronts[i][0] // fastest after frontier sort
			plan.add(j.Name, best)
		}
		return plan, nil
	}

	// Branch and bound over frontiers, jobs in order. Lower bound for the
	// remaining jobs: sum of their fastest times; energy bound: sum of
	// their minimum energies.
	n := len(jobs)
	minEnergyTail := make([]float64, n+1)
	minTimeTail := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		var minE, minT float64
		minE, minT = math.Inf(1), math.Inf(1)
		for _, o := range fronts[i] {
			minE = math.Min(minE, o.EnergyJ)
			minT = math.Min(minT, o.TimeS)
		}
		minEnergyTail[i] = minEnergyTail[i+1] + minE
		minTimeTail[i] = minTimeTail[i+1] + minT
	}

	best := math.Inf(1)
	bestChoice := make([]int, n)
	choice := make([]int, n)
	feasible := false

	var walk func(i int, timeSoFar, energySoFar float64)
	walk = func(i int, timeSoFar, energySoFar float64) {
		if timeSoFar+minTimeTail[i] >= best {
			return // cannot improve
		}
		if energySoFar+minEnergyTail[i] > budgetJ+1e-9 {
			return // cannot fit the budget
		}
		if i == n {
			best = timeSoFar
			copy(bestChoice, choice)
			feasible = true
			return
		}
		for oi, o := range fronts[i] {
			choice[i] = oi
			walk(i+1, timeSoFar+o.TimeS, energySoFar+o.EnergyJ)
		}
	}
	walk(0, 0, 0)

	plan := &Plan{Feasible: feasible}
	if !feasible {
		// Budget unsatisfiable: report the all-minimum-energy plan.
		for i, j := range jobs {
			minIdx := 0
			for oi, o := range fronts[i] {
				if o.EnergyJ < fronts[i][minIdx].EnergyJ {
					minIdx = oi
				}
			}
			plan.add(j.Name, fronts[i][minIdx])
		}
		return plan, nil
	}
	for i, j := range jobs {
		plan.add(j.Name, fronts[i][bestChoice[i]])
	}
	return plan, nil
}

// MinimizeEnergy picks per-job operating points minimizing total energy
// under a total-time budget (seconds); the symmetric problem.
func MinimizeEnergy(jobs []Job, deadlineS float64) (*Plan, error) {
	// Swap the roles of time and energy and reuse the solver.
	swapped := make([]Job, len(jobs))
	for i, j := range jobs {
		opts := make([]Option, len(j.Options))
		for k, o := range j.Options {
			opts[k] = Option{Pair: o.Pair, TimeS: o.EnergyJ, EnergyJ: o.TimeS}
		}
		swapped[i] = Job{Name: j.Name, Options: opts}
	}
	p, err := MinimizeTime(swapped, deadlineS)
	if err != nil {
		return nil, err
	}
	out := &Plan{Feasible: p.Feasible}
	for _, a := range p.Assignments {
		out.add(a.Job, Option{Pair: a.Option.Pair, TimeS: a.Option.EnergyJ, EnergyJ: a.Option.TimeS})
	}
	return out, nil
}

func (p *Plan) add(job string, o Option) {
	p.Assignments = append(p.Assignments, Assignment{Job: job, Option: o})
	p.TotalTimeS += o.TimeS
	p.TotalEnergyJ += o.EnergyJ
}

// frontier returns the Pareto-efficient options sorted by ascending time.
func frontier(opts []Option) []Option {
	sorted := append([]Option(nil), opts...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].TimeS != sorted[b].TimeS { //gpulint:ignore unitsafety -- sort comparator; exact tie-break keeps the order total
			return sorted[a].TimeS < sorted[b].TimeS
		}
		return sorted[a].EnergyJ < sorted[b].EnergyJ
	})
	var out []Option
	bestE := math.Inf(1)
	for _, o := range sorted {
		if o.EnergyJ < bestE-1e-15 {
			out = append(out, o)
			bestE = o.EnergyJ
		}
	}
	return out
}
