package arch

import "testing"

func TestRadeonSpecValidates(t *testing.T) {
	s := RadeonHD7970()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Generation != GCN {
		t.Errorf("generation %v, want GCN", s.Generation)
	}
	if s.Generation.String() != "GCN" {
		t.Errorf("GCN.String() = %q", s.Generation.String())
	}
	if got := s.TotalCores(); got != 2048 {
		t.Errorf("%d stream processors, want 2048", got)
	}
	if s.WarpSize != 64 {
		t.Errorf("wavefront size %d, want 64", s.WarpSize)
	}
}

func TestRadeonNotInPaperBoardSet(t *testing.T) {
	// The paper's tables cover the four GeForce boards only; the Radeon
	// is the future-work extension and must not leak into AllBoards.
	for _, s := range AllBoards() {
		if s.Generation == GCN {
			t.Fatalf("AllBoards contains the future-work board %s", s.Name)
		}
	}
	if BoardByName("Radeon HD 7970") != nil {
		t.Error("BoardByName should not resolve the Radeon (paper set only)")
	}
}

func TestRadeonVoltageHeadroomBetweenFermiAndKepler(t *testing.T) {
	// 28 nm like Kepler: its mid-level core energy scale should sit well
	// below Tesla's (headroom exists) but need not match Kepler's.
	r := RadeonHD7970()
	vm := r.CoreVoltage(FreqMid) / r.CoreVoltHigh
	if vm*vm > 0.85 {
		t.Errorf("Radeon mid-level V² ratio %.2f: no DVFS headroom modeled", vm*vm)
	}
}

func TestRadeonBandwidthDerivation(t *testing.T) {
	r := RadeonHD7970()
	got := r.DerivedBandwidthGBs(FreqHigh)
	if ratio := got / r.MemBandwidthGBs; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("derived bandwidth %.1f GB/s vs spec %.1f GB/s", got, r.MemBandwidthGBs)
	}
}
