package arch

// The paper's stated future work is validating the unified models across
// vendors ("as NVIDIA's Kepler and AMD's Radeon", Section IV-B). This file
// provides that extension: a Radeon HD 7970 (GCN, Tahiti) descriptor that
// exercises the same pipeline — VBIOS synthesis, DVFS sweep, counter
// collection, model training — on a non-NVIDIA microarchitecture. The
// board is deliberately *not* part of AllBoards(): the paper's tables and
// figures cover the four GeForce boards only; the Radeon flows through the
// FutureWork benches and tests.

// GCN is the AMD Graphics Core Next generation (Radeon HD 7000 series).
const GCN Generation = 3

// RadeonHD7970 returns the AMD Radeon HD 7970 (Tahiti XT) spec.
//
// Vendor figures: 2048 stream processors (32 CUs × 64), 3.79 TFLOPS
// single precision, 264 GB/s over a 384-bit GDDR5 interface, 250 W TDP.
// The PowerPlay levels stand in for the H/M/L clock table.
func RadeonHD7970() *Spec {
	return &Spec{
		Name:       "Radeon HD 7970",
		Generation: GCN,

		// A GCN compute unit runs 64-lane wavefronts over four 16-lane
		// SIMDs; we model a CU as an "SM" with WarpSize 64.
		SMCount:         32,
		CoresPerSM:      64,
		WarpSize:        64,
		MaxWarpsPerSM:   40, // wavefronts per CU
		MaxBlocksPerSM:  16,
		SchedulersPerSM: 4,
		IssuePerSched:   1,

		SharedMemPerSM: 64 << 10, // LDS
		RegistersPerSM: 65536,

		ALUThroughput: 64.0 / 64, // one wavefront-instruction per cycle per CU
		SFUThroughput: 16.0 / 64,
		DPThroughput:  16.0 / 64, // Tahiti's strong 1/4-rate DP
		LSUThroughput: 16.0 / 64,

		L1PerSM:       16 << 10,
		L2Size:        768 << 10,
		L1LatencyCyc:  40,
		L2LatencyCyc:  190,
		DRAMLatencyNS: 280,
		LineSize:      64, // GCN's 64 B cache lines

		MemBusWidthBits: 384,
		MemDataRate:     4, // GDDR5 quad-pumped relative to the 1375 MHz command clock

		PeakGFLOPS:      3789,
		MemBandwidthGBs: 264,
		TDPWatts:        250,

		// PowerPlay DPM levels: 300/501/925 MHz engine,
		// 150/675/1375 MHz memory.
		CoreFreqsMHz: [3]float64{300, 501, 925},
		MemFreqsMHz:  [3]float64{150, 675, 1375},
		ValidPairs: [3][3]bool{
			FreqLow:  {FreqLow: true, FreqMid: true, FreqHigh: false},
			FreqMid:  {FreqLow: true, FreqMid: true, FreqHigh: true},
			FreqHigh: {FreqLow: false, FreqMid: true, FreqHigh: true},
		},

		// 28 nm like Kepler, with a similar (slightly shallower) headroom.
		CoreVoltHigh: 1.17, CoreVoltLow: 0.85,
		MemVoltHigh: 1.60, MemVoltLow: 1.35,
		VoltExponent: 2.2,

		EnergyPerWarpInst:  1.4, // per 64-lane wavefront instruction
		EnergyPerALU:       2.2,
		EnergyPerSFU:       4.8,
		EnergyPerDP:        6.5,
		EnergyPerLSU:       1.8,
		EnergyPerSharedAcc: 1.2,
		EnergyPerL1Access:  1.0,
		EnergyPerL2Access:  2.8,
		EnergyPerDRAMTxn:   11.0, // 64 B transactions
		CoreLeakWatts:      30,
		MemLeakWatts:       10,
		CoreIdleWatts:      14,
		MemIdleWatts:       24,

		TimingIrregularity: 0.10,
	}
}
