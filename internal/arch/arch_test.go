package arch

import (
	"testing"
	"testing/quick"
)

func TestGenerationString(t *testing.T) {
	cases := map[Generation]string{
		Tesla:          "Tesla",
		Fermi:          "Fermi",
		Kepler:         "Kepler",
		Generation(42): "Generation(42)",
	}
	for g, want := range cases {
		if got := g.String(); got != want {
			t.Errorf("Generation(%d).String() = %q, want %q", int(g), got, want)
		}
	}
}

func TestFreqLevelString(t *testing.T) {
	cases := map[FreqLevel]string{
		FreqLow:      "L",
		FreqMid:      "M",
		FreqHigh:     "H",
		FreqLevel(9): "FreqLevel(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("FreqLevel(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestLevelsAscending(t *testing.T) {
	ls := Levels()
	if len(ls) != 3 {
		t.Fatalf("Levels() returned %d levels, want 3", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Errorf("Levels()[%d] = %v not above Levels()[%d] = %v", i, ls[i], i-1, ls[i-1])
		}
	}
}

func TestAllBoardsValidate(t *testing.T) {
	boards := AllBoards()
	if len(boards) != 4 {
		t.Fatalf("AllBoards() returned %d boards, want 4", len(boards))
	}
	for _, s := range boards {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v", s.Name, err)
		}
	}
}

func TestTableISpecs(t *testing.T) {
	cases := []struct {
		spec      *Spec
		gen       Generation
		cores     int
		gflops    float64
		bwGBs     float64
		tdp       float64
		coreFreqs [3]float64
		memFreqs  [3]float64
	}{
		{GTX285(), Tesla, 240, 933, 159.0, 183, [3]float64{600, 800, 1296}, [3]float64{100, 300, 1284}},
		{GTX460(), Fermi, 336, 907, 115.2, 160, [3]float64{100, 810, 1350}, [3]float64{135, 324, 1800}},
		{GTX480(), Fermi, 480, 1350, 177.0, 250, [3]float64{100, 810, 1400}, [3]float64{135, 324, 1848}},
		{GTX680(), Kepler, 1536, 3090, 192.2, 195, [3]float64{648, 1080, 1411}, [3]float64{324, 810, 3004}},
	}
	for _, c := range cases {
		s := c.spec
		if s.Generation != c.gen {
			t.Errorf("%s: generation %v, want %v", s.Name, s.Generation, c.gen)
		}
		if got := s.TotalCores(); got != c.cores {
			t.Errorf("%s: %d cores, want %d", s.Name, got, c.cores)
		}
		if s.PeakGFLOPS != c.gflops {
			t.Errorf("%s: %g GFLOPS, want %g", s.Name, s.PeakGFLOPS, c.gflops)
		}
		if s.MemBandwidthGBs != c.bwGBs {
			t.Errorf("%s: %g GB/s, want %g", s.Name, s.MemBandwidthGBs, c.bwGBs)
		}
		if s.TDPWatts != c.tdp {
			t.Errorf("%s: TDP %g W, want %g", s.Name, s.TDPWatts, c.tdp)
		}
		if s.CoreFreqsMHz != c.coreFreqs {
			t.Errorf("%s: core freqs %v, want %v", s.Name, s.CoreFreqsMHz, c.coreFreqs)
		}
		if s.MemFreqsMHz != c.memFreqs {
			t.Errorf("%s: mem freqs %v, want %v", s.Name, s.MemFreqsMHz, c.memFreqs)
		}
	}
}

func TestTableIIIPairCounts(t *testing.T) {
	// Table III: GTX 285 exposes 8 pairs, the others 7.
	want := map[string]int{"GTX 285": 8, "GTX 460": 7, "GTX 480": 7, "GTX 680": 7}
	for _, s := range AllBoards() {
		n := 0
		for _, c := range Levels() {
			for _, m := range Levels() {
				if s.PairValid(c, m) {
					n++
				}
			}
		}
		if n != want[s.Name] {
			t.Errorf("%s: %d valid pairs, want %d", s.Name, n, want[s.Name])
		}
	}
}

func TestTableIIISpecificPairs(t *testing.T) {
	g285, g460, g480, g680 := GTX285(), GTX460(), GTX480(), GTX680()
	// Rows of Table III that differ between boards.
	if !g285.PairValid(FreqLow, FreqHigh) || !g680.PairValid(FreqLow, FreqHigh) {
		t.Error("(Core-L, Mem-H) should be valid on GTX 285 and GTX 680")
	}
	if g460.PairValid(FreqLow, FreqHigh) || g480.PairValid(FreqLow, FreqHigh) {
		t.Error("(Core-L, Mem-H) should be invalid on the Fermi boards")
	}
	if !g285.PairValid(FreqLow, FreqMid) {
		t.Error("(Core-L, Mem-M) should be valid on GTX 285")
	}
	if g285.PairValid(FreqLow, FreqLow) {
		t.Error("(Core-L, Mem-L) should be invalid on GTX 285")
	}
	if !g460.PairValid(FreqLow, FreqLow) || !g480.PairValid(FreqLow, FreqLow) {
		t.Error("(Core-L, Mem-L) should be valid on the Fermi boards")
	}
	if g680.PairValid(FreqLow, FreqLow) || g680.PairValid(FreqLow, FreqMid) {
		t.Error("(Core-L, Mem-L/M) should be invalid on GTX 680")
	}
}

func TestVoltageMonotone(t *testing.T) {
	for _, s := range AllBoards() {
		prevC, prevM := 0.0, 0.0
		for _, l := range Levels() {
			vc, vm := s.CoreVoltage(l), s.MemVoltage(l)
			if vc < prevC {
				t.Errorf("%s: core voltage not monotone at level %v", s.Name, l)
			}
			if vm < prevM {
				t.Errorf("%s: mem voltage not monotone at level %v", s.Name, l)
			}
			prevC, prevM = vc, vm
		}
		if got := s.CoreVoltage(FreqHigh); got != s.CoreVoltHigh {
			t.Errorf("%s: CoreVoltage(H) = %g, want %g", s.Name, got, s.CoreVoltHigh)
		}
		if got := s.CoreVoltage(FreqLow); got != s.CoreVoltLow {
			t.Errorf("%s: CoreVoltage(L) = %g, want %g", s.Name, got, s.CoreVoltLow)
		}
	}
}

func TestKeplerVoltagePremium(t *testing.T) {
	// The Kepler curve is convex: the mid-level voltage must sit below
	// the linear interpolation between Low and High, i.e. the top bin
	// pays a premium. This is the enabler of the paper's 75% result.
	s := GTX680()
	fL, fM, fH := s.CoreFreqsMHz[FreqLow], s.CoreFreqsMHz[FreqMid], s.CoreFreqsMHz[FreqHigh]
	tt := (fM - fL) / (fH - fL)
	linear := s.CoreVoltLow + tt*(s.CoreVoltHigh-s.CoreVoltLow)
	if got := s.CoreVoltage(FreqMid); got >= linear {
		t.Errorf("GTX 680 CoreVoltage(M) = %g, want below linear %g", got, linear)
	}
	// Tesla is linear by construction.
	s285 := GTX285()
	fL, fM, fH = s285.CoreFreqsMHz[FreqLow], s285.CoreFreqsMHz[FreqMid], s285.CoreFreqsMHz[FreqHigh]
	tt = (fM - fL) / (fH - fL)
	linear = s285.CoreVoltLow + tt*(s285.CoreVoltHigh-s285.CoreVoltLow)
	if got := s285.CoreVoltage(FreqMid); !closeTo(got, linear, 1e-12) {
		t.Errorf("GTX 285 CoreVoltage(M) = %g, want linear %g", got, linear)
	}
}

func TestDerivedBandwidthMatchesTableI(t *testing.T) {
	for _, s := range AllBoards() {
		got := s.DerivedBandwidthGBs(FreqHigh)
		if ratio := got / s.MemBandwidthGBs; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: derived bandwidth %.1f GB/s vs Table I %.1f GB/s", s.Name, got, s.MemBandwidthGBs)
		}
	}
}

func TestDerivedBandwidthScalesWithMemClock(t *testing.T) {
	s := GTX680()
	bwH := s.DerivedBandwidthGBs(FreqHigh)
	bwL := s.DerivedBandwidthGBs(FreqLow)
	wantRatio := s.MemFreqsMHz[FreqLow] / s.MemFreqsMHz[FreqHigh]
	if got := bwL / bwH; !closeTo(got, wantRatio, 1e-9) {
		t.Errorf("bandwidth ratio L/H = %g, want %g", got, wantRatio)
	}
}

func TestBoardByName(t *testing.T) {
	for _, s := range AllBoards() {
		got := BoardByName(s.Name)
		if got == nil || got.Name != s.Name {
			t.Errorf("BoardByName(%q) failed", s.Name)
		}
	}
	if BoardByName("GTX 9999") != nil {
		t.Error("BoardByName of unknown board should be nil")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero SMs", func(s *Spec) { s.SMCount = 0 }},
		{"zero warp size", func(s *Spec) { s.WarpSize = 0 }},
		{"zero line size", func(s *Spec) { s.LineSize = 0 }},
		{"descending core freqs", func(s *Spec) { s.CoreFreqsMHz = [3]float64{1400, 810, 100} }},
		{"descending mem freqs", func(s *Spec) { s.MemFreqsMHz = [3]float64{1848, 324, 135} }},
		{"zero low freq", func(s *Spec) { s.CoreFreqsMHz[FreqLow] = 0 }},
		{"invalid default pair", func(s *Spec) { s.ValidPairs[FreqHigh][FreqHigh] = false }},
		{"inverted core voltage", func(s *Spec) { s.CoreVoltLow = s.CoreVoltHigh + 1 }},
		{"zero mem voltage", func(s *Spec) { s.MemVoltLow = 0 }},
		{"bandwidth mismatch", func(s *Spec) { s.MemBusWidthBits /= 2 }},
		{"fermi without caches", func(s *Spec) { s.L2Size = 0 }},
	}
	for _, m := range mutations {
		s := GTX480()
		m.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("Validate() accepted spec with %s", m.name)
		}
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestVoltageInterpolationProperty(t *testing.T) {
	// Property: for any frequency level the voltage lies within
	// [VoltLow, VoltHigh] on every board.
	f := func(li uint8) bool {
		l := FreqLevel(int(li) % 3)
		for _, s := range AllBoards() {
			vc := s.CoreVoltage(l)
			if vc < s.CoreVoltLow-1e-12 || vc > s.CoreVoltHigh+1e-12 {
				return false
			}
			vm := s.MemVoltage(l)
			if vm < s.MemVoltLow-1e-12 || vm > s.MemVoltHigh+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
