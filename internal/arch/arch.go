// Package arch describes the GPU microarchitectures studied in the paper:
// NVIDIA Tesla, Fermi and Kepler, and the four concrete GeForce boards of
// Table I (GTX 285, GTX 460, GTX 480 and GTX 680).
//
// A Spec is pure data: the timing simulator (internal/gpu), the hardware
// energy model (internal/power) and the clock/DVFS tables (internal/clock)
// are all parameterized by it. Nothing in this package computes; it is the
// single source of truth for "what the hardware looks like".
package arch

import (
	"fmt"
	"math"
)

// Generation identifies a GPU microarchitecture generation.
type Generation int

const (
	// Tesla is the first CUDA-capable generation (GT200 class). No L1/L2
	// data caches, narrow SMs, very limited clock/voltage headroom.
	Tesla Generation = iota
	// Fermi introduced a real cache hierarchy (per-SM L1, shared L2) and
	// wider SMs.
	Fermi
	// Kepler widened the SM (SMX) dramatically and exposed a much wider
	// voltage/frequency range, which is what makes DVFS profitable on it.
	Kepler
)

// String returns the generation's marketing name.
func (g Generation) String() string {
	switch g {
	case Tesla:
		return "Tesla"
	case Fermi:
		return "Fermi"
	case Kepler:
		return "Kepler"
	case GCN:
		return "GCN"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// FreqLevel indexes the vendor-defined performance levels of a clock domain.
// The paper calls them Low, Medium and High (Table I lists the exact MHz).
type FreqLevel int

const (
	// FreqLow is the lowest vendor-defined frequency of a domain.
	FreqLow FreqLevel = iota
	// FreqMid is the intermediate vendor-defined frequency.
	FreqMid
	// FreqHigh is the boot/default frequency of a domain.
	FreqHigh
)

// String returns the paper's one-letter abbreviation (L, M, H).
func (l FreqLevel) String() string {
	switch l {
	case FreqLow:
		return "L"
	case FreqMid:
		return "M"
	case FreqHigh:
		return "H"
	default:
		return fmt.Sprintf("FreqLevel(%d)", int(l))
	}
}

// Levels lists the frequency levels in ascending order.
func Levels() []FreqLevel { return []FreqLevel{FreqLow, FreqMid, FreqHigh} }

// Spec is the full static description of one GPU board. Frequencies are in
// MHz, sizes in bytes, bandwidth in GB/s, power in watts, energies in
// nanojoules per event.
type Spec struct {
	Name       string
	Generation Generation

	// SM topology.
	SMCount         int // streaming multiprocessors
	CoresPerSM      int // scalar CUDA cores per SM
	WarpSize        int // threads per warp (32 on all generations)
	MaxWarpsPerSM   int // resident-warp limit
	MaxBlocksPerSM  int // resident-block limit
	SchedulersPerSM int // warp schedulers per SM
	IssuePerSched   int // instructions issued per scheduler per cycle

	// Per-SM storage limits that bound occupancy.
	SharedMemPerSM int // bytes
	RegistersPerSM int // 32-bit registers

	// Functional-unit throughputs in warp-instructions per SM per core
	// cycle (a warp instruction covers WarpSize threads).
	ALUThroughput float64 // integer/single-precision pipeline
	SFUThroughput float64 // transcendental pipeline
	DPThroughput  float64 // double-precision pipeline
	LSUThroughput float64 // load/store address pipeline

	// Memory hierarchy. Cache sizes of zero mean "absent" (Tesla).
	L1PerSM       int     // bytes
	L2Size        int     // bytes
	L1LatencyCyc  float64 // core cycles
	L2LatencyCyc  float64 // core cycles
	DRAMLatencyNS float64 // nanoseconds at the reference memory clock
	LineSize      int     // bytes per memory transaction

	// DRAM interface.
	MemBusWidthBits int     // aggregate bus width
	MemDataRate     float64 // transfers per memory-clock cycle (GDDR3=2, GDDR5=4)

	// Table I headline figures (informational; bandwidth is also derived
	// from the bus parameters and must agree with this to within a few %).
	PeakGFLOPS      float64
	MemBandwidthGBs float64
	TDPWatts        float64

	// Vendor-defined frequency levels, MHz, indexed by FreqLevel.
	CoreFreqsMHz [3]float64
	MemFreqsMHz  [3]float64

	// ValidPairs marks which (core level, mem level) combinations the
	// BIOS exposes (Table III). Indexed [core][mem].
	ValidPairs [3][3]bool

	// Voltage model: domain voltage at FreqHigh and at FreqLow. Levels in
	// between interpolate as V = Vlow + (Vhigh-Vlow)·t^VoltExponent with
	// t the normalized frequency, so an exponent > 1 makes the top
	// frequency bin pay a disproportionate voltage premium (Kepler boost
	// binning). The width and shape of this curve is the generation's
	// DVFS headroom and is the mechanism behind the paper's headline
	// "Kepler saves far more than Tesla" result.
	CoreVoltHigh, CoreVoltLow float64
	MemVoltHigh, MemVoltLow   float64
	VoltExponent              float64 // ≥ 1; 0 means 1 (linear)

	// Energy model: nanojoules per event at FreqHigh voltage, and static
	// power in watts at FreqHigh voltage. See internal/power.
	EnergyPerWarpInst  float64 // issue + operand collection, per warp inst
	EnergyPerALU       float64 // per warp ALU instruction
	EnergyPerSFU       float64
	EnergyPerDP        float64
	EnergyPerLSU       float64 // address generation, per warp mem inst
	EnergyPerSharedAcc float64 // per shared-memory warp access
	EnergyPerL1Access  float64 // per L1 transaction
	EnergyPerL2Access  float64 // per L2 transaction
	EnergyPerDRAMTxn   float64 // per DRAM transaction (memory domain)
	CoreLeakWatts      float64 // core-domain leakage at CoreVoltHigh
	MemLeakWatts       float64 // memory-domain static power at MemVoltHigh
	CoreIdleWatts      float64 // clock-tree/idle dynamic at FreqHigh
	MemIdleWatts       float64 // DRAM background at FreqHigh

	// TimingIrregularity is the relative magnitude of workload- and
	// clock-dependent execution-time deviations that performance counters
	// cannot explain (partition camping, TLB pathologies, scheduler
	// artifacts). The paper observes that such unpredictable behaviour is
	// large on Tesla and mostly gone on Kepler — it is why the
	// performance-model error falls from 68% to 34% across generations.
	// The simulator applies a deterministic per-(kernel, grid, pair)
	// deviation uniform in ±TimingIrregularity.
	TimingIrregularity float64
}

// CoreFreqMHz returns the core frequency of the given level in MHz.
func (s *Spec) CoreFreqMHz(l FreqLevel) float64 { return s.CoreFreqsMHz[l] }

// MemFreqMHz returns the memory frequency of the given level in MHz.
func (s *Spec) MemFreqMHz(l FreqLevel) float64 { return s.MemFreqsMHz[l] }

// CoreFreqGHz returns the core frequency of the given level in GHz — the
// unit the Eq. (1)/(2) regression features are expressed in.
func (s *Spec) CoreFreqGHz(l FreqLevel) float64 { return s.CoreFreqsMHz[l] / 1e3 }

// MemFreqGHz returns the memory frequency of the given level in GHz.
func (s *Spec) MemFreqGHz(l FreqLevel) float64 { return s.MemFreqsMHz[l] / 1e3 }

// PairValid reports whether the BIOS exposes the (core, mem) level pair.
func (s *Spec) PairValid(core, mem FreqLevel) bool { return s.ValidPairs[core][mem] }

// CoreVoltage returns the core-domain voltage at the given level on the
// generation's V–f curve.
func (s *Spec) CoreVoltage(l FreqLevel) float64 {
	return s.interpVolt(s.CoreFreqsMHz, l, s.CoreVoltLow, s.CoreVoltHigh)
}

// MemVoltage returns the memory-domain voltage at the given level.
func (s *Spec) MemVoltage(l FreqLevel) float64 {
	return s.interpVolt(s.MemFreqsMHz, l, s.MemVoltLow, s.MemVoltHigh)
}

func (s *Spec) interpVolt(freqs [3]float64, l FreqLevel, vLow, vHigh float64) float64 {
	fLow, fHigh := freqs[FreqLow], freqs[FreqHigh]
	if fHigh == fLow {
		return vHigh
	}
	t := (freqs[l] - fLow) / (fHigh - fLow)
	exp := s.VoltExponent
	if exp <= 0 {
		exp = 1
	}
	return vLow + math.Pow(t, exp)*(vHigh-vLow)
}

// DerivedBandwidthGBs computes peak DRAM bandwidth in GB/s at the given
// memory level from the bus parameters.
func (s *Spec) DerivedBandwidthGBs(l FreqLevel) float64 {
	bytesPerClock := float64(s.MemBusWidthBits) / 8 * s.MemDataRate
	return bytesPerClock * s.MemFreqsMHz[l] * 1e6 / 1e9
}

// TotalCores returns the total scalar core count (Table I row 2).
func (s *Spec) TotalCores() int { return s.SMCount * s.CoresPerSM }

// Validate checks internal consistency of the spec. It is called by the
// driver when booting a device so that a hand-edited spec fails loudly.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("arch: spec has no name")
	}
	if s.SMCount <= 0 || s.CoresPerSM <= 0 {
		return fmt.Errorf("arch: %s: non-positive SM topology", s.Name)
	}
	if s.WarpSize <= 0 || s.MaxWarpsPerSM <= 0 || s.MaxBlocksPerSM <= 0 {
		return fmt.Errorf("arch: %s: non-positive occupancy limits", s.Name)
	}
	if s.LineSize <= 0 {
		return fmt.Errorf("arch: %s: non-positive line size", s.Name)
	}
	for i := 1; i < 3; i++ {
		if s.CoreFreqsMHz[i] < s.CoreFreqsMHz[i-1] {
			return fmt.Errorf("arch: %s: core frequencies not ascending", s.Name)
		}
		if s.MemFreqsMHz[i] < s.MemFreqsMHz[i-1] {
			return fmt.Errorf("arch: %s: memory frequencies not ascending", s.Name)
		}
	}
	if s.CoreFreqsMHz[FreqLow] <= 0 || s.MemFreqsMHz[FreqLow] <= 0 {
		return fmt.Errorf("arch: %s: non-positive frequency", s.Name)
	}
	if !s.ValidPairs[FreqHigh][FreqHigh] {
		return fmt.Errorf("arch: %s: default pair (H-H) must be valid", s.Name)
	}
	if s.CoreVoltLow <= 0 || s.CoreVoltHigh < s.CoreVoltLow {
		return fmt.Errorf("arch: %s: bad core voltage range", s.Name)
	}
	if s.MemVoltLow <= 0 || s.MemVoltHigh < s.MemVoltLow {
		return fmt.Errorf("arch: %s: bad memory voltage range", s.Name)
	}
	derived := s.DerivedBandwidthGBs(FreqHigh)
	if ratio := derived / s.MemBandwidthGBs; ratio < 0.9 || ratio > 1.1 {
		return fmt.Errorf("arch: %s: derived bandwidth %.1f GB/s disagrees with spec %.1f GB/s",
			s.Name, derived, s.MemBandwidthGBs)
	}
	if s.Generation != Tesla && (s.L1PerSM == 0 || s.L2Size == 0) {
		return fmt.Errorf("arch: %s: %s must have caches", s.Name, s.Generation)
	}
	return nil
}
