package arch

// The four boards of Table I. Microarchitectural parameters (SM widths,
// cache sizes, latencies) come from the vendor whitepapers cited by the
// paper; energy-per-event and voltage-curve parameters are calibration
// constants chosen so that the simulated boards land near their TDP at
// full load and reproduce the paper's generation-to-generation DVFS
// headroom (see DESIGN.md §5 and the calibration tests in internal/power).

// GTX285 returns the Tesla-generation GeForce GTX 285 spec.
//
// Table I: 240 cores, 933 GFLOPS, 159.0 GB/s, 183 W TDP,
// core 600/800/1296 MHz, memory 100/300/1284 MHz.
func GTX285() *Spec {
	return &Spec{
		Name:       "GTX 285",
		Generation: Tesla,

		SMCount:         30,
		CoresPerSM:      8,
		WarpSize:        32,
		MaxWarpsPerSM:   32,
		MaxBlocksPerSM:  8,
		SchedulersPerSM: 1,
		IssuePerSched:   1,

		SharedMemPerSM: 16 << 10,
		RegistersPerSM: 16384,

		// Throughputs are relative to the listed (shader) clock.
		ALUThroughput: 8.0 / 32,
		SFUThroughput: 2.0 / 32,
		DPThroughput:  1.0 / 32,
		LSUThroughput: 8.0 / 32,

		L1PerSM:       0, // Tesla has no L1 data cache
		L2Size:        0, // nor a unified L2
		L1LatencyCyc:  0,
		L2LatencyCyc:  0,
		DRAMLatencyNS: 330,
		LineSize:      128,

		MemBusWidthBits: 512,
		MemDataRate:     2, // GDDR3

		PeakGFLOPS:      933,
		MemBandwidthGBs: 159.0,
		TDPWatts:        183,

		CoreFreqsMHz: [3]float64{600, 800, 1296},
		MemFreqsMHz:  [3]float64{100, 300, 1284},
		// Table III: every pair except (L-L).
		ValidPairs: [3][3]bool{
			FreqLow:  {FreqLow: false, FreqMid: true, FreqHigh: true},
			FreqMid:  {FreqLow: true, FreqMid: true, FreqHigh: true},
			FreqHigh: {FreqLow: true, FreqMid: true, FreqHigh: true},
		},

		// Tesla (65 nm) exposes almost no voltage headroom: this is why
		// the paper finds at most 13% efficiency gain on the GTX 285.
		CoreVoltHigh: 1.18, CoreVoltLow: 1.18,
		MemVoltHigh: 1.05, MemVoltLow: 1.05,
		VoltExponent: 1.0,

		EnergyPerWarpInst:  3.6,
		EnergyPerALU:       5.4,
		EnergyPerSFU:       11.0,
		EnergyPerDP:        16.0,
		EnergyPerLSU:       4.2,
		EnergyPerSharedAcc: 2.6,
		EnergyPerL1Access:  0,
		EnergyPerL2Access:  0,
		EnergyPerDRAMTxn:   21.0,
		CoreLeakWatts:      28,
		MemLeakWatts:       10,
		CoreIdleWatts:      8,
		MemIdleWatts:       26,

		TimingIrregularity: 0.55, // GT200: partition camping, serialization quirks
	}
}

// GTX460 returns the Fermi-generation (GF104) GeForce GTX 460 spec.
//
// Table I: 336 cores, 907 GFLOPS, 115.2 GB/s, 160 W TDP,
// core 100/810/1350 MHz, memory 135/324/1800 MHz.
func GTX460() *Spec {
	return &Spec{
		Name:       "GTX 460",
		Generation: Fermi,

		SMCount:         7,
		CoresPerSM:      48,
		WarpSize:        32,
		MaxWarpsPerSM:   48,
		MaxBlocksPerSM:  8,
		SchedulersPerSM: 2,
		IssuePerSched:   2, // GF104 dual-issue

		SharedMemPerSM: 48 << 10,
		RegistersPerSM: 32768,

		// The listed clock is the shader (hot) clock; the scalar cores
		// run at it directly, so throughput per listed cycle is
		// cores/warpsize/2 (two hot cycles per scheduler cycle).
		ALUThroughput: 48.0 / 32 / 2,
		SFUThroughput: 8.0 / 32 / 2,
		DPThroughput:  4.0 / 32 / 2,
		LSUThroughput: 16.0 / 32 / 2,

		L1PerSM:       16 << 10,
		L2Size:        512 << 10,
		L1LatencyCyc:  60,
		L2LatencyCyc:  240,
		DRAMLatencyNS: 350,
		LineSize:      128,

		MemBusWidthBits: 256,
		MemDataRate:     2, // GDDR5, listed clock is the data-pair clock

		PeakGFLOPS:      907,
		MemBandwidthGBs: 115.2,
		TDPWatts:        160,

		CoreFreqsMHz: [3]float64{100, 810, 1350},
		MemFreqsMHz:  [3]float64{135, 324, 1800},
		// Table III: H/M rows fully valid, plus (L-L) only.
		ValidPairs: [3][3]bool{
			FreqLow:  {FreqLow: true, FreqMid: false, FreqHigh: false},
			FreqMid:  {FreqLow: true, FreqMid: true, FreqHigh: true},
			FreqHigh: {FreqLow: true, FreqMid: true, FreqHigh: true},
		},

		CoreVoltHigh: 1.05, CoreVoltLow: 0.78,
		MemVoltHigh: 1.50, MemVoltLow: 1.20,
		VoltExponent: 1.9,

		EnergyPerWarpInst:  2.6,
		EnergyPerALU:       4.6,
		EnergyPerSFU:       9.0,
		EnergyPerDP:        12.0,
		EnergyPerLSU:       3.4,
		EnergyPerSharedAcc: 2.0,
		EnergyPerL1Access:  1.6,
		EnergyPerL2Access:  4.0,
		EnergyPerDRAMTxn:   30.0,
		CoreLeakWatts:      22,
		MemLeakWatts:       9,
		CoreIdleWatts:      10,
		MemIdleWatts:       24,

		TimingIrregularity: 0.22,
	}
}

// GTX480 returns the Fermi-generation (GF100) GeForce GTX 480 spec.
//
// Table I: 480 cores, 1350 GFLOPS, 177.0 GB/s, 250 W TDP,
// core 100/810/1400 MHz, memory 135/324/1848 MHz.
func GTX480() *Spec {
	return &Spec{
		Name:       "GTX 480",
		Generation: Fermi,

		SMCount:         15,
		CoresPerSM:      32,
		WarpSize:        32,
		MaxWarpsPerSM:   48,
		MaxBlocksPerSM:  8,
		SchedulersPerSM: 2,
		IssuePerSched:   1,

		SharedMemPerSM: 48 << 10,
		RegistersPerSM: 32768,

		ALUThroughput: 32.0 / 32 / 2,
		SFUThroughput: 4.0 / 32 / 2,
		DPThroughput:  4.0 / 32 / 2, // GeForce-capped DP rate
		LSUThroughput: 16.0 / 32 / 2,

		L1PerSM:       16 << 10,
		L2Size:        768 << 10,
		L1LatencyCyc:  60,
		L2LatencyCyc:  240,
		DRAMLatencyNS: 350,
		LineSize:      128,

		MemBusWidthBits: 384,
		MemDataRate:     2,

		PeakGFLOPS:      1350,
		MemBandwidthGBs: 177.0,
		TDPWatts:        250,

		CoreFreqsMHz: [3]float64{100, 810, 1400},
		MemFreqsMHz:  [3]float64{135, 324, 1848},
		ValidPairs: [3][3]bool{
			FreqLow:  {FreqLow: true, FreqMid: false, FreqHigh: false},
			FreqMid:  {FreqLow: true, FreqMid: true, FreqHigh: true},
			FreqHigh: {FreqLow: true, FreqMid: true, FreqHigh: true},
		},

		CoreVoltHigh: 1.08, CoreVoltLow: 0.80,
		MemVoltHigh: 1.50, MemVoltLow: 1.20,
		VoltExponent: 1.9,

		EnergyPerWarpInst:  3.4,
		EnergyPerALU:       5.6,
		EnergyPerSFU:       10.0,
		EnergyPerDP:        13.0,
		EnergyPerLSU:       4.0,
		EnergyPerSharedAcc: 2.2,
		EnergyPerL1Access:  1.8,
		EnergyPerL2Access:  4.4,
		EnergyPerDRAMTxn:   28.0,
		CoreLeakWatts:      48, // GF100 is famously leaky
		MemLeakWatts:       10,
		CoreIdleWatts:      20,
		MemIdleWatts:       21,

		TimingIrregularity: 0.13,
	}
}

// GTX680 returns the Kepler-generation (GK104) GeForce GTX 680 spec.
//
// Table I: 1536 cores, 3090 GFLOPS, 192.2 GB/s, 195 W TDP,
// core 648/1080/1411 MHz, memory 324/810/3004 MHz.
func GTX680() *Spec {
	return &Spec{
		Name:       "GTX 680",
		Generation: Kepler,

		SMCount:         8,
		CoresPerSM:      192,
		WarpSize:        32,
		MaxWarpsPerSM:   64,
		MaxBlocksPerSM:  16,
		SchedulersPerSM: 4,
		IssuePerSched:   2,

		SharedMemPerSM: 48 << 10,
		RegistersPerSM: 65536,

		// Kepler has no hot clock: throughput is relative to the core
		// clock directly.
		ALUThroughput: 192.0 / 32,
		SFUThroughput: 32.0 / 32,
		DPThroughput:  8.0 / 32,
		LSUThroughput: 32.0 / 32,

		L1PerSM:       16 << 10,
		L2Size:        512 << 10,
		L1LatencyCyc:  32,
		L2LatencyCyc:  180,
		DRAMLatencyNS: 270,
		LineSize:      128,

		MemBusWidthBits: 256,
		MemDataRate:     2,

		PeakGFLOPS:      3090,
		MemBandwidthGBs: 192.2,
		TDPWatts:        195,

		CoreFreqsMHz: [3]float64{648, 1080, 1411},
		MemFreqsMHz:  [3]float64{324, 810, 3004},
		// Table III: H/M rows fully valid, plus (L-H) only.
		ValidPairs: [3][3]bool{
			FreqLow:  {FreqLow: false, FreqMid: false, FreqHigh: true},
			FreqMid:  {FreqLow: true, FreqMid: true, FreqHigh: true},
			FreqHigh: {FreqLow: true, FreqMid: true, FreqHigh: true},
		},

		// Kepler (28 nm, boost binning) exposes a wide voltage range:
		// the top frequency bin pays a disproportionate voltage premium,
		// which is what makes (Core-M, *) pairs so profitable (the
		// paper's 75% Backprop result).
		CoreVoltHigh: 1.175, CoreVoltLow: 0.74,
		MemVoltHigh: 1.60, MemVoltLow: 1.35,
		VoltExponent: 3.0,

		EnergyPerWarpInst:  0.7,
		EnergyPerALU:       1.1,
		EnergyPerSFU:       2.4,
		EnergyPerDP:        4.0,
		EnergyPerLSU:       0.9,
		EnergyPerSharedAcc: 0.6,
		EnergyPerL1Access:  0.8,
		EnergyPerL2Access:  2.4,
		EnergyPerDRAMTxn:   20.0,
		CoreLeakWatts:      18,
		MemLeakWatts:       8,
		CoreIdleWatts:      10,
		MemIdleWatts:       21,

		TimingIrregularity: 0.06, // Kepler: far fewer unpredictable behaviours
	}
}

// AllBoards returns the four boards of Table I in the paper's order.
func AllBoards() []*Spec {
	return []*Spec{GTX285(), GTX460(), GTX480(), GTX680()}
}

// BoardByName looks up one of the Table I boards by its exact name
// (e.g. "GTX 680"). It returns nil if the name is unknown.
func BoardByName(name string) *Spec {
	for _, s := range AllBoards() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
