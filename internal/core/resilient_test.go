package core

import (
	"reflect"
	"testing"
	"time"

	"gpuperf/internal/fault"
	"gpuperf/internal/workloads"
)

func chaosRes(t *testing.T, spec string, seed int64) *fault.Resilience {
	t.Helper()
	p, err := fault.ParseProfile(spec)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", spec, err)
	}
	return &fault.Resilience{
		Campaign:      &fault.Campaign{Profile: p, Seed: seed},
		MaxRetries:    10,
		LaunchTimeout: 30 * time.Millisecond,
		BackoffBase:   time.Microsecond,
		BackoffMax:    10 * time.Microsecond,
		Sleep:         func(time.Duration) {},
	}
}

// TestCollectResilientConvergesToPlainDataset: under an all-transient
// profile with a sufficient retry budget the resilient collector produces
// the exact rows the plain collector does.
func TestCollectResilientConvergesToPlainDataset(t *testing.T) {
	benches := workloads.ModelingSet()[:2]
	const board = "GTX 480"
	plain, err := CollectParallel(board, benches, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	// meter.drop is per sample and long benchmarks cover hundreds of
	// samples, so its probability must be far smaller than the per-run
	// points for a clean attempt to land within the retry budget.
	res := chaosRes(t, "launch.hang:0.03,clockset.fail:0.03,boot.fail:0.2,meter.drop:0.0002,launch.corrupt:0.03,bios.bitflip:0.02", 5)
	got, err := CollectResilient(board, benches, 42, 2, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dropped) != 0 {
		t.Fatalf("transient profile dropped benchmarks: %+v", got.Dropped)
	}
	if got.Retries == 0 {
		t.Error("chaos profile triggered no retries — the harness was not exercised")
	}
	if !reflect.DeepEqual(plain.Rows, got.Rows) || plain.Samples != got.Samples {
		t.Error("resilient dataset diverged from the plain dataset")
	}
}

// TestCollectResilientNilPolicyIdentical: a nil Resilience is the plain
// collector.
func TestCollectResilientNilPolicyIdentical(t *testing.T) {
	benches := workloads.ModelingSet()[:1]
	const board = "GTX 285"
	plain, err := Collect(board, benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectResilient(board, benches, 42, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, got.Rows) {
		t.Error("nil-policy resilient dataset diverged from Collect")
	}
}

// TestCollectResilientDropsDeadBenchmark: a permanent fault exhausts the
// budget and the benchmark is dropped, not fatal.
func TestCollectResilientDropsDeadBenchmark(t *testing.T) {
	benches := workloads.ModelingSet()[:2]
	res := chaosRes(t, "launch.corrupt:1", 3)
	res.MaxRetries = 2
	got, err := CollectResilient("GTX 680", benches, 42, 1, res)
	if err != nil {
		t.Fatal(err)
	}
	// launch.corrupt only fires on profiled passes, and every benchmark
	// profiles — so every benchmark drops and no rows survive.
	if len(got.Dropped) != len(benches) {
		t.Fatalf("dropped %d benchmarks, want %d: %+v", len(got.Dropped), len(benches), got.Dropped)
	}
	for _, d := range got.Dropped {
		if d.Point != fault.LaunchCorrupt {
			t.Errorf("dropped %s blamed on %q, want launch.corrupt", d.Benchmark, d.Point)
		}
	}
	if len(got.Rows) != 0 || got.Samples != 0 {
		t.Errorf("dead benchmarks left %d rows, %d samples", len(got.Rows), got.Samples)
	}

	// A permanent boot failure drops the same way.
	bres := chaosRes(t, "boot.fail:1", 3)
	bres.MaxRetries = 1
	bgot, err := CollectResilient("GTX 680", benches[:1], 42, 1, bres)
	if err != nil {
		t.Fatal(err)
	}
	if len(bgot.Dropped) != 1 || bgot.Dropped[0].Point != fault.BootFail {
		t.Errorf("boot-dead benchmark not dropped correctly: %+v", bgot.Dropped)
	}
}
