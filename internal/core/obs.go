package core

import (
	"gpuperf/internal/obs"
)

// collectObs bundles one modeling collection's metric handles; nil (the
// default) means the collection is unobserved.
type collectObs struct {
	rows    *obs.Counter
	dropped *obs.Counter
}

// newCollectObs registers the per-board modeling-collection metrics.
func newCollectObs(rec *obs.Recorder, board string) *collectObs {
	if rec == nil {
		return nil
	}
	reg := rec.Metrics()
	bl := obs.L("board", board)
	return &collectObs{
		rows:    reg.Counter("core_rows_total", "modeling observations collected", bl),
		dropped: reg.Counter("core_benches_dropped_total", "benchmarks dropped from the modeling set", bl),
	}
}
