package core

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

// collectRadeonTiny builds a minimal Radeon modeling dataset (one
// benchmark, its sizes, all pairs) for persistence tests.
func collectRadeonTiny(t *testing.T) *Dataset {
	t.Helper()
	spec := arch.RadeonHD7970()
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	dev.Seed(42)
	ds := &Dataset{Board: spec.Name, Spec: spec, Set: dev.CounterSet()}
	b := workloads.ByName("sgemm")
	for _, scale := range b.Sizes {
		kernels := b.Kernels(scale)
		if err := dev.SetClocks(clock.DefaultPair()); err != nil {
			t.Fatal(err)
		}
		dev.EnableProfiler()
		prof, err := dev.RunMetered(b.Name, kernels, b.HostGap(scale), MinRunSeconds)
		dev.DisableProfiler()
		if err != nil {
			t.Fatal(err)
		}
		perIter := make([]float64, len(prof.Counters))
		for i, c := range prof.Counters {
			perIter[i] = c / float64(prof.Iterations)
		}
		ds.Samples++
		for _, p := range clock.ValidPairs(spec) {
			if err := dev.SetClocks(p); err != nil {
				t.Fatal(err)
			}
			rr, err := dev.RunMetered(b.Name, kernels, b.HostGap(scale), MinRunSeconds)
			if err != nil {
				t.Fatal(err)
			}
			ds.Rows = append(ds.Rows, Observation{
				Benchmark: b.Name, Scale: scale, Pair: p,
				CoreGHz:  spec.CoreFreqMHz(p.Core) / 1000,
				MemGHz:   spec.MemFreqMHz(p.Mem) / 1000,
				Counters: perIter,
				TimeS:    rr.TimePerIteration(),
				PowerW:   rr.Measurement.AvgWatts,
			})
		}
	}
	return ds
}

// TestFutureWorkRadeon exercises the paper's proposed future work: the
// whole pipeline — boot from VBIOS, DVFS sweep, counter profiling, unified
// model training — on a non-NVIDIA (AMD GCN) board. The unified model form
// (Eq. 1/2) only needs a classified counter set, so it carries over.
func TestFutureWorkRadeon(t *testing.T) {
	spec := arch.RadeonHD7970()
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	dev.Seed(42)
	if got := dev.CounterSet().Len(); got != 48 {
		t.Fatalf("GCN counter set has %d counters, want 48", got)
	}

	// Characterization slice: the compute/memory anchors behave the same
	// way across vendors.
	sweep, err := characterize.SweepBenchmark(dev, workloads.ByName("backprop"))
	if err != nil {
		t.Fatal(err)
	}
	if best := sweep.Best(); best.Pair.Mem == arch.FreqHigh {
		t.Errorf("Radeon backprop best %s keeps Mem-H; compute-bound kernels should drop it", best.Pair)
	}
	if imp := sweep.ImprovementPct(); imp <= 0 {
		t.Errorf("Radeon backprop improvement %.1f%%, want positive (28 nm headroom)", imp)
	}

	// Modeling slice on a small corpus.
	var benches []*workloads.Benchmark
	for _, n := range []string{"sgemm", "lbm", "gaussian", "spmv"} {
		benches = append(benches, workloads.ByName(n))
	}
	ds := &Dataset{Board: spec.Name, Spec: spec, Set: dev.CounterSet()}
	pairs := clock.ValidPairs(spec)
	for _, b := range benches {
		for _, scale := range b.Sizes {
			kernels := b.Kernels(scale)
			if err := dev.SetClocks(clock.DefaultPair()); err != nil {
				t.Fatal(err)
			}
			dev.EnableProfiler()
			prof, err := dev.RunMetered(b.Name, kernels, b.HostGap(scale), MinRunSeconds)
			dev.DisableProfiler()
			if err != nil {
				t.Fatal(err)
			}
			perIter := make([]float64, len(prof.Counters))
			for i, c := range prof.Counters {
				perIter[i] = c / float64(prof.Iterations)
			}
			ds.Samples++
			for _, p := range pairs {
				if err := dev.SetClocks(p); err != nil {
					t.Fatal(err)
				}
				rr, err := dev.RunMetered(b.Name, kernels, b.HostGap(scale), MinRunSeconds)
				if err != nil {
					t.Fatal(err)
				}
				ds.Rows = append(ds.Rows, Observation{
					Benchmark: b.Name, Scale: scale, Pair: p,
					CoreGHz:  spec.CoreFreqMHz(p.Core) / 1000,
					MemGHz:   spec.MemFreqMHz(p.Mem) / 1000,
					Counters: perIter,
					TimeS:    rr.TimePerIteration(),
					PowerW:   rr.Measurement.AvgWatts,
				})
			}
		}
	}

	pm, err := Train(ds, Power, MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Train(ds, Time, MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	pe, te := pm.Evaluate(ds.Rows), tm.Evaluate(ds.Rows)
	if te.AdjR2 < 0.85 {
		t.Errorf("Radeon time model R̄² = %.2f, want the paper's high-R̄² regime", te.AdjR2)
	}
	if pe.MeanAbsPct <= 0 || pe.MeanAbsPct > 40 {
		t.Errorf("Radeon power model error %.1f%% implausible", pe.MeanAbsPct)
	}
	if te.MeanAbsPct <= pe.MeanAbsPct {
		t.Errorf("time error %.1f%% should exceed power error %.1f%% (the paper's pattern)",
			te.MeanAbsPct, pe.MeanAbsPct)
	}
}
