package core

import (
	"encoding/json"
	"fmt"
	"io"

	"gpuperf/internal/arch"
	"gpuperf/internal/counters"
	"gpuperf/internal/regress"
)

// Persistence: datasets take minutes to collect on real hardware (the
// paper's 114 samples × 7 pairs × 4 boards is hours of bench time), and a
// deployed governor needs its models without retraining. Both serialize to
// JSON; models re-bind to their architecture's counter set on load and
// refuse to load against a mismatched set.

// datasetJSON is the stable on-disk form of a Dataset.
type datasetJSON struct {
	Version    int           `json:"version"`
	Board      string        `json:"board"`
	Generation string        `json:"generation"`
	Counters   []string      `json:"counters"`
	Samples    int           `json:"samples"`
	Rows       []Observation `json:"rows"`
}

const persistVersion = 1

// Save serializes the dataset as JSON.
func (d *Dataset) Save(w io.Writer) error {
	names := make([]string, d.Set.Len())
	for i, def := range d.Set.Defs {
		names[i] = def.Name
	}
	enc := json.NewEncoder(w)
	return enc.Encode(datasetJSON{
		Version:    persistVersion,
		Board:      d.Board,
		Generation: d.Set.Generation.String(),
		Counters:   names,
		Samples:    d.Samples,
		Rows:       d.Rows,
	})
}

// ReadDataset deserializes a dataset written by Save. The named board
// must still exist and its counter set must match the file's counter list
// exactly (an incompatible library version must fail loudly, not predict
// garbage).
func ReadDataset(r io.Reader) (*Dataset, error) {
	var f datasetJSON
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: reading dataset: %w", err)
	}
	if f.Version != persistVersion {
		return nil, fmt.Errorf("core: dataset version %d unsupported (want %d)", f.Version, persistVersion)
	}
	spec := arch.BoardByName(f.Board)
	if spec == nil && f.Board == arch.RadeonHD7970().Name {
		spec = arch.RadeonHD7970()
	}
	if spec == nil {
		return nil, fmt.Errorf("core: dataset for unknown board %q", f.Board)
	}
	set := counters.ForGeneration(spec.Generation)
	if err := checkCounterList(set, f.Counters); err != nil {
		return nil, err
	}
	for i := range f.Rows {
		if len(f.Rows[i].Counters) != set.Len() {
			return nil, fmt.Errorf("core: row %d has %d counters, want %d", i, len(f.Rows[i].Counters), set.Len())
		}
	}
	return &Dataset{Board: f.Board, Spec: spec, Set: set, Samples: f.Samples, Rows: f.Rows}, nil
}

// modelJSON is the stable on-disk form of a Model.
type modelJSON struct {
	Version   int       `json:"version"`
	Kind      string    `json:"kind"`
	Board     string    `json:"board"`
	Counters  []string  `json:"counters"` // full set, for compatibility checking
	Selected  []string  `json:"selected"` // selection order
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
	AdjR2     float64   `json:"adj_r2"`
	Naive     bool      `json:"naive,omitempty"`
}

// Save serializes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	names := make([]string, m.Set.Len())
	for i, def := range m.Set.Defs {
		names[i] = def.Name
	}
	return json.NewEncoder(w).Encode(modelJSON{
		Version:   persistVersion,
		Kind:      m.Kind.String(),
		Board:     m.Board,
		Counters:  names,
		Selected:  m.Variables(),
		Coef:      m.Selection.Fit.Coef,
		Intercept: m.Selection.Fit.Intercept,
		AdjR2:     m.AdjR2(),
		Naive:     m.naive,
	})
}

// ReadModel deserializes a model written by Save, re-binding it to the
// board's current counter set.
func ReadModel(r io.Reader) (*Model, error) {
	var f modelJSON
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: reading model: %w", err)
	}
	if f.Version != persistVersion {
		return nil, fmt.Errorf("core: model version %d unsupported (want %d)", f.Version, persistVersion)
	}
	var kind Kind
	switch f.Kind {
	case "power":
		kind = Power
	case "time":
		kind = Time
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", f.Kind)
	}
	spec := arch.BoardByName(f.Board)
	if spec == nil && f.Board == arch.RadeonHD7970().Name {
		spec = arch.RadeonHD7970()
	}
	if spec == nil {
		return nil, fmt.Errorf("core: model for unknown board %q", f.Board)
	}
	set := counters.ForGeneration(spec.Generation)
	if err := checkCounterList(set, f.Counters); err != nil {
		return nil, err
	}
	if len(f.Selected) != len(f.Coef) {
		return nil, fmt.Errorf("core: %d selected variables vs %d coefficients", len(f.Selected), len(f.Coef))
	}
	indices := make([]int, len(f.Selected))
	for i, name := range f.Selected {
		idx := set.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("core: model references unknown counter %q", name)
		}
		indices[i] = idx
	}
	sel := &regress.Selection{
		Indices: indices,
		Fit: &regress.Fit{
			Coef:      f.Coef,
			Intercept: f.Intercept,
			AdjR2:     f.AdjR2,
			R2:        f.AdjR2, // best available; exact R2 not persisted
			P:         len(f.Coef),
		},
	}
	return &Model{Kind: kind, Board: f.Board, Set: set, Selection: sel, naive: f.Naive}, nil
}

func checkCounterList(set *counters.Set, names []string) error {
	if len(names) != set.Len() {
		return fmt.Errorf("core: file has %d counters, library has %d", len(names), set.Len())
	}
	for i, n := range names {
		if set.Defs[i].Name != n {
			return fmt.Errorf("core: counter %d is %q in file but %q in library", i, n, set.Defs[i].Name)
		}
	}
	return nil
}
