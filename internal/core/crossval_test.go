package core

import "testing"

func TestCrossValidateStructure(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	cv, err := CrossValidate(ds, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != len(smallSet()) {
		t.Fatalf("%d folds, want %d", len(cv.Folds), len(smallSet()))
	}
	var rows int
	for i, f := range cv.Folds {
		if f.MeanAbsPct < 0 {
			t.Errorf("fold %s has negative error", f.Benchmark)
		}
		if i > 0 && f.MeanAbsPct < cv.Folds[i-1].MeanAbsPct {
			t.Error("folds not sorted ascending")
		}
		rows += f.Rows
	}
	if rows != len(ds.Rows) {
		t.Errorf("folds cover %d rows, want %d", rows, len(ds.Rows))
	}
	b := cv.Box()
	if !(b.Min <= b.Median && b.Median <= b.Max) {
		t.Errorf("box stats out of order: %+v", b)
	}
}

func TestCrossValidateGeneralizationGap(t *testing.T) {
	// Held-out error must be no better than (and usually above) training
	// error — a basic sanity property of the implementation.
	ds := collectSmall(t, "GTX 680")
	cv, err := CrossValidate(ds, Time, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cv.MeanAbsPct < cv.TrainMeanAbsPct*0.8 {
		t.Errorf("held-out error %.1f%% suspiciously below training error %.1f%%",
			cv.MeanAbsPct, cv.TrainMeanAbsPct)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate(&Dataset{}, Power, 5); err == nil {
		t.Error("CrossValidate accepted empty dataset")
	}
	// Single-benchmark dataset cannot be cross-validated.
	ds := collectSmall(t, "GTX 460")
	single := &Dataset{Board: ds.Board, Spec: ds.Spec, Set: ds.Set}
	for i := range ds.Rows {
		if ds.Rows[i].Benchmark == "sgemm" {
			single.Rows = append(single.Rows, ds.Rows[i])
		}
	}
	if _, err := CrossValidate(single, Power, 5); err == nil {
		t.Error("CrossValidate accepted single-benchmark dataset")
	}
}

func TestDiagnose(t *testing.T) {
	ds := collectSmall(t, "GTX 680")
	m, err := Train(ds, Power, MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := m.Diagnose(ds.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != len(m.Selection.Indices) {
		t.Fatalf("%d diagnostics, want %d", len(diags), len(m.Selection.Indices))
	}
	for _, d := range diags {
		if d.Variable == "" {
			t.Error("unnamed variable in diagnostics")
		}
		if d.VIF < 1 {
			t.Errorf("%s: VIF %g below 1", d.Variable, d.VIF)
		}
	}
	cond, err := m.SelectionConditionNumber(ds.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if cond < 1 {
		t.Errorf("condition number %g below 1", cond)
	}
	if _, err := m.Diagnose(nil); err == nil {
		t.Error("Diagnose(nil) accepted")
	}
}

func TestRidgeErrorOnDataset(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	adj, pct, err := RidgeError(ds, Power, 100)
	if err != nil {
		t.Fatal(err)
	}
	if adj <= 0 || adj > 1 {
		t.Errorf("ridge AdjR2 %g out of (0,1]", adj)
	}
	if pct <= 0 || pct > 50 {
		t.Errorf("ridge error %g%% implausible", pct)
	}
	if _, _, err := RidgeError(&Dataset{Set: ds.Set}, Power, 1); err == nil {
		t.Error("empty dataset accepted")
	}
}
