package core

import (
	"context"
	"sync"

	"gpuperf/internal/arch"
	"gpuperf/internal/counters"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/workloads"
)

// The row-stream layer mirrors characterize's: the collection engine
// emits each modeling observation into a RowSink the moment it is
// measured, and Dataset is one fold over that stream (DatasetFold)
// instead of the mandatory intermediate. A consumer that only needs
// aggregates never holds the full corpus.

// Row is one modeling observation as a stream element. BenchIndex is the
// observation's benchmark's index in the collection's benchmark slice
// and Seq its measurement order within that benchmark, so a fold can
// rebuild the engine's deterministic row order from an unordered stream.
type Row struct {
	BenchIndex int
	Seq        int
	Obs        Observation
}

// RowSink consumes a collection as a stream. ConsumeRow is called from
// every pool worker, so implementations must be safe for concurrent use.
// Rows of different benchmarks interleave arbitrarily; within one
// benchmark rows arrive in Seq order. A benchmark's rows are emitted
// only once the whole benchmark succeeds — a dropped benchmark
// contributes nothing, exactly like the materialized dataset. When
// CollectStream returns an error the stream is partial and must be
// discarded.
type RowSink interface {
	ConsumeRow(Row)
}

// RowSinkFunc adapts a function to a RowSink.
type RowSinkFunc func(Row)

// ConsumeRow implements RowSink.
func (f RowSinkFunc) ConsumeRow(r Row) { f(r) }

// CollectStats carries everything about a streamed collection that is
// not a row: the board identity and the fault-campaign bookkeeping.
type CollectStats struct {
	Board   string
	Spec    *arch.Spec
	Set     *counters.Set
	Samples int // distinct (benchmark, size) samples across emitted rows
	Dropped []DroppedBench
	Retries int
}

// CollectStream is the streaming form of CollectCtx: identical engine,
// identical observations, but rows leave through the sink as each
// benchmark completes instead of being materialized. Everything
// documented on CollectCtx (determinism at any worker count, drop-on-
// exhaustion, cancellation at pass boundaries) holds unchanged;
// CollectCtx is this function plus a DatasetFold.
func CollectStream(ctx context.Context, boardName string, benches []*workloads.Benchmark, opts CollectOptions, sink RowSink) (*CollectStats, error) {
	res := opts.Res
	if res == nil {
		res = &fault.Resilience{}
	}
	res.Observe()
	co := newCollectObs(res.Obs, boardName)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	probe, err := driver.OpenBoard(boardName)
	if err != nil {
		return nil, err
	}
	st := &CollectStats{
		Board: boardName,
		Spec:  probe.Spec(),
		Set:   probe.CounterSet(),
	}

	type chunk struct {
		idx     int
		samples int
		retries int
		dropped *DroppedBench
		err     error
	}
	// Buffered to the benchmark count: no goroutine can ever block on
	// delivery, so the error path leaks nothing. Cancellation is checked
	// before each job — remaining jobs fail with the wrapped cause while
	// in-flight ones stop at their own pass boundaries.
	if workers > len(benches) {
		workers = len(benches)
	}
	jobs := make(chan int, len(benches))
	for i := range benches {
		jobs <- i
	}
	close(jobs)
	results := make(chan chunk, len(benches))
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range jobs {
				if ctx.Err() != nil {
					results <- chunk{idx: idx, err: cancelled(ctx)}
					continue
				}
				rows, samples, retries, dropped, err := collectBench(ctx, boardName, benches[idx], opts.Seed, res, co)
				if err == nil && dropped == nil && sink != nil {
					// Emit at benchmark granularity: a failed or dropped
					// benchmark discards its partial rows, so nothing may
					// leave the worker before the benchmark is known good.
					for i, o := range rows {
						sink.ConsumeRow(Row{BenchIndex: idx, Seq: i, Obs: o})
					}
				}
				results <- chunk{idx: idx, samples: samples, retries: retries, dropped: dropped, err: err}
			}
		}()
	}
	ordered := make([]chunk, len(benches))
	for range benches {
		c := <-results
		ordered[c.idx] = c
	}
	for _, c := range ordered {
		if c.err != nil {
			return nil, c.err
		}
		st.Retries += c.retries
		if c.dropped != nil {
			st.Dropped = append(st.Dropped, *c.dropped)
			continue
		}
		st.Samples += c.samples
	}
	return st, nil
}

// DatasetFold rebuilds the classic materialized Dataset from the row
// stream: rows bucket per benchmark index, so the fold reproduces the
// engine's deterministic benchmark-major row order no matter how the
// pool interleaved them. Safe for concurrent use.
type DatasetFold struct {
	mu   sync.Mutex
	rows [][]Observation
}

// NewDatasetFold sizes the fold for a collection over nBenches
// benchmarks.
func NewDatasetFold(nBenches int) *DatasetFold {
	return &DatasetFold{rows: make([][]Observation, nBenches)}
}

// ConsumeRow implements RowSink.
func (f *DatasetFold) ConsumeRow(r Row) {
	f.mu.Lock()
	f.rows[r.BenchIndex] = append(f.rows[r.BenchIndex], r.Obs)
	f.mu.Unlock()
}

// Dataset folds the streamed rows and the collection stats into the
// materialized corpus, byte-identical to what the engine produced before
// the stream existed.
func (f *DatasetFold) Dataset(st *CollectStats) *Dataset {
	ds := &Dataset{
		Board:   st.Board,
		Spec:    st.Spec,
		Set:     st.Set,
		Samples: st.Samples,
		Dropped: st.Dropped,
		Retries: st.Retries,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, rs := range f.rows {
		n += len(rs)
	}
	ds.Rows = make([]Observation, 0, n)
	for _, rs := range f.rows {
		ds.Rows = append(ds.Rows, rs...)
	}
	return ds
}
