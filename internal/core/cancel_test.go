package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"gpuperf/internal/fault"
	"gpuperf/internal/workloads"
)

// TestCollectCtxPreCancelled: a dead context aborts before any
// measurement, with the cause wrapped.
func TestCollectCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CollectCtx(ctx, "GTX 480", modelBenches(t, 3), CollectOptions{Seed: 42, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled collect returned %v, want context.Canceled in the chain", err)
	}
}

// TestCollectCtxRealCancelFuncMidFlight drives a genuine
// context.CancelFunc deterministically: the per-benchmark hook fires the
// cancel while job 2 is in flight, so queued jobs must fail with the
// wrapped cause and the pool stops within the in-flight benchmarks.
func TestCollectCtxRealCancelFuncMidFlight(t *testing.T) {
	benches := modelBenches(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	orig := collectBench
	collectBench = func(ctx context.Context, boardName string, b *workloads.Benchmark, seed int64, res *fault.Resilience, co *collectObs) ([]Observation, int, int, *DroppedBench, error) {
		if started.Add(1) == 2 {
			cancel()
		}
		return orig(ctx, boardName, b, seed, res, co)
	}
	defer func() { collectBench = orig }()

	_, err := CollectCtx(ctx, "GTX 480", benches, CollectOptions{Seed: 42, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled collect returned %v, want context.Canceled in the chain", err)
	}
	// Two workers were in flight when the cancel fired; at most one more
	// job each can have slipped past the queue check before observing it.
	if n := started.Load(); n > 4 {
		t.Errorf("%d of %d benchmarks started after a cancel during job 2; the pool is not stopping at job boundaries", n, len(benches))
	}
}

// TestTrainCtxCancelled: model training honours its context at
// selection-step boundaries.
func TestTrainCtxCancelled(t *testing.T) {
	ds, err := CollectCtx(context.Background(), "GTX 480", modelBenches(t, 4),
		CollectOptions{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainCtx(ctx, ds, Power, MaxVariables); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx returned %v, want context.Canceled in the chain", err)
	}
}
