package core

import (
	"context"
	"errors"
	"fmt"

	"gpuperf/internal/counters"
	"gpuperf/internal/regress"
)

// Kind selects which dependent variable a model predicts.
type Kind int

const (
	// Power is the Eq. 1 model: average wall power in watts.
	Power Kind = iota
	// Time is the Eq. 2 model: execution time in seconds.
	Time
)

// String names the model kind.
func (k Kind) String() string {
	if k == Power {
		return "power"
	}
	return "time"
}

// Model is one trained unified model (Eq. 1 or Eq. 2) for one board.
type Model struct {
	Kind      Kind
	Board     string
	Set       *counters.Set
	Selection *regress.Selection

	// naive marks a TrainNaive model, whose features ignore the clocks.
	naive bool
}

// featureRow maps one observation to the Eq. 1 / Eq. 2 feature vector: one
// feature per counter, scaled by its clock domain.
//
// Power (Eq. 1):  feature_i = (counter_i / exectime) × domainGHz
// Time  (Eq. 2):  feature_i = counter_i / domainGHz
func featureRow(kind Kind, set *counters.Set, o *Observation) []float64 {
	out := make([]float64, set.Len())
	for i := range set.Defs {
		out[i] = featureAt(kind, set, o, i)
	}
	return out
}

// featureAt computes one entry of featureRow without materializing the
// row — the prediction hot path only touches the model's selected columns,
// a small fraction of the counter set.
func featureAt(kind Kind, set *counters.Set, o *Observation, i int) float64 {
	freq := o.CoreGHz
	if set.Defs[i].Class == counters.MemEvent {
		freq = o.MemGHz
	}
	c := o.Counters[i]
	switch kind {
	case Power:
		// Per-second rate at this pair, scaled by domain frequency.
		if o.TimeS > 0 {
			return c / o.TimeS * freq
		}
		return 0
	default: // Time
		return c / freq
	}
}

// target extracts the dependent variable.
func target(kind Kind, o *Observation) float64 {
	if kind == Power {
		return o.PowerW
	}
	return o.TimeS
}

// designMatrix builds the full (unselected) feature matrix and target
// vector over a row set.
func designMatrix(kind Kind, set *counters.Set, rows []Observation) (x [][]float64, y []float64) {
	x = make([][]float64, len(rows))
	y = make([]float64, len(rows))
	// One backing allocation for all rows, subsliced: the values are
	// identical to per-row featureRow calls, but a campaign-sized design
	// matrix costs two allocations instead of len(rows)+1.
	n := set.Len()
	flat := make([]float64, len(rows)*n)
	for i := range rows {
		row := flat[i*n : (i+1)*n : (i+1)*n]
		for j := range set.Defs {
			row[j] = featureAt(kind, set, &rows[i], j)
		}
		x[i] = row
		y[i] = target(kind, &rows[i])
	}
	return x, y
}

// Train fits a unified model over every row of the dataset with forward
// selection up to maxVars variables (use MaxVariables for the paper's
// configuration).
func Train(ds *Dataset, kind Kind, maxVars int) (*Model, error) {
	return TrainCtx(context.Background(), ds, kind, maxVars)
}

// TrainCtx is Train with cooperative cancellation, checked between
// forward-selection steps. A cancelled training run returns the context's
// cause wrapped in the error.
func TrainCtx(ctx context.Context, ds *Dataset, kind Kind, maxVars int) (*Model, error) {
	if len(ds.Rows) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	x, y := designMatrix(kind, ds.Set, ds.Rows)
	sel, err := regress.ForwardSelectCtx(ctx, x, y, maxVars)
	if err != nil {
		return nil, fmt.Errorf("core: training %s model for %s: %w", kind, ds.Board, err)
	}
	return &Model{Kind: kind, Board: ds.Board, Set: ds.Set, Selection: sel}, nil
}

// TrainNaive fits a baseline model WITHOUT the paper's frequency coupling:
// power is regressed on raw per-second counter rates and time on raw counter
// totals, ignoring the programmed clocks entirely. It quantifies what Eq. 1
// and Eq. 2's frequency terms buy (the ablation bench of DESIGN.md §6): a
// naive model must average over frequency pairs it cannot distinguish.
func TrainNaive(ds *Dataset, kind Kind, maxVars int) (*Model, error) {
	if len(ds.Rows) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	x := make([][]float64, len(ds.Rows))
	y := make([]float64, len(ds.Rows))
	for i := range ds.Rows {
		o := &ds.Rows[i]
		// Neutralize the frequency terms by pretending both domains run
		// at 1 GHz; featureRow then degenerates to rates / totals.
		neutral := *o
		neutral.CoreGHz, neutral.MemGHz = 1, 1
		x[i] = featureRow(kind, ds.Set, &neutral)
		y[i] = target(kind, o)
	}
	sel, err := regress.ForwardSelect(x, y, maxVars)
	if err != nil {
		return nil, fmt.Errorf("core: training naive %s model for %s: %w", kind, ds.Board, err)
	}
	return &Model{Kind: kind, Board: ds.Board, Set: ds.Set, Selection: sel, naive: true}, nil
}

// RidgeError fits an all-variables ridge model (no selection, L2 penalty
// lambda) over the dataset and returns its adjusted R² and mean absolute
// percentage error — the "shrinkage instead of selection" baseline for the
// forward-selection ablation.
func RidgeError(ds *Dataset, kind Kind, lambda float64) (adjR2, meanAbsPct float64, err error) {
	if len(ds.Rows) == 0 {
		return 0, 0, errors.New("core: empty dataset")
	}
	x, y := designMatrix(kind, ds.Set, ds.Rows)
	fit, err := regress.Ridge(x, y, lambda)
	if err != nil {
		return 0, 0, err
	}
	pred := make([]float64, len(y))
	for i, row := range x {
		pred[i] = fit.Predict(row)
	}
	return fit.AdjR2, regress.MeanAbsPctError(pred, y), nil
}

// TrainAtPair fits a single-pair baseline model (the per-configuration
// models of Figs. 9 and 10) using only rows measured at pair p.
func TrainAtPair(ds *Dataset, kind Kind, maxVars int, rows []Observation) (*Model, error) {
	if len(rows) == 0 {
		return nil, errors.New("core: no rows for pair model")
	}
	x, y := designMatrix(kind, ds.Set, rows)
	sel, err := regress.ForwardSelect(x, y, maxVars)
	if err != nil {
		return nil, err
	}
	return &Model{Kind: kind, Board: ds.Board, Set: ds.Set, Selection: sel}, nil
}

// AdjR2 returns the adjusted coefficient of determination of the fit
// (Tables V and VI).
func (m *Model) AdjR2() float64 { return m.Selection.Fit.AdjR2 }

// Variables returns the selected counter names in selection order.
func (m *Model) Variables() []string {
	out := make([]string, len(m.Selection.Indices))
	for i, idx := range m.Selection.Indices {
		out[i] = m.Set.Defs[idx].Name
	}
	return out
}

// Predict evaluates the model on one observation (its Counters, clocks and
// — for the power model — measured or predicted TimeS must be set).
func (m *Model) Predict(o *Observation) float64 {
	if m.naive {
		neutral := *o
		neutral.CoreGHz, neutral.MemGHz = 1, 1
		o = &neutral
	}
	// Same accumulation order as Fit.Predict over the projected row, but
	// computing only the selected features — no per-call allocation.
	f := m.Selection.Fit
	idxs := m.Selection.Indices
	y := f.Intercept
	for j, c := range f.Coef {
		if j < len(idxs) {
			y += c * featureAt(m.Kind, m.Set, o, idxs[j])
		}
	}
	return y
}

// Influence reports each selected variable's share of the model's output
// magnitude over a row set (Fig. 11): mean |coefficient × feature| per
// variable, normalized to sum to 1 together with the intercept.
type Influence struct {
	Variable string
	Share    float64
}

// Influences computes the Fig. 11 breakdown over the given rows.
func (m *Model) Influences(rows []Observation) []Influence {
	sums := make([]float64, len(m.Selection.Indices)+1) // + intercept
	for i := range rows {
		for k, idx := range m.Selection.Indices {
			v := m.Selection.Fit.Coef[k] * featureAt(m.Kind, m.Set, &rows[i], idx)
			if v < 0 {
				v = -v
			}
			sums[k] += v
		}
	}
	ic := m.Selection.Fit.Intercept * float64(len(rows))
	if ic < 0 {
		ic = -ic
	}
	sums[len(sums)-1] = ic

	var total float64
	for _, s := range sums {
		total += s
	}
	out := make([]Influence, 0, len(sums))
	for k, idx := range m.Selection.Indices {
		share := 0.0
		if total > 0 {
			share = sums[k] / total
		}
		out = append(out, Influence{Variable: m.Set.Defs[idx].Name, Share: share})
	}
	share := 0.0
	if total > 0 {
		share = sums[len(sums)-1] / total
	}
	out = append(out, Influence{Variable: "(intercept)", Share: share})
	return out
}
