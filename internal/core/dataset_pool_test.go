package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"gpuperf/internal/fault"
	"gpuperf/internal/workloads"
)

// modelBenches is a small modeling subset that keeps the pool tests fast
// while still spanning several independent noise streams.
func modelBenches(t *testing.T, n int) []*workloads.Benchmark {
	t.Helper()
	all := workloads.ModelingSet()
	if len(all) < n {
		t.Fatalf("modeling set has only %d benchmarks", len(all))
	}
	return all[:n]
}

// TestCollectParallelDeepEqual is the satellite determinism claim in its
// strongest form: per-benchmark seeding makes the pooled dataset deeply
// identical to the sequential one at any worker count (core_test.go's
// TestCollectParallelMatchesSequential checks selected fields; this one
// compares the whole Dataset).
func TestCollectParallelDeepEqual(t *testing.T) {
	benches := modelBenches(t, 4)
	want, err := Collect("GTX 480", benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := CollectParallel("GTX 480", benches, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel dataset differs from sequential", workers)
		}
	}
}

// TestCollectErrorPathDoesNotLeak is the goroutine-leak regression test.
// The old collector returned at the first failed chunk while the remaining
// workers blocked forever on unbuffered channels; the rewritten pool must
// report the lowest-index error and let every goroutine finish.
func TestCollectErrorPathDoesNotLeak(t *testing.T) {
	benches := modelBenches(t, 6)
	boom := func(i int) error { return fmt.Errorf("injected failure on benchmark #%d", i) }
	orig := collectBench
	collectBench = func(ctx context.Context, boardName string, b *workloads.Benchmark, seed int64, res *fault.Resilience, co *collectObs) ([]Observation, int, int, *DroppedBench, error) {
		for i, fail := range benches {
			// Fail every odd-index benchmark; index 1 must win the report.
			if b == fail && i%2 == 1 {
				return nil, 0, 0, nil, boom(i)
			}
		}
		return orig(ctx, boardName, b, seed, res, co)
	}
	defer func() { collectBench = orig }()

	before := runtime.NumGoroutine()
	_, err := CollectParallel("GTX 480", benches, 42, 3)
	if err == nil {
		t.Fatal("injected failures did not surface")
	}
	if want := boom(1).Error(); err.Error() != want {
		t.Errorf("reported %q, want the lowest-index error %q", err, want)
	}

	// Every worker must have exited; allow the scheduler a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines after the failed collect, started with %d — workers leaked", got, before)
	}
}

// TestCollectErrorIsSchedulingIndependent: repeated failing runs must
// report the same error regardless of which worker hits it first.
func TestCollectErrorIsSchedulingIndependent(t *testing.T) {
	benches := modelBenches(t, 5)
	wantErr := errors.New("injected")
	orig := collectBench
	collectBench = func(ctx context.Context, boardName string, b *workloads.Benchmark, seed int64, res *fault.Resilience, co *collectObs) ([]Observation, int, int, *DroppedBench, error) {
		if b == benches[2] || b == benches[4] {
			return nil, 0, 0, nil, fmt.Errorf("%w: %s", wantErr, b.Name)
		}
		return nil, 1, 0, nil, nil
	}
	defer func() { collectBench = orig }()

	for trial := 0; trial < 5; trial++ {
		_, err := CollectParallel("GTX 480", benches, 42, 4)
		if err == nil {
			t.Fatal("injected failures did not surface")
		}
		if want := fmt.Sprintf("injected: %s", benches[2].Name); err.Error() != want {
			t.Fatalf("trial %d: reported %q, want %q (lowest index)", trial, err, want)
		}
	}
}
