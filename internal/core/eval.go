package core

import (
	"math"
	"sort"

	"gpuperf/internal/clock"
	"gpuperf/internal/regress"
)

// Eval summarizes a model's prediction quality over a row set — the
// ingredients of Tables V–VIII and Figs. 5, 6, 9 and 10.
type Eval struct {
	AdjR2      float64
	MeanAbsPct float64 // Tables VII / VIII metric
	MeanAbsRaw float64 // watts for the power model, seconds for time
	PctErrors  []float64
}

// Box returns the five-number summary of the percentage errors (the
// box-and-whisker form of Figs. 9 and 10).
func (e *Eval) Box() regress.BoxStats { return regress.Box(e.PctErrors) }

// Evaluate computes prediction errors of the model over rows.
func (m *Model) Evaluate(rows []Observation) *Eval {
	pred := make([]float64, len(rows))
	actual := make([]float64, len(rows))
	for i := range rows {
		pred[i] = m.Predict(&rows[i])
		actual[i] = target(m.Kind, &rows[i])
	}
	e := &Eval{
		AdjR2:      m.AdjR2(),
		MeanAbsPct: regress.MeanAbsPctError(pred, actual),
		MeanAbsRaw: regress.MeanAbsError(pred, actual),
	}
	for i := range pred {
		if actual[i] != 0 {
			e.PctErrors = append(e.PctErrors, math.Abs(pred[i]-actual[i])/math.Abs(actual[i])*100)
		}
	}
	return e
}

// BenchmarkError is the per-benchmark mean |error|% of Figs. 5 and 6.
type BenchmarkError struct {
	Benchmark string
	MeanPct   float64
}

// PerBenchmarkErrors computes the Figs. 5/6 distribution: mean absolute
// percentage error per benchmark, sorted ascending (the figures sort
// benchmarks independently per GPU).
func (m *Model) PerBenchmarkErrors(rows []Observation) []BenchmarkError {
	sums := map[string]float64{}
	counts := map[string]int{}
	for i := range rows {
		o := &rows[i]
		actual := target(m.Kind, o)
		if actual == 0 {
			continue
		}
		pct := math.Abs(m.Predict(o)-actual) / math.Abs(actual) * 100
		sums[o.Benchmark] += pct
		counts[o.Benchmark]++
	}
	out := make([]BenchmarkError, 0, len(sums))
	for name, s := range sums {
		out = append(out, BenchmarkError{Benchmark: name, MeanPct: s / float64(counts[name])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MeanPct < out[j].MeanPct })
	return out
}

// VariableSweep trains models with 1..maxVars variables and reports the
// mean |error|% at each size from minVars on — the Figs. 7/8 sweep. The
// forward-selection path is computed once; prefixes of it give the smaller
// models.
type SweepPoint struct {
	Vars       int
	AdjR2      float64
	MeanAbsPct float64
}

// VariableSweep evaluates selection-path prefixes between minVars and
// maxVars (inclusive) against the dataset's rows.
func VariableSweep(ds *Dataset, kind Kind, minVars, maxVars int) ([]SweepPoint, error) {
	x, y := designMatrix(kind, ds.Set, ds.Rows)
	sel, err := regress.ForwardSelect(x, y, maxVars)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	pred := make([]float64, len(y))
	for n := minVars; n <= len(sel.Indices); n++ {
		cols := sel.Indices[:n]
		fit, err := regress.OLSColumns(x, cols, y)
		if err != nil {
			continue
		}
		for i, row := range x {
			pred[i] = fit.PredictColumns(row, cols)
		}
		out = append(out, SweepPoint{
			Vars:       n,
			AdjR2:      fit.AdjR2,
			MeanAbsPct: regress.MeanAbsPctError(pred, y),
		})
	}
	return out, nil
}

// PairEval is one Figs. 9/10 column: a model (unified or per-pair) with its
// error distribution.
type PairEval struct {
	Label string // "(H-H)", …, or "unified"
	Box   regress.BoxStats
	Eval  *Eval
}

// PerPairComparison trains one model per frequency pair (evaluated on that
// pair's rows) plus the unified model (evaluated on everything), in Table
// III row order with the unified model last — the layout of Figs. 9/10.
func PerPairComparison(ds *Dataset, kind Kind, maxVars int) ([]PairEval, error) {
	return PerPairComparisonWith(ds, kind, maxVars, nil)
}

// PerPairComparisonWith is PerPairComparison reusing an already-trained
// unified model of the same dataset and kind (pass nil to train one here).
// A campaign that has trained its Tables V/VI models passes them in, which
// saves one full-width forward selection per comparison — the single most
// expensive redundant step of a reproduction run.
func PerPairComparisonWith(ds *Dataset, kind Kind, maxVars int, unified *Model) ([]PairEval, error) {
	var out []PairEval
	for _, p := range clock.ValidPairs(ds.Spec) {
		rows := ds.RowsAtPair(p)
		m, err := TrainAtPair(ds, kind, maxVars, rows)
		if err != nil {
			return nil, err
		}
		ev := m.Evaluate(rows)
		out = append(out, PairEval{Label: p.String(), Box: ev.Box(), Eval: ev})
	}
	if unified == nil {
		var err error
		unified, err = Train(ds, kind, maxVars)
		if err != nil {
			return nil, err
		}
	}
	ev := unified.Evaluate(ds.Rows)
	out = append(out, PairEval{Label: "unified", Box: ev.Box(), Eval: ev})
	return out, nil
}
