package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"

	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
	"gpuperf/internal/workloads"
)

// The resilient collector is Collect wrapped in the fault harness: boots,
// clock sets, profiling passes and metered observations all retry
// transient faults with backoff, hung launches are killed by the watchdog
// and recovered by a reflash, and a benchmark that exhausts its retry
// budget is dropped from the dataset — recorded in Dataset.Dropped so the
// report can say the model was trained without it — instead of failing
// the campaign.

// DroppedBench names a benchmark excluded from a resilient dataset and
// the fault that exhausted its retry budget.
type DroppedBench struct {
	Benchmark string
	Point     fault.Point
}

// CollectOptions configures a unified collection campaign.
type CollectOptions struct {
	Seed int64
	// Workers bounds the pool; < 1 means 1, the bit-exact sequential
	// reference (the dataset is identical at any width).
	Workers int
	// Res carries the fault campaign and the retry/watchdog policy. nil
	// behaves like a fault-free harness with a single attempt per pass.
	Res *fault.Resilience
}

// cancelled wraps a context's cancellation cause in the package's error
// shape; errors.Is against the original cause keeps working.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("core: collect cancelled: %w", context.Cause(ctx))
}

// CollectCtx is the unified collection engine: every sequential, parallel
// and resilient collect variant is a configuration of this one
// implementation. With a nil or fault-free Resilience it produces the
// reference dataset; under an all-transient campaign with enough retries
// it converges to the same dataset, and under permanent faults it
// degrades by dropping benchmarks (Dataset.Dropped).
//
// The context is checked before every measurement pass and retry attempt:
// a cancel aborts the collection within one in-flight pass per worker and
// returns the cause wrapped in the error.
func CollectCtx(ctx context.Context, boardName string, benches []*workloads.Benchmark, opts CollectOptions) (*Dataset, error) {
	// The materialized dataset is one fold over the row stream; the
	// engine itself lives in CollectStream.
	fold := NewDatasetFold(len(benches))
	st, err := CollectStream(ctx, boardName, benches, opts, fold)
	if err != nil {
		return nil, err
	}
	return fold.Dataset(st), nil
}

// CollectResilient is CollectParallel under the fault harness.
//
// Deprecated: use CollectCtx (or session.Session.Collect) with
// CollectOptions.Res — CollectResilient is the unified engine without a
// context and delegates to it.
func CollectResilient(boardName string, benches []*workloads.Benchmark, seed int64, workers int, res *fault.Resilience) (*Dataset, error) {
	return CollectCtx(context.Background(), boardName, benches,
		CollectOptions{Seed: seed, Workers: workers, Res: res})
}

// collectBench is the per-benchmark collector the pool workers call; a
// variable so tests can inject failures into the error path.
var collectBench = collectBenchR

// collectBenchR gathers one benchmark's samples under the fault harness.
// A nil *DroppedBench and nil error mean success; a non-nil *DroppedBench
// means the benchmark was sacrificed to a fault that would not go away.
//
// Each profiling pass and each observation draws from a noise stream
// scoped to its (scale, pair), so a retried pass replays exactly the
// noise a clean run would have drawn — the engine's output is a pure
// function of the seed.
func collectBenchR(ctx context.Context, boardName string, b *workloads.Benchmark, seed int64, res *fault.Resilience, co *collectObs) ([]Observation, int, int, *DroppedBench, error) {
	scope := boardName + "|" + b.Name
	track := res.Obs.Track("model/" + boardName + "/" + b.Name)
	span := track.Begin("collect "+b.Name, obs.Arg{Key: "board", Value: boardName})
	defer span.End()
	retries := 0
	var dev *driver.Device
	var lastPt fault.Point
	for attempt := 0; attempt < res.Attempts(); attempt++ {
		if ctx.Err() != nil {
			return nil, 0, 0, nil, cancelled(ctx)
		}
		d, err := driver.OpenBoardWithFaults(boardName, res.Injector("boot|"+scope, attempt))
		if err == nil {
			dev = d
			retries += attempt
			break
		}
		pt, transient := fault.PointOf(err)
		if !transient {
			return nil, 0, 0, nil, err
		}
		lastPt = pt
		res.RecordRetry(pt)
		track.Instant("boot retry", obs.Arg{Key: "point", Value: string(pt)},
			obs.Arg{Key: "attempt", Value: strconv.Itoa(attempt)})
		track.Advance(res.Backoff("boot|"+scope, attempt).Seconds())
		res.Pause("boot|"+scope, attempt)
	}
	if dev == nil {
		if co != nil {
			co.dropped.Inc()
			track.Instant("dropped (boot failed)", obs.Arg{Key: "point", Value: string(lastPt)})
		}
		return nil, 0, res.Attempts() - 1, &DroppedBench{Benchmark: b.Name, Point: lastPt}, nil
	}
	if res.Obs != nil {
		dev.Observe(res.Obs, track.Name())
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(b.Name)) // fnv: hash.Hash.Write never errors
	dev.Seed(seed ^ int64(h.Sum64()))

	pairs := clock.ValidPairs(dev.Spec())
	var rows []Observation
	samples := 0
	sizes := b.Sizes
	if len(sizes) == 0 {
		sizes = []float64{1}
	}
	for _, scale := range sizes {
		kernels := b.Kernels(scale)
		hostGap := b.HostGap(scale)

		// Batched fast path: the passes below launch each kernel once
		// profiled at the default pair, then unprofiled at every pair.
		// Precompute both key populations kernel-major (compile once,
		// evaluate all pairs in one pass) so the metered loop runs against
		// the per-device launch cache. Payloads are bit-identical to
		// per-launch simulation, so the dataset is unchanged.
		dev.EnableProfiler()
		_, perr := dev.PrecomputePairs(kernels, []clock.Pair{clock.DefaultPair()})
		dev.DisableProfiler()
		if perr != nil {
			return nil, 0, 0, nil, perr
		}
		if _, perr := dev.PrecomputePairs(kernels, pairs); perr != nil {
			return nil, 0, 0, nil, perr
		}

		// run is one metered pass (optionally profiled) at the given pair
		// inside the retry loop. The seed tag matches collectBenchmark's
		// for the same pass, so a successful attempt replays the plain
		// path's noise exactly; a nil result with a fault point means the
		// budget ran out.
		run := func(p clock.Pair, seedTag, passScope string, profiled bool) (*driver.RunResult, fault.Point, error) {
			retry := func(pt fault.Point, attempt int) {
				res.RecordRetry(pt)
				track.Instant("retry", obs.Arg{Key: "point", Value: string(pt)},
					obs.Arg{Key: "pair", Value: p.String()},
					obs.Arg{Key: "attempt", Value: strconv.Itoa(attempt)})
				track.Advance(res.Backoff(passScope, attempt).Seconds())
				res.Pause(passScope, attempt)
			}
			var last fault.Point
			for attempt := 0; attempt < res.Attempts(); attempt++ {
				if ctx.Err() != nil {
					// A cancelled parent must not spin the retry budget —
					// abort the pass at the attempt boundary.
					return nil, "", cancelled(ctx)
				}
				if attempt > 0 {
					retries++
				}
				dev.AttachFaults(res.Injector(passScope, attempt))
				dev.SeedScoped(seedTag)
				if err := dev.SetClocks(p); err != nil {
					pt, transient := fault.PointOf(err)
					if !transient {
						return nil, "", err
					}
					last = pt
					retry(pt, attempt)
					continue
				}
				if profiled {
					dev.EnableProfiler()
				}
				runCtx, cancel := res.LaunchContext(ctx)
				rr, err := dev.RunMeteredCtx(runCtx, b.Name, kernels, hostGap, MinRunSeconds)
				cancel()
				if profiled {
					dev.DisableProfiler()
				}
				if err != nil {
					pt, transient := fault.PointOf(err)
					if !transient {
						return nil, "", err
					}
					last = pt
					if pt == fault.LaunchHang {
						if rerr := dev.Reflash(); rerr != nil {
							return nil, "", rerr
						}
					}
					retry(pt, attempt)
					continue
				}
				if rr.Measurement.Degraded() && attempt+1 < res.Attempts() {
					last = fault.MeterDegraded
					retry(fault.MeterDegraded, attempt)
					continue
				}
				return rr, "", nil
			}
			return nil, last, nil
		}

		prof, pt, err := run(clock.DefaultPair(), fmt.Sprintf("profile|%g", scale),
			fmt.Sprintf("%s|profile|%g", scope, scale), true)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		if prof == nil {
			if co != nil {
				co.dropped.Inc()
				track.Instant("dropped", obs.Arg{Key: "point", Value: string(pt)})
			}
			return nil, 0, retries, &DroppedBench{Benchmark: b.Name, Point: pt}, nil
		}
		perIter := make([]float64, len(prof.Counters))
		for i, c := range prof.Counters {
			perIter[i] = c / float64(prof.Iterations)
		}
		driver.ReleaseRunResult(prof) // per-iteration counters copied out above

		samples++
		for _, p := range pairs {
			rr, pt, err := run(p, fmt.Sprintf("obs|%g|%s", scale, p),
				fmt.Sprintf("%s|obs|%g|%s", scope, scale, p), false)
			if err != nil {
				return nil, 0, 0, nil, err
			}
			if rr == nil {
				if co != nil {
					co.dropped.Inc()
					track.Instant("dropped", obs.Arg{Key: "point", Value: string(pt)})
				}
				return nil, 0, retries, &DroppedBench{Benchmark: b.Name, Point: pt}, nil
			}
			rows = append(rows, Observation{
				Benchmark: b.Name,
				Scale:     scale,
				Pair:      p,
				CoreGHz:   dev.Spec().CoreFreqGHz(p.Core),
				MemGHz:    dev.Spec().MemFreqGHz(p.Mem),
				Counters:  perIter,
				TimeS:     rr.TimePerIteration(),
				PowerW:    rr.Measurement.AvgWatts,
			})
			driver.ReleaseRunResult(rr) // the observation copied out everything it needs
		}
	}
	if co != nil {
		co.rows.Add(int64(len(rows)))
	}
	return rows, samples, retries, nil, nil
}
