// Package core implements the paper's primary contribution (Section IV):
// unified statistical power and performance models for GPU-accelerated
// systems. One multiple-linear-regression model per board covers *every*
// core/memory frequency pair by scaling each performance counter with the
// frequency of its clock domain:
//
//	power    = Σ xᵢ·cᵢ·corefreq + Σ yⱼ·mⱼ·memfreq + z      (Eq. 1)
//	exectime = Σ xᵢ·cᵢ/corefreq + Σ yⱼ·mⱼ/memfreq + z      (Eq. 2)
//
// where cᵢ are core-event counters and mⱼ memory-event counters. For the
// power model the counters enter as per-second rates (Nagasaka et al.); for
// the performance model as run totals (Hong & Kim). Variables are chosen by
// forward selection maximizing adjusted R², capped at 10 (Figs. 7/8 sweep
// 5–20).
package core

import (
	"fmt"
	"hash/fnv"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

// MaxVariables is the paper's cap on explanatory variables.
const MaxVariables = 10

// MinRunSeconds mirrors the characterization floor (≥ 10 meter samples).
const MinRunSeconds = 0.5

// Observation is one training/evaluation row: a (benchmark, input size)
// sample measured at one frequency pair.
type Observation struct {
	Benchmark string
	Scale     float64
	Pair      clock.Pair
	CoreGHz   float64
	MemGHz    float64

	// Counters holds per-iteration counter totals collected by the
	// profiler at the default pair (the paper profiles each sample once).
	Counters []float64

	// TimeS is the measured execution time of one iteration at Pair.
	TimeS float64
	// PowerW is the measured average wall power at Pair.
	PowerW float64
}

// Dataset is the full modeling corpus of one board.
type Dataset struct {
	Board   string
	Spec    *arch.Spec
	Set     *counters.Set
	Samples int // distinct (benchmark, size) samples; the paper has 114
	Rows    []Observation

	// Fault-campaign bookkeeping, populated only by CollectResilient and
	// deliberately absent from the persisted form (persist.go): Dropped
	// lists benchmarks excluded after exhausting their retry budget, and
	// Retries counts the transient-fault retries the collection absorbed.
	Dropped []DroppedBench
	Retries int
}

// RowsAtPair filters the rows measured at one frequency pair.
func (d *Dataset) RowsAtPair(p clock.Pair) []Observation {
	var out []Observation
	for _, r := range d.Rows {
		if r.Pair == p {
			out = append(out, r)
		}
	}
	return out
}

// Collect builds the modeling dataset for one board: every modeled
// benchmark at every input size is profiled once at the default clocks and
// then measured (time + wall power) at every valid frequency pair.
//
// Each benchmark's noise stream is seeded independently (seed ⊕ name), so
// the dataset is identical whether benchmarks are collected sequentially
// or concurrently (see CollectParallel).
func Collect(boardName string, benches []*workloads.Benchmark, seed int64) (*Dataset, error) {
	return collect(boardName, benches, seed, 1)
}

// CollectParallel is Collect with benchmarks gathered by a worker pool;
// each worker boots its own device, so there is no shared mutable state.
// It produces byte-identical datasets to Collect.
func CollectParallel(boardName string, benches []*workloads.Benchmark, seed int64, workers int) (*Dataset, error) {
	if workers < 1 {
		workers = 1
	}
	return collect(boardName, benches, seed, workers)
}

func collect(boardName string, benches []*workloads.Benchmark, seed int64, workers int) (*Dataset, error) {
	probe, err := driver.OpenBoard(boardName)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Board: boardName,
		Spec:  probe.Spec(),
		Set:   probe.CounterSet(),
	}

	type chunk struct {
		idx     int
		rows    []Observation
		samples int
		err     error
	}
	// Both channels are buffered to the benchmark count so every worker
	// can always deliver its chunk and exit. The previous unbuffered
	// version leaked on error: the collector returned at the first failed
	// chunk while the remaining workers blocked forever sending results
	// (and the feeder goroutine blocked sending jobs).
	if workers > len(benches) {
		workers = len(benches)
	}
	jobs := make(chan int, len(benches))
	for i := range benches {
		jobs <- i
	}
	close(jobs)
	results := make(chan chunk, len(benches))
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range jobs {
				rows, samples, err := collectBench(boardName, benches[idx], seed)
				results <- chunk{idx: idx, rows: rows, samples: samples, err: err}
			}
		}()
	}

	// Collect every chunk, then fail on the lowest-index error so the
	// reported error does not depend on goroutine scheduling.
	ordered := make([]chunk, len(benches))
	for range benches {
		c := <-results
		ordered[c.idx] = c
	}
	for _, c := range ordered {
		if c.err != nil {
			return nil, c.err
		}
		ds.Rows = append(ds.Rows, c.rows...)
		ds.Samples += c.samples
	}
	return ds, nil
}

// collectBench is the per-benchmark collector the pool workers call; a
// variable so tests can inject failures into the error path.
var collectBench = collectBenchmark

// collectBenchmark gathers one benchmark's samples on its own device.
func collectBenchmark(boardName string, b *workloads.Benchmark, seed int64) ([]Observation, int, error) {
	dev, err := driver.OpenBoard(boardName)
	if err != nil {
		return nil, 0, err
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(b.Name)) // fnv: hash.Hash.Write never errors
	dev.Seed(seed ^ int64(h.Sum64()))

	pairs := clock.ValidPairs(dev.Spec())
	var rows []Observation
	samples := 0
	sizes := b.Sizes
	if len(sizes) == 0 {
		sizes = []float64{1}
	}
	for _, scale := range sizes {
		kernels := b.Kernels(scale)
		hostGap := b.HostGap(scale)

		// Profile once at the default pair, like the paper's single
		// CUDA-profiler pass per sample. Each profiling pass and each
		// observation draws from a stream scoped to its (scale, pair), so
		// a fault-harness retry of any one measurement replays exactly the
		// noise the plain path would have drawn (see CollectResilient).
		if err := dev.SetClocks(clock.DefaultPair()); err != nil {
			return nil, 0, err
		}
		dev.SeedScoped(fmt.Sprintf("profile|%g", scale))
		dev.EnableProfiler()
		prof, err := dev.RunMetered(b.Name, kernels, hostGap, MinRunSeconds)
		dev.DisableProfiler()
		if err != nil {
			return nil, 0, fmt.Errorf("core: profiling %s: %w", b.Name, err)
		}
		perIter := make([]float64, len(prof.Counters))
		for i, c := range prof.Counters {
			perIter[i] = c / float64(prof.Iterations)
		}

		samples++
		for _, p := range pairs {
			if err := dev.SetClocks(p); err != nil {
				return nil, 0, err
			}
			dev.SeedScoped(fmt.Sprintf("obs|%g|%s", scale, p))
			rr, err := dev.RunMetered(b.Name, kernels, hostGap, MinRunSeconds)
			if err != nil {
				return nil, 0, fmt.Errorf("core: measuring %s at %s: %w", b.Name, p, err)
			}
			rows = append(rows, Observation{
				Benchmark: b.Name,
				Scale:     scale,
				Pair:      p,
				CoreGHz:   dev.Spec().CoreFreqGHz(p.Core),
				MemGHz:    dev.Spec().MemFreqGHz(p.Mem),
				Counters:  perIter,
				TimeS:     rr.TimePerIteration(),
				PowerW:    rr.Measurement.AvgWatts,
			})
		}
	}
	return rows, samples, nil
}

// CollectAll builds the modeling dataset for the paper's full corpus (the
// 33-benchmark, 114-sample modeling set) on one board.
func CollectAll(boardName string, seed int64) (*Dataset, error) {
	return Collect(boardName, workloads.ModelingSet(), seed)
}
