// Package core implements the paper's primary contribution (Section IV):
// unified statistical power and performance models for GPU-accelerated
// systems. One multiple-linear-regression model per board covers *every*
// core/memory frequency pair by scaling each performance counter with the
// frequency of its clock domain:
//
//	power    = Σ xᵢ·cᵢ·corefreq + Σ yⱼ·mⱼ·memfreq + z      (Eq. 1)
//	exectime = Σ xᵢ·cᵢ/corefreq + Σ yⱼ·mⱼ/memfreq + z      (Eq. 2)
//
// where cᵢ are core-event counters and mⱼ memory-event counters. For the
// power model the counters enter as per-second rates (Nagasaka et al.); for
// the performance model as run totals (Hong & Kim). Variables are chosen by
// forward selection maximizing adjusted R², capped at 10 (Figs. 7/8 sweep
// 5–20).
package core

import (
	"context"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/workloads"
)

// MaxVariables is the paper's cap on explanatory variables.
const MaxVariables = 10

// MinRunSeconds mirrors the characterization floor (≥ 10 meter samples).
const MinRunSeconds = 0.5

// Observation is one training/evaluation row: a (benchmark, input size)
// sample measured at one frequency pair.
type Observation struct {
	Benchmark string
	Scale     float64
	Pair      clock.Pair
	CoreGHz   float64
	MemGHz    float64

	// Counters holds per-iteration counter totals collected by the
	// profiler at the default pair (the paper profiles each sample once).
	Counters []float64

	// TimeS is the measured execution time of one iteration at Pair.
	TimeS float64
	// PowerW is the measured average wall power at Pair.
	PowerW float64
}

// Dataset is the full modeling corpus of one board.
type Dataset struct {
	Board   string
	Spec    *arch.Spec
	Set     *counters.Set
	Samples int // distinct (benchmark, size) samples; the paper has 114
	Rows    []Observation

	// Fault-campaign bookkeeping, populated only by CollectResilient and
	// deliberately absent from the persisted form (persist.go): Dropped
	// lists benchmarks excluded after exhausting their retry budget, and
	// Retries counts the transient-fault retries the collection absorbed.
	Dropped []DroppedBench
	Retries int
}

// RowsAtPair filters the rows measured at one frequency pair.
func (d *Dataset) RowsAtPair(p clock.Pair) []Observation {
	var out []Observation
	for _, r := range d.Rows {
		if r.Pair == p {
			out = append(out, r)
		}
	}
	return out
}

// Collect builds the modeling dataset for one board: every modeled
// benchmark at every input size is profiled once at the default clocks and
// then measured (time + wall power) at every valid frequency pair.
//
// Each benchmark's noise stream is seeded independently (seed ⊕ name), so
// the dataset is identical whether benchmarks are collected sequentially
// or concurrently.
//
// Deprecated: use CollectCtx (or session.Session.Collect) — Collect is
// the workers=1 configuration of the unified engine and delegates to it.
func Collect(boardName string, benches []*workloads.Benchmark, seed int64) (*Dataset, error) {
	return CollectCtx(context.Background(), boardName, benches, CollectOptions{Seed: seed, Workers: 1})
}

// CollectParallel is Collect with benchmarks gathered by a worker pool;
// each worker boots its own device, so there is no shared mutable state.
// It produces byte-identical datasets to Collect.
//
// Deprecated: use CollectCtx (or session.Session.Collect) with
// CollectOptions.Workers — CollectParallel delegates to the unified
// engine.
func CollectParallel(boardName string, benches []*workloads.Benchmark, seed int64, workers int) (*Dataset, error) {
	return CollectCtx(context.Background(), boardName, benches, CollectOptions{Seed: seed, Workers: workers})
}

// CollectAll builds the modeling dataset for the paper's full corpus (the
// 33-benchmark, 114-sample modeling set) on one board.
func CollectAll(boardName string, seed int64) (*Dataset, error) {
	return CollectCtx(context.Background(), boardName, workloads.ModelingSet(), CollectOptions{Seed: seed, Workers: 1})
}
