package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetRoundTrip(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Board != ds.Board || got.Samples != ds.Samples || len(got.Rows) != len(ds.Rows) {
		t.Fatalf("metadata mismatch: %s/%d/%d vs %s/%d/%d",
			got.Board, got.Samples, len(got.Rows), ds.Board, ds.Samples, len(ds.Rows))
	}
	for i := range ds.Rows {
		if got.Rows[i].PowerW != ds.Rows[i].PowerW || got.Rows[i].TimeS != ds.Rows[i].TimeS {
			t.Fatalf("row %d differs after round trip", i)
		}
	}
	// A model trained on the loaded dataset behaves identically.
	m1, err := Train(ds, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(got, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m1.AdjR2() != m2.AdjR2() {
		t.Errorf("training diverged after round trip: %g vs %g", m1.AdjR2(), m2.AdjR2())
	}
}

func TestModelRoundTripPredictsIdentically(t *testing.T) {
	ds := collectSmall(t, "GTX 680")
	m, err := Train(ds, Time, MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != Time || loaded.Board != m.Board {
		t.Fatalf("metadata mismatch: %v %q", loaded.Kind, loaded.Board)
	}
	for i := range ds.Rows {
		a, b := m.Predict(&ds.Rows[i]), loaded.Predict(&ds.Rows[i])
		if a != b {
			t.Fatalf("row %d: prediction %g != %g after round trip", i, a, b)
		}
	}
}

func TestNaiveFlagSurvivesRoundTrip(t *testing.T) {
	ds := collectSmall(t, "GTX 460")
	m, err := TrainNaive(ds, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	o := ds.Rows[3]
	if got, want := loaded.Predict(&o), m.Predict(&o); got != want {
		t.Errorf("naive prediction %g != %g after round trip", got, want)
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	m, _ := Train(ds, Power, 5)

	cases := map[string]func() string{
		"garbage": func() string { return "{not json" },
		"bad version": func() string {
			var buf bytes.Buffer
			_ = m.Save(&buf)
			return strings.Replace(buf.String(), `"version":1`, `"version":9`, 1)
		},
		"unknown board": func() string {
			var buf bytes.Buffer
			_ = m.Save(&buf)
			return strings.Replace(buf.String(), "GTX 480", "GTX 999", 1)
		},
		"unknown kind": func() string {
			var buf bytes.Buffer
			_ = m.Save(&buf)
			return strings.Replace(buf.String(), `"kind":"power"`, `"kind":"entropy"`, 1)
		},
		"renamed counter": func() string {
			var buf bytes.Buffer
			_ = m.Save(&buf)
			return strings.Replace(buf.String(), "inst_executed", "inst_exekuted", 1)
		},
	}
	for name, build := range cases {
		if _, err := ReadModel(strings.NewReader(build())); err == nil {
			t.Errorf("ReadModel accepted %s", name)
		}
	}
	if _, err := ReadDataset(strings.NewReader("{not json")); err == nil {
		t.Error("ReadDataset accepted garbage")
	}
}

func TestRadeonDatasetRoundTrip(t *testing.T) {
	// The future-work board persists too (it is resolved specially since
	// it is not in the paper's board set).
	rds := collectRadeonTiny(t)
	var buf bytes.Buffer
	if err := rds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Board != rds.Board || len(got.Rows) != len(rds.Rows) {
		t.Error("Radeon dataset round trip lost data")
	}
}
