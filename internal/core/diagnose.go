package core

import (
	"errors"

	"gpuperf/internal/regress"
)

// VariableDiagnostics summarizes one selected explanatory variable: its
// collinearity with the other selected variables (VIF) and its
// standardized coefficient (comparable across counter scales — the honest
// version of Fig. 11's influence ranking).
type VariableDiagnostics struct {
	Variable string
	VIF      float64
	StdCoef  float64
}

// Diagnose computes per-variable diagnostics of the trained model over a
// row set (normally the training rows).
func (m *Model) Diagnose(rows []Observation) ([]VariableDiagnostics, error) {
	if len(rows) == 0 {
		return nil, errors.New("core: no rows to diagnose over")
	}
	x, y := designMatrix(m.Kind, m.Set, rows)
	sel := regress.Project(x, m.Selection.Indices)

	stds, err := refitStandardized(sel, y)
	if err != nil {
		return nil, err
	}
	out := make([]VariableDiagnostics, len(m.Selection.Indices))
	for i, idx := range m.Selection.Indices {
		out[i] = VariableDiagnostics{Variable: m.Set.Defs[idx].Name, StdCoef: stds[i]}
	}
	if len(m.Selection.Indices) >= 2 {
		vifs, err := regress.VIF(sel)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i].VIF = vifs[i]
		}
	} else if len(out) == 1 {
		out[0].VIF = 1
	}
	return out, nil
}

// SelectionConditionNumber reports the condition number of the selected
// design matrix — how numerically fragile the fitted coefficients are.
func (m *Model) SelectionConditionNumber(rows []Observation) (float64, error) {
	if len(rows) == 0 {
		return 0, errors.New("core: no rows")
	}
	x, _ := designMatrix(m.Kind, m.Set, rows)
	return regress.ConditionNumber(regress.Project(x, m.Selection.Indices))
}

// refitStandardized refits over the given rows to obtain a Fit bound to
// this exact data (the persisted model may have been trained elsewhere)
// and returns its standardized coefficients.
func refitStandardized(sel [][]float64, y []float64) ([]float64, error) {
	fit, err := regress.OLS(sel, y)
	if err != nil {
		return nil, err
	}
	return fit.StandardizedCoef(sel, y)
}
