package core

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/counters"
	"gpuperf/internal/workloads"
)

// smallSet is a fast modeling corpus for unit tests: six benchmarks that
// span the compute↔memory spectrum.
func smallSet() []*workloads.Benchmark {
	var out []*workloads.Benchmark
	for _, name := range []string{"sgemm", "lbm", "gaussian", "hotspot", "spmv", "binomialOptions"} {
		b := workloads.ByName(name)
		if b == nil {
			panic("missing benchmark " + name)
		}
		out = append(out, b)
	}
	return out
}

func collectSmall(t *testing.T, board string) *Dataset {
	t.Helper()
	ds, err := Collect(board, smallSet(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCollectShape(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	wantSamples := 0
	for _, b := range smallSet() {
		wantSamples += len(b.Sizes)
	}
	if ds.Samples != wantSamples {
		t.Errorf("Samples = %d, want %d", ds.Samples, wantSamples)
	}
	pairs := len(clock.ValidPairs(ds.Spec))
	if want := wantSamples * pairs; len(ds.Rows) != want {
		t.Errorf("%d rows, want %d (samples × pairs)", len(ds.Rows), want)
	}
	for _, r := range ds.Rows {
		if len(r.Counters) != ds.Set.Len() {
			t.Fatalf("row has %d counters, want %d", len(r.Counters), ds.Set.Len())
		}
		if r.TimeS <= 0 || r.PowerW <= 0 || r.CoreGHz <= 0 || r.MemGHz <= 0 {
			t.Fatalf("row has non-positive measurements: %+v", r)
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	a := collectSmall(t, "GTX 460")
	b := collectSmall(t, "GTX 460")
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		if a.Rows[i].PowerW != b.Rows[i].PowerW || a.Rows[i].TimeS != b.Rows[i].TimeS {
			t.Fatalf("row %d differs across identical collections", i)
		}
	}
}

func TestRowsAtPair(t *testing.T) {
	ds := collectSmall(t, "GTX 680")
	rows := ds.RowsAtPair(clock.DefaultPair())
	if len(rows) != ds.Samples {
		t.Errorf("%d rows at (H-H), want %d", len(rows), ds.Samples)
	}
	for _, r := range rows {
		if r.Pair != clock.DefaultPair() {
			t.Errorf("row at wrong pair %s", r.Pair)
		}
	}
}

func TestFeatureRowScaling(t *testing.T) {
	// Eq. 1: power features are rates × domain frequency; Eq. 2: time
	// features are totals / domain frequency.
	set := counters.ForGeneration(arch.Kepler)
	o := &Observation{
		CoreGHz:  1.4,
		MemGHz:   3.0,
		TimeS:    2.0,
		Counters: make([]float64, set.Len()),
	}
	coreIdx := set.Index("inst_executed")        // core event
	memIdx := set.Index("fb_subp0_read_sectors") // memory event
	o.Counters[coreIdx] = 100
	o.Counters[memIdx] = 50

	p := featureRow(Power, set, o)
	if want := 100 / 2.0 * 1.4; p[coreIdx] != want {
		t.Errorf("power feature (core) = %g, want %g", p[coreIdx], want)
	}
	if want := 50 / 2.0 * 3.0; p[memIdx] != want {
		t.Errorf("power feature (mem) = %g, want %g", p[memIdx], want)
	}
	tt := featureRow(Time, set, o)
	if want := 100 / 1.4; tt[coreIdx] != want {
		t.Errorf("time feature (core) = %g, want %g", tt[coreIdx], want)
	}
	if want := 50 / 3.0; tt[memIdx] != want {
		t.Errorf("time feature (mem) = %g, want %g", tt[memIdx], want)
	}
}

func TestTrainBothModels(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	for _, kind := range []Kind{Power, Time} {
		m, err := Train(ds, kind, MaxVariables)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if n := len(m.Selection.Indices); n == 0 || n > MaxVariables {
			t.Errorf("%v: selected %d variables, want 1..%d", kind, n, MaxVariables)
		}
		if r2 := m.AdjR2(); r2 <= 0 || r2 > 1 {
			t.Errorf("%v: AdjR2 = %g out of (0,1]", kind, r2)
		}
		if vars := m.Variables(); len(vars) != len(m.Selection.Indices) {
			t.Errorf("%v: Variables() length mismatch", kind)
		}
		ev := m.Evaluate(ds.Rows)
		if ev.MeanAbsPct <= 0 || ev.MeanAbsRaw <= 0 {
			t.Errorf("%v: degenerate evaluation %+v", kind, ev)
		}
	}
}

func TestTrainEmptyDatasetFails(t *testing.T) {
	ds := &Dataset{Board: "x", Set: counters.ForGeneration(arch.Kepler)}
	if _, err := Train(ds, Power, 5); err == nil {
		t.Error("Train on empty dataset should fail")
	}
}

func TestPredictMatchesEvaluate(t *testing.T) {
	ds := collectSmall(t, "GTX 460")
	m, err := Train(ds, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Evaluate(ds.Rows[:1])
	o := ds.Rows[0]
	pred := m.Predict(&o)
	wantPct := abs(pred-o.PowerW) / o.PowerW * 100
	if abs(ev.MeanAbsPct-wantPct) > 1e-9 {
		t.Errorf("Evaluate pct %g vs direct %g", ev.MeanAbsPct, wantPct)
	}
}

func TestPerBenchmarkErrorsSortedAndComplete(t *testing.T) {
	ds := collectSmall(t, "GTX 680")
	m, err := Train(ds, Time, MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	errs := m.PerBenchmarkErrors(ds.Rows)
	if len(errs) != len(smallSet()) {
		t.Fatalf("%d benchmark errors, want %d", len(errs), len(smallSet()))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i].MeanPct < errs[i-1].MeanPct {
			t.Error("per-benchmark errors not sorted ascending")
		}
	}
}

func TestVariableSweepImproves(t *testing.T) {
	ds := collectSmall(t, "GTX 480")
	points, err := VariableSweep(ds, Power, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("sweep returned %d points", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.Vars != 2 {
		t.Errorf("sweep starts at %d vars, want 2", first.Vars)
	}
	if last.MeanAbsPct > first.MeanAbsPct*1.05 {
		t.Errorf("error grew along the sweep: %g%% → %g%%", first.MeanAbsPct, last.MeanAbsPct)
	}
}

func TestPerPairComparisonLayout(t *testing.T) {
	ds := collectSmall(t, "GTX 680")
	cols, err := PerPairComparison(ds, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	pairs := clock.ValidPairs(ds.Spec)
	if len(cols) != len(pairs)+1 {
		t.Fatalf("%d columns, want %d", len(cols), len(pairs)+1)
	}
	if cols[0].Label != "(H-H)" || cols[len(cols)-1].Label != "unified" {
		t.Errorf("column labels wrong: first %q last %q", cols[0].Label, cols[len(cols)-1].Label)
	}
	for _, c := range cols {
		b := c.Box
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			t.Errorf("%s: box stats out of order: %+v", c.Label, b)
		}
	}
}

func TestInfluencesSumToOne(t *testing.T) {
	ds := collectSmall(t, "GTX 460")
	m, err := Train(ds, Power, 5)
	if err != nil {
		t.Fatal(err)
	}
	infl := m.Influences(ds.Rows)
	if len(infl) != len(m.Selection.Indices)+1 {
		t.Fatalf("%d influences, want %d", len(infl), len(m.Selection.Indices)+1)
	}
	var sum float64
	for _, f := range infl {
		if f.Share < 0 || f.Share > 1 {
			t.Errorf("influence %q share %g out of [0,1]", f.Variable, f.Share)
		}
		sum += f.Share
	}
	if abs(sum-1) > 1e-9 {
		t.Errorf("influence shares sum to %g, want 1", sum)
	}
	if infl[len(infl)-1].Variable != "(intercept)" {
		t.Error("last influence should be the intercept")
	}
}

// TestPaperShapes reproduces Section IV-B's qualitative findings on the
// full 114-sample corpus for the two extreme generations.
func TestPaperShapes(t *testing.T) {
	r2p := map[string]float64{}
	for _, board := range []string{"GTX 285", "GTX 680"} {
		ds, err := CollectAll(board, 42)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Samples != 114 {
			t.Fatalf("%s: %d samples, want 114", board, ds.Samples)
		}
		pm, err := Train(ds, Power, MaxVariables)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := Train(ds, Time, MaxVariables)
		if err != nil {
			t.Fatal(err)
		}
		pe, te := pm.Evaluate(ds.Rows), tm.Evaluate(ds.Rows)

		// Table V vs VI: the performance model's R̄² is far above the
		// power model's.
		if te.AdjR2 < 0.90 {
			t.Errorf("%s: time AdjR2 = %.2f, want ≥ 0.90 as in Table VI", board, te.AdjR2)
		}
		if pe.AdjR2 >= te.AdjR2 {
			t.Errorf("%s: power AdjR2 %.2f not below time AdjR2 %.2f", board, pe.AdjR2, te.AdjR2)
		}
		// Table VII vs VIII: percentage errors are far larger for time
		// than for power, yet absolute power errors stay small (tens of
		// watts at most).
		if te.MeanAbsPct <= pe.MeanAbsPct {
			t.Errorf("%s: time error %.1f%% not above power error %.1f%%", board, te.MeanAbsPct, pe.MeanAbsPct)
		}
		if pe.MeanAbsRaw > 30 {
			t.Errorf("%s: power error %.1f W too large; paper caps at ~24 W", board, pe.MeanAbsRaw)
		}
		r2p[board] = pe.AdjR2
	}
	// The Kepler board's power model has the lowest R̄² (Table V: 0.18).
	if r2p["GTX 680"] >= r2p["GTX 285"] {
		t.Errorf("power AdjR2: GTX 680 (%.2f) should be below GTX 285 (%.2f)", r2p["GTX 680"], r2p["GTX 285"])
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestCollectParallelMatchesSequential(t *testing.T) {
	seq, err := Collect("GTX 460", smallSet(), 42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollectParallel("GTX 460", smallSet(), 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) || seq.Samples != par.Samples {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", len(seq.Rows), seq.Samples, len(par.Rows), par.Samples)
	}
	for i := range seq.Rows {
		a, b := seq.Rows[i], par.Rows[i]
		if a.Benchmark != b.Benchmark || a.Pair != b.Pair || a.PowerW != b.PowerW || a.TimeS != b.TimeS {
			t.Fatalf("row %d differs between sequential and parallel collection", i)
		}
		for j := range a.Counters {
			if a.Counters[j] != b.Counters[j] {
				t.Fatalf("row %d counter %d differs", i, j)
			}
		}
	}
}
