package core

import (
	"errors"
	"sort"

	"gpuperf/internal/regress"
)

// Cross-validation: the paper evaluates its models on the data they were
// trained on. For a deployed predictor the interesting number is the error
// on *unseen workloads*, so the library adds leave-one-benchmark-out
// cross-validation: every benchmark is predicted by a model trained on all
// the others. (Leaving out rows rather than benchmarks would leak — the
// same benchmark at another size or pair is nearly the same point.)

// CVFold is one held-out benchmark's result.
type CVFold struct {
	Benchmark  string
	Rows       int
	MeanAbsPct float64
	MeanAbsRaw float64
}

// CVResult summarizes a leave-one-benchmark-out run.
type CVResult struct {
	Kind  Kind
	Folds []CVFold // sorted by error, ascending
	// MeanAbsPct is the row-weighted mean over all held-out predictions.
	MeanAbsPct float64
	// TrainMeanAbsPct is the corresponding in-sample error (averaged over
	// folds), for the generalization-gap comparison.
	TrainMeanAbsPct float64
}

// CrossValidate runs leave-one-benchmark-out cross-validation over the
// dataset.
func CrossValidate(ds *Dataset, kind Kind, maxVars int) (*CVResult, error) {
	if len(ds.Rows) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	benchOrder := []string{}
	seen := map[string]bool{}
	for i := range ds.Rows {
		if b := ds.Rows[i].Benchmark; !seen[b] {
			seen[b] = true
			benchOrder = append(benchOrder, b)
		}
	}
	if len(benchOrder) < 2 {
		return nil, errors.New("core: cross-validation needs at least two benchmarks")
	}

	out := &CVResult{Kind: kind}
	var pctSum, trainSum float64
	var n int
	for _, held := range benchOrder {
		train := &Dataset{Board: ds.Board, Spec: ds.Spec, Set: ds.Set}
		var test []Observation
		for i := range ds.Rows {
			if ds.Rows[i].Benchmark == held {
				test = append(test, ds.Rows[i])
			} else {
				train.Rows = append(train.Rows, ds.Rows[i])
			}
		}
		m, err := Train(train, kind, maxVars)
		if err != nil {
			return nil, err
		}
		ev := m.Evaluate(test)
		out.Folds = append(out.Folds, CVFold{
			Benchmark:  held,
			Rows:       len(test),
			MeanAbsPct: ev.MeanAbsPct,
			MeanAbsRaw: ev.MeanAbsRaw,
		})
		pctSum += ev.MeanAbsPct * float64(len(test))
		n += len(test)
		trainSum += m.Evaluate(train.Rows).MeanAbsPct
	}
	out.MeanAbsPct = pctSum / float64(n)
	out.TrainMeanAbsPct = trainSum / float64(len(benchOrder))
	sort.Slice(out.Folds, func(i, j int) bool { return out.Folds[i].MeanAbsPct < out.Folds[j].MeanAbsPct })
	return out, nil
}

// Box returns the five-number summary of per-fold errors.
func (r *CVResult) Box() regress.BoxStats {
	vals := make([]float64, len(r.Folds))
	for i, f := range r.Folds {
		vals[i] = f.MeanAbsPct
	}
	return regress.Box(vals)
}
