package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// countingSink wraps a DatasetFold and counts rows, to pin the
// benchmark-granularity emission contract.
type countingSink struct {
	fold *DatasetFold
	mu   sync.Mutex
	rows int
}

func (s *countingSink) ConsumeRow(r Row) {
	s.mu.Lock()
	s.rows++
	s.mu.Unlock()
	s.fold.ConsumeRow(r)
}

// TestCollectStreamFoldsToCollectCtx: feeding the stream into a
// DatasetFold reproduces CollectCtx's dataset exactly at any worker
// count, and the stream carries exactly Samples rows.
func TestCollectStreamFoldsToCollectCtx(t *testing.T) {
	benches := modelBenches(t, 4)
	want, err := CollectCtx(context.Background(), "GTX 480", benches, CollectOptions{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		fold := NewDatasetFold(len(benches))
		sink := &countingSink{fold: fold}
		st, err := CollectStream(context.Background(), "GTX 480", benches,
			CollectOptions{Seed: 42, Workers: workers}, sink)
		if err != nil {
			t.Fatal(err)
		}
		got := fold.Dataset(st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: streamed dataset differs from CollectCtx", workers)
		}
		if sink.rows != len(want.Rows) {
			t.Fatalf("workers=%d: sink saw %d rows, dataset holds %d",
				workers, sink.rows, len(want.Rows))
		}
	}
}
