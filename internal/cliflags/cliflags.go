// Package cliflags is the one definition of the campaign flag block the
// command front ends share. Every campaign command (paper, characterize,
// model, gpusim, sched) registers the identical, identically-documented
// set — seed, workers, cache mode, fault profile, retry policy,
// checkpoint, and the observability outputs — and translates it to a
// session.Config with Campaign.Config. Command-specific flags (-quick,
// -table, -fig, …) stay in the commands; the campaign vocabulary lives
// here so it cannot drift between them again.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"gpuperf/internal/fault"
	"gpuperf/internal/fleet"
	"gpuperf/internal/obs"
	"gpuperf/internal/session"
	"gpuperf/internal/trace"
)

// Campaign holds the parsed shared flag block. Zero value is not ready;
// build one with Register.
type Campaign struct {
	Seed          int64
	Workers       int
	NoCache       bool
	Faults        string
	MaxRetries    int
	LaunchTimeout time.Duration
	Checkpoint    string
	Repetitions   int
	MinValid      int
	TriageOut     string
	TraceOut      string
	MetricsOut    string
	EventsOut     string
	Progress      bool
	CPUProfile    string
	MemProfile    string
	FleetSize     int
	Shards        int
	JitterProfile string
}

// Register installs the shared campaign flag block on fs (flag.CommandLine
// in the commands) and returns the destination struct. Call before
// fs.Parse.
func Register(fs *flag.FlagSet) *Campaign {
	c := &Campaign{}
	fs.Int64Var(&c.Seed, "seed", 42, "measurement-noise seed")
	fs.IntVar(&c.Workers, "workers", runtime.GOMAXPROCS(0),
		"sweep/collect pool width; 1 is the bit-exact sequential reference (output is identical at any width)")
	fs.BoolVar(&c.NoCache, "nocache", false,
		"disable launch memoization (uncached reference mode; output is identical either way)")
	fs.StringVar(&c.Faults, "faults", "",
		`fault-injection profile, e.g. "launch.hang:0.02,meter.drop:0.001" (empty: fault-free)`)
	fs.IntVar(&c.MaxRetries, "max-retries", fault.DefaultMaxRetries,
		"transient-fault retry budget per boot/clock-set/metered run")
	fs.DurationVar(&c.LaunchTimeout, "launch-timeout", fault.DefaultLaunchTimeout,
		"per-run watchdog deadline for hung launches")
	fs.StringVar(&c.Checkpoint, "checkpoint", "",
		"journal completed characterization sweep cells to this path and resume from it (modeling collections are not journaled)")
	fs.IntVar(&c.Repetitions, "repetitions", 1,
		"repetition-cohort size: run each characterization sweep N times with independent noise/fault streams and triage every cell on cross-repetition agreement (1: classic single run)")
	fs.IntVar(&c.MinValid, "min-valid", 0,
		"publishability floor in valid repetitions per cell (0: every repetition must be valid)")
	fs.StringVar(&c.TriageOut, "triage-out", "",
		"write the machine-readable validity-triage report (JSON) to this path, e.g. reports/baseline.json")
	fs.StringVar(&c.TraceOut, "trace-out", "",
		"write a Chrome/Perfetto trace of the campaign to this path")
	fs.StringVar(&c.MetricsOut, "metrics-out", "",
		"write Prometheus-style metrics exposition to this path")
	fs.StringVar(&c.EventsOut, "events-out", "",
		"write the raw instrumentation events as JSONL to this path")
	fs.BoolVar(&c.Progress, "progress", false,
		"print a periodic one-line campaign status to stderr (implies instrumentation)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the campaign to this path")
	fs.StringVar(&c.MemProfile, "memprofile", "",
		"write a pprof heap profile at campaign exit to this path")
	fs.IntVar(&c.FleetSize, "fleet-size", 0,
		"run a fleet campaign over N jittered devices generated from the board set (0: the classic per-board campaign)")
	fs.IntVar(&c.Shards, "shards", 1,
		"partition fleet devices across N shard pipelines, each with its own checkpoint journal (the report is byte-identical at any shard count)")
	fs.StringVar(&c.JitterProfile, "jitter-profile", "",
		`per-device parameter spread for fleet campaigns: a preset (default, none, tight, loose) or "key:fraction" pairs, e.g. "corevolt:0.03,leak:0.08"`)
	return c
}

// StartProfiling begins CPU profiling when -cpuprofile is set. The
// returned stop function ends the CPU profile and — when -memprofile is
// set — snapshots the heap after a GC; it is safe to defer whether or not
// either flag was given. Error paths that os.Exit skip the deferred stop,
// so a failed campaign leaves a truncated CPU profile and no heap profile,
// exactly like any pprof-instrumented tool.
func (c *Campaign) StartProfiling() (func(), error) {
	var cpuF *os.File
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}

// Config validates the block and translates it to a session.Config:
// parsed fault profile, an observability recorder when any output flag
// asked for one, cache mode, and the checkpoint path, with boards
// restricting the campaign when non-empty.
func (c *Campaign) Config(boards ...string) (session.Config, error) {
	cfg := session.DefaultConfig()
	if err := fault.ValidateHarness(c.Workers, c.MaxRetries, c.LaunchTimeout); err != nil {
		return cfg, err
	}
	cfg.Seed = c.Seed
	cfg.Workers = c.Workers
	cfg.Cache = !c.NoCache
	cfg.Boards = boards
	cfg.MaxRetries = c.MaxRetries
	cfg.LaunchTimeout = c.LaunchTimeout
	cfg.Checkpoint = c.Checkpoint
	if c.Repetitions < 1 {
		return cfg, fmt.Errorf("-repetitions must be ≥ 1 (got %d)", c.Repetitions)
	}
	if c.MinValid < 0 || c.MinValid > c.Repetitions {
		return cfg, fmt.Errorf("-min-valid %d outside [0, repetitions=%d]", c.MinValid, c.Repetitions)
	}
	cfg.Repetitions = c.Repetitions
	cfg.MinValid = c.MinValid
	cfg.TriageOut = c.TriageOut
	if c.Faults != "" {
		p, err := fault.ParseProfile(c.Faults)
		if err != nil {
			return cfg, err
		}
		cfg.Faults = p
	}
	if c.FleetSize < 0 {
		return cfg, fmt.Errorf("-fleet-size must be ≥ 0 (got %d)", c.FleetSize)
	}
	if c.Shards < 1 {
		return cfg, fmt.Errorf("-shards must be ≥ 1 (got %d)", c.Shards)
	}
	if c.FleetSize == 0 && (c.Shards > 1 || c.JitterProfile != "") {
		return cfg, fmt.Errorf("-shards/-jitter-profile require -fleet-size ≥ 1")
	}
	if c.FleetSize >= 1 {
		if _, err := fleet.ParseJitterProfile(c.JitterProfile); err != nil {
			return cfg, err
		}
		cfg.FleetSize = c.FleetSize
		cfg.FleetShards = c.Shards
		cfg.FleetJitter = c.JitterProfile
	}
	if c.Instrumented() {
		cfg.Obs = obs.New()
	}
	return cfg, nil
}

// NoFleet rejects the fleet flag block for commands that have no fleet
// campaign path (model, gpusim, sched), with the usage exit code. Call
// after fs.Parse, before Config.
func (c *Campaign) NoFleet(cmd string) {
	if c.FleetSize != 0 || c.Shards != 1 || c.JitterProfile != "" {
		Usage(cmd, fmt.Errorf("fleet campaigns are not supported by %s; use characterize or paper", cmd))
	}
}

// Instrumented reports whether any flag asked for an observability
// recorder.
func (c *Campaign) Instrumented() bool {
	return c.TraceOut != "" || c.MetricsOut != "" || c.EventsOut != "" || c.Progress
}

// StartProgress starts the periodic status line when -progress is set,
// reporting the named counters; the returned stop is safe to defer
// either way. The ticker goroutine also ends when ctx is cancelled (a
// SIGINT mid-campaign), so an aborted command never leaks it.
func (c *Campaign) StartProgress(ctx context.Context, rec *obs.Recorder, w io.Writer, counters ...string) func() {
	if !c.Progress || rec == nil {
		return func() {}
	}
	return rec.StartProgressCtx(ctx, w, 2*time.Second, counters...)
}

// WriteArtifacts flushes the recorder to the -trace-out, -metrics-out
// and -events-out paths (no-ops when unset).
func (c *Campaign) WriteArtifacts(rec *obs.Recorder) error {
	return trace.WriteArtifacts(rec, c.TraceOut, c.MetricsOut, c.EventsOut)
}

// SignalContext is the root context every campaign command runs under:
// the first interrupt cancels it — aborting sweeps and collections within
// one cell per worker, with a configured checkpoint journal left
// resumable — and restores default signal handling so a second interrupt
// kills the process.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// ServerSignalContext is the root context a serving process (gpuperfd)
// runs under: both SIGINT and SIGTERM cancel it — SIGTERM being what
// process supervisors send on shutdown — so the daemon can drain
// in-flight campaigns to a checkpoint boundary before exiting. A second
// signal kills the process (default handling is restored on the first).
func ServerSignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal prints a command-prefixed error and exits 1.
func Fatal(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(1)
}

// Usage prints a command-prefixed flag-validation error and exits 2,
// like flag's own parse failures.
func Usage(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	flag.Usage()
	os.Exit(2)
}
