package cliflags

import (
	"flag"
	"strings"
	"testing"
)

// parse registers the shared block on a fresh FlagSet and parses args —
// the exact path every campaign command takes before Config.
func parse(t *testing.T, args ...string) *Campaign {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c
}

func TestConfigFleetValidation(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{args: nil},
		{args: []string{"-fleet-size", "100"}},
		{args: []string{"-fleet-size", "100", "-shards", "8", "-jitter-profile", "tight"}},
		{args: []string{"-fleet-size", "100", "-jitter-profile", "corevolt:0.05,meter:0.02"}},
		{args: []string{"-fleet-size", "-1"}, wantErr: "-fleet-size"},
		{args: []string{"-shards", "0"}, wantErr: "-shards"},
		{args: []string{"-fleet-size", "10", "-shards", "0"}, wantErr: "-shards"},
		{args: []string{"-shards", "4"}, wantErr: "require -fleet-size"},
		{args: []string{"-jitter-profile", "tight"}, wantErr: "require -fleet-size"},
		{args: []string{"-fleet-size", "10", "-jitter-profile", "bogus:0.1"}, wantErr: "unknown"},
		{args: []string{"-fleet-size", "10", "-jitter-profile", "corevolt:1.5"}, wantErr: "[0, 1]"},
	}
	for _, c := range cases {
		camp := parse(t, c.args...)
		cfg, err := camp.Config()
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Config(%v) err = %v, want containing %q", c.args, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Config(%v): %v", c.args, err)
			continue
		}
		if camp.FleetSize >= 1 {
			if cfg.FleetSize != camp.FleetSize || cfg.FleetShards != camp.Shards || cfg.FleetJitter != camp.JitterProfile {
				t.Errorf("Config(%v) did not thread fleet fields: %+v", c.args, cfg)
			}
		} else if cfg.FleetSize != 0 {
			t.Errorf("Config(%v) set FleetSize %d without the flag", c.args, cfg.FleetSize)
		}
	}
}
