package workloads

import "gpuperf/internal/gpu"

// The Parboil suite (Table II, second block).

func init() {
	register(&Benchmark{
		Name: "cutcp", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("cutcp_lattice", blocks(2400, s), 128, 34, 4096, gpu.PhaseDesc{
				WarpInstsPerWarp: 70000,
				FracALU:          0.66, FracSFU: 0.12, FracShared: 0.06, FracMem: 0.03, FracBranch: 0.04,
				TxnPerMemInst: 1.1, L1Hit: 0.8, L2Hit: 0.7,
				WorkingSetBytes: ws(48<<10, s), MLP: 4, IssueEff: 0.9,
			})}
		},
	})

	register(&Benchmark{
		Name: "histo", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("histo_main", blocks(3600, s), 256, 18, 2048, gpu.PhaseDesc{
				WarpInstsPerWarp: 14000,
				FracALU:          0.4, FracShared: 0.08, FracMem: 0.28, FracBranch: 0.05,
				DivergentFrac: 0.15, TxnPerMemInst: 4, StoreFrac: 0.55,
				L1Hit: 0.3, L2Hit: 0.5,
				WorkingSetBytes: ws(2<<20, s), MLP: 5, IssueEff: 0.65,
			})}
		},
	})

	register(&Benchmark{
		Name: "lbm", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("lbm_stream_collide", blocks(5600, s), 128, 36, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 13000,
				FracALU:          0.32, FracDP: 0.06, FracMem: 0.4, FracBranch: 0.02,
				TxnPerMemInst: 1.1, StoreFrac: 0.45, L1Hit: 0.1, L2Hit: 0.2,
				WorkingSetBytes: ws(16<<20, s), MLP: 9, IssueEff: 0.72,
			})}
		},
	})

	register(&Benchmark{
		Name: "mri-gridding", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("gridding_kernel", blocks(3000, s), 256, 28, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 15000,
				FracALU:          0.4, FracSFU: 0.06, FracMem: 0.27, FracBranch: 0.07,
				DivergentFrac: 0.3, TxnPerMemInst: 6, StoreFrac: 0.5,
				L1Hit: 0.2, L2Hit: 0.35,
				WorkingSetBytes: ws(8<<20, s), MLP: 4, IssueEff: 0.55,
			})}
		},
	})

	register(&Benchmark{
		Name: "mri-q", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("computeQ", blocks(2600, s), 256, 24, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 60000,
				FracALU:          0.52, FracSFU: 0.3, FracMem: 0.01, FracBranch: 0.02,
				TxnPerMemInst: 1, L1Hit: 0.9, L2Hit: 0.8,
				WorkingSetBytes: ws(16<<10, s), MLP: 4, IssueEff: 0.92,
			})}
		},
	})

	register(&Benchmark{
		Name: "sad", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("sad_calc", blocks(3800, s), 128, 22, 3072, gpu.PhaseDesc{
				WarpInstsPerWarp: 24000,
				FracALU:          0.52, FracShared: 0.06, FracMem: 0.2, FracBranch: 0.04,
				TxnPerMemInst: 1.2, L1Hit: 0.55, L2Hit: 0.55,
				WorkingSetBytes: ws(512<<10, s), MLP: 6, IssueEff: 0.8,
			})}
		},
	})

	register(&Benchmark{
		Name: "sgemm", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("sgemm_tiled", blocks(3400, s), 128, 40, 8192, gpu.PhaseDesc{
				WarpInstsPerWarp: 80000,
				FracALU:          0.7, FracShared: 0.12, FracMem: 0.035, FracBranch: 0.02,
				TxnPerMemInst: 1, L1Hit: 0.8, L2Hit: 0.75,
				WorkingSetBytes: ws(96<<10, s), MLP: 5, IssueEff: 0.95,
			})}
		},
	})

	register(&Benchmark{
		Name: "spmv", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("spmv_jds", blocks(4400, s), 256, 18, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 10000,
				FracALU:          0.3, FracMem: 0.38, FracBranch: 0.08,
				DivergentFrac: 0.2, TxnPerMemInst: 5, L1Hit: 0.25, L2Hit: 0.4,
				WorkingSetBytes: ws(8<<20, s), MLP: 4, IssueEff: 0.55,
			})}
		},
	})

	register(&Benchmark{
		Name: "stencil", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("stencil_7pt", blocks(5000, s), 256, 20, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 11000,
				FracALU:          0.36, FracMem: 0.38, FracBranch: 0.03,
				TxnPerMemInst: 1.05, StoreFrac: 0.3, L1Hit: 0.3, L2Hit: 0.35,
				WorkingSetBytes: ws(8<<20, s), MLP: 9, IssueEff: 0.75,
			})}
		},
	})

	register(&Benchmark{
		Name: "tpacf", Suite: Parboil, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("tpacf_hist", blocks(2800, s), 256, 30, 6144, gpu.PhaseDesc{
				WarpInstsPerWarp: 50000,
				FracALU:          0.6, FracSFU: 0.08, FracShared: 0.08, FracMem: 0.045, FracBranch: 0.09,
				DivergentFrac: 0.3, TxnPerMemInst: 1.3, L1Hit: 0.6, L2Hit: 0.6,
				WorkingSetBytes: ws(128<<10, s), MLP: 4, IssueEff: 0.8,
			})}
		},
	})
}
