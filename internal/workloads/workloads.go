// Package workloads provides synthetic stand-ins for the 37 benchmarks of
// Table II (Rodinia, Parboil, CUDA SDK samples and basic matrix kernels).
//
// Real CUDA binaries cannot run here, so each benchmark is a deterministic
// kernel specification for the timing simulator, positioned on the
// compute↔memory spectrum the way the real application behaves: Backprop is
// compute-bound with a cache-resident working set, Streamcluster streams
// memory, Gaussian flips between regimes with frequency, BFS and MUMmerGPU
// are divergent and irregular, and so on. The characterization results of
// Section III depend only on these positions, not on the actual arithmetic.
//
// Each benchmark also carries the input-size scales used to build the
// paper's 114 modeling samples (Section IV-A), and flags recording whether
// it appears in Table IV and in the modeling set (the paper excludes
// backprop, mummergpu, pathfinder and bfs from modeling because the CUDA
// profiler failed on them).
package workloads

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"gpuperf/internal/gpu"
)

// Suite identifies the benchmark suite a workload belongs to.
type Suite int

const (
	// Rodinia is the Rodinia heterogeneous benchmark suite.
	Rodinia Suite = iota
	// Parboil is the UIUC Parboil suite.
	Parboil
	// CUDASDK is the NVIDIA CUDA SDK sample set.
	CUDASDK
	// Matrix is the paper's basic matrix-operation set.
	Matrix
)

// String returns the suite name as the paper prints it.
func (s Suite) String() string {
	switch s {
	case Rodinia:
		return "Rodinia"
	case Parboil:
		return "Parboil"
	case CUDASDK:
		return "CUDA SDK"
	case Matrix:
		return "Matrix"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Benchmark is one synthetic workload.
type Benchmark struct {
	Name  string
	Suite Suite

	// InTable4 marks the 33 benchmarks whose best frequency pair the
	// paper reports in Table IV.
	InTable4 bool

	// Modeled marks benchmarks included in the Section IV regression set.
	Modeled bool

	// Sizes are the input scales used to build modeling samples.
	Sizes []float64

	// HostFixed and HostPerScale parameterize the host-side time per
	// kernel-sequence iteration (setup, cudaMemcpy, driver overhead):
	// HostGap(scale) = HostFixed + HostPerScale·scale, in seconds. Zero
	// values fall back to a deterministic per-benchmark default, since
	// every real application has some host component.
	HostFixed    float64
	HostPerScale float64

	// build constructs the kernel sequence for one input scale.
	build func(scale float64) []*gpu.KernelDesc
}

// HostGap returns the host-side seconds per iteration at an input scale.
func (b *Benchmark) HostGap(scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	fixed, perScale := b.HostFixed, b.HostPerScale
	if fixed == 0 && perScale == 0 {
		// Deterministic defaults: host fractions across real suites vary
		// widely; spread the fixed part over [15 ms, 400 ms] and the
		// size-dependent (memcpy) part over [4 ms, 150 ms] per unit scale.
		h := fnv.New32a()
		_, _ = h.Write([]byte(b.Name)) // fnv: hash.Hash.Write never errors
		_, _ = h.Write([]byte("host"))
		v := h.Sum32()
		fixed = 0.015 + 0.385*float64(v%997)/996
		perScale = 0.004 + 0.146*float64((v/997)%997)/996
	}
	return fixed + perScale*scale
}

// Kernels builds the benchmark's kernel launch sequence at an input scale.
// Scale 1 is the paper's "maximum feasible input"; modeling samples use the
// scales in Sizes.
func (b *Benchmark) Kernels(scale float64) []*gpu.KernelDesc {
	if scale <= 0 {
		scale = 1
	}
	return b.build(scale)
}

// ws scales a nominal working set with input size: larger inputs overflow
// caches sublinearly (blocks partition the data, but cross-block reuse
// distances grow), modeled as base·scale^0.7.
func ws(base int, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return float64(base) * math.Pow(scale, 0.7)
}

// blocks scales a base block count, keeping at least one block.
func blocks(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		return 1
	}
	return n
}

// kern assembles a single-phase kernel. Each kernel gets a deterministic
// data-dependent switching-activity factor derived from its name: real
// kernels differ in operand toggling in ways performance counters cannot
// observe, and this heterogeneity is a large part of why the paper's power
// model shows low R̄² despite small absolute errors.
func kern(name string, nblocks, tpb, regs, shared int, ph gpu.PhaseDesc) *gpu.KernelDesc {
	ph.Name = "main"
	if ph.ActivityFactor == 0 {
		ph.ActivityFactor = activityFactor(name, nblocks)
	}
	return &gpu.KernelDesc{
		Name:            name,
		Blocks:          nblocks,
		ThreadsPerBlock: tpb,
		RegsPerThread:   regs,
		SharedPerBlock:  shared,
		Phases:          []gpu.PhaseDesc{ph},
	}
}

// activityFactor spreads kernels over [0.62, 1.47] deterministically. The
// grid size enters the hash because operand toggling genuinely varies with
// the input data, not just the kernel code.
func activityFactor(name string, nblocks int) float64 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name)) // fnv: hash.Hash.Write never errors
	_, _ = h.Write([]byte{byte(nblocks), byte(nblocks >> 8)})
	return 0.62 + 0.85*float64(h.Sum32()%1000)/999
}

var registry []*Benchmark

func register(b *Benchmark) {
	registry = append(registry, b)
}

// All returns every benchmark of Table II in a stable order: suite order as
// in the paper, then name order within the suite.
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName finds a benchmark by its exact name, or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Table4 returns the 33 benchmarks of Table IV in paper order.
func Table4() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.InTable4 {
			out = append(out, b)
		}
	}
	return out
}

// ModelingSet returns the benchmarks used to train the Section IV models.
func ModelingSet() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Modeled {
			out = append(out, b)
		}
	}
	return out
}

// SampleCount returns the total number of modeling samples (benchmark ×
// input-size combinations); the paper reports 114.
func SampleCount() int {
	n := 0
	for _, b := range ModelingSet() {
		n += len(b.Sizes)
	}
	return n
}

// Modeling input scales. The paper's execution times span milliseconds to
// tens of seconds; the wide scale range reproduces that dynamic range,
// which is what makes the performance model's R̄² high while its percentage
// errors stay large (Section IV-B).
var (
	sizes3 = []float64{0.25, 1, 4}
	sizes4 = []float64{0.25, 1, 4, 16}
)
