package workloads

import "gpuperf/internal/gpu"

// The CUDA SDK samples (Table II, third block).

func init() {
	register(&Benchmark{
		Name: "binomialOptions", Suite: CUDASDK, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("binomialOptionsKernel", blocks(2000, s), 256, 22, 6144, gpu.PhaseDesc{
				WarpInstsPerWarp: 90000,
				FracALU:          0.74, FracShared: 0.1, FracMem: 0.005, FracBranch: 0.03,
				TxnPerMemInst: 1, L1Hit: 0.9, L2Hit: 0.8,
				WorkingSetBytes: ws(24<<10, s), MLP: 4, IssueEff: 0.95,
			})}
		},
	})

	register(&Benchmark{
		Name: "BlackScholes", Suite: CUDASDK, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("BlackScholesGPU", blocks(4600, s), 256, 20, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 15000,
				FracALU:          0.44, FracSFU: 0.2, FracMem: 0.18, FracBranch: 0.02,
				TxnPerMemInst: 1, StoreFrac: 0.4, L1Hit: 0.1, L2Hit: 0.2,
				WorkingSetBytes: ws(8<<20, s), MLP: 8, IssueEff: 0.85,
			})}
		},
	})

	register(&Benchmark{
		Name: "concurrentKernels", Suite: CUDASDK, InTable4: true,
		Modeled: true, Sizes: sizes3,
		// A handful of tiny kernels that underuse the machine: most SMs
		// idle, so static power dominates and low clocks win (the paper
		// finds (L-M)/(L-L)/(M-M) best across boards).
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("concurrent_small", blocks(20, s), 128, 16, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 700000,
				FracALU:          0.5, FracMem: 0.06, FracBranch: 0.04,
				TxnPerMemInst: 1.2, L1Hit: 0.5, L2Hit: 0.5,
				WorkingSetBytes: ws(256<<10, s), MLP: 3, IssueEff: 0.6,
			})}
		},
	})

	register(&Benchmark{
		Name: "histogram64", Suite: CUDASDK, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("histogram64Kernel", blocks(3200, s), 128, 16, 4096, gpu.PhaseDesc{
				WarpInstsPerWarp: 20000,
				FracALU:          0.4, FracShared: 0.32, FracMem: 0.1, FracBranch: 0.04,
				TxnPerMemInst: 1.1, L1Hit: 0.5, L2Hit: 0.5,
				WorkingSetBytes: ws(256<<10, s), MLP: 5, IssueEff: 0.75,
			})}
		},
	})

	register(&Benchmark{
		Name: "histogram256", Suite: CUDASDK, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("histogram256Kernel", blocks(3200, s), 192, 18, 7168, gpu.PhaseDesc{
				WarpInstsPerWarp: 18000,
				FracALU:          0.36, FracShared: 0.38, FracMem: 0.1, FracBranch: 0.05,
				DivergentFrac: 0.12, TxnPerMemInst: 1.15, L1Hit: 0.5, L2Hit: 0.5,
				WorkingSetBytes: ws(512<<10, s), MLP: 5, IssueEff: 0.7,
			})}
		},
	})

	register(&Benchmark{
		Name: "MersenneTwister", Suite: CUDASDK, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("RandomGPU", blocks(3000, s), 128, 24, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 30000,
				FracALU:          0.62, FracMem: 0.12, FracBranch: 0.03,
				TxnPerMemInst: 1, StoreFrac: 0.7, L1Hit: 0.2, L2Hit: 0.3,
				WorkingSetBytes: ws(4<<20, s), MLP: 8, IssueEff: 0.85,
			})}
		},
	})
}
