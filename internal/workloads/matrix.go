package workloads

import "gpuperf/internal/gpu"

// The basic matrix kernels (Table II, fourth block). They are modeling
// samples only; Table IV does not report them.

func init() {
	register(&Benchmark{
		Name: "MAdd", Suite: Matrix, InTable4: false,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("matrixAdd", blocks(6000, s), 256, 10, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 8000,
				FracALU:          0.2, FracMem: 0.5, FracBranch: 0.01,
				TxnPerMemInst: 1, StoreFrac: 0.33, L1Hit: 0.05, L2Hit: 0.1,
				WorkingSetBytes: ws(32<<20, s), MLP: 10, IssueEff: 0.8,
			})}
		},
	})

	register(&Benchmark{
		Name: "MMul", Suite: Matrix, InTable4: false,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("matrixMul", blocks(3200, s), 256, 30, 8192, gpu.PhaseDesc{
				WarpInstsPerWarp: 70000,
				FracALU:          0.7, FracShared: 0.14, FracMem: 0.03, FracBranch: 0.02,
				TxnPerMemInst: 1, L1Hit: 0.85, L2Hit: 0.75,
				WorkingSetBytes: ws(96<<10, s), MLP: 5, IssueEff: 0.95,
			})}
		},
	})

	register(&Benchmark{
		Name: "MTranspose", Suite: Matrix, InTable4: false,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("transpose", blocks(5200, s), 256, 12, 4224, gpu.PhaseDesc{
				WarpInstsPerWarp: 7000,
				FracALU:          0.15, FracShared: 0.12, FracMem: 0.48, FracBranch: 0.01,
				TxnPerMemInst: 2.2, StoreFrac: 0.5, L1Hit: 0.1, L2Hit: 0.25,
				WorkingSetBytes: ws(16<<20, s), MLP: 8, IssueEff: 0.75,
			})}
		},
	})
}
