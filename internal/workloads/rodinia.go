package workloads

import "gpuperf/internal/gpu"

// The Rodinia suite (Table II, first block). Parameter positioning follows
// the applications' published characterizations: backprop/lavaMD/leukocyte
// are compute-bound, streamcluster/nn/cfd stream memory, bfs/mummergpu are
// divergent and irregular, the rest sit in between.

func init() {
	register(&Benchmark{
		Name: "backprop", Suite: Rodinia, InTable4: true,
		HostFixed: 0.010, HostPerScale: 0.004,
		// The CUDA profiler failed on backprop (Section IV-A), so it is
		// excluded from the modeling set despite being the Fig. 1 star.
		Modeled: false, Sizes: nil,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{
				kern("bpnn_layerforward", blocks(3000, s), 256, 20, 9216, gpu.PhaseDesc{
					WarpInstsPerWarp: 40000,
					FracALU:          0.68, FracShared: 0.14, FracMem: 0.004, FracBranch: 0.04,
					TxnPerMemInst: 1, L1Hit: 0.85, L2Hit: 0.8,
					WorkingSetBytes: ws(8<<10, s), MLP: 4, IssueEff: 0.9,
				}),
				kern("bpnn_adjust_weights", blocks(3000, s), 256, 18, 4096, gpu.PhaseDesc{
					WarpInstsPerWarp: 24000,
					FracALU:          0.7, FracShared: 0.08, FracMem: 0.006, FracBranch: 0.04,
					TxnPerMemInst: 1, StoreFrac: 0.5, L1Hit: 0.8, L2Hit: 0.75,
					WorkingSetBytes: ws(12<<10, s), MLP: 4, IssueEff: 0.88,
				}),
			}
		},
	})

	register(&Benchmark{
		Name: "bfs", Suite: Rodinia, InTable4: true,
		Modeled: false, Sizes: nil, // profiler failure, like the paper
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("bfs_kernel", blocks(4000, s), 256, 14, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 9000,
				FracALU:          0.3, FracMem: 0.33, FracBranch: 0.12,
				DivergentFrac: 0.5, TxnPerMemInst: 8, StoreFrac: 0.15,
				L1Hit: 0.15, L2Hit: 0.3,
				WorkingSetBytes: ws(8<<20, s), MLP: 3, IssueEff: 0.5,
			})}
		},
	})

	register(&Benchmark{
		Name: "cfd", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("cuda_compute_flux", blocks(5000, s), 192, 30, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 16000,
				FracALU:          0.38, FracDP: 0.04, FracMem: 0.33, FracBranch: 0.04,
				TxnPerMemInst: 1.5, StoreFrac: 0.25, L1Hit: 0.2, L2Hit: 0.35,
				WorkingSetBytes: ws(4<<20, s), MLP: 8, IssueEff: 0.75,
			})}
		},
	})

	register(&Benchmark{
		Name: "gaussian", Suite: Rodinia, InTable4: true,
		HostFixed: 0.020, HostPerScale: 0.008,
		Modeled: true, Sizes: sizes4,
		// Gaussian is the paper's Fig. 3 example of regime-flipping
		// behaviour: compute and memory bounds sit close together, so
		// the binding resource changes with the frequency pair.
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{
				kern("gaussian_fan1", blocks(1500, s), 256, 16, 0, gpu.PhaseDesc{
					WarpInstsPerWarp: 20000,
					FracALU:          0.52, FracMem: 0.2, FracBranch: 0.05,
					TxnPerMemInst: 1.2, StoreFrac: 0.3, L1Hit: 0.45, L2Hit: 0.55,
					WorkingSetBytes: ws(512<<10, s), MLP: 5, IssueEff: 0.75,
				}),
				kern("gaussian_fan2", blocks(3000, s), 256, 18, 0, gpu.PhaseDesc{
					WarpInstsPerWarp: 14000,
					FracALU:          0.48, FracMem: 0.24, FracBranch: 0.05,
					TxnPerMemInst: 1.25, StoreFrac: 0.35, L1Hit: 0.4, L2Hit: 0.5,
					WorkingSetBytes: ws(1<<20, s), MLP: 5, IssueEff: 0.72,
				}),
			}
		},
	})

	register(&Benchmark{
		Name: "heartwall", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("heartwall_kernel", blocks(2500, s), 256, 28, 8192, gpu.PhaseDesc{
				WarpInstsPerWarp: 45000,
				FracALU:          0.62, FracSFU: 0.08, FracShared: 0.06, FracMem: 0.08, FracBranch: 0.05,
				TxnPerMemInst: 1.3, L1Hit: 0.7, L2Hit: 0.6,
				WorkingSetBytes: ws(128<<10, s), MLP: 4, IssueEff: 0.85,
			})}
		},
	})

	register(&Benchmark{
		Name: "hotspot", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("hotspot_calc_temp", blocks(3500, s), 256, 22, 12288, gpu.PhaseDesc{
				WarpInstsPerWarp: 30000,
				FracALU:          0.55, FracShared: 0.2, FracMem: 0.05, FracBranch: 0.06,
				TxnPerMemInst: 1.1, StoreFrac: 0.3, L1Hit: 0.6, L2Hit: 0.6,
				WorkingSetBytes: ws(96<<10, s), MLP: 4, IssueEff: 0.85,
			})}
		},
	})

	register(&Benchmark{
		Name: "kmeans", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{
				kern("kmeans_point", blocks(4000, s), 256, 18, 0, gpu.PhaseDesc{
					WarpInstsPerWarp: 18000,
					FracALU:          0.47, FracMem: 0.27, FracBranch: 0.04,
					TxnPerMemInst: 1.1, L1Hit: 0.5, L2Hit: 0.5,
					WorkingSetBytes: ws(1<<20, s), MLP: 6, IssueEff: 0.8,
				}),
				kern("kmeans_swap", blocks(1200, s), 256, 12, 0, gpu.PhaseDesc{
					WarpInstsPerWarp: 8000,
					FracALU:          0.3, FracMem: 0.4, FracBranch: 0.02,
					TxnPerMemInst: 1.6, StoreFrac: 0.5, L1Hit: 0.2, L2Hit: 0.35,
					WorkingSetBytes: ws(4<<20, s), MLP: 8, IssueEff: 0.7,
				}),
			}
		},
	})

	register(&Benchmark{
		Name: "lavaMD", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("lavaMD_kernel", blocks(2200, s), 128, 40, 7168, gpu.PhaseDesc{
				WarpInstsPerWarp: 90000,
				FracALU:          0.72, FracSFU: 0.06, FracShared: 0.08, FracMem: 0.025, FracBranch: 0.03,
				TxnPerMemInst: 1.2, L1Hit: 0.75, L2Hit: 0.7,
				WorkingSetBytes: ws(64<<10, s), MLP: 4, IssueEff: 0.9,
			})}
		},
	})

	register(&Benchmark{
		Name: "leukocyte", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("leukocyte_track", blocks(2600, s), 256, 32, 6144, gpu.PhaseDesc{
				WarpInstsPerWarp: 55000,
				FracALU:          0.64, FracSFU: 0.1, FracShared: 0.05, FracMem: 0.04, FracBranch: 0.04,
				TxnPerMemInst: 1.2, L1Hit: 0.7, L2Hit: 0.65,
				WorkingSetBytes: ws(64<<10, s), MLP: 4, IssueEff: 0.88,
			})}
		},
	})

	register(&Benchmark{
		Name: "lud", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("lud_internal", blocks(2800, s), 256, 24, 8192, gpu.PhaseDesc{
				WarpInstsPerWarp: 26000,
				FracALU:          0.52, FracShared: 0.15, FracMem: 0.12, FracBranch: 0.04,
				TxnPerMemInst: 1.2, StoreFrac: 0.25, L1Hit: 0.55, L2Hit: 0.6,
				WorkingSetBytes: ws(256<<10, s), MLP: 5, IssueEff: 0.82,
			})}
		},
	})

	register(&Benchmark{
		Name: "mummergpu", Suite: Rodinia, InTable4: true,
		Modeled: false, Sizes: nil, // profiler failure, like the paper
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("mummergpu_match", blocks(3600, s), 256, 24, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 12000,
				FracALU:          0.3, FracMem: 0.3, FracBranch: 0.14,
				DivergentFrac: 0.45, TxnPerMemInst: 10, L1Hit: 0.25, L2Hit: 0.35,
				WorkingSetBytes: ws(16<<20, s), MLP: 2.5, IssueEff: 0.45,
			})}
		},
	})

	register(&Benchmark{
		Name: "nn", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("nn_euclid", blocks(4200, s), 256, 12, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 9000,
				FracALU:          0.32, FracSFU: 0.04, FracMem: 0.42, FracBranch: 0.03,
				TxnPerMemInst: 1.05, L1Hit: 0.1, L2Hit: 0.2,
				WorkingSetBytes: ws(8<<20, s), MLP: 8, IssueEff: 0.72,
			})}
		},
	})

	register(&Benchmark{
		Name: "nw", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("needle_cuda", blocks(2400, s), 128, 20, 8448, gpu.PhaseDesc{
				WarpInstsPerWarp: 20000,
				FracALU:          0.38, FracShared: 0.24, FracMem: 0.17, FracBranch: 0.06,
				TxnPerMemInst: 1.3, StoreFrac: 0.3, L1Hit: 0.4, L2Hit: 0.5,
				WorkingSetBytes: ws(2<<20, s), MLP: 4, IssueEff: 0.7,
			})}
		},
	})

	register(&Benchmark{
		Name: "particlefilter_float", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("particle_kernel", blocks(3000, s), 256, 26, 4096, gpu.PhaseDesc{
				WarpInstsPerWarp: 36000,
				FracALU:          0.58, FracSFU: 0.14, FracShared: 0.04, FracMem: 0.05, FracBranch: 0.05,
				TxnPerMemInst: 1.2, L1Hit: 0.6, L2Hit: 0.6,
				WorkingSetBytes: ws(128<<10, s), MLP: 4, IssueEff: 0.85,
			})}
		},
	})

	register(&Benchmark{
		Name: "pathfinder", Suite: Rodinia, InTable4: true,
		Modeled: false, Sizes: nil, // profiler failure, like the paper
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("dynproc_kernel", blocks(3200, s), 256, 18, 10240, gpu.PhaseDesc{
				WarpInstsPerWarp: 28000,
				FracALU:          0.48, FracShared: 0.3, FracMem: 0.035, FracBranch: 0.07,
				TxnPerMemInst: 1.1, L1Hit: 0.7, L2Hit: 0.7,
				WorkingSetBytes: ws(48<<10, s), MLP: 4, IssueEff: 0.82,
			})}
		},
	})

	register(&Benchmark{
		Name: "srad_v1", Suite: Rodinia, InTable4: true,
		Modeled: true, Sizes: sizes4,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{
				kern("srad_kernel1", blocks(3000, s), 256, 22, 0, gpu.PhaseDesc{
					WarpInstsPerWarp: 22000,
					FracALU:          0.5, FracSFU: 0.06, FracMem: 0.22, FracBranch: 0.04,
					TxnPerMemInst: 1.1, StoreFrac: 0.25, L1Hit: 0.5, L2Hit: 0.55,
					WorkingSetBytes: ws(1<<20, s), MLP: 6, IssueEff: 0.8,
				}),
				kern("srad_kernel2", blocks(3000, s), 256, 20, 0, gpu.PhaseDesc{
					WarpInstsPerWarp: 16000,
					FracALU:          0.46, FracMem: 0.26, FracBranch: 0.04,
					TxnPerMemInst: 1.15, StoreFrac: 0.35, L1Hit: 0.45, L2Hit: 0.5,
					WorkingSetBytes: ws(2<<20, s), MLP: 6, IssueEff: 0.78,
				}),
			}
		},
	})

	register(&Benchmark{
		Name: "srad_v2", Suite: Rodinia, InTable4: false,
		Modeled: true, Sizes: sizes3,
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("srad_cuda", blocks(3400, s), 256, 24, 4096, gpu.PhaseDesc{
				WarpInstsPerWarp: 18000,
				FracALU:          0.44, FracSFU: 0.04, FracShared: 0.05, FracMem: 0.27, FracBranch: 0.04,
				TxnPerMemInst: 1.1, StoreFrac: 0.3, L1Hit: 0.45, L2Hit: 0.5,
				WorkingSetBytes: ws(2<<20, s), MLP: 7, IssueEff: 0.76,
			})}
		},
	})

	register(&Benchmark{
		Name: "streamcluster", Suite: Rodinia, InTable4: true,
		HostFixed: 0.015, HostPerScale: 0.005,
		Modeled: true, Sizes: sizes4,
		// Fig. 2's memory-intensive showcase: bandwidth-hungry but also
		// latency-sensitive (moderate MLP), so cutting the core clock
		// costs performance on Fermi while Kepler's voltage headroom
		// still makes (M-H) the best-energy pair.
		build: func(s float64) []*gpu.KernelDesc {
			return []*gpu.KernelDesc{kern("pgain_kernel", blocks(5200, s), 256, 16, 0, gpu.PhaseDesc{
				WarpInstsPerWarp: 12000,
				FracALU:          0.36, FracMem: 0.38, FracBranch: 0.04,
				TxnPerMemInst: 1.3, StoreFrac: 0.2, L1Hit: 0.25, L2Hit: 0.4,
				WorkingSetBytes: ws(4<<20, s), MLP: 4.5, IssueEff: 0.7,
			})}
		},
	})
}
