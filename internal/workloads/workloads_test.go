package workloads

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

func TestTableIICounts(t *testing.T) {
	bySuite := map[Suite]int{}
	for _, b := range All() {
		bySuite[b.Suite]++
	}
	want := map[Suite]int{Rodinia: 18, Parboil: 10, CUDASDK: 6, Matrix: 3}
	for s, n := range want {
		if bySuite[s] != n {
			t.Errorf("%v: %d benchmarks, want %d", s, bySuite[s], n)
		}
	}
	if got := len(All()); got != 37 {
		t.Errorf("%d benchmarks total, want 37", got)
	}
}

func TestTable4Has33Benchmarks(t *testing.T) {
	if got := len(Table4()); got != 33 {
		t.Errorf("Table IV set has %d benchmarks, want 33", got)
	}
	for _, b := range Table4() {
		if b.Suite == Matrix {
			t.Errorf("Table IV should not include matrix kernel %q", b.Name)
		}
	}
}

func TestModelingSetMatchesPaper(t *testing.T) {
	// Section IV-A: everything except backprop, mummergpu, pathfinder
	// and bfs, totalling 114 (benchmark, input-size) samples.
	excluded := map[string]bool{"backprop": true, "mummergpu": true, "pathfinder": true, "bfs": true}
	for _, b := range All() {
		if excluded[b.Name] == b.Modeled {
			t.Errorf("%s: Modeled = %v, want %v", b.Name, b.Modeled, !excluded[b.Name])
		}
		if b.Modeled && len(b.Sizes) == 0 {
			t.Errorf("%s: modeled benchmark has no sizes", b.Name)
		}
		if !b.Modeled && len(b.Sizes) != 0 {
			t.Errorf("%s: excluded benchmark has sizes", b.Name)
		}
	}
	if got := len(ModelingSet()); got != 33 {
		t.Errorf("modeling set has %d benchmarks, want 33", got)
	}
	if got := SampleCount(); got != 114 {
		t.Errorf("SampleCount = %d, want 114", got)
	}
}

func TestByName(t *testing.T) {
	for _, b := range All() {
		if got := ByName(b.Name); got != b {
			t.Errorf("ByName(%q) failed", b.Name)
		}
	}
	if ByName("fortnite") != nil {
		t.Error("ByName of unknown benchmark should be nil")
	}
}

func TestAllKernelsValidateOnAllBoards(t *testing.T) {
	for _, b := range All() {
		scales := b.Sizes
		if len(scales) == 0 {
			scales = []float64{1}
		}
		for _, s := range scales {
			for _, k := range b.Kernels(s) {
				if err := k.Validate(); err != nil {
					t.Errorf("%s (scale %g): %v", b.Name, s, err)
				}
			}
		}
	}
}

func TestKernelsScaleWithInput(t *testing.T) {
	for _, b := range All() {
		small := b.Kernels(1)
		large := b.Kernels(4)
		if len(small) != len(large) {
			t.Errorf("%s: kernel count changed with scale", b.Name)
			continue
		}
		for i := range small {
			if large[i].Blocks < small[i].Blocks {
				t.Errorf("%s kernel %d: blocks shrank with scale", b.Name, i)
			}
		}
	}
	// Non-positive scale falls back to 1.
	b := ByName("sgemm")
	if got, want := b.Kernels(-1)[0].Blocks, b.Kernels(1)[0].Blocks; got != want {
		t.Errorf("Kernels(-1) blocks = %d, want %d", got, want)
	}
}

func TestBenchmarksRunOnAllBoards(t *testing.T) {
	// Every benchmark must simulate successfully on every board at the
	// default clocks, with a sane positive runtime.
	for _, spec := range arch.AllBoards() {
		sim := gpu.New(spec, clock.NewState(spec))
		for _, b := range All() {
			var total float64
			for _, k := range b.Kernels(1) {
				res, err := sim.RunKernel(k)
				if err != nil {
					t.Fatalf("%s on %s: %v", b.Name, spec.Name, err)
				}
				total += res.Time
			}
			if total <= 0 || total > 60 {
				t.Errorf("%s on %s: runtime %.3g s implausible", b.Name, spec.Name, total)
			}
		}
	}
}

func TestSpectrumPositioning(t *testing.T) {
	// Sanity-check the paper's anchor benchmarks: Backprop must be
	// compute-bound (insensitive to memory clock), Streamcluster
	// memory-bound (sensitive to it) on every board.
	for _, spec := range arch.AllBoards() {
		clk := clock.NewState(spec)
		sim := gpu.New(spec, clk)
		timeAt := func(b *Benchmark, p clock.Pair) float64 {
			if err := clk.SetPair(p); err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, k := range b.Kernels(1) {
				res, err := sim.RunKernel(k)
				if err != nil {
					t.Fatal(err)
				}
				total += res.Time
			}
			return total
		}
		hh := clock.DefaultPair()
		hl := clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqLow}
		hm := clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqMid}

		bp := ByName("backprop")
		if ratio := timeAt(bp, hl) / timeAt(bp, hh); ratio > 1.25 {
			t.Errorf("%s: backprop slowed %.2f× at Mem-L; want compute-bound", spec.Name, ratio)
		}
		sc := ByName("streamcluster")
		if ratio := timeAt(sc, hm) / timeAt(sc, hh); ratio < 1.5 {
			t.Errorf("%s: streamcluster slowed only %.2f× at Mem-M; want memory-bound", spec.Name, ratio)
		}
	}
}

func TestSuiteSpansTheComputeMemorySpectrum(t *testing.T) {
	// Classify every benchmark by its binding resource at (H-H) on the
	// GTX 480 (the paper's mid-point board). The suite must span the
	// spectrum — that's what makes Table IV's diversity possible — and
	// the well-known anchors must sit on their documented sides.
	spec := arch.GTX480()
	sim := gpu.New(spec, clock.NewState(spec))
	computeSide := map[string]bool{"alu": true, "sfu": true, "dp": true, "issue": true, "shared": true}

	classOf := func(b *Benchmark) string {
		// Classify by the longest-duration kernel's bottleneck.
		var best string
		var bestDur float64
		for _, k := range b.Kernels(1) {
			res, err := sim.RunKernel(k)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			for _, ph := range res.Phases {
				if ph.Duration > bestDur {
					bestDur = ph.Duration
					best = ph.Bottleneck
				}
			}
		}
		return best
	}

	var computeN, memoryN int
	classes := map[string]string{}
	for _, b := range All() {
		c := classOf(b)
		classes[b.Name] = c
		if computeSide[c] {
			computeN++
		} else {
			memoryN++
		}
	}
	if computeN < 8 || memoryN < 8 {
		t.Errorf("spectrum unbalanced: %d compute-side, %d memory-side\n%v", computeN, memoryN, classes)
	}
	for _, name := range []string{"backprop", "sgemm", "binomialOptions", "mri-q", "lavaMD"} {
		if !computeSide[classes[name]] {
			t.Errorf("%s classified %q; expected compute-side", name, classes[name])
		}
	}
	for _, name := range []string{"streamcluster", "lbm", "MAdd", "stencil", "nn"} {
		if computeSide[classes[name]] {
			t.Errorf("%s classified %q; expected memory-side", name, classes[name])
		}
	}
}

func TestHostGapPositiveAndMonotone(t *testing.T) {
	for _, b := range All() {
		g1, g4 := b.HostGap(1), b.HostGap(4)
		if g1 <= 0 {
			t.Errorf("%s: non-positive host gap", b.Name)
		}
		if g4 < g1 {
			t.Errorf("%s: host gap shrank with scale (%g → %g)", b.Name, g1, g4)
		}
		if b.HostGap(-3) != b.HostGap(1) {
			t.Errorf("%s: non-positive scale should fall back to 1", b.Name)
		}
	}
}

func TestActivityFactorsWithinValidatedRange(t *testing.T) {
	for _, b := range All() {
		for _, k := range b.Kernels(1) {
			for _, ph := range k.Phases {
				if ph.ActivityFactor < 0.3 || ph.ActivityFactor > 3 {
					t.Errorf("%s/%s: activity factor %g outside the simulator's accepted range",
						b.Name, k.Name, ph.ActivityFactor)
				}
			}
		}
	}
}
