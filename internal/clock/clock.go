// Package clock models the two independently scalable clock domains of an
// NVIDIA GPU — the processing-core domain and the memory domain — together
// with the implicit voltage scaling that accompanies frequency changes
// (Section II-B of the paper: voltage is adjusted by the BIOS whenever a
// frequency level is selected).
//
// A Pair names a (core level, memory level) combination using the paper's
// H/M/L notation; State tracks the currently programmed pair for a device
// and exposes the frequency, voltage and power-scaling factors the timing
// simulator and the energy model consume.
package clock

import (
	"fmt"
	"math"

	"gpuperf/internal/arch"
)

// Pair is a (core, memory) frequency-level combination, e.g. (Core-H, Mem-L),
// written "(H-L)" as in Table IV of the paper.
type Pair struct {
	Core arch.FreqLevel
	Mem  arch.FreqLevel
}

// DefaultPair returns the boot/default configuration (Core-H, Mem-H).
func DefaultPair() Pair { return Pair{arch.FreqHigh, arch.FreqHigh} }

// String formats the pair in the paper's "(H-L)" notation.
func (p Pair) String() string { return fmt.Sprintf("(%s-%s)", p.Core, p.Mem) }

// ParsePair parses the "(H-L)" notation (parentheses optional).
func ParsePair(s string) (Pair, error) {
	trimmed := s
	if len(trimmed) >= 2 && trimmed[0] == '(' && trimmed[len(trimmed)-1] == ')' {
		trimmed = trimmed[1 : len(trimmed)-1]
	}
	if len(trimmed) != 3 || trimmed[1] != '-' {
		return Pair{}, fmt.Errorf("clock: malformed pair %q", s)
	}
	core, err := parseLevel(trimmed[0])
	if err != nil {
		return Pair{}, fmt.Errorf("clock: pair %q: %w", s, err)
	}
	mem, err := parseLevel(trimmed[2])
	if err != nil {
		return Pair{}, fmt.Errorf("clock: pair %q: %w", s, err)
	}
	return Pair{core, mem}, nil
}

func parseLevel(b byte) (arch.FreqLevel, error) {
	switch b {
	case 'L', 'l':
		return arch.FreqLow, nil
	case 'M', 'm':
		return arch.FreqMid, nil
	case 'H', 'h':
		return arch.FreqHigh, nil
	default:
		return 0, fmt.Errorf("unknown level %q", string(b))
	}
}

// ValidPairs enumerates the pairs the board's BIOS exposes (Table III), in
// a deterministic order: core level descending (H, M, L), then memory level
// descending, i.e. the order of Table III's rows.
func ValidPairs(s *arch.Spec) []Pair {
	var out []Pair
	for ci := 2; ci >= 0; ci-- {
		for mi := 2; mi >= 0; mi-- {
			p := Pair{arch.FreqLevel(ci), arch.FreqLevel(mi)}
			if s.PairValid(p.Core, p.Mem) {
				out = append(out, p)
			}
		}
	}
	return out
}

// State is the programmed DVFS state of one device. The zero value is not
// usable; construct with NewState.
type State struct {
	spec *arch.Spec
	pair Pair
}

// NewState returns a state for the given board set to the default (H-H) pair.
func NewState(spec *arch.Spec) *State {
	return &State{spec: spec, pair: DefaultPair()}
}

// Spec returns the board this state belongs to.
func (st *State) Spec() *arch.Spec { return st.spec }

// Pair returns the currently programmed frequency pair.
func (st *State) Pair() Pair { return st.pair }

// SetPair programs a new frequency pair. Pairs the BIOS does not expose
// (Table III) are rejected, mirroring the real driver's behaviour.
func (st *State) SetPair(p Pair) error {
	if !st.spec.PairValid(p.Core, p.Mem) {
		return fmt.Errorf("clock: %s does not expose pair %s", st.spec.Name, p)
	}
	st.pair = p
	return nil
}

// CoreHz returns the programmed core frequency in hertz.
func (st *State) CoreHz() float64 { return st.spec.CoreFreqMHz(st.pair.Core) * 1e6 }

// MemHz returns the programmed memory frequency in hertz.
func (st *State) MemHz() float64 { return st.spec.MemFreqMHz(st.pair.Mem) * 1e6 }

// CoreVolt returns the core-domain voltage implied by the programmed pair.
func (st *State) CoreVolt() float64 { return st.spec.CoreVoltage(st.pair.Core) }

// MemVolt returns the memory-domain voltage implied by the programmed pair.
func (st *State) MemVolt() float64 { return st.spec.MemVoltage(st.pair.Mem) }

// MemBandwidthBytesPerSec returns the peak DRAM bandwidth at the programmed
// memory frequency, in bytes per second.
func (st *State) MemBandwidthBytesPerSec() float64 {
	return st.spec.DerivedBandwidthGBs(st.pair.Mem) * 1e9
}

// DRAMLatencySec returns the DRAM access latency at the programmed memory
// frequency. Roughly half of the latency (row activation, chip-internal
// timing) is fixed in wall-clock terms; the other half (command/transfer
// cycles) stretches as the memory clock drops.
func (st *State) DRAMLatencySec() float64 {
	base := st.spec.DRAMLatencyNS * 1e-9
	fh := st.spec.MemFreqMHz(arch.FreqHigh)
	f := st.spec.MemFreqMHz(st.pair.Mem)
	return base * (0.5 + 0.5*fh/f)
}

// Dynamic-power scale factors. Dynamic power is C·V²·f·activity; relative
// to the High level the factor is (f/fH)·(V/VH)². The energy model applies
// these to per-event energies (per-event energy scales with V² only; the
// frequency factor enters through the event *rate*), so the scales below
// are split accordingly.

// CoreEnergyScale returns (Vcore/VcoreHigh)², the per-event energy scale of
// the core domain at the programmed pair.
func (st *State) CoreEnergyScale() float64 {
	r := st.CoreVolt() / st.spec.CoreVoltHigh
	return r * r
}

// MemEnergyScale returns (Vmem/VmemHigh)² for the memory domain.
func (st *State) MemEnergyScale() float64 {
	r := st.MemVolt() / st.spec.MemVoltHigh
	return r * r
}

// CoreLeakScale returns the leakage scale of the core domain. Subthreshold
// leakage is strongly voltage dependent; we model it as (V/VH)³.
func (st *State) CoreLeakScale() float64 {
	return math.Pow(st.CoreVolt()/st.spec.CoreVoltHigh, 3)
}

// MemLeakScale returns the leakage scale of the memory domain, (V/VH)³.
func (st *State) MemLeakScale() float64 {
	return math.Pow(st.MemVolt()/st.spec.MemVoltHigh, 3)
}

// CoreIdleScale returns the clock-tree/idle dynamic power scale of the core
// domain: (f/fH)·(V/VH)².
func (st *State) CoreIdleScale() float64 {
	return st.CoreHz() / (st.spec.CoreFreqMHz(arch.FreqHigh) * 1e6) * st.CoreEnergyScale()
}

// MemIdleScale returns the DRAM background power scale: (f/fH)·(V/VH)².
func (st *State) MemIdleScale() float64 {
	return st.MemHz() / (st.spec.MemFreqMHz(arch.FreqHigh) * 1e6) * st.MemEnergyScale()
}
