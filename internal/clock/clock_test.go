package clock

import (
	"testing"
	"testing/quick"

	"gpuperf/internal/arch"
)

func TestPairString(t *testing.T) {
	cases := map[Pair]string{
		{arch.FreqHigh, arch.FreqHigh}: "(H-H)",
		{arch.FreqHigh, arch.FreqLow}:  "(H-L)",
		{arch.FreqMid, arch.FreqHigh}:  "(M-H)",
		{arch.FreqLow, arch.FreqMid}:   "(L-M)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", p, got, want)
		}
	}
}

func TestParsePair(t *testing.T) {
	good := map[string]Pair{
		"(H-L)": {arch.FreqHigh, arch.FreqLow},
		"H-L":   {arch.FreqHigh, arch.FreqLow},
		"m-h":   {arch.FreqMid, arch.FreqHigh},
		"(L-M)": {arch.FreqLow, arch.FreqMid},
	}
	for s, want := range good {
		got, err := ParsePair(s)
		if err != nil {
			t.Errorf("ParsePair(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePair(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "(H)", "H-", "X-L", "H_L", "(HL)", "(H-L"} {
		if _, err := ParsePair(s); err == nil {
			t.Errorf("ParsePair(%q) should fail", s)
		}
	}
}

func TestParsePairRoundTrip(t *testing.T) {
	f := func(c, m uint8) bool {
		p := Pair{arch.FreqLevel(c % 3), arch.FreqLevel(m % 3)}
		got, err := ParsePair(p.String())
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidPairsMatchesTableIII(t *testing.T) {
	want := map[string]int{"GTX 285": 8, "GTX 460": 7, "GTX 480": 7, "GTX 680": 7}
	for _, s := range arch.AllBoards() {
		ps := ValidPairs(s)
		if len(ps) != want[s.Name] {
			t.Errorf("%s: %d pairs, want %d", s.Name, len(ps), want[s.Name])
		}
		if len(ps) == 0 || ps[0] != DefaultPair() {
			t.Errorf("%s: first enumerated pair should be the default (H-H)", s.Name)
		}
		seen := map[Pair]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Errorf("%s: pair %s enumerated twice", s.Name, p)
			}
			seen[p] = true
			if !s.PairValid(p.Core, p.Mem) {
				t.Errorf("%s: enumerated invalid pair %s", s.Name, p)
			}
		}
	}
}

func TestSetPairRejectsInvalid(t *testing.T) {
	st := NewState(arch.GTX680())
	if err := st.SetPair(Pair{arch.FreqLow, arch.FreqLow}); err == nil {
		t.Error("SetPair should reject (L-L) on GTX 680")
	}
	if got := st.Pair(); got != DefaultPair() {
		t.Errorf("failed SetPair must not change state; got %s", got)
	}
	if err := st.SetPair(Pair{arch.FreqLow, arch.FreqHigh}); err != nil {
		t.Errorf("SetPair((L-H)) on GTX 680: %v", err)
	}
	if got := st.Pair(); got != (Pair{arch.FreqLow, arch.FreqHigh}) {
		t.Errorf("Pair() = %s after SetPair((L-H))", got)
	}
}

func TestFrequenciesFollowPair(t *testing.T) {
	spec := arch.GTX680()
	st := NewState(spec)
	if got := st.CoreHz(); got != 1411e6 {
		t.Errorf("CoreHz at H = %g, want 1411e6", got)
	}
	if got := st.MemHz(); got != 3004e6 {
		t.Errorf("MemHz at H = %g, want 3004e6", got)
	}
	if err := st.SetPair(Pair{arch.FreqMid, arch.FreqLow}); err != nil {
		t.Fatal(err)
	}
	if got := st.CoreHz(); got != 1080e6 {
		t.Errorf("CoreHz at M = %g, want 1080e6", got)
	}
	if got := st.MemHz(); got != 324e6 {
		t.Errorf("MemHz at L = %g, want 324e6", got)
	}
}

func TestEnergyScalesAtMostOneAtHigh(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		st := NewState(spec)
		for _, p := range ValidPairs(spec) {
			if err := st.SetPair(p); err != nil {
				t.Fatalf("%s %s: %v", spec.Name, p, err)
			}
			for name, v := range map[string]float64{
				"CoreEnergyScale": st.CoreEnergyScale(),
				"MemEnergyScale":  st.MemEnergyScale(),
				"CoreLeakScale":   st.CoreLeakScale(),
				"MemLeakScale":    st.MemLeakScale(),
				"CoreIdleScale":   st.CoreIdleScale(),
				"MemIdleScale":    st.MemIdleScale(),
			} {
				if v <= 0 || v > 1+1e-9 {
					t.Errorf("%s %s: %s = %g out of (0, 1]", spec.Name, p, name, v)
				}
			}
		}
	}
}

func TestScalesAreOneAtDefault(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		st := NewState(spec)
		for name, v := range map[string]float64{
			"CoreEnergyScale": st.CoreEnergyScale(),
			"MemEnergyScale":  st.MemEnergyScale(),
			"CoreLeakScale":   st.CoreLeakScale(),
			"MemLeakScale":    st.MemLeakScale(),
			"CoreIdleScale":   st.CoreIdleScale(),
			"MemIdleScale":    st.MemIdleScale(),
		} {
			if !closeTo(v, 1, 1e-12) {
				t.Errorf("%s: %s at (H-H) = %g, want 1", spec.Name, name, v)
			}
		}
	}
}

func TestDRAMLatencyGrowsAsMemClockDrops(t *testing.T) {
	spec := arch.GTX680()
	st := NewState(spec)
	latH := st.DRAMLatencySec()
	if !closeTo(latH, spec.DRAMLatencyNS*1e-9, 1e-15) {
		t.Errorf("latency at Mem-H = %g, want %g", latH, spec.DRAMLatencyNS*1e-9)
	}
	if err := st.SetPair(Pair{arch.FreqMid, arch.FreqLow}); err != nil {
		t.Fatal(err)
	}
	latL := st.DRAMLatencySec()
	if latL <= latH {
		t.Errorf("latency at Mem-L (%g) should exceed latency at Mem-H (%g)", latL, latH)
	}
	// Latency must grow sublinearly in 1/f: fixed component dominates.
	ratio := latL / latH
	freqRatio := spec.MemFreqMHz(arch.FreqHigh) / spec.MemFreqMHz(arch.FreqLow)
	if ratio >= freqRatio {
		t.Errorf("latency ratio %g should be below clock ratio %g", ratio, freqRatio)
	}
}

func TestKeplerMidCoreEnergyScaleIsDeep(t *testing.T) {
	// The convex Kepler V–f curve must make the (M-*) core energy scale
	// markedly deeper than the frequency ratio alone would suggest.
	st := NewState(arch.GTX680())
	if err := st.SetPair(Pair{arch.FreqMid, arch.FreqHigh}); err != nil {
		t.Fatal(err)
	}
	if got := st.CoreEnergyScale(); got > 0.65 {
		t.Errorf("GTX 680 core energy scale at M = %g, want deep (< 0.65)", got)
	}
	// Tesla, by contrast, barely scales.
	st285 := NewState(arch.GTX285())
	if err := st285.SetPair(Pair{arch.FreqMid, arch.FreqHigh}); err != nil {
		t.Fatal(err)
	}
	if got := st285.CoreEnergyScale(); got < 0.85 {
		t.Errorf("GTX 285 core energy scale at M = %g, want shallow (> 0.85)", got)
	}
}

func TestMemBandwidthScalesWithPair(t *testing.T) {
	spec := arch.GTX480()
	st := NewState(spec)
	bwH := st.MemBandwidthBytesPerSec()
	if err := st.SetPair(Pair{arch.FreqHigh, arch.FreqMid}); err != nil {
		t.Fatal(err)
	}
	bwM := st.MemBandwidthBytesPerSec()
	want := spec.MemFreqMHz(arch.FreqMid) / spec.MemFreqMHz(arch.FreqHigh)
	if got := bwM / bwH; !closeTo(got, want, 1e-9) {
		t.Errorf("bandwidth ratio M/H = %g, want %g", got, want)
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
