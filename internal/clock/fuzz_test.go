package clock

import "testing"

// FuzzParsePair: never panic; accepted strings round-trip through String.
func FuzzParsePair(f *testing.F) {
	for _, s := range []string{"(H-H)", "H-L", "m-h", "", "X-Y", "((H-H))", "H-"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePair(s)
		if err != nil {
			return
		}
		back, err := ParsePair(p.String())
		if err != nil || back != p {
			t.Fatalf("accepted pair %q does not round-trip: %v", s, err)
		}
	})
}
