// Package kernelspec parses and writes a small text format describing
// kernels for the timing simulator. The paper's related work (Hong & Kim)
// derives kernel characteristics from static PTX analysis; this package is
// the data-driven equivalent for the simulator — a workload is a text file
// of per-kernel instruction mixes and memory behaviour, so new workloads
// need no Go code:
//
//	# dense matrix multiply, tiled
//	kernel matmul
//	  blocks  3200
//	  threads 256
//	  regs    30
//	  shared  8KiB
//	  phase main
//	    insts       70000
//	    mix         alu=0.70 shared=0.14 mem=0.03 branch=0.02
//	    txn         1.0
//	    store       0.20
//	    hits        l1=0.85 l2=0.75
//	    working-set 96KiB
//	    mlp         5
//	    issue-eff   0.95
//	    activity    1.1
//
// Indentation is cosmetic; the grammar is line-based. A file may contain
// several kernels; they form the launch sequence. Unknown keys are errors
// (a typo must not silently become a default).
package kernelspec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpuperf/internal/gpu"
)

// Parse reads kernel descriptions from r. Every kernel is validated.
func Parse(r io.Reader) ([]*gpu.KernelDesc, error) {
	sc := bufio.NewScanner(r)
	var kernels []*gpu.KernelDesc
	var cur *gpu.KernelDesc
	var phase *gpu.PhaseDesc
	lineNo := 0

	flushPhase := func() {
		if cur != nil && phase != nil {
			cur.Phases = append(cur.Phases, *phase)
			phase = nil
		}
	}
	flushKernel := func() {
		flushPhase()
		if cur != nil {
			kernels = append(kernels, cur)
			cur = nil
		}
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key, args := fields[0], fields[1:]
		errf := func(format string, a ...interface{}) error {
			return fmt.Errorf("kernelspec: line %d: %s", lineNo, fmt.Sprintf(format, a...))
		}

		switch key {
		case "kernel":
			if len(args) != 1 {
				return nil, errf("kernel needs exactly one name")
			}
			flushKernel()
			cur = &gpu.KernelDesc{Name: args[0]}
			continue
		case "phase":
			if cur == nil {
				return nil, errf("phase before kernel")
			}
			if len(args) != 1 {
				return nil, errf("phase needs exactly one name")
			}
			flushPhase()
			phase = &gpu.PhaseDesc{Name: args[0], IssueEff: 0.8, MLP: 4, TxnPerMemInst: 1}
			continue
		}

		if cur == nil {
			return nil, errf("%q before any kernel", key)
		}

		if phase == nil {
			// Kernel-level keys.
			if len(args) != 1 {
				return nil, errf("%s needs exactly one value", key)
			}
			switch key {
			case "blocks":
				v, err := parseInt(args[0])
				if err != nil {
					return nil, errf("blocks: %v", err)
				}
				cur.Blocks = v
			case "threads":
				v, err := parseInt(args[0])
				if err != nil {
					return nil, errf("threads: %v", err)
				}
				cur.ThreadsPerBlock = v
			case "regs":
				v, err := parseInt(args[0])
				if err != nil {
					return nil, errf("regs: %v", err)
				}
				cur.RegsPerThread = v
			case "shared":
				v, err := parseSize(args[0])
				if err != nil {
					return nil, errf("shared: %v", err)
				}
				cur.SharedPerBlock = int(v)
			default:
				return nil, errf("unknown kernel key %q", key)
			}
			continue
		}

		// Phase-level keys.
		switch key {
		case "insts":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.WarpInstsPerWarp = v
		case "mix":
			for _, kv := range args {
				name, val, err := splitKV(kv)
				if err != nil {
					return nil, errf("mix: %v", err)
				}
				switch name {
				case "alu":
					phase.FracALU = val
				case "sfu":
					phase.FracSFU = val
				case "dp":
					phase.FracDP = val
				case "mem":
					phase.FracMem = val
				case "shared":
					phase.FracShared = val
				case "branch":
					phase.FracBranch = val
				default:
					return nil, errf("mix: unknown class %q", name)
				}
			}
		case "hits":
			for _, kv := range args {
				name, val, err := splitKV(kv)
				if err != nil {
					return nil, errf("hits: %v", err)
				}
				switch name {
				case "l1":
					phase.L1Hit = val
				case "l2":
					phase.L2Hit = val
				default:
					return nil, errf("hits: unknown level %q", name)
				}
			}
		case "txn":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.TxnPerMemInst = v
		case "store":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.StoreFrac = v
		case "divergent":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.DivergentFrac = v
		case "working-set":
			if len(args) != 1 {
				return nil, errf("working-set needs one value")
			}
			v, err := parseSize(args[0])
			if err != nil {
				return nil, errf("working-set: %v", err)
			}
			phase.WorkingSetBytes = v
		case "mlp":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.MLP = v
		case "issue-eff":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.IssueEff = v
		case "activity":
			v, err := parseFloat(args, key)
			if err != nil {
				return nil, errf("%v", err)
			}
			phase.ActivityFactor = v
		default:
			return nil, errf("unknown phase key %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kernelspec: %w", err)
	}
	flushKernel()

	if len(kernels) == 0 {
		return nil, fmt.Errorf("kernelspec: no kernels in input")
	}
	for _, k := range kernels {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("kernelspec: %w", err)
		}
	}
	return kernels, nil
}

// Write renders kernels in the format Parse reads (round-trippable).
func Write(w io.Writer, kernels []*gpu.KernelDesc) error {
	for i, k := range kernels {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "kernel %s\n", k.Name)
		fmt.Fprintf(w, "  blocks  %d\n", k.Blocks)
		fmt.Fprintf(w, "  threads %d\n", k.ThreadsPerBlock)
		if k.RegsPerThread > 0 {
			fmt.Fprintf(w, "  regs    %d\n", k.RegsPerThread)
		}
		if k.SharedPerBlock > 0 {
			fmt.Fprintf(w, "  shared  %d\n", k.SharedPerBlock)
		}
		for _, p := range k.Phases {
			fmt.Fprintf(w, "  phase %s\n", p.Name)
			fmt.Fprintf(w, "    insts       %g\n", p.WarpInstsPerWarp)
			mix := []string{}
			for _, kv := range []struct {
				name string
				v    float64
			}{{"alu", p.FracALU}, {"sfu", p.FracSFU}, {"dp", p.FracDP},
				{"mem", p.FracMem}, {"shared", p.FracShared}, {"branch", p.FracBranch}} {
				if kv.v > 0 {
					mix = append(mix, fmt.Sprintf("%s=%g", kv.name, kv.v))
				}
			}
			if len(mix) > 0 {
				fmt.Fprintf(w, "    mix         %s\n", strings.Join(mix, " "))
			}
			if p.TxnPerMemInst != 0 {
				fmt.Fprintf(w, "    txn         %g\n", p.TxnPerMemInst)
			}
			if p.StoreFrac > 0 {
				fmt.Fprintf(w, "    store       %g\n", p.StoreFrac)
			}
			if p.DivergentFrac > 0 {
				fmt.Fprintf(w, "    divergent   %g\n", p.DivergentFrac)
			}
			if p.L1Hit > 0 || p.L2Hit > 0 {
				fmt.Fprintf(w, "    hits        l1=%g l2=%g\n", p.L1Hit, p.L2Hit)
			}
			if p.WorkingSetBytes > 0 {
				fmt.Fprintf(w, "    working-set %g\n", p.WorkingSetBytes)
			}
			if p.MLP > 0 {
				fmt.Fprintf(w, "    mlp         %g\n", p.MLP)
			}
			fmt.Fprintf(w, "    issue-eff   %g\n", p.IssueEff)
			if p.ActivityFactor != 0 {
				fmt.Fprintf(w, "    activity    %g\n", p.ActivityFactor)
			}
		}
	}
	return nil
}

func parseInt(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

func parseFloat(args []string, key string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("%s needs exactly one value", key)
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad number %q", key, args[0])
	}
	return v, nil
}

// parseSize reads "4096", "96KiB", "16MiB" or "1GiB".
func parseSize(s string) (float64, error) {
	mult := 1.0
	num := s
	for _, suf := range []struct {
		tag string
		m   float64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, suf.tag) {
			mult = suf.m
			num = strings.TrimSuffix(s, suf.tag)
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func splitKV(s string) (string, float64, error) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q", s)
	}
	return parts[0], v, nil
}
