package kernelspec

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
	"gpuperf/internal/workloads"
)

const sample = `
# dense matrix multiply, tiled
kernel matmul
  blocks  3200
  threads 256
  regs    30
  shared  8KiB
  phase main
    insts       70000
    mix         alu=0.70 shared=0.14 mem=0.03 branch=0.02
    txn         1.0
    store       0.20
    hits        l1=0.85 l2=0.75
    working-set 96KiB
    mlp         5
    issue-eff   0.95
    activity    1.1

kernel reduce
  blocks  800
  threads 128
  phase sweep
    insts     9000
    mix       alu=0.3 mem=0.4
    txn       1.1
    mlp       8
    issue-eff 0.7
`

func TestParseSample(t *testing.T) {
	ks, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 {
		t.Fatalf("%d kernels, want 2", len(ks))
	}
	m := ks[0]
	if m.Name != "matmul" || m.Blocks != 3200 || m.ThreadsPerBlock != 256 || m.RegsPerThread != 30 {
		t.Errorf("matmul header wrong: %+v", m)
	}
	if m.SharedPerBlock != 8<<10 {
		t.Errorf("shared = %d, want 8KiB", m.SharedPerBlock)
	}
	p := m.Phases[0]
	if p.FracALU != 0.70 || p.FracShared != 0.14 || p.L1Hit != 0.85 || p.WorkingSetBytes != 96<<10 {
		t.Errorf("phase wrong: %+v", p)
	}
	if p.ActivityFactor != 1.1 || p.StoreFrac != 0.2 {
		t.Errorf("phase extras wrong: %+v", p)
	}
	r := ks[1]
	if r.Name != "reduce" || len(r.Phases) != 1 || r.Phases[0].MLP != 8 {
		t.Errorf("reduce wrong: %+v", r)
	}
}

func TestParsedKernelsRun(t *testing.T) {
	ks, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	spec := arch.GTX680()
	sim := gpu.New(spec, clock.NewState(spec))
	for _, k := range ks {
		if _, err := sim.RunKernel(k); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ks, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ks); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(back) != len(ks) {
		t.Fatalf("round trip lost kernels: %d vs %d", len(back), len(ks))
	}
	for i := range ks {
		if back[i].Name != ks[i].Name || back[i].Blocks != ks[i].Blocks {
			t.Errorf("kernel %d header changed", i)
		}
		if len(back[i].Phases) != len(ks[i].Phases) {
			t.Fatalf("kernel %d phase count changed", i)
		}
		for j := range ks[i].Phases {
			if back[i].Phases[j] != ks[i].Phases[j] {
				t.Errorf("kernel %d phase %d changed:\n  %+v\nvs\n  %+v",
					i, j, back[i].Phases[j], ks[i].Phases[j])
			}
		}
	}
}

func TestWorkloadKernelsRoundTrip(t *testing.T) {
	// Every Table II benchmark's kernels survive Write → Parse.
	for _, b := range workloads.All() {
		ks := b.Kernels(1)
		var buf bytes.Buffer
		if err := Write(&buf, ks); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", b.Name, err)
		}
		if len(back) != len(ks) {
			t.Errorf("%s: kernel count changed", b.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"comment only":      "# nothing\n",
		"phase first":       "phase p\n",
		"key before kernel": "blocks 5\n",
		"unknown kernel key": `kernel k
  widgets 5`,
		"unknown phase key": `kernel k
  blocks 1
  threads 32
  phase p
    insts 10
    frobnicate 3`,
		"bad mix class": `kernel k
  blocks 1
  threads 32
  phase p
    insts 10
    mix tensor=0.5`,
		"bad number": `kernel k
  blocks many`,
		"bad size": `kernel k
  blocks 1
  threads 32
  shared 8quids`,
		"missing phase": `kernel k
  blocks 1
  threads 32`,
		"invalid kernel": `kernel k
  blocks 0
  threads 32
  phase p
    insts 10`,
		"two names": "kernel a b\n",
		"mix no value": `kernel k
  blocks 1
  threads 32
  phase p
    insts 10
    mix alu`,
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse accepted %s", name)
		}
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	src := "kernel k\n  blocks 1\n  threads 32\n  phase p\n    insts 10\n    bogus 1\n"
	_, err := Parse(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Errorf("error %v should name line 6", err)
	}
}

func TestParseSizeSuffixes(t *testing.T) {
	cases := map[string]float64{
		"4096": 4096, "96KiB": 96 << 10, "16MiB": 16 << 20, "1GiB": 1 << 30,
	}
	for s, want := range cases {
		got, err := parseSize(s)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %g, %v; want %g", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "KiB", "-5", "4 KiB"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize accepted %q", bad)
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(junk string) bool {
		_, _ = Parse(strings.NewReader(junk)) // error or nil, never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
