package kernelspec

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse drives the kernelspec reader with arbitrary text: never panic,
// and anything accepted must re-serialize and re-parse to the same kernels.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("")
	f.Add("kernel k\n  blocks 1\n  threads 32\n  phase p\n    insts 10\n")
	f.Add("kernel k\n  blocks -1\n")
	f.Add(strings.Repeat("kernel k\n", 100))

	f.Fuzz(func(t *testing.T, src string) {
		ks, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, ks); err != nil {
			t.Fatalf("accepted kernels failed to serialize: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("serialized form unparseable: %v\n%s", err, buf.String())
		}
		if len(back) != len(ks) {
			t.Fatalf("round trip changed kernel count: %d vs %d", len(back), len(ks))
		}
	})
}
