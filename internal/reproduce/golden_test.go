// The golden test lives in an external test package: it drives the
// session layer, which itself imports reproduce.
package reproduce_test

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"gpuperf/internal/reproduce"
	"gpuperf/internal/session"
)

// stripElapsed removes the wall-clock line, the only nondeterministic
// byte range in a report.
func stripElapsed(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "reproduction completed in ") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// TestPaperQuickGolden pins the seed-42 quick report to the golden file
// captured before the session refactor: the Session-driven engine must
// reproduce the pre-refactor byte stream exactly, at the default worker
// count and at the sequential reference.
func TestPaperQuickGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/paper-quick-seed42.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1} {
		s, err := session.New(session.WithSeed(42), session.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, err = s.Reproduce(context.Background(), &buf, reproduce.Quick)
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := stripElapsed(buf.String()); got != string(golden) {
			t.Fatalf("workers=%d: quick report diverged from the pre-refactor golden (len %d vs %d)",
				workers, len(got), len(golden))
		}
	}
}
