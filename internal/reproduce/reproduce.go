// Package reproduce orchestrates the complete reproduction: it reruns every
// experiment of the paper in order — Section II apparatus tables, the
// Section III characterization sweeps, the Section IV modeling study — plus
// the repository's ablations and the Radeon future-work extension, and
// renders everything into one text report. cmd/paper is a thin wrapper; the
// integration tests drive the same code.
package reproduce

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
	"gpuperf/internal/regress"
	"gpuperf/internal/report"
	"gpuperf/internal/selfcheck"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

// Options configures a reproduction run.
type Options struct {
	Seed int64
	// Sections toggles; all default to true via DefaultOptions.
	Apparatus        bool // Tables I & III
	Characterization bool // Table IV, Figs. 1–4
	Modeling         bool // Tables V–VIII, Figs. 5–11
	Ablations        bool // DESIGN.md §6
	FutureWork       bool // AMD Radeon extension
	// Boards restricts the study (default: the paper's four boards).
	Boards []string
	// MaxVars is the explanatory-variable cap (default 10).
	MaxVars int
	// ArtifactsDir, when set, receives one CSV (tables) or text (figure
	// panels) file per artifact, for external plotting.
	ArtifactsDir string
	// SelfCheck appends the apparatus invariant checks to the report and
	// fails the run if any check fails.
	SelfCheck bool
	// Workers bounds the sweep/collect worker pools (0 or negative means
	// GOMAXPROCS). Every (benchmark, board) job owns its device and an
	// independently derived noise seed, so the report is byte-identical
	// at any worker count; 1 is the bit-exact sequential reference.
	Workers int

	// Faults, when non-nil, runs the characterization and modeling
	// sections under a fault-injection campaign: every boot, clock set
	// and metered run may fail per the profile, retried up to MaxRetries
	// times with backoff, with LaunchTimeout as the per-run watchdog.
	// Cells/benchmarks that exhaust the budget degrade gracefully (Table
	// IV shows "n/a (unstable)", models train without the benchmark) and
	// a degradation summary section reports exactly what was lost.
	// Ablations and future work always run fault-free — they are
	// mechanism probes, not measurement campaigns.
	Faults        *fault.Profile
	MaxRetries    int
	LaunchTimeout time.Duration
	// Checkpoint, when set, journals completed sweep cells to this path
	// and resumes from it, so a killed run repays only unfinished cells.
	Checkpoint string
	// Journal, when non-nil, is a pre-opened checkpoint journal the run
	// uses instead of opening Checkpoint itself. The caller keeps
	// ownership and must Close it — session.Session hands its journal in
	// here so the file is opened exactly once per session.
	Journal *characterize.Journal

	// Obs, when non-nil, records the campaign: spans and events on the
	// deterministic virtual clock plus the full metric set (driver, meter,
	// fault, sweep, modeling, regression). Instrumented sections route
	// through the resilient harness even fault-free — byte-identical output
	// to the plain paths — and the recorded artifacts are a pure function
	// of the seed, independent of Workers.
	Obs *obs.Recorder

	// Repetitions is the campaign's repetition-cohort size (0 or 1: the
	// classic single run). Repetition 0 is bit-identical to a single run;
	// later repetitions draw independent noise and fault streams, and the
	// triage engine judges every characterization cell on cross-repetition
	// agreement. The report's tables and figures always render repetition 0.
	Repetitions int
	// MinValid is the publishability floor in valid repetitions per cell
	// (0: every repetition must be valid).
	MinValid int
	// TriageOut, when set, writes the machine-readable triage report
	// (reports/baseline.json) to this path. Triage engages when TriageOut
	// is set, Repetitions > 1 or MinValid > 0; otherwise the run is
	// byte-identical to the pre-triage engine.
	TriageOut string
	// CodeVersion overrides the cohort's code-version stamp; empty
	// resolves the running binary's VCS revision (or "unknown").
	CodeVersion string
}

// triageOn reports whether the validity-triage engine engages.
func (o *Options) triageOn() bool {
	return o.TriageOut != "" || o.Repetitions > 1 || o.MinValid > 0
}

// workers resolves the configured pool width.
func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Seed:             42,
		Apparatus:        true,
		Characterization: true,
		Modeling:         true,
		Ablations:        true,
		FutureWork:       true,
		SelfCheck:        true,
		MaxVars:          core.MaxVariables,
		MaxRetries:       fault.DefaultMaxRetries,
		LaunchTimeout:    fault.DefaultLaunchTimeout,
	}
}

// Quick trims an Options to the characterization sections only — the
// CLI "-quick" toggle, shared by the command front ends and
// session.Session.Reproduce tweaks.
func Quick(o *Options) {
	o.Modeling = false
	o.Ablations = false
	o.FutureWork = false
	o.SelfCheck = false
}

// harness bundles the fault campaign's runtime state: the retry policy the
// resilient sweeps use, the checkpoint journal, and the degradation
// bookkeeping the summary section renders.
type harness struct {
	use        bool
	res        *fault.Resilience
	journal    *characterize.Journal
	ownJournal bool // opened here (Checkpoint) vs lent by the caller (Journal)
	triage     *validity.Triage
	degraded   []characterize.Degradation
	dropped    map[string][]core.DroppedBench
	retries    int
}

// campaignCohort assembles the run's cohort identity — the exact same
// construction session.Open uses, so a journal a Session created and one
// this package opens from Options.Checkpoint carry identical headers.
func campaignCohort(opts Options, boardNames []string) validity.Cohort {
	spec := ""
	if opts.Faults != nil {
		spec = opts.Faults.String()
	}
	code := opts.CodeVersion
	if code == "" {
		code = validity.ResolveCodeVersion()
	}
	return validity.Cohort{
		Seed:        opts.Seed,
		Boards:      boardNames,
		Profile:     spec,
		CodeVersion: code,
	}
}

// newHarness resolves the fault/checkpoint/observability/triage options.
// The fault harness engages when a fault profile, a checkpoint path or
// journal, or a recorder is configured; a checkpoint or recorder without
// faults runs a fault-free campaign through the same code path. The
// triage engine engages independently (Options.triageOn) — a fault-free
// repetition cohort still gets judged.
func newHarness(opts Options, cohort validity.Cohort) (*harness, error) {
	h := &harness{dropped: map[string][]core.DroppedBench{}}
	if opts.triageOn() {
		h.triage = validity.NewTriage(cohort, opts.Repetitions, opts.MinValid, 0)
	}
	h.use = opts.Faults != nil || opts.Checkpoint != "" || opts.Journal != nil || opts.Obs != nil
	if !h.use {
		return h, nil
	}
	h.res = &fault.Resilience{
		Campaign:      &fault.Campaign{Profile: opts.Faults, Seed: opts.Seed},
		MaxRetries:    opts.MaxRetries,
		LaunchTimeout: opts.LaunchTimeout,
		Obs:           opts.Obs,
	}
	h.res.Observe()
	switch {
	case opts.Journal != nil:
		h.journal = opts.Journal
	case opts.Checkpoint != "":
		// The journal is bound to the full cohort; resuming under any other
		// configuration is a hard *characterize.CohortMismatchError with
		// the journal preserved on disk.
		j, err := characterize.OpenJournalCohort(opts.Checkpoint, characterize.JournalConfig{Cohort: cohort})
		if err != nil {
			return nil, err
		}
		h.journal = j
		h.ownJournal = true
	}
	return h, nil
}

func (h *harness) close() {
	if h.journal != nil && h.ownJournal {
		// Every cell was already flushed by Record; a close error here
		// cannot lose checkpoint data. A lent journal stays open — its
		// owner closes it.
		_ = h.journal.Close()
	}
}

// note records a campaign's degradations and retry tally for the summary.
func (h *harness) note(results map[string][]*characterize.BenchResult) {
	h.degraded = append(h.degraded, characterize.Degradations(results)...)
	for _, rs := range results {
		for _, r := range rs {
			for _, pr := range r.Pairs {
				h.retries += pr.Retries
			}
		}
	}
}

// Result carries the headline numbers for programmatic checks.
type Result struct {
	MeanImprovementPct map[string]float64 // Fig. 4 per board
	PowerR2            map[string]float64 // Table V
	TimeR2             map[string]float64 // Table VI
	PowerErrPct        map[string]float64 // Table VII
	PowerErrW          map[string]float64 // Table VII
	TimeErrPct         map[string]float64 // Table VIII

	// Fault-campaign bookkeeping; all zero/empty when no campaign ran or
	// when every fault was retried away. Retries is deliberately absent
	// from the report text so a fully recovered run stays byte-identical
	// to a fault-free one.
	Retries        int
	DegradedCells  int
	CheckpointHits int
	Dropped        map[string][]core.DroppedBench

	// Triage is the finalized validity report (nil unless the triage
	// engine engaged — see Options.TriageOut/Repetitions/MinValid).
	Triage *validity.Report

	Elapsed time.Duration
}

// Run executes the configured sections, writing the report to w.
func Run(opts Options, w io.Writer) (*Result, error) {
	return RunContext(context.Background(), opts, w)
}

// RunContext is Run with cooperative cancellation threaded through every
// section: sweeps and collections stop within one cell of the cancel,
// model training stops at a selection-step boundary, and the returned
// error wraps the context's cause. A configured checkpoint journal is
// left resumable — a rerun replays the completed cells and produces a
// byte-identical report.
func RunContext(ctx context.Context, opts Options, w io.Writer) (*Result, error) {
	start := time.Now() //gpulint:ignore determinism -- feeds only the elapsed line, which byte-identity goldens strip (grep -v)
	if opts.MaxVars <= 0 {
		opts.MaxVars = core.MaxVariables
	}
	if opts.Repetitions < 1 {
		opts.Repetitions = 1
	}
	if opts.MinValid < 0 || opts.MinValid > opts.Repetitions {
		return nil, fmt.Errorf("reproduce: min-valid %d outside [0, repetitions=%d]", opts.MinValid, opts.Repetitions)
	}
	boards, err := resolveBoards(opts.Boards)
	if err != nil {
		return nil, err
	}
	boardNames := make([]string, len(boards))
	for i, spec := range boards {
		boardNames[i] = spec.Name
	}
	res := &Result{
		MeanImprovementPct: map[string]float64{},
		PowerR2:            map[string]float64{},
		TimeR2:             map[string]float64{},
		PowerErrPct:        map[string]float64{},
		PowerErrW:          map[string]float64{},
		TimeErrPct:         map[string]float64{},
	}
	h, err := newHarness(opts, campaignCohort(opts, boardNames))
	if err != nil {
		return nil, err
	}
	defer h.close()
	if opts.Obs != nil {
		defer regress.Observe(opts.Obs.Metrics())()
	}

	fmt.Fprintf(w, "gpuperf — full reproduction (seed %d)\n", opts.Seed)
	fmt.Fprintf(w, "Abe et al., \"Power and Performance Characterization and Modeling of GPU-Accelerated Systems\", 2014\n\n")

	if opts.Apparatus {
		fmt.Fprintln(w, report.Table1(boards).String())
		fmt.Fprintln(w, report.Table3(boards).String())
		if err := saveArtifact(opts.ArtifactsDir, "table1.csv", report.Table1(boards).CSV()); err != nil {
			return nil, err
		}
		if err := saveArtifact(opts.ArtifactsDir, "table3.csv", report.Table3(boards).CSV()); err != nil {
			return nil, err
		}
	}

	if opts.Characterization {
		if err := runCharacterization(ctx, opts, boards, h, res, w); err != nil {
			return nil, err
		}
	}

	if opts.Modeling {
		if err := runModeling(ctx, opts, boards, h, res, w); err != nil {
			return nil, err
		}
	}

	if opts.Ablations {
		if err := runAblations(ctx, opts, w); err != nil {
			return nil, err
		}
	}

	if opts.FutureWork {
		if err := runFutureWork(ctx, opts, w); err != nil {
			return nil, err
		}
	}

	if h.use {
		res.Retries = h.retries
		res.DegradedCells = len(h.degraded)
		res.Dropped = h.dropped
		if h.journal != nil {
			res.CheckpointHits = h.journal.Hits()
		}
		writeDegradationSummary(h, w)
	}

	if h.triage != nil {
		trep := h.triage.Finalize()
		res.Triage = trep
		writeTriageSummary(trep, w)
		if opts.TriageOut != "" {
			if err := trep.WriteFile(opts.TriageOut); err != nil {
				return nil, err
			}
		}
	}

	if opts.SelfCheck {
		fmt.Fprintln(w, "== Apparatus self-check ==")
		fmt.Fprintln(w)
		checks := selfcheck.Run(opts.Seed)
		failed := 0
		for _, c := range checks {
			status := "ok  "
			if !c.OK {
				status = "FAIL"
				failed++
			}
			fmt.Fprintf(w, "%s  %-36s %s\n", status, c.Name, c.Detail)
		}
		fmt.Fprintf(w, "\n%d checks, %d failed\n\n", len(checks), failed)
		if failed > 0 {
			return nil, fmt.Errorf("reproduce: %d self-checks failed", failed)
		}
	}

	res.Elapsed = time.Since(start) //gpulint:ignore determinism -- the "completed in" line is wall-clock by design; goldens strip it (grep -v)
	fmt.Fprintf(w, "\nreproduction completed in %v\n", res.Elapsed.Round(time.Millisecond))
	return res, nil
}

// writeDegradationSummary renders what the fault campaign could not
// recover. It prints nothing for a fully recovered campaign, which keeps
// such reports byte-identical to fault-free runs.
func writeDegradationSummary(h *harness, w io.Writer) {
	ndropped := 0
	for _, ds := range h.dropped {
		ndropped += len(ds)
	}
	if len(h.degraded) == 0 && ndropped == 0 {
		return
	}
	fmt.Fprintln(w, "== Fault-campaign degradation summary ==")
	fmt.Fprintln(w)
	for _, d := range h.degraded {
		fmt.Fprintf(w, "  %s\n", d.Line)
	}
	boards := make([]string, 0, len(h.dropped))
	for b := range h.dropped {
		boards = append(boards, b)
	}
	sort.Strings(boards)
	for _, b := range boards {
		for _, d := range h.dropped[b] {
			fmt.Fprintf(w, "  %s / %s: dropped from the modeling set (%s)\n", b, d.Benchmark, d.Point)
		}
	}
	fmt.Fprintf(w, "\n%d degraded cells, %d dropped benchmarks\n\n", len(h.degraded), ndropped)
}

// writeTriageSummary renders the human form of the validity triage: the
// cohort line, verdict counts and every non-VALID cell with its reason.
func writeTriageSummary(trep *validity.Report, w io.Writer) {
	fmt.Fprintln(w, "== Campaign validity triage ==")
	fmt.Fprintln(w)
	fmt.Fprintln(w, trep.Summary())
	for _, c := range trep.Cells {
		if c.Class == validity.Valid {
			continue
		}
		fmt.Fprintf(w, "  %s %s/%s/%s@%s: %s\n", c.Class, c.Table, c.Board, c.Bench, c.Pair, c.Reason)
	}
	if trep.Publishable() {
		fmt.Fprintln(w, "publishable: yes")
	} else {
		fmt.Fprintln(w, "publishable: NO")
	}
	fmt.Fprintln(w)
}

// saveArtifact writes content under the artifacts directory; no-op when
// the directory is unset.
func saveArtifact(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, name)
	return os.WriteFile(filepath.Join(dir, slug), []byte(content), 0o644)
}

func resolveBoards(names []string) ([]*arch.Spec, error) {
	if len(names) == 0 {
		return arch.AllBoards(), nil
	}
	var out []*arch.Spec
	for _, n := range names {
		s := arch.BoardByName(n)
		if s == nil {
			return nil, fmt.Errorf("reproduce: unknown board %q", n)
		}
		out = append(out, s)
	}
	return out, nil
}

func runCharacterization(ctx context.Context, opts Options, boards []*arch.Spec, h *harness, res *Result, w io.Writer) error {
	fmt.Fprintln(w, "== Section III — power and performance characterization ==")
	fmt.Fprintln(w)

	boardNames := make([]string, len(boards))
	for i, spec := range boards {
		boardNames[i] = spec.Name
	}

	// Every configuration — plain, fault campaign, checkpointed, observed —
	// routes through the one unified engine; a fault-free sweep is its
	// nil-Resilience configuration and byte-identical to the historical
	// plain path. The track prefix keys the phase's virtual timelines
	// ("1.fig", "2.table4" — the numbers make the sorted export layout
	// follow campaign order). With Repetitions > 1 each sweep runs as a
	// repetition cohort; the report renders repetition 0 (bit-identical to
	// a single run) and the triage engine judges cells across the cohort
	// under the named provenance table.
	sweep := func(prefix, table string, benches []*workloads.Benchmark) (map[string][]*characterize.BenchResult, error) {
		reps, err := characterize.SweepReps(ctx, boardNames, benches, characterize.SweepOptions{
			Seed:        opts.Seed,
			Workers:     opts.workers(),
			Res:         h.res,
			Journal:     h.journal,
			Obs:         opts.Obs,
			TrackPrefix: prefix,
		}, opts.Repetitions)
		if err != nil {
			return nil, err
		}
		if h.use {
			// The degradation summary covers the campaign itself (repetition
			// 0); the cross-repetition story is the triage report's.
			h.note(reps[0])
		}
		if h.triage != nil {
			if err := characterize.ObserveTriageReps(h.triage, table, reps); err != nil {
				return nil, err
			}
		}
		return reps[0], nil
	}

	// Figs. 1–3: the three showcase benchmarks. The (benchmark, board)
	// grid is swept through one worker pool; printing stays in figure
	// order because every job's result is independent of pool scheduling.
	showcases := []struct {
		fig   int
		bench string
	}{{1, "backprop"}, {2, "streamcluster"}, {3, "gaussian"}}
	showBenches := make([]*workloads.Benchmark, len(showcases))
	for i, sc := range showcases {
		showBenches[i] = workloads.ByName(sc.bench)
	}
	showSweeps, err := sweep("1.fig", "fig1-3", showBenches)
	if err != nil {
		return err
	}
	for i, sc := range showcases {
		for _, spec := range boards {
			sw := showSweeps[spec.Name][i]
			var title string
			if best := sw.Best(); best != nil {
				title = fmt.Sprintf("Fig. %d — %s on %s (best %s, +%.1f%% efficiency, %.1f%% perf loss)",
					sc.fig, sc.bench, spec.Name,
					best.Pair, sw.ImprovementPct(), sw.PerfLossPct())
			} else {
				title = fmt.Sprintf("Fig. %d — %s on %s (unstable — no surviving cells)",
					sc.fig, sc.bench, spec.Name)
			}
			tbl := report.FigCurves(title, spec, characterize.Curves(sw, spec))
			fmt.Fprintln(w, tbl.String())
			name := fmt.Sprintf("fig%d-%s.csv", sc.fig, spec.Name)
			if err := saveArtifact(opts.ArtifactsDir, name, tbl.CSV()); err != nil {
				return err
			}
		}
	}

	// Table IV and Fig. 4 over the full Table IV benchmark set. The Table
	// IV renderer consults the triage verdicts: a best-pair claim prints
	// only for cells the cohort judged VALID.
	all, err := sweep("2.table4", "table4", workloads.Table4())
	if err != nil {
		return err
	}
	for _, spec := range boards {
		res.MeanImprovementPct[spec.Name] = characterize.MeanImprovementPct(all[spec.Name])
	}
	fmt.Fprintln(w, report.Table4(boards, all, h.triage).String())
	fmt.Fprintln(w, report.Fig4(boards, all))
	if err := saveArtifact(opts.ArtifactsDir, "table4.csv", report.Table4(boards, all, h.triage).CSV()); err != nil {
		return err
	}
	if err := saveArtifact(opts.ArtifactsDir, "fig4.txt", report.Fig4(boards, all)); err != nil {
		return err
	}
	return nil
}

// observeModelingTriage feeds one board's modeling collection into the
// triage engine under the "modeling" provenance table: a benchmark whose
// retry budget was exhausted is an INFRA_FLAKE naming the fault point;
// the survivors are VALID single runs.
func observeModelingTriage(tr *validity.Triage, board string, ds *core.Dataset) error {
	dropped := map[string]string{}
	for _, d := range ds.Dropped {
		dropped[d.Benchmark] = fmt.Sprintf("retry budget exhausted at %s; dropped from the modeling set", d.Point)
	}
	benches := make([]string, 0, len(workloads.ModelingSet()))
	for _, b := range workloads.ModelingSet() {
		benches = append(benches, b.Name)
	}
	return validity.ObserveModeling(tr, board, benches, dropped)
}

func runModeling(ctx context.Context, opts Options, boards []*arch.Spec, h *harness, res *Result, w io.Writer) error {
	fmt.Fprintln(w, "== Section IV — statistical modeling ==")
	fmt.Fprintln(w)

	r2 := map[string][2]float64{}
	evals := map[string][2]*core.Eval{}
	models := map[string][2]*core.Model{}
	datasets := map[string]*core.Dataset{}

	for _, spec := range boards {
		ds, err := core.CollectCtx(ctx, spec.Name, workloads.ModelingSet(),
			core.CollectOptions{Seed: opts.Seed, Workers: opts.workers(), Res: h.res})
		if err != nil {
			return err
		}
		if h.triage != nil {
			if err := observeModelingTriage(h.triage, spec.Name, ds); err != nil {
				return err
			}
		}
		if h.use {
			h.retries += ds.Retries
			if len(ds.Dropped) > 0 {
				h.dropped[spec.Name] = ds.Dropped
				names := make([]string, len(ds.Dropped))
				for i, d := range ds.Dropped {
					names[i] = fmt.Sprintf("%s (%s)", d.Benchmark, d.Point)
				}
				fmt.Fprintf(w, "note: %s models trained without %s — retry budget exhausted\n\n",
					spec.Name, strings.Join(names, ", "))
			}
			if len(ds.Rows) == 0 {
				fmt.Fprintf(w, "note: %s — no modeling data survived the fault campaign; models skipped\n\n", spec.Name)
				continue
			}
		}
		pm, err := core.TrainCtx(ctx, ds, core.Power, opts.MaxVars)
		if err != nil {
			return err
		}
		tm, err := core.TrainCtx(ctx, ds, core.Time, opts.MaxVars)
		if err != nil {
			return err
		}
		pe, te := pm.Evaluate(ds.Rows), tm.Evaluate(ds.Rows)
		datasets[spec.Name] = ds
		models[spec.Name] = [2]*core.Model{pm, tm}
		r2[spec.Name] = [2]float64{pe.AdjR2, te.AdjR2}
		evals[spec.Name] = [2]*core.Eval{pe, te}
		res.PowerR2[spec.Name] = pe.AdjR2
		res.TimeR2[spec.Name] = te.AdjR2
		res.PowerErrPct[spec.Name] = pe.MeanAbsPct
		res.PowerErrW[spec.Name] = pe.MeanAbsRaw
		res.TimeErrPct[spec.Name] = te.MeanAbsPct
	}

	// A board whose entire modeling set was sacrificed to the campaign has
	// no models; the tables and figures below cover the survivors.
	modeled := boards
	if h.use {
		modeled = make([]*arch.Spec, 0, len(boards))
		for _, spec := range boards {
			if _, ok := datasets[spec.Name]; ok {
				modeled = append(modeled, spec)
			}
		}
	}

	fmt.Fprintln(w, report.Table56(r2, modeled).String())
	fmt.Fprintln(w, report.Table78(evals, modeled).String())
	if err := saveArtifact(opts.ArtifactsDir, "table5-6.csv", report.Table56(r2, modeled).CSV()); err != nil {
		return err
	}
	if err := saveArtifact(opts.ArtifactsDir, "table7-8.csv", report.Table78(evals, modeled).CSV()); err != nil {
		return err
	}

	// Figs. 5 and 6: error distributions.
	for i, kind := range []core.Kind{core.Power, core.Time} {
		for _, spec := range modeled {
			m := models[spec.Name][i]
			title := fmt.Sprintf("Fig. %d — %s-model error distribution (%s)", 5+i, kind, spec.Name)
			tbl := report.Fig56(title, m.PerBenchmarkErrors(datasets[spec.Name].Rows))
			fmt.Fprintln(w, tbl.String())
			name := fmt.Sprintf("fig%d-%s.csv", 5+i, spec.Name)
			if err := saveArtifact(opts.ArtifactsDir, name, tbl.CSV()); err != nil {
				return err
			}
		}
	}

	// Figs. 7 and 8: explanatory-variable sweeps.
	for i, kind := range []core.Kind{core.Power, core.Time} {
		for _, spec := range modeled {
			points, err := core.VariableSweep(datasets[spec.Name], kind, 5, 20)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Fig. %d — variables vs accuracy, %s model (%s)", 7+i, kind, spec.Name)
			fmt.Fprintln(w, report.Fig78(title, points).String())
		}
	}

	// Figs. 9 and 10: per-pair vs unified.
	for i, kind := range []core.Kind{core.Power, core.Time} {
		for _, spec := range modeled {
			// The unified column reuses the Tables V/VI model (same dataset,
			// kind and variable budget) instead of re-running the full-width
			// forward selection.
			cols, err := core.PerPairComparisonWith(datasets[spec.Name], kind, opts.MaxVars, models[spec.Name][i])
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Fig. %d — per-pair vs unified %s models (%s)", 9+i, kind, spec.Name)
			fmt.Fprintln(w, report.Fig910(title, cols))
		}
	}

	// Fig. 11: influence breakdowns.
	for _, spec := range modeled {
		for i, kind := range []core.Kind{core.Power, core.Time} {
			m := models[spec.Name][i]
			title := fmt.Sprintf("Fig. 11 — influence, %s model (%s)", kind, spec.Name)
			fmt.Fprintln(w, report.Fig11(title, m.Influences(datasets[spec.Name].Rows)).String())
		}
	}
	return nil
}

func runAblations(ctx context.Context, opts Options, w io.Writer) error {
	fmt.Fprintln(w, "== Ablations (DESIGN.md §6) ==")
	fmt.Fprintln(w)

	// Voltage-flat Kepler.
	normal, err := sweepImprovement(ctx, arch.GTX680(), "backprop", opts.Seed)
	if err != nil {
		return err
	}
	flat := arch.GTX680()
	flat.CoreVoltLow = flat.CoreVoltHigh
	flat.MemVoltLow = flat.MemVoltHigh
	flat.VoltExponent = 1
	flatImp, err := sweepImprovement(ctx, flat, "backprop", opts.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "voltage-flat GTX 680: backprop best-pair gain %.1f%% → %.1f%%\n", normal, flatImp)
	fmt.Fprintf(w, "  (voltage headroom is the Kepler mechanism)\n\n")

	// Clock-blind (naive) power model. The collect is a byte-identical
	// repeat of the modeling section's, so with the shared launch cache
	// warm it re-simulates nothing. Ablations always run fault-free — they
	// are mechanism probes, not measurement campaigns.
	ds, err := core.CollectCtx(ctx, "GTX 680", workloads.ModelingSet(),
		core.CollectOptions{Seed: opts.Seed, Workers: opts.workers()})
	if err != nil {
		return err
	}
	um, err := core.TrainCtx(ctx, ds, core.Power, opts.MaxVars)
	if err != nil {
		return err
	}
	nm, err := core.TrainNaive(ds, core.Power, opts.MaxVars)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "clock-blind power model: %.1f%% error vs unified %.1f%%\n",
		nm.Evaluate(ds.Rows).MeanAbsPct, um.Evaluate(ds.Rows).MeanAbsPct)
	fmt.Fprintf(w, "  (Eq. 1's frequency terms are load-bearing)\n\n")
	return nil
}

func runFutureWork(ctx context.Context, opts Options, w io.Writer) error {
	fmt.Fprintln(w, "== Future work — AMD Radeon (GCN) ==")
	fmt.Fprintln(w)
	spec := arch.RadeonHD7970()
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		return err
	}
	dev.Seed(opts.Seed)
	fmt.Fprintf(w, "board: %s (%s), %d stream processors, %d-counter profiler set\n",
		spec.Name, spec.Generation, spec.TotalCores(), dev.CounterSet().Len())
	for _, bench := range []string{"backprop", "streamcluster", "gaussian"} {
		sw, err := characterize.SweepBenchmarkCtx(ctx, dev, workloads.ByName(bench))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-14s best %s  +%.1f%% efficiency, %.1f%% perf loss\n",
			bench, sw.Best().Pair, sw.ImprovementPct(), sw.PerfLossPct())
	}
	fmt.Fprintln(w)
	return nil
}

func sweepImprovement(ctx context.Context, spec *arch.Spec, bench string, seed int64) (float64, error) {
	dev, err := driver.OpenSpec(spec)
	if err != nil {
		return 0, err
	}
	dev.Seed(seed)
	r, err := characterize.SweepBenchmarkCtx(ctx, dev, workloads.ByName(bench))
	if err != nil {
		return 0, err
	}
	return r.ImprovementPct(), nil
}
