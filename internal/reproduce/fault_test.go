package reproduce

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpuperf/internal/fault"
)

func mustProfile(t *testing.T, spec string) *fault.Profile {
	t.Helper()
	p, err := fault.ParseProfile(spec)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", spec, err)
	}
	return p
}

// faultOpts is the scoped-down reproduction the fault e2e tests run: one
// board, measurement sections only.
func faultOpts() Options {
	opts := DefaultOptions()
	opts.Boards = []string{"GTX 480"}
	opts.Apparatus = false
	opts.Ablations = false
	opts.FutureWork = false
	opts.SelfCheck = false
	opts.Workers = 4
	return opts
}

func runReport(t *testing.T, opts Options) (string, *Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := Run(opts, &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return buf.String(), res
}

func requireSameReport(t *testing.T, ref, got string) {
	t.Helper()
	ref, got = stripElapsed(ref), stripElapsed(got)
	if ref == got {
		return
	}
	refLines, gotLines := strings.Split(ref, "\n"), strings.Split(got, "\n")
	n := len(refLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if refLines[i] != gotLines[i] {
			t.Fatalf("report diverges at line %d:\n  ref: %q\n  got: %q", i+1, refLines[i], gotLines[i])
		}
	}
	t.Fatalf("report lengths differ: %d vs %d lines", len(refLines), len(gotLines))
}

// TestReproduceTransientCampaignByteIdentical is the tentpole invariant:
// an all-transient fault campaign with a sufficient retry budget produces
// a report byte-identical (modulo the wall-clock line) to the fault-free
// run at the same seed.
func TestReproduceTransientCampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("single-board reproduction; skipped with -short")
	}
	opts := faultOpts()
	ref, _ := runReport(t, opts)

	faulty := opts
	// meter.drop is per sample — long benchmarks cover hundreds of samples,
	// so it must stay far smaller than the per-run points (see
	// core/resilient_test.go).
	faulty.Faults = mustProfile(t, "launch.hang:0.02,clockset.fail:0.03,boot.fail:0.1,meter.drop:0.0002,launch.corrupt:0.02,bios.bitflip:0.02")
	faulty.MaxRetries = 10
	faulty.LaunchTimeout = 30 * time.Millisecond
	got, res := runReport(t, faulty)

	if res.Retries == 0 {
		t.Error("chaos profile triggered no retries — the harness was not exercised")
	}
	if res.DegradedCells != 0 {
		t.Errorf("transient campaign left %d degraded cells", res.DegradedCells)
	}
	if len(res.Dropped) != 0 {
		t.Errorf("transient campaign dropped benchmarks: %+v", res.Dropped)
	}
	requireSameReport(t, ref, got)
}

// TestReproduceZeroProbabilityProfileIdentical: engaging the resilient
// code paths with a profile that can never fire changes nothing.
func TestReproduceZeroProbabilityProfileIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("single-board characterization; skipped with -short")
	}
	opts := faultOpts()
	opts.Modeling = false
	ref, _ := runReport(t, opts)

	faulty := opts
	faulty.Faults = mustProfile(t, "launch.hang:0,meter.drop:0")
	got, res := runReport(t, faulty)
	if res.Retries != 0 {
		t.Errorf("zero-probability profile retried %d times", res.Retries)
	}
	requireSameReport(t, ref, got)
}

// TestReproducePermanentFaultDegradesGracefully: a fault that never goes
// away quarantines every characterization cell and drops every modeled
// benchmark, and the run still completes with a degradation summary.
func TestReproducePermanentFaultDegradesGracefully(t *testing.T) {
	opts := faultOpts()
	opts.Faults = mustProfile(t, "clockset.fail:1")
	opts.MaxRetries = 1
	report, res := runReport(t, opts)

	if res.DegradedCells == 0 {
		t.Error("permanent fault produced no degraded cells")
	}
	if len(res.Dropped["GTX 480"]) == 0 {
		t.Error("permanent fault dropped no modeled benchmarks")
	}
	if imp := res.MeanImprovementPct["GTX 480"]; imp != 0 {
		t.Errorf("all-quarantined board reports %.1f%% improvement, want 0", imp)
	}
	for _, want := range []string{
		"n/a (unstable)",
		"(unstable — no surviving cells)",
		"== Fault-campaign degradation summary ==",
		"quarantined after 1 retries (clockset.fail)",
		"dropped from the modeling set (clockset.fail)",
		"no modeling data survived the fault campaign",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestReproduceCheckpointResume: a journaled campaign replays completed
// cells on resume — including resume from a torn journal — and the
// resumed report is byte-identical to the original.
func TestReproduceCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("single-board characterization; skipped with -short")
	}
	opts := faultOpts()
	opts.Modeling = false
	opts.Faults = mustProfile(t, "launch.hang:0.02,clockset.fail:0.03,meter.drop:0.0002")
	opts.MaxRetries = 10
	opts.LaunchTimeout = 30 * time.Millisecond
	opts.Checkpoint = filepath.Join(t.TempDir(), "journal.jsonl")

	first, _ := runReport(t, opts)

	// A complete journal: every cell replays, nothing is remeasured.
	second, res2 := runReport(t, opts)
	if res2.CheckpointHits == 0 {
		t.Error("resume from a complete journal replayed no cells")
	}
	requireSameReport(t, first, second)

	// A torn journal (killed mid-write): the readable prefix replays, the
	// tail — including the torn line — is remeasured.
	data, err := os.ReadFile(opts.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	torn := strings.Join(lines[:len(lines)/2], "\n") + "\n" + `{"kind":"cell","boa`
	if err := os.WriteFile(opts.Checkpoint, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	third, res3 := runReport(t, opts)
	if res3.CheckpointHits == 0 {
		t.Error("resume from a torn journal replayed no cells")
	}
	requireSameReport(t, first, third)
}
