package reproduce

import (
	"bytes"
	"strings"
	"testing"

	"gpuperf/internal/driver"
)

// stripElapsed drops the one wall-clock line of a report ("reproduction
// completed in …"), the only text that legitimately varies between runs.
func stripElapsed(report string) string {
	lines := strings.Split(report, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "reproduction completed in ") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestReportByteIdenticalAcrossModes is the PR's acceptance criterion: the
// full report produced with parallel pools and launch caching must be
// byte-identical (modulo the wall-clock line) to the sequential, uncached
// reference run at the same seed.
func TestReportByteIdenticalAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction; skipped with -short")
	}

	run := func(workers int, cached bool) string {
		t.Helper()
		restore := driver.PushLaunchCachingEnabled(cached)
		defer restore()
		opts := DefaultOptions()
		opts.Workers = workers
		var buf bytes.Buffer
		if _, err := Run(opts, &buf); err != nil {
			t.Fatalf("workers=%d cached=%v: %v", workers, cached, err)
		}
		return buf.String()
	}

	ref := stripElapsed(run(1, false)) // sequential, uncached reference
	fast := stripElapsed(run(8, true)) // full-width pools, warm caches
	if fast != ref {
		refLines, fastLines := strings.Split(ref, "\n"), strings.Split(fast, "\n")
		n := len(refLines)
		if len(fastLines) < n {
			n = len(fastLines)
		}
		for i := 0; i < n; i++ {
			if refLines[i] != fastLines[i] {
				t.Fatalf("report diverges at line %d:\n  sequential/uncached: %q\n  parallel/cached:     %q",
					i+1, refLines[i], fastLines[i])
			}
		}
		t.Fatalf("report lengths differ: %d vs %d lines", len(refLines), len(fastLines))
	}
}
