package reproduce

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gpuperf/internal/driver"
	"gpuperf/internal/obs"
	"gpuperf/internal/trace"
)

// obsArtifacts holds the three deterministic exports of one instrumented
// campaign.
type obsArtifacts struct {
	metrics string
	trace   string
	events  string
}

// runInstrumented runs the scoped-down reproduction with a fresh recorder
// attached, isolating the process-wide launch cache so back-to-back runs
// start equally cold.
func runInstrumented(t *testing.T, opts Options) obsArtifacts {
	t.Helper()
	restore := driver.PushSharedLaunchCache(driver.NewLaunchCache(4096))
	defer restore()
	rec := obs.New()
	opts.Obs = rec
	var report bytes.Buffer
	if _, err := Run(opts, &report); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var m, tr, ev bytes.Buffer
	if err := rec.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if err := trace.FromRecorder(rec).WriteJSON(&tr); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteEvents(&ev); err != nil {
		t.Fatal(err)
	}
	return obsArtifacts{metrics: m.String(), trace: tr.String(), events: ev.String()}
}

// requireSameArtifact fails at the first diverging line, which localizes a
// determinism break far better than a giant string diff.
func requireSameArtifact(t *testing.T, what, ref, got string) {
	t.Helper()
	if ref == got {
		return
	}
	refLines, gotLines := strings.Split(ref, "\n"), strings.Split(got, "\n")
	n := len(refLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if refLines[i] != gotLines[i] {
			t.Fatalf("%s diverges at line %d:\n  ref: %q\n  got: %q", what, i+1, refLines[i], gotLines[i])
		}
	}
	t.Fatalf("%s lengths differ: %d vs %d lines", what, len(refLines), len(gotLines))
}

// TestObsByteIdenticalAcrossRunsAndWorkers is the tentpole invariant: the
// metrics exposition, the Perfetto trace and the JSONL event log of a
// same-seed campaign are byte-identical run over run AND at any worker
// count — no wall-clock, no float accumulation, no scheduling order leaks
// into the artifacts.
func TestObsByteIdenticalAcrossRunsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("three single-board reproductions; skipped with -short")
	}
	opts := faultOpts()
	ref := runInstrumented(t, opts)
	again := runInstrumented(t, opts)
	requireSameArtifact(t, "metrics", ref.metrics, again.metrics)
	requireSameArtifact(t, "trace", ref.trace, again.trace)
	requireSameArtifact(t, "events", ref.events, again.events)

	sequential := opts
	sequential.Workers = 1
	seq := runInstrumented(t, sequential)
	// The pool-width gauge is the one legitimate difference.
	fix := strings.NewReplacer(
		"characterize_pool_workers 1", "characterize_pool_workers 4",
	)
	requireSameArtifact(t, "metrics (workers=1 vs 4)", ref.metrics, fix.Replace(seq.metrics))
	requireSameArtifact(t, "trace (workers=1 vs 4)", ref.trace, seq.trace)

	// Sanity: the instrumentation actually recorded the campaign.
	for _, family := range []string{
		"driver_launch_cache_hits_total", "driver_launch_cache_misses_total",
		"driver_launches_total", "characterize_cells_total", "core_rows_total",
		"meter_samples_total", "fault_retries_total",
		"characterize_cells_quarantined_total", "regress_forward_selections_total",
	} {
		if !strings.Contains(ref.metrics, "# TYPE "+family+" ") {
			t.Errorf("metrics exposition is missing the %s family", family)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(ref.metrics)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
	if err := obs.ValidateTraceJSON([]byte(ref.trace)); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

// TestObsByteIdenticalUnderFaults repeats the invariant with a live chaos
// profile: injections, retries and backoff advance the virtual clock
// deterministically, so the artifacts still match byte for byte.
func TestObsByteIdenticalUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("two single-board chaos reproductions; skipped with -short")
	}
	opts := faultOpts()
	opts.Faults = mustProfile(t, "launch.hang:0.02,clockset.fail:0.03,boot.fail:0.1,meter.drop:0.0002")
	opts.MaxRetries = 10
	opts.LaunchTimeout = 30 * time.Millisecond

	ref := runInstrumented(t, opts)
	again := runInstrumented(t, opts)
	requireSameArtifact(t, "metrics", ref.metrics, again.metrics)
	requireSameArtifact(t, "trace", ref.trace, again.trace)
	requireSameArtifact(t, "events", ref.events, again.events)

	if !strings.Contains(ref.metrics, `fault_injections_total{point="`) {
		t.Error("chaos campaign recorded no injections")
	}
	if !strings.Contains(ref.metrics, `fault_retries_total{point="`) {
		t.Error("chaos campaign recorded no retries")
	}
	if !strings.Contains(ref.trace, `"retry"`) {
		t.Error("trace has no retry instants")
	}
}

// TestObsNocacheDiffersOnlyInCacheCounters: disabling launch memoization
// may change only the driver_launch_cache_* sample lines of the
// exposition — every other counter, and the virtual timeline, must hold.
func TestObsNocacheDiffersOnlyInCacheCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("two single-board characterizations; skipped with -short")
	}
	opts := faultOpts()
	opts.Modeling = false

	cached := runInstrumented(t, opts)
	restore := driver.PushLaunchCachingEnabled(false)
	uncached := runInstrumented(t, opts)
	restore()

	cachedLines := strings.Split(cached.metrics, "\n")
	uncachedLines := strings.Split(uncached.metrics, "\n")
	if len(cachedLines) != len(uncachedLines) {
		t.Fatalf("exposition shapes differ: %d vs %d lines", len(cachedLines), len(uncachedLines))
	}
	for i := range cachedLines {
		if cachedLines[i] == uncachedLines[i] {
			continue
		}
		if !strings.HasPrefix(cachedLines[i], "driver_launch_cache_") {
			t.Errorf("non-cache line differs:\n  cached:   %q\n  uncached: %q",
				cachedLines[i], uncachedLines[i])
		}
	}
	if !strings.Contains(cached.metrics, `driver_launch_cache_hits_total{board="GTX 480",cache="device"}`) {
		t.Error("cached run recorded no device cache hits")
	}
}
