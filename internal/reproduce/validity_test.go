package reproduce

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpuperf/internal/characterize"
	"gpuperf/internal/validity"
)

// triageOpts is the scoped-down campaign the validity e2e tests run: one
// board, characterization only, pinned code version so cohort hashes are
// stable across build environments.
func triageOpts() Options {
	opts := faultOpts()
	opts.Modeling = false
	opts.CodeVersion = "test"
	return opts
}

// TestReproduceTriageFaultFreeCohort is the headline acceptance: a
// fault-free seed-42 N=3 repetition campaign classifies every cell VALID,
// its baseline.json is byte-identical across worker counts, and the
// written file survives ReadReport's structural validation.
func TestReproduceTriageFaultFreeCohort(t *testing.T) {
	if testing.Short() {
		t.Skip("repetition cohort e2e in -short mode")
	}
	dir := t.TempDir()
	opts := triageOpts()
	opts.Repetitions = 3
	opts.TriageOut = filepath.Join(dir, "w4", "baseline.json")
	report4, res4 := runReport(t, opts)

	if res4.Triage == nil {
		t.Fatal("no triage report on the result")
	}
	if !res4.Triage.Publishable() {
		t.Fatalf("fault-free cohort not publishable: %s", res4.Triage.Summary())
	}
	if n := res4.Triage.Counts[validity.Valid]; n != len(res4.Triage.Cells) || n == 0 {
		t.Errorf("VALID cells = %d of %d", n, len(res4.Triage.Cells))
	}
	for _, table := range []string{"fig1-3", "table4"} {
		tr, ok := res4.Triage.Tables[table]
		if !ok || tr.Cells == 0 {
			t.Errorf("table %q missing from provenance (%+v)", table, tr)
		}
	}
	if !strings.Contains(report4, "== Campaign validity triage ==") {
		t.Error("text report carries no triage section")
	}

	opts1 := opts
	opts1.Workers = 1
	opts1.TriageOut = filepath.Join(dir, "w1", "baseline.json")
	report1, _ := runReport(t, opts1)
	requireSameReport(t, report4, report1)

	b4, err := os.ReadFile(opts.TriageOut)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(opts1.TriageOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b4, b1) {
		t.Error("baseline.json differs across worker counts")
	}
	parsed, err := validity.ReadReport(b4)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if parsed.CohortHash != res4.Triage.CohortHash {
		t.Errorf("file cohort %s != result cohort %s", parsed.CohortHash, res4.Triage.CohortHash)
	}
}

// TestReproduceTriageChaosGatesTableIV: a chaos campaign whose retry
// budget a hang rate exhausts must surface the dead cells as INFRA_FLAKE
// in baseline.json and as "n/a (unstable)" in Table IV — never as
// published best-pair claims.
func TestReproduceTriageChaosGatesTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos triage e2e in -short mode")
	}
	opts := triageOpts()
	opts.Faults = mustProfile(t, "launch.hang:0.12,meter.stuck:0.05:400")
	opts.MaxRetries = 1
	opts.LaunchTimeout = 50 * time.Millisecond
	opts.TriageOut = filepath.Join(t.TempDir(), "baseline.json")
	report, res := runReport(t, opts)

	if res.Triage == nil {
		t.Fatal("no triage report on the result")
	}
	flakes := res.Triage.Counts[validity.InfraFlake]
	if flakes == 0 {
		t.Fatalf("chaos profile produced no INFRA_FLAKE cells: %s", res.Triage.Summary())
	}
	if res.Triage.Publishable() {
		t.Error("campaign with exhausted cells is publishable")
	}
	if !strings.Contains(report, "n/a (unstable)") {
		t.Error("Table IV shows no unstable cells")
	}
	if !strings.Contains(report, string(validity.InfraFlake)) {
		t.Error("triage section lists no INFRA_FLAKE verdicts")
	}
	found := false
	for _, c := range res.Triage.Cells {
		if c.Class == validity.InfraFlake && strings.Contains(c.Reason, "retry budget exhausted") {
			found = true
		}
	}
	if !found {
		t.Error("no flake carries the exhausted-retries reason")
	}

	data, err := os.ReadFile(opts.TriageOut)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := validity.ReadReport(data)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if parsed.Counts[validity.InfraFlake] != flakes {
		t.Errorf("file says %d flakes, result says %d", parsed.Counts[validity.InfraFlake], flakes)
	}
}

// TestReproduceCheckpointCohortMismatch: resuming a checkpoint under any
// other cohort (here a different seed) is a hard error that leaves the
// journal byte-identical on disk — never a silent reset.
func TestReproduceCheckpointCohortMismatch(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "journal.jsonl")
	opts := triageOpts()
	opts.Checkpoint = cp
	runReport(t, opts)
	before, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}

	opts2 := opts
	opts2.Seed = 7
	_, err = Run(opts2, io.Discard)
	var cm *characterize.CohortMismatchError
	if !errors.As(err, &cm) {
		t.Fatalf("got %v, want *characterize.CohortMismatchError", err)
	}
	if cm.Old.Seed != 42 || cm.New.Seed != 7 {
		t.Errorf("mismatch seeds: old %d new %d", cm.Old.Seed, cm.New.Seed)
	}
	after, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("journal changed on a rejected resume")
	}
}

// TestReproduceModelingDropsTriaged: a permanent fault that drops
// benchmarks from the modeling set surfaces them in the "modeling"
// provenance table as INFRA_FLAKE cells, with the survivors VALID.
func TestReproduceModelingDropsTriaged(t *testing.T) {
	if testing.Short() {
		t.Skip("modeling triage e2e in -short mode")
	}
	opts := faultOpts()
	opts.Characterization = false
	opts.CodeVersion = "test"
	opts.Faults = mustProfile(t, "launch.hang:0.12")
	opts.MaxRetries = 1
	opts.LaunchTimeout = 50 * time.Millisecond
	opts.TriageOut = filepath.Join(t.TempDir(), "baseline.json")
	_, res := runReport(t, opts)

	if res.Triage == nil {
		t.Fatal("no triage report on the result")
	}
	mt, ok := res.Triage.Tables["modeling"]
	if !ok || mt.Cells == 0 {
		t.Fatalf("modeling table missing from provenance: %+v", res.Triage.Tables)
	}
	if len(res.Dropped) == 0 {
		t.Skip("profile dropped nothing at this seed; modeling flake path not exercised")
	}
	if len(mt.Unstable) == 0 {
		t.Error("dropped benchmarks did not surface as unstable modeling cells")
	}
	for _, c := range res.Triage.Cells {
		if c.Table != "modeling" || c.Class == validity.Valid {
			continue
		}
		if c.Pair != "-" || !strings.Contains(c.Reason, "dropped from the modeling set") {
			t.Errorf("modeling flake cell malformed: %+v", c)
		}
	}
}
