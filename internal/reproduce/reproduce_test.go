package reproduce

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuickRunSingleBoard(t *testing.T) {
	opts := DefaultOptions()
	opts.Modeling = false
	opts.Ablations = false
	opts.FutureWork = false
	opts.Boards = []string{"GTX 680"}

	var buf bytes.Buffer
	res, err := Run(opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"TABLE I", "TABLE III", "Fig. 1", "Fig. 2", "Fig. 3",
		"TABLE IV", "Fig. 4", "GTX 680",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Section IV") {
		t.Error("modeling section present despite being disabled")
	}
	if imp := res.MeanImprovementPct["GTX 680"]; imp < 10 {
		t.Errorf("GTX 680 mean improvement %.1f%%, want the Kepler regime", imp)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunRejectsUnknownBoard(t *testing.T) {
	opts := DefaultOptions()
	opts.Boards = []string{"GTX 9999"}
	if _, err := Run(opts, &bytes.Buffer{}); err == nil {
		t.Error("Run accepted unknown board")
	}
}

func TestFullRunHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction is seconds-long; skipped in -short")
	}
	var buf bytes.Buffer
	res, err := Run(DefaultOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"TABLES V & VI", "TABLES VII & VIII",
		"Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
		"Ablations", "Radeon", "reproduction completed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The paper's headline relationships, end to end.
	if !(res.MeanImprovementPct["GTX 285"] < res.MeanImprovementPct["GTX 680"]) {
		t.Error("Fig. 4 generation ladder violated")
	}
	for _, board := range []string{"GTX 285", "GTX 460", "GTX 480", "GTX 680"} {
		if !(res.PowerR2[board] < res.TimeR2[board]) {
			t.Errorf("%s: power R̄² %.2f not below time R̄² %.2f", board, res.PowerR2[board], res.TimeR2[board])
		}
		if !(res.TimeErrPct[board] > res.PowerErrPct[board]) {
			t.Errorf("%s: time error %.1f%% not above power error %.1f%%", board, res.TimeErrPct[board], res.PowerErrPct[board])
		}
		if res.PowerErrW[board] > 30 {
			t.Errorf("%s: power error %.1f W above the paper's ~25 W ceiling", board, res.PowerErrW[board])
		}
	}
	if !(res.PowerR2["GTX 680"] < res.PowerR2["GTX 285"]) {
		t.Error("Kepler should have the lowest power-model R̄² (Table V)")
	}
}

func TestArtifactsDirectory(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.Modeling = false
	opts.Ablations = false
	opts.FutureWork = false
	opts.Boards = []string{"GTX 680"}
	opts.ArtifactsDir = dir
	if _, err := Run(opts, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1.csv", "table3.csv", "table4.csv", "fig1-gtx-680.csv", "fig4.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("artifact %s missing: %v", want, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "table4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "backprop") {
		t.Error("table4.csv lacks benchmark rows")
	}
}
