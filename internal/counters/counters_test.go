package counters

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gpuperf/internal/arch"
)

func TestCardinalitiesMatchPaper(t *testing.T) {
	// Section IV-A: 32 counters for GTX 285, 74 for GTX 460/480, 108 for
	// GTX 680.
	want := map[arch.Generation]int{arch.Tesla: 32, arch.Fermi: 74, arch.Kepler: 108}
	for g, n := range want {
		if got := ForGeneration(g).Len(); got != n {
			t.Errorf("%v: %d counters, want %d", g, got, n)
		}
	}
}

func TestNamesUniqueAndNonEmpty(t *testing.T) {
	for _, g := range []arch.Generation{arch.Tesla, arch.Fermi, arch.Kepler} {
		s := ForGeneration(g)
		seen := map[string]bool{}
		for _, d := range s.Defs {
			if d.Name == "" {
				t.Errorf("%v: empty counter name", g)
			}
			if seen[d.Name] {
				t.Errorf("%v: duplicate counter %q", g, d.Name)
			}
			seen[d.Name] = true
		}
	}
}

func TestIndexLookup(t *testing.T) {
	s := ForGeneration(arch.Kepler)
	for i, d := range s.Defs {
		if got := s.Index(d.Name); got != i {
			t.Errorf("Index(%q) = %d, want %d", d.Name, got, i)
		}
	}
	if s.Index("no_such_counter") != -1 {
		t.Error("Index of unknown counter should be -1")
	}
}

func TestBothClassesPresent(t *testing.T) {
	// The paper's unified model needs both core-events and memory-events
	// on every architecture.
	for _, g := range []arch.Generation{arch.Tesla, arch.Fermi, arch.Kepler} {
		s := ForGeneration(g)
		var core, mem int
		for _, d := range s.Defs {
			if d.Class == CoreEvent {
				core++
			} else {
				mem++
			}
		}
		if core == 0 || mem == 0 {
			t.Errorf("%v: %d core-event and %d mem-event counters; need both", g, core, mem)
		}
	}
}

func TestTeslaHasNoCacheCounters(t *testing.T) {
	s := ForGeneration(arch.Tesla)
	for _, d := range s.Defs {
		if strings.HasPrefix(d.Name, "l1_") || strings.HasPrefix(d.Name, "l2_") {
			t.Errorf("Tesla counter set contains cache counter %q", d.Name)
		}
	}
}

func TestCollectDeterministicWithSameSeed(t *testing.T) {
	s := ForGeneration(arch.Fermi)
	var v Vector
	v[ActInstExecuted] = 1e9
	v[ActLSU] = 2e8
	v[ActL2Hit] = 5e7
	a := s.Collect(&v, rand.New(rand.NewSource(7)))
	b := s.Collect(&v, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("counter %d differs across identical seeds: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestCollectNilRNGIsExact(t *testing.T) {
	s := ForGeneration(arch.Kepler)
	var v Vector
	v[ActInstExecuted] = 1000
	idx := s.Index("inst_executed")
	got := s.Collect(&v, nil)
	if got[idx] != 1000 {
		t.Errorf("inst_executed = %g, want 1000 (exact with nil rng)", got[idx])
	}
}

func TestCollectNonNegativeProperty(t *testing.T) {
	s := ForGeneration(arch.Kepler)
	f := func(seed int64, insts, lsu, l2 uint32) bool {
		var v Vector
		v[ActInstExecuted] = float64(insts)
		v[ActInstIssued] = float64(insts) * 1.1
		v[ActLSU] = float64(lsu)
		v[ActL2Hit] = float64(l2)
		rng := rand.New(rand.NewSource(seed))
		for _, x := range s.Collect(&v, rng) {
			if x < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVectorAdd(t *testing.T) {
	var a, b Vector
	a[ActInstExecuted] = 10
	a[ActOccupancy] = 0.5
	b[ActInstExecuted] = 5
	b[ActOccupancy] = 0.75
	a.Add(&b)
	if a[ActInstExecuted] != 15 {
		t.Errorf("Add summed instructions to %g, want 15", a[ActInstExecuted])
	}
	if a[ActOccupancy] != 0.75 {
		t.Errorf("Add should max occupancy; got %g, want 0.75", a[ActOccupancy])
	}
}

func TestVectorScale(t *testing.T) {
	var v Vector
	v[ActDRAMRead] = 100
	v[ActOccupancy] = 0.6
	v.Scale(2)
	if v[ActDRAMRead] != 200 {
		t.Errorf("Scale: DRAM reads %g, want 200", v[ActDRAMRead])
	}
	if v[ActOccupancy] != 0.6 {
		t.Errorf("Scale must not touch occupancy; got %g", v[ActOccupancy])
	}
}

func TestCollectLinearityProperty(t *testing.T) {
	// Property: with nil rng, Collect is linear in the activity vector
	// for event-total counters (doubling all totals doubles the value).
	s := ForGeneration(arch.Fermi)
	f := func(insts, dram uint16) bool {
		var v Vector
		v[ActInstExecuted] = float64(insts)
		v[ActDRAMRead] = float64(dram)
		one := s.Collect(&v, nil)
		v.Scale(2)
		two := s.Collect(&v, nil)
		for i := range one {
			if diff := two[i] - 2*one[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGCNCounterSet(t *testing.T) {
	// Future-work extension: the AMD GCN profiler set has 48 counters,
	// both event classes, and wires into ForGeneration like the NVIDIA
	// sets.
	s := ForGeneration(arch.GCN)
	if s.Len() != 48 {
		t.Errorf("GCN set has %d counters, want 48", s.Len())
	}
	var coreN, memN int
	for _, d := range s.Defs {
		if d.Class == CoreEvent {
			coreN++
		} else {
			memN++
		}
	}
	if coreN == 0 || memN == 0 {
		t.Errorf("GCN set needs both classes; got %d core, %d mem", coreN, memN)
	}
	if s.Index("VALUInsts") < 0 || s.Index("FetchSize") < 0 {
		t.Error("GCN set missing canonical counters")
	}
}

func TestForGenerationPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ForGeneration should panic on an unregistered generation")
		}
	}()
	ForGeneration(arch.Generation(99))
}
