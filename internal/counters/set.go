package counters

import (
	"fmt"
	"math/rand"

	"gpuperf/internal/arch"
)

// Class is the paper's two-way classification of counters: core-events
// consume energy proportional to the core clock; memory-events to the
// memory clock (Section IV-A).
type Class int

const (
	// CoreEvent counters track activity inside the SMs.
	CoreEvent Class = iota
	// MemEvent counters track un-core activity (L2, DRAM).
	MemEvent
)

// String returns "core" or "mem".
func (c Class) String() string {
	if c == CoreEvent {
		return "core"
	}
	return "mem"
}

// Def defines one named hardware counter as a weighted view over the
// activity vector. Jitter is the relative standard deviation of the
// multiplicative sampling noise (profiler nondeterminism).
type Def struct {
	Name    string
	Class   Class
	Weights map[Activity]float64
	Jitter  float64
}

// Set is the full counter list of one architecture generation.
type Set struct {
	Generation arch.Generation
	Defs       []Def
	byName     map[string]int
}

// Len returns the number of counters in the set.
func (s *Set) Len() int { return len(s.Defs) }

// Index returns the position of the named counter, or -1.
func (s *Set) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Collect evaluates every counter over an activity vector. The rng drives
// the per-counter sampling jitter; pass a deterministic source for
// reproducible experiments. Values are clamped at zero.
func (s *Set) Collect(v *Vector, rng *rand.Rand) []float64 {
	out := make([]float64, len(s.Defs))
	for i, d := range s.Defs {
		var x float64
		for act, w := range d.Weights {
			x += w * v[act]
		}
		if d.Jitter > 0 && rng != nil {
			x *= 1 + d.Jitter*rng.NormFloat64()
		}
		if x < 0 {
			x = 0
		}
		out[i] = x
	}
	return out
}

func newSet(g arch.Generation, defs []Def) *Set {
	s := &Set{Generation: g, Defs: defs, byName: make(map[string]int, len(defs))}
	for i, d := range defs {
		if _, dup := s.byName[d.Name]; dup {
			panic(fmt.Sprintf("counters: duplicate counter %q", d.Name))
		}
		s.byName[d.Name] = i
	}
	return s
}

func def(name string, class Class, jitter float64, pairs ...interface{}) Def {
	if len(pairs)%2 != 0 {
		panic("counters: def weights must be (Activity, float64) pairs")
	}
	w := make(map[Activity]float64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		w[pairs[i].(Activity)] = pairs[i+1].(float64)
	}
	return Def{Name: name, Class: class, Weights: w, Jitter: jitter}
}

// ForGeneration returns the counter set of an architecture generation.
// Cardinalities match the paper: Tesla 32, Fermi 74, Kepler 108.
//
// Counter fidelity improves with generation: the GT200-era profiler sampled
// a single TPC (or one memory partition) and extrapolated chip-wide, so its
// counters carry several times the sampling error of Kepler's chip-wide
// counting. This is one of the paper's explanations for why both models
// grow more accurate on newer GPUs.
func ForGeneration(g arch.Generation) *Set {
	switch g {
	case arch.Tesla:
		return newSet(g, scaleJitter(teslaDefs(), 4.0))
	case arch.Fermi:
		return newSet(g, scaleJitter(fermiDefs(), 1.8))
	case arch.Kepler:
		return newSet(g, keplerDefs())
	default:
		if mk, ok := extraGenerations[g]; ok {
			return mk()
		}
		panic(fmt.Sprintf("counters: unknown generation %v", g))
	}
}

// extraGenerations registers counter sets beyond the paper's three NVIDIA
// generations (the future-work GCN set registers itself here).
var extraGenerations = map[arch.Generation]func() *Set{}

func scaleJitter(defs []Def, k float64) []Def {
	for i := range defs {
		defs[i].Jitter *= k
	}
	return defs
}

const (
	jSmall = 0.01 // tightly specified counters
	jMed   = 0.03 // counters with sampling windows
	jBig   = 0.08 // noisy/derived counters
)

// teslaDefs lists the 32 counters of the GT200-era profiler.
func teslaDefs() []Def {
	defs := []Def{
		def("instructions", CoreEvent, jSmall, ActInstExecuted, 1.0),
		def("warp_serialize", CoreEvent, jMed, ActShared, 0.15, ActDivergent, 0.6),
		def("branch", CoreEvent, jSmall, ActBranch, 1.0),
		def("divergent_branch", CoreEvent, jSmall, ActDivergent, 1.0),
		def("sm_cta_launched", CoreEvent, jSmall, ActBlocksLaunched, 1.0/30),
		def("active_cycles", CoreEvent, jMed, ActActiveCycles, 1.0/30),
		def("active_warps", CoreEvent, jMed, ActActiveCycles, 0.8, ActOccupancy, 0.0),
		def("shared_load", CoreEvent, jSmall, ActShared, 0.6),
		def("shared_store", CoreEvent, jSmall, ActShared, 0.4),
		def("local_load", MemEvent, jMed, ActLSU, 0.02),
		def("local_store", MemEvent, jMed, ActLSU, 0.01),
		def("cta_heartbeat", CoreEvent, jBig, ActBlocksLaunched, 1.0/120),
	}
	// Per-width global load/store transaction counters: the GT200
	// profiler splits transactions by access width.
	for _, side := range []struct {
		name string
		act  Activity
	}{{"gld", ActGlobalLoadTxn}, {"gst", ActGlobalStoreTxn}} {
		for _, w := range []struct {
			suffix string
			share  float64
		}{{"32b", 0.25}, {"64b", 0.35}, {"128b", 0.40}} {
			defs = append(defs, def(side.name+"_"+w.suffix, MemEvent, jSmall, side.act, w.share))
		}
	}
	// gld/gst_incoherent|coherent: coalescing split.
	defs = append(defs,
		def("gld_incoherent", MemEvent, jMed, ActGlobalLoadTxn, 0.2),
		def("gld_coherent", MemEvent, jMed, ActGlobalLoadTxn, 0.8),
		def("gst_incoherent", MemEvent, jMed, ActGlobalStoreTxn, 0.2),
		def("gst_coherent", MemEvent, jMed, ActGlobalStoreTxn, 0.8),
		def("gld_request", MemEvent, jSmall, ActLSU, 0.6),
		def("gst_request", MemEvent, jSmall, ActLSU, 0.4),
	)
	// tlb and prof_trigger padding counters, as on the real GT200
	// profiler (prof_trigger_00..07 are user-armed and mostly noise).
	defs = append(defs,
		def("tlb_hit", MemEvent, jBig, ActGlobalLoadTxn, 0.9, ActGlobalStoreTxn, 0.9),
		def("tlb_miss", MemEvent, jBig, ActGlobalLoadTxn, 0.1, ActGlobalStoreTxn, 0.1),
	)
	for i := 0; i < 6; i++ {
		defs = append(defs, def(fmt.Sprintf("prof_trigger_%02d", i), CoreEvent, jBig,
			ActInstIssued, 0.001*float64(i+1)))
	}
	return defs
}

// fermiDefs lists the 74 counters of the Fermi-era profiler.
func fermiDefs() []Def {
	defs := []Def{
		def("inst_executed", CoreEvent, jSmall, ActInstExecuted, 1.0),
		def("inst_issued", CoreEvent, jSmall, ActInstIssued, 1.0),
		def("inst_issued1_0", CoreEvent, jMed, ActInstIssued, 0.30),
		def("inst_issued2_0", CoreEvent, jMed, ActInstIssued, 0.20),
		def("inst_issued1_1", CoreEvent, jMed, ActInstIssued, 0.30),
		def("inst_issued2_1", CoreEvent, jMed, ActInstIssued, 0.20),
		def("inst_issued_replay", CoreEvent, jMed, ActInstIssued, 0.05, ActDivergent, 0.3),
		def("thread_inst_executed_0", CoreEvent, jSmall, ActInstExecuted, 8.0),
		def("thread_inst_executed_1", CoreEvent, jSmall, ActInstExecuted, 8.0),
		def("thread_inst_executed_2", CoreEvent, jSmall, ActInstExecuted, 8.0),
		def("thread_inst_executed_3", CoreEvent, jSmall, ActInstExecuted, 8.0),
		def("atom_count", MemEvent, jBig, ActGlobalStoreTxn, 0.02),
		def("gred_count", MemEvent, jBig, ActGlobalStoreTxn, 0.01),
		def("branch", CoreEvent, jSmall, ActBranch, 1.0),
		def("divergent_branch", CoreEvent, jSmall, ActDivergent, 1.0),
		def("warps_launched", CoreEvent, jSmall, ActWarpsLaunched, 1.0),
		def("threads_launched", CoreEvent, jSmall, ActThreadsLaunched, 1.0),
		def("sm_cta_launched", CoreEvent, jSmall, ActBlocksLaunched, 1.0),
		def("active_cycles", CoreEvent, jMed, ActActiveCycles, 1.0),
		def("active_warps", CoreEvent, jMed, ActActiveCycles, 24.0),
		def("shared_load", CoreEvent, jSmall, ActShared, 0.6),
		def("shared_store", CoreEvent, jSmall, ActShared, 0.4),
		def("local_load", MemEvent, jMed, ActLSU, 0.02),
		def("local_store", MemEvent, jMed, ActLSU, 0.01),
		def("gld_request", CoreEvent, jSmall, ActLSU, 0.6),
		def("gst_request", CoreEvent, jSmall, ActLSU, 0.4),
	}
	// L1 behaviour, split by load/store and hit/miss.
	defs = append(defs,
		def("l1_global_load_hit", CoreEvent, jSmall, ActL1Hit, 0.7),
		def("l1_global_load_miss", CoreEvent, jSmall, ActL1Miss, 0.7),
		def("l1_global_store_hit", CoreEvent, jMed, ActL1Hit, 0.3),
		def("l1_global_store_miss", CoreEvent, jMed, ActL1Miss, 0.3),
		def("l1_local_load_hit", CoreEvent, jBig, ActL1Hit, 0.02),
		def("l1_local_load_miss", CoreEvent, jBig, ActL1Miss, 0.02),
		def("l1_local_store_hit", CoreEvent, jBig, ActL1Hit, 0.01),
		def("l1_local_store_miss", CoreEvent, jBig, ActL1Miss, 0.01),
		def("l1_shared_bank_conflict", CoreEvent, jBig, ActShared, 0.05, ActDivergent, 0.1),
		def("uncached_global_load_transaction", MemEvent, jMed, ActGlobalLoadTxn, 0.1),
		def("global_store_transaction", MemEvent, jSmall, ActGlobalStoreTxn, 1.0),
	)
	// L2: per-subpartition read/write sector queries and hits (4 subps).
	for sp := 0; sp < 4; sp++ {
		frac := 0.25
		defs = append(defs,
			def(fmt.Sprintf("l2_subp%d_read_sector_queries", sp), MemEvent, jSmall, ActL2Hit, frac, ActL2Miss, frac),
			def(fmt.Sprintf("l2_subp%d_write_sector_queries", sp), MemEvent, jMed, ActGlobalStoreTxn, frac),
			def(fmt.Sprintf("l2_subp%d_read_hit_sectors", sp), MemEvent, jSmall, ActL2Hit, frac),
			def(fmt.Sprintf("l2_subp%d_read_sector_misses", sp), MemEvent, jSmall, ActL2Miss, frac),
		)
	}
	// DRAM: per-partition reads and writes (2 partitions).
	for sp := 0; sp < 2; sp++ {
		defs = append(defs,
			def(fmt.Sprintf("fb_subp%d_read_sectors", sp), MemEvent, jSmall, ActDRAMRead, 0.5),
			def(fmt.Sprintf("fb_subp%d_write_sectors", sp), MemEvent, jSmall, ActDRAMWrite, 0.5),
		)
	}
	// Texture path (unused by most compute kernels → mostly noise).
	defs = append(defs,
		def("tex0_cache_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.02),
		def("tex0_cache_sector_misses", MemEvent, jBig, ActGlobalLoadTxn, 0.01),
		def("tex1_cache_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.02),
		def("tex1_cache_sector_misses", MemEvent, jBig, ActGlobalLoadTxn, 0.01),
		def("l2_subp0_read_tex_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.01),
		def("l2_subp1_read_tex_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.01),
	)
	// Stall reasons.
	defs = append(defs,
		def("stall_memory_dependency", CoreEvent, jMed, ActStallMem, 1.0),
		def("stall_exec_dependency", CoreEvent, jMed, ActStallExec, 1.0),
		def("stall_sync", CoreEvent, jBig, ActStallExec, 0.2, ActShared, 0.05),
	)
	for i := 0; i < 8; i++ {
		defs = append(defs, def(fmt.Sprintf("prof_trigger_%02d", i), CoreEvent, jBig,
			ActInstIssued, 0.001*float64(i+1)))
	}
	return defs
}

// keplerDefs lists the 108 counters of the Kepler-era profiler. Kepler kept
// the Fermi events and split many of them further per scheduler/pipe.
func keplerDefs() []Def {
	defs := []Def{
		def("inst_executed", CoreEvent, jSmall, ActInstExecuted, 1.0),
		def("inst_issued", CoreEvent, jSmall, ActInstIssued, 1.0),
		def("thread_inst_executed", CoreEvent, jSmall, ActInstExecuted, 32.0),
		def("branch", CoreEvent, jSmall, ActBranch, 1.0),
		def("divergent_branch", CoreEvent, jSmall, ActDivergent, 1.0),
		def("warps_launched", CoreEvent, jSmall, ActWarpsLaunched, 1.0),
		def("threads_launched", CoreEvent, jSmall, ActThreadsLaunched, 1.0),
		def("sm_cta_launched", CoreEvent, jSmall, ActBlocksLaunched, 1.0),
		def("active_cycles", CoreEvent, jMed, ActActiveCycles, 1.0),
		def("active_warps", CoreEvent, jMed, ActActiveCycles, 32.0),
		def("elapsed_cycles_sm", CoreEvent, jSmall, ActElapsedCycles, 8.0),
		def("achieved_occupancy", CoreEvent, jMed, ActOccupancy, 1.0),
		def("shared_load", CoreEvent, jSmall, ActShared, 0.6),
		def("shared_store", CoreEvent, jSmall, ActShared, 0.4),
		def("shared_load_replay", CoreEvent, jBig, ActShared, 0.05),
		def("shared_store_replay", CoreEvent, jBig, ActShared, 0.03),
		def("local_load", MemEvent, jMed, ActLSU, 0.02),
		def("local_store", MemEvent, jMed, ActLSU, 0.01),
		def("gld_request", CoreEvent, jSmall, ActLSU, 0.6),
		def("gst_request", CoreEvent, jSmall, ActLSU, 0.4),
		def("global_ld_mem_divergence_replays", CoreEvent, jMed, ActGlobalLoadTxn, 0.1),
		def("global_st_mem_divergence_replays", CoreEvent, jMed, ActGlobalStoreTxn, 0.1),
		def("atom_count", MemEvent, jBig, ActGlobalStoreTxn, 0.02),
		def("gred_count", MemEvent, jBig, ActGlobalStoreTxn, 0.01),
		def("atom_cas_count", MemEvent, jBig, ActGlobalStoreTxn, 0.005),
		def("shared_ld_bank_conflict", CoreEvent, jBig, ActShared, 0.04),
		def("shared_st_bank_conflict", CoreEvent, jBig, ActShared, 0.03),
		def("uncached_global_load_transaction", MemEvent, jMed, ActGlobalLoadTxn, 0.1),
		def("global_store_transaction", MemEvent, jSmall, ActGlobalStoreTxn, 1.0),
		def("not_predicated_off_thread_inst_executed", CoreEvent, jSmall, ActInstExecuted, 30.0),
	}
	// Per-pipe instruction counters (Kepler exposes FU-level issue counts).
	defs = append(defs,
		def("inst_fp_32", CoreEvent, jSmall, ActALU, 0.8),
		def("inst_integer", CoreEvent, jSmall, ActALU, 0.2, ActBranch, 1.0),
		def("inst_fp_64", CoreEvent, jSmall, ActDP, 1.0),
		def("inst_misc", CoreEvent, jMed, ActSFU, 1.0),
		def("inst_compute_ld_st", CoreEvent, jSmall, ActLSU, 1.0),
		def("inst_control", CoreEvent, jSmall, ActBranch, 1.0),
		def("inst_bit_convert", CoreEvent, jBig, ActALU, 0.05),
		def("inst_inter_thread_communication", CoreEvent, jBig, ActShared, 0.02),
	)
	// Per-scheduler issue counters (4 schedulers).
	for sched := 0; sched < 4; sched++ {
		defs = append(defs,
			def(fmt.Sprintf("inst_issued1_sched%d", sched), CoreEvent, jMed, ActInstIssued, 0.15),
			def(fmt.Sprintf("inst_issued2_sched%d", sched), CoreEvent, jMed, ActInstIssued, 0.10),
		)
	}
	// L1.
	defs = append(defs,
		def("l1_global_load_hit", CoreEvent, jSmall, ActL1Hit, 0.7),
		def("l1_global_load_miss", CoreEvent, jSmall, ActL1Miss, 0.7),
		def("l1_global_store_hit", CoreEvent, jMed, ActL1Hit, 0.3),
		def("l1_global_store_miss", CoreEvent, jMed, ActL1Miss, 0.3),
		def("l1_local_load_hit", CoreEvent, jBig, ActL1Hit, 0.02),
		def("l1_local_load_miss", CoreEvent, jBig, ActL1Miss, 0.02),
		def("l1_local_store_hit", CoreEvent, jBig, ActL1Hit, 0.01),
		def("l1_local_store_miss", CoreEvent, jBig, ActL1Miss, 0.01),
		def("l1_shared_bank_conflict", CoreEvent, jBig, ActShared, 0.05, ActDivergent, 0.1),
	)
	// L2, per subpartition (4), read+write queries, hits, misses.
	for sp := 0; sp < 4; sp++ {
		frac := 0.25
		defs = append(defs,
			def(fmt.Sprintf("l2_subp%d_read_sector_queries", sp), MemEvent, jSmall, ActL2Hit, frac, ActL2Miss, frac),
			def(fmt.Sprintf("l2_subp%d_write_sector_queries", sp), MemEvent, jMed, ActGlobalStoreTxn, frac),
			def(fmt.Sprintf("l2_subp%d_read_hit_sectors", sp), MemEvent, jSmall, ActL2Hit, frac),
			def(fmt.Sprintf("l2_subp%d_read_sector_misses", sp), MemEvent, jSmall, ActL2Miss, frac),
			def(fmt.Sprintf("l2_subp%d_total_read_sector_queries", sp), MemEvent, jMed, ActL2Hit, frac, ActL2Miss, frac, ActGlobalLoadTxn, 0.02),
			def(fmt.Sprintf("l2_subp%d_total_write_sector_queries", sp), MemEvent, jMed, ActGlobalStoreTxn, frac*1.05),
		)
	}
	// DRAM, per partition (2), reads/writes plus sysmem.
	for sp := 0; sp < 2; sp++ {
		defs = append(defs,
			def(fmt.Sprintf("fb_subp%d_read_sectors", sp), MemEvent, jSmall, ActDRAMRead, 0.5),
			def(fmt.Sprintf("fb_subp%d_write_sectors", sp), MemEvent, jSmall, ActDRAMWrite, 0.5),
			def(fmt.Sprintf("sysmem_read_transactions_p%d", sp), MemEvent, jBig, ActDRAMRead, 0.005),
			def(fmt.Sprintf("sysmem_write_transactions_p%d", sp), MemEvent, jBig, ActDRAMWrite, 0.005),
		)
	}
	// Texture path.
	defs = append(defs,
		def("tex0_cache_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.02),
		def("tex0_cache_sector_misses", MemEvent, jBig, ActGlobalLoadTxn, 0.01),
		def("tex1_cache_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.02),
		def("tex1_cache_sector_misses", MemEvent, jBig, ActGlobalLoadTxn, 0.01),
		def("tex2_cache_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.02),
		def("tex3_cache_sector_queries", MemEvent, jBig, ActGlobalLoadTxn, 0.02),
	)
	// Stall-reason breakdown (Kepler widened it).
	defs = append(defs,
		def("stall_memory_dependency", CoreEvent, jMed, ActStallMem, 0.9),
		def("stall_exec_dependency", CoreEvent, jMed, ActStallExec, 0.7),
		def("stall_inst_fetch", CoreEvent, jBig, ActStallExec, 0.1),
		def("stall_sync", CoreEvent, jBig, ActStallExec, 0.1, ActShared, 0.05),
		def("stall_texture", CoreEvent, jBig, ActStallMem, 0.02),
		def("stall_constant_memory_dependency", CoreEvent, jBig, ActStallMem, 0.01),
		def("stall_other", CoreEvent, jBig, ActStallExec, 0.1),
	)
	for i := 0; i < 8; i++ {
		defs = append(defs, def(fmt.Sprintf("prof_trigger_%02d", i), CoreEvent, jBig,
			ActInstIssued, 0.001*float64(i+1)))
	}
	return defs
}
