package counters

import (
	"fmt"

	"gpuperf/internal/arch"
)

// gcnDefs lists the 48 counters of the AMD GCN profiler (CodeXL-era GPU
// performance counters for Tahiti). This is the future-work extension: the
// paper's Section IV-B closes by proposing validation on AMD Radeon, and
// the unified models only need a counter set with core/memory-event
// classification to train on a new vendor.
func gcnDefs() []Def {
	defs := []Def{
		def("Wavefronts", CoreEvent, jSmall, ActWarpsLaunched, 1.0),
		def("VALUInsts", CoreEvent, jSmall, ActALU, 1.0, ActSFU, 1.0),
		def("SALUInsts", CoreEvent, jSmall, ActALU, 0.25, ActBranch, 1.0),
		def("VFetchInsts", CoreEvent, jSmall, ActLSU, 0.6),
		def("VWriteInsts", CoreEvent, jSmall, ActLSU, 0.4),
		def("FlatVMemInsts", CoreEvent, jMed, ActLSU, 0.1),
		def("SFetchInsts", CoreEvent, jMed, ActInstIssued, 0.04),
		def("VALUBusy", CoreEvent, jMed, ActALU, 1.0, ActDP, 4.0),
		def("SALUBusy", CoreEvent, jMed, ActBranch, 1.0, ActALU, 0.25),
		def("VALUUtilization", CoreEvent, jMed, ActOccupancy, 1.0),
		def("GDSInsts", CoreEvent, jBig, ActShared, 0.02),
		def("LDSInsts", CoreEvent, jSmall, ActShared, 1.0),
		def("LDSBankConflict", CoreEvent, jBig, ActShared, 0.06, ActDivergent, 0.1),
		def("FP64Insts", CoreEvent, jSmall, ActDP, 1.0),
		def("BranchInsts", CoreEvent, jSmall, ActBranch, 1.0),
		def("BranchTakenDivergent", CoreEvent, jSmall, ActDivergent, 1.0),
		def("InstsIssued", CoreEvent, jSmall, ActInstIssued, 1.0),
		def("InstsExecuted", CoreEvent, jSmall, ActInstExecuted, 1.0),
		def("GPUBusy", CoreEvent, jMed, ActActiveCycles, 1.0),
		def("GPUTime_cycles", CoreEvent, jSmall, ActElapsedCycles, 1.0),
		def("CSThreadGroups", CoreEvent, jSmall, ActBlocksLaunched, 1.0),
		def("CSThreads", CoreEvent, jSmall, ActThreadsLaunched, 1.0),
	}
	// Texture/cache unit counters.
	defs = append(defs,
		def("TCPBusy", CoreEvent, jMed, ActL1Hit, 0.8, ActL1Miss, 1.0),
		def("CacheHit_L1", CoreEvent, jSmall, ActL1Hit, 1.0),
		def("CacheMiss_L1", CoreEvent, jSmall, ActL1Miss, 1.0),
		def("L2CacheHit", MemEvent, jSmall, ActL2Hit, 1.0),
		def("L2CacheMiss", MemEvent, jSmall, ActL2Miss, 1.0),
		def("TCCBusy", MemEvent, jMed, ActL2Hit, 0.5, ActL2Miss, 0.7),
	)
	// Memory-unit counters, per channel pair (4 groups over 12 channels).
	for ch := 0; ch < 4; ch++ {
		defs = append(defs,
			def(fmt.Sprintf("MemRead_ch%d", ch), MemEvent, jSmall, ActDRAMRead, 0.25),
			def(fmt.Sprintf("MemWrite_ch%d", ch), MemEvent, jSmall, ActDRAMWrite, 0.25),
		)
	}
	defs = append(defs,
		def("FetchSize", MemEvent, jSmall, ActDRAMRead, 64.0),  // bytes
		def("WriteSize", MemEvent, jSmall, ActDRAMWrite, 64.0), // bytes
		def("MemUnitBusy", MemEvent, jMed, ActDRAMRead, 0.6, ActDRAMWrite, 0.6),
		def("MemUnitStalled", CoreEvent, jMed, ActStallMem, 1.0),
		def("WriteUnitStalled", MemEvent, jBig, ActDRAMWrite, 0.1),
		def("ALUStalledByLDS", CoreEvent, jBig, ActStallExec, 0.2, ActShared, 0.05),
		def("DependencyStall", CoreEvent, jMed, ActStallExec, 1.0),
	)
	for i := 0; i < 5; i++ {
		defs = append(defs, def(fmt.Sprintf("PerfCounterSel_%02d", i), CoreEvent, jBig,
			ActInstIssued, 0.002*float64(i+1)))
	}
	return defs
}

// gcnSet is wired into ForGeneration via init to keep the NVIDIA
// generations (the paper's scope) and the future-work extension separable.
func init() {
	extraGenerations[arch.GCN] = func() *Set { return newSet(arch.GCN, gcnDefs()) }
}
