// Package counters models the CUDA-profiler performance counters the paper
// uses as regression inputs (Section IV-A: 32 counters on the Tesla-based
// GTX 285, 74 on the Fermi boards, 108 on the Kepler board).
//
// The timing simulator produces a vector of base *activities* (instructions
// issued, cache hits, DRAM transactions, stall cycles, …). Each
// architecture exposes a Set of named counters; every counter is a linear
// view over the activity vector plus a small multiplicative jitter that
// models profiler nondeterminism. Counters are classified core-event or
// memory-event, the classification Eq. (1)/(2) of the paper relies on.
package counters

// Activity indexes the base activity vector produced by one simulated
// kernel run. All values are event totals over the run except the
// explicitly named averages.
type Activity int

const (
	// ActInstIssued counts warp instructions issued, including replays.
	ActInstIssued Activity = iota
	// ActInstExecuted counts warp instructions retired.
	ActInstExecuted
	// ActALU counts single-precision/integer warp instructions.
	ActALU
	// ActSFU counts transcendental warp instructions.
	ActSFU
	// ActDP counts double-precision warp instructions.
	ActDP
	// ActLSU counts global/local memory warp instructions.
	ActLSU
	// ActShared counts shared-memory warp accesses.
	ActShared
	// ActBranch counts branch warp instructions.
	ActBranch
	// ActDivergent counts divergent branch events.
	ActDivergent
	// ActGlobalLoadTxn counts global-load memory transactions.
	ActGlobalLoadTxn
	// ActGlobalStoreTxn counts global-store memory transactions.
	ActGlobalStoreTxn
	// ActL1Hit counts L1 data-cache hits (0 on Tesla).
	ActL1Hit
	// ActL1Miss counts L1 data-cache misses (0 on Tesla).
	ActL1Miss
	// ActL2Hit counts L2 hits (0 on Tesla).
	ActL2Hit
	// ActL2Miss counts L2 misses (0 on Tesla).
	ActL2Miss
	// ActDRAMRead counts DRAM read transactions.
	ActDRAMRead
	// ActDRAMWrite counts DRAM write transactions.
	ActDRAMWrite
	// ActActiveCycles counts core cycles with at least one resident warp,
	// summed over SMs.
	ActActiveCycles
	// ActElapsedCycles counts elapsed core cycles (one SM's worth).
	ActElapsedCycles
	// ActStallMem counts scheduler slots stalled waiting on memory.
	ActStallMem
	// ActStallExec counts scheduler slots stalled on execution hazards.
	ActStallExec
	// ActWarpsLaunched counts warps launched.
	ActWarpsLaunched
	// ActBlocksLaunched counts thread blocks launched.
	ActBlocksLaunched
	// ActThreadsLaunched counts threads launched.
	ActThreadsLaunched
	// ActOccupancy is the average resident-warp fraction (0..1).
	ActOccupancy

	// NumActivities is the length of the activity vector.
	NumActivities
)

// Vector is one kernel run's base activity totals.
type Vector [NumActivities]float64

// Add accumulates another vector into v (used to merge multi-kernel runs;
// the average-valued ActOccupancy entry is maximed rather than summed).
func (v *Vector) Add(o *Vector) {
	for i := range v {
		if Activity(i) == ActOccupancy {
			if o[i] > v[i] {
				v[i] = o[i]
			}
			continue
		}
		v[i] += o[i]
	}
}

// Scale multiplies every event total by k (ActOccupancy excluded).
func (v *Vector) Scale(k float64) {
	for i := range v {
		if Activity(i) == ActOccupancy {
			continue
		}
		v[i] *= k
	}
}
