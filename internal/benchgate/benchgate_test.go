package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gpuperf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReproduce 	       3	 384117464 ns/op
BenchmarkReproduce 	       3	 370223818 ns/op
BenchmarkReproduce-8 	       3	 365551101 ns/op
BenchmarkSweepBoard/workers=1         	       3	   3989277 ns/op
BenchmarkSweepBoard/workers=8-4       	       3	   5192630 ns/op	 120 B/op	       2 allocs/op
BenchmarkTable3FreqPairs 	     100	     12345 ns/op	        94.0 pairs
PASS
ok  	gpuperf	1.536s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// The -P GOMAXPROCS suffix must fold into the bare name; -count
	// repetitions append in order.
	if want := []float64{384117464, 370223818, 365551101}; len(got["BenchmarkReproduce"]) != 3 ||
		got["BenchmarkReproduce"][0] != want[0] || got["BenchmarkReproduce"][2] != want[2] {
		t.Fatalf("BenchmarkReproduce samples = %v, want %v", got["BenchmarkReproduce"], want)
	}
	// Sub-benchmark paths keep their /workers= suffix but drop -P.
	if v := got["BenchmarkSweepBoard/workers=8"]; len(v) != 1 || v[0] != 5192630 {
		t.Fatalf("workers=8 samples = %v", v)
	}
	if v := got["BenchmarkSweepBoard/workers=1"]; len(v) != 1 || v[0] != 3989277 {
		t.Fatalf("workers=1 samples = %v", v)
	}
	// Custom-metric lines parse on the ns/op field only.
	if v := got["BenchmarkTable3FreqPairs"]; len(v) != 1 || v[0] != 12345 {
		t.Fatalf("metric-bearing line samples = %v", v)
	}
}

func TestParseBenchOutputRejectsGarbage(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("BenchmarkX 3 notanumber ns/op\n")); err == nil {
		t.Fatal("bad ns/op field did not error")
	}
}

func TestGateVerdicts(t *testing.T) {
	cases := []struct {
		name     string
		samples  []float64
		baseline float64
		pass     bool
	}{
		{"fast", []float64{90, 110, 95}, 100, true},
		{"exactly at threshold", []float64{110}, 100, true},
		{"just past threshold", []float64{110.1}, 100, false},
		{"min filters noise", []float64{200, 105, 180}, 100, true},
		{"regressed", []float64{130, 125, 140}, 100, false},
	}
	for _, tc := range cases {
		r, err := Gate("B", tc.samples, tc.baseline, 0.10)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r.Pass != tc.pass {
			t.Errorf("%s: pass=%v, want %v (%s)", tc.name, r.Pass, tc.pass, r)
		}
	}
	if _, err := Gate("B", nil, 100, 0.10); err == nil {
		t.Error("empty samples did not error")
	}
	if _, err := Gate("B", []float64{1}, 0, 0.10); err == nil {
		t.Error("zero baseline did not error")
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	if err := os.WriteFile(path, []byte(`{"benchmark":"BenchmarkReproduce","after":{"ns_per_op":367018340}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ns, err := LoadBaseline(path, "BenchmarkReproduce")
	if err != nil {
		t.Fatal(err)
	}
	if ns != 367018340 {
		t.Fatalf("ns = %g", ns)
	}
	if _, err := LoadBaseline(path, "BenchmarkOther"); err == nil {
		t.Error("benchmark-name mismatch did not error")
	}
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json"), "B"); err == nil {
		t.Error("missing file did not error")
	}
}

func TestLoadBaselineRealFile(t *testing.T) {
	// The repo's checked-in baseline must stay loadable — this is the file
	// the CI gate trusts.
	ns, err := LoadBaseline("../../BENCH_baseline.json", "BenchmarkReproduce")
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatalf("baseline ns/op = %g", ns)
	}
}
