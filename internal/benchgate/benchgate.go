// Package benchgate is the CI performance-regression gate: it parses `go
// test -bench` output, compares the best observed ns/op of a named
// benchmark against a checked-in baseline (BENCH_baseline.json's "after"
// figure), and fails when the measurement regresses past a relative
// threshold. Taking the minimum over repeated counts filters scheduler
// noise the way benchstat's best-of does: a shared CI runner can only make
// a benchmark look slower, never faster, so the fastest sample is the
// closest estimate of the code's true cost.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Baseline is the subset of BENCH_baseline.json the gate reads.
type Baseline struct {
	Benchmark string `json:"benchmark"`
	After     struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"after"`
}

// LoadBaseline reads the checked-in baseline file and returns the "after"
// ns/op floor for the named benchmark.
func LoadBaseline(path, benchmark string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return 0, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.Benchmark != benchmark {
		return 0, fmt.Errorf("benchgate: %s records %q, not %q", path, b.Benchmark, benchmark)
	}
	if b.After.NsPerOp <= 0 {
		return 0, fmt.Errorf("benchgate: %s has no after.ns_per_op figure", path)
	}
	return b.After.NsPerOp, nil
}

// ParseBenchOutput extracts ns/op samples from `go test -bench` output,
// keyed by benchmark name with the -N GOMAXPROCS suffix stripped (so
// "BenchmarkReproduce-8" and "BenchmarkReproduce" collect under one key;
// sub-benchmark paths like "BenchmarkSweepBoard/workers=4" are preserved).
// Repeated -count runs append in order. Lines that are not benchmark
// results (headers, PASS, metrics) are ignored.
func ParseBenchOutput(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX[-P] <iters> <ns> ns/op [...]"
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = append(out[name], ns)
	}
	return out, sc.Err()
}

// Result is the gate's verdict for one benchmark, written as the CI
// artifact so a regression's numbers survive the failed job.
type Result struct {
	Benchmark       string    `json:"benchmark"`
	BaselineNsPerOp float64   `json:"baseline_ns_per_op"`
	BestNsPerOp     float64   `json:"best_ns_per_op"`
	Samples         []float64 `json:"samples_ns_per_op"`
	Ratio           float64   `json:"ratio_vs_baseline"`
	Threshold       float64   `json:"threshold"`
	Pass            bool      `json:"pass"`
}

// Gate compares the best (minimum) of the observed samples against the
// baseline: the gate passes while best <= baseline × (1 + threshold).
func Gate(benchmark string, samples []float64, baseline, threshold float64) (Result, error) {
	if len(samples) == 0 {
		return Result{}, fmt.Errorf("benchgate: no samples for %s", benchmark)
	}
	if baseline <= 0 {
		return Result{}, fmt.Errorf("benchgate: non-positive baseline %g", baseline)
	}
	best := samples[0]
	for _, s := range samples[1:] {
		if s < best {
			best = s
		}
	}
	return Result{
		Benchmark:       benchmark,
		BaselineNsPerOp: baseline,
		BestNsPerOp:     best,
		Samples:         samples,
		Ratio:           best / baseline,
		Threshold:       threshold,
		Pass:            best <= baseline*(1+threshold),
	}, nil
}

// String renders the verdict as the gate's one-line log message.
func (r Result) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %s best %.0f ns/op vs baseline %.0f ns/op (%.2fx, threshold %.2fx)",
		verdict, r.Benchmark, r.BestNsPerOp, r.BaselineNsPerOp, r.Ratio, 1+r.Threshold)
}
