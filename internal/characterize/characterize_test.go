package characterize

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

func sweepOne(t *testing.T, board, bench string) *BenchResult {
	t.Helper()
	dev, err := driver.OpenBoard(board)
	if err != nil {
		t.Fatal(err)
	}
	dev.Seed(42)
	b := workloads.ByName(bench)
	if b == nil {
		t.Fatalf("unknown benchmark %q", bench)
	}
	r, err := SweepBenchmark(dev, b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSweepCoversAllValidPairs(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		r := sweepOne(t, spec.Name, "sgemm")
		if len(r.Pairs) != len(clock.ValidPairs(spec)) {
			t.Errorf("%s: swept %d pairs, want %d", spec.Name, len(r.Pairs), len(clock.ValidPairs(spec)))
		}
		if r.Pairs[0].Pair != clock.DefaultPair() {
			t.Errorf("%s: first pair %s, want (H-H)", spec.Name, r.Pairs[0].Pair)
		}
		for _, pr := range r.Pairs {
			if pr.TimePerIter <= 0 || pr.AvgWatts <= 0 || pr.EnergyPerIter <= 0 {
				t.Errorf("%s %s: non-positive measurement %+v", spec.Name, pr.Pair, pr)
			}
		}
	}
}

func TestSweepLeavesDeviceAtDefault(t *testing.T) {
	dev, err := driver.OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepBenchmark(dev, workloads.ByName("hotspot")); err != nil {
		t.Fatal(err)
	}
	if dev.Clocks() != clock.DefaultPair() {
		t.Errorf("device left at %s, want (H-H)", dev.Clocks())
	}
}

func TestBestNeverWorseThanDefault(t *testing.T) {
	for _, bench := range []string{"backprop", "streamcluster", "gaussian", "sgemm", "lbm"} {
		for _, spec := range arch.AllBoards() {
			r := sweepOne(t, spec.Name, bench)
			if r.ImprovementPct() < 0 {
				t.Errorf("%s %s: best pair worse than default (%.2f%%)", spec.Name, bench, r.ImprovementPct())
			}
		}
	}
}

func TestFig1BackpropShape(t *testing.T) {
	// Fig. 1: Backprop is compute-intensive on every generation —
	// performance grows with the core clock and is flat across memory
	// clocks; the best pair always uses a reduced memory clock.
	for _, spec := range arch.AllBoards() {
		r := sweepOne(t, spec.Name, "backprop")
		curves := Curves(r, spec)
		for _, c := range curves {
			for i := 1; i < len(c.Points); i++ {
				if c.Points[i].Perf < c.Points[i-1].Perf-1e-9 {
					t.Errorf("%s mem-%s: performance not monotone in core clock", spec.Name, c.MemLevel)
				}
			}
		}
		if best := r.Best(); best.Pair.Mem == arch.FreqHigh {
			t.Errorf("%s: backprop best pair %s keeps Mem-H; the paper finds reduced memory clocks win", spec.Name, best.Pair)
		}
	}
}

func TestFig2StreamclusterShape(t *testing.T) {
	// Fig. 2: Streamcluster is memory-intensive — at Mem-H performance
	// improves with core clock, but dropping the memory clock one level
	// costs a large slice of performance.
	for _, spec := range arch.AllBoards() {
		r := sweepOne(t, spec.Name, "streamcluster")
		hh := r.ByPair(clock.DefaultPair())
		hm := r.ByPair(clock.Pair{Core: arch.FreqHigh, Mem: arch.FreqMid})
		if hh == nil || hm == nil {
			t.Fatalf("%s: missing pairs", spec.Name)
		}
		if hm.TimePerIter < hh.TimePerIter*1.5 {
			t.Errorf("%s: Mem-M only %.2f× slower; streamcluster should be memory-bound",
				spec.Name, hm.TimePerIter/hh.TimePerIter)
		}
		if best := r.Best(); best.Pair.Mem != arch.FreqHigh {
			t.Errorf("%s: streamcluster best %s lowers the memory clock; paper keeps Mem-H", spec.Name, best.Pair)
		}
	}
}

func TestFig4GenerationOrdering(t *testing.T) {
	// Fig. 4's headline: mean best-over-default improvement grows across
	// generations — ~0.8% (GTX 285), ~12% (Fermi), ~24% (GTX 680) —
	// and on the GTX 680 every benchmark prefers a non-default pair.
	all, err := Table4(42)
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for name, res := range all {
		means[name] = MeanImprovementPct(res)
	}
	if !(means["GTX 285"] < means["GTX 460"] && means["GTX 460"] <= means["GTX 480"] && means["GTX 480"] < means["GTX 680"]) {
		t.Errorf("improvement ordering violated: %v", means)
	}
	if means["GTX 285"] > 4 {
		t.Errorf("GTX 285 mean improvement %.1f%% too large; paper reports ~0.8%%", means["GTX 285"])
	}
	if means["GTX 680"] < 15 {
		t.Errorf("GTX 680 mean improvement %.1f%% too small; paper reports ~24%%", means["GTX 680"])
	}
	var nonDefault int
	for _, r := range all["GTX 680"] {
		if r.Best().Pair != clock.DefaultPair() {
			nonDefault++
		}
	}
	if nonDefault != len(all["GTX 680"]) {
		t.Errorf("GTX 680: only %d/%d benchmarks prefer a non-default pair; paper reports all",
			nonDefault, len(all["GTX 680"]))
	}
}

func TestTable4DiversityGrowsWithGeneration(t *testing.T) {
	all, err := Table4(42)
	if err != nil {
		t.Fatal(err)
	}
	nonDefault := func(rs []*BenchResult) int {
		n := 0
		for _, r := range rs {
			if r.Best().Pair != clock.DefaultPair() {
				n++
			}
		}
		return n
	}
	if nonDefault(all["GTX 285"]) >= nonDefault(all["GTX 680"]) {
		t.Errorf("best-pair diversity should grow from Tesla (%d) to Kepler (%d)",
			nonDefault(all["GTX 285"]), nonDefault(all["GTX 680"]))
	}
}

func TestKeplerBackpropHeadline(t *testing.T) {
	// The abstract's headline: Kepler achieves by far the deepest energy
	// saving on backprop via a reduced-clock pair, at a tangible
	// performance cost (paper: (M-L), ~30% slower).
	r := sweepOne(t, "GTX 680", "backprop")
	best := r.Best()
	if best.Pair.Core != arch.FreqMid {
		t.Errorf("GTX 680 backprop best %s, want Core-M as in the paper", best.Pair)
	}
	if imp := r.ImprovementPct(); imp < 35 {
		t.Errorf("GTX 680 backprop improvement %.1f%%, want the deep Kepler saving (≥ 35%%)", imp)
	}
	if loss := r.PerfLossPct(); loss < 10 || loss > 40 {
		t.Errorf("GTX 680 backprop perf loss %.1f%%, want ~30%% as in the paper", loss)
	}
	r285 := sweepOne(t, "GTX 285", "backprop")
	if r285.ImprovementPct() >= r.ImprovementPct()/2 {
		t.Errorf("GTX 285 backprop improvement %.1f%% not well below Kepler's %.1f%%",
			r285.ImprovementPct(), r.ImprovementPct())
	}
}

func TestCurvesNormalizedAtDefault(t *testing.T) {
	spec := arch.GTX480()
	r := sweepOne(t, spec.Name, "gaussian")
	curves := Curves(r, spec)
	if len(curves) == 0 {
		t.Fatal("no curves")
	}
	for _, c := range curves {
		if c.MemLevel == arch.FreqHigh {
			last := c.Points[len(c.Points)-1]
			if last.CoreMHz != spec.CoreFreqMHz(arch.FreqHigh) {
				t.Errorf("Mem-H line does not end at Core-H")
			}
			if d := last.Perf - 1; d > 1e-9 || d < -1e-9 {
				t.Errorf("normalized perf at (H-H) = %g, want 1", last.Perf)
			}
			if d := last.Efficiency - 1; d > 1e-9 || d < -1e-9 {
				t.Errorf("normalized efficiency at (H-H) = %g, want 1", last.Efficiency)
			}
		}
	}
}

func TestSweepDeterministicWithSeed(t *testing.T) {
	a, err := SweepBoard("GTX 460", []*workloads.Benchmark{workloads.ByName("lud")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepBoard("GTX 460", []*workloads.Benchmark{workloads.ByName("lud")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Pairs {
		if a[0].Pairs[i] != b[0].Pairs[i] {
			t.Fatalf("sweep not deterministic at pair %d", i)
		}
	}
}

func TestCurvesRespectSparsePairTables(t *testing.T) {
	// GTX 460 exposes (L-L) but not (L-M)/(L-H): the Mem-L curve gets the
	// Core-L point, the other memory levels only span Core-M..H.
	spec := arch.GTX460()
	r := sweepOne(t, spec.Name, "lud")
	for _, c := range Curves(r, spec) {
		switch c.MemLevel {
		case arch.FreqLow:
			if len(c.Points) != 3 {
				t.Errorf("Mem-L line has %d points, want 3 (L, M, H cores)", len(c.Points))
			}
		default:
			if len(c.Points) != 2 {
				t.Errorf("Mem-%s line has %d points, want 2 (M, H cores)", c.MemLevel, len(c.Points))
			}
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].CoreMHz <= c.Points[i-1].CoreMHz {
				t.Errorf("Mem-%s points not ascending in core MHz", c.MemLevel)
			}
		}
	}
}

func TestPerfLossNonNegativeAcrossTable4(t *testing.T) {
	// Performance at the best-energy pair can never beat (H-H): the
	// quoted loss is always ≥ 0.
	all, err := Table4(42)
	if err != nil {
		t.Fatal(err)
	}
	for board, rs := range all {
		for _, r := range rs {
			if r.PerfLossPct() < -1e-9 {
				t.Errorf("%s %s: negative perf loss %.3f%%", board, r.Benchmark, r.PerfLossPct())
			}
		}
	}
}
