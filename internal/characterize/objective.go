package characterize

import "fmt"

// Objective selects what a frequency-pair search minimizes. The paper's
// Section III minimizes energy (maximizes "power efficiency"); real
// governors often trade performance explicitly via energy-delay products,
// so the library exposes those too (an optimization-extension knob).
type Objective int

const (
	// MinEnergy minimizes energy per iteration (the paper's objective).
	MinEnergy Objective = iota
	// MinEDP minimizes energy × delay.
	MinEDP
	// MinED2P minimizes energy × delay² (performance-leaning).
	MinED2P
	// MinTime maximizes performance regardless of energy.
	MinTime
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "energy"
	case MinEDP:
		return "EDP"
	case MinED2P:
		return "ED2P"
	case MinTime:
		return "time"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// CostOf evaluates the objective over an (energy, delay) pair; lower is
// better. Works on measured or predicted values.
func (o Objective) CostOf(energy, delay float64) float64 {
	switch o {
	case MinEnergy:
		return energy
	case MinEDP:
		return energy * delay
	case MinED2P:
		return energy * delay * delay
	case MinTime:
		return delay
	default:
		return energy
	}
}

// Cost evaluates the objective for one measured pair; lower is better.
func (o Objective) Cost(p *PairResult) float64 {
	return o.CostOf(p.EnergyPerIter, p.TimePerIter)
}

// BestBy returns the pair minimizing the objective; ties resolve to the
// earlier Table III row (the default pair first).
func (r *BenchResult) BestBy(o Objective) *PairResult {
	if len(r.Pairs) == 0 {
		return nil
	}
	best := &r.Pairs[0]
	for i := range r.Pairs {
		if o.Cost(&r.Pairs[i]) < o.Cost(best) {
			best = &r.Pairs[i]
		}
	}
	return best
}
