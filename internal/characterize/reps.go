package characterize

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

// Repetition cohorts: a campaign that claims a cell is VALID must be able
// to show the same measurement N times, not once. SweepReps runs the
// unified sweep engine N times with per-repetition seeds and fault
// scopes, so each repetition draws independent noise and fault streams
// while repetition 0 stays bit-identical to a single-run campaign — all
// single-run goldens, journals and trace artifacts are unchanged.

// RepSeed derives repetition r's campaign seed: the base seed for
// repetition 0 (the campaign itself), seed ⊕ FNV-1a("rep|r") for later
// repetitions — the same independent-stream scheme sweepSeed uses per
// benchmark.
func RepSeed(seed int64, rep int) int64 {
	if rep == 0 {
		return seed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "rep|%d", rep) // fnv: hash.Hash.Write never errors
	return seed ^ int64(h.Sum64())
}

// SweepReps runs the sweep reps times and returns one result map per
// repetition, in repetition order. The options seed is the base campaign
// seed; each repetition sweeps under RepSeed(seed, r) with Rep set, so
// journal keys, fault scopes and obs tracks stay distinct across
// repetitions. reps < 1 behaves as 1. Like Sweep, the result is a pure
// function of the seed — identical at any worker count.
func SweepReps(ctx context.Context, boardNames []string, benches []*workloads.Benchmark, opts SweepOptions, reps int) ([]map[string][]*BenchResult, error) {
	if reps < 1 {
		reps = 1
	}
	base := opts.Seed
	out := make([]map[string][]*BenchResult, 0, reps)
	for r := 0; r < reps; r++ {
		o := opts
		o.Seed = RepSeed(base, r)
		o.Rep = r
		m, err := Sweep(ctx, boardNames, benches, o)
		if err != nil {
			return nil, fmt.Errorf("characterize: repetition %d: %w", r, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// ObserveTriage feeds one repetition's sweep results into the triage
// engine under the named provenance table. Every cell must already carry
// a run verdict (all sweep paths classify at construction); a cell
// without one is an error, not a silent VALID.
func ObserveTriage(tr *validity.Triage, table string, rep int, results map[string][]*BenchResult) error {
	boards := make([]string, 0, len(results))
	for board := range results {
		boards = append(boards, board)
	}
	sort.Strings(boards)
	for _, board := range boards {
		for _, br := range results[board] {
			for i := range br.Pairs {
				pr := &br.Pairs[i]
				run := validity.Run{
					Rep:        rep,
					Verdict:    pr.Verdict,
					Time:       pr.TimePerIter,
					Watts:      pr.AvgWatts,
					Energy:     pr.EnergyPerIter,
					Retries:    pr.Retries,
					Confidence: pr.Confidence,
				}
				if err := tr.Observe(table, board, br.Benchmark, pr.Pair.String(), run); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ObserveTriageReps feeds a whole repetition cohort (the SweepReps
// result) into the triage engine.
func ObserveTriageReps(tr *validity.Triage, table string, reps []map[string][]*BenchResult) error {
	for r, m := range reps {
		if err := ObserveTriage(tr, table, r, m); err != nil {
			return err
		}
	}
	return nil
}
