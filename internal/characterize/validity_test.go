package characterize

import (
	"context"
	"strings"
	"testing"

	"gpuperf/internal/validity"
)

// triageFor builds a triage engine matching a test sweep's shape.
func triageFor(seed int64, profile string, reps, minValid int) *validity.Triage {
	cohort := validity.Cohort{Seed: seed, Boards: []string{"GTX 460"}, Profile: profile, CodeVersion: "test"}
	return validity.NewTriage(cohort, reps, minValid, 0)
}

// TestTriageRepetitionsAgreeFaultFree: a fault-free N=3 repetition cohort
// must classify every cell VALID — the per-repetition measurement noise
// stays inside the agreement tolerance. This is the empirical anchor for
// validity.DefaultTolerance: if the noise model ever outgrows it, this
// test is the tripwire.
func TestTriageRepetitionsAgreeFaultFree(t *testing.T) {
	benches := benchSubset(t)
	const seed, reps = 42, 3
	repsRes, err := SweepReps(context.Background(), []string{"GTX 460"}, benches,
		SweepOptions{Seed: seed, Workers: 2}, reps)
	if err != nil {
		t.Fatal(err)
	}
	if len(repsRes) != reps {
		t.Fatalf("got %d repetitions, want %d", len(repsRes), reps)
	}

	// Repetition 0 is the campaign itself: bit-identical to a single run.
	single, err := Sweep(context.Background(), []string{"GTX 460"}, benches, SweepOptions{Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurements(t, single["GTX 460"], repsRes[0]["GTX 460"])

	// Later repetitions draw fresh meter noise: at least one cell must
	// differ from repetition 0, or the repetitions are vacuous replicas.
	// (Simulated kernel time is deterministic; the noise is in the power
	// measurement.)
	differ := false
	for i, r0 := range repsRes[0]["GTX 460"] {
		r1 := repsRes[1]["GTX 460"][i]
		for pi := range r0.Pairs {
			if r0.Pairs[pi].AvgWatts != r1.Pairs[pi].AvgWatts {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("repetition 1 is bit-identical to repetition 0: repetition seeds are not independent")
	}

	tr := triageFor(seed, "", reps, reps)
	if err := ObserveTriageReps(tr, "table4", repsRes); err != nil {
		t.Fatal(err)
	}
	report := tr.Finalize()
	if n := len(report.Cells); n == 0 {
		t.Fatal("triage saw no cells")
	}
	if !report.Publishable() {
		for _, c := range report.Cells {
			if c.Class != validity.Valid {
				t.Errorf("fault-free cell %s/%s@%s: %s (%s), spread %.4f",
					c.Board, c.Bench, c.Pair, c.Class, c.Reason, c.Spread)
			}
		}
	}
}

// TestTriageExhaustedRetriesIsInfraFlake: a pair that exhausts its retry
// budget under launch.hang watchdog kills is an INFRA_FLAKE whose reason
// carries the fault point and the attempt count.
func TestTriageExhaustedRetriesIsInfraFlake(t *testing.T) {
	benches := benchSubset(t)[:1]
	const seed = 42
	prof := "launch.hang:1"
	res := chaosRes(t, prof, seed)
	res.MaxRetries = 2
	got, err := SweepBoardR("GTX 460", benches, SweepOptions{Seed: seed, Workers: 1, Res: res})
	if err != nil {
		t.Fatal(err)
	}
	if q := got[0].QuarantinedCells(); q != len(got[0].Pairs) {
		t.Fatalf("%d of %d cells quarantined under a certain hang", q, len(got[0].Pairs))
	}

	tr := triageFor(seed, prof, 1, 1)
	if err := ObserveTriage(tr, "table4", 0, map[string][]*BenchResult{"GTX 460": got}); err != nil {
		t.Fatal(err)
	}
	v, ok := tr.CellVerdict("table4", "GTX 460", got[0].Benchmark, got[0].Pairs[0].Pair.String())
	if !ok || v.Class != validity.InfraFlake {
		t.Fatalf("verdict %+v (ok=%v), want INFRA_FLAKE", v, ok)
	}
	for _, want := range []string{"launch.hang", "after 3 attempts"} {
		if !strings.Contains(v.Reason, want) {
			t.Errorf("reason %q missing %q", v.Reason, want)
		}
	}
	// The bench-level verdict (Table IV renders per bench) inherits it.
	bv, ok := tr.BenchVerdict("table4", "GTX 460", got[0].Benchmark)
	if !ok || bv.Class != validity.InfraFlake {
		t.Errorf("bench verdict %+v (ok=%v), want INFRA_FLAKE", bv, ok)
	}
}

// TestTriageLowConfidenceIsDistinctFlake: a meter stuck for nearly the
// whole window yields an accepted-but-reconstructed measurement whose
// confidence falls below the floor — an INFRA_FLAKE with the distinct
// low-confidence reason, not the exhausted-retries one.
func TestTriageLowConfidenceIsDistinctFlake(t *testing.T) {
	benches := benchSubset(t)[:1]
	const seed = 42
	prof := "meter.stuck:1:1000"
	res := chaosRes(t, prof, seed)
	res.MaxRetries = 1
	got, err := SweepBoardR("GTX 460", benches, SweepOptions{Seed: seed, Workers: 1, Res: res})
	if err != nil {
		t.Fatal(err)
	}
	// The stuck run starts at a random sample, so per-pair damage varies;
	// pick the worst-hit cell, which must fall below the confidence floor.
	var pr *PairResult
	for i := range got[0].Pairs {
		c := &got[0].Pairs[i]
		if c.Quarantined {
			t.Fatal("stuck-meter cell was quarantined; the fault should degrade, not kill")
		}
		if pr == nil || c.Confidence < pr.Confidence {
			pr = c
		}
	}
	if pr.Confidence >= validity.DefaultMinConfidence {
		t.Fatalf("confidence %.3f did not fall below the %.2f floor; fault profile too weak for the test",
			pr.Confidence, validity.DefaultMinConfidence)
	}
	if pr.Verdict.Class != validity.InfraFlake {
		t.Fatalf("verdict %+v, want INFRA_FLAKE", pr.Verdict)
	}
	for _, want := range []string{"meter confidence", "interpolated"} {
		if !strings.Contains(pr.Verdict.Reason, want) {
			t.Errorf("reason %q missing %q", pr.Verdict.Reason, want)
		}
	}
	if strings.Contains(pr.Verdict.Reason, "retry budget") {
		t.Errorf("low-confidence reason %q collides with the exhausted-retries reason", pr.Verdict.Reason)
	}
}
