package characterize

import (
	"context"
	"sync"

	"gpuperf/internal/workloads"
)

// The row-stream layer turns the sweep engine inside out: instead of
// materializing every result and handing the caller a map, the engine
// emits each resolved cell (a Row) and each completed (board, benchmark)
// job (a BenchResult) into a RowSink as soon as it exists. A consumer
// that only needs aggregates — the fleet orchestrator folding population
// statistics over ten thousand devices — holds O(aggregate) memory
// instead of O(cells). Sweep itself is now one fold over this stream
// (collect every BenchResult into the classic map), so the materializing
// path and the streaming path cannot drift apart.

// Row is one resolved sweep cell as a stream element: the cell's
// measurement plus enough identity (board, benchmark, repetition) to
// fold it without any surrounding map. Replayed marks cells restored
// from a checkpoint journal rather than measured.
type Row struct {
	Board    string
	Bench    string
	Rep      int
	Replayed bool
	Result   PairResult
}

// RowSink consumes a sweep as a stream. Both methods are called from
// every sweep worker, so implementations must be safe for concurrent
// use. The stream is unordered across jobs — cells of different
// (board, benchmark) jobs interleave arbitrarily — but within one job
// ConsumeRow is called in Table III pair order and ConsumeBench last.
// Byte-identity therefore requires folds that are associative and
// commutative across jobs (see internal/fleet for the canonical
// integer-fold aggregator).
//
// ConsumeBench transfers ownership: after the call the engine neither
// retains nor mutates the BenchResult, and the sink may keep it.
type RowSink interface {
	ConsumeRow(Row)
	ConsumeBench(*BenchResult)
}

// SinkFuncs adapts plain functions to a RowSink; nil fields are no-ops.
type SinkFuncs struct {
	Row   func(Row)
	Bench func(*BenchResult)
}

// ConsumeRow implements RowSink.
func (s SinkFuncs) ConsumeRow(r Row) {
	if s.Row != nil {
		s.Row(r)
	}
}

// ConsumeBench implements RowSink.
func (s SinkFuncs) ConsumeBench(b *BenchResult) {
	if s.Bench != nil {
		s.Bench(b)
	}
}

// SweepStream is the streaming form of Sweep: identical engine, identical
// cells, but results are emitted into opts.Sink instead of being
// materialized — the sweep itself holds one in-flight BenchResult per
// worker regardless of how many jobs it runs. Everything documented on
// Sweep (determinism at any worker count, cell-boundary cancellation,
// journal replay) holds unchanged; Sweep is this function plus a
// collecting fold.
func SweepStream(ctx context.Context, boardNames []string, benches []*workloads.Benchmark, opts SweepOptions) error {
	nb := len(benches)
	jobs := len(boardNames) * nb
	if jobs == 0 {
		return nil
	}
	prepareSweepObs(&opts, jobs)
	return streamPool(ctx, func(idx int) error {
		r, err := sweepBenchR(ctx, boardNames[idx/nb], benches[idx%nb], opts)
		if err != nil {
			return err
		}
		if opts.Sink != nil {
			opts.Sink.ConsumeBench(r)
		}
		return nil
	}, opts.Workers, jobs)
}

// streamPool runs `jobs` through a bounded worker pool and reports only
// the lowest-index error — results leave through the sink, never through
// the pool. Both channels are buffered to the job count so every
// goroutine can always complete (the leak-proofing audit of
// core.collect); cancellation is checked before each job, so remaining
// jobs fail with the wrapped cause while in-flight ones run to
// completion.
func streamPool(ctx context.Context, run func(int) error, workers, jobs int) error {
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}
	type done struct {
		idx int
		err error
	}
	queue := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		queue <- i
	}
	close(queue)
	results := make(chan done, jobs)
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range queue {
				if ctx.Err() != nil {
					results <- done{idx: idx, err: cancelled(ctx)}
					continue
				}
				results <- done{idx: idx, err: run(idx)}
			}
		}()
	}
	var firstErr error
	firstIdx := jobs
	for i := 0; i < jobs; i++ {
		d := <-results
		if d.err != nil && d.idx < firstIdx {
			firstErr, firstIdx = d.err, d.idx
		}
	}
	return firstErr
}

// resultFold is the collecting RowSink behind Sweep: it places every
// completed BenchResult into its precomputed [board][benchmark] slot and
// chains to the caller's sink so attaching one never changes what Sweep
// returns. Duplicate board names get a queue of slots; results for the
// same (board, benchmark) are byte-identical by the determinism
// contract, so which duplicate lands where is unobservable.
type resultFold struct {
	mu    sync.Mutex
	slots map[string][]int
	flat  []*BenchResult
	next  RowSink
}

func newResultFold(boardNames []string, benches []*workloads.Benchmark, next RowSink) *resultFold {
	nb := len(benches)
	f := &resultFold{
		slots: make(map[string][]int, len(boardNames)*nb),
		flat:  make([]*BenchResult, len(boardNames)*nb),
		next:  next,
	}
	for bi, board := range boardNames {
		for bj, b := range benches {
			k := board + "\x00" + b.Name
			f.slots[k] = append(f.slots[k], bi*nb+bj)
		}
	}
	return f
}

func (f *resultFold) ConsumeRow(r Row) {
	if f.next != nil {
		f.next.ConsumeRow(r)
	}
}

func (f *resultFold) ConsumeBench(b *BenchResult) {
	k := b.Board + "\x00" + b.Benchmark
	f.mu.Lock()
	if q := f.slots[k]; len(q) > 0 {
		f.flat[q[0]] = b
		f.slots[k] = q[1:]
	}
	f.mu.Unlock()
	if f.next != nil {
		f.next.ConsumeBench(b)
	}
}

// results reshapes the flat slice into the classic [board][benchmark]
// map, sharing the backing array exactly like the pre-stream engine.
func (f *resultFold) results(boardNames []string, nb int) map[string][]*BenchResult {
	out := make(map[string][]*BenchResult, len(boardNames))
	for bi, name := range boardNames {
		out[name] = f.flat[bi*nb : (bi+1)*nb]
	}
	return out
}
