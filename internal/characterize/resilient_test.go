package characterize

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpuperf/internal/clock"
	"gpuperf/internal/fault"
	"gpuperf/internal/workloads"
)

func profile(t *testing.T, spec string) *fault.Profile {
	t.Helper()
	p, err := fault.ParseProfile(spec)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", spec, err)
	}
	return p
}

// chaosRes returns a retry policy over an all-transient fault profile with
// enough budget that every cell eventually lands a clean attempt.
func chaosRes(t *testing.T, spec string, seed int64) *fault.Resilience {
	t.Helper()
	return &fault.Resilience{
		Campaign:      &fault.Campaign{Profile: profile(t, spec), Seed: seed},
		MaxRetries:    10,
		LaunchTimeout: 30 * time.Millisecond,
		BackoffBase:   time.Microsecond,
		BackoffMax:    10 * time.Microsecond,
		Sleep:         func(time.Duration) {},
	}
}

func benchSubset(t *testing.T) []*workloads.Benchmark {
	t.Helper()
	all := workloads.Table4()
	if len(all) < 2 {
		t.Fatal("need at least two benchmarks")
	}
	return all[:2]
}

// sameMeasurements asserts the measured values of two sweeps agree cell by
// cell (retry counts may differ; the physics must not).
func sameMeasurements(t *testing.T, want, got []*BenchResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d vs %d bench results", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Benchmark != g.Benchmark || w.Board != g.Board || len(w.Pairs) != len(g.Pairs) {
			t.Fatalf("result shape mismatch: %s/%s vs %s/%s", w.Board, w.Benchmark, g.Board, g.Benchmark)
		}
		for j := range w.Pairs {
			wp, gp := w.Pairs[j], g.Pairs[j]
			if wp.Pair != gp.Pair || wp.Quarantined != gp.Quarantined ||
				wp.TimePerIter != gp.TimePerIter || wp.AvgWatts != gp.AvgWatts ||
				wp.EnergyPerIter != gp.EnergyPerIter {
				t.Errorf("%s/%s @ %s: cell diverged:\nwant %+v\ngot  %+v",
					w.Board, w.Benchmark, wp.Pair, wp, gp)
			}
		}
	}
}

// TestResilientSweepRecoversByteIdentical: under an all-transient profile
// with a sufficient retry budget, the resilient sweep measures exactly
// what the plain sweep measures.
func TestResilientSweepRecoversByteIdentical(t *testing.T) {
	benches := benchSubset(t)
	const board = "GTX 480"
	plain, err := SweepBoard(board, benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	res := chaosRes(t, "launch.hang:0.05,clockset.fail:0.05,boot.fail:0.2,meter.drop:0.01,bios.bitflip:0.03", 7)
	got, err := SweepBoardR(board, benches, SweepOptions{Seed: 42, Workers: 2, Res: res})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurements(t, plain, got)
	retried := 0
	for _, r := range got {
		for _, pr := range r.Pairs {
			retried += pr.Retries
		}
	}
	if retried == 0 {
		t.Error("chaos profile triggered no retries — the harness was not exercised")
	}
	if len(Degradations(map[string][]*BenchResult{board: got})) != 0 {
		t.Error("fully recovered campaign reported degradations")
	}
}

// TestResilientSweepZeroProbabilityIdentical: a profile of all-zero
// probabilities routes through the harness yet changes nothing.
func TestResilientSweepZeroProbabilityIdentical(t *testing.T) {
	benches := benchSubset(t)
	const board = "GTX 285"
	plain, err := SweepBoard(board, benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	res := chaosRes(t, "launch.hang:0,meter.drop:0,boot.fail:0", 7)
	got, err := SweepBoardR(board, benches, SweepOptions{Seed: 42, Workers: 1, Res: res})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurements(t, plain, got)
}

// TestPermanentFaultQuarantines: probability-1 clock-set failure exhausts
// every retry budget; cells are quarantined, Best is nil, and the
// degradation summary says where.
func TestPermanentFaultQuarantines(t *testing.T) {
	benches := benchSubset(t)[:1]
	res := chaosRes(t, "clockset.fail:1", 3)
	res.MaxRetries = 2
	got, err := SweepBoardR("GTX 680", benches, SweepOptions{Seed: 42, Workers: 1, Res: res})
	if err != nil {
		t.Fatal(err)
	}
	r := got[0]
	if q := r.QuarantinedCells(); q != len(r.Pairs) {
		t.Fatalf("%d of %d cells quarantined under a permanent fault", q, len(r.Pairs))
	}
	if r.Best() != nil || r.Default() != nil {
		t.Error("quarantined sweep still reports best/default pairs")
	}
	if r.ImprovementPct() != 0 {
		t.Error("quarantined sweep reports a nonzero improvement")
	}
	if Curves(r, nil) != nil {
		t.Error("quarantined sweep yields curves")
	}
	degs := Degradations(map[string][]*BenchResult{"GTX 680": got})
	if len(degs) != len(r.Pairs) {
		t.Fatalf("%d degradation lines, want %d", len(degs), len(r.Pairs))
	}
	for _, d := range degs {
		if d.Board != "GTX 680" || d.Bench != r.Benchmark {
			t.Errorf("degradation misattributed: %+v", d)
		}
	}
	// Permanent boot failure quarantines the same way.
	bres := chaosRes(t, "boot.fail:1", 3)
	bres.MaxRetries = 1
	bgot, err := SweepBoardR("GTX 680", benches, SweepOptions{Seed: 42, Workers: 1, Res: bres})
	if err != nil {
		t.Fatal(err)
	}
	if q := bgot[0].QuarantinedCells(); q != len(bgot[0].Pairs) {
		t.Errorf("boot-dead board: %d of %d cells quarantined", q, len(bgot[0].Pairs))
	}
}

// TestJournalCheckpointAndResume: kill a campaign mid-way (simulated by
// truncating its journal), resume, and get the identical final result with
// the surviving cells answered from the checkpoint.
func TestJournalCheckpointAndResume(t *testing.T) {
	benches := benchSubset(t)
	const board = "GTX 460"
	const seed = 42
	prof := "launch.hang:0.05,meter.drop:0.01"
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")

	run := func() ([]*BenchResult, *Journal) {
		j, err := OpenJournal(path, seed, prof)
		if err != nil {
			t.Fatal(err)
		}
		res := chaosRes(t, prof, 9)
		got, err := SweepBoardR(board, benches, SweepOptions{Seed: seed, Workers: 1, Res: res, Journal: j})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return got, j
	}
	first, j1 := run()
	if j1.Hits() != 0 {
		t.Errorf("fresh journal answered %d cells", j1.Hits())
	}

	// Simulate a crash: chop the journal to half its lines plus a torn
	// trailing fragment.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	cut := 0
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 6 {
				cut = i + 1
				break
			}
		}
	}
	if cut == 0 {
		t.Fatalf("journal has only %d lines", lines)
	}
	torn := append(append([]byte(nil), data[:cut]...), []byte(`{"kind":"cell","boa`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, j2 := run()
	if j2.Hits() == 0 {
		t.Error("resumed run replayed no cells from the checkpoint")
	}
	sameMeasurements(t, first, resumed)

	// A journal recorded under a different seed or profile is a hard
	// error — resuming it would silently change the published results —
	// and the journal survives on disk, byte for byte.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenJournal(path, seed+1, prof)
	var mismatch *CohortMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("seed-mismatched open: err=%v, want *CohortMismatchError", err)
	}
	if mismatch.Old.Seed != seed || mismatch.New.Seed != seed+1 {
		t.Errorf("mismatch error carries seeds %d/%d, want %d/%d",
			mismatch.Old.Seed, mismatch.New.Seed, seed, seed+1)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("cohort-mismatched open modified the journal")
	}
}

// TestJournalRoundTripsCells: a recorded cell (including a quarantined
// one) survives the JSON round trip exactly.
func TestJournalRoundTripsCells(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	j, err := OpenJournal(path, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	p, err := clock.ParsePair("(H-L)")
	if err != nil {
		t.Fatal(err)
	}
	cell := PairResult{Pair: p, TimePerIter: 0.123456789123456789, AvgWatts: 321.0000000001,
		EnergyPerIter: 39.6e-3, Retries: 2, Confidence: 0.975, Interpolated: 1}
	cell.Verdict = cell.Classify()
	quar := PairResult{Pair: clock.DefaultPair(), Quarantined: true, FailPoint: fault.LaunchHang, Retries: 3}
	quar.Verdict = quar.Classify()
	rep1 := cell
	rep1.TimePerIter = 0.2
	if err := j.Record("B", "bench", 0, cell); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("B", "bench", 0, quar); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("B", "bench", 1, rep1); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok := j2.Lookup("B", "bench", 0, p)
	if !ok || got != cell {
		t.Errorf("cell round trip: %+v -> %+v (ok=%v)", cell, got, ok)
	}
	gq, ok := j2.Lookup("B", "bench", 0, clock.DefaultPair())
	if !ok || gq != quar {
		t.Errorf("quarantined round trip: %+v -> %+v (ok=%v)", quar, gq, ok)
	}
	gr, ok := j2.Lookup("B", "bench", 1, p)
	if !ok || gr != rep1 {
		t.Errorf("rep-1 round trip: %+v -> %+v (ok=%v)", rep1, gr, ok)
	}
	if _, ok := j2.Lookup("B", "other", 0, p); ok {
		t.Error("journal answered a cell it never recorded")
	}
	if _, ok := j2.Lookup("B", "bench", 2, p); ok {
		t.Error("journal answered a repetition it never recorded")
	}
}
