package characterize

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

// cancelAfter is a context whose Err turns — and stays — non-nil after
// the n-th boundary check: a deterministic mid-campaign cancel for the
// virtual-clock engine, where wall-clock cancellation would be a race.
// context.Cause falls back to Err for custom contexts, so the engine's
// wrapped cause is context.Canceled exactly as for a real CancelFunc.
type cancelAfter struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (c *cancelAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSweepPreCancelled: a dead context aborts before any measurement;
// the journal stays empty and the cause is wrapped.
func TestSweepPreCancelled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, 42, "")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Sweep(ctx, []string{"GTX 480"}, workloads.Table4()[:2],
		SweepOptions{Seed: 42, Workers: 2, Journal: j})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep returned %v, want context.Canceled in the chain", err)
	}
	if j.Len() != 0 {
		t.Errorf("journal recorded %d cells under a dead context", j.Len())
	}
}

// TestSweepCancelMultiBoardResumes is the acceptance scenario: one cancel
// aborts a multi-board pooled sweep mid-flight at a cell boundary, the
// journal is left resumable, and the resumed sweep is bit-identical to an
// uninterrupted run.
func TestSweepCancelMultiBoardResumes(t *testing.T) {
	boards := []string{"GTX 285", "GTX 680"}
	benches := workloads.Table4()[:3]
	want, err := Sweep(context.Background(), boards, benches, SweepOptions{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantCells int
	for _, rs := range want {
		for _, r := range rs {
			wantCells += len(r.Pairs)
		}
	}

	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, 42, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &cancelAfter{Context: context.Background(), after: 25}
	_, err = Sweep(ctx, boards, benches, SweepOptions{Seed: 42, Workers: 2, Journal: j})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled in the chain", err)
	}
	done := j.Len()
	if done == 0 || done >= wantCells {
		t.Fatalf("journal has %d of %d cells after cancel, want a strict partial prefix", done, wantCells)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, 42, "")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, err := Sweep(context.Background(), boards, benches, SweepOptions{Seed: 42, Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Hits() == 0 {
		t.Error("resumed sweep replayed no journal cells")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from an uninterrupted run")
	}
}

// TestSweepBenchmarkCtxCancelled: the single-device sweep entry point
// honours its context too.
func TestSweepBenchmarkCtxCancelled(t *testing.T) {
	dev, err := driver.OpenBoard("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepBenchmarkCtx(ctx, dev, workloads.ByName("backprop")); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepBenchmarkCtx returned %v, want context.Canceled in the chain", err)
	}
}
