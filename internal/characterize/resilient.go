package characterize

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/gpu"
	"gpuperf/internal/obs"
	"gpuperf/internal/workloads"
)

// The resilient sweep is the plain sweep wrapped in the fault harness:
// every boot, clock set and metered run may fail transiently under a fault
// campaign, so each one runs inside a bounded retry loop with backoff, a
// watchdog kills hung launches and reboots the device, and a frequency
// pair that exhausts its retry budget is quarantined — its Table IV cell
// renders "n/a (unstable)" instead of sinking the whole campaign.
//
// Determinism: each cell's measurement noise comes from a stream scoped to
// the cell (SeedScoped) and each attempt's faults from a stream keyed by
// (campaign seed, cell scope, attempt). A retried cell therefore replays
// the same measurement it would have produced on the first try, and a run
// under an all-transient profile with enough retries is byte-identical to
// a fault-free run.

// SweepOptions configures a resilient sweep campaign.
type SweepOptions struct {
	Seed    int64
	Workers int
	// Res carries the fault campaign and the retry/watchdog policy. nil
	// behaves like a fault-free harness with a single attempt per cell.
	Res *fault.Resilience
	// Journal, when non-nil, checkpoints completed cells and replays them
	// on resume.
	Journal *Journal
	// Obs, when non-nil, receives the campaign's instrumentation: one
	// virtual-time track per (board, benchmark) job plus the sweep, fault,
	// driver and meter counters. The recorded artifacts are a pure function
	// of the seed — independent of Workers.
	Obs *obs.Recorder
	// TrackPrefix namespaces this phase's track names ("fig", "table4");
	// empty means "sweep".
	TrackPrefix string
	// Rep is the repetition index within a repetition cohort. Repetition 0
	// is the campaign itself — identical scopes, track names and journal
	// keys to a single-run campaign — while later repetitions suffix their
	// fault scopes, journal keys and tracks so each repetition draws
	// independent fault and noise streams. Callers normally go through
	// SweepReps, which also derives the per-repetition seed.
	Rep int
	// Fanout, when non-nil, receives live scope-tagged power samples from
	// every metered run (see driver.PowerFanout). Live-only: attaching it
	// never changes measurements or artifacts. It is called from every
	// sweep worker, so it must be safe for concurrent use.
	Fanout driver.PowerFanout
	// OnCell, when non-nil, is called after every cell is resolved —
	// measured, replayed from the journal (replayed=true), or quarantined —
	// with the cell's result. Called from every sweep worker; must be safe
	// for concurrent use. Progress introspection only: it must not mutate
	// the result.
	OnCell func(board, bench string, pr PairResult, replayed bool)
	// Sink, when non-nil, receives the sweep as a row stream: one
	// ConsumeRow per resolved cell (the OnCell contract) and one
	// ConsumeBench per completed (board, benchmark) job. Called from
	// every sweep worker; must be safe for concurrent use. This is how
	// SweepStream consumers — the fleet aggregator — fold a campaign
	// without materializing it.
	Sink RowSink
	// Boot, when non-nil, replaces the device-open path; the injector may
	// be nil on a fault-free attempt. The fleet orchestrator boots
	// jittered per-device specs through this seam. Defaults to
	// driver.OpenBoardWithFaults.
	Boot func(boardName string, in *fault.Injector) (*driver.Device, error)
	// SpecOf, when non-nil, resolves a board name to its spec — the
	// quarantine path needs the pair grid of a device that never booted.
	// Defaults to arch.BoardByName.
	SpecOf func(boardName string) *arch.Spec
}

func (o *SweepOptions) res() *fault.Resilience {
	if o.Res != nil {
		return o.Res
	}
	return &fault.Resilience{}
}

func (o *SweepOptions) boot() func(string, *fault.Injector) (*driver.Device, error) {
	if o.Boot != nil {
		return o.Boot
	}
	return driver.OpenBoardWithFaults
}

func (o *SweepOptions) specOf(boardName string) *arch.Spec {
	if o.SpecOf != nil {
		return o.SpecOf(boardName)
	}
	return arch.BoardByName(boardName)
}

// emitCell fans one resolved cell out to both progress hooks — the
// single emission point every resolution path (measure, journal replay,
// boot quarantine) goes through.
func (o *SweepOptions) emitCell(board, bench string, pr PairResult, replayed bool) {
	if o.OnCell != nil {
		o.OnCell(board, bench, pr, replayed)
	}
	if o.Sink != nil {
		o.Sink.ConsumeRow(Row{Board: board, Bench: bench, Rep: o.Rep, Replayed: replayed, Result: pr})
	}
}

// Sweep is the unified sweep engine: every sequential, parallel and
// resilient sweep variant is a configuration of this one implementation.
// It sweeps the benches on every named board through one shared worker
// pool over (board, benchmark) jobs; results are indexed
// [board][benchmark] and are a pure function of the seed — identical at
// any worker count (1 is the bit-exact sequential reference), with or
// without a fault campaign, journal or recorder attached.
//
// The context is checked at every cell boundary (each (board, benchmark,
// pair) measurement) and before every retry attempt: a cancel aborts the
// campaign within one in-flight cell per worker, returns the cause
// wrapped in the error, and leaves the checkpoint journal resumable — a
// rerun with the same journal replays the completed cells and measures
// only the rest, byte-identical to an uninterrupted run.
func Sweep(ctx context.Context, boardNames []string, benches []*workloads.Benchmark, opts SweepOptions) (map[string][]*BenchResult, error) {
	nb := len(benches)
	if len(boardNames)*nb == 0 {
		return map[string][]*BenchResult{}, nil
	}
	// Sweep is one fold over the row stream: collect every completed
	// BenchResult into its [board][benchmark] slot, chaining to any sink
	// the caller attached.
	fold := newResultFold(boardNames, benches, opts.Sink)
	opts.Sink = fold
	if err := SweepStream(ctx, boardNames, benches, opts); err != nil {
		return nil, err
	}
	return fold.results(boardNames, nb), nil
}

// prepareSweepObs wires the recorder through the resilience policy before
// the pool starts (Observe must not race with workers). opts is the
// engine's private copy, so defaulting Res here never leaks to callers.
func prepareSweepObs(opts *SweepOptions, jobs int) {
	if opts.Obs == nil {
		return
	}
	if opts.Res == nil {
		opts.Res = &fault.Resilience{}
	}
	if opts.Res.Obs == nil {
		opts.Res.Obs = opts.Obs
	}
	opts.Res.Observe()
	w := opts.Workers
	if w < 1 {
		w = 1
	}
	if w > jobs {
		w = jobs
	}
	observePool(opts.Obs, w)
}

// SweepBoardsR is SweepBoards under the fault harness.
//
// Deprecated: use Sweep (or session.Session.Sweep) — SweepBoardsR is the
// unified engine without a context and delegates to it.
func SweepBoardsR(boardNames []string, benches []*workloads.Benchmark, opts SweepOptions) (map[string][]*BenchResult, error) {
	return Sweep(context.Background(), boardNames, benches, opts)
}

// SweepBoardR sweeps one board's benchmarks under the fault harness.
//
// Deprecated: use Sweep (or session.Session.SweepBoard) — SweepBoardR is
// the single-board configuration of the unified engine and delegates to
// it.
func SweepBoardR(boardName string, benches []*workloads.Benchmark, opts SweepOptions) ([]*BenchResult, error) {
	return sweepOneBoard(boardName, benches, opts)
}

// bootR boots the board inside the retry loop through the open seam
// (driver.OpenBoardWithFaults by default; the fleet's jittered-spec boot
// otherwise). A boot that exhausts its budget returns the fault that
// kept failing with a nil device — the caller quarantines the
// benchmark's cells.
func bootR(ctx context.Context, boardName, scope string, open func(string, *fault.Injector) (*driver.Device, error), res *fault.Resilience, track *obs.Track) (*driver.Device, fault.Point, error) {
	var lastPt fault.Point
	for attempt := 0; attempt < res.Attempts(); attempt++ {
		if ctx.Err() != nil {
			return nil, "", cancelled(ctx)
		}
		in := res.Injector("boot|"+scope, attempt)
		dev, err := open(boardName, in)
		if err == nil {
			return dev, "", nil
		}
		pt, transient := fault.PointOf(err)
		if !transient {
			return nil, "", err
		}
		lastPt = pt
		res.RecordRetry(pt)
		track.Instant("boot retry", obs.Arg{Key: "point", Value: string(pt)},
			obs.Arg{Key: "attempt", Value: strconv.Itoa(attempt)})
		track.Advance(res.Backoff("boot|"+scope, attempt).Seconds())
		res.Pause("boot|"+scope, attempt)
	}
	return nil, lastPt, nil
}

// quarantineAll marks every valid pair of the board as quarantined — the
// degradation shape of a benchmark whose device never booted.
func quarantineAll(boardName, bench string, spec *arch.Spec, pt fault.Point, retries int) *BenchResult {
	out := &BenchResult{Benchmark: bench, Board: boardName}
	if spec == nil {
		return out
	}
	for _, p := range clock.ValidPairs(spec) {
		pr := PairResult{Pair: p, Quarantined: true, FailPoint: pt, Retries: retries}
		pr.Verdict = pr.Classify()
		out.Pairs = append(out.Pairs, pr)
	}
	return out
}

// sweepBenchR measures one benchmark on one board under the fault
// harness, checking the context before every cell so a cancel stops the
// job at a cell boundary with every completed cell already journaled.
func sweepBenchR(ctx context.Context, boardName string, b *workloads.Benchmark, opts SweepOptions) (*BenchResult, error) {
	res := opts.res()
	scope := boardName + "|" + b.Name
	if opts.Rep > 0 {
		// Later repetitions draw independent fault streams; repetition 0
		// keeps the exact scope of a single-run campaign.
		scope += "|rep" + strconv.Itoa(opts.Rep)
	}
	so := newSweepObs(opts.Obs, boardName)
	track := opts.Obs.Track(opts.trackName(boardName, b.Name))
	span := track.Begin("sweep "+b.Name, obs.Arg{Key: "board", Value: boardName})
	defer span.End()
	dev, failPt, err := bootR(ctx, boardName, scope, opts.boot(), res, track)
	if err != nil {
		return nil, err
	}
	if dev == nil {
		out := quarantineAll(boardName, b.Name, opts.specOf(boardName), failPt, res.Attempts()-1)
		if so != nil {
			so.quarantined.With(string(failPt)).Add(int64(len(out.Pairs)))
			track.Instant("quarantined (boot failed)", obs.Arg{Key: "point", Value: string(failPt)})
		}
		for _, pr := range out.Pairs {
			opts.emitCell(boardName, b.Name, pr, false)
		}
		return out, nil
	}
	if opts.Obs != nil {
		dev.Observe(opts.Obs, track.Name())
	}
	dev.SetPowerFanout(opts.Fanout)
	dev.Seed(sweepSeed(opts.Seed, b.Name))

	out := &BenchResult{Benchmark: b.Name, Board: boardName}
	kernels := b.Kernels(1)
	hostGap := b.HostGap(1)
	pairs := clock.ValidPairs(dev.Spec())

	// Batched fast path: compile each kernel once and simulate every pair
	// the sweep will actually launch in one pass, so the per-pair loop
	// below runs entirely against the per-device launch cache. Cells the
	// journal will replay are skipped — their launches never happen.
	// The precomputed entries are bit-identical to per-launch simulation
	// (pinned by property tests), so results, golden artifacts and the
	// device's noise stream are unchanged.
	todo := pairs
	if opts.Journal != nil {
		todo = make([]clock.Pair, 0, len(pairs))
		for _, p := range pairs {
			if !opts.Journal.Contains(boardName, b.Name, opts.Rep, p) {
				todo = append(todo, p)
			}
		}
	}
	if _, err := dev.PrecomputePairs(kernels, todo); err != nil {
		return nil, err
	}

	for _, p := range pairs {
		if opts.Journal != nil {
			if cell, ok := opts.Journal.Lookup(boardName, b.Name, opts.Rep, p); ok {
				out.Pairs = append(out.Pairs, cell)
				if so != nil {
					so.journalHits.Inc()
					track.Instant("journal replay", obs.Arg{Key: "pair", Value: p.String()})
				}
				opts.emitCell(boardName, b.Name, cell, true)
				continue
			}
		}
		if ctx.Err() != nil {
			return nil, cancelled(ctx)
		}
		cell, err := sweepCellR(ctx, dev, b.Name, kernels, hostGap, p, scope, res, track)
		if err != nil {
			return nil, err
		}
		out.Pairs = append(out.Pairs, cell)
		if so != nil {
			so.cells.Inc()
			if cell.Quarantined {
				so.quarantined.With(string(cell.FailPoint)).Inc()
				track.Instant("quarantined", obs.Arg{Key: "pair", Value: p.String()},
					obs.Arg{Key: "point", Value: string(cell.FailPoint)})
			}
		}
		opts.emitCell(boardName, b.Name, cell, false)
		if opts.Journal != nil {
			if err := opts.Journal.Record(boardName, b.Name, opts.Rep, cell); err != nil {
				return nil, err
			}
		}
	}
	// Park the device at the default pair with faults detached — recovery
	// housekeeping must not itself draw faults.
	dev.AttachFaults(nil)
	if err := dev.SetClocks(clock.DefaultPair()); err != nil {
		return nil, err
	}
	if so != nil {
		so.simUS.Add(track.Now())
	}
	return out, nil
}

// sweepCellR measures one (pair) cell inside the retry loop. Transient
// faults retry with backoff; a hang additionally reboots the device from
// its golden image; exhaustion quarantines the cell.
func sweepCellR(ctx context.Context, dev *driver.Device, bench string, kernels []*gpu.KernelDesc, hostGap float64, p clock.Pair, scope string, res *fault.Resilience, track *obs.Track) (PairResult, error) {
	cellScope := scope + "|" + p.String()
	retry := func(pt fault.Point, attempt int) {
		res.RecordRetry(pt)
		track.Instant("retry", obs.Arg{Key: "point", Value: string(pt)},
			obs.Arg{Key: "pair", Value: p.String()},
			obs.Arg{Key: "attempt", Value: strconv.Itoa(attempt)})
		track.Advance(res.Backoff(cellScope, attempt).Seconds())
		res.Pause(cellScope, attempt)
	}
	var lastPt fault.Point
	for attempt := 0; attempt < res.Attempts(); attempt++ {
		if ctx.Err() != nil {
			// A cancelled parent must not spin the retry budget (an injected
			// hang's watchdog fires on the same cancel) — abort the cell.
			return PairResult{}, cancelled(ctx)
		}
		dev.AttachFaults(res.Injector(cellScope, attempt))
		dev.SeedScoped("pair|" + p.String())
		if err := dev.SetClocks(p); err != nil {
			pt, transient := fault.PointOf(err)
			if !transient {
				return PairResult{}, fmt.Errorf("characterize: %s: %w", bench, err)
			}
			lastPt = pt
			retry(pt, attempt)
			continue
		}
		runCtx, cancel := res.LaunchContext(ctx)
		rr, err := dev.RunMeteredCtx(runCtx, bench, kernels, hostGap, MinRunSeconds)
		cancel()
		if err != nil {
			pt, transient := fault.PointOf(err)
			if !transient {
				return PairResult{}, fmt.Errorf("characterize: %s at %s: %w", bench, p, err)
			}
			lastPt = pt
			if pt == fault.LaunchHang {
				// The watchdog killed a hung launch; the device is wedged
				// and needs a reboot before the next attempt.
				if rerr := dev.Reflash(); rerr != nil {
					return PairResult{}, fmt.Errorf("characterize: %s at %s: %w", bench, p, rerr)
				}
			}
			retry(pt, attempt)
			continue
		}
		if rr.Measurement.Degraded() && attempt+1 < res.Attempts() {
			// The measurement survived but leans on interpolated windows;
			// retry for a clean one, accepting low confidence only when
			// the budget runs out.
			lastPt = fault.MeterDegraded
			retry(fault.MeterDegraded, attempt)
			continue
		}
		pr := pairResult(p, rr, attempt)
		driver.ReleaseRunResult(rr) // the cell copied out everything it needs
		return pr, nil
	}
	pr := PairResult{Pair: p, Quarantined: true, FailPoint: lastPt, Retries: res.Attempts() - 1}
	pr.Verdict = pr.Classify()
	return pr, nil
}

// Degradation is one human-readable line of the campaign's damage report.
type Degradation struct {
	Board string
	Bench string
	Line  string
}

// Degradations summarizes quarantined and low-confidence cells of a
// campaign, sorted by board then benchmark then pair — empty when the
// campaign fully recovered, which keeps recovered reports byte-identical
// to fault-free ones.
func Degradations(results map[string][]*BenchResult) []Degradation {
	var out []Degradation
	for board, rs := range results {
		for _, r := range rs {
			for i := range r.Pairs {
				pr := &r.Pairs[i]
				switch {
				case pr.Quarantined:
					why := "unstable"
					if pr.FailPoint != "" {
						why = string(pr.FailPoint)
					}
					out = append(out, Degradation{Board: board, Bench: r.Benchmark,
						Line: fmt.Sprintf("%s / %s @ %s: quarantined after %d retries (%s)",
							board, r.Benchmark, pr.Pair, pr.Retries, why)})
				case pr.Confidence > 0 && pr.Confidence < 1:
					out = append(out, Degradation{Board: board, Bench: r.Benchmark,
						Line: fmt.Sprintf("%s / %s @ %s: accepted at %.0f%% confidence (%d samples interpolated)",
							board, r.Benchmark, pr.Pair, pr.Confidence*100, pr.Interpolated)})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Line < out[b].Line })
	return out
}
