// Package characterize implements the Section III experiments: sweep every
// benchmark over every BIOS-exposed frequency pair on every board, measure
// execution time and wall energy with the simulated power meter, and derive
// the per-benchmark best-efficiency pair (Table IV), the improvement over
// the default (H-H) pair (Fig. 4) and the performance/power-efficiency
// curves of Figs. 1–3.
package characterize

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

// MinRunSeconds mirrors the paper's floor: kernels are repeated until the
// run covers 500 ms so the meter sees at least 10 samples.
const MinRunSeconds = 0.5

// PairResult is one (benchmark, board, frequency pair) measurement.
type PairResult struct {
	Pair          clock.Pair
	TimePerIter   float64 // seconds per kernel-sequence iteration
	AvgWatts      float64 // measured wall power
	EnergyPerIter float64 // joules per iteration

	// Fault-campaign bookkeeping (zero values on a clean sweep). A
	// quarantined cell repeatedly failed past the retry budget and holds
	// no measurement; FailPoint names the fault that exhausted it.
	// Confidence is the measurement's genuine-sample fraction (0 for
	// quarantined cells, 1 for clean ones — see meter.Measurement) and
	// Interpolated counts its reconstructed samples.
	Quarantined  bool        `json:",omitempty"`
	FailPoint    fault.Point `json:",omitempty"`
	Retries      int         `json:",omitempty"`
	Confidence   float64     `json:",omitempty"`
	Interpolated int         `json:",omitempty"`

	// Verdict is the run-level triage classification (validity.ClassifyRun
	// over the bookkeeping above). Every construction site classifies, so
	// a zero Verdict marks a cell that bypassed the triage policy.
	Verdict validity.Verdict `json:"verdict"`
}

// Classify maps the cell's fault bookkeeping onto its run verdict — a
// pure function of the recorded facts, so journal migration can re-derive
// verdicts for cells written before they existed.
func (p *PairResult) Classify() validity.Verdict {
	return validity.ClassifyRun(validity.RunFacts{
		Quarantined:  p.Quarantined,
		FailPoint:    string(p.FailPoint),
		Retries:      p.Retries,
		Confidence:   p.Confidence,
		Interpolated: p.Interpolated,
	})
}

// Efficiency returns the paper's power-efficiency metric, the reciprocal of
// energy consumption. A quarantined cell has no measurement and reports 0.
func (p *PairResult) Efficiency() float64 {
	if p.Quarantined || p.EnergyPerIter <= 0 {
		return 0
	}
	return 1 / p.EnergyPerIter
}

// BenchResult is one benchmark swept over all pairs of one board.
type BenchResult struct {
	Benchmark string
	Board     string
	Pairs     []PairResult // in Table III row order (H-H first)
}

// ByPair finds the measurement for a pair, or nil.
func (r *BenchResult) ByPair(p clock.Pair) *PairResult {
	for i := range r.Pairs {
		if r.Pairs[i].Pair == p {
			return &r.Pairs[i]
		}
	}
	return nil
}

// Best returns the pair with maximum power efficiency (minimum energy).
// Ties resolve to the earlier Table III row, which puts (H-H) first —
// matching the paper's convention of reporting the default on a tie.
// Quarantined cells hold no measurement and never win; a sweep whose every
// cell is quarantined has no best pair and returns nil.
func (r *BenchResult) Best() *PairResult {
	var best *PairResult
	for i := range r.Pairs {
		if r.Pairs[i].Quarantined {
			continue
		}
		if best == nil || r.Pairs[i].Efficiency() > best.Efficiency() {
			best = &r.Pairs[i]
		}
	}
	return best
}

// Default returns the (H-H) measurement, or nil when that cell was
// quarantined — normalized metrics have no baseline then.
func (r *BenchResult) Default() *PairResult {
	pr := r.ByPair(clock.DefaultPair())
	if pr != nil && pr.Quarantined {
		return nil
	}
	return pr
}

// QuarantinedCells reports how many of the sweep's cells were quarantined.
func (r *BenchResult) QuarantinedCells() int {
	n := 0
	for i := range r.Pairs {
		if r.Pairs[i].Quarantined {
			n++
		}
	}
	return n
}

// ImprovementPct returns the Fig. 4 metric: the power-efficiency gain of
// the best pair over the default pair, in percent.
func (r *BenchResult) ImprovementPct() float64 {
	def, best := r.Default(), r.Best()
	if def == nil || best == nil || def.Efficiency() <= 0 {
		return 0
	}
	return (best.Efficiency()/def.Efficiency() - 1) * 100
}

// PerfLossPct returns the performance loss of the best pair relative to the
// default pair, in percent (the paper quotes 2%, 2%, 0.1% and 30% for
// Backprop). Performance is 1/time, so the loss is 1 − t_default/t_best.
func (r *BenchResult) PerfLossPct() float64 {
	def, best := r.Default(), r.Best()
	if def == nil || best == nil || best.TimePerIter == 0 {
		return 0
	}
	return (1 - def.TimePerIter/best.TimePerIter) * 100
}

// SweepBenchmark measures one benchmark at every valid frequency pair of
// the given device. The device is left at the default pair.
//
// Each pair's measurement draws its noise from a stream scoped to the
// pair (SeedScoped), so a cell's result depends only on the device's base
// seed and the pair — not on how many cells ran before it. The resilient
// sweep relies on exactly this to make retried and checkpoint-resumed
// runs byte-identical to clean ones.
func SweepBenchmark(dev *driver.Device, b *workloads.Benchmark) (*BenchResult, error) {
	return SweepBenchmarkCtx(context.Background(), dev, b)
}

// SweepBenchmarkCtx is SweepBenchmark with cooperative cancellation: the
// context is checked before each frequency-pair cell, so a cancelled sweep
// stops at a cell boundary and returns the cause wrapped in the error.
func SweepBenchmarkCtx(ctx context.Context, dev *driver.Device, b *workloads.Benchmark) (*BenchResult, error) {
	out := &BenchResult{Benchmark: b.Name, Board: dev.Spec().Name}
	kernels := b.Kernels(1)
	hostGap := b.HostGap(1)
	for _, p := range clock.ValidPairs(dev.Spec()) {
		if ctx.Err() != nil {
			return nil, cancelled(ctx)
		}
		if err := dev.SetClocks(p); err != nil {
			return nil, fmt.Errorf("characterize: %s: %w", b.Name, err)
		}
		dev.SeedScoped("pair|" + p.String())
		rr, err := dev.RunMetered(b.Name, kernels, hostGap, MinRunSeconds)
		if err != nil {
			return nil, fmt.Errorf("characterize: %s at %s: %w", b.Name, p, err)
		}
		out.Pairs = append(out.Pairs, pairResult(p, rr, 0))
		driver.ReleaseRunResult(rr) // the cell copied out everything it needs
	}
	if err := dev.SetClocks(clock.DefaultPair()); err != nil {
		return nil, err
	}
	return out, nil
}

// pairResult builds one sweep cell from a metered run.
func pairResult(p clock.Pair, rr *driver.RunResult, retries int) PairResult {
	out := PairResult{
		Pair:          p,
		TimePerIter:   rr.TimePerIteration(),
		AvgWatts:      rr.Measurement.AvgWatts,
		EnergyPerIter: rr.EnergyPerIteration(),
		Retries:       retries,
		Interpolated:  rr.Measurement.Interpolated,
		Confidence:    rr.Measurement.Confidence(),
	}
	out.Verdict = out.Classify()
	return out
}

// sweepSeed derives one benchmark's independent noise seed: seed ⊕
// FNV-1a(benchmark name), the same scheme core.Collect uses. Independent
// per-benchmark streams are what make sequential and parallel sweeps
// byte-identical — no benchmark's noise depends on which benchmarks ran
// before it on the same device.
func sweepSeed(seed int64, benchName string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(benchName)) // fnv: hash.Hash.Write never errors
	return seed ^ int64(h.Sum64())
}

// cancelled wraps a context's cancellation cause in the package's error
// shape; errors.Is(err, context.Canceled) (or the deadline sentinel, or a
// custom cause) keeps working through the wrap.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("characterize: sweep cancelled: %w", context.Cause(ctx))
}

// SweepBoard sweeps a set of benchmarks on one board, sequentially.
//
// Deprecated: use Sweep (or session.Session.Sweep) — SweepBoard is the
// workers=1 configuration of the unified engine and delegates to it.
func SweepBoard(boardName string, benches []*workloads.Benchmark, seed int64) ([]*BenchResult, error) {
	return sweepOneBoard(boardName, benches, SweepOptions{Seed: seed, Workers: 1})
}

// SweepBoardParallel is SweepBoard with the benchmarks measured by a
// worker pool; the per-benchmark seeding makes the result byte-identical
// to SweepBoard.
//
// Deprecated: use Sweep (or session.Session.Sweep) with
// SweepOptions.Workers — SweepBoardParallel delegates to the unified
// engine.
func SweepBoardParallel(boardName string, benches []*workloads.Benchmark, seed int64, workers int) ([]*BenchResult, error) {
	return sweepOneBoard(boardName, benches, SweepOptions{Seed: seed, Workers: workers})
}

// sweepOneBoard runs the unified engine over a single board and unwraps
// the map — shared by the deprecated per-board wrappers.
func sweepOneBoard(boardName string, benches []*workloads.Benchmark, opts SweepOptions) ([]*BenchResult, error) {
	m, err := Sweep(context.Background(), []string{boardName}, benches, opts)
	if err != nil {
		return nil, err
	}
	return m[boardName], nil
}

// SweepBoards sweeps the benches on every named board through one shared
// worker pool over (board, benchmark) jobs.
//
// Deprecated: use Sweep (or session.Session.Sweep) — SweepBoards is the
// fault-free configuration of the unified engine and delegates to it.
func SweepBoards(boardNames []string, benches []*workloads.Benchmark, seed int64, workers int) (map[string][]*BenchResult, error) {
	return Sweep(context.Background(), boardNames, benches, SweepOptions{Seed: seed, Workers: workers})
}

// Table4 runs the full Table IV experiment: every Table IV benchmark on
// every board, returning results indexed [board][benchmark], with the
// (board, benchmark) grid swept by one GOMAXPROCS-wide worker pool.
func Table4(seed int64) (map[string][]*BenchResult, error) {
	boards := arch.AllBoards()
	names := make([]string, len(boards))
	for i, s := range boards {
		names[i] = s.Name
	}
	return Sweep(context.Background(), names, workloads.Table4(),
		SweepOptions{Seed: seed, Workers: runtime.GOMAXPROCS(0)})
}

// Table4Workers is Table4 with an explicit worker count.
//
// Deprecated: use Sweep (or session.Session.Sweep) with
// SweepOptions.Workers — the output is identical at any width; 1 is the
// bit-exact sequential reference.
func Table4Workers(seed int64, workers int) (map[string][]*BenchResult, error) {
	boards := arch.AllBoards()
	names := make([]string, len(boards))
	for i, s := range boards {
		names[i] = s.Name
	}
	return Sweep(context.Background(), names, workloads.Table4(),
		SweepOptions{Seed: seed, Workers: workers})
}

// MeanImprovementPct averages the Fig. 4 metric over a board's results.
func MeanImprovementPct(results []*BenchResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var s float64
	for _, r := range results {
		s += r.ImprovementPct()
	}
	return s / float64(len(results))
}

// CurvePoint is one point of a Fig. 1–3 panel.
type CurvePoint struct {
	CoreMHz    float64
	Perf       float64 // 1 / time-per-iteration, normalized to (H-H)
	Efficiency float64 // 1 / energy-per-iteration, normalized to (H-H)
}

// Curve is one line of a Fig. 1–3 panel: one memory level, swept over the
// valid core levels.
type Curve struct {
	MemLevel arch.FreqLevel
	MemMHz   float64
	Points   []CurvePoint // ascending core frequency
}

// Curves reshapes a sweep into the Figs. 1–3 form: one line per memory
// frequency, the x-axis being the core frequency, both metrics normalized
// to the default (H-H) measurement.
func Curves(r *BenchResult, spec *arch.Spec) []Curve {
	def := r.Default()
	if def == nil {
		return nil
	}
	var out []Curve
	for _, mem := range arch.Levels() {
		c := Curve{MemLevel: mem, MemMHz: spec.MemFreqMHz(mem)}
		for _, core := range arch.Levels() {
			pr := r.ByPair(clock.Pair{Core: core, Mem: mem})
			if pr == nil || pr.Quarantined {
				continue
			}
			c.Points = append(c.Points, CurvePoint{
				CoreMHz:    spec.CoreFreqMHz(core),
				Perf:       def.TimePerIter / pr.TimePerIter,
				Efficiency: def.EnergyPerIter / pr.EnergyPerIter,
			})
		}
		if len(c.Points) > 0 {
			out = append(out, c)
		}
	}
	return out
}
