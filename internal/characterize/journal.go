package characterize

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"gpuperf/internal/clock"
)

// The checkpoint journal persists completed sweep cells as JSON lines so a
// crashed or killed campaign resumes where it stopped instead of repaying
// hours of sweeping. The first line is a header binding the journal to a
// (seed, fault-profile) configuration; cells recorded under a different
// configuration would silently change the results, so a mismatched header
// resets the journal. Because every cell's noise stream is scoped to the
// cell (SeedScoped), a resumed run is byte-identical to an uninterrupted
// one — the journal replays exactly what the sweep would have measured.

// journalVersion guards the on-disk format.
const journalVersion = 1

type journalHeader struct {
	Kind    string `json:"kind"` // "header"
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	Profile string `json:"profile"` // canonical fault-profile spec
}

type journalCell struct {
	Kind   string     `json:"kind"` // "cell"
	Board  string     `json:"board"`
	Bench  string     `json:"bench"`
	Pair   string     `json:"pair"`
	Result PairResult `json:"result"`
}

// Journal is an append-only checkpoint of completed (board, benchmark,
// pair) cells. Safe for concurrent use by sweep workers.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	cells map[string]PairResult
	hits  int
}

func cellKey(board, bench string, p clock.Pair) string {
	return board + "|" + bench + "|" + p.String()
}

// OpenJournal opens (or creates) a checkpoint journal at path. Cells
// recorded under the same seed and canonical profile spec are loaded for
// replay; a header mismatch — different seed, different profile, or a
// format change — discards the stale cells. The file is rewritten on open
// so a line half-written by a crash cannot poison later parses.
func OpenJournal(path string, seed int64, profile string) (*Journal, error) {
	j := &Journal{cells: make(map[string]PairResult)}
	if data, err := os.ReadFile(path); err == nil {
		j.load(data, seed, profile)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	j.f = f
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(journalHeader{Kind: "header", Version: journalVersion, Seed: seed, Profile: profile}); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	for _, line := range j.lines() {
		if err := enc.Encode(line); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("characterize: checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	return j, nil
}

// load parses a prior journal, keeping its cells only when the header
// matches the campaign configuration. Undecodable lines — typically one
// truncated trailing line from a crash — are skipped.
func (j *Journal) load(data []byte, seed int64, profile string) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h journalHeader
			if json.Unmarshal(line, &h) != nil || h.Kind != "header" ||
				h.Version != journalVersion || h.Seed != seed || h.Profile != profile {
				return // stale or foreign journal: start fresh
			}
			continue
		}
		var c journalCell
		if json.Unmarshal(line, &c) != nil || c.Kind != "cell" {
			continue
		}
		if _, err := clock.ParsePair(c.Pair); err != nil {
			continue
		}
		if c.Result.Pair.String() != c.Pair {
			continue // pair key disagrees with the payload: corrupt line
		}
		j.cells[c.Board+"|"+c.Bench+"|"+c.Pair] = c.Result
	}
}

// lines returns the retained cells as journal lines in a stable order.
func (j *Journal) lines() []journalCell {
	out := make([]journalCell, 0, len(j.cells))
	for k, r := range j.cells {
		// The key is board|bench|pair; neither boards, benches nor pairs
		// contain the separator.
		parts := strings.SplitN(k, "|", 3)
		out = append(out, journalCell{Kind: "cell", Board: parts[0], Bench: parts[1], Pair: r.Pair.String(), Result: r})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Board != out[b].Board {
			return out[a].Board < out[b].Board
		}
		if out[a].Bench != out[b].Bench {
			return out[a].Bench < out[b].Bench
		}
		return out[a].Pair < out[b].Pair
	})
	return out
}

// Lookup returns a previously completed cell, if the journal holds one.
func (j *Journal) Lookup(board, bench string, p clock.Pair) (PairResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.cells[cellKey(board, bench, p)]
	if ok {
		j.hits++
	}
	return r, ok
}

// Contains reports whether the journal holds a completed cell without
// counting it as a replay hit — the batched-precompute path asks this to
// avoid simulating cells the sweep will never launch, and must not skew
// the Hits accounting the real replay loop reports.
func (j *Journal) Contains(board, bench string, p clock.Pair) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.cells[cellKey(board, bench, p)]
	return ok
}

// Record appends a completed cell and syncs it to disk, so a crash at any
// later point cannot lose it.
//
//gpulint:deterministic
func (j *Journal) Record(board, bench string, r PairResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells[cellKey(board, bench, r.Pair)] = r
	line, err := json.Marshal(journalCell{Kind: "cell", Board: board, Bench: bench, Pair: r.Pair.String(), Result: r})
	if err != nil {
		return fmt.Errorf("characterize: checkpoint: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("characterize: checkpoint: %w", err)
	}
	return nil
}

// Hits reports how many sweep cells were answered from the journal — the
// work a resumed campaign did not repeat.
func (j *Journal) Hits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Len reports the number of completed cells the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
