package characterize

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gpuperf/internal/clock"
	"gpuperf/internal/validity"
)

// The checkpoint journal persists completed sweep cells as JSON lines so a
// crashed or killed campaign resumes where it stopped instead of repaying
// hours of sweeping. The first line is a header binding the journal to its
// campaign cohort — seed, board set, canonical fault profile and code
// version (validity.Cohort). Cells recorded under a different cohort would
// silently change the results, so a cohort mismatch against a current
// (v2) journal is a hard error: the journal is preserved on disk and the
// caller must either restore the configuration or point the campaign at a
// different checkpoint path. Legacy (v1) journals carry only (seed,
// profile): a matching one is migrated in place, a mismatched or
// unparseable one is backed up to <path>.stale — never silently
// truncated — and the campaign starts fresh.
//
// Because every cell's noise stream is scoped to the cell (SeedScoped), a
// resumed run is byte-identical to an uninterrupted one — the journal
// replays exactly what the sweep would have measured.

// journalVersion guards the on-disk format. v2 binds the full campaign
// cohort and stamps every cell with its repetition index; v1 (seed,
// profile only) is migrated on open.
const (
	journalVersion       = 2
	journalVersionLegacy = 1
)

type journalHeader struct {
	Kind    string `json:"kind"` // "header"
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	Profile string `json:"profile"` // canonical fault-profile spec
	// v2 fields: the rest of the cohort identity plus its hash, so a
	// mismatch can be reported precisely and external tools can read the
	// binding without replaying the campaign.
	Boards      []string `json:"boards,omitempty"`
	CodeVersion string   `json:"code_version,omitempty"`
	Cohort      string   `json:"cohort,omitempty"` // validity.Cohort.Hash()
}

func (h journalHeader) cohort() validity.Cohort {
	return validity.Cohort{Seed: h.Seed, Boards: h.Boards, Profile: h.Profile, CodeVersion: h.CodeVersion}
}

type journalCell struct {
	Kind   string     `json:"kind"` // "cell"
	Board  string     `json:"board"`
	Bench  string     `json:"bench"`
	Pair   string     `json:"pair"`
	Rep    int        `json:"rep,omitempty"`
	Result PairResult `json:"result"`
}

// JournalConfig configures how a checkpoint journal is opened.
type JournalConfig struct {
	// Cohort is the campaign identity the journal is bound to.
	Cohort validity.Cohort
	// FsyncHeader forces an fsync after the header and replayed cells are
	// rewritten on open, so a crash in the first sweep cell cannot leave
	// a headerless (and therefore unresumable) file behind.
	FsyncHeader bool
	// Warn receives human-readable salvage notes — corrupt lines skipped,
	// stale journals backed up, v1 journals migrated. nil logs to stderr.
	Warn func(format string, args ...any)
}

func (c JournalConfig) warn(format string, args ...any) {
	if c.Warn != nil {
		c.Warn(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, "characterize: checkpoint: "+format+"\n", args...)
}

// CohortMismatchError reports a checkpoint journal bound to a different
// campaign cohort. The journal file is left untouched: resuming under a
// changed configuration would silently change published results, so the
// caller must restore the original configuration, choose a different
// -checkpoint path, or delete the journal deliberately.
type CohortMismatchError struct {
	Path string
	Old  validity.Cohort // the journal's cohort
	New  validity.Cohort // the campaign's cohort
}

func (e *CohortMismatchError) Error() string {
	return fmt.Sprintf("characterize: checkpoint %s belongs to %s, campaign is %s; restore the configuration, pick another checkpoint path, or delete the journal",
		e.Path, e.Old, e.New)
}

// Journal is an append-only checkpoint of completed (board, benchmark,
// pair, repetition) cells. Safe for concurrent use by sweep workers.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	cells map[string]PairResult
	hits  int
}

func cellKey(board, bench string, rep int, p clock.Pair) string {
	key := board + "|" + bench + "|" + p.String()
	if rep > 0 {
		// Repetition 0 keeps the v1 key shape so migrated journals replay.
		key += "|rep" + strconv.Itoa(rep)
	}
	return key
}

// OpenJournal opens a checkpoint journal bound to a bare (seed, profile)
// cohort — no board set, no code version.
//
// Deprecated: use OpenJournalCohort, which binds the full campaign
// cohort; OpenJournal remains for callers that predate cohorts.
func OpenJournal(path string, seed int64, profile string) (*Journal, error) {
	return OpenJournalCohort(path, JournalConfig{Cohort: validity.Cohort{Seed: seed, Profile: profile}})
}

// OpenJournalCohort opens (or creates) a checkpoint journal at path,
// bound to the campaign cohort in cfg.
//
//   - A current-format journal with the same cohort is loaded for replay.
//   - A current-format journal with a different cohort is a hard error
//     (*CohortMismatchError); the file is preserved.
//   - A legacy (v1) journal matching on (seed, profile) is migrated:
//     its cells are re-verdicted and rewritten under the v2 header.
//   - A legacy journal with a different (seed, profile) — or a file whose
//     header does not parse at all — is backed up to <path>.stale with a
//     warning naming both configurations, and the campaign starts fresh.
//
// The file is rewritten on open so a line half-written by a crash cannot
// poison later parses.
func OpenJournalCohort(path string, cfg JournalConfig) (*Journal, error) {
	j := &Journal{cells: make(map[string]PairResult)}
	if data, err := os.ReadFile(path); err == nil {
		keep, lerr := j.load(path, data, cfg)
		if lerr != nil {
			return nil, lerr
		}
		if !keep {
			// Stale or foreign journal: preserve the evidence, start fresh.
			if err := os.Rename(path, path+".stale"); err != nil {
				return nil, fmt.Errorf("characterize: checkpoint: backing up stale journal: %w", err)
			}
			cfg.warn("stale journal backed up to %s.stale", path)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	j.f = f
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	c := cfg.Cohort
	header := journalHeader{
		Kind: "header", Version: journalVersion,
		Seed: c.Seed, Profile: c.Profile,
		Boards: c.Boards, CodeVersion: c.CodeVersion, Cohort: c.Hash(),
	}
	if err := enc.Encode(header); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	for _, line := range j.lines() {
		if err := enc.Encode(line); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("characterize: checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	if cfg.FsyncHeader {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("characterize: checkpoint: %w", err)
		}
	}
	return j, nil
}

// load parses a prior journal. It returns keep=false when the file is a
// stale or foreign journal the caller should back up, and a non-nil error
// only for the hard cohort-mismatch case. Undecodable interior lines —
// a truncated trailing line from a crash, or arbitrary corruption from a
// torn write — are skipped with a warning, never fatal.
func (j *Journal) load(path string, data []byte, cfg JournalConfig) (keep bool, err error) {
	// Split manually rather than with bufio.Scanner: a corrupt line of
	// arbitrary length (a torn write can splice lines together) must cost
	// only itself, never abort the scan on a token-size limit.
	first := true
	migrate := false
	for i, line := range bytes.Split(data, []byte("\n")) {
		lineNo := i + 1
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h journalHeader
			if json.Unmarshal(line, &h) != nil || h.Kind != "header" {
				cfg.warn("journal %s has no parseable header", path)
				return false, nil
			}
			switch h.Version {
			case journalVersion:
				if old := h.cohort(); !old.Equal(cfg.Cohort) {
					return false, &CohortMismatchError{Path: path, Old: old, New: cfg.Cohort}
				}
			case journalVersionLegacy:
				if h.Seed != cfg.Cohort.Seed || h.Profile != cfg.Cohort.Profile {
					cfg.warn("legacy journal %s was recorded under seed=%d profile=%q; campaign is seed=%d profile=%q",
						path, h.Seed, h.Profile, cfg.Cohort.Seed, cfg.Cohort.Profile)
					return false, nil
				}
				migrate = true
				cfg.warn("migrating legacy (v1) journal %s to v%d", path, journalVersion)
			default:
				cfg.warn("journal %s has unknown version %d", path, h.Version)
				return false, nil
			}
			continue
		}
		var c journalCell
		if json.Unmarshal(line, &c) != nil || c.Kind != "cell" {
			cfg.warn("journal %s: skipping corrupt line %d", path, lineNo)
			continue
		}
		if _, perr := clock.ParsePair(c.Pair); perr != nil {
			cfg.warn("journal %s: skipping corrupt line %d (bad pair %q)", path, lineNo, c.Pair)
			continue
		}
		if c.Result.Pair.String() != c.Pair {
			// Pair key disagrees with the payload: corrupt line.
			cfg.warn("journal %s: skipping corrupt line %d (pair key mismatch)", path, lineNo)
			continue
		}
		if c.Rep < 0 {
			cfg.warn("journal %s: skipping corrupt line %d (negative rep)", path, lineNo)
			continue
		}
		if migrate || !validity.KnownClass(c.Result.Verdict.Class) {
			// v1 cells predate run verdicts; re-verdict from the recorded
			// fault bookkeeping, which classification is a pure function of.
			c.Result.Verdict = c.Result.Classify()
		}
		j.cells[cellKey(c.Board, c.Bench, c.Rep, c.Result.Pair)] = c.Result
	}
	return true, nil
}

// lines returns the retained cells as journal lines in a stable order.
func (j *Journal) lines() []journalCell {
	out := make([]journalCell, 0, len(j.cells))
	for k, r := range j.cells {
		// The key is board|bench|pair[|repN]; neither boards, benches nor
		// pairs contain the separator.
		parts := strings.SplitN(k, "|", 4)
		rep := 0
		if len(parts) == 4 {
			rep, _ = strconv.Atoi(strings.TrimPrefix(parts[3], "rep"))
		}
		out = append(out, journalCell{Kind: "cell", Board: parts[0], Bench: parts[1], Pair: r.Pair.String(), Rep: rep, Result: r})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Board != out[b].Board {
			return out[a].Board < out[b].Board
		}
		if out[a].Bench != out[b].Bench {
			return out[a].Bench < out[b].Bench
		}
		if out[a].Rep != out[b].Rep {
			return out[a].Rep < out[b].Rep
		}
		return out[a].Pair < out[b].Pair
	})
	return out
}

// Lookup returns a previously completed cell, if the journal holds one.
func (j *Journal) Lookup(board, bench string, rep int, p clock.Pair) (PairResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.cells[cellKey(board, bench, rep, p)]
	if ok {
		j.hits++
	}
	return r, ok
}

// Contains reports whether the journal holds a completed cell without
// counting it as a replay hit — the batched-precompute path asks this to
// avoid simulating cells the sweep will never launch, and must not skew
// the Hits accounting the real replay loop reports.
func (j *Journal) Contains(board, bench string, rep int, p clock.Pair) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.cells[cellKey(board, bench, rep, p)]
	return ok
}

// Record appends a completed cell and syncs it to disk, so a crash at any
// later point cannot lose it.
//
//gpulint:deterministic
func (j *Journal) Record(board, bench string, rep int, r PairResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells[cellKey(board, bench, rep, r.Pair)] = r
	line, err := json.Marshal(journalCell{Kind: "cell", Board: board, Bench: bench, Pair: r.Pair.String(), Rep: rep, Result: r})
	if err != nil {
		return fmt.Errorf("characterize: checkpoint: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("characterize: checkpoint: %w", err)
	}
	return nil
}

// Hits reports how many sweep cells were answered from the journal — the
// work a resumed campaign did not repeat.
func (j *Journal) Hits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Len reports the number of completed cells the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// ErrForeignJournal marks a journal file that cannot be attributed to
// the asking cohort at all — no parseable header, an unknown format
// version, or a legacy header recorded under different (seed, profile).
// Distinct from *CohortMismatchError, which proves the file belongs to a
// *different* cohort: a foreign file is unreadable evidence. The fleet
// shard-journal merge quarantines foreign shards on this sentinel.
var ErrForeignJournal = errors.New("characterize: checkpoint: journal belongs to no identifiable cohort")

// CellRecord is one decoded checkpoint cell, addressed the way the
// journal keys it.
type CellRecord struct {
	Board  string
	Bench  string
	Rep    int
	Result PairResult
}

// ReadJournalCells decodes a journal's salvageable cells without opening
// it for writing, using the same torn-line-safe codec as
// OpenJournalCohort: corrupt interior lines cost only themselves. Cells
// return in the journal's stable (board, bench, rep, pair) order. A v2
// journal bound to a different cohort returns *CohortMismatchError; an
// unattributable file returns ErrForeignJournal. The fleet orchestrator
// reads per-shard journals through this to merge checkpoints on resume.
func ReadJournalCells(path string, cfg JournalConfig) ([]CellRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("characterize: checkpoint: %w", err)
	}
	j := &Journal{cells: make(map[string]PairResult)}
	keep, err := j.load(path, data, cfg)
	if err != nil {
		return nil, err
	}
	if !keep {
		return nil, fmt.Errorf("%w: %s", ErrForeignJournal, path)
	}
	lines := j.lines()
	out := make([]CellRecord, len(lines))
	for i, l := range lines {
		out[i] = CellRecord{Board: l.Board, Bench: l.Bench, Rep: l.Rep, Result: l.Result}
	}
	return out, nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
