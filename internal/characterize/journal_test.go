package characterize

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuperf/internal/clock"
	"gpuperf/internal/validity"
)

func testCohort(seed int64, profile string) validity.Cohort {
	return validity.Cohort{Seed: seed, Boards: []string{"GTX 480"}, Profile: profile, CodeVersion: "test"}
}

// collectWarn returns a JournalConfig.Warn that appends rendered warnings.
func collectWarn(warnings *[]string) func(string, ...any) {
	return func(format string, args ...any) {
		*warnings = append(*warnings, fmt.Sprintf(format, args...))
	}
}

// writeLegacyJournal fabricates a v1 journal file: a (seed, profile)
// header and one clean plus one quarantined cell without verdicts, the
// exact bytes a pre-cohort binary would have left behind.
func writeLegacyJournal(t *testing.T, path string, seed int64, profile string) (clean, quar PairResult) {
	t.Helper()
	p, err := clock.ParsePair("(H-L)")
	if err != nil {
		t.Fatal(err)
	}
	clean = PairResult{Pair: p, TimePerIter: 0.125, AvgWatts: 200, EnergyPerIter: 25, Confidence: 1}
	quar = PairResult{Pair: clock.DefaultPair(), Quarantined: true, FailPoint: "launch.hang", Retries: 5}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, line := range []any{
		journalHeader{Kind: "header", Version: journalVersionLegacy, Seed: seed, Profile: profile},
		journalCell{Kind: "cell", Board: "GTX 480", Bench: "backprop", Pair: clean.Pair.String(), Result: clean},
		journalCell{Kind: "cell", Board: "GTX 480", Bench: "backprop", Pair: quar.Pair.String(), Result: quar},
	} {
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return clean, quar
}

// TestJournalMigratesMatchingLegacy: a v1 journal whose (seed, profile)
// match the campaign is migrated — cells retained, verdicts re-derived,
// file rewritten under the v2 header.
func TestJournalMigratesMatchingLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	clean, quar := writeLegacyJournal(t, path, 42, "launch.hang:0.1")
	var warnings []string
	j, err := OpenJournalCohort(path, JournalConfig{
		Cohort: testCohort(42, "launch.hang:0.1"),
		Warn:   collectWarn(&warnings),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("migrated journal holds %d cells, want 2", j.Len())
	}
	got, ok := j.Lookup("GTX 480", "backprop", 0, clean.Pair)
	if !ok || got.Verdict.Class != validity.Valid {
		t.Errorf("migrated clean cell: verdict %+v (ok=%v), want VALID", got.Verdict, ok)
	}
	gq, ok := j.Lookup("GTX 480", "backprop", 0, quar.Pair)
	if !ok || gq.Verdict.Class != validity.InfraFlake ||
		!strings.Contains(gq.Verdict.Reason, "launch.hang after 6 attempts") {
		t.Errorf("migrated quarantined cell: verdict %+v (ok=%v), want INFRA_FLAKE blaming launch.hang", gq.Verdict, ok)
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], "migrating legacy") {
		t.Errorf("migration not announced: %q", warnings)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var h journalHeader
	if err := json.Unmarshal(data[:bytes.IndexByte(data, '\n')], &h); err != nil {
		t.Fatal(err)
	}
	if h.Version != journalVersion || h.Cohort != testCohort(42, "launch.hang:0.1").Hash() {
		t.Errorf("rewritten header %+v lacks the v2 cohort binding", h)
	}
}

// TestJournalBacksUpMismatchedLegacy: a v1 journal recorded under a
// different (seed, profile) is backed up to <path>.stale — never
// truncated — with a warning naming both configurations.
func TestJournalBacksUpMismatchedLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeLegacyJournal(t, path, 7, "boot.fail:0.5")
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	j, err := OpenJournalCohort(path, JournalConfig{
		Cohort: testCohort(42, ""),
		Warn:   collectWarn(&warnings),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Errorf("mismatched legacy journal retained %d cells", j.Len())
	}
	stale, err := os.ReadFile(path + ".stale")
	if err != nil {
		t.Fatalf("no .stale backup: %v", err)
	}
	if !bytes.Equal(stale, original) {
		t.Error(".stale backup is not byte-identical to the original journal")
	}
	joined := strings.Join(warnings, "\n")
	for _, want := range []string{"seed=7", `profile="boot.fail:0.5"`, "seed=42", ".stale"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings %q missing %q", joined, want)
		}
	}
}

// TestJournalBacksUpUnparseableHeader: a file with no parseable header —
// e.g. a journal torn inside its first line — is preserved as .stale.
func TestJournalBacksUpUnparseableHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	if err := os.WriteFile(path, []byte(`{"kind":"hea`), 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	j, err := OpenJournalCohort(path, JournalConfig{Cohort: testCohort(1, ""), Warn: collectWarn(&warnings)})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := os.Stat(path + ".stale"); err != nil {
		t.Errorf("no .stale backup: %v", err)
	}
	if joined := strings.Join(warnings, "\n"); !strings.Contains(joined, "no parseable header") {
		t.Errorf("warnings %q do not explain the backup", joined)
	}
}

// TestJournalSkipsCorruptInteriorLines: arbitrary corruption in the
// middle of a journal loses only the damaged lines; intact cells before
// and after it still replay, each skip warned about.
func TestJournalSkipsCorruptInteriorLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	cohort := testCohort(1, "")
	j, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort})
	if err != nil {
		t.Fatal(err)
	}
	pHL, err := clock.ParsePair("(H-L)")
	if err != nil {
		t.Fatal(err)
	}
	pLL, err := clock.ParsePair("(L-L)")
	if err != nil {
		t.Fatal(err)
	}
	a := PairResult{Pair: pHL, TimePerIter: 1, AvgWatts: 2, EnergyPerIter: 2, Confidence: 1}
	a.Verdict = a.Classify()
	b := PairResult{Pair: pLL, TimePerIter: 3, AvgWatts: 4, EnergyPerIter: 12, Confidence: 1}
	b.Verdict = b.Classify()
	if err := j.Record("B", "x", 0, a); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("B", "x", 0, b); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want >= 3", len(lines))
	}
	// Corrupt the first cell line three different ways, keeping the rest.
	for i, garbage := range []string{
		"{\"kind\":\"cell\",\"board\":\x00\xff garbage\n",
		`{"kind":"cell","board":"B","bench":"x","pair":"(Z-9)","result":{}}` + "\n",
		`{"kind":"cell","board":"B","bench":"x","pair":"(H-H)","result":{"Pair":{}}}` + "\n",
	} {
		torn := append([]byte(nil), lines[0]...)
		torn = append(torn, []byte(garbage)...)
		torn = append(torn, bytes.Join(lines[2:], nil)...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		var warnings []string
		j2, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort, Warn: collectWarn(&warnings)})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got, ok := j2.Lookup("B", "x", 0, pLL); !ok || got != b {
			t.Errorf("case %d: surviving cell lost (%+v, ok=%v)", i, got, ok)
		}
		if j2.Len() != 1 {
			t.Errorf("case %d: journal holds %d cells, want 1", i, j2.Len())
		}
		if joined := strings.Join(warnings, "\n"); !strings.Contains(joined, "skipping corrupt line") {
			t.Errorf("case %d: corruption skipped silently (%q)", i, joined)
		}
		j2.Close()
	}
}

// TestJournalFsyncHeader: the fsync-on-open option still produces a
// loadable journal (the sync itself is not observable in a test, but the
// option must not corrupt the write path).
func TestJournalFsyncHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	cohort := testCohort(3, "")
	j, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort, FsyncHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := clock.ParsePair("(M-M)")
	if err != nil {
		t.Fatal(err)
	}
	cell := PairResult{Pair: p, TimePerIter: 1, AvgWatts: 1, EnergyPerIter: 1, Confidence: 1}
	cell.Verdict = cell.Classify()
	if err := j.Record("B", "x", 0, cell); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort, FsyncHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got, ok := j2.Lookup("B", "x", 0, p); !ok || got != cell {
		t.Errorf("fsync journal round trip: %+v (ok=%v)", got, ok)
	}
}

// FuzzJournalLoad: loading a journal with arbitrary corrupt interior
// lines must never error or panic — salvage is skip-and-warn, and
// whatever loads must survive a rewrite/reload cycle.
func FuzzJournalLoad(f *testing.F) {
	f.Add([]byte(`{"kind":"cell","board":"B","bench":"x"`))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte(`{"kind":"cell","board":"B","bench":"x","pair":"(H-H)","result":{"Pair":{"Core":2,"Mem":2}}}`))
	f.Add([]byte(`{"kind":"header","version":2,"seed":99}`))
	f.Add([]byte(`{"kind":"cell","pair":"(Z-Z)"}` + "\n" + `not json at all`))
	f.Fuzz(func(t *testing.T, interior []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "j")
		cohort := testCohort(1, "")
		j, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort, Warn: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		p, err := clock.ParsePair("(H-H)")
		if err != nil {
			t.Fatal(err)
		}
		cell := PairResult{Pair: p, TimePerIter: 1, AvgWatts: 1, EnergyPerIter: 1, Confidence: 1}
		cell.Verdict = cell.Classify()
		if err := j.Record("B", "x", 0, cell); err != nil {
			t.Fatal(err)
		}
		j.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := bytes.IndexByte(data, '\n') + 1 // keep the valid header
		torn := append(append([]byte(nil), data[:cut]...), interior...)
		torn = append(torn, '\n')
		torn = append(torn, data[cut:]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort, Warn: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("corrupt interior line aborted the load: %v", err)
		}
		if got, ok := j2.Lookup("B", "x", 0, p); !ok || got.Pair != p {
			t.Errorf("intact trailing cell lost to interior corruption (%+v, ok=%v)", got, ok)
		}
		j2.Close()
		// The salvaged journal must reload cleanly — rewrite-on-open
		// normalized whatever the fuzzer injected.
		j3, err := OpenJournalCohort(path, JournalConfig{Cohort: cohort, Warn: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("salvaged journal does not reload: %v", err)
		}
		j3.Close()
	})
}
