package characterize

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

func sweepSet(t *testing.T, n int) []*workloads.Benchmark {
	t.Helper()
	all := workloads.Table4()
	if len(all) < n {
		t.Fatalf("Table IV set has only %d benchmarks", len(all))
	}
	return all[:n]
}

// TestSweepBoardParallelMatchesSequential: the pooled sweep must be deeply
// identical to the sequential one at any worker count — each benchmark
// owns a fresh device and an independent noise stream, so scheduling
// cannot reorder any rng draws.
func TestSweepBoardParallelMatchesSequential(t *testing.T) {
	benches := sweepSet(t, 5)
	want, err := SweepBoard("GTX 480", benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := SweepBoardParallel("GTX 480", benches, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel sweep differs from sequential", workers)
		}
	}
}

// TestSweepBoardsMatchesPerBoardSweeps: the full-width (board, benchmark)
// grid pool must reproduce the per-board sequential sweeps exactly.
func TestSweepBoardsMatchesPerBoardSweeps(t *testing.T) {
	benches := sweepSet(t, 3)
	boards := []string{"GTX 285", "GTX 680"}
	got, err := SweepBoards(boards, benches, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, board := range boards {
		want, err := SweepBoard(board, benches, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[board], want) {
			t.Fatalf("%s: grid-pool sweep differs from sequential per-board sweep", board)
		}
	}
}

// TestSweepBatchedColdCacheWorkers8 pins the batched fast path under
// maximum concurrency from a cold cache: eight workers sweep a
// multi-board grid, each job batch-filling the freshly emptied shared LRU
// through PrecomputePairs while the others read it concurrently. The
// results must be deeply identical to a sequential cold-cache sweep —
// under -race this is also the data-race check on the sharded cache's
// batch operations.
func TestSweepBatchedColdCacheWorkers8(t *testing.T) {
	benches := sweepSet(t, 4)
	boards := []string{"GTX 480", "GTX 680", "GTX 285"}

	restore := driver.PushSharedLaunchCache(driver.NewLaunchCache(driver.DefaultSharedLaunchCacheEntries))
	want, err := SweepBoards(boards, benches, 42, 1)
	restore()
	if err != nil {
		t.Fatal(err)
	}

	defer driver.PushSharedLaunchCache(driver.NewLaunchCache(driver.DefaultSharedLaunchCacheEntries))()
	got, err := SweepBoards(boards, benches, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("workers=8 cold-cache batched sweep differs from sequential cold-cache sweep")
	}
}

// TestSweepPoolErrorPath: a failing job mid-grid must surface the
// lowest-index error, and every worker must exit (the leak-proofing the
// core collector needed, checked here on the sweep pool).
func TestSweepPoolErrorPath(t *testing.T) {
	benches := sweepSet(t, 3)
	before := runtime.NumGoroutine()
	// Board #2 of 3 is bogus: jobs 3..5 fail; job 3 is the lowest.
	_, err := SweepBoards([]string{"GTX 480", "no such board", "also bogus"}, benches, 42, 4)
	if err == nil {
		t.Fatal("unknown board did not surface an error")
	}
	if !strings.Contains(err.Error(), "no such board") {
		t.Errorf("reported %q, want the lowest-index failure (board \"no such board\")", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines after the failed sweep, started with %d — workers leaked", got, before)
	}
}

// TestSweepBoardParallelOverwidePool: worker counts past the job count
// must clamp rather than spin up idle goroutines or deadlock.
func TestSweepBoardParallelOverwidePool(t *testing.T) {
	benches := sweepSet(t, 2)
	want, err := SweepBoard("GTX 460", benches, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepBoardParallel("GTX 460", benches, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("overwide pool changed the sweep results")
	}
}
