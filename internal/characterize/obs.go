package characterize

import (
	"strconv"

	"gpuperf/internal/obs"
)

// sweepObs bundles one sweep job's metric handles; nil (the default) means
// the sweep is unobserved and instrumented paths pay a pointer check.
type sweepObs struct {
	cells       *obs.Counter
	quarantined *obs.CounterVec
	journalHits *obs.Counter
	simUS       *obs.Counter
}

// newSweepObs registers the per-board sweep metrics.
func newSweepObs(rec *obs.Recorder, board string) *sweepObs {
	if rec == nil {
		return nil
	}
	reg := rec.Metrics()
	bl := obs.L("board", board)
	// Zero base series so the quarantine family shows up (at 0) in clean
	// campaigns too.
	reg.Counter("characterize_cells_quarantined_total", "cells quarantined, by blamed fault point", bl)
	return &sweepObs{
		cells:       reg.Counter("characterize_cells_total", "sweep cells measured", bl),
		quarantined: reg.CounterVec("characterize_cells_quarantined_total", "cells quarantined, by blamed fault point", "point", bl),
		journalHits: reg.Counter("characterize_journal_hits_total", "cells replayed from the checkpoint journal", bl),
		simUS:       reg.Counter("characterize_sim_microseconds_total", "virtual sweep time accumulated", bl),
	}
}

// observePool records the sweep pool width gauge.
func observePool(rec *obs.Recorder, workers int) {
	if rec == nil {
		return
	}
	rec.Metrics().Gauge("characterize_pool_workers", "sweep worker pool width").Set(int64(workers))
}

// trackName names one sweep job's virtual timeline. The prefix groups a
// campaign phase's tracks together in the sorted export layout; later
// repetitions get their own track namespace while repetition 0 keeps the
// single-run names, so single-run trace goldens are unaffected.
func (o *SweepOptions) trackName(board, bench string) string {
	prefix := o.TrackPrefix
	if prefix == "" {
		prefix = "sweep"
	}
	if o.Rep > 0 {
		prefix = "rep" + strconv.Itoa(o.Rep) + "/" + prefix
	}
	return prefix + "/" + board + "/" + bench
}
