package characterize

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

func objResult() *BenchResult {
	return &BenchResult{
		Benchmark: "x",
		Pairs: []PairResult{
			{Pair: clock.DefaultPair(), TimePerIter: 1.0, EnergyPerIter: 200},                                // fast, hungry
			{Pair: clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh}, TimePerIter: 1.3, EnergyPerIter: 140}, // slow, frugal
			{Pair: clock.Pair{Core: arch.FreqMid, Mem: arch.FreqMid}, TimePerIter: 1.1, EnergyPerIter: 160},  // middle
		},
	}
}

func TestObjectiveString(t *testing.T) {
	cases := map[Objective]string{
		MinEnergy: "energy", MinEDP: "EDP", MinED2P: "ED2P", MinTime: "time",
		Objective(9): "Objective(9)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestBestByObjectives(t *testing.T) {
	r := objResult()
	// Energy: (M-H) wins (140 J).
	if got := r.BestBy(MinEnergy).Pair; got != (clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh}) {
		t.Errorf("MinEnergy best = %s", got)
	}
	// Time: (H-H) wins.
	if got := r.BestBy(MinTime).Pair; got != clock.DefaultPair() {
		t.Errorf("MinTime best = %s", got)
	}
	// EDP: 200, 182, 176 → (M-M) wins.
	if got := r.BestBy(MinEDP).Pair; got != (clock.Pair{Core: arch.FreqMid, Mem: arch.FreqMid}) {
		t.Errorf("MinEDP best = %s", got)
	}
	// ED2P: 200, 236.6, 193.6 → (M-M) wins.
	if got := r.BestBy(MinED2P).Pair; got != (clock.Pair{Core: arch.FreqMid, Mem: arch.FreqMid}) {
		t.Errorf("MinED2P best = %s", got)
	}
}

func TestBestByMatchesBestForEnergy(t *testing.T) {
	r := objResult()
	if r.BestBy(MinEnergy).Pair != r.Best().Pair {
		t.Error("BestBy(MinEnergy) should agree with Best()")
	}
	var empty BenchResult
	if empty.BestBy(MinEDP) != nil {
		t.Error("BestBy on empty result should be nil")
	}
}

func TestObjectiveOrderingOnRealSweep(t *testing.T) {
	// On a real sweep, the time objective never picks a slower pair than
	// the energy objective, and EDP sits between them.
	r := sweepOne(t, "GTX 680", "gaussian")
	tTime := r.BestBy(MinTime).TimePerIter
	tEDP := r.BestBy(MinEDP).TimePerIter
	tEnergy := r.BestBy(MinEnergy).TimePerIter
	if tTime > tEDP+1e-12 || tEDP > tEnergy+1e-12 {
		t.Errorf("objective ordering violated: time %.4g, EDP %.4g, energy %.4g", tTime, tEDP, tEnergy)
	}
}
