package characterize

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// recordingSink captures the row stream for comparison against the
// materialized sweep result.
type recordingSink struct {
	mu      sync.Mutex
	rows    []Row
	benches []*BenchResult
}

func (s *recordingSink) ConsumeRow(r Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, r)
}

func (s *recordingSink) ConsumeBench(b *BenchResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.benches = append(s.benches, b)
}

// TestSweepSinkMatchesResults: Sweep is a fold over the row stream, so
// the stream a chained sink observes must carry exactly the cells of the
// returned result map — same pairs, same values, one BenchResult per
// (board, benchmark) job.
func TestSweepSinkMatchesResults(t *testing.T) {
	benches := sweepSet(t, 3)
	boards := []string{"GTX 680", "GTX 285"}
	sink := &recordingSink{}
	got, err := Sweep(context.Background(), boards, benches,
		SweepOptions{Seed: 42, Workers: 4, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 0
	for _, board := range boards {
		for bi, b := range benches {
			r := got[board][bi]
			wantRows += len(r.Pairs)
			// The streamed BenchResult for this job is the same object the
			// result map holds (ownership transfers through the fold).
			found := false
			for _, sb := range sink.benches {
				if sb == r {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s/%s: streamed BenchResult is not the returned one", board, b.Name)
			}
		}
	}
	if len(sink.rows) != wantRows {
		t.Fatalf("sink saw %d rows, results hold %d cells", len(sink.rows), wantRows)
	}
	if len(sink.benches) != len(boards)*len(benches) {
		t.Fatalf("sink saw %d bench results, want %d", len(sink.benches), len(boards)*len(benches))
	}
	for _, row := range sink.rows {
		bi := -1
		for i, b := range benches {
			if b.Name == row.Bench {
				bi = i
			}
		}
		if bi < 0 {
			t.Fatalf("row for unknown bench %q", row.Bench)
		}
		cell := got[row.Board][bi].ByPair(row.Result.Pair)
		if cell == nil || !reflect.DeepEqual(*cell, row.Result) {
			t.Fatalf("%s/%s %s: streamed row differs from result cell", row.Board, row.Bench, row.Result.Pair)
		}
	}
}

// TestSweepStreamMatchesSweep: the sink-only pipeline and the
// materializing wrapper observe identical streams at any worker count —
// row content is a pure function of (seed, board, bench, pair).
func TestSweepStreamMatchesSweep(t *testing.T) {
	benches := sweepSet(t, 3)
	boards := []string{"GTX 480", "GTX 680"}

	ref := &recordingSink{}
	if _, err := Sweep(context.Background(), boards, benches,
		SweepOptions{Seed: 42, Workers: 1, Sink: ref}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		sink := &recordingSink{}
		err := SweepStream(context.Background(), boards, benches,
			SweepOptions{Seed: 42, Workers: workers, Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortRows(sink.rows), sortRows(ref.rows)) {
			t.Fatalf("workers=%d: SweepStream rows differ from Sweep rows", workers)
		}
	}
}

func sortRows(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Board != out[b].Board {
			return out[a].Board < out[b].Board
		}
		if out[a].Bench != out[b].Bench {
			return out[a].Bench < out[b].Bench
		}
		return out[a].Result.Pair.String() < out[b].Result.Pair.String()
	})
	return out
}
