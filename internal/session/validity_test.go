package session

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"gpuperf/internal/obs"
	"gpuperf/internal/workloads"
)

// TestSessionCohortIdentityAndValidation: the session stamps one cohort
// from its resolved configuration, NewTriage inherits the repetition
// policy, and an out-of-range publishability floor is rejected at Open.
func TestSessionCohortIdentityAndValidation(t *testing.T) {
	s := open(t, WithBoards("GTX 480"), WithRepetitions(3), WithMinValid(2), WithCodeVersion("test"))
	c := s.Cohort()
	if c.Seed != 42 || !reflect.DeepEqual(c.Boards, []string{"GTX 480"}) || c.Profile != "" || c.CodeVersion != "test" {
		t.Errorf("cohort = %+v", c)
	}
	if h := c.Hash(); len(h) != 16 {
		t.Errorf("cohort hash %q not 16 hex chars", h)
	}
	if got := s.NewTriage().MinValid(); got != 2 {
		t.Errorf("triage MinValid = %d, want 2", got)
	}

	if _, err := New(WithRepetitions(2), WithMinValid(3)); err == nil {
		t.Error("min-valid above repetitions accepted")
	}
	if _, err := New(WithMinValid(-1)); err == nil {
		t.Error("negative min-valid accepted")
	}
}

// TestSessionCohortStampedIntoMetrics: an instrumented session exposes
// the campaign_cohort_info gauge carrying the cohort hash and code
// version, so every recorded artifact names the campaign it measured.
func TestSessionCohortStampedIntoMetrics(t *testing.T) {
	rec := obs.New()
	s := open(t, WithBoards("GTX 480"), WithObs(rec), WithCodeVersion("testver"))
	var buf bytes.Buffer
	if err := rec.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "campaign_cohort_info") {
		t.Fatalf("exposition missing campaign_cohort_info:\n%s", out)
	}
	if !strings.Contains(out, s.Cohort().Hash()) || !strings.Contains(out, "testver") {
		t.Errorf("cohort labels missing from exposition:\n%s", out)
	}
}

// TestSessionRepeatRepZeroMatchesSweep: repetition 0 of Repeat is
// bit-identical to a plain Sweep (including the attached run verdicts),
// and later repetitions draw independent measurement noise.
func TestSessionRepeatRepZeroMatchesSweep(t *testing.T) {
	benches := workloads.Table4()[:2]
	ctx := context.Background()

	s := open(t, WithBoards("GTX 480"), WithRepetitions(2), WithCodeVersion("test"))
	reps, err := s.Repeat(ctx, benches)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d repetitions, want 2", len(reps))
	}

	single, err := s.Sweep(ctx, benches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reps[0], single) {
		t.Error("repetition 0 is not bit-identical to a plain Sweep")
	}

	differ := false
	for i := range single["GTX 480"] {
		for pi := range single["GTX 480"][i].Pairs {
			if reps[1]["GTX 480"][i].Pairs[pi].AvgWatts != single["GTX 480"][i].Pairs[pi].AvgWatts {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("repetition 1 is bit-identical to repetition 0: repetition seeds are not independent")
	}
}
