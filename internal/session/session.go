// Package session is the campaign engine's front door: one Session owns
// the full measurement-stack construction — board resolution, the fault
// retry policy, the checkpoint journal, the launch-cache mode, the
// observability recorder — and exposes the context-aware campaign
// methods (Sweep, Collect, Model, Reproduce) every front end drives.
//
// The CLI commands build a Session from their shared flag block
// (internal/cliflags) and the root package re-exports it as
// gpuperf.Session; a future serving layer would hold many of them, one
// per concurrent campaign.
//
// Construction graph and ownership:
//
//	Config ──► New ──► Session
//	                    ├── boards    resolved arch.Specs (validated once)
//	                    ├── res       *fault.Resilience — campaign, retry
//	                    │             budget, watchdog, obs hook (nil when
//	                    │             no faults/checkpoint/obs configured)
//	                    ├── journal   *characterize.Journal — opened from
//	                    │             Config.Checkpoint, closed by Close
//	                    └── cache     launch-cache mode, pushed at New and
//	                                  restored by Close
//
// Everything a Session builds it also owns: Close releases the journal
// and the cache toggle exactly once, and the campaign methods only
// borrow. reproduce.RunContext receives the session's journal through
// reproduce.Options.Journal precisely so the file is never double-opened.
//
// Cancellation contract: every campaign method takes a context and
// checks it at cell boundaries — one (board, benchmark, pair)
// measurement for sweeps, one profiling/observation pass for collects,
// one forward-selection step for training. A single CancelFunc therefore
// aborts a full multi-board campaign within one in-flight cell per
// worker; the error wraps context.Cause(ctx), and a configured journal
// is left resumable — rerunning the same Session configuration replays
// the completed cells and yields byte-identical results.
package session

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/fleet"
	"gpuperf/internal/obs"
	"gpuperf/internal/reproduce"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

// Config is the single knob set every campaign front end shares. The
// zero value is not ready to use — build one with DefaultConfig (or New,
// which applies the functional options on top of the defaults).
type Config struct {
	// Seed drives every noise and fault stream; campaigns are a pure
	// function of it.
	Seed int64
	// Workers bounds the sweep/collect pools (0 or negative means
	// GOMAXPROCS); 1 is the bit-exact sequential reference and the output
	// is identical at any width.
	Workers int
	// Boards restricts the campaign (empty: the paper's four boards).
	Boards []string
	// MaxVars caps the models' explanatory variables (0: the paper's 10).
	MaxVars int

	// Faults, when non-nil, runs campaigns under fault injection with
	// MaxRetries/LaunchTimeout as the retry/watchdog policy.
	Faults        *fault.Profile
	MaxRetries    int
	LaunchTimeout time.Duration
	// Checkpoint, when set, journals completed sweep cells to this path
	// and resumes from it.
	Checkpoint string
	// Obs, when non-nil, records spans, events and metrics for the whole
	// session.
	Obs *obs.Recorder
	// Cache enables launch memoization (DefaultConfig turns it on; false
	// is the uncached reference mode — output is identical either way).
	Cache bool
	// ArtifactsDir, when set, receives Reproduce's per-table/figure files.
	ArtifactsDir string

	// Repetitions is the campaign's repetition-cohort size (0 or 1: the
	// classic single run). Repetition 0 is bit-identical to a single run;
	// later repetitions draw independent noise and fault streams, and the
	// triage engine gates publishability on cross-repetition agreement.
	Repetitions int
	// MinValid is the publishability floor: a cell needs at least this
	// many valid repetitions (0: all of them).
	MinValid int
	// TriageOut, when set, writes the machine-readable triage report
	// (reports/baseline.json) to this path after Reproduce.
	TriageOut string
	// CodeVersion overrides the cohort's code-version stamp; empty
	// resolves the running binary's VCS revision (or "unknown").
	CodeVersion string

	// PowerFanout, when non-nil, receives live scope-tagged power samples
	// from every metered run of the session's campaigns (see
	// driver.PowerFanout) — the hook a serving daemon's collector uses.
	// Live-only: it never changes measurements or artifacts.
	PowerFanout driver.PowerFanout
	// TrackPrefix namespaces the session's sweep track names (e.g.
	// "campaign/3"), so many sessions can share one recorder without
	// track collisions. Empty keeps the engine default ("sweep").
	TrackPrefix string

	// FleetSize, when ≥ 1, turns the session into a fleet campaign: the
	// Boards become the base population and the Fleet method sweeps
	// FleetSize jittered devices. 0 is the classic four-board session.
	FleetSize int
	// FleetShards partitions fleet devices across shard pipelines, each
	// with its own checkpoint journal (<Checkpoint>.shard<N>). The report
	// does not depend on it; 0 means 1.
	FleetShards int
	// FleetJitter selects the per-device spread: a preset name or a
	// "key:fraction" list (see fleet.ParseJitterProfile). Empty is the
	// default profile.
	FleetJitter string
}

// DefaultConfig mirrors the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Seed:          42,
		Workers:       runtime.GOMAXPROCS(0),
		MaxVars:       core.MaxVariables,
		MaxRetries:    fault.DefaultMaxRetries,
		LaunchTimeout: fault.DefaultLaunchTimeout,
		Cache:         true,
	}
}

// Option mutates a Config during New.
type Option func(*Config)

// WithSeed sets the campaign seed.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithWorkers bounds the worker pools; 1 is the bit-exact sequential
// reference (results are identical at any width).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithBoards restricts the session to the named boards.
func WithBoards(names ...string) Option {
	return func(c *Config) { c.Boards = append([]string(nil), names...) }
}

// WithMaxVars caps the models' explanatory variables.
func WithMaxVars(n int) Option { return func(c *Config) { c.MaxVars = n } }

// WithFaults runs the session's campaigns under a fault-injection
// profile.
func WithFaults(p *fault.Profile) Option { return func(c *Config) { c.Faults = p } }

// WithRetryPolicy sets the transient-fault retry budget and the per-run
// watchdog deadline.
func WithRetryPolicy(maxRetries int, launchTimeout time.Duration) Option {
	return func(c *Config) {
		c.MaxRetries = maxRetries
		c.LaunchTimeout = launchTimeout
	}
}

// WithCheckpoint journals completed sweep cells to path and resumes from
// it.
func WithCheckpoint(path string) Option { return func(c *Config) { c.Checkpoint = path } }

// WithObs attaches an observability recorder to the session.
func WithObs(rec *obs.Recorder) Option { return func(c *Config) { c.Obs = rec } }

// WithCache toggles launch memoization (false is the uncached reference
// mode; output is identical either way).
func WithCache(enabled bool) Option { return func(c *Config) { c.Cache = enabled } }

// WithArtifactsDir routes Reproduce's per-table/figure files to dir.
func WithArtifactsDir(dir string) Option { return func(c *Config) { c.ArtifactsDir = dir } }

// WithRepetitions sets the repetition-cohort size (see Config.Repetitions).
func WithRepetitions(n int) Option { return func(c *Config) { c.Repetitions = n } }

// WithMinValid sets the publishability floor in valid repetitions per
// cell (0: every repetition must be valid).
func WithMinValid(n int) Option { return func(c *Config) { c.MinValid = n } }

// WithTriageOut writes the machine-readable triage report to path after
// Reproduce.
func WithTriageOut(path string) Option { return func(c *Config) { c.TriageOut = path } }

// WithCodeVersion pins the cohort's code-version stamp (tests mostly).
func WithCodeVersion(v string) Option { return func(c *Config) { c.CodeVersion = v } }

// WithPowerFanout attaches a live scope-tagged power-sample sink to every
// metered run of the session's campaigns.
func WithPowerFanout(f driver.PowerFanout) Option {
	return func(c *Config) { c.PowerFanout = f }
}

// WithTrackPrefix namespaces the session's sweep track names (see
// Config.TrackPrefix).
// WithFleet configures a fleet campaign: size jittered devices over the
// session's boards, swept across shards pipelines.
func WithFleet(size, shards int, jitter string) Option {
	return func(c *Config) {
		c.FleetSize = size
		c.FleetShards = shards
		c.FleetJitter = jitter
	}
}

func WithTrackPrefix(prefix string) Option {
	return func(c *Config) { c.TrackPrefix = prefix }
}

// Session owns one campaign stack. Build with New, release with Close.
// A Session is safe for concurrent campaign calls — the engines share no
// mutable state beyond the session's own resilience policy and journal,
// which are designed for pool-wide use.
type Session struct {
	cfg     Config
	boards  []*arch.Spec
	cohort  validity.Cohort
	res     *fault.Resilience
	journal *characterize.Journal

	// Fleet mode (cfg.FleetSize ≥ 1): the parsed jitter profile and the
	// per-shard progress tracker, sized at Open so a serving layer can
	// poll shard progress while Fleet runs.
	fleetJitter  fleet.JitterProfile
	fleetTracker *fleet.Tracker

	restoreCache func()
	closed       bool

	// Progress introspection (see Progress): planned is accumulated when a
	// sweep starts, the others by the engine's per-cell hook. Atomics so a
	// serving layer can poll them while the campaign runs.
	planned     atomic.Int64
	done        atomic.Int64
	replayed    atomic.Int64
	quarantined atomic.Int64
}

// Progress is a point-in-time view of the session's sweep progress,
// readable concurrently with a running campaign.
type Progress struct {
	// Planned is the total number of (board, benchmark, pair, repetition)
	// cells the session's sweeps set out to measure.
	Planned int64 `json:"planned"`
	// Done counts resolved cells — measured, replayed or quarantined.
	Done int64 `json:"done"`
	// Replayed counts cells satisfied from the checkpoint journal.
	Replayed int64 `json:"replayed"`
	// Quarantined counts cells that exhausted their retry budget.
	Quarantined int64 `json:"quarantined"`
}

// Progress returns the session's current sweep progress. Safe to call
// from any goroutine while campaigns run.
func (s *Session) Progress() Progress {
	return Progress{
		Planned:     s.planned.Load(),
		Done:        s.done.Load(),
		Replayed:    s.replayed.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// onCell is the engine hook feeding the progress counters.
func (s *Session) onCell(_, _ string, pr characterize.PairResult, replayed bool) {
	s.done.Add(1)
	if replayed {
		s.replayed.Add(1)
	}
	if pr.Quarantined {
		s.quarantined.Add(1)
	}
}

// plan accounts a sweep's cell total before it starts: every valid pair
// of every board, per benchmark, per repetition.
func (s *Session) plan(boardNames []string, nBenches, reps int) {
	if reps < 1 {
		reps = 1
	}
	var cells int64
	for _, name := range boardNames {
		if spec := arch.BoardByName(name); spec != nil {
			cells += int64(len(clock.ValidPairs(spec)))
		}
	}
	s.planned.Add(cells * int64(nBenches) * int64(reps))
}

// New validates the options, resolves the board set, builds the fault
// harness and journal, and pins the launch-cache mode. Callers must
// Close the session to release the journal and restore the cache toggle.
func New(options ...Option) (*Session, error) {
	cfg := DefaultConfig()
	for _, opt := range options {
		opt(&cfg)
	}
	return Open(cfg)
}

// Open is New for callers that already hold a Config (the cliflags
// translation path).
func Open(cfg Config) (*Session, error) {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxVars <= 0 {
		cfg.MaxVars = core.MaxVariables
	}
	if err := fault.ValidateHarness(cfg.Workers, cfg.MaxRetries, cfg.LaunchTimeout); err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	boards, err := resolveBoards(cfg.Boards)
	if err != nil {
		return nil, err
	}
	if cfg.Repetitions < 1 {
		cfg.Repetitions = 1
	}
	if cfg.MinValid < 0 || cfg.MinValid > cfg.Repetitions {
		return nil, fmt.Errorf("session: min-valid %d outside [0, repetitions=%d]", cfg.MinValid, cfg.Repetitions)
	}
	if cfg.CodeVersion == "" {
		cfg.CodeVersion = validity.ResolveCodeVersion()
	}
	s := &Session{cfg: cfg, boards: boards}
	if cfg.FleetSize < 0 {
		return nil, fmt.Errorf("session: fleet size %d < 0", cfg.FleetSize)
	}
	if cfg.FleetSize == 0 && (cfg.FleetShards > 1 || cfg.FleetJitter != "") {
		return nil, fmt.Errorf("session: fleet shards/jitter configured without a fleet size")
	}
	if cfg.FleetSize >= 1 {
		jit, err := fleet.ParseJitterProfile(cfg.FleetJitter)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		s.fleetJitter = jit
		s.fleetTracker = fleet.NewTracker(fleet.ClampShards(cfg.FleetShards, cfg.FleetSize))
	}
	spec := ""
	if cfg.Faults != nil {
		spec = cfg.Faults.String()
	}
	s.cohort = validity.Cohort{
		Seed:        cfg.Seed,
		Boards:      s.BoardNames(),
		Profile:     spec,
		CodeVersion: cfg.CodeVersion,
	}

	// The harness engages when a fault profile, a checkpoint or a recorder
	// is configured; a checkpoint or recorder without faults runs a
	// fault-free campaign through the same engine configuration.
	if cfg.Faults != nil || cfg.Checkpoint != "" || cfg.Obs != nil {
		s.res = &fault.Resilience{
			Campaign:      &fault.Campaign{Profile: cfg.Faults, Seed: cfg.Seed},
			MaxRetries:    cfg.MaxRetries,
			LaunchTimeout: cfg.LaunchTimeout,
			Obs:           cfg.Obs,
		}
		s.res.Observe()
	}
	if cfg.Checkpoint != "" && cfg.FleetSize < 1 {
		// The journal is bound to the full cohort: resuming under any other
		// configuration is a hard *characterize.CohortMismatchError, with
		// the journal preserved on disk. Fleet campaigns skip this: the
		// orchestrator owns per-shard journals under the fleet cohort.
		j, err := characterize.OpenJournalCohort(cfg.Checkpoint, characterize.JournalConfig{Cohort: s.cohort})
		if err != nil {
			return nil, err
		}
		s.journal = j
	}
	if cfg.Obs != nil {
		// Stamp the cohort identity into the metrics exposition so every
		// recorded artifact names the campaign it measured.
		cfg.Obs.Metrics().Gauge("campaign_cohort_info",
			"campaign cohort identity (value is always 1; identity is in the labels)",
			obs.L("cohort", s.cohort.Hash()),
			obs.L("code_version", cfg.CodeVersion)).Set(1)
	}
	s.restoreCache = driver.PushLaunchCachingEnabled(cfg.Cache)
	return s, nil
}

func resolveBoards(names []string) ([]*arch.Spec, error) {
	if len(names) == 0 {
		return arch.AllBoards(), nil
	}
	out := make([]*arch.Spec, 0, len(names))
	for _, n := range names {
		spec := arch.BoardByName(n)
		if spec == nil {
			return nil, fmt.Errorf("session: unknown board %q", n)
		}
		out = append(out, spec)
	}
	return out, nil
}

// Close releases what New built: the checkpoint journal and the pinned
// launch-cache mode. Safe to call more than once.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.journal != nil {
		err = s.journal.Close()
	}
	if s.restoreCache != nil {
		s.restoreCache()
	}
	return err
}

// Config returns a copy of the session's resolved configuration.
func (s *Session) Config() Config { return s.cfg }

// Boards returns the session's resolved board specs, in campaign order.
func (s *Session) Boards() []*arch.Spec {
	return append([]*arch.Spec(nil), s.boards...)
}

// BoardNames returns the resolved board names, in campaign order.
func (s *Session) BoardNames() []string {
	names := make([]string, len(s.boards))
	for i, spec := range s.boards {
		names[i] = spec.Name
	}
	return names
}

// Journal exposes the session's checkpoint journal (nil when no
// checkpoint is configured) — owned by the session; do not Close it.
func (s *Session) Journal() *characterize.Journal { return s.journal }

// Cohort returns the session's campaign identity — the configuration
// every journal header, triage report and metrics exposition is bound to.
func (s *Session) Cohort() validity.Cohort { return s.cohort }

// NewTriage builds a triage engine bound to the session's cohort and
// repetition policy. Each campaign should finalize exactly one triage.
func (s *Session) NewTriage() *validity.Triage {
	return validity.NewTriage(s.cohort, s.cfg.Repetitions, s.cfg.MinValid, 0)
}

// sweepOptions assembles the engine options shared by every sweep. An
// empty trackPrefix falls back to the session's configured prefix.
func (s *Session) sweepOptions(trackPrefix string) characterize.SweepOptions {
	if trackPrefix == "" {
		trackPrefix = s.cfg.TrackPrefix
	}
	return characterize.SweepOptions{
		Seed:        s.cfg.Seed,
		Workers:     s.cfg.Workers,
		Res:         s.res,
		Journal:     s.journal,
		Obs:         s.cfg.Obs,
		TrackPrefix: trackPrefix,
		Fanout:      s.cfg.PowerFanout,
		OnCell:      s.onCell,
	}
}

// Sweep runs the benches over every session board through the unified
// engine — one shared pool over (board, benchmark) jobs, results indexed
// [board][benchmark]. Cancelling ctx aborts within one cell per worker.
//
//gpulint:deterministic
func (s *Session) Sweep(ctx context.Context, benches []*workloads.Benchmark) (map[string][]*characterize.BenchResult, error) {
	s.plan(s.BoardNames(), len(benches), 1)
	return characterize.Sweep(ctx, s.BoardNames(), benches, s.sweepOptions(""))
}

// Repeat runs the session's repetition cohort: Config.Repetitions sweeps
// of the benches over every session board, one result map per
// repetition. Repetition 0 is bit-identical to Sweep; later repetitions
// draw independent noise and fault streams (and share the launch cache,
// so the marginal cost of a repetition is metering, not simulation).
// Feed the result to a triage engine with characterize.ObserveTriageReps.
func (s *Session) Repeat(ctx context.Context, benches []*workloads.Benchmark) ([]map[string][]*characterize.BenchResult, error) {
	s.plan(s.BoardNames(), len(benches), s.cfg.Repetitions)
	return characterize.SweepReps(ctx, s.BoardNames(), benches, s.sweepOptions(""), s.cfg.Repetitions)
}

// Fleet runs the session's fleet campaign: Config.FleetSize jittered
// devices over the session boards, partitioned across
// Config.FleetShards shard pipelines and folded into one associative
// aggregate. The report is byte-identical at a fixed seed for any shard
// and worker count. Requires Config.FleetSize ≥ 1.
//
//gpulint:deterministic
func (s *Session) Fleet(ctx context.Context, benches []*workloads.Benchmark) (*fleet.Report, error) {
	if s.cfg.FleetSize < 1 {
		return nil, fmt.Errorf("session: Fleet called without a fleet size (WithFleet)")
	}
	s.planFleet(len(benches))
	faultSpec := ""
	if s.cfg.Faults != nil {
		faultSpec = s.cfg.Faults.String()
	}
	return fleet.Run(ctx, fleet.Options{
		Seed:         s.cfg.Seed,
		Size:         s.cfg.FleetSize,
		Shards:       s.cfg.FleetShards,
		Workers:      s.cfg.Workers,
		Jitter:       s.fleetJitter,
		BaseBoards:   s.BoardNames(),
		Benches:      benches,
		Checkpoint:   s.cfg.Checkpoint,
		Res:          s.res,
		FaultProfile: faultSpec,
		Obs:          s.cfg.Obs,
		TrackPrefix:  s.cfg.TrackPrefix,
		CodeVersion:  s.cfg.CodeVersion,
		Tracker:      s.fleetTracker,
		OnCell: func(_ int, row characterize.Row) {
			s.onCell(row.Board, row.Bench, row.Result, row.Replayed)
		},
	})
}

// planFleet accounts the fleet campaign's cell total into the session
// progress counters (jitter never changes a device's pair grid, so the
// base boards' grids are the per-device cell counts).
func (s *Session) planFleet(nBenches int) {
	names := s.BoardNames()
	var cells int64
	for i := 0; i < s.cfg.FleetSize; i++ {
		if spec := arch.BoardByName(names[i%len(names)]); spec != nil {
			cells += int64(len(clock.ValidPairs(spec)))
		}
	}
	s.planned.Add(cells * int64(nBenches))
}

// FleetProgress reports the per-shard progress of the session's fleet
// campaign; ok is false for classic (non-fleet) sessions. Safe to poll
// while Fleet runs.
func (s *Session) FleetProgress() ([]fleet.ShardProgress, bool) {
	if s.fleetTracker == nil {
		return nil, false
	}
	return s.fleetTracker.Snapshot(), true
}

// SweepBoard sweeps one board's benchmarks; the board need not be in the
// session's resolved set.
func (s *Session) SweepBoard(ctx context.Context, boardName string, benches []*workloads.Benchmark) ([]*characterize.BenchResult, error) {
	s.plan([]string{boardName}, len(benches), 1)
	m, err := characterize.Sweep(ctx, []string{boardName}, benches, s.sweepOptions(""))
	if err != nil {
		return nil, err
	}
	return m[boardName], nil
}

// Collect builds one board's modeling dataset through the unified
// collection engine.
func (s *Session) Collect(ctx context.Context, boardName string, benches []*workloads.Benchmark) (*core.Dataset, error) {
	return core.CollectCtx(ctx, boardName, benches,
		core.CollectOptions{Seed: s.cfg.Seed, Workers: s.cfg.Workers, Res: s.res})
}

// Model trains a unified power or time model over a dataset with the
// session's variable cap, stopping at a selection-step boundary on
// cancel.
func (s *Session) Model(ctx context.Context, ds *core.Dataset, kind core.Kind) (*core.Model, error) {
	return core.TrainCtx(ctx, ds, kind, s.cfg.MaxVars)
}

// Device opens one board wired with the session's seed, fault campaign
// and recorder — the factory the interactive front ends (gpusim, sched)
// use so their measurements share the campaign configuration.
func (s *Session) Device(boardName string) (*driver.Device, error) {
	dev, err := driver.OpenBoardWithFaults(boardName, s.res.Injector("device|"+boardName, 0))
	if err != nil {
		return nil, err
	}
	dev.Seed(s.cfg.Seed)
	if s.cfg.Obs != nil {
		dev.Observe(s.cfg.Obs, "device/"+boardName)
	}
	dev.SetPowerFanout(s.cfg.PowerFanout)
	return dev, nil
}

// ReproduceOptions translates the session configuration into
// reproduce.Options — every section on, the session's journal lent via
// Options.Journal (reproduce then never reopens the checkpoint file).
func (s *Session) ReproduceOptions() reproduce.Options {
	opts := reproduce.DefaultOptions()
	opts.Seed = s.cfg.Seed
	opts.Workers = s.cfg.Workers
	opts.Boards = s.cfg.Boards
	opts.MaxVars = s.cfg.MaxVars
	opts.ArtifactsDir = s.cfg.ArtifactsDir
	opts.Faults = s.cfg.Faults
	opts.MaxRetries = s.cfg.MaxRetries
	opts.LaunchTimeout = s.cfg.LaunchTimeout
	opts.Journal = s.journal
	opts.Obs = s.cfg.Obs
	opts.Repetitions = s.cfg.Repetitions
	opts.MinValid = s.cfg.MinValid
	opts.TriageOut = s.cfg.TriageOut
	opts.CodeVersion = s.cfg.CodeVersion
	return opts
}

// Reproduce runs the full paper reproduction under the session
// configuration, writing the report to w. Tweaks adjust the section
// toggles (e.g. cmd/paper's -quick) before the run starts.
func (s *Session) Reproduce(ctx context.Context, w io.Writer, tweaks ...func(*reproduce.Options)) (*reproduce.Result, error) {
	opts := s.ReproduceOptions()
	for _, t := range tweaks {
		t(&opts)
	}
	return reproduce.RunContext(ctx, opts, w)
}
