package session

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/obs"
	"gpuperf/internal/power"
	"gpuperf/internal/workloads"
)

// sinkFanout is a concurrency-safe PowerFanout capturing per-device
// sample counts and scope sanity.
type sinkFanout struct {
	mu      sync.Mutex
	samples map[string]int
	bad     int // samples with a non-positive domain
}

func (f *sinkFanout) SamplePower(device string, scopes power.Breakdown) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.samples == nil {
		f.samples = map[string]int{}
	}
	f.samples[device]++
	if scopes.GPU <= 0 || scopes.Memory <= 0 {
		f.bad++
	}
}

// TestProgressTracksSweepCells: Progress() counts every planned cell as
// done once the sweep completes, and a resumed campaign reports the
// journal-replayed cells.
func TestProgressTracksSweepCells(t *testing.T) {
	benches := workloads.Table4()[:2]
	boards := []string{"GTX 480"}
	pairs := len(clock.ValidPairs(arch.BoardByName("GTX 480")))
	want := int64(pairs * len(benches))
	ckpt := filepath.Join(t.TempDir(), "ckpt.journal")

	s := open(t, WithBoards(boards...), WithWorkers(2), WithCheckpoint(ckpt))
	if p := s.Progress(); p != (Progress{}) {
		t.Fatalf("fresh session progress = %+v, want zeros", p)
	}
	if _, err := s.Sweep(context.Background(), benches); err != nil {
		t.Fatal(err)
	}
	p := s.Progress()
	if p.Planned != want || p.Done != want {
		t.Fatalf("progress = %+v, want planned=done=%d", p, want)
	}
	if p.Replayed != 0 || p.Quarantined != 0 {
		t.Fatalf("fault-free fresh run progress = %+v", p)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: every cell comes from the journal and counts as replayed.
	s2 := open(t, WithBoards(boards...), WithCheckpoint(ckpt))
	if _, err := s2.Sweep(context.Background(), benches); err != nil {
		t.Fatal(err)
	}
	p2 := s2.Progress()
	if p2.Done != want || p2.Replayed != want {
		t.Fatalf("resumed progress = %+v, want done=replayed=%d", p2, want)
	}
}

// TestSessionPowerFanoutReachesDevices: a configured PowerFanout
// receives scope-tagged samples from every board of a sweep, without
// perturbing results (byte-identity is pinned elsewhere; here we pin the
// plumbing and tag correctness).
func TestSessionPowerFanoutReachesDevices(t *testing.T) {
	benches := workloads.Table4()[:1]
	sink := &sinkFanout{}
	s := open(t, WithBoards("GTX 480", "GTX 680"), WithWorkers(2),
		WithObs(obs.New()), WithPowerFanout(sink), WithTrackPrefix("campaign/1"))
	res, err := s.Sweep(context.Background(), benches)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d boards", len(res))
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, b := range []string{"GTX 480", "GTX 680"} {
		if sink.samples[b] == 0 {
			t.Errorf("fanout saw no samples from %s", b)
		}
	}
	if sink.bad != 0 {
		t.Errorf("%d samples had a non-positive power domain", sink.bad)
	}
}
