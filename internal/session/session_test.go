package session

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuperf/internal/characterize"
	"gpuperf/internal/core"
	"gpuperf/internal/fault"
	"gpuperf/internal/reproduce"
	"gpuperf/internal/workloads"
)

func open(t *testing.T, options ...Option) *Session {
	t.Helper()
	s, err := New(options...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestDefaultsAndBoardResolution(t *testing.T) {
	s := open(t)
	if got := s.Config().Seed; got != 42 {
		t.Errorf("default seed = %d, want 42", got)
	}
	if got := len(s.Boards()); got != 4 {
		t.Errorf("default board count = %d, want the paper's 4", got)
	}

	s2 := open(t, WithBoards("GTX 480", "GTX 285"), WithSeed(7), WithWorkers(2))
	if got := s2.BoardNames(); !reflect.DeepEqual(got, []string{"GTX 480", "GTX 285"}) {
		t.Errorf("resolved boards = %v", got)
	}

	if _, err := New(WithBoards("Voodoo 2")); err == nil {
		t.Error("unknown board accepted")
	}
	if _, err := New(WithWorkers(5), WithRetryPolicy(-1, time.Second)); err == nil {
		t.Error("negative retry budget accepted")
	}
}

// TestSweepMatchesDeprecatedPath: the Session sweep must reproduce the
// deprecated per-board entry points bit-for-bit, at any worker count.
func TestSweepMatchesDeprecatedPath(t *testing.T) {
	benches := workloads.Table4()[:3]
	want, err := characterize.SweepBoard("GTX 480", benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		s := open(t, WithBoards("GTX 480"), WithWorkers(workers))
		got, err := s.SweepBoard(context.Background(), "GTX 480", benches)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: session sweep differs from the reference", workers)
		}
		m, err := s.Sweep(context.Background(), benches)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m["GTX 480"], want) {
			t.Fatalf("workers=%d: multi-board sweep differs from the reference", workers)
		}
	}
}

// TestCollectAndModelMatchReference: dataset and trained model through
// the Session equal the deprecated sequential path.
func TestCollectAndModelMatchReference(t *testing.T) {
	benches := workloads.ModelingSet()[:4]
	wantDS, err := core.Collect("GTX 480", benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := open(t, WithBoards("GTX 480"), WithWorkers(3))
	ds, err := s.Collect(context.Background(), "GTX 480", benches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, wantDS) {
		t.Fatal("session dataset differs from the sequential reference")
	}
	wantM, err := core.Train(wantDS, core.Power, core.MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Model(context.Background(), ds, core.Power)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, wantM) {
		t.Fatal("session model differs from core.Train")
	}
}

// TestJournalOwnership: the session opens the checkpoint journal, lends
// it to campaigns, and Close (idempotent) releases it exactly once.
func TestJournalOwnership(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s, err := New(WithBoards("GTX 480"), WithWorkers(1), WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	if s.Journal() == nil {
		t.Fatal("checkpointed session has no journal")
	}
	benches := workloads.Table4()[:2]
	if _, err := s.SweepBoard(context.Background(), "GTX 480", benches); err != nil {
		t.Fatal(err)
	}
	if got := s.Journal().Len(); got == 0 {
		t.Error("sweep recorded no cells in the session journal")
	}
	if opts := s.ReproduceOptions(); opts.Journal != s.Journal() {
		t.Error("ReproduceOptions does not lend the session journal")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file missing after Close: %v", err)
	}
}

// TestJournalResumeAfterCancel: a cancelled sweep leaves the journal
// resumable, and the resumed sweep replays the finished cells and ends
// bit-identical to an uninterrupted run.
func TestJournalResumeAfterCancel(t *testing.T) {
	benches := workloads.Table4()[:3]
	want, err := characterize.SweepBoard("GTX 480", benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	s1, err := New(WithBoards("GTX 480"), WithWorkers(1), WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	// The virtual clock makes sweeps too fast to cancel by wall time, so
	// trip the context deterministically partway through: Err turns
	// terminal after a fixed number of boundary checks.
	ctx := &cancelAfter{Context: context.Background(), after: 8}
	if _, err := s1.SweepBoard(ctx, "GTX 480", benches); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled in the chain", err)
	}
	done := s1.Journal().Len()
	var wantCells int
	for _, br := range want {
		wantCells += len(br.Pairs)
	}
	if done == 0 || done >= wantCells {
		t.Fatalf("journal has %d of %d cells after cancel, want a strict partial prefix", done, wantCells)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(WithBoards("GTX 480"), WithWorkers(1), WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.SweepBoard(context.Background(), "GTX 480", benches)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Journal().Hits() == 0 {
		t.Error("resumed sweep replayed no journal cells")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from an uninterrupted run")
	}
}

// TestPreCancelledContext: every campaign method refuses a dead context
// with the cause wrapped in its error.
func TestPreCancelledContext(t *testing.T) {
	s := open(t, WithBoards("GTX 480"), WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	benches := workloads.Table4()[:2]
	if _, err := s.Sweep(ctx, benches); !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep: %v", err)
	}
	if _, err := s.Collect(ctx, "GTX 480", workloads.ModelingSet()[:2]); !errors.Is(err, context.Canceled) {
		t.Errorf("Collect: %v", err)
	}
	var buf bytes.Buffer
	if _, err := s.Reproduce(ctx, &buf, reproduce.Quick); !errors.Is(err, context.Canceled) {
		t.Errorf("Reproduce: %v", err)
	}
}

// TestReproduceQuickMatchesPlainRun: the Session reproduction path must
// be byte-identical to the pre-session reproduce.Run entry point.
func TestReproduceQuickMatchesPlainRun(t *testing.T) {
	opts := reproduce.DefaultOptions()
	reproduce.Quick(&opts)
	var want bytes.Buffer
	if _, err := reproduce.Run(opts, &want); err != nil {
		t.Fatal(err)
	}
	s := open(t)
	var got bytes.Buffer
	if _, err := s.Reproduce(context.Background(), &got, reproduce.Quick); err != nil {
		t.Fatal(err)
	}
	if stripElapsed(got.String()) != stripElapsed(want.String()) {
		t.Fatal("session reproduction differs from reproduce.Run")
	}
}

// TestFaultySessionMatchesResilientPath: a fault-profile session must
// reproduce CollectResilient's dataset exactly.
func TestFaultySessionMatchesResilientPath(t *testing.T) {
	profile, err := fault.ParseProfile("boot.fail:0.2,meter.spike:0.1:500")
	if err != nil {
		t.Fatal(err)
	}
	benches := workloads.ModelingSet()[:3]
	res := &fault.Resilience{
		Campaign:      &fault.Campaign{Profile: profile, Seed: 42},
		MaxRetries:    fault.DefaultMaxRetries,
		LaunchTimeout: fault.DefaultLaunchTimeout,
	}
	want, err := core.CollectResilient("GTX 480", benches, 42, 2, res)
	if err != nil {
		t.Fatal(err)
	}
	s := open(t, WithBoards("GTX 480"), WithWorkers(2), WithFaults(profile))
	got, err := s.Collect(context.Background(), "GTX 480", benches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("faulty session dataset differs from CollectResilient")
	}
}

func TestDeviceFactory(t *testing.T) {
	s := open(t, WithSeed(7))
	dev, err := s.Device("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Spec().Name != "GTX 480" {
		t.Errorf("device spec = %q", dev.Spec().Name)
	}
	if _, err := s.Device("Voodoo 2"); err == nil {
		t.Error("unknown board opened")
	}
}

// cancelAfter is a context whose Err turns — and stays — non-nil after
// the n-th check: a deterministic mid-campaign cancel for the
// virtual-clock engine, where wall-clock cancellation would be a race.
// context.Cause falls back to Err for custom contexts, so the engines'
// wrapped cause is context.Canceled as for a real CancelFunc.
type cancelAfter struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (c *cancelAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// stripElapsed removes the wall-clock line, the only nondeterministic
// byte range in a report.
func stripElapsed(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "reproduction completed in ") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}
