package session

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"gpuperf/internal/workloads"
)

func TestOpenRejectsBadFleetConfig(t *testing.T) {
	cases := []Option{
		WithFleet(-1, 1, ""),
		WithFleet(0, 4, ""),      // shards without a fleet
		WithFleet(0, 1, "tight"), // jitter without a fleet
		WithFleet(10, 1, "corevolt:2"),
		WithFleet(10, 1, "bogus:0.1"),
	}
	for i, opt := range cases {
		if _, err := New(opt); err == nil {
			t.Errorf("case %d: bad fleet config accepted", i)
		}
	}
}

func TestSessionFleetCampaign(t *testing.T) {
	bench := workloads.ByName("backprop")
	if bench == nil {
		t.Fatal("backprop not registered")
	}
	var want []byte
	for _, shards := range []int{1, 3} {
		s, err := New(WithBoards("GTX 680"), WithWorkers(2), WithFleet(6, shards, "tight"))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Fleet(context.Background(), []*workloads.Benchmark{bench})
		if err != nil {
			t.Fatal(err)
		}
		prog := s.Progress()
		if prog.Done != rep.Cells || prog.Planned != rep.Cells {
			t.Errorf("shards=%d: progress done=%d planned=%d, report cells=%d",
				shards, prog.Done, prog.Planned, rep.Cells)
		}
		shardProg, ok := s.FleetProgress()
		if !ok || len(shardProg) != shards {
			t.Fatalf("shards=%d: FleetProgress = %v, %v", shards, shardProg, ok)
		}
		var cells int64
		for _, sp := range shardProg {
			cells += sp.CellsDone
		}
		if cells != rep.Cells {
			t.Errorf("shards=%d: shard cells %d != report cells %d", shards, cells, rep.Cells)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: session fleet report differs from shards=1", shards)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A classic session has no fleet progress and rejects Fleet.
	s, err := New(WithBoards("GTX 680"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.FleetProgress(); ok {
		t.Error("classic session reports fleet progress")
	}
	if _, err := s.Fleet(context.Background(), []*workloads.Benchmark{bench}); err == nil {
		t.Error("classic session accepted Fleet")
	}
}
