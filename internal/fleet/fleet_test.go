package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

func testBenches(t testing.TB, names ...string) []*workloads.Benchmark {
	t.Helper()
	out := make([]*workloads.Benchmark, 0, len(names))
	for _, n := range names {
		b := workloads.ByName(n)
		if b == nil {
			t.Fatalf("benchmark %q not registered", n)
		}
		out = append(out, b)
	}
	return out
}

func reportJSON(t testing.TB, r *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

func TestParseJitterProfile(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr string
	}{
		{in: "", want: DefaultJitter().String()},
		{in: "default", want: DefaultJitter().String()},
		{in: "none", want: JitterProfile{}.String()},
		{in: "corevolt:0.1,leak:0.2", want: "corevolt:0.1,memvolt:0,vexp:0,leak:0.2,meter:0"},
		{in: "bogus:0.1", wantErr: "unknown"},
		{in: "corevolt:0.1,corevolt:0.2", wantErr: "duplicate"},
		{in: "corevolt:nope", wantErr: "corevolt"},
		{in: "corevolt:1.5", wantErr: "[0, 1]"},
		{in: "corevolt:-0.1", wantErr: "[0, 1]"},
	}
	for _, c := range cases {
		p, err := ParseJitterProfile(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseJitterProfile(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseJitterProfile(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParseJitterProfile(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// The canonical string must round-trip.
		rt, err := ParseJitterProfile(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %q -> %q failed: %v", c.in, p.String(), err)
		}
	}
}

func TestFleetDeviceDeterminism(t *testing.T) {
	jit := DefaultJitter()
	a, err := New(42, nil, 64, jit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(42, nil, 64, jit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		da, db := a.Device(i), b.Device(i)
		if da.Name != db.Name || da.MeterGain != db.MeterGain || *da.Spec != *db.Spec {
			t.Fatalf("device %d differs between identical fleets", i)
		}
		idx, ok := DeviceIndex(da.Name)
		if !ok || idx != i {
			t.Fatalf("DeviceIndex(%q) = %d, %v; want %d, true", da.Name, idx, ok, i)
		}
		base := a.bases[i%len(a.bases)]
		if da.Spec.Name != da.Name {
			t.Fatalf("device %d spec name %q != device name %q", i, da.Spec.Name, da.Name)
		}
		// Jitter bounds: voltage endpoints within ±CoreVolt of base.
		r := da.Spec.CoreVoltHigh / base.CoreVoltHigh
		if math.Abs(r-1) > jit.CoreVolt+1e-9 {
			t.Fatalf("device %d core voltage jitter %.4f exceeds ±%.2f", i, r-1, jit.CoreVolt)
		}
		if math.Abs(da.MeterGain-1) > jit.Meter+1e-9 {
			t.Fatalf("device %d meter gain %.4f exceeds ±%.2f", i, da.MeterGain, jit.Meter)
		}
		// Frequencies are never jittered: the pair grid is the base's.
		if da.Spec.CoreFreqsMHz != base.CoreFreqsMHz || da.Spec.MemFreqsMHz != base.MemFreqsMHz {
			t.Fatalf("device %d clock grid differs from base", i)
		}
		if len(clock.ValidPairs(da.Spec)) != len(clock.ValidPairs(base)) {
			t.Fatalf("device %d pair grid differs from base", i)
		}
		if err := da.Spec.Validate(); err != nil {
			t.Fatalf("device %d spec invalid: %v", i, err)
		}
	}
	// Different seeds must diverge.
	c, err := New(43, nil, 64, jit)
	if err != nil {
		t.Fatal(err)
	}
	if a.Device(0).MeterGain == c.Device(0).MeterGain {
		t.Fatal("seed 42 and 43 generated identical device 0 gain")
	}
}

func TestZeroJitterMatchesBase(t *testing.T) {
	fl, err := New(42, []string{"GTX 680"}, 4, JitterProfile{})
	if err != nil {
		t.Fatal(err)
	}
	base := arch.BoardByName("GTX 680")
	for i := 0; i < 4; i++ {
		d := fl.Device(i)
		want := *base
		want.Name = d.Name
		if want.VoltExponent == 0 {
			want.VoltExponent = 1 // Device normalizes the linear-curve sentinel
		}
		if *d.Spec != want {
			t.Fatalf("zero-jitter device %d spec differs from base", i)
		}
		if d.MeterGain != 1 {
			t.Fatalf("zero-jitter device %d gain = %v, want 1", i, d.MeterGain)
		}
	}
}

// rowsForTesting builds a synthetic row stream: enough shape (multiple
// benches, pairs, devices, a quarantined cell) to exercise every fold.
func rowsForTesting(t *testing.T, n int) ([]characterize.Row, []*characterize.BenchResult) {
	t.Helper()
	fl, err := New(7, []string{"GTX 680", "GTX 480"}, n, DefaultJitter())
	if err != nil {
		t.Fatal(err)
	}
	var rows []characterize.Row
	var benches []*characterize.BenchResult
	for i := 0; i < n; i++ {
		d := fl.Device(i)
		pairs := clock.ValidPairs(d.Spec)
		for _, bench := range []string{"backprop", "hotspot"} {
			br := &characterize.BenchResult{Board: d.Name, Benchmark: bench}
			for pi, p := range pairs {
				pr := characterize.PairResult{
					Pair:          p,
					TimePerIter:   0.01 + float64((i*31+pi*7)%100)/1000,
					AvgWatts:      80 + float64((i*17+pi*13)%500)/10,
					EnergyPerIter: 1 + float64((i*5+pi*3)%200)/100,
				}
				if i == 1 && pi == 0 {
					pr = characterize.PairResult{Pair: p, Quarantined: true}
				}
				br.Pairs = append(br.Pairs, pr)
				rows = append(rows, characterize.Row{Board: d.Name, Bench: bench, Result: pr})
			}
			benches = append(benches, br)
		}
	}
	return rows, benches
}

func TestAggregateMergeAssociative(t *testing.T) {
	rows, benches := rowsForTesting(t, 9)
	fold := func(groups ...[]int) *Report {
		// Each group folds its device-index share into its own Aggregate;
		// the groups merge in the order given.
		parts := make([]*Aggregate, len(groups))
		for gi, g := range groups {
			parts[gi] = NewAggregate()
			own := make(map[int]bool)
			for _, i := range g {
				own[i] = true
			}
			for _, r := range rows {
				if idx, _ := DeviceIndex(r.Board); own[idx] {
					parts[gi].ConsumeRow(r)
				}
			}
			for _, b := range benches {
				if idx, _ := DeviceIndex(b.Board); own[idx] {
					parts[gi].ConsumeBench(b)
				}
			}
		}
		total := NewAggregate()
		for _, p := range parts {
			total.Merge(p)
		}
		return total.Finalize(7, 9, []string{"GTX 680", "GTX 480"}, DefaultJitter())
	}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	want := reportJSON(t, fold(all))
	groupings := [][][]int{
		{{0, 2, 4, 6, 8}, {1, 3, 5, 7}},
		{{8, 7, 6}, {5, 4, 3}, {2, 1, 0}},
		{{1}, {0}, {3}, {2}, {5}, {4}, {7}, {6}, {8}},
	}
	for gi, g := range groupings {
		if got := reportJSON(t, fold(g...)); !bytes.Equal(got, want) {
			t.Errorf("grouping %d produced a different report", gi)
		}
	}
}

func fleetOpts(size, shards int) Options {
	return Options{
		Seed:       42,
		Size:       size,
		Shards:     shards,
		Workers:    4,
		Jitter:     DefaultJitter(),
		BaseBoards: []string{"GTX 680", "GTX 480"},
	}
}

// TestShardCountByteIdentity pins the tentpole property: the fleet
// report at a fixed seed is byte-identical for shard counts 1, 2 and 8.
// CI runs this under -race.
func TestShardCountByteIdentity(t *testing.T) {
	benches := testBenches(t, "backprop")
	var want []byte
	for _, shards := range []int{1, 2, 8} {
		opts := fleetOpts(12, shards)
		opts.Benches = benches
		rep, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := reportJSON(t, rep)
		if want == nil {
			want = got
			if rep.Cells == 0 || rep.Devices != 12 {
				t.Fatalf("degenerate report: cells=%d devices=%d", rep.Cells, rep.Devices)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d report differs from shards=1", shards)
		}
	}
}

// TestResumeAcrossShardCounts runs a checkpointed campaign at 4 shards,
// then resumes the finished campaign at 2 shards: every cell replays
// from the merged journals, leftover shard files are absorbed, and the
// report stays byte-identical.
func TestResumeAcrossShardCounts(t *testing.T) {
	benches := testBenches(t, "backprop")
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")

	first := fleetOpts(8, 4)
	first.Benches = benches
	first.Checkpoint = ckpt
	rep1, err := Run(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}

	var replayed int64
	second := fleetOpts(8, 2)
	second.Benches = benches
	second.Checkpoint = ckpt
	second.Tracker = NewTracker(2)
	rep2, err := Run(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range second.Tracker.Snapshot() {
		replayed += s.Replayed
	}
	if replayed != rep1.Cells {
		t.Errorf("resume replayed %d cells, want all %d", replayed, rep1.Cells)
	}
	if !bytes.Equal(reportJSON(t, rep1), reportJSON(t, rep2)) {
		t.Error("resumed report differs from original")
	}
	// Old shards 2 and 3 must have been absorbed.
	for _, s := range []int{2, 3} {
		if _, err := os.Stat(ShardPath(ckpt, s)); !os.IsNotExist(err) {
			t.Errorf("shard %d journal still present after resharded resume", s)
		}
		if _, err := os.Stat(ShardPath(ckpt, s) + ".merged"); err != nil {
			t.Errorf("shard %d journal not absorbed: %v", s, err)
		}
	}
}

func TestMergeShardJournalsRobustness(t *testing.T) {
	benches := testBenches(t, "backprop")
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")

	first := fleetOpts(6, 3)
	first.Benches = benches
	first.Checkpoint = ckpt
	rep1, err := Run(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}

	// Tear shard 0 (truncate mid-line), duplicate shard 1's cells into a
	// surplus shard file, and drop a fully corrupt shard file alongside.
	s0, err := os.ReadFile(ShardPath(ckpt, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ShardPath(ckpt, 0), s0[:len(s0)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s1, err := os.ReadFile(ShardPath(ckpt, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ShardPath(ckpt, 7), s1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ShardPath(ckpt, 9), []byte("not a journal\nat all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	second := fleetOpts(6, 3)
	second.Benches = benches
	second.Checkpoint = ckpt
	second.Warn = t.Logf
	rep2, err := Run(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, rep1), reportJSON(t, rep2)) {
		t.Error("report differs after torn/duplicated/corrupt shard files")
	}
	if _, err := os.Stat(ShardPath(ckpt, 9) + ".quarantined"); err != nil {
		t.Errorf("corrupt shard file not quarantined: %v", err)
	}
	if _, err := os.Stat(ShardPath(ckpt, 7) + ".merged"); err != nil {
		t.Errorf("surplus shard file not absorbed: %v", err)
	}
}

// TestMergeShardJournalsForeignCohort pins the hard-error path: a shard
// file provably bound to a different campaign must fail the merge, not
// be silently absorbed.
func TestMergeShardJournalsForeignCohort(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")
	cohortA := validity.Cohort{Seed: 1, Boards: []string{"GTX 680"}, Profile: "a", CodeVersion: "v1"}
	cohortB := validity.Cohort{Seed: 2, Boards: []string{"GTX 680"}, Profile: "b", CodeVersion: "v1"}

	j, err := characterize.OpenJournalCohort(ShardPath(ckpt, 0), characterize.JournalConfig{Cohort: cohortA})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("GTX 680", "backprop", 0, characterize.PairResult{Pair: clock.DefaultPair()}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := mergeShardJournals(ckpt, 1, cohortB, t.Logf); err == nil {
		t.Fatal("merging a foreign-cohort shard journal did not fail")
	}
	pool, err := mergeShardJournals(ckpt, 1, cohortA, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.cells) != 1 {
		t.Fatalf("pooled %d cells, want 1", len(pool.cells))
	}
}

// FuzzMergeShardJournals feeds arbitrary bytes as shard journal files:
// the merge must never panic and a corrupt shard must quarantine, not
// poison the pool.
func FuzzMergeShardJournals(f *testing.F) {
	f.Add([]byte("gpuperf-checkpoint-v2 cohort=deadbeef\n"), []byte(`{"board":"GTX 680#0000"`))
	f.Add([]byte(""), []byte("\x00\xff garbage"))
	f.Add([]byte("{\"board\":\"a\",\"bench\":\"b\"}\n"), []byte("gpuperf-checkpoint"))
	cohort := validity.Cohort{Seed: 42, Boards: []string{"GTX 680"}, Profile: "fuzz", CodeVersion: "v1"}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "fleet.ckpt")
		if err := os.WriteFile(ShardPath(ckpt, 0), a, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ShardPath(ckpt, 1), b, 0o644); err != nil {
			t.Fatal(err)
		}
		pool, err := mergeShardJournals(ckpt, 2, cohort, func(string, ...any) {})
		if err != nil {
			// Hard errors (e.g. an accidental cohort mismatch) are legal;
			// panics are not.
			return
		}
		seen := make(map[string]bool)
		for _, c := range pool.cells {
			key := c.Board + "|" + c.Bench + "|" + string(rune(c.Rep)) + "|" + c.Result.Pair.String()
			if seen[key] {
				t.Fatalf("duplicate cell survived the merge: %s", key)
			}
			seen[key] = true
		}
	})
}

func TestTrackerTotals(t *testing.T) {
	tr := NewTracker(3)
	tr.shards[0].cellsDone.Store(10)
	tr.shards[1].cellsDone.Store(4)
	tr.shards[2].cellsDone.Store(7)
	tr.shards[0].devicesPlanned.Store(5)
	tr.shards[1].rowsFolded.Store(4)
	planned, done, cells, rows, lag := tr.Totals()
	if planned != 5 || done != 0 || cells != 21 || rows != 4 || lag != 6 {
		t.Fatalf("Totals() = %d %d %d %d %d", planned, done, cells, rows, lag)
	}
	snap := tr.Snapshot()
	if len(snap) != 3 || snap[2].CellsDone != 7 || snap[1].Shard != 1 {
		t.Fatalf("Snapshot() = %+v", snap)
	}
}

// pollHeap samples HeapAlloc until stop closes and reports the peak.
func pollHeap(stop <-chan struct{}, peak chan<- uint64) {
	var ms runtime.MemStats
	var max uint64
	for {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > max {
			max = ms.HeapAlloc
		}
		select {
		case <-stop:
			peak <- max
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestFleetSmoke is the CI fleet-smoke memory gate: a 1,000-device
// campaign must complete with flat memory (the streaming pipeline never
// materializes the fleet's rows). Gated behind FLEET_SMOKE=1 — it runs
// for tens of seconds.
func TestFleetSmoke(t *testing.T) {
	if os.Getenv("FLEET_SMOKE") == "" {
		t.Skip("set FLEET_SMOKE=1 to run the 1,000-device smoke")
	}
	benches := testBenches(t, "backprop")
	opts := fleetOpts(1000, 8)
	opts.Workers = 16
	opts.Benches = benches
	opts.Obs = nil
	stop := make(chan struct{})
	peak := make(chan uint64, 1)
	go pollHeap(stop, peak)
	rep, err := Run(context.Background(), opts)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != 1000 || rep.Cells == 0 {
		t.Fatalf("degenerate smoke report: devices=%d cells=%d", rep.Devices, rep.Cells)
	}
	const ceiling = 256 << 20
	if p := <-peak; p > ceiling {
		t.Fatalf("peak heap %d MiB exceeds %d MiB ceiling", p>>20, uint64(ceiling)>>20)
	} else {
		t.Logf("peak heap %d MiB (ceiling %d MiB), cells %d", p>>20, uint64(ceiling)>>20, rep.Cells)
	}
}
