package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"gpuperf/internal/characterize"
	"gpuperf/internal/validity"
)

// Sharded checkpointing: each shard journals its cells to
// <checkpoint>.shard<N>, all bound to the same fleet cohort — which
// deliberately excludes the shard count, so a campaign interrupted at
// -shards 8 can resume at -shards 2. On resume the orchestrator pools
// every existing shard file's salvageable cells (the torn-line-safe
// codec from the single-board journal), redistributes them to the cells'
// owning shards under the new layout, and renames absorbed leftover
// files (old indices ≥ the new shard count) to <file>.merged. A shard
// file that cannot be attributed at all — no parseable header, unknown
// version — is quarantined to <file>.quarantined and its shard starts
// fresh; a file provably bound to a different cohort is a hard error,
// exactly like the single-board journal.

// ShardPath names shard s's checkpoint journal under the campaign's
// base checkpoint path.
func ShardPath(base string, s int) string {
	return base + ".shard" + strconv.Itoa(s)
}

var shardFileRe = regexp.MustCompile(`\.shard(\d+)$`)

// mergedPool is the outcome of pooling existing shard journals.
type mergedPool struct {
	cells       []characterize.CellRecord
	quarantined []string // files set aside as unattributable
	absorbed    []string // files renamed .merged (index ≥ new shard count)
}

// mergeShardJournals pools the salvageable cells of every existing
// <base>.shard<k> file under the fleet cohort. Foreign files are
// quarantined (renamed, recorded, skipped); a *CohortMismatchError is
// returned as the hard error it is. Files whose index no longer maps to
// a shard under the new layout are renamed to <file>.merged after
// pooling so a later resume does not re-read them.
func mergeShardJournals(base string, shards int, cohort validity.Cohort, warn func(string, ...any)) (*mergedPool, error) {
	matches, err := filepath.Glob(base + ".shard*")
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint scan: %w", err)
	}
	type shardFile struct {
		path string
		idx  int
	}
	var files []shardFile
	for _, path := range matches {
		m := shardFileRe.FindStringSubmatch(path)
		if m == nil {
			continue // .stale/.merged/.quarantined leftovers
		}
		idx, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		files = append(files, shardFile{path: path, idx: idx})
	}
	sort.Slice(files, func(a, b int) bool { return files[a].idx < files[b].idx })

	pool := &mergedPool{}
	seen := make(map[string]bool)
	for _, f := range files {
		cells, err := characterize.ReadJournalCells(f.path, characterize.JournalConfig{Cohort: cohort, Warn: warn})
		switch {
		case err == nil:
		case errors.Is(err, characterize.ErrForeignJournal):
			// Unattributable shard file: quarantine it — this shard's
			// cells are lost, but the merge (and every other shard's
			// checkpoint) survives.
			q := f.path + ".quarantined"
			if rerr := os.Rename(f.path, q); rerr != nil {
				return nil, fmt.Errorf("fleet: quarantining %s: %w", f.path, rerr)
			}
			warn("shard journal %s is unreadable; quarantined to %s", f.path, q)
			pool.quarantined = append(pool.quarantined, f.path)
			continue
		case os.IsNotExist(err):
			continue
		default:
			// Includes *characterize.CohortMismatchError: the file belongs
			// to a different campaign — never merge across cohorts.
			return nil, err
		}
		for _, c := range cells {
			key := c.Board + "|" + c.Bench + "|" + strconv.Itoa(c.Rep) + "|" + c.Result.Pair.String()
			if seen[key] {
				continue // duplicate cell across shard files: first (lowest shard) wins
			}
			seen[key] = true
			pool.cells = append(pool.cells, c)
		}
		if f.idx >= shards {
			merged := f.path + ".merged"
			if rerr := os.Rename(f.path, merged); rerr != nil {
				return nil, fmt.Errorf("fleet: absorbing %s: %w", f.path, rerr)
			}
			pool.absorbed = append(pool.absorbed, f.path)
		}
	}
	return pool, nil
}
