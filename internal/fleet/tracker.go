package fleet

import "sync/atomic"

// ShardProgress is one shard's progress snapshot, served by gpuperfd in
// campaign status JSON and exported as gpuperf_fleet_* metrics.
type ShardProgress struct {
	Shard          int   `json:"shard"`
	DevicesPlanned int64 `json:"devices_planned"`
	DevicesDone    int64 `json:"devices_done"`
	CellsPlanned   int64 `json:"cells_planned"`
	CellsDone      int64 `json:"cells_done"`
	Replayed       int64 `json:"replayed"`
	Quarantined    int64 `json:"quarantined"`
	RowsFolded     int64 `json:"rows_folded"`
}

type shardCounters struct {
	devicesPlanned atomic.Int64
	devicesDone    atomic.Int64
	cellsPlanned   atomic.Int64
	cellsDone      atomic.Int64
	replayed       atomic.Int64
	quarantined    atomic.Int64
	rowsFolded     atomic.Int64
}

// Tracker carries per-shard progress counters. All methods are safe for
// concurrent use; the orchestrator's sinks feed it and pollers (HTTP
// status, metrics) snapshot it.
type Tracker struct {
	shards []shardCounters
}

// NewTracker sizes a tracker for the given shard count.
func NewTracker(shards int) *Tracker {
	if shards < 1 {
		shards = 1
	}
	return &Tracker{shards: make([]shardCounters, shards)}
}

// Shards reports the tracked shard count.
func (t *Tracker) Shards() int { return len(t.shards) }

// Snapshot returns every shard's current progress, in shard order.
func (t *Tracker) Snapshot() []ShardProgress {
	out := make([]ShardProgress, len(t.shards))
	for i := range t.shards {
		c := &t.shards[i]
		out[i] = ShardProgress{
			Shard:          i,
			DevicesPlanned: c.devicesPlanned.Load(),
			DevicesDone:    c.devicesDone.Load(),
			CellsPlanned:   c.cellsPlanned.Load(),
			CellsDone:      c.cellsDone.Load(),
			Replayed:       c.replayed.Load(),
			Quarantined:    c.quarantined.Load(),
			RowsFolded:     c.rowsFolded.Load(),
		}
	}
	return out
}

// Totals folds the snapshot into fleet-wide counters plus the shard lag
// (max − min cells done across shards — how far the slowest shard
// trails the fastest).
func (t *Tracker) Totals() (devicesPlanned, devicesDone, cellsDone, rowsFolded, lag int64) {
	first := true
	var minC, maxC int64
	for i := range t.shards {
		c := &t.shards[i]
		devicesPlanned += c.devicesPlanned.Load()
		devicesDone += c.devicesDone.Load()
		done := c.cellsDone.Load()
		cellsDone += done
		rowsFolded += c.rowsFolded.Load()
		if first || done < minC {
			minC = done
		}
		if first || done > maxC {
			maxC = done
		}
		first = false
	}
	return devicesPlanned, devicesDone, cellsDone, rowsFolded, maxC - minC
}
