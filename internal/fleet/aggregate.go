package fleet

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"gpuperf/internal/characterize"
)

// The aggregator is the reason the fleet report can be byte-identical
// regardless of shard count: every fold is carried in exact integer
// arithmetic (micro-unit sums, 128-bit sums of squares, fixed-bin
// histograms, order-statistic trims with a total tiebreak), which makes
// each fold associative AND commutative — float addition is neither.
// Per-device values are quantized once at ingestion; derived floats
// (means, variances, quantiles) are computed once at Finalize from the
// merged integers. Merge order, shard partition and row arrival order
// therefore cannot change a single output byte.

// microUnit quantizes a measurement into integer micro-units.
const microUnit = 1e6

// extremeK bounds the per-benchmark extreme lists (top/bottom devices by
// improvement). Outlier flagging reports at most extremeK devices per
// side; a population with more > 3σ devices reports the most extreme
// ones, which Finalize notes via Dist.N vs the outlier count.
const extremeK = 8

func micro(v float64) int64 { return int64(math.Round(v * microUnit)) }

func fromMicro(m int64) float64 { return float64(m) / microUnit }

// uint128 is an unsigned 128-bit accumulator for sums of squared
// micro-values, which overflow int64 at fleet scale.
type uint128 struct{ hi, lo uint64 }

func (a uint128) add(b uint128) uint128 {
	lo, carry := bits.Add64(a.lo, b.lo, 0)
	hi, _ := bits.Add64(a.hi, b.hi, carry)
	return uint128{hi: hi, lo: lo}
}

func (a uint128) float() float64 {
	return float64(a.hi)*0x1p64 + float64(a.lo)
}

func sq128(m int64) uint128 {
	u := uint64(m)
	if m < 0 {
		u = uint64(-m)
	}
	hi, lo := bits.Mul64(u, u)
	return uint128{hi: hi, lo: lo}
}

// stat is an exact count/sum/sum-of-squares/min/max fold over quantized
// values.
type stat struct {
	n    int64
	sum  int64
	sq   uint128
	minM int64
	maxM int64
}

func (s *stat) add(m int64) {
	if s.n == 0 || m < s.minM {
		s.minM = m
	}
	if s.n == 0 || m > s.maxM {
		s.maxM = m
	}
	s.n++
	s.sum += m
	s.sq = s.sq.add(sq128(m))
}

func (s *stat) merge(o stat) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.minM < s.minM {
		s.minM = o.minM
	}
	if s.n == 0 || o.maxM > s.maxM {
		s.maxM = o.maxM
	}
	s.n += o.n
	s.sum += o.sum
	s.sq = s.sq.add(o.sq)
}

func (s *stat) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return fromMicro(s.sum) / float64(s.n)
}

func (s *stat) stddev() float64 {
	if s.n < 2 {
		return 0
	}
	n := float64(s.n)
	mean := float64(s.sum) / n // micro units
	v := s.sq.float()/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v) / microUnit
}

// sketch is a fixed-bin integer histogram: a quantile sketch whose merge
// is exact bin-wise addition. Geometry is fixed per metric at
// construction, so every shard bins identically.
type sketch struct {
	lo    float64 // left edge of bin 0
	width float64
	bins  []int64
	under int64
	over  int64
}

func newSketch(lo, width float64, n int) *sketch {
	return &sketch{lo: lo, width: width, bins: make([]int64, n)}
}

func (k *sketch) add(v float64) {
	i := int(math.Floor((v - k.lo) / k.width))
	switch {
	case i < 0:
		k.under++
	case i >= len(k.bins):
		k.over++
	default:
		k.bins[i]++
	}
}

func (k *sketch) merge(o *sketch) {
	k.under += o.under
	k.over += o.over
	for i := range k.bins {
		k.bins[i] += o.bins[i]
	}
}

// quantile returns the q-quantile as the midpoint of the bin holding
// rank ⌊q·(n−1)⌋; values beyond the geometry resolve to the exact min or
// max carried alongside (the caller passes the stat's bounds). Exact
// integer rank selection over merged integer bins: deterministic.
func (k *sketch) quantile(q, minV, maxV float64) float64 {
	n := k.under + k.over
	for _, b := range k.bins {
		n += b
	}
	if n == 0 {
		return 0
	}
	rank := int64(math.Floor(q * float64(n-1)))
	if rank < k.under {
		return minV
	}
	cum := k.under
	for i, b := range k.bins {
		cum += b
		if rank < cum {
			return k.lo + (float64(i)+0.5)*k.width
		}
	}
	return maxV
}

// deviceValue is one device's quantized metric, ordered by
// (value, device name) — a total order, so trimmed extreme lists merge
// associatively.
type deviceValue struct {
	Micro int64
	Board string
}

// extremes keeps the K largest and K smallest deviceValues. Merge is
// concat + sort + trim under the total order — associative and
// commutative because the order is total and the trim is a pure function
// of the merged set.
type extremes struct {
	top    []deviceValue // descending value, ascending name
	bottom []deviceValue // ascending value, ascending name
}

func (e *extremes) add(v deviceValue) {
	e.top = trimExtremes(append(e.top, v), false)
	e.bottom = trimExtremes(append(e.bottom, v), true)
}

func (e *extremes) merge(o *extremes) {
	e.top = trimExtremes(append(e.top, o.top...), false)
	e.bottom = trimExtremes(append(e.bottom, o.bottom...), true)
}

func trimExtremes(vs []deviceValue, ascending bool) []deviceValue {
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].Micro != vs[b].Micro {
			if ascending {
				return vs[a].Micro < vs[b].Micro
			}
			return vs[a].Micro > vs[b].Micro
		}
		return vs[a].Board < vs[b].Board
	})
	// A device appears once per fold, but a resumed merge may see the
	// same (value, board) from a replayed shard — dedup keeps the fold
	// idempotent there.
	out := vs[:0]
	for i, v := range vs {
		if i > 0 && v == vs[i-1] {
			continue
		}
		out = append(out, v)
	}
	if len(out) > extremeK {
		out = out[:extremeK]
	}
	return out
}

// pairAgg folds one (benchmark, pair) population cell.
type pairAgg struct {
	cells       int64
	quarantined int64
	time        stat // seconds per iteration
	watts       stat
	energy      stat // joules per iteration
}

// benchAgg folds one benchmark's population.
type benchAgg struct {
	devices    int64 // BenchResults folded
	cells      int64
	noBaseline int64 // devices with no default or no best pair
	pairs      map[string]*pairAgg
	best       map[string]int64 // best-pair tally
	improve    stat             // Fig. 4 improvement %, micro-percent
	perfLoss   stat
	improveSk  *sketch
	ext        extremes // per-device improvement extremes
}

func newBenchAgg() *benchAgg {
	return &benchAgg{
		pairs: make(map[string]*pairAgg),
		best:  make(map[string]int64),
		// −50%..+150% in half-percent bins covers any plausible
		// improvement population; outliers land in under/over and resolve
		// to the exact min/max.
		improveSk: newSketch(-50, 0.5, 400),
	}
}

// Aggregate is the streaming fleet fold: a characterize.RowSink that
// consumes sweep streams from any number of devices and shards. Safe for
// concurrent use by sweep workers; per-shard Aggregates merge
// associatively (Merge) into the fleet total.
type Aggregate struct {
	mu      sync.Mutex
	rows    int64
	benches map[string]*benchAgg
}

// NewAggregate returns an empty fold.
func NewAggregate() *Aggregate {
	return &Aggregate{benches: make(map[string]*benchAgg)}
}

func (a *Aggregate) bench(name string) *benchAgg {
	b := a.benches[name]
	if b == nil {
		b = newBenchAgg()
		a.benches[name] = b
	}
	return b
}

// ConsumeRow folds one resolved cell into the per-(benchmark, pair)
// population statistics.
func (a *Aggregate) ConsumeRow(r characterize.Row) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows++
	b := a.bench(r.Bench)
	b.cells++
	key := r.Result.Pair.String()
	p := b.pairs[key]
	if p == nil {
		p = &pairAgg{}
		b.pairs[key] = p
	}
	p.cells++
	if r.Result.Quarantined {
		p.quarantined++
		return
	}
	p.time.add(micro(r.Result.TimePerIter))
	p.watts.add(micro(r.Result.AvgWatts))
	p.energy.add(micro(r.Result.EnergyPerIter))
}

// ConsumeBench folds one device's completed benchmark: the best-pair
// tally and the population distribution of best-over-default savings.
func (a *Aggregate) ConsumeBench(r *characterize.BenchResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.bench(r.Benchmark)
	b.devices++
	best := r.Best()
	if best != nil {
		b.best[best.Pair.String()]++
	}
	if best == nil || r.Default() == nil {
		b.noBaseline++
		return
	}
	imp := micro(r.ImprovementPct())
	b.improve.add(imp)
	b.perfLoss.add(micro(r.PerfLossPct()))
	b.improveSk.add(fromMicro(imp))
	b.ext.add(deviceValue{Micro: imp, Board: r.Board})
}

// RowsFolded reports how many cells the fold has consumed.
func (a *Aggregate) RowsFolded() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rows
}

// Merge folds another Aggregate into this one. Exact integer merges
// throughout: Merge(x, Merge(y, z)) and Merge(Merge(x, y), z) produce
// identical state for any grouping and order — the property the
// shard-count byte-identity test pins.
func (a *Aggregate) Merge(o *Aggregate) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows += o.rows
	for name, ob := range o.benches {
		b := a.bench(name)
		b.devices += ob.devices
		b.cells += ob.cells
		b.noBaseline += ob.noBaseline
		for key, op := range ob.pairs {
			p := b.pairs[key]
			if p == nil {
				p = &pairAgg{}
				b.pairs[key] = p
			}
			p.cells += op.cells
			p.quarantined += op.quarantined
			p.time.merge(op.time)
			p.watts.merge(op.watts)
			p.energy.merge(op.energy)
		}
		for key, n := range ob.best {
			b.best[key] += n
		}
		b.improve.merge(ob.improve)
		b.perfLoss.merge(ob.perfLoss)
		b.improveSk.merge(ob.improveSk)
		b.ext.merge(&ob.ext)
	}
}
