package fleet

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/driver"
	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

// The orchestrator partitions the fleet across shards (device i belongs
// to shard i mod shards), runs each shard as one streaming sweep
// pipeline over its devices — generated on demand in small batches, so
// peak heap is bounded by (shards × batch), independent of fleet size —
// and folds every shard's rows into a per-shard Aggregate. After the
// shards finish, the aggregates merge associatively and Finalize renders
// the report. Because per-cell measurements are a pure function of
// (seed, device, benchmark, pair) and the folds are exact integer
// arithmetic, the report is byte-identical at a fixed seed for ANY shard
// count — the property the fleet-smoke CI job cmp's.

// Options configures a fleet campaign run.
type Options struct {
	Seed int64
	// Size is the fleet's device count (≥ 1).
	Size int
	// Shards partitions devices across concurrent shard pipelines; < 1
	// means 1 and values above Size clamp to Size. The report does not
	// depend on it.
	Shards int
	// Workers is the fleet-wide worker budget, split across shards
	// (each shard sweeps with max(1, Workers/Shards) workers).
	Workers int
	// Jitter is the per-device parameter spread.
	Jitter JitterProfile
	// BaseBoards seeds the round-robin population (empty: all four paper
	// boards).
	BaseBoards []string
	// Benches is the benchmark set swept on every device.
	Benches []*workloads.Benchmark
	// Checkpoint, when non-empty, is the base path for per-shard
	// journals (<Checkpoint>.shard<N>) with merged-journal resume.
	Checkpoint string
	// Res carries the fault campaign and retry policy, shared by every
	// shard. nil runs fault-free.
	Res *fault.Resilience
	// FaultProfile is the canonical fault-profile spec bound into the
	// fleet cohort (empty for fault-free).
	FaultProfile string
	// Obs, when non-nil, receives instrumentation. Note the per-device
	// track cost: prefer nil (or a disabled recorder) for very large
	// fleets.
	Obs *obs.Recorder
	// TrackPrefix namespaces obs track names; empty means "fleet".
	TrackPrefix string
	// CodeVersion stamps the cohort (empty: resolved from build info).
	CodeVersion string
	// Tracker, when non-nil, receives per-shard progress; it must have
	// been built with NewTracker(ClampShards(Shards, Size)). nil gets a
	// private tracker.
	Tracker *Tracker
	// OnCell, when non-nil, observes every resolved cell with its shard
	// index. Called from every shard's workers; must be safe for
	// concurrent use.
	OnCell func(shard int, row characterize.Row)
	// Warn receives human-readable salvage notes from the journal merge.
	// nil logs to stderr.
	Warn func(format string, args ...any)
}

// ClampShards is the orchestrator's shard-count normalization: at least
// 1, at most size. Exported so callers sizing a Tracker agree with Run.
func ClampShards(shards, size int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > size && size > 0 {
		shards = size
	}
	return shards
}

// CohortProfile builds the profile string binding a fleet campaign's
// journals: the canonical fault profile plus the fleet geometry. The
// shard count is deliberately absent — journals from any shard layout of
// the same campaign share a cohort, which is what makes resharded
// resume legal.
func CohortProfile(faultProfile string, size int, jitter JitterProfile) string {
	return faultProfile + "+fleet[n=" + strconv.Itoa(size) + "," + jitter.String() + "]"
}

// Cohort is the fleet campaign's identity, shared by every shard
// journal.
func (o *Options) Cohort() validity.Cohort {
	cv := o.CodeVersion
	if cv == "" {
		cv = validity.ResolveCodeVersion()
	}
	return validity.Cohort{
		Seed:        o.Seed,
		Boards:      o.BaseBoards,
		Profile:     CohortProfile(o.FaultProfile, o.Size, o.Jitter),
		CodeVersion: cv,
	}
}

func (o *Options) warn(format string, args ...any) {
	if o.Warn != nil {
		o.Warn(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", args...)
}

// Run executes the fleet campaign and returns the finalized report.
// Cancelling ctx stops every shard at a sweep-cell boundary with its
// journal resumable; the error wraps the cause.
func Run(ctx context.Context, opts Options) (*Report, error) {
	fl, err := New(opts.Seed, opts.BaseBoards, opts.Size, opts.Jitter)
	if err != nil {
		return nil, err
	}
	opts.BaseBoards = fl.BaseNames()
	shards := ClampShards(opts.Shards, opts.Size)

	res := opts.Res
	if res == nil {
		res = &fault.Resilience{}
	}
	if opts.Obs != nil && res.Obs == nil {
		res.Obs = opts.Obs
	}
	// Observe must run before any shard pool starts; every SweepStream
	// below then finds the policy already wired and never races.
	res.Observe()

	tracker := opts.Tracker
	if tracker == nil || tracker.Shards() != shards {
		tracker = NewTracker(shards)
	}
	planShards(tracker, fl, shards, len(opts.Benches))

	journals, err := openShardJournals(&opts, fl, shards)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, j := range journals {
			if j != nil {
				_ = j.Close()
			}
		}
	}()

	shardWorkers := opts.Workers / shards
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	aggs := make([]*Aggregate, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		var j *characterize.Journal
		if journals != nil {
			j = journals[s]
		}
		wg.Add(1)
		go func(s int, j *characterize.Journal) {
			defer wg.Done()
			aggs[s], errs[s] = runShard(ctx, s, shards, shardWorkers, fl, j, res, tracker, &opts)
		}(s, j)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", s, err)
		}
	}

	merged := NewAggregate()
	for _, a := range aggs {
		merged.Merge(a)
	}
	return merged.Finalize(opts.Seed, opts.Size, opts.BaseBoards, opts.Jitter), nil
}

// planShards charges each shard's planned device and cell counts before
// any work starts. Cell counts derive from the base boards' pair grids
// (jitter never touches the ValidPairs matrix).
func planShards(t *Tracker, fl *Fleet, shards, nBenches int) {
	pairsPerBase := make([]int64, len(fl.bases))
	for i, base := range fl.bases {
		pairsPerBase[i] = int64(len(clock.ValidPairs(base)))
	}
	for i := 0; i < fl.size; i++ {
		c := &t.shards[i%shards]
		c.devicesPlanned.Add(1)
		c.cellsPlanned.Add(pairsPerBase[i%len(fl.bases)] * int64(nBenches))
	}
}

// openShardJournals pools any existing shard journals, opens one fresh
// journal per shard under the fleet cohort, and redistributes pooled
// cells to their owning shards under the current layout. Returns nil
// when the campaign runs without a checkpoint.
func openShardJournals(opts *Options, fl *Fleet, shards int) ([]*characterize.Journal, error) {
	if opts.Checkpoint == "" {
		return nil, nil
	}
	cohort := opts.Cohort()
	pool, err := mergeShardJournals(opts.Checkpoint, shards, cohort, opts.warn)
	if err != nil {
		return nil, err
	}
	journals := make([]*characterize.Journal, shards)
	for s := range journals {
		j, err := characterize.OpenJournalCohort(ShardPath(opts.Checkpoint, s),
			characterize.JournalConfig{Cohort: cohort, Warn: opts.Warn})
		if err != nil {
			for _, open := range journals[:s] {
				if open != nil {
					_ = open.Close()
				}
			}
			return nil, err
		}
		journals[s] = j
	}
	for _, c := range pool.cells {
		idx, ok := DeviceIndex(c.Board)
		if !ok || idx >= fl.size || fl.DeviceName(idx) != c.Board {
			continue // orphan cell from an older fleet geometry
		}
		j := journals[idx%shards]
		if j.Contains(c.Board, c.Bench, c.Rep, c.Result.Pair) {
			continue
		}
		if err := j.Record(c.Board, c.Bench, c.Rep, c.Result); err != nil {
			for _, open := range journals {
				_ = open.Close()
			}
			return nil, err
		}
	}
	return journals, nil
}

// shardSink adapts one shard's row stream onto its Aggregate and the
// tracker. Device completion is counted when every benchmark of a device
// has streamed its BenchResult.
type shardSink struct {
	agg    *Aggregate
	tr     *Tracker
	shard  int
	nBench int
	onCell func(int, characterize.Row)

	mu        sync.Mutex
	benchDone map[string]int
}

func (s *shardSink) ConsumeRow(r characterize.Row) {
	s.agg.ConsumeRow(r)
	c := &s.tr.shards[s.shard]
	c.cellsDone.Add(1)
	c.rowsFolded.Add(1)
	if r.Replayed {
		c.replayed.Add(1)
	}
	if r.Result.Quarantined {
		c.quarantined.Add(1)
	}
	if s.onCell != nil {
		s.onCell(s.shard, r)
	}
}

func (s *shardSink) ConsumeBench(b *characterize.BenchResult) {
	s.agg.ConsumeBench(b)
	s.mu.Lock()
	s.benchDone[b.Board]++
	done := s.benchDone[b.Board] == s.nBench
	if done {
		delete(s.benchDone, b.Board)
	}
	s.mu.Unlock()
	if done {
		s.tr.shards[s.shard].devicesDone.Add(1)
	}
}

// runShard sweeps every device the shard owns (ascending index, batched
// so at most one batch of generated specs is live) and folds the stream
// into the shard's Aggregate.
func runShard(ctx context.Context, shard, shards, workers int, fl *Fleet, journal *characterize.Journal, res *fault.Resilience, tracker *Tracker, opts *Options) (*Aggregate, error) {
	agg := NewAggregate()
	sink := &shardSink{
		agg: agg, tr: tracker, shard: shard,
		nBench: len(opts.Benches), onCell: opts.OnCell,
		benchDone: make(map[string]int),
	}
	prefix := opts.TrackPrefix
	if prefix == "" {
		prefix = "fleet"
	}
	// batchSize bounds live device specs per shard: enough to keep the
	// shard's workers busy across devices, small enough that fleet memory
	// stays flat in the fleet size.
	batchSize := 4 * workers
	if batchSize < 16 {
		batchSize = 16
	}
	owned := make([]int, 0, batchSize)
	for start := shard; start < fl.size; {
		owned = owned[:0]
		for i := start; i < fl.size && len(owned) < batchSize; i += shards {
			owned = append(owned, i)
		}
		if len(owned) == 0 {
			break
		}
		start = owned[len(owned)-1] + shards

		devs := make(map[string]Device, len(owned))
		names := make([]string, len(owned))
		for bi, i := range owned {
			d := fl.Device(i)
			devs[d.Name] = d
			names[bi] = d.Name
		}
		swOpts := characterize.SweepOptions{
			Seed:        opts.Seed,
			Workers:     workers,
			Res:         res,
			Journal:     journal,
			Obs:         opts.Obs,
			TrackPrefix: prefix,
			Sink:        sink,
			Boot: func(name string, in *fault.Injector) (*driver.Device, error) {
				d, ok := devs[name]
				if !ok {
					return nil, fmt.Errorf("fleet: unknown device %q", name)
				}
				dev, err := driver.OpenSpecWithFaults(d.Spec, in) //gpulint:ignore faultsafety -- boot seam: the error returns into characterize's resilient loop, which classifies with fault.PointOf and retries
				if err != nil {
					return nil, err
				}
				dev.Meter().Gain = d.MeterGain
				return dev, nil
			},
			SpecOf: func(name string) *arch.Spec {
				if d, ok := devs[name]; ok {
					return d.Spec
				}
				return nil
			},
		}
		if err := characterize.SweepStream(ctx, names, opts.Benches, swOpts); err != nil {
			return agg, err
		}
	}
	return agg, nil
}
