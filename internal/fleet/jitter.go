// Package fleet scales a campaign from the paper's four boards to a
// population: a deterministic fleet generator (per-device parameter
// jitter on the V–f curves, leakage and meter calibration), a sharded
// orchestrator that partitions devices across worker shards — each with
// its own checkpoint journal — and a streaming aggregator whose folds
// are associative and commutative in exact integer arithmetic, so the
// final fleet report at a fixed seed is byte-identical regardless of
// shard count, worker count or row arrival order.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// JitterProfile describes per-device manufacturing and instrumentation
// spread: each field is a symmetric relative half-width (0.03 means
// ±3%), drawn uniformly per device from the fleet seed. All fields must
// lie in [0, 1].
type JitterProfile struct {
	// CoreVolt scales both ends of the core V–f curve by one common
	// factor per device — silicon binning spread. Scaling high and low
	// together preserves the spec's voltage ordering invariants.
	CoreVolt float64
	// MemVolt is the memory-domain analogue.
	MemVolt float64
	// VExp perturbs the voltage-interpolation exponent (clamped to ≥ 1),
	// the shape of the binning curve between the endpoints.
	VExp float64
	// Leak scales leakage and idle power (core + memory domains) — the
	// process-corner spread that dominates chip-to-chip power variation.
	Leak float64
	// Meter is the per-device power-meter calibration gain drift
	// (meter.Meter.Gain = 1 ± Meter·u).
	Meter float64
}

// jitterKeys maps the canonical spec keys to profile fields, in
// canonical order.
var jitterKeys = []string{"corevolt", "memvolt", "vexp", "leak", "meter"}

func (p *JitterProfile) field(key string) *float64 {
	switch key {
	case "corevolt":
		return &p.CoreVolt
	case "memvolt":
		return &p.MemVolt
	case "vexp":
		return &p.VExp
	case "leak":
		return &p.Leak
	case "meter":
		return &p.Meter
	}
	return nil
}

// DefaultJitter is the spread a mixed retail population plausibly shows:
// a few percent of voltage binning, noticeable leakage spread, and
// sub-percent instrument drift.
func DefaultJitter() JitterProfile {
	return JitterProfile{CoreVolt: 0.03, MemVolt: 0.02, VExp: 0.05, Leak: 0.08, Meter: 0.01}
}

// jitterPresets are the named profiles ParseJitterProfile accepts.
var jitterPresets = map[string]JitterProfile{
	"":        DefaultJitter(),
	"default": DefaultJitter(),
	"none":    {},
	"tight":   {CoreVolt: 0.01, MemVolt: 0.01, VExp: 0.02, Leak: 0.03, Meter: 0.005},
	"loose":   {CoreVolt: 0.06, MemVolt: 0.04, VExp: 0.10, Leak: 0.15, Meter: 0.02},
}

// ParseJitterProfile parses a jitter spec: either a preset name
// ("default", "none", "tight", "loose"; empty means default) or a
// comma-separated key:fraction list over corevolt, memvolt, vexp, leak
// and meter — e.g. "corevolt:0.03,leak:0.08". Omitted keys are zero.
// Every fraction must lie in [0, 1]; anything else is an error, which
// cliflags surfaces under the exit-2 contract.
func ParseJitterProfile(s string) (JitterProfile, error) {
	if p, ok := jitterPresets[strings.TrimSpace(s)]; ok {
		return p, nil
	}
	var p JitterProfile
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, ":")
		if !ok {
			return JitterProfile{}, fmt.Errorf("fleet: jitter %q: term %q is not key:fraction", s, part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		f := p.field(key)
		if f == nil {
			return JitterProfile{}, fmt.Errorf("fleet: jitter %q: unknown key %q (have %s)", s, key, strings.Join(jitterKeys, ", "))
		}
		if seen[key] {
			return JitterProfile{}, fmt.Errorf("fleet: jitter %q: duplicate key %q", s, key)
		}
		seen[key] = true
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return JitterProfile{}, fmt.Errorf("fleet: jitter %q: %q is not a number", s, val)
		}
		*f = v
	}
	if err := p.Validate(); err != nil {
		return JitterProfile{}, err
	}
	return p, nil
}

// Validate checks every spread lies in [0, 1].
func (p JitterProfile) Validate() error {
	q := p
	for _, key := range jitterKeys {
		v := *q.field(key)
		if v < 0 || v > 1 {
			return fmt.Errorf("fleet: jitter %s=%g outside [0, 1]", key, v)
		}
	}
	return nil
}

// String renders the canonical spec: every key in canonical order,
// shortest float form. Equal profiles render equal strings — the string
// is part of the fleet cohort identity, so it must be canonical.
func (p JitterProfile) String() string {
	q := p
	parts := make([]string, len(jitterKeys))
	for i, key := range jitterKeys {
		parts[i] = key + ":" + strconv.FormatFloat(*q.field(key), 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// PresetNames lists the accepted preset spellings, sorted — for error
// messages and docs.
func PresetNames() []string {
	out := make([]string, 0, len(jitterPresets))
	for k := range jitterPresets {
		if k != "" {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
