package fleet

import (
	"sort"
)

// Dist summarizes a population distribution, finalized from the exact
// integer folds.
type Dist struct {
	N      int64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Q1     float64
	Median float64
	Q3     float64
	P90    float64
}

// PairSummary is one (benchmark, pair) population cell.
type PairSummary struct {
	Pair        string
	Cells       int64
	Quarantined int64
	MeanTimeS   float64
	MeanWatts   float64
	MeanEnergyJ float64
	StdEnergyJ  float64
}

// PairCount is one best-pair tally row.
type PairCount struct {
	Pair    string
	Devices int64
}

// Outlier is one device flagged beyond the 3σ band of its benchmark's
// improvement distribution.
type Outlier struct {
	Board          string
	ImprovementPct float64
	Sigma          float64 // signed distance from the mean, in σ
}

// BenchReport is one benchmark's population summary.
type BenchReport struct {
	Bench      string
	Devices    int64
	Cells      int64
	NoBaseline int64
	Pairs      []PairSummary // sorted by pair key
	BestPairs  []PairCount   // sorted by devices desc, then pair
	Improve    Dist          // best-over-default efficiency gain, %
	PerfLoss   Dist
	Outliers   []Outlier // flagged devices, most extreme first (≤ 2·extremeK)
}

// Report is the finalized fleet campaign result: pure data, rendered by
// internal/report.FleetSummary. Deliberately free of shard or worker
// counts — the report is a function of (seed, fleet, benches) only, and
// the byte-identity tests compare it across shard layouts.
type Report struct {
	Seed       int64
	Devices    int
	BaseBoards []string
	Jitter     string
	Cells      int64
	Benches    []BenchReport // sorted by benchmark name
}

func finalizeDist(s stat, sk *sketch) Dist {
	d := Dist{N: s.n, Mean: s.mean(), StdDev: s.stddev()}
	if s.n == 0 {
		return d
	}
	d.Min = fromMicro(s.minM)
	d.Max = fromMicro(s.maxM)
	if sk != nil {
		d.Q1 = sk.quantile(0.25, d.Min, d.Max)
		d.Median = sk.quantile(0.5, d.Min, d.Max)
		d.Q3 = sk.quantile(0.75, d.Min, d.Max)
		d.P90 = sk.quantile(0.90, d.Min, d.Max)
	}
	return d
}

// Finalize derives the human-facing report from the merged integer
// state. Every map is walked in sorted key order and every derived float
// is computed from merged integers, so identical merged state yields an
// identical Report regardless of how it was sharded or in what order it
// was folded.
func (a *Aggregate) Finalize(seed int64, devices int, baseBoards []string, jitter JitterProfile) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := &Report{
		Seed:       seed,
		Devices:    devices,
		BaseBoards: append([]string(nil), baseBoards...),
		Jitter:     jitter.String(),
		Cells:      a.rows,
	}
	benchNames := make([]string, 0, len(a.benches))
	for name := range a.benches {
		benchNames = append(benchNames, name)
	}
	sort.Strings(benchNames)
	for _, name := range benchNames {
		b := a.benches[name]
		br := BenchReport{
			Bench:      name,
			Devices:    b.devices,
			Cells:      b.cells,
			NoBaseline: b.noBaseline,
			Improve:    finalizeDist(b.improve, b.improveSk),
			PerfLoss:   finalizeDist(b.perfLoss, nil),
		}
		pairKeys := make([]string, 0, len(b.pairs))
		for key := range b.pairs {
			pairKeys = append(pairKeys, key)
		}
		sort.Strings(pairKeys)
		for _, key := range pairKeys {
			p := b.pairs[key]
			br.Pairs = append(br.Pairs, PairSummary{
				Pair:        key,
				Cells:       p.cells,
				Quarantined: p.quarantined,
				MeanTimeS:   p.time.mean(),
				MeanWatts:   p.watts.mean(),
				MeanEnergyJ: p.energy.mean(),
				StdEnergyJ:  p.energy.stddev(),
			})
		}
		bestKeys := make([]string, 0, len(b.best))
		for key := range b.best {
			bestKeys = append(bestKeys, key)
		}
		sort.Slice(bestKeys, func(i, j int) bool {
			if b.best[bestKeys[i]] != b.best[bestKeys[j]] {
				return b.best[bestKeys[i]] > b.best[bestKeys[j]]
			}
			return bestKeys[i] < bestKeys[j]
		})
		for _, key := range bestKeys {
			br.BestPairs = append(br.BestPairs, PairCount{Pair: key, Devices: b.best[key]})
		}
		br.Outliers = flagOutliers(b)
		rep.Benches = append(rep.Benches, br)
	}
	return rep
}

// flagOutliers returns the devices whose improvement sits beyond 3σ of
// the benchmark's population mean, drawn from the trimmed extreme lists
// (so at most extremeK per side — the K cap is documented on extremeK).
// High outliers first (descending), then low (ascending): the order the
// extreme lists already carry.
func flagOutliers(b *benchAgg) []Outlier {
	sigma := b.improve.stddev()
	if sigma <= 0 || b.improve.n < 2 {
		return nil
	}
	mean := b.improve.mean()
	var out []Outlier
	for _, v := range b.ext.top {
		imp := fromMicro(v.Micro)
		if d := (imp - mean) / sigma; d > 3 {
			out = append(out, Outlier{Board: v.Board, ImprovementPct: imp, Sigma: d})
		}
	}
	for _, v := range b.ext.bottom {
		imp := fromMicro(v.Micro)
		if d := (imp - mean) / sigma; d < -3 {
			out = append(out, Outlier{Board: v.Board, ImprovementPct: imp, Sigma: d})
		}
	}
	return out
}
