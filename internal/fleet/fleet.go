package fleet

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"gpuperf/internal/arch"
	"gpuperf/internal/fastrng"
)

// Device is one generated fleet member: a jittered copy of a base board
// spec plus its meter calibration gain. Devices are computed on demand —
// a Device is a pure function of (fleet seed, index), so the orchestrator
// never materializes the fleet.
type Device struct {
	Index     int
	Name      string // "<base board>#<index>", e.g. "GTX 680#0042"
	Spec      *arch.Spec
	MeterGain float64
}

// Fleet deterministically generates a population of jittered devices
// over a set of base boards. Safe for concurrent use (it is immutable).
type Fleet struct {
	seed   int64
	bases  []*arch.Spec
	size   int
	jitter JitterProfile
}

// New builds a fleet generator of `size` devices over the named base
// boards (empty: all four paper boards), round-robin across bases.
func New(seed int64, baseBoards []string, size int, jitter JitterProfile) (*Fleet, error) {
	if size < 1 {
		return nil, fmt.Errorf("fleet: size %d < 1", size)
	}
	if err := jitter.Validate(); err != nil {
		return nil, err
	}
	var bases []*arch.Spec
	if len(baseBoards) == 0 {
		bases = arch.AllBoards()
	} else {
		for _, name := range baseBoards {
			spec := arch.BoardByName(name)
			if spec == nil {
				return nil, fmt.Errorf("fleet: unknown base board %q", name)
			}
			bases = append(bases, spec)
		}
	}
	return &Fleet{seed: seed, bases: bases, size: size, jitter: jitter}, nil
}

// Size reports the fleet's device count.
func (f *Fleet) Size() int { return f.size }

// Jitter reports the fleet's jitter profile.
func (f *Fleet) Jitter() JitterProfile { return f.jitter }

// BaseNames lists the base board names, in round-robin order.
func (f *Fleet) BaseNames() []string {
	out := make([]string, len(f.bases))
	for i, s := range f.bases {
		out[i] = s.Name
	}
	return out
}

// fnvHash is the repo-wide FNV-1a tag hash (sweepSeed, SeedScoped).
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv: hash.Hash.Write never errors
	return h.Sum64()
}

// DeviceName returns device i's name without generating its spec.
func (f *Fleet) DeviceName(i int) string {
	return fmt.Sprintf("%s#%04d", f.bases[i%len(f.bases)].Name, i)
}

// DeviceIndex parses a device name back to its index, the inverse of
// DeviceName. ok is false for names without the #index suffix.
func DeviceIndex(name string) (int, bool) {
	cut := strings.LastIndexByte(name, '#')
	if cut < 0 {
		return 0, false
	}
	idx, err := strconv.Atoi(name[cut+1:])
	if err != nil || idx < 0 {
		return 0, false
	}
	return idx, true
}

// Device generates fleet member i: the base board for the slot (round-
// robin) with one multiplicative jitter draw per parameter domain, from
// a generator seeded by seed ⊕ FNV-1a("fleet|device|i") — the same
// split-by-tag scheme the sweep engines use, so device streams are
// mutually independent and independent of measurement noise. The draw
// order (corevolt, memvolt, vexp, leak, meter) is part of the
// determinism contract: a Device is byte-identical across shard layouts
// and resumes because nothing but (seed, index) feeds it.
//
// Voltage spreads scale both curve endpoints by one factor, preserving
// the Validate ordering invariants; frequencies are never jittered (the
// derived-bandwidth consistency check pins them to the bus parameters).
func (f *Fleet) Device(i int) Device {
	if i < 0 || i >= f.size {
		panic(fmt.Sprintf("fleet: device index %d outside [0, %d)", i, f.size))
	}
	base := f.bases[i%len(f.bases)]
	spec := *base // Spec is all value fields; a copy is deep
	_, rng := fastrng.NewRand(f.seed ^ int64(fnvHash("fleet|device|"+strconv.Itoa(i))))
	sym := func() float64 { return 2*rng.Float64() - 1 }

	cv := 1 + f.jitter.CoreVolt*sym()
	mv := 1 + f.jitter.MemVolt*sym()
	ve := 1 + f.jitter.VExp*sym()
	lk := 1 + f.jitter.Leak*sym()
	gain := 1 + f.jitter.Meter*sym()

	spec.CoreVoltHigh *= cv
	spec.CoreVoltLow *= cv
	spec.MemVoltHigh *= mv
	spec.MemVoltLow *= mv
	exp := spec.VoltExponent
	if exp == 0 {
		exp = 1
	}
	if exp *= ve; exp < 1 {
		exp = 1
	}
	spec.VoltExponent = exp
	spec.CoreLeakWatts *= lk
	spec.MemLeakWatts *= lk
	spec.CoreIdleWatts *= lk
	spec.MemIdleWatts *= lk
	spec.Name = f.DeviceName(i)
	return Device{Index: i, Name: spec.Name, Spec: &spec, MeterGain: gain}
}
