package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// CounterClass guards the paper's two-way counter classification.
//
// Eq. (1)/(2) of Abe et al. split every performance counter into a
// core-event term (scaled by the core clock) and a memory-event term
// (scaled by the memory clock); the unified power/time models are only
// correct if every counter in internal/counters carries exactly one such
// classification. Go's zero value makes this fragile: a Def composite
// literal that omits the Class field silently becomes CoreEvent, and a
// Class(n) conversion can smuggle in an out-of-range class. Both would
// skew the Tables V–VIII regressions without any runtime error.
//
// The analyzer applies to any package declaring the counters shape — a
// struct type Def with a field Class of an in-package integer enum type
// Class — and checks, against the type-checked AST:
//
//  1. every keyed Def composite literal sets Class explicitly (the
//     zero-value default is never an acceptable classification);
//  2. every expression of type Class (Def field values and call
//     arguments) is a declared enum constant or an identifier of type
//     Class passing one through; conversions and bare integers are
//     rejected;
//  3. a literal counter name is registered at most once per registry
//     function, so no counter can be classified twice.
var CounterClass = &Analyzer{
	Name: "counterclass",
	Doc:  "every registered counter classified core/memory-event exactly once",
	Run:  runCounterClass,
}

// counterShape is the resolved Def/Class pair of an applicable package.
type counterShape struct {
	defType   types.Type              // the Def struct
	classType types.Type              // the Class enum
	consts    map[string]*types.Const // declared constants of Class
}

// findCounterShape reports whether the package declares the counters
// shape, resolving the Def and Class types and the enum constants.
func findCounterShape(pkg *Package) (*counterShape, bool) {
	scope := pkg.Types.Scope()
	defObj, _ := scope.Lookup("Def").(*types.TypeName)
	classObj, _ := scope.Lookup("Class").(*types.TypeName)
	if defObj == nil || classObj == nil {
		return nil, false
	}
	classType := classObj.Type()
	if b, ok := classType.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return nil, false
	}
	st, ok := defObj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	hasClassField := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Class" && types.Identical(f.Type(), classType) {
			hasClassField = true
		}
	}
	if !hasClassField {
		return nil, false
	}
	shape := &counterShape{
		defType:   defObj.Type(),
		classType: classType,
		consts:    map[string]*types.Const{},
	}
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), classType) {
			shape.consts[name] = c
		}
	}
	return shape, len(shape.consts) > 0
}

func runCounterClass(pass *Pass) {
	shape, ok := findCounterShape(pass.Pkg)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// registered maps "registry scope \x00 counter name" to the first
		// registration, so a counter cannot be classified twice. The
		// scope is the enclosing registry function (teslaDefs, fermiDefs,
		// ...); package-level registrations share one file-wide scope.
		registered := map[string]token.Pos{}
		register := func(pos token.Pos, name string) {
			fd := enclosingFunc(file, pos)
			key := fmt.Sprintf("%p\x00%s", fd, name)
			if first, dup := registered[key]; dup {
				pass.Reportf(pos, "counter %q registered more than once (first at %s); a counter must be classified exactly once",
					name, pass.Pkg.Fset.Position(first))
				return
			}
			registered[key] = pos
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				t := info.TypeOf(n)
				if t == nil || !types.Identical(unpointer(t), shape.defType) {
					return true
				}
				checkDefLiteral(pass, shape, register, n)
			case *ast.CallExpr:
				checkRegistryCall(pass, shape, register, n)
			}
			return true
		})
	}
}

// checkDefLiteral enforces explicit classification on a Def literal and
// registers its counter name when that name is a compile-time constant.
func checkDefLiteral(pass *Pass, shape *counterShape, register func(token.Pos, string), lit *ast.CompositeLit) {
	info := pass.Pkg.Info
	name := "counter"
	classSet := false
	keyed := len(lit.Elts) == 0
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue // positional literal: the compiler forces every field
		}
		keyed = true
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Class":
			classSet = true
			checkClassValue(pass, shape, kv.Value)
		case "Name":
			if tv, ok := info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name = fmt.Sprintf("%q", constant.StringVal(tv.Value))
				register(lit.Pos(), constant.StringVal(tv.Value))
			}
		}
	}
	if keyed && !classSet {
		pass.Reportf(lit.Pos(),
			"counter %s is not classified: Def literal omits the Class field (the zero value silently means core-event)", name)
	}
}

// checkRegistryCall checks Class-typed call arguments and treats any call
// carrying both a constant counter-name string and a Class argument as a
// registration (the def(...) helper idiom).
func checkRegistryCall(pass *Pass, shape *counterShape, register func(token.Pos, string), call *ast.CallExpr) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // a conversion like Class(7), already checked as a value
	}
	var constName string
	hasClassArg := false
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t != nil && types.Identical(t, shape.classType) {
			hasClassArg = true
			checkClassValue(pass, shape, arg)
			continue
		}
		if constName == "" {
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				constName = constant.StringVal(tv.Value)
			}
		}
	}
	if hasClassArg && constName != "" {
		register(call.Pos(), constName)
	}
}

// checkClassValue requires a Class-typed expression to be a declared enum
// constant, or an identifier of type Class passing one through.
func checkClassValue(pass *Pass, shape *counterShape, e ast.Expr) {
	info := pass.Pkg.Info
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	switch obj.(type) {
	case *types.Const:
		return // a declared enum constant (CoreEvent / MemEvent)
	case *types.Var:
		return // a parameter or variable of type Class passing through
	}
	pass.Reportf(e.Pos(),
		"counter class value is not a declared Class constant; use CoreEvent or MemEvent, not a conversion or literal")
}

// unpointer strips one level of pointer.
func unpointer(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
