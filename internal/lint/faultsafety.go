package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultSafety enforces the fault-harness discipline introduced with the
// resilient measurement stack.
//
// Two rules:
//
//  1. Leaked cancel functions: an assignment binding a context.CancelFunc
//     (context.WithCancel/WithTimeout/WithDeadline, or the harness's
//     LaunchContext) must release it — call it, defer it, return it or
//     pass it on. Discarding the cancel with `_` (directly or via
//     `_ = cancel`) leaks the watchdog timer and, for deadline contexts,
//     keeps the parent's resources pinned until the deadline fires.
//
//  2. Unclassified fault-point callers: the fault-aware driver entry
//     points (RunMeteredCtx, LaunchCtx, OpenBoardWithFaults,
//     OpenSpecWithFaults) report injected faults as transient errors that
//     the caller must classify and retry. A file that calls them without
//     any visible classification (fault.PointOf / IsTransient / IsFault)
//     or retry machinery treats every injected fault as a hard error,
//     which defeats the harness. internal/driver itself, where the entry
//     points are defined, is exempt.
var FaultSafety = &Analyzer{
	Name: "faultsafety",
	Doc:  "leaked context cancel functions; fault-point calls without retry/classification",
	Run:  runFaultSafety,
}

// faultEntryPoints are the driver methods/constructors that surface
// injected faults to their caller.
var faultEntryPoints = map[string]bool{
	"RunMeteredCtx":       true,
	"LaunchCtx":           true,
	"OpenBoardWithFaults": true,
	"OpenSpecWithFaults":  true,
}

// classificationMarkers are the identifiers whose presence shows a file
// classifies transient faults.
var classificationMarkers = map[string]bool{
	"PointOf":     true,
	"IsTransient": true,
	"IsFault":     true,
}

func runFaultSafety(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		checkCancelFuncs(pass, info, file)
		if pass.Pkg.Path != "gpuperf/internal/driver" {
			checkFaultCallers(pass, info, file)
		}
	}
}

// isCancelFunc reports whether t is context.CancelFunc.
func isCancelFunc(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "CancelFunc"
}

// checkCancelFuncs applies rule 1 to one file: every cancel function bound
// by a `:=` assignment must have at least one non-discarding use.
func checkCancelFuncs(pass *Pass, info *types.Info, file *ast.File) {
	// discarded holds objects whose only observed uses are `_ = x` style
	// blank assignments; those do not count as releasing the cancel.
	discards := map[types.Object]int{}
	uses := map[types.Object]int{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			li, ok := lhs.(*ast.Ident)
			if !ok || li.Name != "_" {
				continue
			}
			if ri, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
				if obj := info.Uses[ri]; obj != nil {
					discards[obj]++
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			uses[obj]++
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		tuple, ok := info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if !isCancelFunc(tuple.At(i).Type()) {
				continue
			}
			li, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if li.Name == "_" {
				pass.Reportf(li.Pos(),
					"cancel function discarded with _; the watchdog timer leaks — call it, defer it or return it")
				continue
			}
			obj := info.Defs[li]
			if obj == nil {
				// plain `=` to an existing variable: its lifetime is managed
				// elsewhere.
				continue
			}
			if uses[obj]-discards[obj] <= 0 {
				pass.Reportf(li.Pos(),
					"cancel function %s is never released (only discarded); call it, defer it or return it", li.Name)
			}
		}
		return true
	})
}

// checkFaultCallers applies rule 2 to one file: calls to the fault-aware
// driver entry points require visible fault classification or retry
// machinery somewhere in the same file.
func checkFaultCallers(pass *Pass, info *types.Info, file *ast.File) {
	classifies := false
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if classificationMarkers[id.Name] || strings.Contains(strings.ToLower(id.Name), "retr") {
			classifies = true
			return false
		}
		return true
	})
	if classifies {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return true
		}
		if faultEntryPoints[name] {
			pass.Reportf(call.Pos(),
				"%s surfaces injected faults as transient errors, but this file never classifies or retries them; wrap the call in a retry loop and classify with fault.PointOf", name)
		}
		return true
	})
}
