package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string // import path ("gpuperf/internal/clock")
	Dir   string // absolute directory
	Name  string // package name from the source
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns it.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load parses and type-checks packages under root. root normally holds a
// go.mod, which names the module path used to resolve intra-module
// imports; without one, root is treated as a single standalone package
// directory (the mode the fixture tests use). Patterns are interpreted
// relative to root: "./..." loads every package in the tree, "dir/..."
// a subtree, anything else a single package directory. Test files
// (_test.go) are excluded: analyzers guard shipped code, and test
// packages routinely compare floats exactly or ignore errors on purpose.
func Load(root string, patterns ...string) ([]*Package, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    absRoot,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	l.modPath, err = modulePath(absRoot)
	if err != nil {
		return nil, err
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// modulePath reads the module directive from root/go.mod, or returns ""
// when there is no go.mod (standalone-directory mode).
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: %s/go.mod has no module directive", root)
}

type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // keyed by absolute directory
	loading map[string]bool
}

// expand resolves one pattern to absolute package directories.
func (l *loader) expand(pat string) ([]string, error) {
	recursive := false
	switch {
	case pat == "..." || pat == "./...":
		pat, recursive = ".", true
	case strings.HasSuffix(pat, "/..."):
		pat, recursive = strings.TrimSuffix(pat, "/..."), true
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.root, dir)
	}
	if !recursive {
		return []string{dir}, nil
	}
	var out []string
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			d := filepath.Dir(path)
			if len(out) == 0 || out[len(out)-1] != d {
				out = append(out, d)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// importPathFor maps an absolute package directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		if l.modPath != "" {
			return l.modPath, nil
		}
		return filepath.Base(dir), nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: package %s is outside module root %s", dir, l.root)
	}
	if l.modPath == "" {
		return filepath.ToSlash(rel), nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, memoizing by
// directory. Intra-module imports recurse through the loader itself;
// everything else is delegated to the stdlib source importer.
func (l *loader) loadDir(dir string) (*Package, error) {
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErrs[0])
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Name:  tpkg.Name(),
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[dir] = pkg
	return pkg, nil
}

// loaderImporter adapts the loader to types.ImporterFrom.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.root, 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.root, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
