package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsCheck enforces the observability-layer discipline introduced with the
// internal/obs instrumentation stack.
//
// Two rules:
//
//  1. Leaked spans: a call returning *obs.Span (Track.Begin) opens a
//     virtual-clock interval that only Span.End closes. A span that is
//     discarded as a bare statement, bound to `_`, or bound to a variable
//     that is never used again leaves the interval open forever — the
//     track's slice nesting breaks and the Perfetto export shows a
//     never-ending box. End it, defer its End, return it or pass it on.
//
//  2. Stray metric registration: Registry.Counter/Gauge/Histogram/
//     CounterVec walk a sorted family map under a mutex. Calling them on
//     hot paths (per cell, per sample) defeats the atomic fast path the
//     exporters rely on; registration belongs in init functions and
//     constructors (New*/new*/Open*/Observe/observe*), which cache the
//     returned handles. internal/obs itself, where the registry is
//     defined and exercised, is exempt.
//
// Both rules match by type name (Span, Track, Registry) so the fixture
// packages can model them without importing the real module.
var ObsCheck = &Analyzer{
	Name: "obscheck",
	Doc:  "instrumentation spans never ended; metric registration outside init/constructors",
	Run:  runObsCheck,
}

// registrationMethods are the Registry methods that take the family lock.
var registrationMethods = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"Histogram":  true,
	"CounterVec": true,
}

func runObsCheck(pass *Pass) {
	if pass.Pkg.Path == "gpuperf/internal/obs" {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		checkSpanLeaks(pass, info, file)
		checkRegistrationSites(pass, info, file)
	}
}

// namedTypeName returns the name of t's (possibly pointed-to) named type,
// or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isSpan reports whether t is *Span (or Span) by type name.
func isSpan(t types.Type) bool {
	return t != nil && namedTypeName(t) == "Span"
}

// checkSpanLeaks applies rule 1 to one file: every *Span produced by a
// call must have at least one non-discarding use.
func checkSpanLeaks(pass *Pass, info *types.Info, file *ast.File) {
	// discards counts `_ = x` blank assignments, which do not end a span;
	// uses counts every other mention (span.End(), defer, return, argument).
	discards := map[types.Object]int{}
	uses := map[types.Object]int{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			li, ok := lhs.(*ast.Ident)
			if !ok || li.Name != "_" {
				continue
			}
			if ri, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
				if obj := info.Uses[ri]; obj != nil {
					discards[obj]++
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				uses[obj]++
			}
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if ok && isSpan(info.TypeOf(call)) {
				pass.Reportf(call.Pos(),
					"span discarded as a bare statement; the interval never ends — bind it and call End (or defer it)")
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			// Single *Span result, or a tuple containing one.
			resultTypes := []types.Type{info.TypeOf(call)}
			if tuple, ok := info.TypeOf(call).(*types.Tuple); ok && tuple.Len() == len(stmt.Lhs) {
				resultTypes = resultTypes[:0]
				for i := 0; i < tuple.Len(); i++ {
					resultTypes = append(resultTypes, tuple.At(i).Type())
				}
			}
			if len(resultTypes) != len(stmt.Lhs) {
				return true
			}
			for i, lhs := range stmt.Lhs {
				if !isSpan(resultTypes[i]) {
					continue
				}
				li, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if li.Name == "_" {
					pass.Reportf(li.Pos(),
						"span discarded with _; the interval never ends — bind it and call End (or defer it)")
					continue
				}
				obj := info.Defs[li]
				if obj == nil {
					// plain `=` to an existing variable: ended elsewhere.
					continue
				}
				if uses[obj]-discards[obj] <= 0 {
					pass.Reportf(li.Pos(),
						"span %s is never ended; call %s.End, defer it, return it or pass it on", li.Name, li.Name)
				}
			}
		}
		return true
	})
}

// registrationSiteAllowed reports whether fn may register metrics: init
// functions and constructor-shaped names, which run once and cache the
// returned handles.
func registrationSiteAllowed(fn *ast.FuncDecl) bool {
	if fn == nil {
		// Package-level var initializers run once, like init.
		return true
	}
	name := fn.Name.Name
	if name == "init" {
		return true
	}
	for _, prefix := range []string{"New", "new", "Open", "Observe", "observe"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// checkRegistrationSites applies rule 2 to one file: Registry registration
// methods may only be called from init functions or constructors. Function
// literals inherit their enclosing declaration's name.
func checkRegistrationSites(pass *Pass, info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !registrationMethods[sel.Sel.Name] {
			return true
		}
		if namedTypeName(info.TypeOf(sel.X)) != "Registry" {
			return true
		}
		if fn := enclosingFunc(file, call.Pos()); !registrationSiteAllowed(fn) {
			pass.Reportf(call.Pos(),
				"metric registered in %s: Registry.%s takes the family lock on every call; register in init or a constructor (New*/Observe*) and cache the handle",
				fn.Name.Name, sel.Sel.Name)
		}
		return true
	})
}
