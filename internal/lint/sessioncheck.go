package lint

import (
	"go/ast"
	"go/types"
)

// SessionCheck enforces the session-engine discipline introduced with the
// context-aware campaign stack.
//
// Two rules:
//
//  1. Dropped contexts: a function that accepts a context.Context must
//     use it — pass it to a callee, check Err, select on Done. A context
//     parameter with zero uses silently breaks the cancellation chain:
//     the caller believes a cancel propagates, but the subtree below this
//     function runs to completion. A function that genuinely needs no
//     context opts out by naming the parameter _ (or leaving it
//     unnamed).
//
//  2. Deprecated campaign variants: the pre-session sweep/collect entry
//     points (characterize.SweepBoard/SweepBoardParallel/SweepBoards/
//     SweepBoardR/SweepBoardsR/Table4Workers, core.Collect/
//     CollectParallel/CollectResilient) are thin wrappers kept for
//     compatibility; new call sites must use the unified engines
//     (characterize.Sweep, core.CollectCtx) or a session.Session, which
//     thread a context and honour the checkpoint journal. The defining
//     packages themselves are exempt (the wrappers delegate to the
//     engines). Method calls are never matched — only package-level
//     functions with these names.
var SessionCheck = &Analyzer{
	Name: "sessioncheck",
	Doc:  "context parameters that are never used; calls to deprecated pre-session sweep/collect variants",
	Run:  runSessionCheck,
}

// deprecatedCampaignCalls maps each deprecated entry-point name to its
// defining package (exempt — the wrappers live there) and the suggested
// replacement.
var deprecatedCampaignCalls = map[string]struct {
	home        string
	replacement string
}{
	"SweepBoard":         {"gpuperf/internal/characterize", "characterize.Sweep or session.Session.SweepBoard"},
	"SweepBoardParallel": {"gpuperf/internal/characterize", "characterize.Sweep or session.Session.SweepBoard"},
	"SweepBoards":        {"gpuperf/internal/characterize", "characterize.Sweep or session.Session.Sweep"},
	"SweepBoardR":        {"gpuperf/internal/characterize", "characterize.Sweep or session.Session.SweepBoard"},
	"SweepBoardsR":       {"gpuperf/internal/characterize", "characterize.Sweep or session.Session.Sweep"},
	"Table4Workers":      {"gpuperf/internal/characterize", "characterize.Sweep or session.Session.Sweep"},
	"Collect":            {"gpuperf/internal/core", "core.CollectCtx or session.Session.Collect"},
	"CollectParallel":    {"gpuperf/internal/core", "core.CollectCtx or session.Session.Collect"},
	"CollectResilient":   {"gpuperf/internal/core", "core.CollectCtx or session.Session.Collect"},
}

func runSessionCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		checkDroppedCtx(pass, info, file)
		checkDeprecatedCampaignCalls(pass, info, file)
	}
}

// checkDroppedCtx applies rule 1 to one file: every named context.Context
// parameter of a function with a body must have at least one use.
func checkDroppedCtx(pass *Pass, info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		for _, field := range fd.Type.Params.List {
			if !isContextType(info.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				used := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
						used = true
					}
					return !used
				})
				if !used {
					pass.Reportf(name.Pos(),
						"context parameter %s is never used, so cancellation stops propagating here; thread it to the callees or name it _", name.Name)
				}
			}
		}
		return true
	})
}

// checkDeprecatedCampaignCalls applies rule 2 to one file: direct calls to
// the deprecated sweep/collect variant names, outside their defining
// package. Methods never match — the names are checked against
// package-level functions only.
func checkDeprecatedCampaignCalls(pass *Pass, info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.Ident:
			id = fun
		default:
			return true
		}
		dep, isDep := deprecatedCampaignCalls[id.Name]
		if !isDep || pass.Pkg.Path == dep.home {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// A method that happens to share the name (e.g.
				// counters.Set.Collect) is not a campaign entry point.
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"%s is a deprecated pre-session campaign variant; use %s (context-aware, checkpoint-correct)", id.Name, dep.replacement)
		return true
	})
}
