package lint

import (
	"go/ast"
	"go/types"
)

// DaemonCheck enforces the serving-layer discipline introduced with
// cmd/gpuperfd: HTTP handlers never write to the metrics registry.
//
// The daemon's scrape-safety contract (internal/daemon package doc) is
// that every metric family is registered once, in New or a collector
// constructor, and /metrics renders a Registry.Snapshot — so a scrape is
// a pure read, safe concurrently with running campaigns and
// byte-identical to the artifact writer. A handler that calls a
// registration method breaks that contract twice over: it takes the
// family lock on the request path, and it can mint series whose
// appearance depends on request traffic rather than on construction —
// two scrapes of an idle server would disagree.
//
// ObsCheck already flags registration outside init/constructors, but a
// handler can evade it with a constructor-shaped name (ObserveScrape,
// NewSession). This analyzer keys on the signature instead: any function
// or literal taking a ResponseWriter and a *Request (or any method named
// ServeHTTP), matched by type name like the other analyzers so fixtures
// can model net/http without importing it.
var DaemonCheck = &Analyzer{
	Name: "daemoncheck",
	Doc:  "metric registration inside HTTP handlers; handlers read the registry through Snapshot only",
	Run:  runDaemonCheck,
}

// daemonRegistrationMethods are the Registry methods that create or look
// up a family under the lock. A superset of obscheck's list: FloatGauge
// is the live power-gauge constructor the daemon's collector uses.
var daemonRegistrationMethods = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"FloatGauge": true,
	"Histogram":  true,
	"CounterVec": true,
}

func runDaemonCheck(pass *Pass) {
	if pass.Pkg.Path == "gpuperf/internal/obs" {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		checkHandlerRegistration(pass, info, file)
	}
}

// handlerShaped reports whether a function with type ft and name name is
// HTTP-handler-shaped: it takes a ResponseWriter and a *Request (in any
// order, by type name), or is a two-parameter ServeHTTP method.
func handlerShaped(info *types.Info, ft *ast.FuncType, name string) bool {
	if ft.Params == nil {
		return false
	}
	nParams := 0
	var hasWriter, hasRequest bool
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		nParams += n
		t := info.TypeOf(field.Type)
		switch namedTypeName(t) {
		case "ResponseWriter":
			hasWriter = true
		case "Request":
			if _, ok := t.(*types.Pointer); ok {
				hasRequest = true
			}
		}
	}
	if name == "ServeHTTP" && nParams == 2 {
		return true
	}
	return hasWriter && hasRequest
}

// handlerNode reports whether n opens a handler-shaped function scope,
// and the name to report it under.
func handlerNode(info *types.Info, n ast.Node) (string, bool) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		if handlerShaped(info, fn.Type, fn.Name.Name) {
			return fn.Name.Name, true
		}
	case *ast.FuncLit:
		if handlerShaped(info, fn.Type, "") {
			return "handler literal", true
		}
	}
	return "", false
}

// checkHandlerRegistration walks one file with an explicit node stack so
// a registration call is attributed to the innermost enclosing
// handler-shaped function — declaration or literal, however deeply the
// call is nested inside it.
func checkHandlerRegistration(pass *Pass, info *types.Info, file *ast.File) {
	type frame struct {
		node ast.Node
		name string // non-empty iff handler-shaped
	}
	var stack []frame
	// innermostHandler returns the nearest enclosing handler name, or "".
	innermostHandler := func() string {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].name != "" {
				return stack[i].name
			}
		}
		return ""
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		f := frame{node: n}
		if name, ok := handlerNode(info, n); ok {
			f.name = name
		}
		stack = append(stack, f)

		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !daemonRegistrationMethods[sel.Sel.Name] {
			return true
		}
		if namedTypeName(info.TypeOf(sel.X)) != "Registry" {
			return true
		}
		if h := innermostHandler(); h != "" {
			pass.Reportf(call.Pos(),
				"Registry.%s called inside HTTP handler %s: handlers must not write to the registry — register the handle in New/a collector constructor and serve scrapes from Registry.Snapshot",
				sel.Sel.Name, h)
		}
		return true
	})
}
