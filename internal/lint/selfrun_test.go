package lint

import (
	"testing"
)

// TestSelfRun is the meta-test: the full analyzer suite runs over this
// repository itself, and any finding fails tier-1 `go test ./...`. This
// is what keeps the unit, counter-classification, error and concurrency
// invariants enforced as the codebase grows — a new violation anywhere
// in the module breaks the build.
func TestSelfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module sweep is not covering the tree", len(pkgs))
	}

	// The counterclass analyzer must actually recognize the real
	// internal/counters package — otherwise its completeness guarantee
	// is silently void.
	var counters *Package
	for _, p := range pkgs {
		if p.Path == "gpuperf/internal/counters" {
			counters = p
		}
	}
	if counters == nil {
		t.Fatal("internal/counters not among loaded packages")
	}
	shape, ok := findCounterShape(counters)
	if !ok {
		t.Fatal("counterclass analyzer no longer recognizes internal/counters (Def/Class shape changed); its guarantee is void")
	}
	if len(shape.consts) < 2 {
		t.Fatalf("expected at least CoreEvent and MemEvent constants, found %d", len(shape.consts))
	}

	for _, d := range Run(pkgs, All()) {
		t.Errorf("gpulint: %s", d)
	}
}
