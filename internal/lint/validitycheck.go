package lint

import (
	"go/ast"
)

// ValidityCheck enforces the campaign-validity discipline: a report
// writer that renders table cells from measured sweep results must
// consult the triage verdict before publishing a number.
//
// The rule: a function that (a) receives measured characterization
// results — a parameter whose type mentions BenchResult — and (b) emits
// table cells (calls AddRow/AddRowf on a table builder) must also
// reference the validity layer (the validity package, a Triage engine,
// or a Verdict) somewhere in its signature or body. A writer that prints
// best-pair claims straight from the sweep silently publishes cells the
// triage engine may have classified INFRA_FLAKE or MODEL_FAILURE; the
// verdict consult is what turns those into "n/a (unstable)".
//
// Functions that render non-measured apparatus data (board specs,
// frequency tables) take no BenchResult and are exempt; helpers that
// massage results without emitting rows are exempt too. Matching is by
// name (BenchResult, AddRow/AddRowf, validity/Triage/Verdict) so fixture
// packages can model the shape without importing the module.
var ValidityCheck = &Analyzer{
	Name: "validitycheck",
	Doc:  "table writers that render measured sweep results without consuming a triage verdict",
	Run:  runValidityCheck,
}

func runValidityCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if !paramMentionsBenchResult(fd) {
				return true
			}
			if !emitsTableRows(fd.Body) {
				return true
			}
			if consultsValidity(fd) {
				return true
			}
			pass.Reportf(fd.Name.Pos(),
				"%s renders table cells from measured sweep results without consuming a triage verdict; thread the validity.Triage engine (or a Verdict) and gate unstable cells", fd.Name.Name)
			return true
		})
	}
}

// paramMentionsBenchResult reports whether any parameter type of fd
// mentions the BenchResult measurement type (directly, behind pointers,
// or inside map/slice shapes like map[string][]*BenchResult).
func paramMentionsBenchResult(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		found := false
		ast.Inspect(field.Type, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "BenchResult" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// emitsTableRows reports whether body calls AddRow or AddRowf on
// anything — the table builder's row-emission methods.
func emitsTableRows(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "AddRow" || sel.Sel.Name == "AddRowf" {
				found = true
			}
		}
		return !found
	})
	return found
}

// validityNames are the identifiers whose presence marks a verdict
// consult: the validity package qualifier, its triage engine, its
// verdict type, and the per-cell/per-bench judging methods.
var validityNames = map[string]bool{
	"validity":     true,
	"Triage":       true,
	"Verdict":      true,
	"CellVerdict":  true,
	"BenchVerdict": true,
}

// consultsValidity reports whether fd references the validity layer in
// its parameter list or body.
func consultsValidity(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && validityNames[id.Name] {
			found = true
		}
		return !found
	})
	return found
}
