package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAnalyzerFixtureCoverage is the fixture meta-test: every registered
// analyzer must ship both an ok and a bad fixture package under
// testdata/src, the bad fixture must carry at least one // want:<name>
// expectation, and ok fixtures must be expectation-free (they assert
// silence). TestFixtures then enforces the other half of the contract:
// each expectation fires exactly once — a diagnostic with no expectation
// and an expectation with no diagnostic both fail — so an analyzer can
// neither lose its fixtures nor let them rot.
func TestAnalyzerFixtureCoverage(t *testing.T) {
	for _, a := range All() {
		okDir := filepath.Join("testdata", "src", a.Name+"_ok")
		badDir := filepath.Join("testdata", "src", a.Name+"_bad")

		if fi, err := os.Stat(okDir); err != nil || !fi.IsDir() {
			t.Errorf("%s: missing ok fixture package %s", a.Name, okDir)
		} else {
			for key, exps := range parseExpectations(t, okDir) {
				for range exps {
					t.Errorf("%s: ok fixture carries a want expectation at %s; ok fixtures assert silence", a.Name, key)
				}
			}
		}

		fi, err := os.Stat(badDir)
		if err != nil || !fi.IsDir() {
			t.Errorf("%s: missing bad fixture package %s", a.Name, badDir)
			continue
		}
		n := 0
		for _, exps := range parseExpectations(t, badDir) {
			for _, exp := range exps {
				if exp.analyzer == a.Name {
					n++
				}
			}
		}
		if n == 0 {
			t.Errorf("%s: bad fixture has no // want:%s expectation; the analyzer is untested", a.Name, a.Name)
		}
	}
}
