package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitSafety guards the MHz/Hz/ns unit conventions of the clock model.
//
// Frequencies cross the codebase in two unit systems: arch.Spec stores
// board tables in MHz (Table I of the paper), while the timing simulator
// and the energy model consume hertz and seconds. The only sanctioned
// crossings are the conversion helpers (clock.State.CoreHz and friends,
// and the arch derived-quantity accessors). Anywhere else, multiplying a
// frequency- or latency-named value by a power-of-a-thousand literal is
// a unit conversion hiding in model code — the exact bug class that
// corrupts the Fig. 4 ladder silently, since a 1e3 error still produces
// plausible-looking joules.
//
// The same analyzer flags exact float ==/!= comparisons: regression
// coefficients, R̄² scores and energy totals come out of iterative
// arithmetic, so exact comparison is almost always a latent bug.
// Comparisons against an exact constant 0 are allowed (zero is a common
// sentinel and is preserved exactly), as are packages clock and arch —
// the two places whose whole job is unit conversion.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "unit conversions outside conversion helpers; exact float equality",
	Run:  runUnitSafety,
}

// unitScales are the power-of-a-thousand factors that convert between
// MHz/GHz/Hz and ns/s.
var unitScales = map[float64]bool{
	1e3: true, 1e6: true, 1e9: true,
	1e-3: true, 1e-6: true, 1e-9: true,
}

// conversionPackages may convert units freely: they define the unit system.
var conversionPackages = map[string]bool{"clock": true, "arch": true}

// unitSuffixes mark identifiers carrying an explicit unit, and functions
// whose name promises a unit conversion.
var unitSuffixes = []string{"Hz", "NS", "Ns", "Sec", "Secs", "GBs", "PerSec"}

func hasUnitSuffix(name string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// unitName extracts the identifier name an expression is "about":
// x.CoreFreqMHz(...) → CoreFreqMHz, spec.DRAMLatencyNS → DRAMLatencyNS.
func unitName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return unitName(e.Fun)
	case *ast.ParenExpr:
		return unitName(e.X)
	}
	return ""
}

func runUnitSafety(pass *Pass) {
	if conversionPackages[pass.Pkg.Name] {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.MUL, token.QUO:
				checkUnitMix(pass, file, be)
			case token.EQL, token.NEQ:
				checkFloatEq(pass, info, be)
			}
			return true
		})
	}
}

// checkUnitMix flags freqLike * 1e6 (and /, in either operand order)
// outside functions whose name itself carries a unit suffix.
func checkUnitMix(pass *Pass, file *ast.File, be *ast.BinaryExpr) {
	info := pass.Pkg.Info
	scaleOf := func(e ast.Expr) (float64, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil {
			return 0, false
		}
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return f, unitScales[f]
	}
	check := func(val, lit ast.Expr) {
		name := unitName(val)
		if name == "" || !hasUnitSuffix(name) {
			return
		}
		scale, ok := scaleOf(lit)
		if !ok {
			return
		}
		// A constant-valued "frequency" operand is itself a literal
		// (e.g. a named const table); that is a definition, not a use.
		if tv, ok := info.Types[val]; ok && tv.Value != nil {
			return
		}
		if fd := enclosingFunc(file, be.Pos()); fd != nil && hasUnitSuffix(fd.Name.Name) {
			return // a declared conversion helper
		}
		pass.Reportf(be.Pos(),
			"unit conversion (%s %s %g) outside a conversion helper; use the clock/arch accessors or name the function with a unit suffix",
			name, be.Op, scale)
	}
	check(be.X, be.Y)
	check(be.Y, be.X)
}

// checkFloatEq flags exact ==/!= between floating-point operands.
func checkFloatEq(pass *Pass, info *types.Info, be *ast.BinaryExpr) {
	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isZero := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil {
			return false
		}
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return f == 0
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil
	}
	if !isFloat(be.X) || !isFloat(be.Y) {
		return
	}
	if isZero(be.X) || isZero(be.Y) {
		return // zero is preserved exactly; a common "unset" sentinel
	}
	if isConst(be.X) && isConst(be.Y) {
		return // compile-time comparison
	}
	pass.Reportf(be.Pos(),
		"exact float %s comparison in model code; compare against a tolerance (or //gpulint:ignore unitsafety if bit-exactness is the point)",
		be.Op)
}
