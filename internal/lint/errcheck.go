package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrCheck enforces error hygiene in shipped code.
//
// Two rules:
//
//  1. A call whose result set includes an error must not be used as a
//     bare statement: a dropped error from bios.PatchBootPair or
//     driver.SetClocks means an experiment silently runs at the wrong
//     frequency pair — the measurement completes and the numbers are
//     wrong. Assigning to _ is accepted as an explicit acknowledgement,
//     and deferred calls are exempt (deferred Close on read paths is
//     conventional). Print-style helpers whose error is conventionally
//     ignored (fmt.Print*/Fprint*, strings.Builder, bytes.Buffer) are
//     whitelisted.
//
//  2. fmt.Errorf formatting an error operand with %v or %s severs the
//     error chain: callers can no longer errors.Is/As through it. Use
//     %w. (Positional/indexed format arguments are beyond this
//     analyzer and are skipped.)
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "unchecked error returns; fmt.Errorf without %w",
	Run:  runErrCheck,
}

// errcheckWhitelist lists callee full-name prefixes whose returned error
// is conventionally ignored.
var errcheckWhitelist = []string{
	"fmt.Print",
	"fmt.Fprint",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
	"(*text/tabwriter.Writer).Write",
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred calls are exempt; goroutines belong to the
				// concurrency analyzer. Still descend into the call's
				// arguments and any function literal body.
				return true
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedError(pass, info, call)
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, info, n)
			}
			return true
		})
	}
}

// returnsError reports whether the call's type includes an error result.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFullName resolves a call's static callee to its qualified name
// ("fmt.Errorf", "(*strings.Builder).WriteString"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

func checkDroppedError(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if !returnsError(info, call) {
		return
	}
	name := calleeFullName(info, call)
	for _, w := range errcheckWhitelist {
		if strings.HasPrefix(name, w) {
			return
		}
	}
	display := name
	if display == "" {
		display = "call"
	}
	pass.Reportf(call.Pos(), "unchecked error returned by %s; handle it or assign to _ explicitly", display)
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// with %v or %s instead of wrapping it with %w.
func checkErrorfWrap(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if calleeFullName(info, call) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string: nothing to analyze
	}
	format := constant.StringVal(tv.Value)
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed arguments: out of scope
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break // vet territory (missing args), not ours
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		argType := info.TypeOf(call.Args[argIdx])
		if argType == nil {
			continue
		}
		errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		if isErrorType(argType) || types.Implements(argType, errType) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"error formatted with %%%c severs the error chain; use %%w so callers can errors.Is/As through it", verb)
		}
	}
}

// formatVerbs returns the argument-consuming verbs of a printf format
// string in order. It understands flags, width and precision (including
// *, which consumes an argument and is reported as verb '*'). It bails
// out (ok=false) on explicit argument indexes.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width / precision, each possibly *
		for pass := 0; pass < 2; pass++ {
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
			if pass == 0 && i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs, true
}
