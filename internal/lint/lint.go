// Package lint is a project-specific static-analysis suite for gpuperf.
//
// The codebase encodes physical invariants the compiler cannot see: MHz
// vs. Hz scaling factors in internal/clock, the core-event vs. memory-event
// counter classification that the paper's Eq. (1)/(2) depend on, and
// H/M/L frequency pairs from Tables I/III. A wrong unit or an unclassified
// counter silently corrupts the Fig. 4 energy-saving ladder and the
// Tables V–VIII regression results. The analyzers here turn those
// invariants into build-time checks:
//
//   - unitsafety:   unit conversions on frequency/latency-named values
//     outside whitelisted conversion helpers, and exact float
//     ==/!= comparisons.
//   - counterclass: every registered counter carries an explicit
//     core-event/memory-event classification, exactly once.
//   - errcheck:     unchecked error returns and fmt.Errorf wrapping an
//     error with %v/%s instead of %w.
//   - concurrency:  sync.Mutex/WaitGroup values copied by value, and
//     goroutines launched with no visible completion signal.
//   - faultsafety:  context cancel functions that are discarded rather
//     than released, and fault-aware driver calls in files with no
//     visible retry/classification machinery.
//   - obscheck:     instrumentation spans that are never ended, and
//     metric registration outside init functions and constructors.
//   - daemoncheck:  metric registration inside HTTP-handler-shaped
//     functions — the gpuperfd scrape-safety contract says handlers
//     read the registry through Snapshot and never mint series.
//   - sessioncheck: context.Context parameters that are accepted but
//     never used (breaking the cancellation chain), and calls to the
//     deprecated pre-session sweep/collect variants outside their
//     defining packages.
//   - validitycheck: table writers that render measured sweep results
//     (BenchResult parameters feeding AddRow/AddRowf) without consuming
//     a triage verdict from the validity layer.
//   - determinism:  cross-function taint pass — nondeterminism sources
//     (wall clock, global math/rand, map iteration order, select races,
//     unordered goroutine fan-in) reaching the byte-identity artifact
//     paths through the module call graph (callgraph.go).
//   - detcontract:  //gpulint:deterministic contract comments verified
//     against the same call-graph taint, so a claim of determinism is
//     checked, never trusted.
//   - staleignore:  //gpulint:ignore directives that suppressed nothing
//     in this run — dead suppressions rot silently otherwise.
//
// The framework is stdlib-only (go/ast, go/parser, go/types): the module
// deliberately has an empty dependency set, so golang.org/x/tools is not
// available. Packages are loaded and type-checked by the loader in
// load.go; analyzers receive fully type-checked syntax. Most analyzers
// inspect one package at a time (Analyzer.Run); the determinism family
// runs once over the whole package set (Analyzer.RunModule) on top of a
// shared call graph.
//
// A finding can be acknowledged in place with a trailing line comment
//
//	//gpulint:ignore <analyzer>[,<analyzer>...] -- reason
//
// which suppresses diagnostics from the named analyzers on that line.
// The staleignore pseudo-analyzer audits these: a directive that
// suppressed nothing (judged only when every analyzer it names actually
// ran) is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// TraceStep is one hop of a -why explanation: a position plus what
// happens there ("sink X", "f calls g", "source: time.Now() in h").
type TraceStep struct {
	Pos  token.Position
	Desc string
}

// Diagnostic is one analyzer finding at one source position. Trace, when
// non-empty, carries the source→sink call path behind an interprocedural
// finding (printed by gpulint -why).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Trace    []TraceStep
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named rule. Exactly one of Run and RunModule is set
// (except for staleignore, which the framework implements itself): Run
// inspects one package at a time, RunModule runs once over the whole
// loaded package set with the shared call-graph facts.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one (analyzer, package) pairing through a run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one module-level analyzer across the whole package
// set. The determinism facts (call graph, taint, sink reachability) are
// computed once and shared by every module analyzer in the run.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags *[]Diagnostic
	facts *detFacts
}

// detFacts returns the shared determinism analyses, computing them on
// first use.
func (p *ModulePass) detFacts() *detFacts {
	if p.facts == nil {
		p.facts = computeDetFacts(p.Pkgs)
	}
	return p.facts
}

// report records a finding at pos (resolved through pkg's file set) with
// an optional -why trace.
func (p *ModulePass) report(pkg *Package, pos token.Pos, trace []TraceStep, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pkg.Fset.Position(pos),
		Message:  msg,
		Trace:    trace,
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UnitSafety, CounterClass, ErrCheck, Concurrency, FaultSafety,
		ObsCheck, DaemonCheck, SessionCheck, ValidityCheck, Determinism, DetContract, StaleIgnore,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, column, analyzer and message, with
// exact duplicates removed — the output is byte-stable run-to-run.
// Findings on lines carrying a matching //gpulint:ignore directive are
// dropped; if the staleignore analyzer is in the set, directives that
// suppressed nothing (and whose analyzers all ran) are reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	mp := &ModulePass{Pkgs: pkgs, diags: &raw}
	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, pkg := range pkgs {
				pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
				a.Run(pass)
			}
		case a.RunModule != nil:
			mp.Analyzer = a
			a.RunModule(mp)
		}
	}

	ignores := collectIgnores(pkgs)
	var diags []Diagnostic
	for _, d := range raw {
		if ignores.covers(d) {
			continue
		}
		diags = append(diags, d)
	}
	for _, a := range analyzers {
		if a == StaleIgnore {
			diags = append(diags, ignores.stale(analyzers)...)
			break
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedup identical findings (same analyzer, position and message):
	// overlapping patterns may report one site twice, and the JSON output
	// is pinned byte-stable by a golden test.
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			prev := out[len(out)-1]
			if prev.Analyzer == d.Analyzer && prev.Pos == d.Pos && prev.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// ignoreEntry is one //gpulint:ignore directive with use tracking.
type ignoreEntry struct {
	pos   token.Position
	names map[string]bool // analyzer names; "*" suppresses all
	list  string          // names as written, for the stale message
	used  bool
}

// ignoreIndex maps file:line to the directive on that line.
type ignoreIndex map[string]*ignoreEntry

// covers reports whether d is suppressed, marking the directive used.
func (idx ignoreIndex) covers(d Diagnostic) bool {
	e := idx[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
	if e == nil || !(e.names["*"] || e.names[d.Analyzer]) {
		return false
	}
	e.used = true
	return true
}

// stale returns a staleignore diagnostic for every directive that
// suppressed nothing and is auditable under the analyzers that actually
// ran: every analyzer the directive names must have been in the run (a
// bare directive needs the full suite), so `gpulint -only unitsafety`
// never declares an errcheck suppression dead. Directives naming an
// analyzer that does not exist at all are always reported.
func (idx ignoreIndex) stale(analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a.Run != nil || a.RunModule != nil {
			ran[a.Name] = true
		}
	}
	full := true
	for _, a := range All() {
		if (a.Run != nil || a.RunModule != nil) && !ran[a.Name] {
			full = false
		}
	}

	var entries []*ignoreEntry
	for _, e := range idx {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].pos.Filename != entries[j].pos.Filename {
			return entries[i].pos.Filename < entries[j].pos.Filename
		}
		return entries[i].pos.Line < entries[j].pos.Line
	})

	var out []Diagnostic
	for _, e := range entries {
		if e.used {
			continue
		}
		var names []string
		for name := range e.names {
			names = append(names, name)
		}
		sort.Strings(names)
		auditable := true
		unknown := ""
		for _, name := range names {
			switch {
			case name == "*":
				auditable = auditable && full
			case ByName(name) == nil:
				if unknown == "" {
					unknown = name
				}
			case !ran[name]:
				auditable = false
			}
		}
		if unknown != "" {
			out = append(out, Diagnostic{
				Analyzer: StaleIgnore.Name,
				Pos:      e.pos,
				Message:  fmt.Sprintf("//gpulint:ignore names unknown analyzer %q (try gpulint -list); it can never suppress anything", unknown),
			})
			continue
		}
		if !auditable {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: StaleIgnore.Name,
			Pos:      e.pos,
			Message:  fmt.Sprintf("//gpulint:ignore %s suppressed nothing in this run; the violation it acknowledged is gone — remove the directive", e.list),
		})
	}
	return out
}

// collectIgnores gathers //gpulint:ignore directives from every package.
func collectIgnores(pkgs []*Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//gpulint:ignore")
					if !ok {
						continue
					}
					// Everything after "--" is a human-readable reason.
					if i := strings.Index(text, "--"); i >= 0 {
						text = text[:i]
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					e := idx[key]
					if e == nil {
						e = &ignoreEntry{pos: pos, names: map[string]bool{}}
						idx[key] = e
					}
					fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
					if len(fields) == 0 {
						e.names["*"] = true
						e.list = "(all analyzers)"
					}
					for _, n := range fields {
						e.names[n] = true
					}
					if len(fields) > 0 {
						e.list = strings.Join(fields, ",")
					}
				}
			}
		}
	}
	return idx
}

// enclosingFunc returns the innermost FuncDecl containing pos in file,
// or nil for package-level positions.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
