// Package lint is a project-specific static-analysis suite for gpuperf.
//
// The codebase encodes physical invariants the compiler cannot see: MHz
// vs. Hz scaling factors in internal/clock, the core-event vs. memory-event
// counter classification that the paper's Eq. (1)/(2) depend on, and
// H/M/L frequency pairs from Tables I/III. A wrong unit or an unclassified
// counter silently corrupts the Fig. 4 energy-saving ladder and the
// Tables V–VIII regression results. The analyzers here turn those
// invariants into build-time checks:
//
//   - unitsafety:   unit conversions on frequency/latency-named values
//     outside whitelisted conversion helpers, and exact float
//     ==/!= comparisons.
//   - counterclass: every registered counter carries an explicit
//     core-event/memory-event classification, exactly once.
//   - errcheck:     unchecked error returns and fmt.Errorf wrapping an
//     error with %v/%s instead of %w.
//   - concurrency:  sync.Mutex/WaitGroup values copied by value, and
//     goroutines launched with no visible completion signal.
//   - faultsafety:  context cancel functions that are discarded rather
//     than released, and fault-aware driver calls in files with no
//     visible retry/classification machinery.
//   - obscheck:     instrumentation spans that are never ended, and
//     metric registration outside init functions and constructors.
//   - sessioncheck: context.Context parameters that are accepted but
//     never used (breaking the cancellation chain), and calls to the
//     deprecated pre-session sweep/collect variants outside their
//     defining packages.
//
// The framework is stdlib-only (go/ast, go/parser, go/types): the module
// deliberately has an empty dependency set, so golang.org/x/tools is not
// available. Packages are loaded and type-checked by the loader in
// load.go; analyzers receive fully type-checked syntax.
//
// A finding can be acknowledged in place with a trailing line comment
//
//	//gpulint:ignore <analyzer>[,<analyzer>...] -- reason
//
// which suppresses diagnostics from the named analyzers on that line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named rule. Run inspects the package held by the Pass
// and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) pairing through a run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{UnitSafety, CounterClass, ErrCheck, Concurrency, FaultSafety, ObsCheck, SessionCheck}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line and column. Findings on lines carrying
// a matching //gpulint:ignore directive are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := ignoreDirectives(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if ignores.covers(d) {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreSet maps file:line to the analyzer names suppressed there
// ("*" suppresses all).
type ignoreSet map[string]map[string]bool

func (s ignoreSet) covers(d Diagnostic) bool {
	names := s[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
	return names != nil && (names["*"] || names[d.Analyzer])
}

// ignoreDirectives collects //gpulint:ignore directives from a package.
func ignoreDirectives(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//gpulint:ignore")
				if !ok {
					continue
				}
				// Everything after "--" is a human-readable reason.
				if i := strings.Index(text, "--"); i >= 0 {
					text = text[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				names := set[key]
				if names == nil {
					names = map[string]bool{}
					set[key] = names
				}
				fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(fields) == 0 {
					names["*"] = true
				}
				for _, n := range fields {
					names[n] = true
				}
			}
		}
	}
	return set
}

// enclosingFunc returns the innermost FuncDecl containing pos in file,
// or nil for package-level positions.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
