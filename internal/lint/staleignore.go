package lint

// StaleIgnore audits the suppression mechanism itself. A
// //gpulint:ignore directive is an acknowledgement of one concrete
// finding; when the code it excused is later fixed or deleted, the
// directive stays behind and silently suppresses the *next* violation
// introduced on that line. This pseudo-analyzer reports every directive
// that suppressed nothing in the current run, plus directives naming an
// analyzer that does not exist (typos never suppress anything).
//
// It has no Run function: the framework implements it inside Run, where
// the use-tracking of the ignore index lives. A directive is only judged
// stale when every analyzer it names actually ran — a bare directive
// (suppressing all analyzers) needs the full suite — so partial `-only`
// runs never produce false stale reports.
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc:  "//gpulint:ignore directives that suppressed nothing this run",
}
