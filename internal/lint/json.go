package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// jsonDiag is the wire form of one diagnostic: fixed field order, one
// object per line. cmd/gpulint and the golden byte-stability test share
// this encoder so the pinned bytes are the shipped bytes.
type jsonDiag struct {
	File     string      `json:"file"`
	Line     int         `json:"line"`
	Col      int         `json:"col"`
	Analyzer string      `json:"analyzer"`
	Message  string      `json:"message"`
	Trace    []jsonTrace `json:"trace,omitempty"`
}

type jsonTrace struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Desc string `json:"desc"`
}

// relTo shortens path relative to base when it stays inside base.
func relTo(base, path string) string {
	if base == "" {
		return path
	}
	if r, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}

// WriteJSON writes diags as JSONL: one object per diagnostic, fields in
// fixed order, file paths relative to base where possible. Traces are
// included only when withTrace is set (gpulint -why). Run already sorts
// and dedups, so for a given tree the bytes are stable run-to-run.
func WriteJSON(w io.Writer, diags []Diagnostic, base string, withTrace bool) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiag{
			File:     relTo(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if withTrace {
			for _, s := range d.Trace {
				jd.Trace = append(jd.Trace, jsonTrace{
					File: relTo(base, s.Pos.Filename),
					Line: s.Pos.Line,
					Col:  s.Pos.Column,
					Desc: s.Desc,
				})
			}
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
