// Package unitsafety_bad is a lint fixture: every line marked with a
// want comment must be flagged by the unitsafety analyzer.
package unitsafety_bad

type spec struct {
	CoreFreqMHz   float64
	DRAMLatencyNS float64
}

// bandwidth converts MHz to Hz inline, outside any conversion helper —
// the bug class that silently rescales the whole energy ladder.
func bandwidth(s *spec) float64 {
	return s.CoreFreqMHz * 1e6 // want:unitsafety "unit conversion"
}

func latencyBudget(s *spec) float64 {
	return s.DRAMLatencyNS / 1e9 // want:unitsafety "unit conversion"
}

func sameFreq(a, b float64) bool {
	return a == b // want:unitsafety "exact float"
}

func drifted(meas, truth float64) bool {
	return meas != truth // want:unitsafety "exact float"
}

var _ = bandwidth
var _ = latencyBudget
var _ = sameFreq
var _ = drifted
