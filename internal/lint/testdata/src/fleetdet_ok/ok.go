// Package fleetdet_ok is a lint fixture for the fleet slice of the
// determinism pass: the clean shapes the shard-count byte-identity
// contract depends on — a per-device RNG split derived purely from
// (seed, index), an associative merge, and a finalize that walks its
// maps in sorted order.
package fleetdet_ok

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Agg is a toy shard aggregate: per-benchmark counts.
type Agg struct {
	counts map[string]int
}

// Merge folds another shard's aggregate in: pure integer addition, the
// associative shape that makes the shard count invisible in the report.
func (a *Agg) Merge(o *Agg) {
	for k, v := range o.counts {
		a.counts[k] += v // map range is fine: += into a map is order-independent
	}
}

// Finalize renders the merged aggregate in sorted key order — the only
// iteration order that survives a reshard.
func (a *Agg) Finalize() string {
	keys := make([]string, 0, len(a.counts))
	for k := range a.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, a.counts[k])
	}
	b.WriteString(fmt.Sprint(deviceJitter(42, 7)))
	return b.String()
}

// deviceJitter is the fleet RNG split: a generator derived from
// (seed, device index) alone — a seeded constructor, not the global
// math/rand, so the taint pass must stay silent.
func deviceJitter(seed int64, device int) float64 {
	r := rand.New(rand.NewSource(seed ^ int64(device)*0x9e3779b9))
	return r.Float64()
}
