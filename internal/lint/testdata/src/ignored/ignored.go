// Package ignored is a lint fixture for the //gpulint:ignore directive:
// the flagged comparison below is suppressed with a reason, so the suite
// must report nothing.
package ignored

func same(a, b float64) bool {
	return a == b //gpulint:ignore unitsafety -- fixture: bit-exactness is the point here
}

var _ = same
