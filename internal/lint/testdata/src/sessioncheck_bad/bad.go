// Package sessioncheck_bad is a lint fixture: every line marked with a
// want comment must be flagged by the sessioncheck analyzer.
package sessioncheck_bad

import "context"

// Local package-level mocks of the deprecated campaign variants; the
// fixture package is not their defining package, so calls are flagged.
func SweepBoardParallel(board string, seed int64, workers int) error { return nil }
func Table4Workers(seed int64, workers int) error                    { return nil }
func CollectParallel(board string, seed int64, workers int) error    { return nil }

func run() error { return nil }

// The context is accepted and silently dropped: a cancel upstream never
// reaches run.
func dropped(ctx context.Context, board string) error { // want:sessioncheck "never used"
	return run()
}

// Dropping it in a method breaks the chain just the same.
type campaign struct{}

func (c *campaign) sweep(ctx context.Context) error { // want:sessioncheck "never used"
	return run()
}

// Calls to the deprecated pre-session variants outside their defining
// package must migrate to the unified engines.
func legacySweep() error {
	return SweepBoardParallel("GTX 480", 42, 4) // want:sessioncheck "deprecated"
}

func legacyTable4() error {
	return Table4Workers(42, 4) // want:sessioncheck "deprecated"
}

func legacyCollect() error {
	return CollectParallel("GTX 480", 42, 4) // want:sessioncheck "deprecated"
}
