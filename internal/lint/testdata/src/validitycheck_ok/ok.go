// Package validitycheck_ok is a lint fixture: nothing here may be
// flagged by the validitycheck analyzer (or any other).
package validitycheck_ok

// Local mocks of the measurement, table-builder and validity shapes;
// matching is by name, so the fixture models them without importing the
// module.
type BenchResult struct {
	Benchmark string
	BestPair  string
}

type Verdict struct{ Class string }

type Triage struct{}

func (tr *Triage) BenchVerdict(table, board, bench string) (Verdict, bool) {
	return Verdict{Class: "VALID"}, true
}

type Table struct{ rows [][]string }

func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// A gated writer: the triage verdict is consulted before a best-pair
// claim is published, and unstable cells render as such.
func renderGated(t *Table, tr *Triage, results []*BenchResult) {
	for _, r := range results {
		cell := r.BestPair
		if v, ok := tr.BenchVerdict("table4", "board", r.Benchmark); ok && v.Class != "VALID" {
			cell = "n/a (unstable)"
		}
		t.AddRow(r.Benchmark, cell)
	}
}

// A helper that aggregates measured results without emitting table rows
// is exempt — it publishes nothing.
func countResults(results []*BenchResult) int { return len(results) }

// A table writer with no measured input (apparatus specs) is exempt.
func renderSpecs(t *Table) { t.AddRow("GTX 680", "Kepler") }
