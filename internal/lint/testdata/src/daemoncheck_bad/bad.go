// Package daemoncheck_bad models the serving-layer shapes (Registry,
// ResponseWriter, *Request — matched by type name, as the analyzer does)
// and breaks the scrape-safety contract: metric registration from inside
// HTTP handlers.
package daemoncheck_bad

// ResponseWriter and Request mirror the net/http shapes the analyzer
// keys on.
type ResponseWriter interface {
	Header() map[string][]string
}

type Request struct{ Method string }

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter    { return &Counter{} }
func (r *Registry) FloatGauge(name string) *Counter { return &Counter{} }
func (r *Registry) Histogram(name string) *Counter  { return &Counter{} }

type Mux struct{}

func (m *Mux) HandleFunc(pattern string, h func(ResponseWriter, *Request)) {}

type server struct{ reg *Registry }

// handleScrape registers on the scrape path: the family lock is taken
// per request and the series appears only once this route is hit.
func (s *server) handleScrape(w ResponseWriter, r *Request) {
	s.reg.FloatGauge("bad_scrape_gauge").Inc() // want:daemoncheck "inside HTTP handler handleScrape"
}

// ObserveScrape is constructor-shaped by name, so obscheck trusts it —
// but its signature says HTTP handler, and daemoncheck keys on that.
func ObserveScrape(reg *Registry, w ResponseWriter, r *Request) {
	reg.Counter("bad_evasive_total").Inc() // want:daemoncheck "inside HTTP handler ObserveScrape"
}

// ServeHTTP is a handler by method name, whatever its parameter types.
func (s *server) ServeHTTP(w ResponseWriter, r *Request) {
	s.reg.Histogram("bad_latency_hist").Inc() // want:daemoncheck "inside HTTP handler ServeHTTP" // want:obscheck "register in init or a constructor"
}

// routes registers from a handler literal: the literal's own signature,
// not the enclosing declaration's, makes it a handler.
func (s *server) routes(m *Mux) {
	m.HandleFunc("GET /metrics", func(w ResponseWriter, r *Request) {
		s.reg.Counter("bad_hits_total").Inc() // want:daemoncheck "inside HTTP handler handler literal" // want:obscheck "register in init or a constructor"
	})
}

// newServer is the control: registration in a constructor is the
// sanctioned idiom, handler-adjacent or not.
func newServer(reg *Registry) *server {
	reg.Counter("ok_boot_total").Inc()
	return &server{reg: reg}
}
