// Package obscheck_bad models the internal/obs API shapes and misuses
// them: leaked spans and metric registration on a hot path.
package obscheck_bad

type Span struct{ open bool }

func (s *Span) End() {
	if s != nil {
		s.open = false
	}
}

type Track struct{}

func (t *Track) Begin(name string) *Span { return &Span{open: true} }

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter   { return &Counter{} }
func (r *Registry) Histogram(name string) *Counter { return &Counter{} }

// leakBare discards the span as a bare statement: the interval never ends.
func leakBare(t *Track) {
	t.Begin("leaked") // want:obscheck "bare statement"
}

// leakBlank binds the span to the blank identifier.
func leakBlank(t *Track) {
	_ = t.Begin("blanked") // want:obscheck "discarded with _"
}

// leakBound binds the span but never ends, returns or passes it.
func leakBound(t *Track) {
	span := t.Begin("bound") // want:obscheck "never ended"
	_ = span
}

// registerPerCell registers a metric on the hot path instead of caching
// the handle in a constructor.
func registerPerCell(r *Registry) {
	r.Counter("bad_cells_total").Inc() // want:obscheck "register in init or a constructor"
}

// registerInLiteral does the same from a function literal, which inherits
// its enclosing declaration's (non-constructor) name.
func registerInLiteral(r *Registry) func() {
	return func() {
		r.Histogram("bad_rates").Inc() // want:obscheck "register in init or a constructor"
	}
}

// endedSpan is the control: a correctly ended span alongside the leaks.
func endedSpan(t *Track) {
	span := t.Begin("fine")
	span.End()
}
