// Package faultsafety_bad is a lint fixture: every line marked with a
// want comment must be flagged by the faultsafety analyzer.
package faultsafety_bad

import (
	"context"
	"time"
)

type dev struct{}

func (d *dev) RunMeteredCtx(_ context.Context, name string) error { return nil }

func (d *dev) LaunchCtx(_ context.Context, name string) error { return nil }

func OpenBoardWithFaults(name string) (*dev, error) { return &dev{}, nil }

// discarded: the watchdog timer leaks until the deadline fires.
func leakByBlank() context.Context {
	ctx, _ := context.WithTimeout(context.Background(), time.Second) // want:faultsafety "discarded with _"
	return ctx
}

// released only into a blank assignment — never actually called.
func leakByBlankAssign() context.Context {
	ctx, cancel := context.WithCancel(context.Background()) // want:faultsafety "never released"
	_ = cancel
	return ctx
}

// This file has no fault classification or retry machinery, so every
// fault-point call swallows injected faults as hard errors.
func measure(d *dev, ctx context.Context) error {
	if err := d.LaunchCtx(ctx, "warmup"); err != nil { // want:faultsafety "classifies"
		return err
	}
	return d.RunMeteredCtx(ctx, "bench") // want:faultsafety "classifies"
}

func boot() (*dev, error) {
	return OpenBoardWithFaults("GTX 480") // want:faultsafety "classifies"
}
