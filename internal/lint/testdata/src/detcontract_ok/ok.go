// Package detcontract_ok is a lint fixture: both contract placements —
// doc comment and trailing on the declaration line — on functions that
// really are deterministic, so the verifier must stay silent.
package detcontract_ok

// Stamp derives a pseudo-timestamp from the campaign seed alone.
//
//gpulint:deterministic
func Stamp(seed int64) int64 {
	return mix(seed)
}

func mix(seed int64) int64 { //gpulint:deterministic
	return seed * 2654435761
}
