// Package fleetdet_bad is a lint fixture: fleet-shaped sinks (the
// aggregate Merge/Finalize surface) reached by nondeterminism. Every
// line marked with a want comment must be flagged — these are exactly
// the shapes that would make a fleet report differ across shard counts.
package fleetdet_bad

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Agg is a toy shard aggregate.
type Agg struct {
	counts map[string]int
}

// Merge gathers shard results in arrival order: whichever shard's
// goroutine finishes first wins the append — byte-identity breaks on
// every reschedule.
func (a *Agg) Merge(shards []*Agg) []*Agg {
	ch := make(chan *Agg, len(shards))
	for _, s := range shards {
		go func() { ch <- s }()
	}
	var merged []*Agg
	for range shards {
		merged = append(merged, <-ch) // want:determinism "fan-in"
	}
	return merged
}

// Finalize emits the aggregate in map order and stamps it through a
// helper one hop down.
func (a *Agg) Finalize() string {
	var b strings.Builder
	for k, v := range a.counts { // want:determinism "map range"
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	b.WriteString(stamp())
	return b.String()
}

// stamp sits one call hop below the Finalize sink: the clock and the
// process-shared generator both poison the report.
func stamp() string {
	return fmt.Sprint(
		time.Now(),     // want:determinism "time.Now"
		rand.Float64(), // want:determinism "math/rand"
	)
}
