// Package concurrency_ok is a lint fixture: the concurrency analyzer
// must report nothing here.
package concurrency_ok

import (
	"context"
	"sync"
)

type device struct {
	mu sync.Mutex
	n  int
}

// count takes the receiver by pointer, so the mutex is never copied.
func (d *device) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// sweep is the sanctioned worker-pool shape: WaitGroup plus channels.
func sweep(items []int) int {
	var wg sync.WaitGroup
	results := make(chan int, len(items))
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			results <- v * 2
		}(it)
	}
	wg.Wait()
	close(results)
	total := 0
	for r := range results {
		total += r
	}
	return total
}

// watch ties the goroutine's lifetime to a context.
func watch(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// launch hands the worker a channel: the completion path is visible in
// the call.
func launch(jobs chan int) {
	go worker(jobs)
}

func worker(jobs chan int) {
	for range jobs {
	}
}

var _ = (*device).count
var _ = sweep
var _ = watch
var _ = launch
