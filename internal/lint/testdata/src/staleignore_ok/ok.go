// Package staleignore_ok is a lint fixture: the directive below
// suppresses a real errcheck finding, so the stale-ignore audit must
// stay silent.
package staleignore_ok

import "os"

func cleanup() {
	os.Remove("tmp-artifact") //gpulint:ignore errcheck -- best-effort cleanup; failure leaves a stray temp file only
}
