// Package counterclass_bad is a lint fixture mirroring the shape of
// internal/counters: every line marked with a want comment must be
// flagged by the counterclass analyzer. The first case is the
// acceptance-critical one — a counter left unclassified (the zero value
// would silently mean core-event and skew the Eq. (1)/(2) split).
package counterclass_bad

type Class int

const (
	CoreEvent Class = iota
	MemEvent
)

type Def struct {
	Name  string
	Class Class
}

func def(name string, c Class) Def { return Def{Name: name, Class: c} }

var defs = []Def{
	{Name: "inst_executed", Class: CoreEvent},
	{Name: "dram_reads"}, // want:counterclass "not classified"
}

var smuggled = def("atom_count", Class(7)) // want:counterclass "not a declared Class constant"

func registry() []Def {
	return []Def{
		def("branch", CoreEvent),
		def("branch", MemEvent), // want:counterclass "registered more than once"
	}
}

var _ = defs
var _ = smuggled
var _ = registry
