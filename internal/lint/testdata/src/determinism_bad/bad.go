// Package determinism_bad is a lint fixture: every line marked with a
// want comment must be flagged by the determinism taint pass. WriteReport
// and Fingerprint match the fixture-mode sink shapes (artifact writer,
// cache-key constructor); the sources below sit up to two call hops
// beneath them.
package determinism_bad

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"
)

// WriteReport is an artifact writer: a sink root.
func WriteReport(w io.Writer, rows map[string]int) {
	stamp()
	for name, v := range rows { // want:determinism "map range"
		fmt.Fprintf(w, "%s=%d\n", name, v)
	}
}

// stamp is one hop below the sink; sample two hops.
func stamp() { sample() }

func sample() {
	_ = time.Now()  // want:determinism "time.Now"
	_ = rand.Int()  // want:determinism "math/rand"
	_ = os.Getpid() // want:determinism "os.Getpid"
}

// Fingerprint is a cache-key constructor: a sink root.
func Fingerprint(seed uint64) uint64 {
	h := seed
	for _, p := range fanIn() {
		h = h*1099511628211 ^ p
	}
	return h ^ pick()
}

// fanIn gathers worker results in arrival order — byte-identity breaks
// whenever the scheduler reorders two workers.
func fanIn() []uint64 {
	ch := make(chan uint64, 4)
	for i := 0; i < 4; i++ {
		go func() { ch <- uint64(i) }()
	}
	var parts []uint64
	for i := 0; i < 4; i++ {
		parts = append(parts, <-ch) // want:determinism "fan-in"
	}
	return parts
}

// pick races two ready channels through select.
func pick() uint64 {
	a := make(chan uint64, 1)
	b := make(chan uint64, 1)
	a <- 1
	b <- 2
	select { // want:determinism "select"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
