// Package daemoncheck_ok models the serving layer used correctly: every
// metric handle is registered in a constructor and cached, and handlers
// only read — scrapes render a Snapshot, counters tick through cached
// handles.
package daemoncheck_ok

type ResponseWriter interface {
	Header() map[string][]string
}

type Request struct{ Method string }

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Snapshot struct{ text string }

func (s *Snapshot) Render() string { return s.text }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter    { return &Counter{} }
func (r *Registry) FloatGauge(name string) *Counter { return &Counter{} }
func (r *Registry) Snapshot() *Snapshot             { return &Snapshot{} }

type Mux struct{}

func (m *Mux) HandleFunc(pattern string, h func(ResponseWriter, *Request)) {}

// server caches its handles at construction time; reg stays only for
// Snapshot reads.
type server struct {
	reg     *Registry
	scrapes *Counter
	watts   *Counter
}

// newServer is the one registration site: families exist before the
// first request, so two scrapes of an idle server agree.
func newServer(reg *Registry) *server {
	return &server{
		reg:     reg,
		scrapes: reg.Counter("ok_scrapes_total"),
		watts:   reg.FloatGauge("ok_power_gauge"),
	}
}

// handleMetrics is the scrape path: a pure read through a consistent
// snapshot, plus a tick on a cached handle.
func (s *server) handleMetrics(w ResponseWriter, r *Request) {
	s.scrapes.Inc()
	_ = s.reg.Snapshot().Render()
}

// ServeHTTP also only touches cached handles.
func (s *server) ServeHTTP(w ResponseWriter, r *Request) {
	s.watts.Inc()
}

// routes wires a literal handler that reads through the same cached
// handles.
func (s *server) routes(m *Mux) {
	m.HandleFunc("GET /metrics", func(w ResponseWriter, r *Request) {
		s.scrapes.Inc()
	})
}

// newRouteCounter is a non-handler helper: registration outside a
// handler is daemoncheck-clean (obscheck separately wants it
// constructor-shaped, which it is).
func newRouteCounter(reg *Registry, route string) *Counter {
	return reg.Counter("ok_route_" + route)
}
