// Package validitycheck_bad is a lint fixture: every line marked with a
// want comment must be flagged by the validitycheck analyzer.
package validitycheck_bad

// Local mocks of the measurement and table-builder shapes; matching is
// by name, so the fixture models them without importing the module.
type BenchResult struct {
	Benchmark string
	BestPair  string
}

type Table struct{ rows [][]string }

func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }
func (t *Table) AddRowf(cells ...any)   { t.rows = append(t.rows, nil) }

// A best-pair table rendered straight from the sweep: nothing consults a
// triage verdict, so cells the campaign classified INFRA_FLAKE would be
// published as if they were solid measurements.
func renderBest(t *Table, results []*BenchResult) { // want:validitycheck "triage verdict"
	for _, r := range results {
		t.AddRow(r.Benchmark, r.BestPair)
	}
}

// The board-grid shape (map[string][]*BenchResult) is measured input all
// the same.
func renderGrid(t *Table, results map[string][]*BenchResult, boards []string) { // want:validitycheck "triage verdict"
	for _, board := range boards {
		for _, r := range results[board] {
			t.AddRowf(board, r.Benchmark, r.BestPair)
		}
	}
}
