// Package errcheck_ok is a lint fixture: the errcheck analyzer must
// report nothing here.
package errcheck_ok

import (
	"fmt"
	"io"
	"os"
)

func run() error {
	if err := os.Remove("x"); err != nil {
		return fmt.Errorf("cleanup: %w", err)
	}
	_ = os.Remove("y")  // assigning to _ is an explicit acknowledgement
	fmt.Println("done") // print helpers are whitelisted
	return nil
}

func report(err error) {
	// Fprintf is whitelisted, and %v on an error is only a finding
	// inside fmt.Errorf, where it severs the wrap chain.
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
}

func read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // deferred close on a read path is exempt
	return io.ReadAll(f)
}

var _ = run
var _ = report
var _ = read
