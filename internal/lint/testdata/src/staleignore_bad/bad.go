// Package staleignore_bad is a lint fixture: the first directive excuses
// an error that is actually checked (so it suppresses nothing), and the
// second names an analyzer that does not exist. Both must be reported.
package staleignore_bad

import "os"

func tidy() error {
	return os.Remove("tmp-artifact") //gpulint:ignore errcheck -- dead acknowledgement // want:staleignore "suppressed nothing"
}

func also() {
	_ = os.Remove("tmp-artifact") //gpulint:ignore errchek -- typo: never matches // want:staleignore "unknown analyzer"
}
