// Package errcheck_bad is a lint fixture: every line marked with a want
// comment must be flagged by the errcheck analyzer.
package errcheck_bad

import (
	"errors"
	"fmt"
	"os"
)

func patch() error { return errors.New("invalid pair") }

func run() {
	patch()        // want:errcheck "unchecked error"
	os.Remove("x") // want:errcheck "unchecked error"
}

func wrap() error {
	if err := patch(); err != nil {
		return fmt.Errorf("sweep: %v", err) // want:errcheck "use %w"
	}
	return nil
}

func describe() string {
	err := patch()
	return fmt.Errorf("sweep failed: %s", err).Error() // want:errcheck "use %w"
}

var _ = run
var _ = wrap
var _ = describe
