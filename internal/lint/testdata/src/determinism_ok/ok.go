// Package determinism_ok is a lint fixture for the determinism taint
// pass: the clean shapes it must not flag — sorted map iteration, a
// seeded generator, and wall-clock use outside every artifact path.
package determinism_ok

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// WriteReport iterates the map in sorted key order: the canonical clean
// shape (collect keys, sort, iterate the slice).
func WriteReport(w io.Writer, rows map[string]int) {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, rows[k])
	}
	_ = noise(42)
}

// noise draws from a generator seeded by the campaign seed: methods on a
// *rand.Rand are deterministic; only the global functions are not.
func noise(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// progress reads the wall clock but is never reachable from an artifact
// writer, so the taint never meets a sink.
func progress() time.Time {
	return time.Now()
}
