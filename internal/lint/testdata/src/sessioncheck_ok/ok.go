// Package sessioncheck_ok is a lint fixture: nothing here may be flagged
// by the sessioncheck analyzer.
package sessioncheck_ok

import "context"

func runCtx(ctx context.Context) error { return ctx.Err() }

// Threading the context to a callee keeps the cancellation chain intact.
func threaded(ctx context.Context, board string) error {
	return runCtx(ctx)
}

// Checking Err is a use: this function stops at the boundary itself.
func checked(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// A function that genuinely needs no context opts out with _.
func optedOut(_ context.Context, board string) string { return board }

// An unnamed context parameter (interface-shaped signature) is exempt.
func unnamed(context.Context) {}

// A method that shares a deprecated variant's name is not a campaign
// entry point; method calls never match.
type set struct{}

func (s *set) Collect() int { return 0 }

func methodCall(s *set) int { return s.Collect() }
