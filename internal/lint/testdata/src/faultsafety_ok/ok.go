// Package faultsafety_ok is a lint fixture: nothing here may be flagged
// by the faultsafety analyzer.
package faultsafety_ok

import (
	"context"
	"time"
)

type dev struct{}

func (d *dev) RunMeteredCtx(_ context.Context, name string) error { return nil }

// PointOf stands in for the real fault.PointOf classifier.
func PointOf(err error) (string, bool) { return "", err != nil }

// deferred release is the canonical pattern.
func deferred() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = ctx
}

// calling the cancel directly after use is fine too.
func direct() {
	ctx, cancel := context.WithCancel(context.Background())
	_ = ctx
	cancel()
}

// returning the cancel hands the release duty to the caller.
func handedOff() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Second))
	return ctx, cancel
}

// a file that classifies transient faults may call the fault points: the
// retry loop here classifies every error before giving up.
func measure(d *dev, ctx context.Context, retries int) error {
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		err = d.RunMeteredCtx(ctx, "bench")
		if err == nil {
			return nil
		}
		if _, transient := PointOf(err); !transient {
			return err
		}
	}
	return err
}
