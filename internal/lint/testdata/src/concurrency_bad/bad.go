// Package concurrency_bad is a lint fixture: every line marked with a
// want comment must be flagged by the concurrency analyzer.
package concurrency_bad

import "sync"

type device struct {
	mu sync.Mutex
	n  int
}

func byValue(d device) int { // want:concurrency "by value"
	return d.n
}

func (d device) count() int { // want:concurrency "by value"
	return d.n
}

func snapshot(d *device) int {
	local := *d // want:concurrency "copies"
	return local.n
}

func total(devs []device) int {
	sum := 0
	for _, d := range devs { // want:concurrency "range copies"
		sum += d.n
	}
	return sum
}

func fire() {
	go func() { // want:concurrency "completion signal"
		_ = 1 + 1
	}()
}

func launch() {
	go work(3) // want:concurrency "completion signal"
}

func work(n int) { _ = n }

var _ = byValue
var _ = snapshot
var _ = total
var _ = fire
var _ = launch
