// Package unitsafety_ok is a lint fixture: the unitsafety analyzer must
// report nothing here.
package unitsafety_ok

type spec struct {
	CoreFreqMHz   float64
	DRAMLatencyNS float64
}

// CoreHz is a declared conversion helper: the unit suffix names the
// contract, so the MHz→Hz literal is sanctioned.
func (s *spec) CoreHz() float64 { return s.CoreFreqMHz * 1e6 }

// LatencySec likewise.
func (s *spec) LatencySec() float64 { return s.DRAMLatencyNS * 1e-9 }

const eps = 1e-9

func within(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// unset compares against exact zero, the one float sentinel that is
// preserved exactly.
func unset(x float64) bool { return x == 0 }

// doubled multiplies by a non-unit literal; only powers of a thousand
// are unit conversions.
func doubled(s *spec) float64 { return s.CoreFreqMHz * 2 }

var _ = within
var _ = unset
var _ = doubled
