// Package counterclass_ok is a lint fixture: the counterclass analyzer
// must report nothing here.
package counterclass_ok

type Class int

const (
	CoreEvent Class = iota
	MemEvent
)

type Def struct {
	Name  string
	Class Class
}

// def passes the class through a parameter of type Class — the sanctioned
// registration idiom.
func def(name string, c Class) Def { return Def{Name: name, Class: c} }

func teslaDefs() []Def {
	return []Def{
		def("branch", CoreEvent),
		def("dram_reads", MemEvent),
	}
}

// fermiDefs may reuse a name from another generation's registry: the
// exactly-once rule is per registry function.
func fermiDefs() []Def {
	return []Def{def("branch", CoreEvent)}
}

// extra is a fully keyed literal with an explicit classification.
var extra = Def{Name: "l2_hits", Class: MemEvent}

var _ = teslaDefs
var _ = fermiDefs
var _ = extra
