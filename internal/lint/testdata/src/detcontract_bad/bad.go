// Package detcontract_bad is a lint fixture: the function below claims
// determinism but reaches a wall-clock read one call hop down, so the
// contract verifier must flag the declaration.
package detcontract_bad

import "time"

//gpulint:deterministic
func Stamp() int64 { // want:detcontract "declared deterministic"
	return clock()
}

func clock() int64 {
	return time.Now().UnixNano()
}
