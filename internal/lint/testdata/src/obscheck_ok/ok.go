// Package obscheck_ok models the internal/obs API shapes (by type name,
// as the analyzer matches) and uses them correctly: every span is ended,
// every metric is registered from init or a constructor.
package obscheck_ok

// Span, Track and Registry mirror the obs types the analyzer keys on.
type Span struct{ open bool }

func (s *Span) End() {
	if s != nil {
		s.open = false
	}
}

type Track struct{}

func (t *Track) Begin(name string) *Span { return &Span{open: true} }

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter   { return &Counter{} }
func (r *Registry) Gauge(name string) *Counter     { return &Counter{} }
func (r *Registry) Histogram(name string) *Counter { return &Counter{} }

var pkgLevel = (&Registry{}).Counter("ok_package_level_total")

var initialized *Counter

func init() {
	initialized = (&Registry{}).Gauge("ok_init_gauge")
}

// worker caches its handles at construction time.
type worker struct {
	cells *Counter
}

// newWorker is a constructor: registration here is the sanctioned idiom.
func newWorker(r *Registry) *worker {
	return &worker{cells: r.Counter("ok_cells_total")}
}

// ObserveRates is Observe-prefixed, the other sanctioned registration site.
func ObserveRates(r *Registry) *Counter {
	return r.Histogram("ok_rates")
}

// sweep ends its span on every path.
func sweep(t *Track, w *worker) {
	span := t.Begin("sweep")
	defer span.End()
	w.cells.Inc()
}

// measure passes the span on; the callee owns ending it.
func measure(t *Track) {
	finish(t.Begin("measure"))
}

func finish(s *Span) { s.End() }

// openSpan returns the span to its caller, which also counts as a use.
func openSpan(t *Track) *Span {
	return t.Begin("deferred to caller")
}
