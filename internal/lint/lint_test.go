package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches fixture expectations: // want:analyzer "substring"
var wantRe = regexp.MustCompile(`// want:(\w+)(?: "([^"]*)")?`)

type expectation struct {
	analyzer string
	substr   string
	used     bool
}

// parseExpectations scans a fixture package for want comments, keyed by
// "basename:line".
func parseExpectations(t *testing.T, dir string) map[string][]*expectation {
	t.Helper()
	out := map[string][]*expectation{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				out[key] = append(out[key], &expectation{analyzer: m[1], substr: m[2]})
			}
		}
	}
	return out
}

// TestFixtures runs the full suite over every fixture package under
// testdata/src and requires the diagnostics to match the want comments
// exactly: each expectation produced, nothing unexpected.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			pkgs, err := Load(dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Run(pkgs, All())
			want := parseExpectations(t, dir)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				matched := false
				for _, exp := range want[key] {
					if exp.used || exp.analyzer != d.Analyzer {
						continue
					}
					if exp.substr != "" && !strings.Contains(d.Message, exp.substr) {
						continue
					}
					exp.used, matched = true, true
					break
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, exps := range want {
				for _, exp := range exps {
					if !exp.used {
						t.Errorf("%s: expected %s diagnostic containing %q, got none", key, exp.analyzer, exp.substr)
					}
				}
			}
		})
	}
}

// TestCounterClassCatchesUnclassified is the acceptance-critical case:
// a Def literal that omits the Class field must produce a diagnostic at
// the literal's exact file:line — proving the analyzer fails the build
// if a counter in internal/counters were left unclassified.
func TestCounterClassCatchesUnclassified(t *testing.T) {
	dir := filepath.Join("testdata", "src", "counterclass_bad")
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the unclassified literal in the fixture so the assertion
	// pins the exact file:line without hardcoding it.
	data, err := os.ReadFile(filepath.Join(dir, "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantLine := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, `"dram_reads"`) {
			wantLine = i + 1
		}
	}
	if wantLine == 0 {
		t.Fatal("fixture no longer contains the dram_reads case")
	}
	diags := Run(pkgs, []*Analyzer{CounterClass})
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "bad.go" && d.Pos.Line == wantLine &&
			strings.Contains(d.Message, "not classified") {
			return
		}
	}
	t.Fatalf("no 'not classified' diagnostic at bad.go:%d; got %v", wantLine, diags)
}

// TestRunOrdering checks diagnostics come out sorted by position.
func TestRunOrdering(t *testing.T) {
	dir := filepath.Join("testdata", "src", "concurrency_bad")
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All())
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos.Line > diags[i].Pos.Line {
			t.Fatalf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in concurrency_bad")
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("no-such-analyzer") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string
		ok     bool
	}{
		{"plain", "", true},
		{"%v %s", "vs", true},
		{"%d%%", "d", true},
		{"%+v", "v", true},
		{"%6.2f", "f", true},
		{"%*d", "*d", true},
		{"%.*f", "*f", true},
		{"%[1]v", "", false},
		{"%q trailing %w", "qw", true},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.want {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, string(verbs), ok, c.want, c.ok)
		}
	}
}

// TestFindModuleRoot walks up from this package to the repo's go.mod.
func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("FindModuleRoot returned %s without go.mod: %v", root, err)
	}
}
